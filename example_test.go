package fabp_test

import (
	"fmt"
	"strings"

	"fabp"
)

// Back-translate a protein and inspect its degenerate representation.
func ExampleNewQuery() {
	q, err := fabp.NewQuery("MFSR*")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Degenerate())
	fmt.Println(q.Elements(), "elements,", q.MaxScore(), "max score")
	// Output:
	// AUG-UU(U/C)-UCD-(A/C)G(F:10)-U(A/G)(F:00)
	// 15 elements, 15 max score
}

// Align a query against a reference containing its exact gene.
func ExampleAligner_Align() {
	// AUG AAA UGG GAA = Met Lys Trp Glu planted at offset 6.
	ref, err := fabp.NewReference("CCCCCCAUGAAAUGGGAACCCCCC")
	if err != nil {
		panic(err)
	}
	q, err := fabp.NewQuery("MKWE")
	if err != nil {
		panic(err)
	}
	a, err := fabp.NewAligner(q, fabp.WithThreshold(q.MaxScore()))
	if err != nil {
		panic(err)
	}
	for _, hit := range a.Align(ref) {
		fmt.Printf("pos %d score %d/%d\n", hit.Pos, hit.Score, q.MaxScore())
	}
	// Output:
	// pos 6 score 12/12
}

// Project the paper's FabP-50 build on the Kintex-7 (Table I).
func ExampleSizeOnDevice() {
	rep, err := fabp.SizeOnDevice(fabp.DeviceKintex7, 50, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations=%d bottleneck=%s LUT=%.0f%%\n",
		rep.Iterations, rep.Bottleneck, 100*rep.LUTFrac)
	// Output:
	// iterations=1 bottleneck=bandwidth-bound LUT=58%
}

// Smith-Waterman with a rendered alignment.
func ExampleSmithWaterman() {
	r, err := fabp.SmithWaterman("MKWVTFISLL", "MKWVTFISLL")
	if err != nil {
		panic(err)
	}
	fmt.Println(r.CIGAR, r.Gaps, r.Identity)
	// Output:
	// 10M 0 1
}

// Stream a large reference through the aligner in bounded memory.
func ExampleAligner_AlignStream() {
	q, err := fabp.NewQuery("MKWE")
	if err != nil {
		panic(err)
	}
	a, err := fabp.NewAligner(q, fabp.WithThreshold(q.MaxScore()))
	if err != nil {
		panic(err)
	}
	stream := strings.NewReader("ccccccATGAAATGGGAAcccccc") // DNA, mixed case
	err = a.AlignStream(stream, func(h fabp.Hit) error {
		fmt.Printf("pos %d score %d\n", h.Pos, h.Score)
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// pos 6 score 12
}
