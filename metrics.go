package fabp

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"fabp/internal/bitpar"
	"fabp/internal/telemetry"
)

// Metrics is a handle on a telemetry registry — the instrument panel of
// the alignment pipeline. Aligners report into the process-wide
// DefaultMetrics unless NewAligner was given a private collector with
// WithTelemetry; the shared shard pool and the shared plane cache always
// report process-wide (they are process-wide resources).
//
// Counter names (see README "Observability" for the full catalogue):
//
//	align.queries.started    scans begun (Align/AlignStream/AlignDatabase*)
//	align.hits.emitted       hits returned or streamed to emit
//	align.kernel.scalar      scans dispatched to the scalar engine
//	align.kernel.bitparallel scans dispatched to the bit-parallel kernel
//	align.canceled           scans aborted by context cancellation
//	align.deadline.exceeded  scans aborted by a context deadline
//	scan.shards.planned      shards the scheduler tiled
//	scan.shards.run          shards that executed (== planned when quiet)
//	scan.plane.lookups       packed-plane cache lookups issued by scans
//	stream.chunks.processed  chunks (beats) scanned by AlignStream / AlignBatchStream
//	stream.carry.restarts    chunk-boundary carries of the streaming scan
//	stream.planes.packed_words plane words packed by the streaming packer
//	batch.queries            queries scanned through the fused batch path
//	batch.fused_passes       fused tile passes (each replacing K per-query passes)
//	batch.plane_bytes_saved  plane bytes NOT re-read thanks to fusion: (K−1)×planes
//	db.load.planes_reused    LoadDatabase calls resolved warm (persisted or resident planes)
//	db.load.planes_packed    LoadDatabase calls whose scans must pack in-process
//	scan.retries             shard/chunk attempts re-run under a RetryPolicy
//	scan.hedged              hedged duplicate shards launched for stragglers
//	scan.partial             scans that completed degraded (WithPartialResults)
//	faultinject.fired        fault-injection rules that fired (process-wide)
//	pool.tasks.*             worker-pool counters/gauges (process-wide pool)
//	cache.*                  plane-cache stats, merged from the shared cache
//	                         (cache.installs counts entries seeded from files)
//	rcache.*                 scan-result cache stats, merged from the shared
//	                         cache (rcache.collapsed counts requests that
//	                         joined an in-flight identical scan;
//	                         rcache.handoffs counts flights a canceled
//	                         initiator handed off to surviving waiters)
//	admission.*              fabp-serve admission queue: admitted,
//	                         shed.capacity, shed.deadline counters, wait
//	                         histogram, held/queue.depth/estimate.ns gauges
//
// Latency histograms: align.latency (whole calls), scan.shard.latency
// (per shard), batch.kernel.latency (whole fused batch scans — its SumNs
// is the batch path's kernel-seconds attribution), stream.pack.latency
// (per-chunk bit-plane packing, the streaming pack tax), pool.task.wait
// and pool.task.run (scheduler).
//
// All hot-path updates are single atomic operations; see DESIGN.md for
// the atomicity/overhead contract.
type Metrics struct {
	reg *telemetry.Registry
}

// NewMetrics builds a private collector to pass to WithTelemetry, for
// callers that want per-workload rather than process-wide numbers.
func NewMetrics() *Metrics { return &Metrics{reg: telemetry.NewRegistry()} }

var defaultMetrics = &Metrics{reg: telemetry.Default()}

// DefaultMetrics returns the process-wide collector: every aligner
// without a private WithTelemetry collector, the shared shard pool, and
// the package-level batch/session paths report here.
func DefaultMetrics() *Metrics { return defaultMetrics }

// LatencyBucket is one histogram bucket; UpperNs < 0 marks the overflow
// bucket (observations above every configured bound).
type LatencyBucket struct {
	UpperNs int64  `json:"le_ns"`
	Count   uint64 `json:"count"`
}

// LatencySnapshot is a latency histogram's state at snapshot time.
type LatencySnapshot struct {
	Count   uint64          `json:"count"`
	SumNs   int64           `json:"sum_ns"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// MeanNs returns the mean observed latency in nanoseconds (0 when empty).
func (l LatencySnapshot) MeanNs() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.SumNs) / float64(l.Count)
}

// MetricsSnapshot is a point-in-time view of a collector. It is
// eventually consistent under concurrent scans (each value is atomically
// read, but the set is not one cut); every counter is monotone between
// Resets.
type MetricsSnapshot struct {
	Counters  map[string]uint64          `json:"counters"`
	Gauges    map[string]int64           `json:"gauges"`
	Latencies map[string]LatencySnapshot `json:"latencies"`
}

// CacheHitRate returns cache.hits / (cache.hits + cache.misses), the
// plane-cache efficiency (0 when the cache is untouched).
func (s MetricsSnapshot) CacheHitRate() float64 {
	h, m := s.Counters["cache.hits"], s.Counters["cache.misses"]
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Snapshot captures every metric, merging the shared plane cache's stats
// under cache.* (the cache is process-wide, so those numbers are global
// even on a private collector).
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := m.reg.Snapshot()
	out := MetricsSnapshot{
		Counters:  s.Counters,
		Gauges:    s.Gauges,
		Latencies: make(map[string]LatencySnapshot, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		ls := LatencySnapshot{Count: h.Count, SumNs: h.SumNs}
		for _, b := range h.Buckets {
			ls.Buckets = append(ls.Buckets, LatencyBucket{UpperNs: b.UpperNs, Count: b.Count})
		}
		out.Latencies[name] = ls
	}
	cs := bitpar.SharedPlanes().Stats()
	out.Counters["cache.hits"] = cs.Hits
	out.Counters["cache.misses"] = cs.Misses
	out.Counters["cache.evictions"] = cs.Evictions
	out.Counters["cache.installs"] = cs.Installs
	out.Gauges["cache.entries"] = int64(cs.Entries)
	out.Gauges["cache.resident.bytes"] = cs.ResidentBytes
	rs := scanResults.Stats()
	out.Counters["rcache.hits"] = rs.Hits
	out.Counters["rcache.misses"] = rs.Misses
	out.Counters["rcache.evictions"] = rs.Evictions
	out.Counters["rcache.collapsed"] = rs.Collapsed
	out.Counters["rcache.handoffs"] = rs.Handoffs
	out.Gauges["rcache.entries"] = int64(rs.Entries)
	out.Gauges["rcache.resident.bytes"] = rs.ResidentBytes
	out.Gauges["rcache.capacity.bytes"] = rs.CapacityBytes
	return out
}

// Reset zeroes the collector's metrics and the shared plane and
// scan-result caches' cumulative counters (resident cache entries stay
// resident). Metric identities survive, so concurrent scans keep
// reporting.
func (m *Metrics) Reset() {
	m.reg.Reset()
	bitpar.SharedPlanes().ResetStats()
	scanResults.ResetStats()
}

// String renders the snapshot as JSON — the expvar.Var contract, so a
// collector can be served on /debug/vars via expvar.Publish("fabp", m).
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// MarshalJSON marshals the current snapshot.
func (m *Metrics) MarshalJSON() ([]byte, error) { return json.Marshal(m.Snapshot()) }

// alignerMetrics holds an aligner's pre-resolved metric handles so the
// scan paths pay only atomic updates (every field is nil-safe; the zero
// value records nothing).
type alignerMetrics struct {
	queries, hits              *telemetry.Counter
	kernelScalar, kernelBitpar *telemetry.Counter
	shardsPlanned, shardsRun   *telemetry.Counter
	planeLookups               *telemetry.Counter
	chunks, carries            *telemetry.Counter
	packWords                  *telemetry.Counter
	canceled, deadline         *telemetry.Counter
	alignLatency, shardLatency *telemetry.Histogram
	packLatency                *telemetry.Histogram

	batchQueries, batchFusedPasses *telemetry.Counter
	batchPlaneBytesSaved           *telemetry.Counter
	batchKernelLatency             *telemetry.Histogram

	retries, hedged, partial *telemetry.Counter
}

func newAlignerMetrics(reg *telemetry.Registry) alignerMetrics {
	return alignerMetrics{
		queries:       reg.Counter("align.queries.started"),
		hits:          reg.Counter("align.hits.emitted"),
		kernelScalar:  reg.Counter("align.kernel.scalar"),
		kernelBitpar:  reg.Counter("align.kernel.bitparallel"),
		shardsPlanned: reg.Counter("scan.shards.planned"),
		shardsRun:     reg.Counter("scan.shards.run"),
		planeLookups:  reg.Counter("scan.plane.lookups"),
		chunks:        reg.Counter("stream.chunks.processed"),
		carries:       reg.Counter("stream.carry.restarts"),
		packWords:     reg.Counter("stream.planes.packed_words"),
		canceled:      reg.Counter("align.canceled"),
		deadline:      reg.Counter("align.deadline.exceeded"),
		alignLatency:  reg.Histogram("align.latency"),
		shardLatency:  reg.Histogram("scan.shard.latency"),
		packLatency:   reg.Histogram("stream.pack.latency"),

		batchQueries:         reg.Counter("batch.queries"),
		batchFusedPasses:     reg.Counter("batch.fused_passes"),
		batchPlaneBytesSaved: reg.Counter("batch.plane_bytes_saved"),
		batchKernelLatency:   reg.Histogram("batch.kernel.latency"),

		retries: reg.Counter("scan.retries"),
		hedged:  reg.Counter("scan.hedged"),
		partial: reg.Counter("scan.partial"),
	}
}

// recordCtxErr classifies a scan's terminal error: cancellations and
// deadline expiries each count on their own counter (other errors are the
// caller's to observe). Called once per aborted scan, at the public API
// boundary.
func (tm *alignerMetrics) recordCtxErr(err error) {
	switch {
	case errors.Is(err, context.Canceled):
		tm.canceled.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		tm.deadline.Inc()
	}
}

// kernelChosen records one dispatch decision.
func (tm *alignerMetrics) kernelChosen(bitparallel bool) {
	if bitparallel {
		tm.kernelBitpar.Inc()
	} else {
		tm.kernelScalar.Inc()
	}
}

// observeSince records d = now - t0 on h; a helper so call sites stay one
// line.
func observeSince(h *telemetry.Histogram, t0 time.Time) { h.Observe(time.Since(t0)) }

// defaultAlignerTM instruments the package-level paths (AlignBatch,
// Session) that have no per-aligner collector.
var defaultAlignerTM = newAlignerMetrics(telemetry.Default())

// Warm-start accounting: how LoadDatabase calls resolved. A "reused" load
// scans without any PackReference work (persisted planes installed, or
// already resident from an earlier load of the same content); a "packed"
// load pays one in-process packing before its first bit-parallel scan.
var (
	dbLoadPlanesReused = telemetry.Default().Counter("db.load.planes_reused")
	dbLoadPlanesPacked = telemetry.Default().Counter("db.load.planes_packed")
)
