package fabp

import "testing"

func TestAlignBothStrands(t *testing.T) {
	// Plant the same gene forward at one locus and reverse-complemented at
	// another.
	ref, genes := SyntheticReference(81, 30_000, 1, 40)
	g := genes[0]
	q, err := NewQuery(g.Protein)
	if err != nil {
		t.Fatal(err)
	}
	// Build a new reference embedding the reverse complement of the gene.
	seq := ref.String()
	geneSeq := seq[g.Pos : g.Pos+3*40]
	rcGene := reverseComplementString(geneSeq)
	rcPos := 25_000
	mod := seq[:rcPos] + rcGene + seq[rcPos+len(rcGene):]
	ref2, err := NewReference(mod)
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewAligner(q, WithThresholdFraction(0.9))
	if err != nil {
		t.Fatal(err)
	}
	hits := a.AlignBothStrands(ref2)
	var fwd, rev bool
	for _, h := range hits {
		if h.Strand == StrandForward && h.Pos == g.Pos {
			fwd = true
		}
		if h.Strand == StrandReverse && h.Pos == rcPos {
			rev = true
		}
	}
	if !fwd {
		t.Error("forward copy not found")
	}
	if !rev {
		t.Errorf("reverse copy not found among %d hits", len(hits))
	}
	// Order: forward coordinates ascending.
	for i := 1; i < len(hits); i++ {
		if hits[i].Pos < hits[i-1].Pos {
			t.Fatal("hits out of order")
		}
	}
	// Forward-only scan must miss the reverse copy.
	plain := a.Align(ref2)
	for _, h := range plain {
		if h.Pos == rcPos {
			t.Error("forward scan should not see the reverse copy")
		}
	}
}

func reverseComplementString(s string) string {
	comp := map[byte]byte{'A': 'U', 'U': 'A', 'C': 'G', 'G': 'C'}
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[len(s)-1-i] = comp[s[i]]
	}
	return string(out)
}
