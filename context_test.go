package fabp_test

// Cancellation-semantics tests for the context-aware scan pipeline: a
// cancel mid-database-scan returns context.Canceled within a bounded
// time of the cancel (one shard boundary plus scheduling), leaks no pool
// goroutines, and leaves the shared plane cache consistent; a deadline
// on a slow stream reader surfaces context.DeadlineExceeded; and both
// aborts land on the align.canceled / align.deadline.exceeded counters.

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"fabp"
)

// waitQuiesce polls until the process goroutine count returns to (near)
// its baseline, failing the test if pool goroutines leaked.
func waitQuiesce(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the books
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAlignDatabaseContextCancelMidScan cancels a sharded database scan
// mid-flight and pins the core contract of the issue: the call returns
// context.Canceled promptly (bounded latency between cancel and return),
// the remaining shards are shed, no pool goroutines leak, and a full
// rescan afterwards is bit-exact — the shared state the aborted scan
// touched is consistent.
func TestAlignDatabaseContextCancelMidScan(t *testing.T) {
	// A scalar scan over 2 Mnt in 32 knt shards: tens of shards, each
	// taking long enough that the watcher cancels well before the plan
	// finishes.
	ref, genes := fabp.SyntheticReference(21, 2<<20, 4, 60)
	dbase, err := fabp.DatabaseFromReference("cancel", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fabp.NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	newAligner := func(m *fabp.Metrics) *fabp.Aligner {
		opts := []fabp.AlignerOption{
			fabp.WithKernelType(fabp.KernelScalar),
			fabp.WithShardLen(1 << 15),
			fabp.WithParallelism(2),
		}
		if m != nil {
			opts = append(opts, fabp.WithTelemetry(m))
		}
		a, err := fabp.NewAligner(q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	golden := newAligner(nil).AlignDatabase(dbase)
	if len(golden) == 0 {
		t.Fatal("planted gene not found")
	}

	m := fabp.NewMetrics()
	a := newAligner(m)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel as soon as the first shard has completed.
	canceledAt := make(chan time.Time, 1)
	go func() {
		for m.Snapshot().Counters["scan.shards.run"] == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
		canceledAt <- time.Now()
	}()

	hits, err := a.AlignDatabaseContext(ctx, dbase)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AlignDatabaseContext = %v, want context.Canceled", err)
	}
	if hits != nil {
		t.Errorf("canceled scan returned %d hits, want nil", len(hits))
	}
	// Latency bound: the scan must return within one shard boundary of
	// the cancel — a shard here is a few ms; allow generous CI headroom
	// but stay far below the full-scan time with shards shed.
	if d := returned.Sub(<-canceledAt); d > 2*time.Second {
		t.Errorf("cancel-to-return latency %v, want one shard boundary", d)
	}
	s := m.Snapshot()
	if planned, run := s.Counters["scan.shards.planned"], s.Counters["scan.shards.run"]; run >= planned {
		t.Errorf("shards run %d of %d planned: cancel shed nothing", run, planned)
	}
	if got := s.Counters["align.canceled"]; got != 1 {
		t.Errorf("align.canceled = %d, want 1", got)
	}
	waitQuiesce(t, baseline)

	// The aborted scan must not have corrupted anything shared: the same
	// aligner rescans bit-exact.
	again, err := a.AlignDatabaseContext(context.Background(), dbase)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordHitsEqual(t, golden, again)
}

// TestAlignDatabaseStreamContextCancelDuringEmit cancels from inside the
// emit callback — fully deterministic — and checks the abort surfaces as
// context.Canceled, the emitted hits are a position-ordered prefix, and
// the shared plane cache stays consistent for the next (bit-parallel)
// scan.
func TestAlignDatabaseStreamContextCancelDuringEmit(t *testing.T) {
	ref, genes := fabp.SyntheticReference(22, 300_000, 6, 40)
	dbase, err := fabp.DatabaseFromReference("stream-cancel", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fabp.NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	m := fabp.NewMetrics()
	a, err := fabp.NewAligner(q,
		fabp.WithTelemetry(m),
		fabp.WithKernelType(fabp.KernelBitParallel),
		fabp.WithShardLen(1<<12),
		fabp.WithParallelism(2),
		fabp.WithThresholdFraction(0.6))
	if err != nil {
		t.Fatal(err)
	}
	golden := a.AlignDatabase(dbase)
	if len(golden) < 2 {
		t.Fatalf("want at least 2 hits to cancel between, got %d", len(golden))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed []fabp.RecordHit
	err = a.AlignDatabaseStreamContext(ctx, dbase, func(h fabp.RecordHit) error {
		streamed = append(streamed, h)
		cancel() // abort after the first hit
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AlignDatabaseStreamContext = %v, want context.Canceled", err)
	}
	if len(streamed) == 0 || len(streamed) >= len(golden) {
		t.Fatalf("streamed %d hits before cancel, want a strict prefix of %d", len(streamed), len(golden))
	}
	for i, h := range streamed {
		if h != golden[i] {
			t.Fatalf("streamed[%d] = %+v, want prefix of golden (%+v)", i, h, golden[i])
		}
	}
	if got := m.Snapshot().Counters["align.canceled"]; got != 1 {
		t.Errorf("align.canceled = %d, want 1", got)
	}

	// Plane cache consistent after the abort: a full streamed scan over
	// the same cached planes reproduces the golden hits.
	var after []fabp.RecordHit
	if err := a.AlignDatabaseStreamContext(context.Background(), dbase, func(h fabp.RecordHit) error {
		after = append(after, h)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertRecordHitsEqual(t, golden, after)
}

// slowReader delivers a trickle of valid nucleotides forever — the
// misbehaving upstream a deadline must cut loose.
type slowReader struct {
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	time.Sleep(r.delay)
	const letters = "ACGUACGUACGUACGU"
	n := copy(p, letters)
	return n, nil
}

// TestAlignStreamContextDeadlineSlowReader checks the chunk-boundary
// checkpoint of the streaming scan: a reader that trickles bytes cannot
// pin the scan past its deadline, for both the chunked bit-parallel path
// and the scalar engine's reader.
func TestAlignStreamContextDeadlineSlowReader(t *testing.T) {
	q, err := fabp.NewQuery("MKWVTFISLLFLFSSAYS")
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []fabp.Kernel{fabp.KernelBitParallel, fabp.KernelScalar} {
		m := fabp.NewMetrics()
		a, err := fabp.NewAligner(q, fabp.WithTelemetry(m), fabp.WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
		t0 := time.Now()
		err = a.AlignStreamContext(ctx, &slowReader{delay: 4 * time.Millisecond}, func(fabp.Hit) error {
			return nil
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("kernel %v: AlignStreamContext = %v, want context.DeadlineExceeded", kernel, err)
		}
		if d := time.Since(t0); d > 3*time.Second {
			t.Errorf("kernel %v: deadline honored after %v, want ~40ms", kernel, d)
		}
		if got := m.Snapshot().Counters["align.deadline.exceeded"]; got != 1 {
			t.Errorf("kernel %v: align.deadline.exceeded = %d, want 1", kernel, got)
		}
	}
}

// TestAlignContextMatchesAlign proves the cancelable sharded path of
// AlignContext is bit-exact with the single-pass Align for both kernels
// (a cancelable-but-never-canceled context must change nothing but the
// execution plan).
func TestAlignContextMatchesAlign(t *testing.T) {
	ref, genes := fabp.SyntheticReference(23, 150_000, 3, 30)
	q, err := fabp.NewQuery(genes[1].Protein)
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []fabp.Kernel{fabp.KernelScalar, fabp.KernelBitParallel} {
		a, err := fabp.NewAligner(q, fabp.WithKernelType(kernel), fabp.WithShardLen(1<<12))
		if err != nil {
			t.Fatal(err)
		}
		want := a.Align(ref)
		ctx, cancel := context.WithCancel(context.Background())
		got, err := a.AlignContext(ctx, ref)
		cancel()
		if err != nil {
			t.Fatalf("kernel %v: AlignContext = %v", kernel, err)
		}
		if len(got) != len(want) {
			t.Fatalf("kernel %v: sharded path %d hits, single-pass %d", kernel, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("kernel %v: hit %d = %+v, want %+v", kernel, i, got[i], want[i])
			}
		}
	}
}

// TestPreCanceledContexts: every context entry point refuses an
// already-done context with its error, before any scan work.
func TestPreCanceledContexts(t *testing.T) {
	ref, genes := fabp.SyntheticReference(24, 4000, 1, 20)
	dbase, err := fabp.DatabaseFromReference("pre", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fabp.NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	m := fabp.NewMetrics()
	a, err := fabp.NewAligner(q, fabp.WithTelemetry(m))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := a.AlignContext(ctx, ref); !errors.Is(err, context.Canceled) {
		t.Errorf("AlignContext = %v, want context.Canceled", err)
	}
	if _, err := a.AlignDatabaseContext(ctx, dbase); !errors.Is(err, context.Canceled) {
		t.Errorf("AlignDatabaseContext = %v, want context.Canceled", err)
	}
	if err := a.AlignDatabaseStreamContext(ctx, dbase, func(fabp.RecordHit) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("AlignDatabaseStreamContext = %v, want context.Canceled", err)
	}
	if err := a.AlignStreamContext(ctx, io.LimitReader(&slowReader{}, 100), func(fabp.Hit) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("AlignStreamContext = %v, want context.Canceled", err)
	}
	if got := m.Snapshot().Counters["align.canceled"]; got != 4 {
		t.Errorf("align.canceled = %d, want 4", got)
	}

	// Session variants go through the shared pool and default registry.
	sess, err := fabp.NewSession(dbase)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.RunContext(ctx, q, 0.8); !errors.Is(err, context.Canceled) {
		t.Errorf("Session.RunContext = %v, want context.Canceled", err)
	}
	if _, _, err := sess.RunBatchContext(ctx, []*fabp.Query{q}, 0.8); !errors.Is(err, context.Canceled) {
		t.Errorf("Session.RunBatchContext = %v, want context.Canceled", err)
	}
}

// TestSessionRunContextLive: an unfired context changes nothing — the
// session still finds the planted gene with full timing decomposition.
func TestSessionRunContextLive(t *testing.T) {
	ref, genes := fabp.SyntheticReference(25, 50_000, 2, 30)
	dbase, err := fabp.DatabaseFromReference("sess", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fabp.NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := fabp.NewSession(dbase)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	hits, timing, err := sess.RunContext(ctx, q, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("planted gene not found through RunContext")
	}
	if timing.Total <= 0 {
		t.Errorf("timing = %+v, want positive total", timing)
	}
}

// TestAlignDatabaseBatchContextCancelMidScan cancels a fused batch scan
// mid-flight and pins the batch cancellation contract: the call returns
// context.Canceled promptly, the remaining shards are shed for every
// query of the batch at once (one shard is the whole batch's unit of
// work), no pool goroutines leak, and a full rescan afterwards is
// bit-exact — the shared plane cache survives the abort.
func TestAlignDatabaseBatchContextCancelMidScan(t *testing.T) {
	// 8 Mnt at the default shard size → ~32 fused shards, each scanning
	// all six queries, so the watcher cancels well before the plan drains.
	ref, genes := fabp.SyntheticReference(31, 8<<20, 6, 60)
	dbase, err := fabp.DatabaseFromReference("batchcancel", ref)
	if err != nil {
		t.Fatal(err)
	}
	var queries []*fabp.Query
	for _, g := range genes {
		q, err := fabp.NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	golden, err := fabp.AlignDatabaseBatch(dbase, queries, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for qi, hits := range golden {
		if len(hits) == 0 {
			t.Fatalf("query %d: planted gene not found", qi)
		}
	}

	// The batch paths report on the process-wide collector; measure deltas
	// around the canceled call.
	m := fabp.DefaultMetrics()
	s0 := m.Snapshot().Counters
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel as soon as the first fused shard has completed.
	canceledAt := make(chan time.Time, 1)
	go func() {
		for m.Snapshot().Counters["scan.shards.run"] == s0["scan.shards.run"] {
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
		canceledAt <- time.Now()
	}()

	out, err := fabp.AlignDatabaseBatchContext(ctx, dbase, queries, 0.85)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AlignDatabaseBatchContext = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("canceled batch returned %d hit lists, want nil", len(out))
	}
	if d := returned.Sub(<-canceledAt); d > 2*time.Second {
		t.Errorf("cancel-to-return latency %v, want one shard boundary", d)
	}
	s1 := m.Snapshot().Counters
	planned := s1["scan.shards.planned"] - s0["scan.shards.planned"]
	run := s1["scan.shards.run"] - s0["scan.shards.run"]
	if run >= planned {
		t.Errorf("shards run %d of %d planned: cancel shed nothing", run, planned)
	}
	if got := s1["align.canceled"] - s0["align.canceled"]; got != 1 {
		t.Errorf("align.canceled delta = %d, want 1", got)
	}
	if got := s1["batch.queries"] - s0["batch.queries"]; got != uint64(len(queries)) {
		t.Errorf("batch.queries delta = %d, want %d", got, len(queries))
	}
	waitQuiesce(t, baseline)

	// The aborted batch must not have corrupted the shared plane cache or
	// pooled kernel scratch: a fresh batch rescans bit-exact.
	again, err := fabp.AlignDatabaseBatch(dbase, queries, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range golden {
		assertRecordHitsEqual(t, golden[qi], again[qi])
	}
}

func assertRecordHitsEqual(t *testing.T, want, got []fabp.RecordHit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("hit count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
