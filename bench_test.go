package fabp

// One benchmark per paper table/figure (regenerating the artifact), plus
// micro-benchmarks of the load-bearing kernels. Run:
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks print their table once (first iteration)
// so `go test -bench` output doubles as the reproduction log.

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/experiments"
	"fabp/internal/isa"
	"fabp/internal/swalign"
	"fabp/internal/tblastn"
)

var printOnce sync.Map

// benchExperiment runs one registered experiment per iteration and prints
// its table a single time.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkFig6aSpeedup regenerates Fig. 6(a): normalized speedups of
// CPU-12 / GPU / FabP per query length.
func BenchmarkFig6aSpeedup(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6bEnergy regenerates Fig. 6(b): normalized energy efficiency.
func BenchmarkFig6bEnergy(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkTable1Resources regenerates Table I: FabP-50/FabP-250 resource
// utilization and achieved bandwidth.
func BenchmarkTable1Resources(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkCrossover regenerates the §IV-B bandwidth/resource crossover
// sweep.
func BenchmarkCrossover(b *testing.B) { benchExperiment(b, "crossover") }

// BenchmarkPopcountAblation regenerates the §III-D pop-counter area
// comparison.
func BenchmarkPopcountAblation(b *testing.B) { benchExperiment(b, "popcount") }

// BenchmarkChannelScaling regenerates the §III-C multi-channel projection.
func BenchmarkChannelScaling(b *testing.B) { benchExperiment(b, "channels") }

// BenchmarkSerineAblation regenerates the serine-encoding ablation.
func BenchmarkSerineAblation(b *testing.B) { benchExperiment(b, "serine") }

// BenchmarkAccuracyIndels regenerates a compact §IV-A accuracy study per
// iteration (scaled to stay benchmark-friendly).
func BenchmarkAccuracyIndels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(experiments.AccuracyConfig{
			RefLen: 40_000, Genes: 6, GeneLen: 80, Queries: 30, QueryLen: 50,
		})
		if r.FabPRecallSub < 0.9 {
			b.Fatalf("accuracy regression: %+v", r)
		}
		if _, done := printOnce.LoadOrStore("accuracy-mini", true); !done {
			b.Logf("indels %.1f%% | FabP recall %.1f%% | TBLASTN recall %.1f%%",
				100*r.IndelFraction, 100*r.FabPRecall, 100*r.TBLASTNRecall)
		}
	}
}

// --- kernel micro-benchmarks ---

// BenchmarkEngineAlign measures the software FabP engine's scan throughput
// (the per-iteration workload is 1 Mnt; metric reported as ns/op plus
// nt/s).
func BenchmarkEngineAlign(b *testing.B) {
	for _, residues := range []int{50, 250} {
		b.Run(fmt.Sprintf("q%d", residues), func(b *testing.B) {
			ref, genes := SyntheticReference(1, 1_000_000, 4, residues)
			q, err := NewQuery(genes[0].Protein)
			if err != nil {
				b.Fatal(err)
			}
			a, err := NewAligner(q, WithThresholdFraction(0.9))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if hits := a.Align(ref); len(hits) == 0 {
					b.Fatal("planted gene lost")
				}
			}
			b.SetBytes(int64(ref.Len()) / 4) // 2 bits per nucleotide
		})
	}
}

// BenchmarkTBLASTNSearch measures the heuristic baseline on the same
// workload shape (1 Mnt reference).
func BenchmarkTBLASTNSearch(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			ref, genes := SyntheticReference(2, 1_000_000, 4, 50)
			q, err := bio.ParseProtSeq(genes[0].Protein)
			if err != nil {
				b.Fatal(err)
			}
			refSeq, err := bio.ParseNucSeq(ref.String())
			if err != nil {
				b.Fatal(err)
			}
			idx, err := tblastn.BuildIndex(q, 11)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tblastn.SearchWithIndex(idx, refSeq, tblastn.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(refSeq)) / 4)
		})
	}
}

// BenchmarkSmithWaterman measures the DP gold standard (300x300 residues).
func BenchmarkSmithWaterman(b *testing.B) {
	pa, _ := RandomProtein(3, 300)
	pb, _ := RandomProtein(4, 300)
	a, _ := bio.ParseProtSeq(pa)
	bb, _ := bio.ParseProtSeq(pb)
	s := swalign.DefaultScoring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swalign.Score(a, bb, s)
	}
}

// BenchmarkEncodeQuery measures back-translation + instruction encoding.
func BenchmarkEncodeQuery(b *testing.B) {
	p, _ := RandomProtein(5, 250)
	seq, _ := bio.ParseProtSeq(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.EncodeProtein(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitParallelKernel measures the SIMD-within-register kernel (the
// GPU algorithm) on the same workload shape as BenchmarkEngineAlign.
func BenchmarkBitParallelKernel(b *testing.B) {
	ref, genes := SyntheticReference(7, 1_000_000, 4, 50)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.9), WithKernelType(KernelBitParallel))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := a.Align(ref); len(hits) == 0 {
			b.Fatal("planted gene lost")
		}
	}
	b.SetBytes(int64(ref.Len()) / 4)
}

// BenchmarkBatchAlign measures the shared-context multi-query scan (eight
// 50-residue queries over 1 Mnt).
func BenchmarkBatchAlign(b *testing.B) {
	ref, genes := SyntheticReference(8, 1_000_000, 8, 50)
	var queries []*Query
	for _, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	refSeq := ref
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AlignBatch(queries, refSeq, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiQueryScan compares the seed serial batch path (one query
// at a time, planes repacked per call) against the sharded scheduler with
// the shared plane cache. The "sharded" case is the acceptance target:
// ≥2× over "serial" on ≥4 cores.
func BenchmarkMultiQueryScan(b *testing.B) {
	ref, genes := SyntheticReference(11, 2_000_000, 8, 50)
	var queries []*Query
	for _, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits, err := alignBatchBitparSerial(queries, ref, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) != len(queries) {
				b.Fatal("batch shape")
			}
		}
		b.SetBytes(int64(len(queries)) * int64(ref.Len()) / 4)
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits, err := AlignBatch(queries, ref, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) != len(queries) {
				b.Fatal("batch shape")
			}
		}
		b.SetBytes(int64(len(queries)) * int64(ref.Len()) / 4)
	})
}

// BenchmarkDatabaseScan measures repeated whole-database scans against a
// resident database — the case the plane cache exists for.
func BenchmarkDatabaseScan(b *testing.B) {
	ref, genes := SyntheticReference(12, 2_000_000, 4, 50)
	d, err := BuildDatabase(strings.NewReader(">chr1\n" + ref.String() + "\n"))
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := a.AlignDatabase(d); len(hits) == 0 {
			b.Fatal("planted gene lost")
		}
	}
	b.SetBytes(int64(d.Len()) / 4)
}

// BenchmarkAlignStreamReader measures the bounded-memory chunked scan.
func BenchmarkAlignStreamReader(b *testing.B) {
	ref, genes := SyntheticReference(9, 2_000_000, 2, 50)
	q, _ := NewQuery(genes[0].Protein)
	a, _ := NewAligner(q, WithThresholdFraction(0.9))
	stream := ref.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := a.AlignStream(strings.NewReader(stream), func(Hit) error { n++; return nil })
		if err != nil || n == 0 {
			b.Fatalf("stream scan failed: %v (%d hits)", err, n)
		}
	}
	b.SetBytes(int64(len(stream)) / 4)
}

// BenchmarkNetlistCycle measures the cycle-accurate RTL simulator on a
// small generated accelerator (beats per second of gate-level simulation).
func BenchmarkNetlistCycle(b *testing.B) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Lys, bio.Trp})
	cfg := core.NetlistConfig{QueryElems: len(prog), Beat: 8, Threshold: 7}
	runner, err := core.NewNetlistRunner(cfg, prog)
	if err != nil {
		b.Fatal(err)
	}
	ref := make(bio.NucSeq, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Align(ref)
	}
}

// BenchmarkVerilogEmission measures netlist generation + Verilog emission
// for a mid-size build.
func BenchmarkVerilogEmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateVerilog(io.Discard, VerilogConfig{
			QueryResidues: 4, BeatElements: 16, Threshold: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
