package fabp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"fabp/internal/bitpar"
)

// captureWarnings routes the package warn logger into a slice for the
// duration of the test.
func captureWarnings(t *testing.T) *[]string {
	t.Helper()
	var mu sync.Mutex
	var lines []string
	SetWarnLogger(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	t.Cleanup(func() { SetWarnLogger(nil) })
	return &lines
}

// TestWarmLoadZeroPacking is the tentpole's acceptance check: loading a
// v2 file and scanning it bit-parallel must perform ZERO PackReference
// work — the planes come from the file.
func TestWarmLoadZeroPacking(t *testing.T) {
	d, genes := buildFacadeDB(t)
	var buf bytes.Buffer
	if err := d.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	d.EvictPlanes() // the save packed once; forget it

	before := DefaultMetrics().Snapshot()
	packsBefore := bitpar.PackCount()
	d2, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.PlanesResident() {
		t.Fatal("warm load did not install planes into the shared cache")
	}

	// Scan bit-parallel (the 45k-nt test database sits below the auto
	// crossover, so force the kernel that uses planes).
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := a.AlignDatabaseContext(t.Context(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits; test is vacuous")
	}
	if n := bitpar.PackCount() - packsBefore; n != 0 {
		t.Fatalf("warm load + scan ran %d PackReference calls, want 0", n)
	}
	after := DefaultMetrics().Snapshot()
	if got := after.Counters["db.load.planes_reused"] - before.Counters["db.load.planes_reused"]; got != 1 {
		t.Errorf("db.load.planes_reused advanced by %d, want 1", got)
	}
	if got := after.Counters["db.load.planes_packed"] - before.Counters["db.load.planes_packed"]; got != 0 {
		t.Errorf("db.load.planes_packed advanced by %d, want 0", got)
	}
	if after.Counters["cache.installs"] <= before.Counters["cache.installs"] {
		t.Error("cache.installs did not advance on warm load")
	}
}

// TestSharedPlanesKeyedByDigest is the cache-identity regression: two
// loads of one file are two Database objects but ONE cache entry and one
// set of planes — pointer keying would pack per object.
func TestSharedPlanesKeyedByDigest(t *testing.T) {
	d, _ := buildFacadeDB(t)
	// Use the legacy format so residency comes from packing, proving the
	// second load reuses the first's work rather than its own file planes.
	var buf bytes.Buffer
	if err := d.SaveDatabaseLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	d.EvictPlanes()

	d1, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	packsBefore := bitpar.PackCount()
	d1.WarmPlanes() // packs once (v1 file carries no planes)
	if n := bitpar.PackCount() - packsBefore; n != 1 {
		t.Fatalf("first warm-up ran %d packs, want 1", n)
	}
	if !d2.PlanesResident() {
		t.Fatal("second load of the same file is not resident after the first packed")
	}
	d2.WarmPlanes() // must hit the digest-keyed entry, zero extra packs
	if n := bitpar.PackCount() - packsBefore; n != 1 {
		t.Fatalf("two loads of one file ran %d packs, want 1 resident entry doing all the work", n)
	}
}

// TestLoadDatabaseCorruptPlaneFallback: damage confined to the plane
// section loads with a warning and identical scan results.
func TestLoadDatabaseCorruptPlaneFallback(t *testing.T) {
	warnings := captureWarnings(t)
	d, genes := buildFacadeDB(t)
	var buf bytes.Buffer
	if err := d.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xFF // inside the plane section CRC
	d.EvictPlanes()

	before := DefaultMetrics().Snapshot()
	d2, err := LoadDatabase(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("plane-section damage must not fail the load: %v", err)
	}
	after := DefaultMetrics().Snapshot()
	if got := after.Counters["db.load.planes_packed"] - before.Counters["db.load.planes_packed"]; got != 1 {
		t.Errorf("db.load.planes_packed advanced by %d, want 1", got)
	}
	if len(*warnings) == 0 || !strings.Contains((*warnings)[0], "plane section rejected") {
		t.Errorf("fallback warning missing: %v", *warnings)
	}

	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	want := a.AlignDatabase(d)
	got := a.AlignDatabase(d2)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("degraded load scans %d hits, original %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestLoadDatabaseCorruptPayloadTyped: structural damage outside the
// plane section is a typed error the caller can match.
func TestLoadDatabaseCorruptPayloadTyped(t *testing.T) {
	d, _ := buildFacadeDB(t)
	var buf bytes.Buffer
	if err := d.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[100] ^= 0xFF // index/payload region, well before the plane section
	_, err := LoadDatabase(bytes.NewReader(data))
	if !errors.Is(err, ErrCorruptDatabase) {
		t.Fatalf("corruption error %v does not match ErrCorruptDatabase", err)
	}
}

// TestInspectDatabaseFacade checks the facade view of both formats.
func TestInspectDatabaseFacade(t *testing.T) {
	d, _ := buildFacadeDB(t)
	var v2, v1 bytes.Buffer
	if err := d.SaveDatabase(&v2); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveDatabaseLegacy(&v1); err != nil {
		t.Fatal(err)
	}
	i2, err := InspectDatabase(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if i2.Version != 2 || !i2.HasPlanes || i2.TotalNt != d.Len() || i2.Records != d.NumRecords() {
		t.Fatalf("v2 info: %+v", i2)
	}
	i1, err := InspectDatabase(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if i1.Version != 1 || i1.HasPlanes || i1.Digest != i2.Digest {
		t.Fatalf("v1 info: %+v (v2 digest %s)", i1, i2.Digest)
	}
}
