// chaos_test.go is the chaos-conformance arm of the differential oracle:
// the same scans that must be bit-exact across kernels must ALSO be
// bit-exact under seeded fault injection once retries absorb the injected
// failures — and in partial mode, the declared failed ranges must cover
// exactly the shards whose injections fired, nothing more or less.
package fabp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"fabp/internal/faultinject"
	"fabp/internal/sched"
)

// chaosRetryPolicy absorbs every transient injected failure of the chaos
// plans below (KeyLimit 2 < MaxRetries 3) with microsecond backoff so the
// suite stays fast.
var chaosRetryPolicy = RetryPolicy{MaxRetries: 3, Base: 10 * time.Microsecond, Cap: time.Millisecond, Seed: 5}

// waitGoroutineBaseline polls until the goroutine count settles back to
// its pre-test level — the no-leak assertion of every chaos run.
func waitGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d -> %d after chaos run; scan goroutines leaked", before, runtime.NumGoroutine())
}

// assertPoolIdle checks the shared pool's gauges read zero — every slot
// returned, no queued or running stragglers.
func assertPoolIdle(t *testing.T) {
	t.Helper()
	snap := DefaultMetrics().Snapshot()
	for _, g := range []string{"pool.tasks.queued", "pool.tasks.running", "pool.merge.backlog"} {
		if v := snap.Gauges[g]; v != 0 {
			t.Fatalf("%s = %d after chaos run, want 0", g, v)
		}
	}
}

// TestChaosConformanceSeededFaultInjection runs the differential oracle
// under seeded fault injection with retries enabled: 100 scans across
// every scan path — gather, stream, cancelable reference scan, fused
// batch — each with per-shard fault probability 0.1 (plus merge stalls
// and plane-cache eviction storms), and every one must be byte-identical
// to its fault-free oracle. Afterwards goroutines and pool slots are back
// at baseline.
func TestChaosConformanceSeededFaultInjection(t *testing.T) {
	before := runtime.NumGoroutine()
	ref, genes := SyntheticReference(77, 80_000, 4, 25)
	dbase, err := DatabaseFromReference("chaos", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*Query, 0, len(genes))
	for _, g := range genes {
		bq, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, bq)
	}

	// Fault-free oracles, one per path.
	oracle := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(2048))
	wantHits := oracle.Align(ref)
	wantRec := oracle.AlignDatabase(dbase)
	wantBatch, err := AlignBatch(queries, ref, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantHits) == 0 || len(wantRec) == 0 {
		t.Fatal("oracle found no hits; chaos conformance is vacuous")
	}

	// Seeded chaos: transient shard-dispatch failures (KeyLimit under the
	// retry budget, so every shard recovers), merge stalls, eviction
	// storms on the plane cache, and stream-read faults.
	faultinject.Enable(1234, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.1, KeyLimit: 2, Fail: true},
		faultinject.SiteShardMerge:    {Prob: 0.05, Delay: 100 * time.Microsecond},
		faultinject.SiteCacheEvict:    {Every: 7, Fail: true},
		faultinject.SiteStreamRead:    {Prob: 0.1, KeyLimit: 2, Fail: true},
	})
	defer faultinject.Disable()
	SetBatchRetryPolicy(chaosRetryPolicy)
	defer SetBatchRetryPolicy(RetryPolicy{})

	a := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(2048),
		WithRetryPolicy(chaosRetryPolicy))
	scans := 0
	for round := 0; round < 25; round++ {
		// Path 1: cancelable reference scan (shard scheduler).
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		got, err := a.AlignContext(ctx, ref)
		cancel()
		if err != nil {
			t.Fatalf("round %d AlignContext: %v", round, err)
		}
		assertHitsEqual(t, "chaos AlignContext", wantHits, got)
		scans++

		// Path 2: database gather.
		rec, err := a.AlignDatabaseContext(context.Background(), dbase)
		if err != nil {
			t.Fatalf("round %d AlignDatabaseContext: %v", round, err)
		}
		assertRecordHitsEqual(t, "chaos AlignDatabase", wantRec, rec)
		scans++

		// Path 3: ordered stream merge.
		var streamed []RecordHit
		if err := a.AlignDatabaseStream(dbase, func(h RecordHit) error {
			streamed = append(streamed, h)
			return nil
		}); err != nil {
			t.Fatalf("round %d AlignDatabaseStream: %v", round, err)
		}
		assertRecordHitsEqual(t, "chaos AlignDatabaseStream", wantRec, streamed)
		scans++

		// Path 4: fused batch under the package-level policy.
		gotBatch, err := AlignBatch(queries, ref, 0.7)
		if err != nil {
			t.Fatalf("round %d AlignBatch: %v", round, err)
		}
		for qi := range wantBatch {
			assertHitsEqual(t, "chaos AlignBatch", wantBatch[qi], gotBatch[qi])
		}
		scans++
	}
	if scans != 100 {
		t.Fatalf("ran %d scans, want 100", scans)
	}
	if faultinject.Fired(faultinject.SiteShardDispatch) == 0 {
		t.Fatal("dispatch site never fired; the chaos run tested nothing")
	}
	if DefaultMetrics().Snapshot().Counters["scan.retries"] == 0 {
		t.Fatal("no retries recorded; injected failures were not absorbed by the retry layer")
	}

	faultinject.Disable()
	waitGoroutineBaseline(t, before)
	assertPoolIdle(t)
}

// assertRecordHitsEqual is assertHitsEqual for attributed hits.
func assertRecordHitsEqual(t *testing.T, label string, want, got []RecordHit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestPartialResultsExactShardCoverage pins the partial-result contract:
// with sticky injections (shards that fail every attempt, exhausting any
// retry budget) and WithPartialResults, the scan completes, the
// *PartialError's ranges are exactly the shards whose injections fired
// (faultinject.FiredKeys), and the returned hits are exactly the oracle's
// hits outside those ranges.
func TestPartialResultsExactShardCoverage(t *testing.T) {
	ref, genes := SyntheticReference(31, 80_000, 4, 25)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	const shardLen = 2048
	oracle := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(shardLen))
	want := oracle.Align(ref)
	if len(want) == 0 {
		t.Fatal("oracle found no hits; coverage check is vacuous")
	}
	q1, err := NewQuery(genes[1].Protein)
	if err != nil {
		t.Fatal(err)
	}
	oracle1 := mustConformAligner(t, q1, WithThresholdFraction(0.7), WithShardLen(shardLen))
	want1 := oracle1.Align(ref)

	faultinject.Enable(55, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.3, Sticky: true, Fail: true},
	})
	defer faultinject.Disable()

	a := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(shardLen),
		WithRetryPolicy(RetryPolicy{MaxRetries: 1, Base: 10 * time.Microsecond}),
		WithPartialResults())
	hits, err := a.AlignContext(context.Background(), ref)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("sticky faults under partial mode returned %v, want *PartialError", err)
	}
	if !strings.Contains(pe.Error(), "partial scan") {
		t.Fatalf("PartialError message %q", pe.Error())
	}

	// The failed ranges must be exactly the sticky-fired shards.
	shards := sched.Plan(ref.Len()-q.Elements()+1, shardLen)
	firedKeys := faultinject.FiredKeys(faultinject.SiteShardDispatch)
	if len(firedKeys) == 0 || len(firedKeys) == len(shards) {
		t.Fatalf("sticky plan fired on %d/%d shards; want a proper subset", len(firedKeys), len(shards))
	}
	if len(pe.Failed) != len(firedKeys) {
		t.Fatalf("PartialError lists %d ranges, injections fired on %d shards", len(pe.Failed), len(firedKeys))
	}
	failedSet := make(map[int]bool)
	for i, key := range firedKeys {
		s := shards[key]
		if pe.Failed[i].Lo != s.Lo || pe.Failed[i].Hi != s.Hi {
			t.Fatalf("range %d = [%d,%d), want shard %d's [%d,%d)",
				i, pe.Failed[i].Lo, pe.Failed[i].Hi, key, s.Lo, s.Hi)
		}
		if !errors.Is(pe.Failed[i].Err, faultinject.ErrInjected) {
			t.Fatalf("range %d error %v is not the injected fault", i, pe.Failed[i].Err)
		}
		failedSet[int(key)] = true
	}

	// Hits = oracle hits outside the failed ranges, in order.
	inFailed := func(pos int) bool {
		for _, r := range pe.Failed {
			if pos >= r.Lo && pos < r.Hi {
				return true
			}
		}
		return false
	}
	var surviving []Hit
	for _, h := range want {
		if !inFailed(h.Pos) {
			surviving = append(surviving, h)
		}
	}
	assertHitsEqual(t, "partial surviving hits", surviving, hits)
	if len(hits) == len(want) {
		t.Fatal("no oracle hits fell in failed ranges; the filter check is vacuous — pick a different seed")
	}

	// A query whose hit sits in a surviving shard comes back complete —
	// degradation drops only the failed ranges, not the whole scan.
	a1 := mustConformAligner(t, q1, WithThresholdFraction(0.7), WithShardLen(shardLen),
		WithRetryPolicy(RetryPolicy{MaxRetries: 1, Base: 10 * time.Microsecond}),
		WithPartialResults())
	hits1, err := a1.AlignContext(context.Background(), ref)
	if !errors.As(err, &pe) {
		t.Fatalf("surviving-shard query returned %v, want *PartialError", err)
	}
	if len(want1) == 0 || failedSet[genes[1].Pos/shardLen] {
		t.Fatal("gene 1 does not sit in a surviving shard; the survivor check is vacuous")
	}
	assertHitsEqual(t, "surviving-shard query", want1, hits1)

	if DefaultMetrics().Snapshot().Counters["scan.partial"] == 0 {
		t.Fatal("scan.partial not counted")
	}
}

// TestPartialResultsStreamCoverage is the stream-path arm of the partial
// contract: AlignDatabaseStreamContext under sticky faults emits every
// surviving shard's hits in order and returns the same exact-coverage
// *PartialError.
func TestPartialResultsStreamCoverage(t *testing.T) {
	ref, genes := SyntheticReference(31, 80_000, 4, 25)
	dbase, err := DatabaseFromReference("partial-stream", ref)
	if err != nil {
		t.Fatal(err)
	}
	// Gene 1's shard survives seed 55's sticky selection, so its hit must
	// stream through the degraded scan.
	q, err := NewQuery(genes[1].Protein)
	if err != nil {
		t.Fatal(err)
	}
	const shardLen = 2048

	faultinject.Enable(55, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.3, Sticky: true, Fail: true},
	})
	defer faultinject.Disable()

	a := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(shardLen),
		WithRetryPolicy(RetryPolicy{MaxRetries: 1, Base: 10 * time.Microsecond}),
		WithPartialResults())
	var streamed []RecordHit
	err = a.AlignDatabaseStreamContext(context.Background(), dbase, func(h RecordHit) error {
		streamed = append(streamed, h)
		return nil
	})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("stream under sticky faults returned %v, want *PartialError", err)
	}
	firedKeys := faultinject.FiredKeys(faultinject.SiteShardDispatch)
	if len(pe.Failed) != len(firedKeys) {
		t.Fatalf("stream PartialError lists %d ranges, injections fired on %d shards",
			len(pe.Failed), len(firedKeys))
	}
	shards := sched.Plan(ref.Len()-q.Elements()+1, shardLen)
	for i, key := range firedKeys {
		if pe.Failed[i].Lo != shards[key].Lo || pe.Failed[i].Hi != shards[key].Hi {
			t.Fatalf("stream range %d = [%d,%d), want [%d,%d)",
				i, pe.Failed[i].Lo, pe.Failed[i].Hi, shards[key].Lo, shards[key].Hi)
		}
	}
	if len(streamed) == 0 {
		t.Fatal("no hits survived; stream partial test is vacuous")
	}
}

// TestChaosNonPartialShardFailureFailsScan: without WithPartialResults an
// unrecoverable (sticky, budget-exhausting) shard failure fails the whole
// scan with the shard range named — no silent hit loss.
func TestChaosNonPartialShardFailureFailsScan(t *testing.T) {
	ref, genes := SyntheticReference(31, 80_000, 4, 25)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(55, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.3, Sticky: true, Fail: true},
	})
	defer faultinject.Disable()

	a := mustConformAligner(t, q, WithThresholdFraction(0.7), WithShardLen(2048),
		WithRetryPolicy(RetryPolicy{MaxRetries: 1, Base: 10 * time.Microsecond}))
	hits, err := a.AlignContext(context.Background(), ref)
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sticky faults without partial mode: err = %v, want the injected failure", err)
	}
	if !strings.Contains(err.Error(), "shard [") {
		t.Fatalf("failure %q does not name the shard range", err)
	}
	if hits != nil {
		t.Fatalf("failed scan returned %d hits; must return none", len(hits))
	}
}

// TestChaosDBSectionLoadInjection: the db.section.load hook turns a load
// into a corrupt-database failure that matches both the public corruption
// sentinel and the injection sentinel.
func TestChaosDBSectionLoadInjection(t *testing.T) {
	ref, _ := SyntheticReference(9, 4_000, 2, 20)
	dbase, err := DatabaseFromReference("dbfault", ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := dbase.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(1, faultinject.Plan{faultinject.SiteDBSection: {Nth: 1, Fail: true}})
	defer faultinject.Disable()
	if _, err := LoadDatabase(strings.NewReader(buf.String())); !errors.Is(err, ErrCorruptDatabase) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected section fault: %v, want ErrCorruptDatabase wrapping the injection", err)
	}
	// The nth trigger has passed: the very next load succeeds unchanged.
	if _, err := LoadDatabase(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("load after the injection window: %v", err)
	}
}

// TestChaosPlaneCacheEvictionStorm: eviction-storm injections force
// repacks (cache.evictions grows) but never change scan results.
func TestChaosPlaneCacheEvictionStorm(t *testing.T) {
	ref, genes := SyntheticReference(13, 80_000, 3, 25)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a := mustConformAligner(t, q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	want := a.Align(ref)

	before := DefaultMetrics().Snapshot().Counters["cache.evictions"]
	faultinject.Enable(3, faultinject.Plan{faultinject.SiteCacheEvict: {Every: 1, Fail: true}})
	defer faultinject.Disable()
	for i := 0; i < 3; i++ {
		assertHitsEqual(t, "eviction-storm Align", want, a.Align(ref))
	}
	faultinject.Disable()
	after := DefaultMetrics().Snapshot().Counters["cache.evictions"]
	if after <= before {
		t.Fatalf("evictions %d -> %d; the storm never evicted", before, after)
	}
}
