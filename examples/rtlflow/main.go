// Rtlflow: the hardware engineer's path through the library — generate the
// FabP datapath as structural Verilog, produce a self-checking testbench
// from a real alignment, and read the resource/timing reports that feed
// Table I.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

import "fabp"

func main() {
	dir := os.TempDir()

	// 1. Resource/timing projection for the paper's builds on the real
	// device budgets.
	for _, residues := range []int{50, 250} {
		rep, err := fabp.SizeOnDevice(fabp.DeviceKintex7, residues, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}

	// 2. Structural netlist statistics for an inspectable small build.
	cfg := fabp.VerilogConfig{QueryResidues: 4, BeatElements: 8, Threshold: 10}
	stats, err := fabp.AnalyzeNetlist(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmall build (4 aa, beat 8): %d LUT6, %d FDRE, depth %d levels, est. Fmax %.0f MHz\n",
		stats.LUTs, stats.FFs, stats.Depth, stats.FMaxHz/1e6)

	// 3. Emit the Verilog module and a self-checking testbench whose
	// stimulus is a real alignment, cross-checked against the Go model.
	modPath := filepath.Join(dir, "fabp_demo.v")
	tbPath := filepath.Join(dir, "fabp_demo_tb.v")
	mod, err := os.Create(modPath)
	if err != nil {
		log.Fatal(err)
	}
	defer mod.Close()
	tb, err := os.Create(tbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	if err := fabp.GenerateTestbench(mod, tb, cfg, 128, 2021); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s and %s\n", modPath, tbPath)
	fmt.Println("simulate with: iverilog -o sim fabp_demo.v fabp_demo_tb.v && vvp sim")
	fmt.Println("(requires Xilinx unisim models or any LUT6/FDRE behavioral library)")

	// 4. The pop-counter ablation the paper reports in §III-D.
	out, err := fabp.RunExperiment("popcount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(out)
}
