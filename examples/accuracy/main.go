// Accuracy: reproduces the paper's §IV-A argument that dropping indel
// support costs almost nothing, and our serine-encoding ablation.
//
// It prints the indel-incidence/accuracy table (how often the
// substitution-only engine still finds the true locus, versus TBLASTN) and
// the cost of the paper's UCD serine template.
package main

import (
	"fmt"
	"log"

	"fabp"
)

func main() {
	fmt.Println("Reproducing §IV-A (indel incidence and accuracy)...")
	out, err := fabp.RunExperiment("accuracy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("Serine-encoding ablation (the paper's UCD template drops AGU/AGC)...")
	out, err = fabp.RunExperiment("serine")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// A concrete, inspectable case: one query with a forced indel.
	orig, err := fabp.RandomProtein(5, 60)
	if err != nil {
		log.Fatal(err)
	}
	withIndel, hadIndel, err := fabp.MutateProtein(12345, orig, 0.0, 50 /* force indels */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worked example — indel applied: %v\n", hadIndel)
	sw, err := fabp.SmithWaterman(orig, withIndel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Smith-Waterman vs original: score %d, CIGAR %s, %d gap columns\n",
		sw.Score, sw.CIGAR, sw.Gaps)
	fmt.Println("FabP scores such a query lower at the true locus (the frame shifts after")
	fmt.Println("the indel), which is exactly the rare failure mode the paper accepts.")
}
