// Deployment: the full production flow a FabP adopter runs — build a
// packed database, keep it resident on the accelerator card, derive
// statistically sound thresholds, batch queries against it with end-to-end
// timing, and verify hits with Smith-Waterman.
package main

import (
	"fmt"
	"log"

	"fabp"
)

func main() {
	// A 500 knt "genome" with 12 coding regions.
	ref, genes := fabp.SyntheticReference(77, 500_000, 12, 90)
	db, err := fabp.DatabaseFromReference("genome", ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d nt, %d records\n", db.Len(), db.NumRecords())

	// Candidate coding regions (sanity statistics a host would log).
	orfs := fabp.FindORFs(ref, 60)
	fmt.Printf("ORFs >= 60 residues in 6 frames: %d\n\n", len(orfs))

	// Card session: database transfers to FPGA DRAM once.
	sess, err := fabp.NewSession(db)
	if err != nil {
		log.Fatal(err)
	}

	// Queries: diverged homologs of three planted genes.
	var queries []*fabp.Query
	for i := 0; i < 3; i++ {
		mut, _, err := fabp.MutateProtein(int64(10+i), genes[i].Protein, 0.05, 0.09)
		if err != nil {
			log.Fatal(err)
		}
		q, err := fabp.NewQuery(mut)
		if err != nil {
			log.Fatal(err)
		}
		queries = append(queries, q)
	}

	// Statistically derived threshold for the first query.
	q0 := queries[0]
	thr, err := q0.SuggestThreshold(db.Len(), 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 0: %d aa; null mean %.0f, suggested threshold %d/%d (E[FP]<=0.01)\n\n",
		q0.Residues(), q0.NullMeanScore(), thr, q0.MaxScore())

	// End-to-end single query with the timing decomposition the paper
	// measures.
	hits, timing, err := sess.Run(q0, float64(thr)/float64(q0.MaxScore()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single query: %d hits\n", len(hits))
	fmt.Printf("  encode    %8.1f µs\n", timing.Encode*1e6)
	fmt.Printf("  transfer  %8.1f µs\n", timing.QueryTransfer*1e6)
	fmt.Printf("  kernel    %8.1f µs\n", timing.Kernel*1e6)
	fmt.Printf("  readback  %8.1f µs\n", timing.Readback*1e6)
	fmt.Printf("  total     %8.1f µs\n\n", timing.Total*1e6)

	// Batched queries amortize the resident database.
	perQuery, totalSec, err := sess.RunBatch(queries, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d queries: %.2f ms end-to-end\n", len(queries), 1000*totalSec)
	for i, hs := range perQuery {
		fmt.Printf("  query %d: %d hits", i, len(hs))
		if len(hs) > 0 {
			fmt.Printf(" (best at %s:%d score %d)", hs[0].RecordID, hs[0].Offset, hs[0].Score)
		}
		fmt.Println()
	}

	// Verified output for the first query: FabP prefilter + gapped SW.
	a, err := fabp.NewAligner(q0, fabp.WithThreshold(thr))
	if err != nil {
		log.Fatal(err)
	}
	verified, err := a.AlignVerified(ref, fabp.VerifyOptions{MaxHits: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified top hit:")
	if len(verified) > 0 {
		v := verified[0]
		fmt.Printf("pos %d, FabP %d/%d (E=%.2g), SW %d, identity %.0f%%\n",
			v.Pos, v.Score, q0.MaxScore(), a.EValueOf(v.Score, ref.Len()),
			v.SWScore, 100*v.Identity)
		fmt.Println(v.Pretty)
	}
}
