// Proteinsearch: the paper's motivating scenario — identify the
// functionality of unknown protein sequences by locating their most similar
// coding regions in a genome-scale nucleotide database.
//
// A 2 Mnt synthetic "genome" carries 40 planted genes. Unknown queries are
// diverged copies of some of them (5 % substitutions plus the empirical
// indel rate). The example runs the FabP engine and the TBLASTN baseline on
// every query and compares what each recovers.
package main

import (
	"fmt"
	"log"
	"time"

	"fabp"
)

func main() {
	const (
		refLen   = 2_000_000
		genes    = 40
		geneLen  = 120
		queries  = 10
		queryLen = 60
	)
	ref, planted := fabp.SyntheticReference(7, refLen, genes, geneLen)
	fmt.Printf("database: %d nt with %d coding regions\n", ref.Len(), len(planted))
	fmt.Printf("%d unknown queries of %d aa (diverged homologs)\n\n", queries, queryLen)

	var fabpFound, tblastnFound int
	var fabpTime, tblastnTime time.Duration

	for i := 0; i < queries; i++ {
		src := planted[i*3%len(planted)]
		sub := src.Protein[:queryLen]
		mutated, hadIndel, err := fabp.MutateProtein(int64(100+i), sub, 0.05, 0.09)
		if err != nil {
			log.Fatal(err)
		}
		truth := src.Pos

		query, err := fabp.NewQuery(mutated)
		if err != nil {
			log.Fatal(err)
		}
		aligner, err := fabp.NewAligner(query, fabp.WithThresholdFraction(0.8))
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		hits := aligner.Align(ref)
		fabpTime += time.Since(start)

		fabpHit := false
		for _, h := range hits {
			if near(h.Pos, truth, 12) {
				fabpHit = true
				break
			}
		}
		if fabpHit {
			fabpFound++
		}

		start = time.Now()
		hsps, err := fabp.SearchTBLASTN(query, ref, fabp.TBLASTNOptions{Threads: 4, ForwardOnly: true})
		tblastnTime += time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		tbHit := false
		for _, h := range hsps {
			if near(h.NucPos, truth, 3*queryLen) {
				tbHit = true
				break
			}
		}
		if tbHit {
			tblastnFound++
		}

		fmt.Printf("query %2d (indel=%v): FabP %s (%d hits), TBLASTN %s (%d HSPs)\n",
			i, hadIndel, mark(fabpHit), len(hits), mark(tbHit), len(hsps))
	}

	fmt.Printf("\nrecovered loci: FabP %d/%d, TBLASTN %d/%d\n", fabpFound, queries, tblastnFound, queries)
	fmt.Printf("software wall clock: FabP engine %v, TBLASTN %v\n", fabpTime, tblastnTime)

	cmp, err := fabp.ComparePlatforms(queryLen, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected at paper scale (1 Gnt database, %d aa query):\n", queryLen)
	fmt.Printf("  FabP/Kintex-7 : %8.1f ms  %5.1f W\n", 1000*cmp.FabP.Seconds, cmp.FabP.Watts)
	fmt.Printf("  GTX 1080Ti    : %8.1f ms  %5.1f W\n", 1000*cmp.GPU.Seconds, cmp.GPU.Watts)
	fmt.Printf("  CPU 12-thread : %8.1f ms  %5.1f W\n", 1000*cmp.CPU12.Seconds, cmp.CPU12.Watts)
}

func near(a, b, tol int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func mark(ok bool) string {
	if ok {
		return "found"
	}
	return "MISSED"
}
