// Designspace: explores the accelerator design space the paper discusses in
// §IV-B — where the bandwidth-bound / resource-bound crossover falls, how
// bigger FPGAs move it, and what extra memory channels buy.
package main

import (
	"fmt"
	"log"

	"fabp"
)

func main() {
	fmt.Println("Query-length sweep on the paper's Kintex-7:")
	fmt.Printf("%10s  %5s  %6s  %18s  %10s  %8s\n",
		"residues", "iter", "LUT", "bottleneck", "time (ms)", "GB/s")
	for _, res := range []int{25, 50, 75, 100, 150, 200, 250} {
		rep, err := fabp.SizeOnDevice(fabp.DeviceKintex7, res, 0)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Fits {
			fmt.Printf("%10d  does not fit\n", res)
			continue
		}
		fmt.Printf("%10d  %5d  %5.0f%%  %18s  %10.1f  %8.1f\n",
			res, rep.Iterations, 100*rep.LUTFrac, rep.Bottleneck,
			1000*rep.Seconds, rep.AchievedBandwidth/1e9)
	}

	fmt.Println("\nSame sweep on a Virtex UltraScale+ (more LUTs → later crossover,")
	fmt.Println("as §IV-B predicts: 'an FPGA with more LUTs can outperform the GPU'):")
	for _, res := range []int{50, 150, 250} {
		k, err := fabp.SizeOnDevice(fabp.DeviceKintex7, res, 0)
		if err != nil {
			log.Fatal(err)
		}
		v, err := fabp.SizeOnDevice(fabp.DeviceVirtexUS, res, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  FabP-%-3d  Kintex-7: %d iter, %6.1f ms   VU9P: %d iter, %6.1f ms\n",
			res, k.Iterations, 1000*k.Seconds, v.Iterations, 1000*v.Seconds)
	}

	fmt.Println("\nMemory-channel scaling (bandwidth-bound builds):")
	out, err := fabp.RunExperiment("channels")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("Crossover sweep detail:")
	out, err = fabp.RunExperiment("crossover")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
