// Quickstart: back-translate a protein query, align it against a small
// synthetic database with the FabP engine, and project the accelerator
// build on the paper's Kintex-7.
package main

import (
	"fmt"
	"log"

	"fabp"
)

func main() {
	// A synthetic database with one known gene planted in random DNA.
	ref, genes := fabp.SyntheticReference(1, 20_000, 1, 40)
	target := genes[0]
	fmt.Printf("database: %d nt, planted gene at %d\n", ref.Len(), target.Pos)

	// Prepare the query: back-translation + 6-bit encoding.
	query, err := fabp.NewQuery(target.Protein)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", query.Protein())
	fmt.Printf("degenerate back-translation: %s\n", query.Degenerate())

	// Align at 90% of the maximum score.
	aligner, err := fabp.NewAligner(query, fabp.WithThresholdFraction(0.9))
	if err != nil {
		log.Fatal(err)
	}
	for _, hit := range aligner.Align(ref) {
		fmt.Printf("hit: position %d, score %d/%d\n", hit.Pos, hit.Score, query.MaxScore())
	}

	// What would this build cost on the paper's FPGA?
	report, err := fabp.SizeOnDevice(fabp.DeviceKintex7, query.Residues(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
}
