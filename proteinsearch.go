package fabp

import (
	"context"

	"fabp/internal/bio"
	"fabp/internal/tblastn"
)

// This file wires the protein-search workload (TBLASTN: a protein query
// against the six translated frames of a nucleotide target) through the
// unified Scan spine. Protein searches get the same production surface
// as nucleotide scans — context cancellation, sched-pool sharding, the
// content-addressed result cache, serve-layer admission — instead of
// the serial sidecar internal/tblastn used to be. See DESIGN.md §15.

// Sentinel option values for ProteinSearchOptions, re-exported from
// internal/tblastn. The zero value of each field selects the BLAST
// default, so maximal sensitivity needs an explicit spelling.
const (
	// MinScoreAll keeps every HSP the extender produces (no raw-score
	// cutoff); the zero MinScore selects the BLAST default (35).
	MinScoreAll = tblastn.MinScoreAll
	// NeighborThresholdAll admits effectively every word pair into the
	// seed index; the zero NeighborThreshold selects the BLAST default (11).
	NeighborThresholdAll = tblastn.NeighborThresholdAll
)

// ProteinSearchOptions tune a TBLASTN-style protein search. The zero
// value selects BLAST-flavoured defaults (all six frames, one-hit
// seeding, MinScore 35).
type ProteinSearchOptions struct {
	// Threads is the scan worker count (0 = 1). The HSP set, order, and
	// stats are invariant under Threads, so it is excluded from the
	// result-cache key.
	Threads int
	// Frames limits the search to the first N translated frames
	// (3 = forward strand only, 6 = full TBLASTN; 0 = 6).
	Frames int
	// MinScore discards HSPs below this raw BLOSUM62 score. Zero selects
	// the BLAST default (35); MinScoreAll keeps every HSP.
	MinScore int
	// NeighborThreshold is the word-pair score to enter the seed index.
	// Zero selects the BLAST default (11); NeighborThresholdAll admits
	// effectively every pair.
	NeighborThreshold int
	// TwoHit requires two non-overlapping same-diagonal word hits before
	// extending (BLAST's default seeding strategy).
	TwoHit bool
	// MaxEValue, when positive, discards HSPs whose Karlin-Altschul
	// E-value exceeds it.
	MaxEValue float64
}

// tblastnOptions maps the facade options onto the pipeline's option set.
func (o *ProteinSearchOptions) tblastnOptions() tblastn.Options {
	return tblastn.Options{
		Threads:           o.Threads,
		Frames:            o.Frames,
		MinScore:          o.MinScore,
		NeighborThreshold: o.NeighborThreshold,
		TwoHit:            o.TwoHit,
		MaxEValue:         o.MaxEValue,
	}
}

// ProteinSearchStats profiles one protein search's pipeline costs.
// All fields are invariant under ProteinSearchOptions.Threads.
type ProteinSearchStats struct {
	// IndexEntries is the query neighborhood index's posting count.
	IndexEntries int
	// WordLookups/WordHits/Extensions count the scan phases; HSPs the
	// surviving segment pairs.
	WordLookups int
	WordHits    int
	Extensions  int
	HSPs        int
}

// proteinKey is the protein-search slice of the scan cache key: the
// resolved pipeline options that determine the result. Threads is
// deliberately absent — the scan is thread-invariant, so results are
// shared across worker counts.
type proteinKey struct {
	neighborThreshold int
	hitWindow         int
	xdrop             int
	minScore          int
	frames            int
	refineMargin      int
	twoHit            bool
	gappedRefine      bool
	keepContained     bool
	maxEValue         float64
}

// proteinKeyOf extracts the cache-key slice from resolved options.
func proteinKeyOf(o *tblastn.Options) proteinKey {
	return proteinKey{
		neighborThreshold: o.NeighborThreshold,
		hitWindow:         o.HitWindow,
		xdrop:             o.XDrop,
		minScore:          o.MinScore,
		frames:            o.Frames,
		refineMargin:      o.RefineMargin,
		twoHit:            o.TwoHit,
		gappedRefine:      o.GappedRefine,
		keepContained:     o.KeepContained,
		maxEValue:         o.MaxEValue,
	}
}

// executeProteinSearch is the plan's cold path: run the pipeline over
// the target's nucleotide sequence and shape the result.
func (p *scanPlan) executeProteinSearch(ctx context.Context) (*ScanResult, error) {
	hsps, st, err := tblastn.SearchContext(ctx, p.req.Query.protein, p.targetSeq(), *p.protein)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Remaining failures are query-shaped (too short for the word
		// size, or an index with no entries at the resolved threshold).
		return nil, badQuery(err)
	}
	return &ScanResult{
		HSPs: hspsFromInternal(hsps),
		ProteinStats: &ProteinSearchStats{
			IndexEntries: st.IndexEntries,
			WordLookups:  st.WordLookups,
			WordHits:     st.WordHits,
			Extensions:   st.Extensions,
			HSPs:         st.HSPs,
		},
	}, nil
}

// targetSeq returns the plan target's nucleotide sequence.
func (p *scanPlan) targetSeq() bio.NucSeq {
	if p.req.Database != nil {
		return p.req.Database.d.Seq()
	}
	return p.req.Reference.seq
}

// hspsFromInternal converts pipeline HSPs to the facade shape.
func hspsFromInternal(hsps []tblastn.HSP) []HSP {
	out := make([]HSP, len(hsps))
	for i, h := range hsps {
		out[i] = HSP{
			Frame:    h.Frame.String(),
			QStart:   h.QStart,
			QEnd:     h.QEnd,
			SStart:   h.SStart,
			SEnd:     h.SEnd,
			NucPos:   h.NucPos,
			Score:    h.Score,
			BitScore: h.BitScore,
			EValue:   h.EValue,
		}
	}
	return out
}

// SearchProtein runs a TBLASTN-style protein search against ref through
// the Scan spine (result cache included, when enabled). It returns the
// HSPs sorted best-first; use Scan directly for stats, cache provenance,
// and MaxHits control.
func SearchProtein(query *Query, ref *Reference, opts ProteinSearchOptions) ([]HSP, error) {
	return SearchProteinContext(context.Background(), query, ref, opts)
}

// SearchProteinContext is SearchProtein with cancellation: the scan
// observes ctx at shard dispatch and merge and returns ctx.Err() once
// it fires.
func SearchProteinContext(ctx context.Context, query *Query, ref *Reference, opts ProteinSearchOptions) ([]HSP, error) {
	res, err := Scan(ctx, ScanRequest{Query: query, Reference: ref, ProteinSearch: &opts})
	if err != nil {
		return nil, err
	}
	return res.HSPs, nil
}
