package fabp

import (
	"errors"
	"fmt"
)

// The facade's error taxonomy. Every error the public API returns is
// reachable through errors.Is / errors.As against one of four heads:
//
//	ErrBadQuery          the query text or ScanRequest.Query is unusable
//	ErrBadOption         an option, ScanRequest field, or combination is invalid
//	*PartialError        a scan completed degraded (errors.As; hits are valid)
//	*db.CorruptError     a database file is structurally damaged
//	                     (errors.Is(err, ErrCorruptDatabase))
//
// Context errors (context.Canceled, context.DeadlineExceeded) pass
// through untagged. The sentinels wrap, they do not replace: tagged
// errors keep their original messages, so string output is unchanged.
// See DESIGN.md §13 for the full contract.
var (
	// ErrBadQuery matches errors caused by unusable query input: an
	// unparsable or empty protein string, a nil ScanRequest.Query.
	ErrBadQuery = errors.New("fabp: bad query")
	// ErrBadOption matches errors caused by invalid configuration: a
	// NewAligner option out of range, an invalid ScanRequest field, or a
	// conflicting combination.
	ErrBadOption = errors.New("fabp: bad option")
)

// taggedError attaches a sentinel to an error without touching its
// message: Error() is the inner error's text verbatim, and Unwrap
// exposes both the sentinel (for errors.Is) and the inner error (so
// wrapped chains like *db.CorruptError stay reachable).
type taggedError struct {
	tag error
	err error
}

func (e *taggedError) Error() string   { return e.err.Error() }
func (e *taggedError) Unwrap() []error { return []error{e.tag, e.err} }

// badQuery tags err as ErrBadQuery (nil passes through).
func badQuery(err error) error {
	if err == nil {
		return nil
	}
	return &taggedError{tag: ErrBadQuery, err: err}
}

// badOption tags err as ErrBadOption (nil passes through).
func badOption(err error) error {
	if err == nil {
		return nil
	}
	return &taggedError{tag: ErrBadOption, err: err}
}

// badOptionf formats a new ErrBadOption-tagged error.
func badOptionf(format string, args ...any) error {
	return badOption(fmt.Errorf(format, args...))
}

// badQueryf formats a new ErrBadQuery-tagged error.
func badQueryf(format string, args ...any) error {
	return badQuery(fmt.Errorf(format, args...))
}
