package fabp

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fabp/internal/tblastn"
)

// proteinFixture plants mutated copies of a query protein in a synthetic
// reference and returns the prepared pair.
func proteinFixture(t *testing.T, seed int64, refLen int) (*Query, *Reference) {
	t.Helper()
	ref, genes := SyntheticReference(seed, refLen, 3, 30)
	mut, _, err := MutateProtein(seed+1, genes[0].Protein, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(mut)
	if err != nil {
		t.Fatal(err)
	}
	return q, ref
}

// TestSearchProteinMatchesSerialOracle is the acceptance criterion:
// protein search through the Scan spine must be byte-identical to the
// serial tblastn pipeline for Threads ∈ {1, 4, 8}, TwoHit on and off —
// HSPs and stats both.
func TestSearchProteinMatchesSerialOracle(t *testing.T) {
	q, ref := proteinFixture(t, 31, 60_000)
	for _, twoHit := range []bool{false, true} {
		oracle, oStats, err := tblastn.Search(q.protein, ref.seq, tblastn.Options{Threads: 1, TwoHit: twoHit})
		if err != nil {
			t.Fatal(err)
		}
		want := hspsFromInternal(oracle)
		for _, threads := range []int{1, 4, 8} {
			res, err := Scan(context.Background(), ScanRequest{
				Query: q, Reference: ref,
				ProteinSearch: &ProteinSearchOptions{Threads: threads, TwoHit: twoHit},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.HSPs, want) {
				t.Fatalf("twoHit=%v threads=%d: spine HSPs diverge from serial oracle (%d vs %d)",
					twoHit, threads, len(res.HSPs), len(want))
			}
			got := *res.ProteinStats
			if got != (ProteinSearchStats{
				IndexEntries: oStats.IndexEntries, WordLookups: oStats.WordLookups,
				WordHits: oStats.WordHits, Extensions: oStats.Extensions, HSPs: oStats.HSPs,
			}) {
				t.Fatalf("twoHit=%v threads=%d: stats diverge: %+v vs %+v", twoHit, threads, got, oStats)
			}
		}
	}
}

// TestScanProteinRequestValidation pins the option surface: nucleotide
// knobs are rejected with ErrBadOption, bad pipeline options too, and
// errors flow through the usual taxonomy.
func TestScanProteinRequestValidation(t *testing.T) {
	q, ref := proteinFixture(t, 32, 9_000)
	ps := func(o ProteinSearchOptions) *ProteinSearchOptions { return &o }
	thr := 10
	cases := []struct {
		name string
		req  ScanRequest
		want error
	}{
		{"threshold", ScanRequest{Query: q, Reference: ref, Threshold: &thr, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"thresholdFrac", ScanRequest{Query: q, Reference: ref, ThresholdFrac: 0.5, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"kernel", ScanRequest{Query: q, Reference: ref, Kernel: KernelScalar, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"shardLen", ScanRequest{Query: q, Reference: ref, ShardLen: 128, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"retry", ScanRequest{Query: q, Reference: ref, RetryPolicy: RetryPolicy{MaxRetries: 2}, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"partial", ScanRequest{Query: q, Reference: ref, Partial: true, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"maxHits", ScanRequest{Query: q, Reference: ref, MaxHits: -1, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
		{"frames", ScanRequest{Query: q, Reference: ref, ProteinSearch: ps(ProteinSearchOptions{Frames: 7})}, ErrBadOption},
		{"minScore", ScanRequest{Query: q, Reference: ref, ProteinSearch: ps(ProteinSearchOptions{MinScore: -2})}, ErrBadOption},
		{"threads", ScanRequest{Query: q, Reference: ref, ProteinSearch: ps(ProteinSearchOptions{Threads: -1})}, ErrBadOption},
		{"nilQuery", ScanRequest{Reference: ref, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadQuery},
		{"noTarget", ScanRequest{Query: q, ProteinSearch: ps(ProteinSearchOptions{})}, ErrBadOption},
	}
	for _, tc := range cases {
		if _, err := Scan(context.Background(), tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestScanProteinCache checks protein results flow through the result
// cache with correct provenance, that Threads is excluded from the key,
// and that MaxHits clips per-request without touching the cached copy.
func TestScanProteinCache(t *testing.T) {
	SetScanCacheCapacity(16 << 20)
	defer SetScanCacheCapacity(0)

	q, ref := proteinFixture(t, 33, 30_000)
	req := ScanRequest{Query: q, Reference: ref,
		ProteinSearch: &ProteinSearchOptions{Threads: 1, MinScore: MinScoreAll}}
	first, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != CacheMiss {
		t.Fatalf("first scan provenance %v, want miss", first.Cache)
	}
	if len(first.HSPs) < 2 {
		t.Fatalf("fixture too quiet: %d HSPs", len(first.HSPs))
	}

	// Same options at a different thread count must hit: the scan is
	// thread-invariant so Threads is not part of the key.
	req.ProteinSearch = &ProteinSearchOptions{Threads: 8, MinScore: MinScoreAll}
	second, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != CacheHit {
		t.Fatalf("second scan provenance %v, want hit", second.Cache)
	}
	if !reflect.DeepEqual(first.HSPs, second.HSPs) {
		t.Fatal("cached HSPs differ from the seeding scan")
	}

	// Different pipeline options must miss.
	req.ProteinSearch = &ProteinSearchOptions{Threads: 1, MinScore: MinScoreAll, TwoHit: true}
	third, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cache != CacheMiss {
		t.Fatalf("changed options provenance %v, want miss", third.Cache)
	}

	// MaxHits clips per-request; the resident copy stays complete.
	req.ProteinSearch = &ProteinSearchOptions{Threads: 1, MinScore: MinScoreAll}
	req.MaxHits = 1
	clippedRes, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(clippedRes.HSPs) != 1 || !clippedRes.Truncated {
		t.Fatalf("MaxHits=1: got %d HSPs, truncated=%v", len(clippedRes.HSPs), clippedRes.Truncated)
	}
	req.MaxHits = 0
	full, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.HSPs) != len(first.HSPs) {
		t.Fatalf("clipping leaked into the cache: %d vs %d HSPs", len(full.HSPs), len(first.HSPs))
	}

	// CachedScan (the server's pre-admission fast path) must see it too.
	if res, ok := CachedScan(req); !ok || res.Cache != CacheHit {
		t.Fatalf("CachedScan ok=%v", ok)
	}
}

// TestSearchTBLASTNDelegates pins the legacy facade onto the spine: same
// results as SearchProtein with the mapped options.
func TestSearchTBLASTNDelegates(t *testing.T) {
	q, ref := proteinFixture(t, 34, 20_000)
	legacy, err := SearchTBLASTN(q, ref, TBLASTNOptions{Threads: 2, ForwardOnly: true, TwoHit: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SearchProtein(q, ref, ProteinSearchOptions{Threads: 2, Frames: 3, TwoHit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, direct) {
		t.Fatalf("legacy facade diverges: %d vs %d HSPs", len(legacy), len(direct))
	}
}

// TestSearchProteinCancelMidScan cancels a sharded protein search mid-
// flight: it must return promptly with context.Canceled and leak no
// goroutines.
func TestSearchProteinCancelMidScan(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q, ref := proteinFixture(t, 35, 2_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SearchProteinContext(ctx, q, ref, ProteinSearchOptions{
			Threads: 8, MinScore: MinScoreAll, NeighborThreshold: NeighborThresholdAll,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Log("scan completed before cancel fired; leak check still applies")
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unwind the scan within 5s")
	}
	// Shed shards may still be draining; they must all exit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
