package fabp

import (
	"errors"
	"strings"
	"testing"
)

func TestNewQueryBasics(t *testing.T) {
	q, err := NewQuery("MFSR*")
	if err != nil {
		t.Fatal(err)
	}
	if q.Residues() != 5 || q.Elements() != 15 || q.MaxScore() != 15 {
		t.Errorf("query geometry wrong: %d %d", q.Residues(), q.Elements())
	}
	if q.Protein() != "MFSR*" {
		t.Errorf("protein %q", q.Protein())
	}
	want := "AUG-UU(U/C)-UCD-(A/C)G(F:10)-U(A/G)(F:00)"
	if q.Degenerate() != want {
		t.Errorf("degenerate %q, want %q", q.Degenerate(), want)
	}
	if len(q.Instructions()) != 15 {
		t.Error("instruction bytes")
	}
	if !strings.Contains(q.Disassemble(), "Type III") {
		t.Error("disassembly")
	}
}

func TestNewQueryErrors(t *testing.T) {
	if _, err := NewQuery(""); err == nil {
		t.Error("empty query must fail")
	}
	if _, err := NewQuery("MXZ"); err == nil {
		t.Error("invalid letters must fail")
	}
}

func TestReferenceParsing(t *testing.T) {
	r, err := NewReference("ACGT ACGU\nacgt")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 12 {
		t.Errorf("len %d", r.Len())
	}
	if r.String() != "ACGUACGUACGU" {
		t.Errorf("string %q", r.String())
	}
	if _, err := NewReference("ACGN"); err == nil {
		t.Error("invalid base must fail")
	}
}

func TestNewReferenceIUPAC(t *testing.T) {
	r, amb, err := NewReferenceIUPAC("ACGTNNNRYSWacgt")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 15 || amb != 7 {
		t.Errorf("len %d amb %d", r.Len(), amb)
	}
	if _, _, err := NewReferenceIUPAC("AC!"); err == nil {
		t.Error("invalid letter must fail")
	}
}

func TestReadReferenceFasta(t *testing.T) {
	in := ">chr1\nACGT\n>chr2\nGGGG\n"
	ref, offsets, err := ReadReferenceFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() != 8 || len(offsets) != 2 || offsets[1] != 4 {
		t.Errorf("fasta concat: len=%d offsets=%v", ref.Len(), offsets)
	}
	if _, _, err := ReadReferenceFasta(strings.NewReader("")); err == nil {
		t.Error("empty FASTA must fail")
	}
	if _, _, err := ReadReferenceFasta(strings.NewReader(">x\nMKW\n")); err == nil {
		t.Error("protein FASTA as reference must fail")
	}
}

func TestEndToEndPlantedGene(t *testing.T) {
	ref, genes := SyntheticReference(42, 50_000, 5, 60)
	if len(genes) != 5 {
		t.Fatal("planting failed")
	}
	g := genes[2]
	q, err := NewQuery(g.Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.9))
	if err != nil {
		t.Fatal(err)
	}
	hits := a.Align(ref)
	found := false
	for _, h := range hits {
		if h.Pos == g.Pos {
			found = true
		}
	}
	if !found {
		t.Errorf("planted gene at %d not found among %d hits", g.Pos, len(hits))
	}
	best, ok := a.Best(ref)
	if !ok || best.Pos != g.Pos {
		t.Errorf("best hit %+v, want pos %d", best, g.Pos)
	}
	score, err := a.ScoreAt(ref, g.Pos)
	if err != nil {
		t.Fatal(err)
	}
	if score < a.Threshold() {
		t.Errorf("true-locus score %d below threshold %d", score, a.Threshold())
	}
	if _, err := a.ScoreAt(ref, ref.Len()); err == nil {
		t.Error("out-of-range ScoreAt must fail")
	}
}

func TestSuggestThresholdFacade(t *testing.T) {
	q, _ := NewQuery("MKWVTFISLLFLFSSAYSRGVFRRMKWVTFISLL")
	thr, err := q.SuggestThreshold(1_000_000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if float64(thr) <= q.NullMeanScore() || thr > q.MaxScore() {
		t.Errorf("threshold %d implausible (null mean %.1f, max %d)",
			thr, q.NullMeanScore(), q.MaxScore())
	}
	// A planted gene must clear the suggested threshold.
	ref, genes := SyntheticReference(5, 200_000, 1, q.Residues())
	qq, _ := NewQuery(genes[0].Protein)
	thr2, err := qq.SuggestThreshold(ref.Len(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAligner(qq, WithThreshold(thr2))
	found := false
	for _, h := range a.Align(ref) {
		if h.Pos == genes[0].Pos {
			found = true
		}
	}
	if !found {
		t.Error("suggested threshold rejected the true positive")
	}
}

func TestAlignerOptions(t *testing.T) {
	q, _ := NewQuery("MKWVTFISLL")
	a1, err := NewAligner(q, WithThreshold(30), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Threshold() != 30 {
		t.Errorf("threshold %d", a1.Threshold())
	}
	a2, err := NewAligner(q, WithThresholdFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Threshold() != 15 {
		t.Errorf("fractional threshold %d", a2.Threshold())
	}
	if _, err := NewAligner(q, WithThreshold(1000)); err == nil {
		t.Error("threshold beyond max must fail")
	}
}

func TestKernelSelectionEquivalence(t *testing.T) {
	ref, genes := SyntheticReference(91, 100_000, 3, 40)
	q, _ := NewQuery(genes[1].Protein)
	var results [][]Hit
	for _, kernel := range []Kernel{KernelScalar, KernelBitParallel, KernelAuto} {
		a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, a.Align(ref))
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("kernel %d: %d hits vs %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("kernel %d hit %d differs", i, j)
			}
		}
	}
}

// TestWithKernelDeprecatedWrapper pins the deprecated string option's
// contract: it remains a working alias for WithKernelType (same scan
// behavior) and still rejects unknown names. New code should use
// WithKernelType; this is the one test that exercises the wrapper itself.
func TestWithKernelDeprecatedWrapper(t *testing.T) {
	ref, genes := SyntheticReference(91, 50_000, 2, 30)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	deprecated, err := NewAligner(q, WithThresholdFraction(0.7), WithKernel("bitparallel"))
	if err != nil {
		t.Fatal(err)
	}
	typed, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	want := typed.Align(ref)
	got := deprecated.Align(ref)
	if len(got) != len(want) {
		t.Fatalf("deprecated wrapper: %d hits, typed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: wrapper %+v, typed %+v", i, got[i], want[i])
		}
	}
	_, err = NewAligner(q, WithKernel("gpu"))
	if err == nil {
		t.Fatal("unknown kernel must fail")
	}
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("unknown-kernel error %v does not match ErrBadOption", err)
	}
}

func TestMutateProtein(t *testing.T) {
	orig, err := RandomProtein(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	mut, _, err := MutateProtein(8, orig, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mut) != len(orig) {
		t.Error("no-indel mutation must preserve length")
	}
	if mut == orig {
		t.Error("mutation should change something at 10%")
	}
	if _, _, err := MutateProtein(1, "XX", 0.1, 0); err == nil {
		t.Error("bad protein must fail")
	}
	if _, err := RandomProtein(1, 0); err == nil {
		t.Error("zero length must fail")
	}
}

func TestSizeOnDevice(t *testing.T) {
	rep, err := SizeOnDevice(DeviceKintex7, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits || rep.Iterations != 1 || rep.Bottleneck != "bandwidth-bound" {
		t.Errorf("FabP-50 report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "Kintex") {
		t.Error("report string")
	}
	rep250, err := SizeOnDevice("", 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep250.Iterations < 2 || rep250.Seconds <= rep.Seconds {
		t.Errorf("FabP-250 report: %+v", rep250)
	}
	if _, err := SizeOnDevice("nope", 50, 0); err == nil {
		t.Error("unknown device must fail")
	}
	if _, err := SizeOnDevice(DeviceKintex7, 0, 0); err == nil {
		t.Error("zero residues must fail")
	}
	huge, err := SizeOnDevice(DeviceArtix7, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = huge // may or may not fit; String must not panic either way
	_ = huge.String()
}

func TestGenerateVerilog(t *testing.T) {
	var sb strings.Builder
	luts, ffs, err := GenerateVerilog(&sb, VerilogConfig{
		QueryResidues: 2, BeatElements: 4, Threshold: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if luts == 0 || ffs == 0 {
		t.Error("empty netlist")
	}
	v := sb.String()
	if !strings.Contains(v, "module fabp_q6_b4") || !strings.Contains(v, "LUT6") {
		t.Error("verilog content")
	}
	var sb2 strings.Builder
	lutsTree, _, err := GenerateVerilog(&sb2, VerilogConfig{
		QueryResidues: 2, BeatElements: 4, Threshold: 5, TreeAdderPopcount: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lutsTree <= luts {
		t.Error("tree-adder build should be larger")
	}
	if _, _, err := GenerateVerilog(&sb, VerilogConfig{}); err == nil {
		t.Error("zero residues must fail")
	}
}

func TestAnalyzeNetlist(t *testing.T) {
	s, err := AnalyzeNetlist(VerilogConfig{QueryResidues: 3, BeatElements: 8, Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.LUTs == 0 || s.FFs == 0 || s.Depth < 3 {
		t.Errorf("stats implausible: %+v", s)
	}
	// The paper's 200 MHz operating point must be achievable per the
	// depth-based estimate (the real design pipelines the pop-counter).
	if s.FMaxHz < 100e6 {
		t.Errorf("FMax %.0f MHz too low", s.FMaxHz/1e6)
	}
	tree, err := AnalyzeNetlist(VerilogConfig{
		QueryResidues: 3, BeatElements: 8, Threshold: 5, TreeAdderPopcount: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.LUTs <= s.LUTs {
		t.Error("tree popcount should cost more LUTs")
	}
	if _, err := AnalyzeNetlist(VerilogConfig{}); err == nil {
		t.Error("zero residues must fail")
	}
}

func TestGenerateTestbench(t *testing.T) {
	var mod, tb strings.Builder
	err := GenerateTestbench(&mod, &tb, VerilogConfig{
		QueryResidues: 2, BeatElements: 4, Threshold: 5,
	}, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mod.String(), "module fabp_q6_b4") {
		t.Error("module missing")
	}
	for _, want := range []string{"module fabp_q6_b4_tb;", "TESTBENCH PASS", "stim["} {
		if !strings.Contains(tb.String(), want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	if err := GenerateTestbench(&mod, &tb, VerilogConfig{}, 0, 1); err == nil {
		t.Error("zero residues must fail")
	}
	// Segmented variant must also record and emit.
	var mod2, tb2 strings.Builder
	if err := GenerateTestbench(&mod2, &tb2, VerilogConfig{
		QueryResidues: 2, BeatElements: 4, Threshold: 5, Iterations: 2,
	}, 32, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mod2.String(), "module fabp_q6_b4_s2") {
		t.Error("segmented module name missing")
	}
}

func TestGenerateDOT(t *testing.T) {
	var sb strings.Builder
	if err := GenerateDOT(&sb, VerilogConfig{QueryResidues: 1, BeatElements: 2, Threshold: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph fabp_q3_b2") {
		t.Errorf("dot output wrong: %s", sb.String()[:80])
	}
	if err := GenerateDOT(&sb, VerilogConfig{}); err == nil {
		t.Error("zero residues must fail")
	}
}

func TestGeneratePrimitiveLibrary(t *testing.T) {
	var sb strings.Builder
	if err := GeneratePrimitiveLibrary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module LUT6", "module FDRE", "INIT[{I5, I4, I3, I2, I1, I0}]"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("primitive library missing %q", want)
		}
	}
}

func TestGenerateWaveform(t *testing.T) {
	var sb strings.Builder
	hits, err := GenerateWaveform(&sb, VerilogConfig{
		QueryResidues: 2, BeatElements: 4, Threshold: 6,
	}, 48, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("waveform run should find the planted gene")
	}
	for _, want := range []string{"$timescale", "$var wire 1", "hits_valid", "#1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	if _, err := GenerateWaveform(&sb, VerilogConfig{}, 0, 1); err == nil {
		t.Error("zero residues must fail")
	}
}

func TestComparePlatforms(t *testing.T) {
	c, err := ComparePlatforms(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.FabP.Seconds >= c.CPU12.Seconds {
		t.Error("FabP must beat the CPU")
	}
	if c.CPU12.Seconds >= c.CPU1.Seconds {
		t.Error("12 threads must beat 1")
	}
	if c.FabP.EnergyJoules >= c.GPU.EnergyJoules {
		t.Error("FabP must be more energy efficient than the GPU")
	}
}

func TestSearchTBLASTNFacade(t *testing.T) {
	ref, genes := SyntheticReference(11, 30_000, 3, 50)
	q, _ := NewQuery(genes[0].Protein)
	hsps, err := SearchTBLASTN(q, ref, TBLASTNOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("no HSPs")
	}
	top := hsps[0]
	if top.Frame != "+1" && top.Frame != "+2" && top.Frame != "+3" {
		t.Errorf("top frame %s", top.Frame)
	}
	if top.NucPos < genes[0].Pos-10 || top.NucPos > genes[0].Pos+150 {
		t.Errorf("top HSP at %d, planted at %d", top.NucPos, genes[0].Pos)
	}
}

func TestSmithWatermanFacade(t *testing.T) {
	r, err := SmithWaterman("MKWVTFISLL", "MKWVTFISLL")
	if err != nil {
		t.Fatal(err)
	}
	if r.Identity != 1 || r.Gaps != 0 || !strings.HasSuffix(r.CIGAR, "M") {
		t.Errorf("self SW: %+v", r)
	}
	if !strings.Contains(r.Pretty, "Query") || !strings.Contains(r.Pretty, "||||||||||") {
		t.Errorf("pretty rendering missing:\n%s", r.Pretty)
	}
	if _, err := SmithWaterman("XX", "MK"); err == nil {
		t.Error("bad sequence must fail")
	}
	if _, err := SmithWaterman("MK", "XX"); err == nil {
		t.Error("bad sequence must fail")
	}
}

func TestExperimentFacade(t *testing.T) {
	names := ExperimentNames()
	if len(names) < 9 {
		t.Fatalf("experiments: %v", names)
	}
	out, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FabP-250") {
		t.Error("table1 output")
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment must fail")
	}
	if BackTranslationTable() == "" {
		t.Error("encoding table empty")
	}
}
