// Command fabp-rtl generates the FabP accelerator datapath as structural
// Verilog (Xilinx LUT6/FDRE primitives) and prints a resource report plus
// the device projection for the paper's Kintex-7.
//
// Usage:
//
//	fabp-rtl -residues 4 -beat 8 -threshold 10 -o fabp.v
//	fabp-rtl -residues 50 -report-only   # Table I style projection only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-rtl: ")

	residues := flag.Int("residues", 4, "supported query length in amino acids")
	beat := flag.Int("beat", 8, "reference elements per AXI beat (paper: 256)")
	threshold := flag.Int("threshold", 0, "hit threshold (default: 80% of max score)")
	iterations := flag.Int("iterations", 1, "query segmentation factor (>1 emits the long-query datapath)")
	tree := flag.Bool("tree-popcount", false, "use the naive tree-adder pop-counter")
	out := flag.String("o", "", "output Verilog file (default: stdout)")
	tbOut := flag.String("tb", "", "also emit a self-checking testbench to this file")
	primOut := flag.String("primlib", "", "also emit behavioral LUT6/FDRE models to this file")
	dotOut := flag.String("dot", "", "also emit a Graphviz structural view to this file")
	reportOnly := flag.Bool("report-only", false, "skip Verilog generation, print the device projection")
	device := flag.String("device", "kintex7", "device for the projection: kintex7, virtexus, artix7")
	flag.Parse()

	rep, err := fabp.SizeOnDevice(fabp.DeviceName(*device), *residues, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, rep)

	if *reportOnly {
		// Timing analysis of a small-beat build (the full 256-beat netlist
		// is large; the comparator/pop-counter depth is beat-independent).
		stats, err := fabp.AnalyzeNetlist(fabp.VerilogConfig{
			QueryResidues: *residues, BeatElements: minInt(*beat, 8),
			Threshold: 3 * *residues * 8 / 10, Iterations: *iterations,
			TreeAdderPopcount: *tree,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timing: %d LUT levels, estimated Fmax %.0f MHz (unpipelined cone)\n",
			stats.Depth, stats.FMaxHz/1e6)
		return
	}

	thr := *threshold
	if thr == 0 {
		thr = 3 * *residues * 8 / 10
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	vcfg := fabp.VerilogConfig{
		QueryResidues:     *residues,
		BeatElements:      *beat,
		Threshold:         thr,
		Iterations:        *iterations,
		TreeAdderPopcount: *tree,
	}
	if *primOut != "" {
		pf, err := os.Create(*primOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := fabp.GeneratePrimitiveLibrary(pf); err != nil {
			log.Fatal(err)
		}
		pf.Close()
		fmt.Fprintf(os.Stderr, "emitted primitive library %s\n", *primOut)
	}
	if *dotOut != "" {
		df, err := os.Create(*dotOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := fabp.GenerateDOT(df, vcfg); err != nil {
			log.Fatal(err)
		}
		df.Close()
		fmt.Fprintf(os.Stderr, "emitted structural graph %s\n", *dotOut)
	}
	if *tbOut != "" {
		tf, err := os.Create(*tbOut)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		if err := fabp.GenerateTestbench(w, tf, vcfg, 0, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "emitted module + self-checking testbench %s\n", *tbOut)
		return
	}
	luts, ffs, err := fabp.GenerateVerilog(w, vcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated netlist: %d LUT6, %d FDRE (beat=%d, threshold=%d)\n",
		luts, ffs, *beat, thr)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
