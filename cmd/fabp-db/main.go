// Command fabp-db manages packed FabP reference databases: build one from
// FASTA (v2 format: payload + bit-planes + checksums), verify or inspect
// it, or search it with a protein query.
//
// Usage:
//
//	fabp-db build -in db.fasta -out db.fabp [-v1]
//	fabp-db verify -db db.fabp              # checksums + digest; exit 1 on damage
//	fabp-db inspect -db db.fabp [-json]     # file format, sections, digest
//	fabp-db info -db db.fabp
//	fabp-db search -db db.fabp -query MKWVTF... [-threshold-frac 0.85]
//	fabp-db demo -out demo.fabp     # write a synthetic demo database
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-db: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "demo":
		cmdDemo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fabp-db {build|verify|inspect|info|search|demo} [flags]")
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input nucleotide FASTA")
	out := fs.String("out", "", "output database file")
	legacy := fs.Bool("v1", false, "write the legacy v1 format (no checksums, no planes)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := fabp.BuildDatabase(f)
	if err != nil {
		log.Fatal(err)
	}
	writeDB(d, *out, *legacy)
	format := "v2"
	if *legacy {
		format = "v1"
	}
	fmt.Printf("built %s (%s): %d records, %d nt\n", *out, format, d.NumRecords(), d.Len())
}

// cmdVerify runs the full structural validation — magic, section
// checksums, content digest, plane section — and exits non-zero on any
// damage. A rejected plane section is reported but is not a failure (the
// file still loads, scans fall back to packing).
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	path := fs.String("db", "", "database file")
	fs.Parse(args)
	info := inspectFile(fs, *path)
	if info.PlaneError != "" {
		fmt.Printf("%s: OK (degraded) — v%d, %d records, %d nt, digest %s\n",
			*path, info.Version, info.Records, info.TotalNt, info.Digest)
		fmt.Printf("  plane section rejected (loads will re-pack): %s\n", info.PlaneError)
		return
	}
	fmt.Printf("%s: OK — v%d, %d records, %d nt, digest %s\n",
		*path, info.Version, info.Records, info.TotalNt, info.Digest)
}

// cmdInspect prints the file's on-disk shape, optionally as JSON.
func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("db", "", "database file")
	asJSON := fs.Bool("json", false, "emit JSON")
	fs.Parse(args)
	info := inspectFile(fs, *path)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(info); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("format:   v%d\n", info.Version)
	fmt.Printf("records:  %d\n", info.Records)
	fmt.Printf("total:    %d nt\n", info.TotalNt)
	fmt.Printf("digest:   %s\n", info.Digest)
	fmt.Printf("sections: index %d B, payload %d B, planes %d B\n",
		info.IndexBytes, info.PayloadBytes, info.PlaneBytes)
	switch {
	case info.HasPlanes:
		fmt.Println("planes:   present (warm start: loads skip packing)")
	case info.PlaneError != "":
		fmt.Printf("planes:   REJECTED — %s\n", info.PlaneError)
	default:
		fmt.Println("planes:   absent (loads pack in-process)")
	}
}

func inspectFile(fs *flag.FlagSet, path string) fabp.DatabaseFileInfo {
	if path == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	info, err := fabp.InspectDatabase(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return info
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("db", "", "database file")
	fs.Parse(args)
	d := openDB(*path)
	fmt.Printf("database: %d records, %d nt total (%.1f MB packed)\n",
		d.NumRecords(), d.Len(), float64(d.Len())/4/1e6)
	for i := 0; i < d.NumRecords(); i++ {
		r := d.Record(i)
		desc := r.Description
		if desc != "" {
			desc = " — " + desc
		}
		fmt.Printf("  %-20s %10d nt%s\n", r.ID, r.Length, desc)
	}
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	path := fs.String("db", "", "database file")
	protein := fs.String("query", "", "protein query (one-letter codes)")
	frac := fs.Float64("threshold-frac", 0.85, "hit threshold fraction")
	top := fs.Int("top", 10, "hits to print")
	fs.Parse(args)
	d := openDB(*path)
	if *protein == "" {
		fs.Usage()
		os.Exit(2)
	}
	q, err := fabp.NewQuery(*protein)
	if err != nil {
		log.Fatal(err)
	}
	a, err := fabp.NewAligner(q, fabp.WithThresholdFraction(*frac))
	if err != nil {
		log.Fatal(err)
	}
	hits := a.AlignDatabase(d)
	fmt.Printf("query %d aa, threshold %d/%d: %d hits\n",
		q.Residues(), a.Threshold(), q.MaxScore(), len(hits))
	for i, h := range hits {
		if i >= *top {
			fmt.Printf("... %d more\n", len(hits)-i)
			break
		}
		fmt.Printf("  %-20s offset %-10d score %d/%d\n", h.RecordID, h.Offset, h.Score, q.MaxScore())
	}
}

func cmdDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	out := fs.String("out", "demo.fabp", "output database file")
	fs.Parse(args)
	ref, genes := fabp.SyntheticReference(2021, 100_000, 5, 60)
	d, err := fabp.DatabaseFromReference("synthetic", ref)
	if err != nil {
		log.Fatal(err)
	}
	writeDB(d, *out, false)
	fmt.Printf("wrote %s (%d nt); try searching for a planted gene:\n", *out, d.Len())
	fmt.Printf("  fabp-db search -db %s -query %s\n", *out, genes[0].Protein)
}

func openDB(path string) *fabp.Database {
	if path == "" {
		usage()
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := fabp.LoadDatabase(f)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func writeDB(d *fabp.Database, path string, legacy bool) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if legacy {
		err = d.SaveDatabaseLegacy(f)
	} else {
		err = d.SaveDatabase(f)
	}
	if err != nil {
		log.Fatal(err)
	}
}
