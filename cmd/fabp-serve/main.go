// Command fabp-serve is the FabP alignment query service: it preloads a
// nucleotide database (the software analogue of the paper's card-resident
// DRAM image), then serves protein align queries over HTTP JSON with
// per-request deadlines, a deadline-aware weighted admission queue, a
// content-addressed scan-result cache (repeat queries answer without
// scanning or queueing), and a graceful drain on shutdown.
//
// Usage:
//
//	fabp-serve -ref db.fasta [-addr :8080] [-max-inflight 64] [-timeout 10s]
//	           [-max-queue 0] [-cache-bytes 67108864]
//	fabp-serve -db db.fdb                  # a database saved by fabp-db build
//
// Endpoints:
//
//	POST /align        {"query":"MKWVTF...", "threshold_frac":0.85,
//	                    "kernel":"auto", "max_hits":100, "timeout_ms":500}
//	POST /align/batch  {"queries":["MKWVTF...", ...], "threshold_frac":0.85,
//	                    "max_hits":100, "timeout_ms":500} — one fused scan
//	                    for the whole batch; a K-query batch takes K
//	                    in-flight slots (admission weighs scan work)
//	POST /search       {"query":"MKWVTF...", "two_hit":true, "frames":6,
//	                    "min_score":35, "max_evalue":1e-3, "max_hits":100,
//	                    "timeout_ms":500} — TBLASTN-style protein search
//	                    of the database's translated frames (HSPs with
//	                    E-values), same admission/cache/deadline spine
//	GET  /healthz      liveness + resident-database shape
//	GET  /metrics      telemetry snapshot (expvar-style JSON)
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, running
// scans drain (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fabp"
	"fabp/internal/faultinject"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-serve: ")

	refPath := flag.String("ref", "", "nucleotide FASTA file to preload")
	dbPath := flag.String("db", "", "packed database file (fabp-db build) to preload")
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	maxInflight := flag.Int("max-inflight", 64, "concurrently executing align requests before queueing or 429")
	maxQueue := flag.Int("max-queue", 0, "align requests that may wait for a slot before 429 (0 = shed immediately)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "scan-result cache capacity in bytes (0 disables caching)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request scan deadline")
	maxTimeout := flag.Duration("max-timeout", time.Minute, "ceiling on client-requested timeouts")
	maxHits := flag.Int("max-hits", 1000, "ceiling on hits returned per request")
	maxBatch := flag.Int("max-batch", 64, "ceiling on queries per /align/batch request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running scans")
	retries := flag.Int("retries", 0, "per-shard retries of transient scan failures (0 = single attempt)")
	retryBase := flag.Duration("retry-base", 0, "base retry backoff delay (0 = 1ms default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "duplicate a shard still running after this long (0 = no hedging)")
	hedgeBudget := flag.Int("hedge-budget", 0, "hedged duplicates allowed per scan")
	flag.Parse()

	// Fault injection arms only from the environment (FABP_FAULTS,
	// FABP_FAULT_SEED) — a chaos-drill knob, never a request parameter.
	if on, err := faultinject.EnableFromEnv(); err != nil {
		log.Fatalf("FABP_FAULTS: %v", err)
	} else if on {
		logf("fault injection armed from FABP_FAULTS")
	}

	db, err := loadDatabase(*refPath, *dbPath)
	if err != nil {
		log.Fatal(err)
	}
	logf("database resident: %d records, %d nt", db.NumRecords(), db.Len())

	// Warm up before accepting traffic so the first query never pays
	// packing latency. A v2 file's persisted planes make this free; a
	// FASTA build, a v1 file, or a rejected plane section packs here, once.
	t0 := time.Now()
	planeSource := "packed"
	if db.PlanesResident() {
		planeSource = "persisted"
	}
	db.WarmPlanes()
	logf("planes resident (%s) in %s", planeSource, time.Since(t0).Round(time.Microsecond))

	rp := fabp.RetryPolicy{
		MaxRetries:  *retries,
		Base:        *retryBase,
		HedgeAfter:  *hedgeAfter,
		HedgeBudget: *hedgeBudget,
	}
	// The fused batch path is package-level (no per-request aligner), so
	// it takes the server's policy globally.
	fabp.SetBatchRetryPolicy(rp)

	s := newServer(serverConfig{
		db:             db,
		maxInflight:    *maxInflight,
		maxQueue:       *maxQueue,
		cacheBytes:     *cacheBytes,
		defaultTimeout: *timeout,
		maxTimeout:     *maxTimeout,
		maxHits:        *maxHits,
		maxBatch:       *maxBatch,
		planeSource:    planeSource,
		retryPolicy:    rp,
	})
	if err := serve(s, *addr, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

// loadDatabase builds the resident database from exactly one of a FASTA
// file or a packed database file.
func loadDatabase(refPath, dbPath string) (*fabp.Database, error) {
	switch {
	case refPath != "" && dbPath != "":
		return nil, fmt.Errorf("set -ref or -db, not both")
	case refPath != "":
		f, err := os.Open(refPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		db, err := fabp.BuildDatabase(f)
		if err != nil {
			return nil, fmt.Errorf("building database from %s: %w", refPath, err)
		}
		return db, nil
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		db, err := fabp.LoadDatabase(f)
		if err != nil {
			return nil, fmt.Errorf("loading database %s: %w", dbPath, err)
		}
		return db, nil
	}
	return nil, fmt.Errorf("a database is required: -ref db.fasta or -db db.fdb")
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains: the
// listener closes immediately, in-flight scans get drainTimeout to finish
// (their request contexts are canceled past that), and the call returns
// once the last handler exits.
func serve(s *server, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// baseCtx parents every request context; canceling it past the drain
	// window aborts scans that outstayed the grace period at their next
	// shard checkpoint.
	baseCtx, abortScans := context.WithCancel(context.Background())
	defer abortScans()
	srv := &http.Server{
		Handler:     s.handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan error, 1)
	go func() {
		<-sigCtx.Done()
		logf("shutdown: draining running scans (up to %s)", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			// Drain window expired: cancel the stragglers' contexts and
			// give their handlers a moment to observe it.
			abortScans()
			ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel2()
			err = srv.Shutdown(ctx2)
		}
		shutdownDone <- err
	}()

	logf("listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-shutdownDone; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logf("drained; bye")
	return nil
}
