package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fabp"
	"fabp/internal/faultinject"
)

// testServer builds a server over a small synthetic database with a
// planted gene, so align requests have real hits to find.
func testServer(t *testing.T, cfg serverConfig) (*server, string) {
	t.Helper()
	ref, genes := fabp.SyntheticReference(7, 20_000, 2, 30)
	db, err := fabp.DatabaseFromReference("synt", ref)
	if err != nil {
		t.Fatal(err)
	}
	cfg.db = db
	return newServer(cfg), genes[0].Protein
}

func postAlign(t *testing.T, url string, req alignRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestAlignEndpoint(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align status %d: %s", resp.StatusCode, body)
	}
	var res alignResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if len(res.Hits) == 0 {
		t.Fatal("planted gene not found")
	}
	if res.MaxScore != res.Elements || res.Threshold <= 0 {
		t.Errorf("implausible response: %+v", res)
	}
	for _, h := range res.Hits {
		if h.Record != "synt" || h.Score < res.Threshold {
			t.Errorf("bad hit %+v", h)
		}
	}

	// healthz reports the resident database.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Records != 1 || hz.LengthNt != 20_000 {
		t.Errorf("healthz = %+v", hz)
	}

	// metrics is valid JSON and carries both the serve layer and the
	// alignment pipeline.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.requests"] == 0 {
		t.Error("metrics missing serve.requests")
	}
	if snap.Counters["align.queries.started"] == 0 {
		t.Error("metrics missing align.queries.started")
	}
}

func TestAlignValidation(t *testing.T) {
	s, _ := testServer(t, serverConfig{maxInflight: 2})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  alignRequest
	}{
		{"empty query", alignRequest{}},
		{"bad residues", alignRequest{Query: "MK123"}},
		{"bad kernel", alignRequest{Query: "MKWVTF", Kernel: "quantum"}},
		{"bad fraction", alignRequest{Query: "MKWVTF", ThresholdFrac: ptr(1.5)}},
	}
	for _, tc := range cases {
		resp, body := postAlign(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func postBatch(t *testing.T, url string, req batchAlignRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/align/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestAlignBatchEndpoint drives the fused batch endpoint through the real
// scan path and cross-checks every query's hits against the single-query
// endpoint (the fused path must be bit-exact with per-query scans).
func TestAlignBatchEndpoint(t *testing.T) {
	ref, genes := fabp.SyntheticReference(7, 20_000, 3, 30)
	db, err := fabp.DatabaseFromReference("synt", ref)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(serverConfig{db: db, maxInflight: 8})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var proteins []string
	for _, g := range genes {
		proteins = append(proteins, g.Protein)
	}
	resp, body := postBatch(t, ts.URL, batchAlignRequest{
		Queries: proteins, ThresholdFrac: ptr(0.9),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var res batchAlignResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if len(res.Queries) != len(proteins) {
		t.Fatalf("%d query results, want %d", len(res.Queries), len(proteins))
	}
	for i, p := range proteins {
		qr := res.Queries[i]
		if len(qr.Hits) == 0 {
			t.Errorf("query %d found no hits", i)
		}
		// Bit-exactness: the single-query endpoint must agree.
		sr, sbody := postAlign(t, ts.URL, alignRequest{Query: p, ThresholdFrac: ptr(0.9)})
		if sr.StatusCode != http.StatusOK {
			t.Fatalf("single status %d: %s", sr.StatusCode, sbody)
		}
		var single alignResponse
		if err := json.Unmarshal(sbody, &single); err != nil {
			t.Fatal(err)
		}
		if len(single.Hits) != len(qr.Hits) {
			t.Fatalf("query %d: batch %d hits, single %d", i, len(qr.Hits), len(single.Hits))
		}
		for j := range single.Hits {
			if single.Hits[j] != qr.Hits[j] {
				t.Errorf("query %d hit %d: batch %+v, single %+v", i, j, qr.Hits[j], single.Hits[j])
			}
		}
	}

	// Per-query truncation honors max_hits.
	resp, body = postBatch(t, ts.URL, batchAlignRequest{
		Queries: proteins, ThresholdFrac: ptr(0.5), MaxHits: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncated batch status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	for i, qr := range res.Queries {
		if len(qr.Hits) > 1 {
			t.Errorf("query %d returned %d hits over the cap", i, len(qr.Hits))
		}
		if len(qr.Hits) == 1 && !qr.Truncated {
			t.Errorf("query %d capped but not flagged truncated", i)
		}
	}

	// The serve layer accounted the batch.
	snap := fabp.DefaultMetrics().Snapshot()
	if snap.Counters["serve.batch.requests"] == 0 || snap.Counters["serve.batch.queries"] == 0 {
		t.Error("serve.batch.* counters missing")
	}
}

func TestAlignBatchValidation(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 2, maxBatch: 2})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  batchAlignRequest
	}{
		{"empty batch", batchAlignRequest{}},
		{"blank query", batchAlignRequest{Queries: []string{protein, "  "}}},
		{"bad residues", batchAlignRequest{Queries: []string{"MK123"}}},
		{"bad fraction", batchAlignRequest{Queries: []string{protein}, ThresholdFrac: ptr(1.5)}},
		{"over max-batch", batchAlignRequest{Queries: []string{protein, protein, protein}}},
	}
	for _, tc := range cases {
		resp, body := postBatch(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
}

// TestAlignBatchAdmissionWeight pins the weighted admission contract: a
// K-query batch needs K free slots, is shed when they are not all free,
// and releases every slot on completion.
func TestAlignBatchAdmissionWeight(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 3, maxBatch: 8})
	blocked := make(chan struct{})
	s.scanBatch = func(ctx context.Context, d *fabp.Database, queries []*fabp.Query, frac float64) ([][]fabp.RecordHit, error) {
		select {
		case <-blocked:
			return make([][]fabp.RecordHit, len(queries)), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// A 2-query batch takes 2 of the 3 slots.
	first := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(batchAlignRequest{Queries: []string{protein, protein}})
		resp, err := http.Post(ts.URL+"/align/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		defer resp.Body.Close()
		first <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("batch never took its slots")
		}
		time.Sleep(time.Millisecond)
	}

	// Another 2-query batch needs 2 slots but only 1 is free: shed, and the
	// one slot it probed is released (inflight stays at 2).
	resp, body := postBatch(t, ts.URL, batchAlignRequest{Queries: []string{protein, protein}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overweight batch status %d, want 429: %s", resp.StatusCode, body)
	}
	if s.adm.Held() != 2 {
		t.Errorf("shed batch leaked slots: %d in flight, want 2", s.adm.Held())
	}

	close(blocked)
	if code := <-first; code != http.StatusOK {
		t.Errorf("first batch finished %d, want 200", code)
	}
	// The handler releases its slots after the response is written; poll.
	deadline = time.Now().Add(5 * time.Second)
	for s.adm.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slots not released after batch: %d", s.adm.Held())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentQueries drives many parallel align requests through the
// real scan path; with capacity for all of them every request must
// succeed and find the planted gene (exercised under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 16})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const n = 12
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(kernel string) {
			defer wg.Done()
			body, _ := json.Marshal(alignRequest{Query: protein, Kernel: kernel})
			resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var res alignResponse
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- err
				return
			}
			if len(res.Hits) == 0 {
				errs <- fmt.Errorf("no hits")
			}
		}([]string{"auto", "scalar", "bitparallel"}[i%3])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// blockScan replaces the server's scan with one that parks until released
// (or the request context fires), making overload and drain deterministic.
func blockScan(s *server) (release func()) {
	ch := make(chan struct{})
	s.scan = func(ctx context.Context, req fabp.ScanRequest) (*fabp.ScanResult, error) {
		select {
		case <-ch:
			return &fabp.ScanResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func TestAdmissionControl429(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 1})
	release := blockScan(s)
	defer release()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Occupy the only slot.
	first := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		defer resp.Body.Close()
		first <- resp.StatusCode
	}()

	// Wait until the first request holds its slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never took a slot")
		}
		time.Sleep(time.Millisecond)
	}

	// The second request must be shed immediately, not queued.
	t1 := time.Now()
	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := time.Since(t1); d > 2*time.Second {
		t.Errorf("shed request took %v, want immediate rejection", d)
	}

	release()
	if code := <-first; code != http.StatusOK {
		t.Errorf("first request finished %d, want 200", code)
	}
}

func TestPerRequestTimeout(t *testing.T) {
	s, protein := testServer(t, serverConfig{
		maxInflight:    2,
		defaultTimeout: 10 * time.Second,
		maxTimeout:     10 * time.Second,
	})
	_ = blockScan(s) // never released: the deadline must cut the scan loose
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	before := fabp.DefaultMetrics().Snapshot().Counters["serve.timeouts"]
	t0 := time.Now()
	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein, TimeoutMs: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("timeout took %v, want ~50ms", d)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("timeout body: %s", body)
	}
	after := fabp.DefaultMetrics().Snapshot().Counters["serve.timeouts"]
	if after <= before {
		t.Error("serve.timeouts not incremented")
	}
}

// TestGracefulShutdownDrain pins the drain contract: Shutdown does not
// return while a scan is running, the scan's response still reaches the
// client, and new connections are refused after the drain.
func TestGracefulShutdownDrain(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 2})
	release := blockScan(s)
	defer release()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	inFlight := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- -1
			return
		}
		defer resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never started")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- ts.Config.Shutdown(ctx)
	}()

	// The drain must wait for the running scan.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a scan was running", err)
	case <-time.After(100 * time.Millisecond):
	}

	release()
	if code := <-inFlight; code != http.StatusOK {
		t.Errorf("draining request finished %d, want 200", code)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung after the last scan finished")
	}
}

// TestBatchAdmissionShedStorm hammers the weighted batch admission with
// concurrent requests while most slots are held: every shed request must
// release ALL the slots it partially acquired (no leak — the in-flight
// count never exceeds capacity and returns exactly to the blocker's
// weight), and every 429 must carry Retry-After.
func TestBatchAdmissionShedStorm(t *testing.T) {
	const capacity = 4
	s, protein := testServer(t, serverConfig{maxInflight: capacity, maxBatch: capacity})
	blocked := make(chan struct{})
	s.scanBatch = func(ctx context.Context, d *fabp.Database, queries []*fabp.Query, frac float64) ([][]fabp.RecordHit, error) {
		select {
		case <-blocked:
			return make([][]fabp.RecordHit, len(queries)), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// A 3-query batch parks on 3 of the 4 slots.
	blocker := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(batchAlignRequest{Queries: []string{protein, protein, protein}})
		resp, err := http.Post(ts.URL+"/align/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			blocker <- -1
			return
		}
		defer resp.Body.Close()
		blocker <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("blocker batch never took its slots")
		}
		time.Sleep(time.Millisecond)
	}

	// Storm: concurrent 2-query batches all need 2 slots with only 1
	// free. Every one must probe, fail, roll its partial acquisition
	// back, and answer 429 with Retry-After.
	const stormers = 32
	var wg sync.WaitGroup
	type verdict struct {
		status     int
		retryAfter string
	}
	verdicts := make(chan verdict, stormers)
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(batchAlignRequest{Queries: []string{protein, protein}})
			resp, err := http.Post(ts.URL+"/align/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				verdicts <- verdict{status: -1}
				return
			}
			defer resp.Body.Close()
			verdicts <- verdict{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}
	wg.Wait()
	close(verdicts)
	for v := range verdicts {
		if v.status != http.StatusTooManyRequests {
			t.Fatalf("storm request status %d, want 429", v.status)
		}
		if v.retryAfter == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	// No storm request may have leaked a probed slot: exactly the
	// blocker's 3 remain held.
	if got := s.adm.Held(); got != 3 {
		t.Fatalf("after shed storm %d slots held, want the blocker's 3 (leak)", got)
	}

	// Release the blocker: its batch completes and every slot frees.
	close(blocked)
	if code := <-blocker; code != http.StatusOK {
		t.Fatalf("blocker batch finished %d, want 200", code)
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.adm.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slots not released after storm: %d", s.adm.Held())
		}
		time.Sleep(time.Millisecond)
	}

	// Aftershock: with scans now instant, a mixed-weight storm must end
	// with every slot back and only 200s or well-formed 429s.
	verdicts2 := make(chan verdict, stormers)
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func(weight int) {
			defer wg.Done()
			qs := make([]string, weight)
			for j := range qs {
				qs[j] = protein
			}
			body, _ := json.Marshal(batchAlignRequest{Queries: qs})
			resp, err := http.Post(ts.URL+"/align/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				verdicts2 <- verdict{status: -1}
				return
			}
			defer resp.Body.Close()
			verdicts2 <- verdict{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}(1 + i%capacity)
	}
	wg.Wait()
	close(verdicts2)
	for v := range verdicts2 {
		switch v.status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if v.retryAfter == "" {
				t.Fatal("aftershock 429 without Retry-After")
			}
		default:
			t.Fatalf("aftershock status %d, want 200 or 429", v.status)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.adm.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slots leaked after aftershock: %d", s.adm.Held())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPartialDegradedServeResponse drives the partial-result contract
// end-to-end through the HTTP surface: with shards failing sticky (beyond
// any retry budget) and the request opting into partial mode, the service
// answers 200 with degraded=true and the failed ranges listed — and a
// negative retry budget is rejected up front.
func TestPartialDegradedServeResponse(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// The 20k test database is one shard at the default shard length;
	// seed 13's sticky selection includes it, so the whole scan degrades:
	// 200, degraded=true, every range declared, no hits silently lost.
	faultinject.Enable(13, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.4, Sticky: true, Fail: true},
	})
	defer faultinject.Disable()

	budget := 1
	resp, body := postAlign(t, ts.URL, alignRequest{
		Query: protein, RetryBudget: &budget, Partial: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial align status %d: %s", resp.StatusCode, body)
	}
	var res alignResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if !res.Degraded || len(res.FailedRanges) == 0 {
		t.Fatalf("degraded=%v failed_ranges=%d; want a degraded response", res.Degraded, len(res.FailedRanges))
	}
	for _, fr := range res.FailedRanges {
		if fr.Hi <= fr.Lo || fr.Error == "" {
			t.Errorf("implausible failed range %+v", fr)
		}
	}
	if s.m.degraded.Load() == 0 {
		t.Error("serve.degraded not counted")
	}

	// The same request without partial mode is a server-side failure, not
	// silent hit loss.
	resp, body = postAlign(t, ts.URL, alignRequest{Query: protein, RetryBudget: &budget})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("non-partial sticky faults: status %d (%s), want 500", resp.StatusCode, body)
	}

	// Negative budgets are a client error.
	bad := -1
	resp, body = postAlign(t, ts.URL, alignRequest{Query: protein, RetryBudget: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative retry_budget: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestPartialRetryBudgetAbsorbsTransients: a request-scoped retry budget
// turns transient (key-limited) injected failures into a full, clean 200
// — no degradation, hits identical to the fault-free scan.
func TestPartialRetryBudgetAbsorbsTransients(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault-free align status %d: %s", resp.StatusCode, body)
	}
	var want alignResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(9, faultinject.Plan{
		faultinject.SiteShardDispatch: {Every: 1, KeyLimit: 2, Fail: true},
	})
	defer faultinject.Disable()
	budget := 3
	resp, body = postAlign(t, ts.URL, alignRequest{Query: protein, RetryBudget: &budget})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried align status %d: %s", resp.StatusCode, body)
	}
	var got alignResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Degraded || len(got.Hits) != len(want.Hits) {
		t.Fatalf("retried scan: degraded=%v hits=%d, want clean %d", got.Degraded, len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got.Hits[i], want.Hits[i])
		}
	}
	if faultinject.Fired(faultinject.SiteShardDispatch) == 0 {
		t.Fatal("no faults fired; the retry test is vacuous")
	}
}

// TestServeCacheHitBypassesAdmission pins the cache fast path's strongest
// property: with the single admission slot parked under a blocked scan
// and no queue, an uncached request is shed with 429 — but a request
// whose result is resident answers 200 without touching admission at
// all. The 200-vs-429 split is the proof; no timing is involved.
func TestServeCacheHitBypassesAdmission(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 1, cacheBytes: 8 << 20})
	t.Cleanup(func() { fabp.SetScanCacheCapacity(0) })
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Cold request: runs the real scan and seeds the cache.
	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold align status %d: %s", resp.StatusCode, body)
	}
	var cold alignResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold cache = %q, want miss", cold.Cache)
	}
	if len(cold.Hits) == 0 {
		t.Fatal("cold scan found no hits")
	}

	// Park a different query on the only slot.
	release := blockScan(s)
	defer release()
	blocked := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: "MKWVTF"})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			blocked <- -1
			return
		}
		defer resp.Body.Close()
		blocked <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Control: an uncached query cannot get in (queue 0, slot held).
	resp, body = postAlign(t, ts.URL, alignRequest{Query: "MKWVTFISLL"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached query at capacity: status %d (%s), want 429", resp.StatusCode, body)
	}

	// The cached query answers 200 regardless — it never asked admission.
	before := s.m.cacheHits.Load()
	resp, body = postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached align at capacity: status %d (%s), want 200", resp.StatusCode, body)
	}
	var hot alignResponse
	if err := json.Unmarshal(body, &hot); err != nil {
		t.Fatal(err)
	}
	if hot.Cache != "hit" {
		t.Fatalf("hot cache = %q, want hit", hot.Cache)
	}
	if s.m.cacheHits.Load() != before+1 {
		t.Error("serve.cache.hits not incremented")
	}
	// Byte-identical to the cold scan, and cheap: a resident lookup takes
	// a map probe, not a scan (generous bound; the bench pins the ratio).
	if len(hot.Hits) != len(cold.Hits) {
		t.Fatalf("hot hits %d, cold %d", len(hot.Hits), len(cold.Hits))
	}
	for i := range cold.Hits {
		if hot.Hits[i] != cold.Hits[i] {
			t.Errorf("hit %d: hot %+v, cold %+v", i, hot.Hits[i], cold.Hits[i])
		}
	}
	if hot.ElapsedMs > 50 {
		t.Errorf("cache hit took %.2fms, want well under 50ms", hot.ElapsedMs)
	}
	if s.adm.Held() != 1 {
		t.Errorf("held = %d after cache hit, want the blocker's 1", s.adm.Held())
	}

	release()
	if code := <-blocked; code != http.StatusOK {
		t.Errorf("blocker finished %d, want 200", code)
	}
}

// TestServeQueueAdmitsWhenSlotFrees: with -max-queue > 0 a request at
// capacity waits instead of shedding, is granted when the slot frees, and
// requests beyond the queue bound still shed 429.
func TestServeQueueAdmitsWhenSlotFrees(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 1, maxQueue: 1})
	release := blockScan(s)
	defer release()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	holder := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			holder <- -1
			return
		}
		defer resp.Body.Close()
		holder <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second request queues rather than shedding.
	queued := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			queued <- -1
			return
		}
		defer resp.Body.Close()
		queued <- resp.StatusCode
	}()
	deadline = time.Now().Add(5 * time.Second)
	for s.adm.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request finds the queue full: immediate 429 with Retry-After.
	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Freeing the slot grants the queued request; both finish 200.
	release()
	if code := <-holder; code != http.StatusOK {
		t.Errorf("holder finished %d, want 200", code)
	}
	if code := <-queued; code != http.StatusOK {
		t.Errorf("queued request finished %d, want 200", code)
	}
}

// TestServeQueuedDeadlineShed: a queued request whose deadline cannot be
// met given the observed cost estimate is shed with 429 + Retry-After —
// before its deadline, while retrying elsewhere is still actionable —
// instead of timing out into a 504.
func TestServeQueuedDeadlineShed(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 1, maxQueue: 4})
	release := blockScan(s)
	defer release()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Teach the estimator: one scan that takes ~100ms of wall time.
	warm := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			warm <- -1
			return
		}
		defer resp.Body.Close()
		warm <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("warm request never took the slot")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	release()
	if code := <-warm; code != http.StatusOK {
		t.Fatalf("warm request finished %d, want 200", code)
	}
	if s.adm.Estimate() <= 0 {
		t.Fatal("admission estimate not seeded")
	}

	// Park the slot again, then queue a request with a deadline: the
	// estimate-driven timer sheds it as 429 strictly before the deadline
	// would have produced a 504.
	release2 := blockScan(s)
	defer release2()
	blocked := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(alignRequest{Query: protein})
		resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			blocked <- -1
			return
		}
		defer resp.Body.Close()
		blocked <- resp.StatusCode
	}()
	deadline = time.Now().Add(5 * time.Second)
	for s.adm.Held() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postAlign(t, ts.URL, alignRequest{Query: protein, TimeoutMs: 200})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued deadline shed: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline shed without Retry-After")
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("shed body does not name the reason: %s", body)
	}

	release2()
	if code := <-blocked; code != http.StatusOK {
		t.Errorf("blocker finished %d, want 200", code)
	}
}

// TestAlignStreamEndpoint drives the fused streaming endpoint with a real
// nucleotide body: every query's NDJSON hits must match AlignBatch over
// the same letters, and the trailer must account for them.
func TestAlignStreamEndpoint(t *testing.T) {
	s, _ := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ref, genes := fabp.SyntheticReference(9, 30_000, 3, 30)
	queries := make([]*fabp.Query, len(genes))
	vals := make([]string, len(genes))
	for i, g := range genes {
		q, err := fabp.NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
		vals[i] = "query=" + g.Protein
	}
	want, err := fabp.AlignBatch(queries, ref, 0.7)
	if err != nil {
		t.Fatal(err)
	}

	url := ts.URL + "/align/stream?" + strings.Join(vals, "&") + "&threshold_frac=0.7"
	resp, err := http.Post(url, "application/octet-stream", strings.NewReader(ref.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	got := make([][]fabp.Hit, len(queries))
	var trailer streamTrailer
	sawTrailer := false
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		if sawTrailer {
			t.Fatal("lines after the trailer")
		}
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatal(err)
		}
		if _, isTrailer := raw["done"]; isTrailer {
			b, _ := json.Marshal(raw)
			if err := json.Unmarshal(b, &trailer); err != nil {
				t.Fatal(err)
			}
			sawTrailer = true
			continue
		}
		var h streamHit
		b, _ := json.Marshal(raw)
		if err := json.Unmarshal(b, &h); err != nil {
			t.Fatal(err)
		}
		got[h.Query] = append(got[h.Query], fabp.Hit{Pos: h.Pos, Score: h.Score})
	}
	if !sawTrailer || !trailer.Done || trailer.Error != "" {
		t.Fatalf("trailer = %+v", trailer)
	}
	totalWant := 0
	for qi := range want {
		totalWant += len(want[qi])
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d hits, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i] != want[qi][i] {
				t.Fatalf("query %d hit %d = %+v, want %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}
	if totalWant == 0 {
		t.Fatal("no hits; test is vacuous")
	}
	if trailer.Hits != totalWant || trailer.Truncated {
		t.Fatalf("trailer %+v, want %d hits untruncated", trailer, totalWant)
	}
}

// TestAlignStreamValidation pins the stream route's pre-stream error
// surface: bad inputs are plain JSON 400s, and a bad byte mid-stream that
// precedes any hit is as well.
func TestAlignStreamValidation(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 2, maxBatch: 2})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	post := func(params, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/align/stream?"+params, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	qp := "query=" + protein
	for name, params := range map[string]string{
		"no queries":    "",
		"empty query":   "query=",
		"bad residues":  "query=MK123",
		"over maxBatch": qp + "&" + qp + "&" + qp,
		"bad frac":      qp + "&threshold_frac=nope",
		"bad timeout":   qp + "&timeout_ms=soon",
	} {
		resp, body := post(params, "ACGU")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}

	// An invalid nucleotide before any hit: 400 with the stream position.
	resp, body := post(qp, "ACGUX")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "position 4") {
		t.Errorf("bad byte: status %d body %s, want 400 naming position 4", resp.StatusCode, body)
	}
}

func postSearch(t *testing.T, url string, req searchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSearchEndpoint(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, body := postSearch(t, ts.URL, searchRequest{Query: protein, TwoHit: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, body)
	}
	var res searchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.HSPs) == 0 {
		t.Fatal("planted gene produced no HSPs")
	}
	top := res.HSPs[0]
	if top.Frame != "+1" && top.Frame != "+2" && top.Frame != "+3" {
		t.Errorf("top HSP frame %q, want forward (gene planted on forward strand)", top.Frame)
	}
	if top.Score <= 0 || top.EValue < 0 {
		t.Errorf("implausible top HSP: %+v", top)
	}
	if res.Stats == nil || res.Stats.WordLookups == 0 {
		t.Errorf("missing pipeline stats: %+v", res.Stats)
	}
	if res.Residues != len(protein) {
		t.Errorf("residues %d, want %d", res.Residues, len(protein))
	}
}

func TestSearchValidation(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  searchRequest
	}{
		{"missing query", searchRequest{}},
		{"bad residues", searchRequest{Query: "MK123"}},
		{"bad frames", searchRequest{Query: protein, Frames: 9}},
	}
	for _, tc := range cases {
		resp, body := postSearch(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
}

func TestSearchMinScoreZeroMeansAll(t *testing.T) {
	s, protein := testServer(t, serverConfig{maxInflight: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	_, defBody := postSearch(t, ts.URL, searchRequest{Query: protein})
	var def searchResponse
	if err := json.Unmarshal(defBody, &def); err != nil {
		t.Fatal(err)
	}
	_, allBody := postSearch(t, ts.URL, searchRequest{Query: protein, MinScore: ptr(0)})
	var all searchResponse
	if err := json.Unmarshal(allBody, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.HSPs) < len(def.HSPs) {
		t.Errorf("min_score=0 returned fewer HSPs (%d) than the default cutoff (%d)",
			len(all.HSPs), len(def.HSPs))
	}
}

func TestSearchCacheProvenance(t *testing.T) {
	fabp.SetScanCacheCapacity(16 << 20)
	defer fabp.SetScanCacheCapacity(0)
	s, protein := testServer(t, serverConfig{maxInflight: 4, cacheBytes: 16 << 20})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := searchRequest{Query: protein, TwoHit: true}
	_, firstBody := postSearch(t, ts.URL, req)
	var first searchResponse
	if err := json.Unmarshal(firstBody, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" {
		t.Fatalf("first search provenance %q, want miss", first.Cache)
	}
	_, secondBody := postSearch(t, ts.URL, req)
	var second searchResponse
	if err := json.Unmarshal(secondBody, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Fatalf("repeat search provenance %q, want hit", second.Cache)
	}
	if fmt.Sprintf("%+v", first.HSPs) != fmt.Sprintf("%+v", second.HSPs) {
		t.Fatal("cached HSPs differ from the seeding search")
	}
}
