// server.go holds the fabp-serve HTTP layer, separated from main so the
// handler stack is testable with httptest: a preloaded database, an align
// endpoint riding the facade's unified Scan spine (content-addressed
// result cache included), a deadline-aware weighted admission queue, and
// the observability endpoints.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"context"

	"fabp"
	"fabp/internal/sched"
	"fabp/internal/telemetry"
)

// serverConfig sizes a server.
type serverConfig struct {
	// db is the preloaded database every query scans.
	db *fabp.Database
	// maxInflight bounds concurrently executing align requests (the
	// admission queue's capacity, weighted in scan units: a K-query batch
	// weighs K).
	maxInflight int
	// maxQueue bounds how many requests may wait for a slot before the
	// server sheds with 429; 0 (the default) keeps the historical
	// immediate-shed behavior — capacity full means 429 now.
	maxQueue int
	// cacheBytes bounds the process-wide scan-result cache; 0 (the
	// default) leaves it disabled, the library default.
	cacheBytes int64
	// defaultTimeout applies when a request names no timeout_ms;
	// maxTimeout caps what a request may ask for.
	defaultTimeout, maxTimeout time.Duration
	// maxHits caps hits returned per request when the request does not
	// set max_hits lower (0 = serverDefaultMaxHits).
	maxHits int
	// maxBatch caps the queries one /align/batch request may carry
	// (0 = serverDefaultMaxBatch).
	maxBatch int
	// planeSource records where the database's bit-planes came from at
	// startup ("persisted" for a v2 file's plane section, "packed" when
	// the server packed them itself) — surfaced on /healthz.
	planeSource string
	// retryPolicy is the server's default scan resilience (retries,
	// backoff, hedging); a request's retry_budget overrides the retry
	// count within [0, serverMaxRetryBudget]. The zero policy scans
	// single-attempt, the historical behavior.
	retryPolicy fabp.RetryPolicy
}

const (
	serverDefaultTimeout  = 10 * time.Second
	serverDefaultMaxHits  = 1000
	serverDefaultMaxBatch = 64
	// serverMaxRetryBudget caps a request's retry_budget: a client cannot
	// buy more re-execution than this no matter what it asks for.
	serverMaxRetryBudget = 10
)

// server is the fabp-serve handler state.
type server struct {
	cfg serverConfig
	// adm is the weighted, deadline-aware admission queue every scan
	// passes through — except cache hits, which bypass it entirely.
	adm *sched.Admission
	// scan executes one prepared request against the unified Scan spine
	// under the request context. Overridable in tests to model slow or
	// stuck scans deterministically.
	scan func(ctx context.Context, req fabp.ScanRequest) (*fabp.ScanResult, error)
	// lookup probes the scan-result cache without scanning or queueing;
	// a hit answers the request before admission. Overridable in tests.
	lookup func(req fabp.ScanRequest) (*fabp.ScanResult, bool)
	// scanBatch executes a whole batch in one fused pass under the request
	// context, returning per-query attributed hits. Overridable in tests.
	scanBatch func(ctx context.Context, d *fabp.Database, queries []*fabp.Query, thresholdFrac float64) ([][]fabp.RecordHit, error)
	// streamBatch scans a client-supplied nucleotide stream with every
	// query of a batch fused over each packed chunk, emitting hits as they
	// complete. Overridable in tests.
	streamBatch func(ctx context.Context, queries []*fabp.Query, body io.Reader, thresholdFrac float64, emit func(query int, h fabp.Hit) error) error
	// m holds the serve-layer counters, registered beside the alignment
	// pipeline's metrics in the process-wide registry so /metrics is one
	// coherent snapshot.
	m serveMetrics
}

type serveMetrics struct {
	requests, rejected, timeouts, clientGone, failed *telemetry.Counter
	batchRequests, batchQueries                      *telemetry.Counter
	streamRequests                                   *telemetry.Counter
	searchRequests                                   *telemetry.Counter
	degraded, cacheHits                              *telemetry.Counter
	inflight                                         *telemetry.Gauge
	latency                                          *telemetry.Histogram
}

func newServer(cfg serverConfig) *server {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	if cfg.defaultTimeout <= 0 {
		cfg.defaultTimeout = serverDefaultTimeout
	}
	if cfg.maxTimeout <= 0 {
		cfg.maxTimeout = cfg.defaultTimeout
	}
	if cfg.maxHits <= 0 {
		cfg.maxHits = serverDefaultMaxHits
	}
	if cfg.maxBatch <= 0 {
		cfg.maxBatch = serverDefaultMaxBatch
	}
	if cfg.planeSource == "" {
		cfg.planeSource = "packed"
	}
	if cfg.cacheBytes > 0 {
		fabp.SetScanCacheCapacity(cfg.cacheBytes)
	}
	reg := telemetry.Default()
	return &server{
		cfg: cfg,
		adm: sched.NewAdmission(cfg.maxInflight, cfg.maxQueue),
		scan: func(ctx context.Context, req fabp.ScanRequest) (*fabp.ScanResult, error) {
			return fabp.Scan(ctx, req)
		},
		lookup: fabp.CachedScan,
		scanBatch: func(ctx context.Context, d *fabp.Database, queries []*fabp.Query, thresholdFrac float64) ([][]fabp.RecordHit, error) {
			return fabp.AlignDatabaseBatchContext(ctx, d, queries, thresholdFrac)
		},
		streamBatch: fabp.AlignBatchStreamContext,
		m: serveMetrics{
			requests:       reg.Counter("serve.requests"),
			rejected:       reg.Counter("serve.rejected.overload"),
			timeouts:       reg.Counter("serve.timeouts"),
			clientGone:     reg.Counter("serve.client.gone"),
			failed:         reg.Counter("serve.failed"),
			batchRequests:  reg.Counter("serve.batch.requests"),
			batchQueries:   reg.Counter("serve.batch.queries"),
			streamRequests: reg.Counter("serve.stream.requests"),
			searchRequests: reg.Counter("serve.search.requests"),
			degraded:       reg.Counter("serve.degraded"),
			cacheHits:      reg.Counter("serve.cache.hits"),
			inflight:       reg.Gauge("serve.inflight"),
			latency:        reg.Histogram("serve.latency"),
		},
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /align", s.handleAlign)
	mux.HandleFunc("POST /align/batch", s.handleAlignBatch)
	mux.HandleFunc("POST /align/stream", s.handleAlignStream)
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// alignRequest is the /align request body.
type alignRequest struct {
	// Query is the protein in one-letter codes (required).
	Query string `json:"query"`
	// ThresholdFrac is the hit threshold as a fraction of the maximum
	// score (default 0.8). Threshold is an absolute score instead;
	// setting both is a client error.
	ThresholdFrac *float64 `json:"threshold_frac,omitempty"`
	Threshold     *int     `json:"threshold,omitempty"`
	// Kernel names the alignment implementation: auto (default), scalar
	// or bitparallel.
	Kernel string `json:"kernel,omitempty"`
	// MaxHits caps the hits returned (default and ceiling: the server's
	// -max-hits).
	MaxHits int `json:"max_hits,omitempty"`
	// TimeoutMs bounds this request's scan (default: the server's
	// -timeout, capped at -max-timeout). The deadline is also what the
	// admission queue sheds against: a request that cannot finish within
	// it is answered 429 instead of burning a slot on a guaranteed 504.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// RetryBudget overrides the server's per-shard retry count for this
	// request (clamped to [0, 10]); nil inherits the server's -retries.
	RetryBudget *int `json:"retry_budget,omitempty"`
	// Partial opts this request into degraded completion: if shards still
	// fail after retries, respond 200 with the surviving hits,
	// degraded=true and the uncovered ranges, instead of a 5xx. Partial
	// responses are never served from or stored in the result cache.
	Partial bool `json:"partial,omitempty"`
}

// alignHit is one hit in the /align response.
type alignHit struct {
	Record      string `json:"record"`
	RecordIndex int    `json:"record_index"`
	Offset      int    `json:"offset"`
	Score       int    `json:"score"`
}

// failedRange is one uncovered window-start range of a degraded scan.
type failedRange struct {
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Error string `json:"error"`
}

// alignResponse is the /align response body.
type alignResponse struct {
	Residues  int        `json:"residues"`
	Elements  int        `json:"elements"`
	Threshold int        `json:"threshold"`
	MaxScore  int        `json:"max_score"`
	Hits      []alignHit `json:"hits"`
	Truncated bool       `json:"truncated"`
	ElapsedMs float64    `json:"elapsed_ms"`
	// Cache is the result's provenance: "hit" (served resident, no scan,
	// no admission slot), "shared" (joined an in-flight identical scan),
	// "miss" (this request scanned and seeded the cache), "bypass"
	// (cache disabled or ineligible). Empty when the scan hook is stubbed.
	Cache string `json:"cache,omitempty"`
	// Degraded marks a partial-mode response whose scan lost shards after
	// retries: Hits covers everything outside FailedRanges.
	Degraded     bool          `json:"degraded"`
	FailedRanges []failedRange `json:"failed_ranges,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds rounds a shed hint up to whole seconds for the
// Retry-After header (minimum 1 — a zero hint is not actionable).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeAdmitError answers a request the admission queue did not grant:
// ShedErrors become 429 + Retry-After, a deadline that expired while
// queued becomes 504, and a vanished client gets nothing.
func (s *server) writeAdmitError(w http.ResponseWriter, err error, timeout time.Duration) {
	var shed *sched.ShedError
	switch {
	case errors.As(err, &shed):
		s.m.rejected.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "%v", shed)
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout,
			"request deadline expired before admission (%s)", timeout)
	default:
		// Client went away while queued; nobody is reading the response.
		s.m.clientGone.Inc()
	}
}

// writeScanResult maps a Scan outcome onto the HTTP surface: clean and
// degraded results are 200s, the error taxonomy picks the status for the
// rest (ErrBadQuery/ErrBadOption → 400, deadline → 504, cancel → client
// gone, anything else → 500).
func (s *server) writeScanResult(w http.ResponseWriter, q *fabp.Query, res *fabp.ScanResult, err error, timeout time.Duration, t0 time.Time) {
	var pe *fabp.PartialError
	switch {
	case err == nil:
	case errors.As(err, &pe) && res != nil:
		// Degraded completion under partial mode: the hits are real, the
		// uncovered ranges are declared below. A 200, not a 5xx — the
		// client asked for exactly this contract.
		s.m.degraded.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout,
			"scan exceeded its %s deadline", timeout)
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nobody is reading the response.
		s.m.clientGone.Inc()
		return
	case errors.Is(err, fabp.ErrBadQuery), errors.Is(err, fabp.ErrBadOption):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		s.m.failed.Inc()
		writeError(w, http.StatusInternalServerError, "scan failed: %v", err)
		return
	}

	hits := make([]alignHit, 0, len(res.RecordHits))
	for _, h := range res.RecordHits {
		hits = append(hits, alignHit{
			Record:      h.RecordID,
			RecordIndex: h.RecordIndex,
			Offset:      h.Offset,
			Score:       h.Score,
		})
	}
	resp := alignResponse{
		Residues:  q.Residues(),
		Elements:  q.Elements(),
		Threshold: res.Threshold,
		MaxScore:  q.MaxScore(),
		Hits:      hits,
		Truncated: res.Truncated,
		Cache:     string(res.Cache),
		ElapsedMs: float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	if res.Degraded {
		resp.Degraded = true
		resp.FailedRanges = make([]failedRange, len(res.FailedRanges))
		for i, fr := range res.FailedRanges {
			resp.FailedRanges[i] = failedRange{Lo: fr.Lo, Hi: fr.Hi, Error: fr.Err.Error()}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	t0 := time.Now()
	defer func() { s.m.latency.Observe(time.Since(t0)) }()

	var req alignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	q, err := fabp.NewQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query: %v", err)
		return
	}
	kernel := fabp.KernelAuto
	if req.Kernel != "" {
		kernel, err = fabp.ParseKernel(req.Kernel)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	rp := s.cfg.retryPolicy
	if req.RetryBudget != nil {
		budget := *req.RetryBudget
		if budget < 0 {
			writeError(w, http.StatusBadRequest, "negative retry_budget %d", budget)
			return
		}
		if budget > serverMaxRetryBudget {
			budget = serverMaxRetryBudget
		}
		rp.MaxRetries = budget
	}
	maxHits := s.cfg.maxHits
	if req.MaxHits > 0 && req.MaxHits < maxHits {
		maxHits = req.MaxHits
	}
	sreq := fabp.ScanRequest{
		Query:       q,
		Database:    s.cfg.db,
		Kernel:      kernel,
		MaxHits:     maxHits,
		RetryPolicy: rp,
		Partial:     req.Partial,
	}
	switch {
	case req.Threshold != nil:
		sreq.Threshold = req.Threshold
	case req.ThresholdFrac != nil:
		sreq.ThresholdFrac = *req.ThresholdFrac
	}

	timeout := s.cfg.defaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}

	// Cache fast path: a resident result answers immediately, without an
	// admission slot — repeats cost a map lookup, not queue position.
	if res, ok := s.lookup(sreq); ok {
		s.m.cacheHits.Inc()
		s.writeScanResult(w, q, res, nil, timeout, t0)
		return
	}

	// The request context roots the scan: a client disconnect cancels it,
	// the per-request deadline bounds it, and a server drain (see main)
	// lets it finish before the listener closes. The same deadline drives
	// admission: infeasible requests are shed as 429, not queued into a
	// guaranteed 504.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.adm.Admit(ctx, 1); err != nil {
		s.writeAdmitError(w, err, timeout)
		return
	}
	s.m.inflight.Add(1)
	tScan := time.Now()
	res, err := s.scan(ctx, sreq)
	observed := time.Since(tScan)
	if err != nil {
		// Failed or aborted scans are not representative work; keep them
		// out of the admission cost estimate.
		observed = 0
	}
	s.adm.Release(1, observed)
	s.m.inflight.Add(-1)
	s.writeScanResult(w, q, res, err, timeout, t0)
}

// searchRequest is the /search request body: a TBLASTN-style protein
// search of the resident database through the Scan spine.
type searchRequest struct {
	// Query is the protein in one-letter codes (required).
	Query string `json:"query"`
	// MinScore is the raw BLOSUM62 HSP cutoff. Omitted selects the BLAST
	// default (35); an explicit 0 or negative value keeps every HSP.
	MinScore *int `json:"min_score,omitempty"`
	// TwoHit enables BLAST's two-hit seeding (default one-hit).
	TwoHit bool `json:"two_hit,omitempty"`
	// Frames limits the search to the first N translated frames
	// (3 = forward strand only; default 6 = full TBLASTN).
	Frames int `json:"frames,omitempty"`
	// MaxEValue, when positive, discards HSPs whose E-value exceeds it.
	MaxEValue float64 `json:"max_evalue,omitempty"`
	// MaxHits caps the HSPs returned (default and ceiling: the server's
	// -max-hits).
	MaxHits int `json:"max_hits,omitempty"`
	// TimeoutMs bounds this request's search (default: the server's
	// -timeout, capped at -max-timeout).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// searchHSP is one HSP in the /search response.
type searchHSP struct {
	Frame    string  `json:"frame"`
	QStart   int     `json:"q_start"`
	QEnd     int     `json:"q_end"`
	SStart   int     `json:"s_start"`
	SEnd     int     `json:"s_end"`
	NucPos   int     `json:"nuc_pos"`
	Score    int     `json:"score"`
	BitScore float64 `json:"bit_score"`
	EValue   float64 `json:"evalue"`
}

// searchStats profiles the pipeline run behind a /search response.
type searchStats struct {
	IndexEntries int `json:"index_entries"`
	WordLookups  int `json:"word_lookups"`
	WordHits     int `json:"word_hits"`
	Extensions   int `json:"extensions"`
}

// searchResponse is the /search response body.
type searchResponse struct {
	Residues  int          `json:"residues"`
	HSPs      []searchHSP  `json:"hsps"`
	Truncated bool         `json:"truncated"`
	Cache     string       `json:"cache,omitempty"`
	ElapsedMs float64      `json:"elapsed_ms"`
	Stats     *searchStats `json:"stats,omitempty"`
}

// handleSearch serves POST /search: a protein query against all (or the
// forward) translated frames of the resident database, riding the same
// spine as /align — cache fast path before admission, one weighted slot
// while scanning, the per-request deadline shared between queue and scan.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	s.m.searchRequests.Inc()
	t0 := time.Now()
	defer func() { s.m.latency.Observe(time.Since(t0)) }()

	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	q, err := fabp.NewQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query: %v", err)
		return
	}
	opts := fabp.ProteinSearchOptions{
		Threads:   runtime.GOMAXPROCS(0),
		Frames:    req.Frames,
		TwoHit:    req.TwoHit,
		MaxEValue: req.MaxEValue,
	}
	if req.MinScore != nil {
		// The wire contract is simpler than the library's: any explicit
		// non-positive min_score means "keep every HSP".
		if *req.MinScore <= 0 {
			opts.MinScore = fabp.MinScoreAll
		} else {
			opts.MinScore = *req.MinScore
		}
	}
	maxHits := s.cfg.maxHits
	if req.MaxHits > 0 && req.MaxHits < maxHits {
		maxHits = req.MaxHits
	}
	sreq := fabp.ScanRequest{
		Query:         q,
		Database:      s.cfg.db,
		MaxHits:       maxHits,
		ProteinSearch: &opts,
	}

	timeout := s.cfg.defaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}

	// Cache fast path: a resident result answers without an admission
	// slot. Thread count is not part of the protein cache key, so any
	// earlier identical search serves this one.
	if res, ok := s.lookup(sreq); ok {
		s.m.cacheHits.Inc()
		s.writeSearchResult(w, q, res, nil, timeout, t0)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.adm.Admit(ctx, 1); err != nil {
		s.writeAdmitError(w, err, timeout)
		return
	}
	s.m.inflight.Add(1)
	tScan := time.Now()
	res, err := s.scan(ctx, sreq)
	observed := time.Since(tScan)
	if err != nil {
		observed = 0
	}
	s.adm.Release(1, observed)
	s.m.inflight.Add(-1)
	s.writeSearchResult(w, q, res, err, timeout, t0)
}

// writeSearchResult maps a protein-search outcome onto the HTTP surface
// with the same error taxonomy as /align (deadline → 504, cancel →
// client gone, bad input → 400, the rest → 500).
func (s *server) writeSearchResult(w http.ResponseWriter, q *fabp.Query, res *fabp.ScanResult, err error, timeout time.Duration, t0 time.Time) {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout,
			"search exceeded its %s deadline", timeout)
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nobody is reading the response.
		s.m.clientGone.Inc()
		return
	case errors.Is(err, fabp.ErrBadQuery), errors.Is(err, fabp.ErrBadOption):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		s.m.failed.Inc()
		writeError(w, http.StatusInternalServerError, "search failed: %v", err)
		return
	}

	hsps := make([]searchHSP, len(res.HSPs))
	for i, h := range res.HSPs {
		hsps[i] = searchHSP{
			Frame:  h.Frame,
			QStart: h.QStart, QEnd: h.QEnd,
			SStart: h.SStart, SEnd: h.SEnd,
			NucPos:   h.NucPos,
			Score:    h.Score,
			BitScore: h.BitScore,
			EValue:   h.EValue,
		}
	}
	resp := searchResponse{
		Residues:  q.Residues(),
		HSPs:      hsps,
		Truncated: res.Truncated,
		Cache:     string(res.Cache),
		ElapsedMs: float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	if st := res.ProteinStats; st != nil {
		resp.Stats = &searchStats{
			IndexEntries: st.IndexEntries,
			WordLookups:  st.WordLookups,
			WordHits:     st.WordHits,
			Extensions:   st.Extensions,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchAlignRequest is the /align/batch request body: one fused scan of
// the resident database for every query, all sharing one threshold
// fraction.
type batchAlignRequest struct {
	// Queries are proteins in one-letter codes (required, at most the
	// server's -max-batch).
	Queries []string `json:"queries"`
	// ThresholdFrac is every query's hit threshold as a fraction of its
	// own maximum score (default 0.8).
	ThresholdFrac *float64 `json:"threshold_frac,omitempty"`
	// MaxHits caps the hits returned per query (default and ceiling: the
	// server's -max-hits).
	MaxHits int `json:"max_hits,omitempty"`
	// TimeoutMs bounds the whole batch scan (default: the server's
	// -timeout, capped at -max-timeout).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// batchQueryResult is one query's slice of the /align/batch response.
type batchQueryResult struct {
	Residues  int        `json:"residues"`
	Elements  int        `json:"elements"`
	MaxScore  int        `json:"max_score"`
	Hits      []alignHit `json:"hits"`
	Truncated bool       `json:"truncated"`
}

// batchAlignResponse is the /align/batch response body; Queries is
// index-aligned with the request's queries.
type batchAlignResponse struct {
	Queries   []batchQueryResult `json:"queries"`
	ElapsedMs float64            `json:"elapsed_ms"`
}

// handleAlignBatch serves POST /align/batch: the whole batch scans the
// resident database in one fused pass (each reference tile read once for
// every query). The body is parsed before admission so the request's
// weight is known up front: a K-query batch asks the admission queue for
// K units atomically — the admission currency is scan work, not request
// count, so a batch can't slip K queries' worth of load past a limit
// tuned for single scans. Batches that don't fit are shed with 429 (or
// queued whole when -max-queue allows); fused results stay uncached —
// the batch, not the query, is the unit of work here.
func (s *server) handleAlignBatch(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	s.m.batchRequests.Inc()

	var req batchAlignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: queries is required")
		return
	}
	if len(req.Queries) > s.cfg.maxBatch {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the server's limit of %d", len(req.Queries), s.cfg.maxBatch)
		return
	}
	queries := make([]*fabp.Query, len(req.Queries))
	for i, qs := range req.Queries {
		if strings.TrimSpace(qs) == "" {
			writeError(w, http.StatusBadRequest, "query %d is empty", i)
			return
		}
		q, err := fabp.NewQuery(qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	frac := 0.8
	if req.ThresholdFrac != nil {
		frac = *req.ThresholdFrac
	}
	s.m.batchQueries.Add(uint64(len(queries)))

	timeout := s.cfg.defaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// All-or-nothing weighted admission: the queue clamps an over-wide
	// batch to full capacity ("everything") and grants atomically.
	weight := len(queries)
	if err := s.adm.Admit(ctx, weight); err != nil {
		s.writeAdmitError(w, err, timeout)
		return
	}
	s.m.inflight.Add(int64(weight))
	t0 := time.Now()
	defer func() { s.m.latency.Observe(time.Since(t0)) }()

	maxHits := s.cfg.maxHits
	if req.MaxHits > 0 && req.MaxHits < maxHits {
		maxHits = req.MaxHits
	}

	perQuery, err := s.scanBatch(ctx, s.cfg.db, queries, frac)
	observed := time.Since(t0)
	if err != nil {
		observed = 0
	}
	s.adm.Release(weight, observed)
	s.m.inflight.Add(-int64(weight))
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout,
			"batch scan exceeded its %s deadline", timeout)
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nobody is reading the response.
		s.m.clientGone.Inc()
		return
	default:
		// The batch API validates the threshold fraction and query shapes
		// together, so what surfaces here is the client's to fix.
		s.m.failed.Inc()
		writeError(w, http.StatusBadRequest, "batch scan failed: %v", err)
		return
	}

	resp := batchAlignResponse{Queries: make([]batchQueryResult, len(queries))}
	for i, hits := range perQuery {
		qr := &resp.Queries[i]
		qr.Residues = queries[i].Residues()
		qr.Elements = queries[i].Elements()
		qr.MaxScore = queries[i].MaxScore()
		if len(hits) > maxHits {
			hits = hits[:maxHits]
			qr.Truncated = true
		}
		qr.Hits = make([]alignHit, len(hits))
		for j, h := range hits {
			qr.Hits[j] = alignHit{
				Record:      h.RecordID,
				RecordIndex: h.RecordIndex,
				Offset:      h.Offset,
				Score:       h.Score,
			}
		}
	}
	resp.ElapsedMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	writeJSON(w, http.StatusOK, resp)
}

// streamHit is one NDJSON hit line of the /align/stream response: the
// query's index in the request, the hit's global position in the streamed
// reference, and its score.
type streamHit struct {
	Query int `json:"query"`
	Pos   int `json:"pos"`
	Score int `json:"score"`
}

// streamTrailer is the final NDJSON line of the /align/stream response.
// Done is false when the scan ended early; Error then says why, and every
// hit line already written remains valid (they cover the stream prefix).
type streamTrailer struct {
	Done      bool    `json:"done"`
	Hits      int     `json:"hits"`
	Truncated bool    `json:"truncated"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// handleAlignStream serves POST /align/stream: the request body is a raw
// nucleotide stream (letters, whitespace tolerated, unbounded length) and
// the query parameters name K proteins; the server packs each chunk of the
// body into bit-planes once and the fused batch kernel scores all K
// queries from those shared plane words — K queries cost one read+pack per
// chunk. Hits stream back as NDJSON lines as each chunk completes,
// followed by one trailer line. Like /align/batch, the request weighs K
// admission units; unlike it, hits carry stream positions, not record
// attributions — the reference is the client's stream, not the resident
// database. Errors after the first hit line surface in the trailer (the
// status line is already committed); earlier errors use the normal JSON
// error surface.
func (s *server) handleAlignStream(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	s.m.streamRequests.Inc()

	params := r.URL.Query()
	protStrs := params["query"]
	if len(protStrs) == 0 {
		writeError(w, http.StatusBadRequest, "missing query parameters")
		return
	}
	if len(protStrs) > s.cfg.maxBatch {
		writeError(w, http.StatusBadRequest,
			"batch of %d queries exceeds the server's limit of %d", len(protStrs), s.cfg.maxBatch)
		return
	}
	queries := make([]*fabp.Query, len(protStrs))
	for i, qs := range protStrs {
		if strings.TrimSpace(qs) == "" {
			writeError(w, http.StatusBadRequest, "query %d is empty", i)
			return
		}
		q, err := fabp.NewQuery(qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	frac := 0.8
	if v := params.Get("threshold_frac"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad threshold_frac: %v", err)
			return
		}
		frac = f
	}
	maxHits := s.cfg.maxHits
	if v := params.Get("max_hits"); v != "" {
		mh, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad max_hits: %v", err)
			return
		}
		if mh > 0 && mh < maxHits {
			maxHits = mh
		}
	}
	timeout := s.cfg.defaultTimeout
	if v := params.Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad timeout_ms: %v", err)
			return
		}
		if ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}
	s.m.batchQueries.Add(uint64(len(queries)))

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	weight := len(queries)
	if err := s.adm.Admit(ctx, weight); err != nil {
		s.writeAdmitError(w, err, timeout)
		return
	}
	s.m.inflight.Add(int64(weight))
	t0 := time.Now()
	defer func() { s.m.latency.Observe(time.Since(t0)) }()

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	counts := make([]int, len(queries))
	total, wrote, truncated := 0, false, false
	err := s.streamBatch(ctx, queries, r.Body, frac, func(qi int, h fabp.Hit) error {
		if counts[qi] >= maxHits {
			truncated = true
			return nil
		}
		counts[qi]++
		total++
		if !wrote {
			// First hit commits the streaming response.
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		if eerr := enc.Encode(streamHit{Query: qi, Pos: h.Pos, Score: h.Score}); eerr != nil {
			return eerr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	observed := time.Since(t0)
	if err != nil {
		observed = 0
	}
	s.adm.Release(weight, observed)
	s.m.inflight.Add(-int64(weight))

	if err != nil && !wrote {
		// Nothing streamed yet: the full JSON error surface is still open.
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.m.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "stream scan exceeded its %s deadline", timeout)
		case errors.Is(err, context.Canceled):
			s.m.clientGone.Inc()
		default:
			// Stream scans fail on what the client sent — a bad byte in the
			// stream, a bad fraction — so the error is the client's to fix.
			s.m.failed.Inc()
			writeError(w, http.StatusBadRequest, "stream scan failed: %v", err)
		}
		return
	}
	trailer := streamTrailer{
		Done:      err == nil,
		Hits:      total,
		Truncated: truncated,
		ElapsedMs: float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.m.clientGone.Inc()
			return // nobody is reading; skip the trailer
		}
		if errors.Is(err, context.DeadlineExceeded) {
			s.m.timeouts.Inc()
		} else {
			s.m.failed.Inc()
		}
		trailer.Error = err.Error()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = enc.Encode(trailer)
}

// healthzResponse is the /healthz body: liveness plus the shape of the
// resident database, its warm-start state, and the admission/cache
// posture.
type healthzResponse struct {
	Status   string `json:"status"`
	Records  int    `json:"records"`
	LengthNt int    `json:"length_nt"`
	Inflight int    `json:"inflight"`
	Capacity int    `json:"capacity"`
	// QueueDepth is how many admitted-pending requests are waiting right
	// now (0 when -max-queue is 0, the immediate-shed configuration).
	QueueDepth int `json:"queue_depth"`
	// CacheCapacityBytes is the scan-result cache bound (0 = disabled);
	// CacheResidentBytes is its current footprint.
	CacheCapacityBytes int64 `json:"cache_capacity_bytes"`
	CacheResidentBytes int64 `json:"cache_resident_bytes"`
	// Planes names where the bit-planes came from at startup ("persisted"
	// from a v2 file, "packed" by this process); PlanesResident reports
	// whether they are in the shared cache right now — the readiness
	// signal that the first query will not pay packing latency.
	Planes         string `json:"planes"`
	PlanesResident bool   `json:"planes_resident"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cs := fabp.ScanCacheSnapshot()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:             "ok",
		Records:            s.cfg.db.NumRecords(),
		LengthNt:           s.cfg.db.Len(),
		Inflight:           s.adm.Held(),
		Capacity:           s.adm.Capacity(),
		QueueDepth:         s.adm.QueueDepth(),
		CacheCapacityBytes: cs.CapacityBytes,
		CacheResidentBytes: cs.ResidentBytes,
		Planes:             s.cfg.planeSource,
		PlanesResident:     s.cfg.db.PlanesResident(),
	})
}

// handleMetrics serves the process-wide telemetry snapshot as expvar-style
// JSON: the alignment pipeline's counters (align.*, scan.*, pool.*,
// cache.*, rcache.*, admission.*) plus the serve.* layer registered here.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := json.MarshalIndent(fabp.DefaultMetrics(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
	_, _ = w.Write([]byte("\n"))
}

// logf is the server's log hook (swappable in tests to keep output quiet).
var logf = log.Printf
