package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fabp"
	"fabp/internal/faultinject"
)

// TestSoakMixedTrafficUnderShardStalls is the nightly soak: ~30 seconds
// of mixed single/batch traffic against an httptest server while 2% of
// shard dispatches stall. The service must stay fully available the
// whole time — nothing 5xx (the only non-200 allowed is admission's 429,
// always carrying Retry-After), and /healthz answering 200 on every poll
// (no flapping).
func TestSoakMixedTrafficUnderShardStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: 30s of traffic; skipped under -short")
	}

	ref, genes := fabp.SyntheticReference(7, 20_000, 2, 30)
	db, err := fabp.DatabaseFromReference("soak", ref)
	if err != nil {
		t.Fatal(err)
	}
	db.WarmPlanes()
	rp := fabp.RetryPolicy{MaxRetries: 2, Base: 100 * time.Microsecond}
	fabp.SetBatchRetryPolicy(rp)
	defer fabp.SetBatchRetryPolicy(fabp.RetryPolicy{})
	s := newServer(serverConfig{
		db:             db,
		maxInflight:    8,
		defaultTimeout: 5 * time.Second,
		retryPolicy:    rp,
	})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// A 2% per-shard stall: pure added latency, never an error, so every
	// request must still succeed — the soak proves injected lag degrades
	// tail latency, not availability.
	faultinject.Enable(2026, faultinject.Plan{
		faultinject.SiteShardDispatch: {Prob: 0.02, Delay: 2 * time.Millisecond},
	})
	defer faultinject.Disable()

	singleBody, err := json.Marshal(alignRequest{Query: genes[0].Protein})
	if err != nil {
		t.Fatal(err)
	}
	batchBody, err := json.Marshal(batchAlignRequest{
		Queries: []string{genes[0].Protein, genes[1].Protein},
	})
	if err != nil {
		t.Fatal(err)
	}

	const soakFor = 30 * time.Second
	deadline := time.Now().Add(soakFor)
	var (
		mu        sync.Mutex
		statuses  = map[int]int{}
		failures  []string
		requests  atomic.Int64
		healthOK  atomic.Int64
		healthAll atomic.Int64
	)
	fail := func(msg string) {
		mu.Lock()
		if len(failures) < 10 {
			failures = append(failures, msg)
		}
		mu.Unlock()
	}
	post := func(client *http.Client, path string, body []byte) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			fail("transport error: " + err.Error())
			return
		}
		defer resp.Body.Close()
		requests.Add(1)
		mu.Lock()
		statuses[resp.StatusCode]++
		mu.Unlock()
		switch {
		case resp.StatusCode >= 500:
			fail(path + " answered " + resp.Status)
		case resp.StatusCode == http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				fail("429 without Retry-After")
			}
		case resp.StatusCode != http.StatusOK:
			fail(path + " answered unexpected " + resp.Status)
		}
	}

	var wg sync.WaitGroup
	// Traffic: 6 workers alternating single and batch scans, enough to
	// brush against maxInflight=8 (batches weigh 2 slots) and shed 429s.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; time.Now().Before(deadline); i++ {
				if (w+i)%3 == 0 {
					post(client, "/align/batch", batchBody)
				} else {
					post(client, "/align", singleBody)
				}
			}
		}(w)
	}
	// Health prober: /healthz must answer 200 on every single poll.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for time.Now().Before(deadline) {
			resp, err := client.Get(ts.URL + "/healthz")
			if err != nil {
				fail("healthz transport error: " + err.Error())
			} else {
				healthAll.Add(1)
				if resp.StatusCode == http.StatusOK {
					healthOK.Add(1)
				} else {
					fail("healthz flapped to " + resp.Status)
				}
				resp.Body.Close()
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	if requests.Load() < 100 {
		t.Errorf("only %d scan requests completed in %s; the soak barely ran", requests.Load(), soakFor)
	}
	if healthAll.Load() == 0 || healthOK.Load() != healthAll.Load() {
		t.Errorf("healthz: %d/%d polls OK", healthOK.Load(), healthAll.Load())
	}
	if faultinject.Fired(faultinject.SiteShardDispatch) == 0 {
		t.Error("no stalls fired; the soak tested nothing")
	}
	t.Logf("soak: %d requests, statuses %v, %d/%d healthz OK, %d stalls injected",
		requests.Load(), statuses, healthOK.Load(), healthAll.Load(),
		faultinject.Fired(faultinject.SiteShardDispatch))
}
