package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fabp"
)

// perfReport is one point on the bench trajectory: BENCH_<date>.json files
// accumulate in a checkout (or an artifact store) so throughput regressions
// show up as a broken time series rather than a vibe.
type perfReport struct {
	Date         string            `json:"date"`
	GoVersion    string            `json:"go_version"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	RefLen       int               `json:"ref_len"`
	Queries      int               `json:"queries"`
	Reps         int               `json:"reps"`
	Runs         []perfRun         `json:"runs"`
	CacheHitRate float64           `json:"cache_hit_rate"`
	Counters     map[string]uint64 `json:"counters"`
}

// perfRun is one measured configuration.
type perfRun struct {
	Name       string  `json:"name"`
	Ops        int     `json:"ops"`
	Hits       int     `json:"hits"`
	NsPerOp    float64 `json:"ns_per_op"`
	HitsPerSec float64 `json:"hits_per_sec"`
}

// runPerf measures database-scan throughput on a synthetic workload and
// writes BENCH_<date>.json into outDir. scale multiplies the 100 kb base
// reference; scale 1 keeps the run CI-cheap (a few seconds).
func runPerf(outDir string, scale int) {
	if scale < 1 {
		scale = 1
	}
	refLen := 100_000 * scale
	const nQueries, reps = 4, 3

	ref, genes := fabp.SyntheticReference(42, refLen, nQueries, 60)
	dbase, err := fabp.DatabaseFromReference("perf", ref)
	if err != nil {
		log.Fatal(err)
	}
	aligners := make([]*fabp.Aligner, nQueries)
	for i, g := range genes[:nQueries] {
		q, err := fabp.NewQuery(g.Protein)
		if err != nil {
			log.Fatal(err)
		}
		aligners[i], err = fabp.NewAligner(q, fabp.WithThresholdFraction(0.85))
		if err != nil {
			log.Fatal(err)
		}
	}

	m := fabp.DefaultMetrics()
	m.Reset()
	aligners[0].AlignDatabase(dbase) // warm the plane cache outside the clock

	report := perfReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RefLen:     refLen,
		Queries:    nQueries,
		Reps:       reps,
	}
	for _, cfg := range []struct {
		name string
		scan func() int
	}{
		{"align_database", func() int {
			hits := 0
			for _, a := range aligners {
				hits += len(a.AlignDatabase(dbase))
			}
			return hits
		}},
		{"align_database_stream", func() int {
			hits := 0
			for _, a := range aligners {
				if err := a.AlignDatabaseStream(dbase, func(fabp.RecordHit) error {
					hits++
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
			return hits
		}},
	} {
		hits := 0
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			hits += cfg.scan()
		}
		elapsed := time.Since(t0)
		ops := nQueries * reps
		run := perfRun{
			Name:    cfg.name,
			Ops:     ops,
			Hits:    hits,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		}
		if secs := elapsed.Seconds(); secs > 0 {
			run.HitsPerSec = float64(hits) / secs
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("%-22s %8d ops  %12.0f ns/op  %10.0f hits/s\n",
			cfg.name, run.Ops, run.NsPerOp, run.HitsPerSec)
	}

	snap := m.Snapshot()
	report.CacheHitRate = snap.CacheHitRate()
	report.Counters = snap.Counters

	path := filepath.Join(outDir, "BENCH_"+report.Date+".json")
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache hit rate %.2f; wrote %s\n", report.CacheHitRate, path)
}
