package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fabp"
)

// perfReport is one point on the bench trajectory: BENCH_<date>.json files
// accumulate in a checkout (or an artifact store) so throughput regressions
// show up as a broken time series rather than a vibe.
type perfReport struct {
	Date       string    `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	RefLen     int       `json:"ref_len"`
	Queries    int       `json:"queries"`
	Reps       int       `json:"reps"`
	Runs       []perfRun `json:"runs"`
	// Batch is the -batch width (0 when the batch runs were skipped);
	// BatchSpeedup is batch_per_query ns/op over batch_fused ns/op — the
	// fused kernel's measured gain from scanning each reference tile once
	// for the whole batch.
	Batch        int     `json:"batch,omitempty"`
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
	// StreamSpeedup is stream_batch_per_query ns/op over stream_batch_fused
	// ns/op — the fused streaming path's measured gain from reading and
	// packing each chunk once for the whole batch instead of once per query.
	StreamSpeedup float64 `json:"stream_speedup,omitempty"`
	// LoadColdNs/LoadWarmNs time one full database load to scan-ready
	// planes: cold from a v1 file (packs in-process), warm from a v2 file
	// (persisted planes, zero packing). LoadWarmSpeedup is their ratio —
	// the measured value of the v2 plane section.
	LoadColdNs      float64 `json:"load_cold_ns,omitempty"`
	LoadWarmNs      float64 `json:"load_warm_ns,omitempty"`
	LoadWarmSpeedup float64 `json:"load_warm_speedup,omitempty"`
	// SearchSpeedup is search_serial ns/op over search_sharded ns/op —
	// the sched-sharded protein scan's measured thread-scaling gain at
	// GOMAXPROCS workers (results are byte-identical by construction, so
	// this is pure wall-clock).
	SearchSpeedup float64 `json:"search_speedup,omitempty"`
	// CacheColdNs/CacheHitNs time one Scan through the unified API with
	// the result cache armed: cold flushes the cache first so the scan
	// runs and seeds an entry, hit re-issues the identical request and is
	// served without scanning. CacheHitSpeedup is their ratio — the
	// measured value of the content-addressed result cache (the serving
	// acceptance bar is ≥10×).
	CacheColdNs     float64           `json:"cache_cold_ns,omitempty"`
	CacheHitNs      float64           `json:"cache_hit_ns,omitempty"`
	CacheHitSpeedup float64           `json:"cache_hit_speedup,omitempty"`
	CacheHitRate    float64           `json:"cache_hit_rate"`
	Counters        map[string]uint64 `json:"counters"`
}

// perfRun is one measured configuration.
type perfRun struct {
	Name       string  `json:"name"`
	Ops        int     `json:"ops"`
	Hits       int     `json:"hits"`
	NsPerOp    float64 `json:"ns_per_op"`
	HitsPerSec float64 `json:"hits_per_sec"`
}

// runPerf measures database-scan throughput on a synthetic workload and
// writes BENCH_<date>.json into outDir. scale multiplies the 100 kb base
// reference; scale 1 keeps the run CI-cheap (a few seconds). batchN > 0
// adds the batch_fused / batch_per_query pair: the same batchN queries
// scanned through the fused batch kernel versus the per-query loop, with
// the speedup recorded in the report. cacheOn adds the scan_cache_cold /
// scan_cache_hit pair through the unified Scan API.
func runPerf(outDir string, scale, batchN int, cacheOn bool) {
	if scale < 1 {
		scale = 1
	}
	refLen := 100_000 * scale
	const nQueries, reps = 4, 3

	nGenes := nQueries
	if batchN > nGenes {
		nGenes = batchN
	}
	ref, genes := fabp.SyntheticReference(42, refLen, nGenes, 60)
	refStr := ref.String() // the letter stream the chunked-reader rows scan
	dbase, err := fabp.DatabaseFromReference("perf", ref)
	if err != nil {
		log.Fatal(err)
	}
	aligners := make([]*fabp.Aligner, nQueries)
	for i, g := range genes[:nQueries] {
		q, err := fabp.NewQuery(g.Protein)
		if err != nil {
			log.Fatal(err)
		}
		aligners[i], err = fabp.NewAligner(q, fabp.WithThresholdFraction(0.85))
		if err != nil {
			log.Fatal(err)
		}
	}

	m := fabp.DefaultMetrics()
	m.Reset()
	aligners[0].AlignDatabase(dbase) // warm the plane cache outside the clock

	report := perfReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RefLen:     refLen,
		Queries:    nQueries,
		Reps:       reps,
		Batch:      batchN,
	}
	type benchCfg struct {
		name string
		ops  int
		scan func() int
	}
	configs := []benchCfg{
		{"align_database", nQueries * reps, func() int {
			hits := 0
			for _, a := range aligners {
				hits += len(a.AlignDatabase(dbase))
			}
			return hits
		}},
		{"align_database_stream", nQueries * reps, func() int {
			hits := 0
			for _, a := range aligners {
				if err := a.AlignDatabaseStream(dbase, func(fabp.RecordHit) error {
					hits++
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
			return hits
		}},
		// The chunked-reader path: the stream is decoded and packed chunk by
		// chunk through the pooled plane builder — the row that moves when
		// the streaming data path changes (and the one that populates the
		// stream.* counters below).
		{"align_stream", nQueries * reps, func() int {
			hits := 0
			for _, a := range aligners {
				if err := a.AlignStream(strings.NewReader(refStr), func(fabp.Hit) error {
					hits++
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
			return hits
		}},
	}
	if batchN > 0 {
		batchQs := make([]*fabp.Query, batchN)
		for i, g := range genes[:batchN] {
			q, err := fabp.NewQuery(g.Protein)
			if err != nil {
				log.Fatal(err)
			}
			batchQs[i] = q
		}
		countBatch := func(res [][]fabp.Hit, err error) int {
			if err != nil {
				log.Fatal(err)
			}
			hits := 0
			for _, h := range res {
				hits += len(h)
			}
			return hits
		}
		// Warm the reference's plane-cache entry outside the clock (the
		// database warm-up above keyed on the database, not the reference).
		countBatch(fabp.AlignBatch(batchQs, ref, 0.85))
		batchAligners := make([]*fabp.Aligner, batchN)
		for i, q := range batchQs {
			batchAligners[i], err = fabp.NewAligner(q, fabp.WithThresholdFraction(0.85))
			if err != nil {
				log.Fatal(err)
			}
		}
		configs = append(configs,
			benchCfg{"batch_per_query", batchN * reps, func() int {
				return countBatch(fabp.AlignBatchPerQuery(batchQs, ref, 0.85))
			}},
			benchCfg{"batch_fused", batchN * reps, func() int {
				return countBatch(fabp.AlignBatch(batchQs, ref, 0.85))
			}},
			// Streaming batch pair: K independent streams (each query reads,
			// decodes and packs the whole stream itself) versus one fused
			// stream whose chunks are packed once and scanned for all K.
			benchCfg{"stream_batch_per_query", batchN * reps, func() int {
				hits := 0
				for _, a := range batchAligners {
					if err := a.AlignStream(strings.NewReader(refStr), func(fabp.Hit) error {
						hits++
						return nil
					}); err != nil {
						log.Fatal(err)
					}
				}
				return hits
			}},
			benchCfg{"stream_batch_fused", batchN * reps, func() int {
				hits := 0
				if err := fabp.AlignBatchStream(batchQs, strings.NewReader(refStr), 0.85,
					func(int, fabp.Hit) error {
						hits++
						return nil
					}); err != nil {
					log.Fatal(err)
				}
				return hits
			}},
		)
	}

	// Protein-search pair: the TBLASTN-style pipeline over the same
	// reference, serial versus sched-sharded at GOMAXPROCS workers. These
	// run before the cache rows so the result cache is still disabled and
	// every op is a real scan.
	{
		sq, err := fabp.NewQuery(genes[0].Protein)
		if err != nil {
			log.Fatal(err)
		}
		searchOnce := func(threads int) int {
			hsps, err := fabp.SearchProtein(sq, ref, fabp.ProteinSearchOptions{
				Threads: threads, TwoHit: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			return len(hsps)
		}
		// Floor at 2 so the sharded row always exercises the
		// speculate+replay path even on a single-CPU runner (there the
		// ratio reads as sharding overhead rather than speedup).
		threads := runtime.GOMAXPROCS(0)
		if threads < 2 {
			threads = 2
		}
		configs = append(configs,
			benchCfg{"search_serial", reps, func() int { return searchOnce(1) }},
			benchCfg{"search_sharded", reps, func() int { return searchOnce(threads) }},
		)
	}

	// Cold vs hit through the result cache: the same Scan request issued
	// with the cache flushed (the scan runs and seeds) versus already
	// seeded (served from the cache, no scan). Hits are microseconds, so
	// they get extra inner iterations to stay measurable.
	if cacheOn {
		// The cache is armed only inside scan_cache_cold's closure (below),
		// never at setup time — arming it here would let the rows above be
		// served from the result cache and measure map lookups, not scans.
		const cacheCap = 64 << 20
		defer fabp.SetScanCacheCapacity(0)
		cq, err := fabp.NewQuery(genes[0].Protein)
		if err != nil {
			log.Fatal(err)
		}
		creq := fabp.ScanRequest{Query: cq, Database: dbase, ThresholdFrac: 0.85}
		scanOnce := func() int {
			res, err := fabp.Scan(context.Background(), creq)
			if err != nil {
				log.Fatal(err)
			}
			return len(res.RecordHits)
		}
		const hitIters = 200
		configs = append(configs,
			benchCfg{"scan_cache_cold", reps, func() int {
				// Dropping the capacity to zero empties the cache, so the
				// scan below is a genuine miss that reseeds it.
				fabp.SetScanCacheCapacity(0)
				fabp.SetScanCacheCapacity(cacheCap)
				return scanOnce()
			}},
			benchCfg{"scan_cache_hit", reps * hitIters, func() int {
				hits := 0
				for i := 0; i < hitIters; i++ {
					hits += scanOnce()
				}
				return hits
			}},
		)
	}

	// Cold vs warm load: identical content through the legacy (v1) format,
	// which forces in-process packing, versus the v2 format whose
	// persisted plane section loads straight into the cache. Each rep
	// evicts first so both paths start from nothing resident; the timed
	// region is load → scan-ready planes. These run last so the eviction
	// churn cannot disturb the scan configurations above.
	var v1bytes, v2bytes bytes.Buffer
	if err := dbase.SaveDatabaseLegacy(&v1bytes); err != nil {
		log.Fatal(err)
	}
	if err := dbase.SaveDatabase(&v2bytes); err != nil {
		log.Fatal(err)
	}
	loadAndWarm := func(data []byte) {
		dbase.EvictPlanes() // same digest: drops residency for any load of this content
		d, err := fabp.LoadDatabase(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		d.WarmPlanes()
	}
	configs = append(configs,
		benchCfg{"load_cold_v1", reps, func() int { loadAndWarm(v1bytes.Bytes()); return 0 }},
		benchCfg{"load_warm_v2", reps, func() int { loadAndWarm(v2bytes.Bytes()); return 0 }},
	)

	nsPerOp := map[string]float64{}
	for _, cfg := range configs {
		hits := 0
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			hits += cfg.scan()
		}
		elapsed := time.Since(t0)
		run := perfRun{
			Name:    cfg.name,
			Ops:     cfg.ops,
			Hits:    hits,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(cfg.ops),
		}
		if secs := elapsed.Seconds(); secs > 0 {
			run.HitsPerSec = float64(hits) / secs
		}
		nsPerOp[cfg.name] = run.NsPerOp
		report.Runs = append(report.Runs, run)
		fmt.Printf("%-22s %8d ops  %12.0f ns/op  %10.0f hits/s\n",
			cfg.name, run.Ops, run.NsPerOp, run.HitsPerSec)
	}
	if batchN > 0 && nsPerOp["batch_fused"] > 0 {
		report.BatchSpeedup = nsPerOp["batch_per_query"] / nsPerOp["batch_fused"]
		fmt.Printf("batch %d fused speedup ×%.2f over per-query\n", batchN, report.BatchSpeedup)
	}
	if batchN > 0 && nsPerOp["stream_batch_fused"] > 0 {
		report.StreamSpeedup = nsPerOp["stream_batch_per_query"] / nsPerOp["stream_batch_fused"]
		fmt.Printf("stream batch %d fused speedup ×%.2f over per-query streams\n", batchN, report.StreamSpeedup)
	}
	if s, p := nsPerOp["search_serial"], nsPerOp["search_sharded"]; s > 0 && p > 0 {
		report.SearchSpeedup = s / p
		fmt.Printf("sharded protein search speedup ×%.2f over serial\n", report.SearchSpeedup)
	}
	if c, h := nsPerOp["scan_cache_cold"], nsPerOp["scan_cache_hit"]; c > 0 && h > 0 {
		report.CacheColdNs, report.CacheHitNs = c, h
		report.CacheHitSpeedup = c / h
		fmt.Printf("cached-hit scan speedup ×%.2f over cold scan\n", report.CacheHitSpeedup)
	}
	if c, w := nsPerOp["load_cold_v1"], nsPerOp["load_warm_v2"]; c > 0 && w > 0 {
		report.LoadColdNs, report.LoadWarmNs = c, w
		report.LoadWarmSpeedup = c / w
		fmt.Printf("warm (v2) load speedup ×%.2f over cold (v1) load\n", report.LoadWarmSpeedup)
	}

	snap := m.Snapshot()
	report.CacheHitRate = snap.CacheHitRate()
	report.Counters = snap.Counters

	path := filepath.Join(outDir, "BENCH_"+report.Date+".json")
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache hit rate %.2f; wrote %s\n", report.CacheHitRate, path)
}

// regressionWarnFrac is the warn-only slowdown threshold for comparePerf:
// a run more than this fraction slower than the baseline gets a WARN line.
const regressionWarnFrac = 0.25

// comparePerf prints a benchstat-style table of two -perf reports matched
// by run name and warns on regressions past regressionWarnFrac. It never
// fails the process — bench numbers on shared CI runners are advisory, so
// the contract is warn-only; a real regression shows up as a WARN line in
// the log, not a red build.
func comparePerf(oldPath, newPath string) {
	readReport := func(path string) perfReport {
		b, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		var r perfReport
		if err := json.Unmarshal(b, &r); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return r
	}
	oldR, newR := readReport(oldPath), readReport(newPath)
	oldRuns := map[string]perfRun{}
	for _, r := range oldR.Runs {
		oldRuns[r.Name] = r
	}
	fmt.Printf("%-22s %14s %14s %9s\n", "name", "old ns/op", "new ns/op", "delta")
	warns := 0
	for _, nr := range newR.Runs {
		or, ok := oldRuns[nr.Name]
		if !ok || or.NsPerOp <= 0 {
			fmt.Printf("%-22s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		delta := nr.NsPerOp/or.NsPerOp - 1
		fmt.Printf("%-22s %14.0f %14.0f %+8.1f%%\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta*100)
		if delta > regressionWarnFrac {
			warns++
			fmt.Printf("WARN: %s regressed %.1f%% (ns/op %0.f → %0.f, threshold %.0f%%)\n",
				nr.Name, delta*100, or.NsPerOp, nr.NsPerOp, regressionWarnFrac*100)
		}
	}
	if oldR.BatchSpeedup > 0 && newR.BatchSpeedup > 0 {
		fmt.Printf("batch speedup: ×%.2f → ×%.2f\n", oldR.BatchSpeedup, newR.BatchSpeedup)
	}
	if oldR.StreamSpeedup > 0 && newR.StreamSpeedup > 0 {
		fmt.Printf("stream speedup: ×%.2f → ×%.2f\n", oldR.StreamSpeedup, newR.StreamSpeedup)
	}
	if oldR.SearchSpeedup > 0 && newR.SearchSpeedup > 0 {
		fmt.Printf("protein search speedup: ×%.2f → ×%.2f\n", oldR.SearchSpeedup, newR.SearchSpeedup)
	}
	if oldR.CacheHitSpeedup > 0 && newR.CacheHitSpeedup > 0 {
		fmt.Printf("cache hit speedup: ×%.2f → ×%.2f\n", oldR.CacheHitSpeedup, newR.CacheHitSpeedup)
	}
	if warns == 0 {
		fmt.Println("no regressions past the warn threshold")
	}
}
