// Command fabp-bench regenerates the paper's tables and figures from the
// calibrated models and the real implementations.
//
// Usage:
//
//	fabp-bench            # run everything
//	fabp-bench -exp fig6a # one experiment
//	fabp-bench -list      # list experiment ids
//	fabp-bench -perf      # measured throughput point, written to BENCH_<date>.json
//	fabp-bench -perf -batch 16        # add fused vs per-query batch runs
//	fabp-bench -perf -cache           # add cold vs cached-hit Scan runs
//	fabp-bench -compare old.json new.json  # warn-only regression check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-bench: ")

	exp := flag.String("exp", "", "experiment id (default: all)")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	perf := flag.Bool("perf", false, "measure scan throughput and write BENCH_<date>.json")
	perfOut := flag.String("perf-out", ".", "directory for the -perf JSON report")
	perfScale := flag.Int("perf-scale", 1, "reference size multiplier for -perf (1 = 100 kb)")
	batch := flag.Int("batch", 0, "with -perf: also bench an N-query batch, fused vs per-query")
	cache := flag.Bool("cache", false, "with -perf: also bench Scan cold vs cached-hit through the result cache")
	compare := flag.Bool("compare", false, "compare two -perf reports (old.json new.json), warn-only")
	metrics := flag.Bool("metrics", false, "dump a telemetry snapshot as JSON after running")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two arguments: old.json new.json")
		}
		comparePerf(flag.Arg(0), flag.Arg(1))
		return
	}

	if *metrics {
		defer func() {
			b, err := json.MarshalIndent(fabp.DefaultMetrics(), "", "  ")
			if err != nil {
				log.Fatalf("metrics: %v", err)
			}
			fmt.Printf("\n=== metrics\n%s\n", b)
		}()
	}
	if *perf {
		runPerf(*perfOut, *perfScale, *batch, *cache)
		return
	}
	if *list {
		fmt.Println(strings.Join(fabp.ExperimentNames(), "\n"))
		return
	}
	if *exp != "" {
		out, err := fabp.RunExperimentAs(*exp, *format)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	for _, name := range fabp.ExperimentNames() {
		if *format == "text" {
			fmt.Printf("### %s\n\n", name)
		}
		out, err := fabp.RunExperimentAs(name, *format)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
	}
}
