// Command fabp-bench regenerates the paper's tables and figures from the
// calibrated models and the real implementations.
//
// Usage:
//
//	fabp-bench            # run everything
//	fabp-bench -exp fig6a # one experiment
//	fabp-bench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-bench: ")

	exp := flag.String("exp", "", "experiment id (default: all)")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(fabp.ExperimentNames(), "\n"))
		return
	}
	if *exp != "" {
		out, err := fabp.RunExperimentAs(*exp, *format)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	for _, name := range fabp.ExperimentNames() {
		if *format == "text" {
			fmt.Printf("### %s\n\n", name)
		}
		out, err := fabp.RunExperimentAs(name, *format)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
	}
}
