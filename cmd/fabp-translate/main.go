// Command fabp-translate inspects the FabP back-translation and encoding of
// a protein sequence: the degenerate template notation, IUPAC rendering and
// the 6-bit instruction listing.
//
// Usage:
//
//	fabp-translate MFSR*
//	fabp-translate -table        # the full amino-acid encoding table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-translate: ")

	table := flag.Bool("table", false, "print the full degenerate-template table")
	flag.Parse()

	if *table {
		fmt.Print(fabp.BackTranslationTable())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fabp-translate [-table] <protein one-letter codes>")
		os.Exit(2)
	}
	q, err := fabp.NewQuery(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protein     : %s (%d aa)\n", q.Protein(), q.Residues())
	fmt.Printf("degenerate  : %s\n", q.Degenerate())
	fmt.Printf("instructions: %d x 6-bit\n\n", q.Elements())
	fmt.Print(q.Disassemble())
}
