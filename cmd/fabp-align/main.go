// Command fabp-align aligns protein queries against a nucleotide database
// with the FabP substitution-only engine, optionally comparing against the
// TBLASTN baseline.
//
// Usage:
//
//	fabp-align -query query.fasta -ref db.fasta [-threshold-frac 0.8] [-tblastn] [-top 5]
//	fabp-align -query query.fasta -db db.fabp   # packed database built by fabp-db (warm start)
//	fabp-align -demo            # synthetic demo workload, no files needed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fabp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabp-align: ")

	queryPath := flag.String("query", "", "FASTA file with protein queries")
	refPath := flag.String("ref", "", "FASTA file with the nucleotide database")
	dbPath := flag.String("db", "", "packed database file built by fabp-db (alternative to -ref)")
	thresholdFrac := flag.Float64("threshold-frac", 0.8, "hit threshold as a fraction of the maximum score")
	autoThreshold := flag.Bool("auto-threshold", false, "derive the threshold from the null score distribution")
	maxFP := flag.Float64("fp", 0.1, "expected chance hits per scan when -auto-threshold is set")
	runTBLASTN := flag.Bool("tblastn", false, "also run the TBLASTN baseline for comparison")
	top := flag.Int("top", 5, "hits to print per query")
	demo := flag.Bool("demo", false, "run on a built-in synthetic workload")
	kernel := flag.String("kernel", "auto", "alignment kernel: auto, scalar or bitparallel")
	workers := flag.Int("workers", 0, "bound scan worker goroutines (0 = all cores)")
	metrics := flag.Bool("metrics", false, "dump a telemetry snapshot as JSON after aligning")
	flag.Parse()

	opts := alignOpts{frac: *thresholdFrac, auto: *autoThreshold, maxFP: *maxFP,
		tblastn: *runTBLASTN, top: *top, kernel: *kernel, workers: *workers}
	if *demo {
		runDemo(opts)
		if *metrics {
			dumpMetrics()
		}
		return
	}
	if *queryPath == "" || (*refPath == "" && *dbPath == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *refPath != "" && *dbPath != "" {
		log.Fatal("-ref and -db are mutually exclusive")
	}

	// One shared database so the packed planes are built once and every
	// query after the first is a plane-cache hit. -db loads a packed file
	// (a v2 file's persisted planes make this a zero-packing warm start);
	// -ref indexes a FASTA reference in-process.
	var dbase *fabp.Database
	var ref *fabp.Reference
	if *dbPath != "" {
		dbFile, err := os.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		dbase, err = fabp.LoadDatabase(dbFile)
		dbFile.Close()
		if err != nil {
			log.Fatalf("loading database: %v", err)
		}
		ref = dbase.AsReference()
		fmt.Printf("database: %d records, %d nt\n", dbase.NumRecords(), dbase.Len())
	} else {
		refFile, err := os.Open(*refPath)
		if err != nil {
			log.Fatal(err)
		}
		defer refFile.Close()
		ref, _, err = fabp.ReadReferenceFasta(refFile)
		if err != nil {
			log.Fatalf("reading reference: %v", err)
		}
		fmt.Printf("reference: %d nt\n", ref.Len())
		dbase, err = fabp.DatabaseFromReference("ref", ref)
		if err != nil {
			log.Fatalf("indexing reference: %v", err)
		}
	}

	queries, err := readProteinFasta(*queryPath)
	if err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	for _, qr := range queries {
		alignOne(qr.id, qr.prot, ref, dbase, opts)
	}
	if *metrics {
		dumpMetrics()
	}
}

// dumpMetrics prints the process-wide telemetry snapshot as indented JSON.
func dumpMetrics() {
	b, err := json.MarshalIndent(fabp.DefaultMetrics(), "", "  ")
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	fmt.Printf("\n=== metrics\n%s\n", b)
}

type alignOpts struct {
	frac    float64
	auto    bool
	maxFP   float64
	tblastn bool
	top     int
	kernel  string
	workers int
}

type protRecord struct {
	id   string
	prot string
}

func readProteinFasta(path string) ([]protRecord, error) {
	var out []protRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var id string
	var body strings.Builder
	flush := func() {
		if id != "" {
			out = append(out, protRecord{id: id, prot: body.String()})
		}
		body.Reset()
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, ">") {
			flush()
			id = strings.Fields(line[1:])[0]
			continue
		}
		body.WriteString(line)
	}
	flush()
	if len(out) == 0 {
		return nil, fmt.Errorf("no FASTA records")
	}
	return out, nil
}

func alignOne(id, prot string, ref *fabp.Reference, dbase *fabp.Database, opts alignOpts) {
	q, err := fabp.NewQuery(prot)
	if err != nil {
		log.Printf("query %s: %v", id, err)
		return
	}
	kernel, err := fabp.ParseKernel(opts.kernel)
	if err != nil {
		log.Printf("query %s: %v", id, err)
		return
	}
	aOpts := []fabp.AlignerOption{fabp.WithKernelType(kernel)}
	if opts.workers > 0 {
		aOpts = append(aOpts, fabp.WithParallelism(opts.workers))
	}
	if opts.auto {
		thr, err := q.SuggestThreshold(ref.Len(), opts.maxFP)
		if err != nil {
			log.Printf("query %s: %v", id, err)
			return
		}
		aOpts = append(aOpts, fabp.WithThreshold(thr))
	} else {
		aOpts = append(aOpts, fabp.WithThresholdFraction(opts.frac))
	}
	a, err := fabp.NewAligner(q, aOpts...)
	if err != nil {
		log.Printf("query %s: %v", id, err)
		return
	}
	// Scan through the database path: sharded across the worker pool, with
	// the packed planes served from the shared cache.
	hits := a.AlignDatabase(dbase)
	fmt.Printf("\nquery %s (%d aa, %d elements, threshold %d/%d): %d hits\n",
		id, q.Residues(), q.Elements(), a.Threshold(), q.MaxScore(), len(hits))
	shown := 0
	for _, h := range hits {
		if shown >= opts.top {
			fmt.Printf("  ... %d more\n", len(hits)-shown)
			break
		}
		fmt.Printf("  pos %-10d score %d/%d  E=%.2g\n", h.Offset, h.Score, q.MaxScore(),
			a.EValueOf(h.Score, ref.Len()))
		shown++
	}
	if len(hits) == 0 {
		if best, ok := a.Best(ref); ok {
			fmt.Printf("  best sub-threshold position: pos %d score %d/%d\n", best.Pos, best.Score, q.MaxScore())
		}
	}
	if opts.tblastn {
		hsps, err := fabp.SearchTBLASTN(q, ref, fabp.TBLASTNOptions{Threads: 4})
		if err != nil {
			log.Printf("tblastn %s: %v", id, err)
			return
		}
		fmt.Printf("  tblastn: %d HSPs", len(hsps))
		if len(hsps) > 0 {
			fmt.Printf("; top: frame %s nuc %d score %d", hsps[0].Frame, hsps[0].NucPos, hsps[0].Score)
		}
		fmt.Println()
	}
}

func runDemo(opts alignOpts) {
	fmt.Println("demo: 200 kb synthetic reference with 8 planted genes")
	ref, genes := fabp.SyntheticReference(2021, 200_000, 8, 80)
	dbase, err := fabp.DatabaseFromReference("demo", ref)
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range genes[:3] {
		// Diverge the query like a real homology search.
		mut, hadIndel, err := fabp.MutateProtein(int64(i)+1, g.Protein, 0.05, 0.09)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== planted gene %d at nucleotide %d (indel during divergence: %v)\n", i, g.Pos, hadIndel)
		alignOne(fmt.Sprintf("demo-%d", i), mut, ref, dbase, opts)
	}
}
