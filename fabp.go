// Package fabp is a Go reproduction of "FPGA Acceleration of Protein
// Back-Translation and Alignment" (Salamat et al., DATE 2021).
//
// FabP aligns a protein query against a nucleotide database by
// back-translating the query into a degenerate RNA representation (every
// codon that could have produced each amino acid), encoding each element as
// a 6-bit instruction, and scoring every reference position with a
// substitution-only sliding comparison — the computation the paper's FPGA
// accelerator performs with two LUTs per element and a hand-crafted
// pop-counter per alignment instance.
//
// The package offers four layers:
//
//   - Query/Reference/Aligner: a fast, bit-exact software implementation of
//     the accelerator for real alignments (NewQuery, NewAligner, Align).
//   - Hardware generation: GenerateVerilog emits the accelerator datapath
//     as structural Verilog (LUT6/FDRE primitives), and SizeOnDevice
//     projects resource utilization, timing and energy for the modeled
//     FPGAs (the paper's Kintex-7 and larger parts).
//   - Baselines: TBLASTN-style heuristic search and Smith-Waterman local
//     alignment, the comparison points of the paper's evaluation.
//   - Experiments: RunExperiment regenerates every table and figure of the
//     paper (see ExperimentNames).
//
// See the examples directory for end-to-end usage.
package fabp

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/core"
	"fabp/internal/experiments"
	"fabp/internal/isa"
	"fabp/internal/sched"
)

// Hit is one alignment position whose score reached the threshold.
type Hit struct {
	// Pos is the nucleotide offset in the reference where the query
	// window starts.
	Pos int
	// Score is the number of matching back-translated elements; the
	// maximum is 3 × the query's residue count.
	Score int
}

// Query is a protein query prepared for alignment: back-translated into
// degenerate elements and encoded into the 6-bit FabP instruction set.
type Query struct {
	protein bio.ProtSeq
	program isa.Program
	// digest is the SHA-256 of the packed instruction program — the
	// query's contribution to the scan-result cache key (see scan.go).
	digest [sha256.Size]byte
}

// NewQuery parses a one-letter-code protein string (e.g. "MKWVTF"; '*'
// allowed for stop) and prepares it for alignment. Unusable input
// matches ErrBadQuery via errors.Is.
func NewQuery(protein string) (*Query, error) {
	p, err := bio.ParseProtSeq(protein)
	if err != nil {
		return nil, badQuery(err)
	}
	if len(p) == 0 {
		return nil, badQueryf("fabp: empty query")
	}
	prog, err := isa.EncodeProtein(p)
	if err != nil {
		return nil, badQuery(err)
	}
	return &Query{protein: p, program: prog, digest: sha256.Sum256(prog.Pack())}, nil
}

// Residues returns the query length in amino acids.
func (q *Query) Residues() int { return len(q.protein) }

// Elements returns the encoded length in back-translated elements (3 ×
// Residues).
func (q *Query) Elements() int { return len(q.program) }

// MaxScore returns the highest achievable alignment score.
func (q *Query) MaxScore() int { return len(q.program) }

// Protein returns the query in one-letter codes.
func (q *Query) Protein() string { return q.protein.String() }

// Degenerate renders the back-translated query in the paper's notation,
// e.g. "AUG-UU(U/C)-UCD".
func (q *Query) Degenerate() string {
	return backtrans.Render(backtrans.BackTranslate(q.protein))
}

// Disassemble lists the encoded 6-bit instructions with their semantics.
func (q *Query) Disassemble() string { return q.program.Disassemble() }

// Instructions returns the encoded program as raw 6-bit values (one per
// byte), the host-to-FPGA transfer format.
func (q *Query) Instructions() []byte { return q.program.Pack() }

// SuggestThreshold computes the smallest hit threshold whose expected
// chance-hit count over a refLen-nucleotide scan stays at or below
// maxExpectedFP, from the exact null score distribution. It fills the gap
// the paper leaves at its "user-defined threshold".
func (q *Query) SuggestThreshold(refLen int, maxExpectedFP float64) (int, error) {
	probe, err := core.NewEngine(q.program, 0)
	if err != nil {
		return 0, err
	}
	return probe.SuggestThreshold(refLen, maxExpectedFP)
}

// NullMeanScore returns the expected score of a random window — the
// background level thresholds must clear.
func (q *Query) NullMeanScore() float64 {
	probe, err := core.NewEngine(q.program, 0)
	if err != nil {
		return 0
	}
	return probe.MeanScore()
}

// Reference is a nucleotide database sequence (DNA or RNA; T and U are
// equivalent).
type Reference struct {
	seq bio.NucSeq
	// digest memoizes the SHA-256 of the sequence, computed on first use
	// by the scan-result cache (see scan.go). Large references pay the
	// hash once per Reference object, and only when caching is on.
	digestOnce sync.Once
	digest     [sha256.Size]byte
}

// contentDigest returns the reference's SHA-256 content digest,
// computing and memoizing it on first call.
func (r *Reference) contentDigest() [sha256.Size]byte {
	r.digestOnce.Do(func() {
		h := sha256.New()
		var buf [64 << 10]byte
		for off := 0; off < len(r.seq); off += len(buf) {
			n := len(r.seq) - off
			if n > len(buf) {
				n = len(buf)
			}
			for i := 0; i < n; i++ {
				buf[i] = byte(r.seq[off+i])
			}
			h.Write(buf[:n])
		}
		copy(r.digest[:], h.Sum(nil))
	})
	return r.digest
}

// NewReference parses a nucleotide string.
func NewReference(seq string) (*Reference, error) {
	s, err := bio.ParseNucSeq(seq)
	if err != nil {
		return nil, err
	}
	return &Reference{seq: s}, nil
}

// NewReferenceIUPAC parses a nucleotide string that may contain IUPAC
// ambiguity codes (N, R, Y, ...), as downloaded NCBI data does. Ambiguous
// positions resolve deterministically to a member of their set; the count
// of resolved positions is returned so callers can reject low-quality
// input.
func NewReferenceIUPAC(seq string) (*Reference, int, error) {
	s, ambiguous, err := bio.ParseNucSeqIUPAC(seq)
	if err != nil {
		return nil, 0, err
	}
	return &Reference{seq: s}, ambiguous, nil
}

// ReadReferenceFasta concatenates every record of a FASTA stream into one
// reference and returns it along with the per-record offsets (record i
// starts at offsets[i]).
func ReadReferenceFasta(r io.Reader) (*Reference, []int, error) {
	fr := bio.NewFastaReader(r)
	recs, err := fr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("fabp: FASTA stream holds no records")
	}
	var seq bio.NucSeq
	offsets := make([]int, len(recs))
	for i, rec := range recs {
		offsets[i] = len(seq)
		s, err := rec.Nuc()
		if err != nil {
			return nil, nil, fmt.Errorf("fabp: record %s: %w", rec.ID, err)
		}
		seq = append(seq, s...)
	}
	return &Reference{seq: seq}, offsets, nil
}

// Len returns the reference length in nucleotides.
func (r *Reference) Len() int { return len(r.seq) }

// String renders the reference as RNA letters (use with care on large
// references).
func (r *Reference) String() string { return r.seq.String() }

// Kernel selects an alignment implementation. All kernels are bit-exact
// with each other and with the generated netlist; they differ only in
// speed and memory traffic.
type Kernel int

const (
	// KernelAuto picks per scan: the bit-parallel kernel for references
	// above ~64 knt, the scalar engine below. The default.
	KernelAuto Kernel = iota
	// KernelScalar always runs the scalar table-lookup engine.
	KernelScalar
	// KernelBitParallel always runs the SIMD-within-register kernel (the
	// algorithm of the paper's GPU implementation).
	KernelBitParallel
)

// String renders the kernel in the stringly form WithKernel accepts.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBitParallel:
		return "bitparallel"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ParseKernel converts the stringly kernel name ("auto", "scalar",
// "bitparallel") to the typed enum — the bridge from flags and config
// files to WithKernelType.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "bitparallel":
		return KernelBitParallel, nil
	}
	return 0, fmt.Errorf("fabp: unknown kernel %q (auto, scalar, bitparallel)", s)
}

// Aligner runs the FabP alignment on a prepared query. It is the bit-exact
// software model of the accelerator (proven equivalent to the generated
// netlist in the test suite) and safe for concurrent use once built.
type Aligner struct {
	query  *Query
	engine *core.Engine
	kernel *bitpar.Kernel
	mode   Kernel
	// pool executes database-scan shards; shared process-wide unless
	// WithParallelism built a private one.
	pool *sched.Pool
	// shardLen is the shard size in window starts (0 = sched default).
	shardLen int
	// metrics is where this aligner reports (DefaultMetrics unless
	// WithTelemetry supplied a private collector); tm holds the resolved
	// per-metric handles the scan paths write through.
	metrics *Metrics
	tm      alignerMetrics
	// retryPolicy bounds automatic re-execution of failed/straggling
	// shards (zero = single attempt); partial opts database scans into
	// degraded completion with a *PartialError. See resilience.go.
	retryPolicy RetryPolicy
	partial     bool
}

// AlignerOption customizes NewAligner.
type AlignerOption func(*alignerConfig)

type alignerConfig struct {
	threshold   int
	thresholdOK bool
	fraction    float64
	parallelism int
	kernel      Kernel
	shardLen    int
	metrics     *Metrics
	retryPolicy RetryPolicy
	partial     bool
	err         error
}

// WithThreshold sets the absolute hit threshold (0..MaxScore).
func WithThreshold(t int) AlignerOption {
	return func(c *alignerConfig) { c.threshold = t; c.thresholdOK = true }
}

// WithThresholdFraction sets the threshold as a fraction of MaxScore; the
// paper's experiments use 0.8-0.9. The fraction must lie in (0, 1] and the
// resulting threshold rounds to the nearest score (so 0.9 of a 10-element
// query is 9, not the truncated 8.999… → 8).
func WithThresholdFraction(f float64) AlignerOption {
	return func(c *alignerConfig) {
		if f <= 0 || f > 1 || f != f {
			c.err = badOptionf("fabp: threshold fraction %v outside (0,1]", f)
			return
		}
		c.thresholdOK = false
		c.fraction = f
	}
}

// WithParallelism bounds the worker goroutines, for both in-kernel
// fan-out and the database shard pool. Zero is the documented default
// (GOMAXPROCS on the shared process-wide pool); negative values are an
// error.
func WithParallelism(p int) AlignerOption {
	return func(c *alignerConfig) {
		if p < 0 {
			c.err = badOptionf("fabp: negative parallelism %d (0 = all cores)", p)
			return
		}
		c.parallelism = p
	}
}

// WithTelemetry directs the aligner's metrics to a private collector
// (see NewMetrics) instead of the process-wide DefaultMetrics. The shared
// shard pool and plane cache remain process-wide reporters; an aligner
// that also sets WithParallelism gets a private pool whose pool.* metrics
// follow the private collector.
func WithTelemetry(m *Metrics) AlignerOption {
	return func(c *alignerConfig) {
		if m == nil {
			c.err = badOptionf("fabp: nil Metrics (use NewMetrics or DefaultMetrics)")
			return
		}
		c.metrics = m
	}
}

// WithShardLen overrides the shard size, in window starts, used by
// database scans (0 = the scheduler default; rounded up to the 64-position
// block granularity).
func WithShardLen(n int) AlignerOption {
	return func(c *alignerConfig) {
		if n < 0 {
			c.err = badOptionf("fabp: negative shard length %d", n)
			return
		}
		c.shardLen = n
	}
}

// WithKernelType selects the alignment implementation by typed enum:
// KernelAuto (default), KernelScalar or KernelBitParallel. Out-of-range
// values are an error at NewAligner.
func WithKernelType(k Kernel) AlignerOption {
	return func(c *alignerConfig) {
		switch k {
		case KernelAuto, KernelScalar, KernelBitParallel:
			c.kernel = k
		default:
			c.err = badOptionf("fabp: unknown kernel %v", k)
		}
	}
}

// WithKernel selects the alignment implementation by name: "auto",
// "scalar" or "bitparallel". It is the stringly wrapper kept for
// compatibility and behaves exactly like ParseKernel + WithKernelType.
//
// Deprecated: use WithKernelType with the typed Kernel enum (ParseKernel
// converts flag and config-file values). WithKernel defers name
// validation to NewAligner and cannot distinguish a bad kernel name from
// other option errors at the call site.
func WithKernel(kernel string) AlignerOption {
	return func(c *alignerConfig) {
		k, err := ParseKernel(kernel)
		if err != nil {
			c.err = badOption(err)
			return
		}
		c.kernel = k
	}
}

// NewAligner builds an aligner for the query. Without options the
// threshold defaults to 80 % of the maximum score and telemetry reports
// to DefaultMetrics.
func NewAligner(q *Query, opts ...AlignerOption) (*Aligner, error) {
	cfg := alignerConfig{fraction: 0.8, kernel: KernelAuto, metrics: DefaultMetrics()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	threshold := cfg.threshold
	if !cfg.thresholdOK {
		t, err := core.ThresholdFromFraction(cfg.fraction, q.MaxScore())
		if err != nil {
			return nil, badOption(err)
		}
		threshold = t
	}
	engine, err := core.NewEngine(q.program, threshold)
	if err != nil {
		return nil, badOption(err)
	}
	kernel, err := bitpar.NewKernel(q.program, threshold)
	if err != nil {
		return nil, badOption(err)
	}
	pool := sched.Shared()
	if cfg.parallelism > 0 {
		engine.SetParallelism(cfg.parallelism)
		kernel.SetParallelism(cfg.parallelism)
		pool = sched.NewPool(cfg.parallelism)
		pool.SetMetrics(cfg.metrics.reg)
	}
	return &Aligner{
		query: q, engine: engine, kernel: kernel, mode: cfg.kernel,
		pool: pool, shardLen: cfg.shardLen,
		metrics: cfg.metrics, tm: newAlignerMetrics(cfg.metrics.reg),
		retryPolicy: cfg.retryPolicy, partial: cfg.partial,
	}, nil
}

// Metrics returns the collector this aligner reports to (DefaultMetrics
// unless WithTelemetry supplied a private one).
func (a *Aligner) Metrics() *Metrics { return a.metrics }

// bitParThresholdLen is the reference size above which "auto" switches to
// the bit-parallel kernel.
const bitParThresholdLen = 64 << 10

// useBitpar decides the implementation for a reference length.
func (a *Aligner) useBitpar(refLen int) bool {
	switch a.mode {
	case KernelBitParallel:
		return true
	case KernelScalar:
		return false
	}
	return refLen >= bitParThresholdLen
}

// Kernel returns the configured kernel selection.
func (a *Aligner) Kernel() Kernel { return a.mode }

// Threshold returns the configured hit threshold.
func (a *Aligner) Threshold() int { return a.engine.Threshold() }

// alignSeq dispatches to the selected kernel and normalizes the hit type.
func (a *Aligner) alignSeq(seq bio.NucSeq) []core.Hit {
	a.tm.kernelChosen(a.useBitpar(len(seq)))
	if a.useBitpar(len(seq)) {
		raw := a.kernel.Align(seq)
		hits := make([]core.Hit, len(raw))
		for i, h := range raw {
			hits[i] = core.Hit{Pos: h.Pos, Score: h.Score}
		}
		return hits
	}
	return a.engine.Align(seq)
}

// Align scans the reference and returns every hit in position order. It
// is AlignContext under context.Background() — uncancellable, never errs.
func (a *Aligner) Align(ref *Reference) []Hit {
	hits, _ := a.AlignContext(context.Background(), ref)
	return hits
}

// AlignContext scans the reference under a context and returns every hit
// in position order. Cancellation and deadlines are honored at shard
// boundaries: a cancelable context routes the scan through the shard
// scheduler (checkpoints between shards, running shards finish), so the
// call returns ctx.Err() within one shard of the cancel and records the
// abort on align.canceled / align.deadline.exceeded. A context that can
// never be canceled (context.Background, context.TODO) takes the
// single-pass kernel, identical to the historical Align path.
//
// When the scan-result cache is enabled (SetScanCacheCapacity), the call
// shares the cache- and singleflight-aware spine with Scan: repeats are
// answered from memory and concurrent identical scans collapse into one.
func (a *Aligner) AlignContext(ctx context.Context, ref *Reference) ([]Hit, error) {
	res, _, err := a.cachedReferenceScan(ctx, ref)
	if res == nil {
		return nil, err
	}
	return res.Hits, err
}

// executeReferenceScan is the uncached reference scan — the historical
// AlignContext body, producing a *ScanResult. Every telemetry update
// lives here, so cached and collapsed calls observably run zero scans.
func (a *Aligner) executeReferenceScan(ctx context.Context, ref *Reference) (*ScanResult, error) {
	a.tm.queries.Inc()
	t0 := time.Now()
	defer func() { observeSince(a.tm.alignLatency, t0) }()
	if err := ctx.Err(); err != nil {
		a.tm.recordCtxErr(err)
		return nil, err
	}
	var raw []core.Hit
	var perr error
	if ctx.Done() == nil && !a.resilientScans() {
		raw = a.alignSeq(ref.seq)
	} else {
		// Cancelable contexts — and any scan under a retry policy, partial
		// mode or fault injection — go through the shard scheduler so the
		// checkpoints and resilience hooks apply.
		scan, starts := a.referenceScan(ref)
		if scan != nil {
			var err error
			raw, err = a.scanShardsCtx(ctx, starts, scan)
			if err != nil {
				var pe *PartialError
				if !errors.As(err, &pe) {
					a.tm.recordCtxErr(err)
					return nil, err
				}
				perr = err // degraded completion: surviving hits + *PartialError
			}
		}
	}
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{Pos: h.Pos, Score: h.Score}
	}
	a.tm.hits.Add(uint64(len(hits)))
	return a.newScanResult(hits, nil, perr), perr
}

// AlignStream scans a nucleotide stream of arbitrary size (raw letters,
// whitespace tolerated) in bounded memory, carrying windows across chunk
// boundaries, and delivers hits to emit in position order. Return an error
// from emit to stop early.
//
// The scan honors the configured kernel: "scalar" runs the engine's
// chunked reader, "bitparallel" packs each chunk into bit-planes and runs
// the SIMD-within-register kernel, and "auto" picks the bit-parallel
// kernel (a stream's length is unknown up front, and streams are
// typically large). All modes produce identical hits.
func (a *Aligner) AlignStream(r io.Reader, emit func(Hit) error) error {
	return a.AlignStreamContext(context.Background(), r, emit)
}

// AlignStreamContext is AlignStream with cooperative cancellation: the
// context is checked before every chunk read, so a slow or unbounded
// reader cannot pin the scan past its deadline — the call returns
// ctx.Err() at the next chunk boundary (a Read already blocked in the
// reader is not interrupted; wrap the reader if its source needs
// unblocking). Aborts are recorded on align.canceled /
// align.deadline.exceeded.
func (a *Aligner) AlignStreamContext(ctx context.Context, r io.Reader, emit func(Hit) error) error {
	a.tm.queries.Inc()
	t0 := time.Now()
	defer func() { observeSince(a.tm.alignLatency, t0) }()
	var err error
	if a.mode == KernelScalar {
		a.tm.kernelChosen(false)
		err = a.engine.AlignReaderContext(ctx, r, func(h core.Hit) error {
			a.tm.hits.Inc()
			return emit(Hit{Pos: h.Pos, Score: h.Score})
		})
	} else {
		a.tm.kernelChosen(true)
		m := a.query.Elements()
		err = scanChunks(ctx, r, m, m, &a.tm, a.retryPolicy, func(pp *bitpar.Planes, lo, hi, base int) error {
			hits, herr := a.streamChunkHits(ctx, pp, lo, hi)
			if herr != nil {
				return herr
			}
			for _, h := range hits {
				a.tm.hits.Inc()
				if err := emit(Hit{Pos: base + h.Pos, Score: h.Score}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err != nil {
		a.tm.recordCtxErr(err)
	}
	return err
}

// EValueOf returns the expected number of random windows reaching score in
// a refLen-nucleotide scan, from the exact null score distribution — the
// significance annotation for a reported hit.
func (a *Aligner) EValueOf(score, refLen int) float64 {
	return a.engine.EValue(score, refLen)
}

// Best returns the single highest-scoring position regardless of the
// threshold (ok=false when the reference is shorter than the query). It
// dispatches through the same kernel rule as Align — the bit-parallel
// best-hit scan under WithKernelType(KernelBitParallel) or a large "auto"
// reference, the scalar engine otherwise — and is instrumented like every
// other scan (align.queries.started, align.latency, kernel counters).
func (a *Aligner) Best(ref *Reference) (Hit, bool) {
	a.tm.queries.Inc()
	t0 := time.Now()
	defer func() { observeSince(a.tm.alignLatency, t0) }()
	a.tm.kernelChosen(a.useBitpar(ref.Len()))
	if a.useBitpar(ref.Len()) {
		h, ok := a.kernel.BestHit(ref.seq)
		return Hit{Pos: h.Pos, Score: h.Score}, ok
	}
	h, ok := a.engine.BestHit(ref.seq)
	return Hit{Pos: h.Pos, Score: h.Score}, ok
}

// ScoreAt returns the alignment score at one reference position,
// instrumented like a (single-window) scan.
func (a *Aligner) ScoreAt(ref *Reference, pos int) (int, error) {
	if pos < 0 || pos+a.query.Elements() > ref.Len() {
		return 0, fmt.Errorf("fabp: position %d out of range for window of %d elements", pos, a.query.Elements())
	}
	a.tm.queries.Inc()
	t0 := time.Now()
	score := a.engine.Score(ref.seq, pos)
	observeSince(a.tm.alignLatency, t0)
	return score, nil
}

// ExperimentNames lists the reproducible tables/figures for RunExperiment.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's tables or figures (see
// ExperimentNames: "fig6a", "fig6b", "table1", "accuracy", ...) and
// returns it rendered as text.
func RunExperiment(name string) (string, error) {
	t, err := experiments.Run(name)
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// RunAllExperiments renders every registered experiment, separated by
// blank lines, in name order.
func RunAllExperiments() (string, error) {
	var b strings.Builder
	for _, name := range ExperimentNames() {
		t, err := experiments.Run(name)
		if err != nil {
			return "", fmt.Errorf("fabp: experiment %s: %w", name, err)
		}
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
