package fabp

import (
	"fmt"
	"math/rand"

	"fabp/internal/bio"
)

// PlantedGene records where a known protein was embedded in a synthetic
// reference.
type PlantedGene struct {
	// Protein is the planted product in one-letter codes.
	Protein string
	// Pos is the nucleotide offset of its first codon.
	Pos int
}

// SyntheticReference builds a deterministic random reference of the given
// nucleotide length with numGenes coding regions of geneLen residues
// planted at non-overlapping positions (codon choice follows human codon
// usage). It reproduces the paper's evaluation workload shape: random
// background with recoverable true positives.
func SyntheticReference(seed int64, length, numGenes, geneLen int) (*Reference, []PlantedGene) {
	rng := rand.New(rand.NewSource(seed))
	seq, genes := bio.SyntheticReference(rng, length, numGenes, geneLen)
	out := make([]PlantedGene, len(genes))
	for i, g := range genes {
		out[i] = PlantedGene{Protein: g.Protein.String(), Pos: g.Pos}
	}
	return &Reference{seq: seq}, out
}

// MutateProtein derives a diverged copy of a protein under the paper's
// mutation statistics: subRate per-residue substitutions and indelPerKB
// indel events per kilobase of coding sequence (the cited empirical mean is
// 0.09). It reports whether any indel occurred — the §IV-A incidence
// statistic.
func MutateProtein(seed int64, protein string, subRate, indelPerKB float64) (string, bool, error) {
	p, err := bio.ParseProtSeq(protein)
	if err != nil {
		return "", false, err
	}
	m := bio.MutationModel{SubstitutionRate: subRate, IndelRatePerKB: indelPerKB, MaxIndelLen: 3}
	rng := rand.New(rand.NewSource(seed))
	out, stats := m.Mutate(rng, p)
	return out.String(), stats.HasIndel(), nil
}

// RandomProtein samples a protein of n residues from the coding-region
// amino-acid composition (never Stop), deterministically in the seed.
func RandomProtein(seed int64, n int) (string, error) {
	if n <= 0 {
		return "", fmt.Errorf("fabp: protein length must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	return bio.RandomProtSeq(rng, n).String(), nil
}

// ORF is an open reading frame found in a reference.
type ORF struct {
	// Start/End delimit the forward-strand window (half-open, including
	// the stop codon).
	Start, End int
	// Reverse marks reverse-complement-strand ORFs.
	Reverse bool
	// Protein is the translation in one-letter codes (stop excluded).
	Protein string
}

// FindORFs locates every AUG..stop open reading frame of at least
// minResidues coding residues in all six frames of the reference — the
// candidate coding regions a FabP deployment screens queries against.
func FindORFs(ref *Reference, minResidues int) []ORF {
	raw := bio.FindORFs(ref.seq, minResidues)
	out := make([]ORF, len(raw))
	for i, o := range raw {
		out[i] = ORF{
			Start: o.Start, End: o.End,
			Reverse: o.Reverse,
			Protein: o.Protein.String(),
		}
	}
	return out
}

// BackTranslationTable renders the full amino-acid → degenerate-template →
// instruction mapping (the reproduction of the paper's Fig. 2 and §III-B
// encodings).
func BackTranslationTable() string {
	s, err := RunExperiment("encoding")
	if err != nil {
		return ""
	}
	return s
}
