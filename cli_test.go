package fabp_test

// Smoke tests for the command-line tools: build each binary once and drive
// its primary flows end-to-end through real files.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fabp"
)

// buildCLIs compiles every cmd/ binary into a shared temp dir once per
// test binary invocation.
var cliDir string

func buildCLI(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short")
	}
	if cliDir == "" {
		cliDir = t.TempDir()
	}
	bin := filepath.Join(cliDir, name)
	if _, err := os.Stat(bin); err == nil {
		return bin
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLITranslate(t *testing.T) {
	bin := buildCLI(t, "fabp-translate")
	out := run(t, bin, "MFSR*")
	for _, want := range []string{"AUG-UU(U/C)-UCD", "Type III", "15 x 6-bit"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	table := run(t, bin, "-table")
	if !strings.Contains(table, "Leu (L)") {
		t.Error("table output wrong")
	}
}

func TestCLIDBRoundTrip(t *testing.T) {
	bin := buildCLI(t, "fabp-db")
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "demo.fabp")

	out := run(t, bin, "demo", "-out", dbPath)
	if !strings.Contains(out, "-query ") {
		t.Fatalf("demo output: %s", out)
	}
	query := strings.TrimSpace(strings.Split(strings.Split(out, "-query ")[1], "\n")[0])

	info := run(t, bin, "info", "-db", dbPath)
	if !strings.Contains(info, "100000 nt") {
		t.Errorf("info output: %s", info)
	}
	search := run(t, bin, "search", "-db", dbPath, "-query", query)
	if !strings.Contains(search, "score") {
		t.Errorf("search output: %s", search)
	}

	// build from FASTA.
	fasta := filepath.Join(dir, "ref.fasta")
	if err := os.WriteFile(fasta, []byte(">r1\nACGTACGTACGTACGT\n>r2\nGGGGCCCC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	built := filepath.Join(dir, "built.fabp")
	out = run(t, bin, "build", "-in", fasta, "-out", built)
	if !strings.Contains(out, "2 records") {
		t.Errorf("build output: %s", out)
	}
}

// TestCLIDBVerifyCorruption drives the v2 integrity surface end-to-end:
// build → verify → align round-trip, then two kinds of damage — a clipped
// plane section (graceful degrade, exit 0) and a payload flip (hard
// failure, exit 1).
func TestCLIDBVerifyCorruption(t *testing.T) {
	dbBin := buildCLI(t, "fabp-db")
	alignBin := buildCLI(t, "fabp-align")
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "demo.fabp")

	out := run(t, dbBin, "demo", "-out", dbPath)
	query := strings.TrimSpace(strings.Split(strings.Split(out, "-query ")[1], "\n")[0])

	// verify + inspect on the intact file.
	v := run(t, dbBin, "verify", "-db", dbPath)
	if !strings.Contains(v, ": OK — v2") {
		t.Errorf("verify: %s", v)
	}
	var info struct {
		Version   int    `json:"version"`
		Digest    string `json:"digest"`
		HasPlanes bool   `json:"has_planes"`
	}
	if err := json.Unmarshal([]byte(run(t, dbBin, "inspect", "-db", dbPath, "-json")), &info); err != nil {
		t.Fatalf("inspect -json: %v", err)
	}
	if info.Version != 2 || !info.HasPlanes || len(info.Digest) != 64 {
		t.Errorf("inspect = %+v", info)
	}

	// Round-trip through fabp-align -db: a warm start should find the
	// planted gene.
	qFasta := filepath.Join(dir, "q.fasta")
	if err := os.WriteFile(qFasta, []byte(">planted\n"+query+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	aOut := run(t, alignBin, "-query", qFasta, "-db", dbPath, "-threshold-frac", "0.85")
	if !strings.Contains(aOut, "database: ") || strings.Contains(aOut, ": 0 hits") {
		t.Errorf("align -db: %s", aOut)
	}

	good, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}

	// Clip the plane section tail: still loadable, verify reports degraded.
	clipped := filepath.Join(dir, "clipped.fabp")
	if err := os.WriteFile(clipped, good[:len(good)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	v = run(t, dbBin, "verify", "-db", clipped)
	if !strings.Contains(v, "OK (degraded)") || !strings.Contains(v, "plane section rejected") {
		t.Errorf("verify clipped: %s", v)
	}
	// The degraded file still answers queries (falls back to packing).
	aOut = run(t, alignBin, "-query", qFasta, "-db", clipped, "-threshold-frac", "0.85")
	if strings.Contains(aOut, ": 0 hits") {
		t.Errorf("align degraded db found nothing: %s", aOut)
	}

	// Flip a payload byte: verify must fail with a corruption message.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	badPath := filepath.Join(dir, "bad.fabp")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	cOut, cErr := exec.Command(dbBin, "verify", "-db", badPath).CombinedOutput()
	if cErr == nil {
		t.Errorf("verify accepted a corrupted payload:\n%s", cOut)
	}
	if !strings.Contains(string(cOut), "payload section") {
		t.Errorf("verify error does not name the damaged section:\n%s", cOut)
	}
}

func TestCLIRTL(t *testing.T) {
	bin := buildCLI(t, "fabp-rtl")
	dir := t.TempDir()
	mod := filepath.Join(dir, "m.v")
	tb := filepath.Join(dir, "tb.v")
	prim := filepath.Join(dir, "prim.v")
	dot := filepath.Join(dir, "g.dot")
	run(t, bin, "-residues", "2", "-beat", "4",
		"-o", mod, "-tb", tb, "-primlib", prim, "-dot", dot)
	for path, want := range map[string]string{
		mod:  "module fabp_q6_b4",
		tb:   "TESTBENCH PASS",
		prim: "module LUT6",
		dot:  "digraph",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(string(data), want) {
			t.Errorf("%s missing %q", path, want)
		}
	}
	report := run(t, bin, "-residues", "50", "-report-only")
	if !strings.Contains(report, "bandwidth-bound") || !strings.Contains(report, "Fmax") {
		t.Errorf("report: %s", report)
	}
}

func TestCLIAlignDemo(t *testing.T) {
	bin := buildCLI(t, "fabp-align")
	out := run(t, bin, "-demo", "-auto-threshold", "-top", "2")
	for _, want := range []string{"planted gene 0", "E=", "hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in demo output", want)
		}
	}
}

// TestCLIAlignMetrics checks the -metrics dump: valid JSON whose counters
// reconcile — shards run == shards planned, and the plane cache saw exactly
// the lookups the scans issued.
func TestCLIAlignMetrics(t *testing.T) {
	bin := buildCLI(t, "fabp-align")
	out := run(t, bin, "-demo", "-metrics")
	_, jsonPart, found := strings.Cut(out, "=== metrics\n")
	if !found {
		t.Fatalf("no metrics section in output:\n%s", out)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(jsonPart), &snap); err != nil {
		t.Fatalf("metrics are not valid JSON: %v\n%s", err, jsonPart)
	}
	c := snap.Counters
	if c["align.queries.started"] == 0 {
		t.Error("no queries recorded")
	}
	if c["scan.shards.run"] != c["scan.shards.planned"] || c["scan.shards.run"] == 0 {
		t.Errorf("shards run %d != planned %d", c["scan.shards.run"], c["scan.shards.planned"])
	}
	if got := c["cache.hits"] + c["cache.misses"]; got != c["scan.plane.lookups"] {
		t.Errorf("cache lookups %d != plane lookups %d", got, c["scan.plane.lookups"])
	}
	if c["cache.hits"] == 0 {
		t.Error("demo queries share one database; expected plane-cache hits")
	}
}

// TestCLIBenchPerf checks the bench-trajectory point: a BENCH_<date>.json
// with throughput numbers and the telemetry-derived cache hit rate.
func TestCLIBenchPerf(t *testing.T) {
	bin := buildCLI(t, "fabp-bench")
	dir := t.TempDir()
	out := run(t, bin, "-perf", "-perf-out", dir)
	if !strings.Contains(out, "ns/op") || !strings.Contains(out, "cache hit rate") {
		t.Errorf("perf output: %s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("bench report files %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Date         string  `json:"date"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		Runs         []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
			Hits    int     `json:"hits"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Date == "" || len(report.Runs) < 2 {
		t.Fatalf("report incomplete: %+v", report)
	}
	for _, r := range report.Runs {
		// Scan configs must find the planted genes; the load_* configs
		// time database loads and emit no hits by design.
		wantHits := !strings.HasPrefix(r.Name, "load_")
		if r.NsPerOp <= 0 || (wantHits && r.Hits == 0) {
			t.Errorf("run %s: ns/op %v hits %d", r.Name, r.NsPerOp, r.Hits)
		}
	}
	if report.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %v, want > 0 (planes reused across queries)", report.CacheHitRate)
	}
}

// TestCLIServeSmoke drives fabp-serve as a real process: preload a FASTA,
// answer /healthz and one /align query over HTTP, then exit cleanly on
// SIGTERM after draining.
func TestCLIServeSmoke(t *testing.T) {
	bin := buildCLI(t, "fabp-serve")
	dir := t.TempDir()

	ref, genes := fabp.SyntheticReference(31, 20_000, 2, 30)
	fasta := filepath.Join(dir, "ref.fasta")
	if err := os.WriteFile(fasta, []byte(">synt\n"+ref.String()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-ref", fasta, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // backstop; the SIGTERM path below is the real exit

	// The server logs its bound address once the listener is up. logDone
	// closes once the scanner drains the pipe; readers of logTail after
	// process exit must wait on it, or they race the final log lines.
	var logTail bytes.Buffer
	addrCh := make(chan string, 1)
	logDone := make(chan struct{})
	go func() {
		defer close(logDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logTail.WriteString(line + "\n")
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatalf("server never reported its address:\n%s", logTail.String())
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status   string `json:"status"`
		LengthNt int    `json:"length_nt"`
	}
	err = json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if err != nil || health.Status != "ok" || health.LengthNt != 20_000 {
		t.Fatalf("healthz = %+v (%v)", health, err)
	}

	reqBody := []byte(`{"query":"` + genes[0].Protein + `"}`)
	resp, err := http.Post(base+"/align", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	var res struct {
		Hits []struct {
			Score int `json:"score"`
		} `json:"hits"`
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(res.Hits) == 0 {
		t.Fatalf("align status %d, hits %d (%v)", resp.StatusCode, len(res.Hits), err)
	}

	// Graceful shutdown: SIGTERM drains and exits 0. Drain stderr to EOF
	// before reaping: Wait closes the pipe, and closing it mid-read can
	// drop the final log lines the assertions below depend on.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-logDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("stderr never reached EOF after SIGTERM:\n%s", logTail.String())
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fabp-serve exited %v after SIGTERM:\n%s", err, logTail.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("fabp-serve did not exit after SIGTERM:\n%s", logTail.String())
	}
	if !strings.Contains(logTail.String(), "drained; bye") {
		t.Errorf("missing drain farewell in log:\n%s", logTail.String())
	}
}

func TestCLIBench(t *testing.T) {
	bin := buildCLI(t, "fabp-bench")
	list := run(t, bin, "-list")
	if !strings.Contains(list, "table1") || !strings.Contains(list, "fig6a") {
		t.Errorf("list: %s", list)
	}
	out := run(t, bin, "-exp", "encoding", "-format", "csv")
	if !strings.Contains(out, "amino acid,codons") {
		t.Errorf("csv experiment output: %s", out)
	}
}
