package fabp

import (
	"fmt"
	"sort"

	"fabp/internal/bio"
	"fabp/internal/swalign"
)

// VerifiedHit is a FabP hit re-examined by Smith-Waterman: the window's
// translation aligned against the query protein with full gap support —
// the host-side verification stage that upgrades FabP from a filter to a
// complete search pipeline (heuristic prefilter + exact DP, the same
// two-stage shape BLAST uses).
type VerifiedHit struct {
	// Pos and Score are the raw FabP hit.
	Pos, Score int
	// SWScore is the gapped BLOSUM62 local score of the translated window
	// against the query.
	SWScore int
	// Identity is the residue identity of that alignment.
	Identity float64
	// Pretty is the rendered alignment (query vs translated window).
	Pretty string
}

// VerifyOptions tunes AlignVerified.
type VerifyOptions struct {
	// MaxHits bounds how many FabP hits are verified (best-scoring first;
	// 0 = all).
	MaxHits int
	// ContextResidues widens the translated window on each side so gapped
	// alignments can extend past the seed (default 10).
	ContextResidues int
	// MinSWScore drops verified hits scoring below it (0 keeps all).
	MinSWScore int
}

// AlignVerified scans the reference with the FabP engine and verifies each
// hit with gapped Smith-Waterman on the translated window, returning
// verified hits ordered by SW score.
func (a *Aligner) AlignVerified(ref *Reference, opts VerifyOptions) ([]VerifiedHit, error) {
	if opts.ContextResidues == 0 {
		opts.ContextResidues = 10
	}
	raw := a.alignSeq(ref.seq)
	if opts.MaxHits > 0 && len(raw) > opts.MaxHits {
		// Keep the best-scoring hits.
		sort.Slice(raw, func(i, j int) bool { return raw[i].Score > raw[j].Score })
		raw = raw[:opts.MaxHits]
	}
	scoring := swalign.DefaultScoring()
	out := make([]VerifiedHit, 0, len(raw))
	for _, h := range raw {
		lo := h.Pos - 3*opts.ContextResidues
		if lo < 0 {
			lo = 0
		}
		// Keep the window in the hit's codon frame so the translation
		// lines up with the query's residues.
		lo += (h.Pos - lo) % 3
		hi := h.Pos + a.query.Elements() + 3*opts.ContextResidues
		if hi > ref.Len() {
			hi = ref.Len()
		}
		window := ref.seq[lo:hi]
		subject := window.Translate(0)
		if len(subject) == 0 {
			continue
		}
		r := swalign.Align(a.query.protein, subject, scoring)
		if r.Score < opts.MinSWScore {
			continue
		}
		out = append(out, VerifiedHit{
			Pos:      h.Pos,
			Score:    h.Score,
			SWScore:  r.Score,
			Identity: r.Identity(a.query.protein, subject),
			Pretty:   swalign.FormatAlignment(a.query.protein, subject, r, scoring, 60),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SWScore != out[j].SWScore {
			return out[i].SWScore > out[j].SWScore
		}
		return out[i].Pos < out[j].Pos
	})
	return out, nil
}

// TranslateWindow translates the reference window starting at pos (frame
// of pos) covering the query's footprint — the subject protein a verified
// hit aligns against.
func (a *Aligner) TranslateWindow(ref *Reference, pos int) (string, error) {
	if pos < 0 || pos+a.query.Elements() > ref.Len() {
		return "", fmt.Errorf("fabp: window out of range")
	}
	return bio.NucSeq(ref.seq[pos : pos+a.query.Elements()]).Translate(0).String(), nil
}
