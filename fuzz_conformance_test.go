package fabp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/core"
)

// mustConformAligner builds an aligner or fails the test.
func mustConformAligner(t *testing.T, q *Query, opts ...AlignerOption) *Aligner {
	t.Helper()
	a, err := NewAligner(q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func assertHitsEqual(t *testing.T, label string, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// checkAlignConformance is the differential oracle: the scalar whole-
// reference scan defines the truth, and every other execution strategy —
// bit-parallel kernel, sharded database scans under both kernels, and the
// chunked stream scan at chunk sizes straddling the L_q-element carry
// boundary — must reproduce it hit for hit, in order.
func checkAlignConformance(t *testing.T, protein, refStr string, thr int) {
	t.Helper()
	q, err := NewQuery(protein)
	if err != nil {
		t.Skip(err) // fuzzer found an invalid protein; not a conformance bug
	}
	ref, err := NewReference(refStr)
	if err != nil {
		t.Skip(err)
	}
	if ref.Len() < q.Elements() {
		t.Skip("reference shorter than query")
	}

	scalar := mustConformAligner(t, q, WithKernelType(KernelScalar), WithThreshold(thr))
	want := scalar.Align(ref)

	bitp := mustConformAligner(t, q, WithKernelType(KernelBitParallel), WithThreshold(thr))
	assertHitsEqual(t, "bitparallel Align", want, bitp.Align(ref))

	// Sharded database scans: small shards so even short references tile
	// into several, under both kernels and bounded parallelism.
	dbase, err := DatabaseFromReference("conf", ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelScalar, KernelBitParallel} {
		a := mustConformAligner(t, q, WithKernelType(kernel), WithThreshold(thr),
			WithShardLen(64), WithParallelism(2))
		rh := a.AlignDatabase(dbase)
		got := make([]Hit, len(rh))
		for i, h := range rh {
			got[i] = Hit{Pos: h.Offset, Score: h.Score}
		}
		assertHitsEqual(t, "sharded AlignDatabase/"+kernel.String(), want, got)
	}

	// Chunked stream scans. scanChunks clamps the chunk to at least m+2
	// letters, so m+2 is the smallest (carry-heaviest) chunking; the last
	// value is large enough that no carry happens at all.
	m := q.Elements()
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	for _, chunk := range []int{m + 2, m + 3, 2*m + 1, 5*m + 7, len(refStr) + 1} {
		streamChunkLetters = chunk
		for _, kernel := range []Kernel{KernelScalar, KernelBitParallel} {
			a := mustConformAligner(t, q, WithKernelType(kernel), WithThreshold(thr))
			var got []Hit
			err := a.AlignStream(strings.NewReader(refStr), func(h Hit) error {
				got = append(got, h)
				return nil
			})
			if err != nil {
				t.Fatalf("chunk %d AlignStream/%s: %v", chunk, kernel, err)
			}
			assertHitsEqual(t, "chunked AlignStream/"+kernel.String(), want, got)
		}
	}
}

// checkBatchConformance is the batch arm of the differential oracle: the
// scalar batch engine defines the truth, and the fused batch kernel —
// whole-scan and under shard sizes straddling the longest query's carry
// overlap — plus the per-query bit-parallel tiling must reproduce it per
// query, hit for hit, in order. Queries deliberately mix lengths so the
// fused scan's per-query window clamping is exercised.
func checkBatchConformance(t *testing.T, proteins []string, refStr string, frac float64) {
	t.Helper()
	queries := make([]*Query, 0, len(proteins))
	maxElems := 0
	for _, p := range proteins {
		q, err := NewQuery(p)
		if err != nil {
			t.Skip(err) // fuzzer found an invalid protein; not a conformance bug
		}
		queries = append(queries, q)
		if q.Elements() > maxElems {
			maxElems = q.Elements()
		}
	}
	ref, err := NewReference(refStr)
	if err != nil {
		t.Skip(err)
	}
	progs, thresholds, err := batchKernelInputs(queries, frac)
	if err != nil {
		t.Fatal(err)
	}

	// Scalar truth: one batch engine over the whole reference.
	oracle, err := core.NewBatchUniform(progs, frac)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Hit, len(queries))
	for i, hits := range oracle.Align(ref.seq) {
		want[i] = make([]Hit, len(hits))
		for j, h := range hits {
			want[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
	}

	assertBatch := func(label string, got [][]Hit) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d queries, want %d", label, len(got), len(want))
		}
		for qi := range want {
			assertHitsEqual(t, fmt.Sprintf("%s query %d", label, qi), want[qi], got[qi])
		}
	}

	// The per-query bit-parallel tiling (the pre-fusion baseline).
	perQuery, err := alignBatchBitpar(queries, ref, frac)
	if err != nil {
		t.Fatal(err)
	}
	assertBatch("per-query bitpar", perQuery)

	// The routed per-query path (scalar below the crossover).
	routed, err := AlignBatchPerQuery(queries, ref, frac)
	if err != nil {
		t.Fatal(err)
	}
	assertBatch("AlignBatchPerQuery", routed)

	// The fused batch kernel: whole scan, then shard sizes straddling the
	// longest query's carry overlap (64 is the smallest legal tile; the
	// aligned sizes around maxElems force shards whose overlap reads cross
	// into the next shard's block).
	planes := planesForReference(ref)
	shardLens := []int{0, 64, 128, (maxElems + 63) &^ 63, (maxElems + 127) &^ 63}
	for _, shardLen := range shardLens {
		raw, err := alignBatchFused(context.Background(), progs, thresholds, planes, shardLen)
		if err != nil {
			t.Fatal(err)
		}
		assertBatch(fmt.Sprintf("fused shardLen=%d", shardLen), bitparBatchToHits(raw))
	}

	// The fused batch STREAMING path: one pooled pack per chunk shared by
	// every query, across chunk sizes straddling the longest query's carry
	// (maxElems+2 is the clamp floor, the last runs carry-free) — streamed
	// hits must be byte-identical to the scalar truth per query.
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	for _, chunk := range []int{maxElems + 2, 2*maxElems + 1, len(refStr) + 1} {
		streamChunkLetters = chunk
		got := make([][]Hit, len(queries))
		err := AlignBatchStream(queries, strings.NewReader(refStr), frac, func(qi int, h Hit) error {
			got[qi] = append(got[qi], h)
			return nil
		})
		if err != nil {
			t.Fatalf("chunk %d AlignBatchStream: %v", chunk, err)
		}
		assertBatch(fmt.Sprintf("batch stream chunk=%d", chunk), got)
	}
}

// conformanceCase derives a bounded random workload from fuzz inputs.
func conformanceCase(protSeed, refSeed int64, protLen uint8, refLen uint16, thrPct uint8) (protein, ref string, thr int) {
	n := 2 + int(protLen)%19 // 2..20 residues
	prot := bio.RandomProtSeq(rand.New(rand.NewSource(protSeed)), n)
	m := 3 * n
	nuc := bio.RandomNucSeq(rand.New(rand.NewSource(refSeed)), m+int(refLen)%4096)
	// Threshold between 20% and 60% of max score: low enough that random
	// references produce hits, high enough that they stay sparse.
	thr = m * (2 + int(thrPct)%5) / 10
	if thr < 1 {
		thr = 1
	}
	return prot.String(), nuc.String(), thr
}

// batchConformanceCase derives a mixed-length batch workload from fuzz
// inputs: three proteins of staggered lengths over one reference, plus a
// shared threshold fraction. Low fractions widen the mismatch budget past
// four counter planes, exercising the fused kernel's generic spill arm as
// well as the register-resident ones.
func batchConformanceCase(protSeed, refSeed int64, protLen uint8, refLen uint16, thrPct uint8) (proteins []string, ref string, frac float64) {
	rng := rand.New(rand.NewSource(protSeed))
	for k := 0; k < 3; k++ {
		n := 2 + (int(protLen)+5*k)%19 // 2..20 residues, staggered per query
		proteins = append(proteins, bio.RandomProtSeq(rng, n).String())
	}
	nuc := bio.RandomNucSeq(rand.New(rand.NewSource(refSeed)), 60+int(refLen)%4096)
	frac = float64(5+int(thrPct)%5) / 10 // 0.5..0.9
	return proteins, nuc.String(), frac
}

// FuzzAlignConformance fuzzes the differential oracle; run with
//
//	go test -fuzz FuzzAlignConformance .
func FuzzAlignConformance(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(6), uint16(900), uint8(0))
	f.Add(int64(3), int64(4), uint8(2), uint16(64), uint8(1))
	f.Add(int64(5), int64(6), uint8(20), uint16(4000), uint8(2))
	f.Add(int64(7), int64(8), uint8(11), uint16(130), uint8(4))
	f.Fuzz(func(t *testing.T, protSeed, refSeed int64, protLen uint8, refLen uint16, thrPct uint8) {
		protein, ref, thr := conformanceCase(protSeed, refSeed, protLen, refLen, thrPct)
		checkAlignConformance(t, protein, ref, thr)
		proteins, bref, frac := batchConformanceCase(protSeed, refSeed, protLen, refLen, thrPct)
		checkBatchConformance(t, proteins, bref, frac)
	})
}

// TestAlignConformanceRandomTrials runs the same oracle over random trials
// in a plain `go test`, plus planted-gene workloads whose hits are real
// homologies rather than chance threshold crossings.
func TestAlignConformanceRandomTrials(t *testing.T) {
	for trial := int64(0); trial < 12; trial++ {
		protein, ref, thr := conformanceCase(trial, trial+100, uint8(3*trial), uint16(211*trial), uint8(trial))
		checkAlignConformance(t, protein, ref, thr)
	}

	ref, genes := SyntheticReference(77, 30_000, 4, 25)
	refStr := ref.String()
	for i, g := range genes {
		mut, _, err := MutateProtein(int64(i), g.Protein, 0.05, 0)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuery(mut)
		if err != nil {
			t.Fatal(err)
		}
		checkAlignConformance(t, mut, refStr, q.MaxScore()*4/5)
	}

	// The batch arm over random mixed-length workloads, then the planted
	// genes as one batch whose hits are real homologies.
	for trial := int64(0); trial < 8; trial++ {
		proteins, bref, frac := batchConformanceCase(trial, trial+200, uint8(5*trial), uint16(301*trial), uint8(trial))
		checkBatchConformance(t, proteins, bref, frac)
	}
	var planted []string
	for _, g := range genes {
		planted = append(planted, g.Protein)
	}
	checkBatchConformance(t, planted, refStr, 0.8)
}
