package fabp

// End-to-end integration scenarios exercising several subsystems together,
// the way a downstream adopter would chain them.

import (
	"bytes"
	"strings"
	"testing"
)

// TestIntegrationFullPipeline walks the complete deployment flow: FASTA →
// packed database → save/load → card session → batch queries → verified
// hits → TBLASTN cross-check.
func TestIntegrationFullPipeline(t *testing.T) {
	// 1. A synthetic genome with known genes, shipped as FASTA.
	refSeq, genes := SyntheticReference(1001, 80_000, 6, 60)
	var fasta strings.Builder
	fasta.WriteString(">genome synthetic test genome\n")
	fasta.WriteString(refSeq.String())
	fasta.WriteString("\n")

	// 2. Build, serialize and reload the database.
	d, err := BuildDatabase(strings.NewReader(fasta.String()))
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := d.SaveDatabase(&blob); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDatabase(&blob)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Diverged queries (the homology-search scenario).
	var queries []*Query
	for i, g := range genes[:4] {
		mut, _, err := MutateProtein(int64(2000+i), g.Protein, 0.05, 0)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuery(mut)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	// 4. Card session: one database load, batched queries.
	sess, err := NewSession(d2)
	if err != nil {
		t.Fatal(err)
	}
	perQuery, totalSec, err := sess.RunBatch(queries, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if totalSec <= 0 {
		t.Error("batch timing missing")
	}
	for i, g := range genes[:4] {
		found := false
		for _, h := range perQuery[i] {
			if h.RecordID == "genome" && h.Offset == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("batch query %d missed its locus %d", i, g.Pos)
		}
	}

	// 5. Verified hits: FabP prefilter + Smith-Waterman confirmation.
	ref, _, err := ReadReferenceFasta(strings.NewReader(fasta.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(queries[0], WithThresholdFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	verified, err := a.AlignVerified(ref, VerifyOptions{MaxHits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) == 0 || verified[0].Identity < 0.85 {
		t.Fatalf("verification failed: %+v", verified)
	}
	// The hit must be statistically overwhelming.
	if ev := a.EValueOf(verified[0].Score, ref.Len()); ev > 1e-6 {
		t.Errorf("true hit E-value %g too large", ev)
	}

	// 6. TBLASTN agrees on the locus.
	hsps, err := SearchTBLASTN(queries[0], ref, TBLASTNOptions{ForwardOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("TBLASTN found nothing")
	}
	if diff := hsps[0].NucPos - verified[0].Pos; diff < -180 || diff > 180 {
		t.Errorf("TBLASTN (%d) and FabP (%d) disagree on the locus",
			hsps[0].NucPos, verified[0].Pos)
	}
}

// TestIntegrationHardwareSoftwareAgreement drives one workload through
// every implementation: scalar engine, bit-parallel kernel, full-rate
// netlist, segmented netlist and write-back record stream.
func TestIntegrationHardwareSoftwareAgreement(t *testing.T) {
	ref, genes := SyntheticReference(1002, 3_000, 2, 4)
	q, err := NewQuery(genes[0].Protein) // 4 residues = 12 elements
	if err != nil {
		t.Fatal(err)
	}
	threshold := q.MaxScore() * 2 / 3

	scalar, err := NewAligner(q, WithThreshold(threshold), WithKernelType(KernelScalar))
	if err != nil {
		t.Fatal(err)
	}
	bitp, err := NewAligner(q, WithThreshold(threshold), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	want := scalar.Align(ref)
	if got := bitp.Align(ref); len(got) != len(want) {
		t.Fatalf("bitparallel %d hits vs scalar %d", len(got), len(want))
	}

	// Netlist paths run on a window around the first gene to stay fast.
	lo := genes[0].Pos - 200
	if lo < 0 {
		lo = 0
	}
	hi := genes[0].Pos + 400
	if hi > ref.Len() {
		hi = ref.Len()
	}
	sub, err := NewReference(ref.String()[lo:hi])
	if err != nil {
		t.Fatal(err)
	}
	subWant := scalar.Align(sub)

	var mod strings.Builder
	if _, _, err := GenerateVerilog(&mod, VerilogConfig{
		QueryResidues: q.Residues(), BeatElements: 8, Threshold: threshold,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mod.String(), "LUT6") {
		t.Error("verilog emission failed")
	}

	// The hardware paths are proven equivalent in internal/core tests; here
	// just confirm the end-to-end facade flows stay consistent on the same
	// sub-reference.
	if got := bitp.Align(sub); len(got) != len(subWant) {
		t.Error("facade kernels disagree on the sub-reference")
	}
}

// TestIntegrationExperimentSuiteStable pins the experiment registry: every
// id renders non-empty output in all three formats.
func TestIntegrationExperimentSuiteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short")
	}
	for _, name := range ExperimentNames() {
		if name == "measured" || name == "accuracy" {
			continue // long-running; covered in internal/experiments
		}
		for _, format := range []string{"text", "markdown", "csv"} {
			out, err := RunExperimentAs(name, format)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			if len(out) < 50 {
				t.Errorf("%s/%s output suspiciously small", name, format)
			}
		}
	}
}
