package fabp

import (
	"bytes"
	"strings"
	"testing"
)

func buildFacadeDB(t *testing.T) (*Database, []PlantedGene) {
	t.Helper()
	ref, genes := SyntheticReference(55, 40_000, 4, 50)
	var fasta strings.Builder
	// Split the reference into two records at a gene-free point (20_000 is
	// inside a slot boundary region only probabilistically; instead keep
	// one record so planted positions stay valid, plus a decoy record).
	fasta.WriteString(">main primary sequence\n")
	fasta.WriteString(ref.String())
	fasta.WriteString("\n>decoy\n")
	decoy, _ := SyntheticReference(56, 5_000, 0, 0)
	fasta.WriteString(decoy.String())
	fasta.WriteString("\n")
	d, err := BuildDatabase(strings.NewReader(fasta.String()))
	if err != nil {
		t.Fatal(err)
	}
	return d, genes
}

func TestBuildDatabaseBasics(t *testing.T) {
	d, _ := buildFacadeDB(t)
	if d.NumRecords() != 2 || d.Len() != 45_000 {
		t.Fatalf("geometry: %d records, %d nt", d.NumRecords(), d.Len())
	}
	r := d.Record(0)
	if r.ID != "main" || r.Description != "primary sequence" || r.Length != 40_000 {
		t.Errorf("record 0: %+v", r)
	}
	if _, err := BuildDatabase(strings.NewReader("")); err == nil {
		t.Error("empty FASTA must fail")
	}
}

func TestDatabaseSaveLoad(t *testing.T) {
	d, _ := buildFacadeDB(t)
	var buf bytes.Buffer
	if err := d.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() || d2.NumRecords() != d.NumRecords() {
		t.Error("round trip lost geometry")
	}
	if _, err := LoadDatabase(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk must fail")
	}
}

func TestAlignDatabaseAttribution(t *testing.T) {
	d, genes := buildFacadeDB(t)
	g := genes[1]
	q, err := NewQuery(g.Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.9))
	if err != nil {
		t.Fatal(err)
	}
	hits := a.AlignDatabase(d)
	found := false
	for _, h := range hits {
		if h.RecordID == "main" && h.Offset == g.Pos {
			found = true
		}
	}
	if !found {
		t.Errorf("planted gene not attributed among %d hits", len(hits))
	}
}

func TestSessionEndToEnd(t *testing.T) {
	d, genes := buildFacadeDB(t)
	s, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewQuery(genes[0].Protein)
	hits, timing, err := s.Run(q, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.RecordID == "main" && h.Offset == genes[0].Pos {
			found = true
		}
	}
	if !found {
		t.Error("session missed the planted gene")
	}
	if timing.Total <= 0 || timing.Kernel <= 0 || timing.Total < timing.Kernel {
		t.Errorf("timing implausible: %+v", timing)
	}
	if _, _, err := s.Run(q, 0); err == nil {
		t.Error("bad threshold fraction must fail")
	}
	if _, _, err := s.Run(q, 1.5); err == nil {
		t.Error("bad threshold fraction must fail")
	}
}

func TestSessionBatch(t *testing.T) {
	d, genes := buildFacadeDB(t)
	s, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	var queries []*Query
	for _, g := range genes[:3] {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	perQuery, totalSec, err := s.RunBatch(queries, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(perQuery) != 3 || totalSec <= 0 {
		t.Fatalf("batch shape: %d results, %.3fs", len(perQuery), totalSec)
	}
	for i, g := range genes[:3] {
		found := false
		for _, h := range perQuery[i] {
			if h.Offset == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("batch query %d missed its gene", i)
		}
	}
}

func TestAlignBatchFacade(t *testing.T) {
	ref, genes := SyntheticReference(77, 30_000, 3, 40)
	var queries []*Query
	for _, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	results, err := AlignBatch(queries, ref, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range genes {
		found := false
		for _, h := range results[i] {
			if h.Pos == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("batch query %d missed the gene at %d", i, g.Pos)
		}
	}
	if _, err := AlignBatch(nil, ref, 0.9); err == nil {
		t.Error("empty batch must fail")
	}
}

func TestRunExperimentAs(t *testing.T) {
	md, err := RunExperimentAs("table1", "markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| build |") && !strings.Contains(md, "| build ") {
		t.Errorf("markdown output: %s", md[:120])
	}
	csvOut, err := RunExperimentAs("table1", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut, "build,iter") {
		t.Errorf("csv output: %s", csvOut[:120])
	}
	if _, err := RunExperimentAs("table1", "xml"); err == nil {
		t.Error("bad format must fail")
	}
	if _, err := RunExperimentAs("nope", "text"); err == nil {
		t.Error("bad experiment must fail")
	}
}
