package fabp

import (
	"fmt"
	"io"

	"fabp/internal/core"
	"fabp/internal/fpga"
	"fabp/internal/perf"
	"fabp/internal/rtl"
)

// DeviceName selects one of the modeled FPGA parts.
type DeviceName string

// Modeled devices.
const (
	// DeviceKintex7 is the paper's mid-range part (Table I).
	DeviceKintex7 DeviceName = "kintex7"
	// DeviceVirtexUS is a large UltraScale+ part for scaling studies.
	DeviceVirtexUS DeviceName = "virtexus"
	// DeviceArtix7 is a low-end part.
	DeviceArtix7 DeviceName = "artix7"
)

func lookupDevice(name DeviceName) (fpga.Device, error) {
	switch name {
	case DeviceKintex7, "":
		return fpga.Kintex7(), nil
	case DeviceVirtexUS:
		return fpga.VirtexUS(), nil
	case DeviceArtix7:
		return fpga.Artix7(), nil
	}
	return fpga.Device{}, fmt.Errorf("fabp: unknown device %q", name)
}

// DeviceReport projects a FabP build onto a device: the Table I quantities
// plus timing and energy for a reference scan.
type DeviceReport struct {
	Device        string
	QueryResidues int
	// Fits reports whether the build fits the device at any segmentation.
	Fits bool
	// Iterations is the per-beat cycle count (1 = full rate).
	Iterations int
	// Utilization fractions (0..1) per resource class.
	LUTFrac, FFFrac, BRAMFrac, DSPFrac float64
	// Bottleneck is "bandwidth-bound" or "resource-bound" (§IV-B).
	Bottleneck string
	// Seconds, AchievedBandwidth and EnergyJoules project one scan of
	// RefNucleotides database elements.
	RefNucleotides    int
	Seconds           float64
	AchievedBandwidth float64
	PowerWatts        float64
	EnergyJoules      float64
}

// SizeOnDevice sizes a FabP build for queries of queryResidues amino acids
// on the named device and projects a scan of refNucleotides database
// elements (use 0 for the paper's 1 Gnt default).
func SizeOnDevice(name DeviceName, queryResidues, refNucleotides int) (*DeviceReport, error) {
	dev, err := lookupDevice(name)
	if err != nil {
		return nil, err
	}
	if queryResidues <= 0 {
		return nil, fmt.Errorf("fabp: query residues must be positive")
	}
	if refNucleotides <= 0 {
		refNucleotides = 1_000_000_000
	}
	est := fpga.Size(dev, fpga.Config{QueryElems: 3 * queryResidues})
	rep := &DeviceReport{
		Device:        dev.Name,
		QueryResidues: queryResidues,
		Fits:          est.Fits,
		Iterations:    est.Iterations,
		LUTFrac:       est.LUTFrac(),
		FFFrac:        est.FFFrac(),
		BRAMFrac:      est.BRAMFrac(),
		DSPFrac:       est.DSPFrac(),
		Bottleneck:    est.Bottleneck(),
	}
	if !est.Fits {
		return rep, nil
	}
	tm := fpga.Time(est, refNucleotides, nil)
	rep.RefNucleotides = refNucleotides
	rep.Seconds = tm.Seconds
	rep.AchievedBandwidth = tm.AchievedBandwidth
	rep.PowerWatts = est.Power()
	rep.EnergyJoules = tm.EnergyJoules
	return rep, nil
}

// String renders the report like a Table I row plus timing.
func (r *DeviceReport) String() string {
	if !r.Fits {
		return fmt.Sprintf("FabP-%d on %s: does not fit", r.QueryResidues, r.Device)
	}
	return fmt.Sprintf(
		"FabP-%d on %s: iter=%d LUT=%.0f%% FF=%.0f%% BRAM=%.0f%% DSP=%.0f%% (%s) — %.1f ms, %.1f GB/s, %.1f W, %.2f J per %d nt",
		r.QueryResidues, r.Device, r.Iterations,
		100*r.LUTFrac, 100*r.FFFrac, 100*r.BRAMFrac, 100*r.DSPFrac, r.Bottleneck,
		1000*r.Seconds, r.AchievedBandwidth/1e9, r.PowerWatts, r.EnergyJoules, r.RefNucleotides)
}

// VerilogConfig parameterizes GenerateVerilog.
type VerilogConfig struct {
	// QueryResidues is the supported query length in amino acids.
	QueryResidues int
	// BeatElements is the reference elements per AXI transfer (default
	// 256 = one 512-bit beat; small values produce inspectable netlists).
	BeatElements int
	// Threshold is the hit threshold baked into the comparators.
	Threshold int
	// Iterations > 1 emits the segmented long-query datapath (§III-C):
	// comparators sized for one query segment, reused over Iterations
	// cycles per beat with per-instance accumulators.
	Iterations int
	// TreeAdderPopcount swaps in the naive pop-counter (for the §III-D
	// comparison); default is the paper's Pop36 design.
	TreeAdderPopcount bool
	// PipelinedPopcount inserts register stages through the pop-counter
	// (the Fig. 4 pipelined design), raising Fmax at the cost of latency.
	PipelinedPopcount bool
}

// GenerateVerilog emits the FabP datapath for the configuration as
// structural Verilog-2001 (Xilinx LUT6/FDRE primitives) and returns the
// resource statistics of the generated netlist.
func GenerateVerilog(w io.Writer, cfg VerilogConfig) (luts, ffs int, err error) {
	if cfg.QueryResidues <= 0 {
		return 0, 0, fmt.Errorf("fabp: query residues must be positive")
	}
	beat := cfg.BeatElements
	if beat == 0 {
		beat = 256
	}
	pop := core.PopLUTOptimized
	if cfg.TreeAdderPopcount {
		pop = core.PopTree
	}
	n, _, err := core.BuildNetlist(core.NetlistConfig{
		QueryElems:   3 * cfg.QueryResidues,
		Beat:         beat,
		Threshold:    cfg.Threshold,
		Iterations:   cfg.Iterations,
		Pop:          pop,
		PipelinedPop: cfg.PipelinedPopcount,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := rtl.EmitVerilog(w, n); err != nil {
		return 0, 0, err
	}
	s := n.Stats()
	return s.LUTs, s.FFs, nil
}

// NetlistStats reports a generated datapath's structural and timing
// figures.
type NetlistStats struct {
	LUTs, FFs int
	// Depth is the longest combinational path in LUT levels.
	Depth int
	// FMaxHz is the estimated maximum clock frequency for that depth on a
	// Kintex-7-class part.
	FMaxHz float64
}

// AnalyzeNetlist generates the datapath for cfg and returns its resource
// and timing statistics without emitting Verilog.
func AnalyzeNetlist(cfg VerilogConfig) (*NetlistStats, error) {
	if cfg.QueryResidues <= 0 {
		return nil, fmt.Errorf("fabp: query residues must be positive")
	}
	beat := cfg.BeatElements
	if beat == 0 {
		beat = 256
	}
	pop := core.PopLUTOptimized
	if cfg.TreeAdderPopcount {
		pop = core.PopTree
	}
	n, _, err := core.BuildNetlist(core.NetlistConfig{
		QueryElems:   3 * cfg.QueryResidues,
		Beat:         beat,
		Threshold:    cfg.Threshold,
		Iterations:   cfg.Iterations,
		Pop:          pop,
		PipelinedPop: cfg.PipelinedPopcount,
	})
	if err != nil {
		return nil, err
	}
	depth, err := n.Depth()
	if err != nil {
		return nil, err
	}
	s := n.Stats()
	return &NetlistStats{
		LUTs:   s.LUTs,
		FFs:    s.FFs,
		Depth:  depth,
		FMaxHz: rtl.FMaxEstimate(depth),
	}, nil
}

// GenerateTestbench emits both the Verilog module (to mod) and a
// self-checking testbench (to tb) for the configuration. The testbench
// stimulus is a real alignment of a deterministic synthetic reference of
// refNucleotides elements (seeded by seed); its expectations come from the
// cycle-accurate Go simulation, so an HDL simulator re-verifies the
// hardware against this implementation.
func GenerateTestbench(mod, tb io.Writer, cfg VerilogConfig, refNucleotides int, seed int64) error {
	if cfg.QueryResidues <= 0 {
		return fmt.Errorf("fabp: query residues must be positive")
	}
	beat := cfg.BeatElements
	if beat == 0 {
		beat = 8
	}
	if refNucleotides <= 0 {
		refNucleotides = 8 * beat
	}
	pop := core.PopLUTOptimized
	if cfg.TreeAdderPopcount {
		pop = core.PopTree
	}
	ref, genes := SyntheticReference(seed, refNucleotides, 1, cfg.QueryResidues)
	if len(genes) == 0 {
		return fmt.Errorf("fabp: reference too small to embed the query gene")
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		return err
	}
	runner, err := core.NewNetlistRunner(core.NetlistConfig{
		QueryElems:   q.Elements(),
		Beat:         beat,
		Threshold:    cfg.Threshold,
		Iterations:   cfg.Iterations,
		Pop:          pop,
		PipelinedPop: cfg.PipelinedPopcount,
	}, q.program)
	if err != nil {
		return err
	}
	rec := rtl.NewTraceRecorder(runner.Netlist())
	runner.AttachRecorder(rec)
	runner.Align(ref.seq)
	if err := rtl.EmitVerilog(mod, runner.Netlist()); err != nil {
		return err
	}
	return rec.EmitTestbench(tb)
}

// GenerateDOT emits the generated datapath as a Graphviz digraph for
// structural inspection (use small BeatElements/QueryResidues — the graph
// of a full build is unreadable).
func GenerateDOT(w io.Writer, cfg VerilogConfig) error {
	if cfg.QueryResidues <= 0 {
		return fmt.Errorf("fabp: query residues must be positive")
	}
	beat := cfg.BeatElements
	if beat == 0 {
		beat = 4
	}
	pop := core.PopLUTOptimized
	if cfg.TreeAdderPopcount {
		pop = core.PopTree
	}
	n, _, err := core.BuildNetlist(core.NetlistConfig{
		QueryElems:   3 * cfg.QueryResidues,
		Beat:         beat,
		Threshold:    cfg.Threshold,
		Iterations:   cfg.Iterations,
		Pop:          pop,
		PipelinedPop: cfg.PipelinedPopcount,
	})
	if err != nil {
		return err
	}
	return rtl.EmitDOT(w, n)
}

// GeneratePrimitiveLibrary writes behavioral Verilog models of LUT6 and
// FDRE so generated modules and testbenches simulate under any plain
// Verilog simulator without vendor libraries.
func GeneratePrimitiveLibrary(w io.Writer) error {
	return rtl.EmitPrimitiveLibrary(w)
}

// GenerateWaveform runs a small alignment on the generated netlist and
// dumps every cycle as a VCD waveform — the debug view of the datapath.
// The reference is synthetic (seeded); hits from the run are returned.
func GenerateWaveform(w io.Writer, cfg VerilogConfig, refNucleotides int, seed int64) ([]Hit, error) {
	if cfg.QueryResidues <= 0 {
		return nil, fmt.Errorf("fabp: query residues must be positive")
	}
	beat := cfg.BeatElements
	if beat == 0 {
		beat = 8
	}
	if refNucleotides <= 0 {
		refNucleotides = 8 * beat
	}
	pop := core.PopLUTOptimized
	if cfg.TreeAdderPopcount {
		pop = core.PopTree
	}
	ref, genes := SyntheticReference(seed, refNucleotides, 1, cfg.QueryResidues)
	if len(genes) == 0 {
		return nil, fmt.Errorf("fabp: reference too small to embed the query gene")
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		return nil, err
	}
	runner, err := core.NewNetlistRunner(core.NetlistConfig{
		QueryElems:   q.Elements(),
		Beat:         beat,
		Threshold:    cfg.Threshold,
		Iterations:   cfg.Iterations,
		Pop:          pop,
		PipelinedPop: cfg.PipelinedPopcount,
	}, q.program)
	if err != nil {
		return nil, err
	}
	vcd, err := runner.AttachVCD(w)
	if err != nil {
		return nil, err
	}
	raw := runner.Align(ref.seq)
	if err := vcd.Err(); err != nil {
		return nil, err
	}
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{Pos: h.Pos, Score: h.Score}
	}
	return hits, nil
}

// PlatformComparison projects all of Fig. 6's platforms on one workload.
type PlatformComparison struct {
	QueryResidues  int
	RefNucleotides int
	// Results per platform.
	FabP, GPU, CPU1, CPU12 PlatformResult
}

// PlatformResult is one platform's projected run.
type PlatformResult struct {
	Platform     string
	Seconds      float64
	Watts        float64
	EnergyJoules float64
}

func toPlatformResult(r perf.Result) PlatformResult {
	return PlatformResult{
		Platform:     r.Platform,
		Seconds:      r.Seconds,
		Watts:        r.Watts,
		EnergyJoules: r.EnergyJoules(),
	}
}

// ComparePlatforms evaluates the calibrated Fig. 6 models (FabP on the
// Kintex-7, CUDA on a GTX 1080Ti, TBLASTN on an i7-8700K at 1 and 12
// threads) on one workload.
func ComparePlatforms(queryResidues, refNucleotides int) (*PlatformComparison, error) {
	if refNucleotides <= 0 {
		refNucleotides = 1_000_000_000
	}
	f, err := perf.FPGA(fpga.Kintex7(), queryResidues, refNucleotides)
	if err != nil {
		return nil, err
	}
	return &PlatformComparison{
		QueryResidues:  queryResidues,
		RefNucleotides: refNucleotides,
		FabP:           toPlatformResult(f),
		GPU:            toPlatformResult(perf.DefaultGPU().Time(queryResidues, refNucleotides)),
		CPU1:           toPlatformResult(perf.DefaultCPU(1).Time(queryResidues, refNucleotides)),
		CPU12:          toPlatformResult(perf.DefaultCPU(12).Time(queryResidues, refNucleotides)),
	}, nil
}
