// resilience.go is the facade of the scan pipeline's resilience layer:
// the public retry/hedge policy (WithRetryPolicy), opt-in partial-result
// degradation (WithPartialResults, PartialError) and the glue that routes
// shard scans through the scheduler's resilient path — bounded retries
// with deterministic jittered backoff, hedged duplicates for stragglers,
// and, when opted in, a scan that survives failed shards and reports
// exactly which window ranges it could not cover.
package fabp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fabp/internal/bitpar"
	"fabp/internal/core"
	"fabp/internal/faultinject"
	"fabp/internal/retry"
	"fabp/internal/sched"
)

// RetryPolicy bounds the automatic re-execution the scan pipeline may do
// on retryable failures (transient shard errors, injected faults, reader
// hiccups exposing Temporary() == true). The zero value disables both
// retries and hedging — the historical single-attempt behavior.
type RetryPolicy struct {
	// MaxRetries bounds retries per shard (or per chunk read on the
	// stream path) after the first attempt.
	MaxRetries int
	// Base and Cap bound the backoff delays: retry n waits a
	// deterministic jittered duration in [Base, min(Cap, Base<<(n-1))]
	// (defaults 1ms / 100ms).
	Base, Cap time.Duration
	// HedgeAfter launches a duplicate of a shard still running after
	// this long (0 disables hedging). First success wins; the loser is
	// canceled through the context plumbing.
	HedgeAfter time.Duration
	// HedgeBudget caps hedged duplicates per scan call (default 0: even
	// with HedgeAfter set, no duplicates launch without budget).
	HedgeBudget int
	// Seed drives the deterministic jitter (shared by every shard, each
	// decorrelated by its index).
	Seed uint64
}

// enabled reports whether the policy changes anything over a bare scan.
func (rp RetryPolicy) enabled() bool {
	return rp.MaxRetries > 0 || (rp.HedgeAfter > 0 && rp.HedgeBudget > 0)
}

// backoff renders the policy as the retry package's schedule.
func (rp RetryPolicy) backoff() retry.Backoff {
	return retry.Backoff{Base: rp.Base, Cap: rp.Cap, Max: rp.MaxRetries, Seed: rp.Seed}
}

// validate rejects nonsensical policies at option time.
func (rp RetryPolicy) validate() error {
	if rp.MaxRetries < 0 {
		return fmt.Errorf("fabp: negative MaxRetries %d", rp.MaxRetries)
	}
	if rp.Base < 0 || rp.Cap < 0 || rp.HedgeAfter < 0 {
		return fmt.Errorf("fabp: negative retry policy durations")
	}
	if rp.HedgeBudget < 0 {
		return fmt.Errorf("fabp: negative HedgeBudget %d", rp.HedgeBudget)
	}
	return nil
}

// WithRetryPolicy sets the aligner's retry/hedge policy for every scan
// path (AlignContext, AlignDatabase*, AlignStream*). Without it, scans
// run each shard exactly once — failures surface immediately.
func WithRetryPolicy(rp RetryPolicy) AlignerOption {
	return func(c *alignerConfig) {
		if err := rp.validate(); err != nil {
			c.err = err
			return
		}
		c.retryPolicy = rp
	}
}

// WithPartialResults opts the aligner's database and reference scans into
// degraded completion: when shards still fail after the retry policy is
// exhausted, the scan returns the hits from every surviving shard plus a
// typed *PartialError listing the window ranges it could not cover,
// instead of failing outright. Without this option (the default) any
// unrecoverable shard failure fails the whole scan.
func WithPartialResults() AlignerOption {
	return func(c *alignerConfig) { c.partial = true }
}

// ShardRange is one failed stretch of a partial scan: window starts
// [Lo, Hi) were not scanned, because of Err.
type ShardRange struct {
	Lo, Hi int
	Err    error
}

// PartialError reports a scan that completed in degraded mode: every hit
// outside the Failed ranges was returned, the listed ranges were not
// scanned. It is returned ALONGSIDE the surviving hits by scans running
// under WithPartialResults; match it with errors.As.
type PartialError struct {
	// Failed lists the uncovered window-start ranges in ascending
	// position order.
	Failed []ShardRange
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabp: partial scan: %d shard range(s) failed:", len(e.Failed))
	for i, r := range e.Failed {
		if i == 3 {
			fmt.Fprintf(&b, " … (%d more)", len(e.Failed)-i)
			break
		}
		fmt.Fprintf(&b, " [%d,%d): %v;", r.Lo, r.Hi, r.Err)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// batchRetryPolicy is the policy the package-level batch and Session
// paths use (they have no Aligner to carry WithRetryPolicy).
var (
	batchRetryMu     sync.RWMutex
	batchRetryPolicy RetryPolicy
)

// SetBatchRetryPolicy sets the retry/hedge policy for the package-level
// fused batch and Session scan paths (AlignBatch*, AlignDatabaseBatch*,
// Session.Run*), which have no Aligner to configure. The zero policy
// restores single-attempt behavior. Safe for concurrent use; batch scans
// read the policy once at call start.
func SetBatchRetryPolicy(rp RetryPolicy) {
	batchRetryMu.Lock()
	batchRetryPolicy = rp
	batchRetryMu.Unlock()
}

func currentBatchRetryPolicy() RetryPolicy {
	batchRetryMu.RLock()
	defer batchRetryMu.RUnlock()
	return batchRetryPolicy
}

// resilientScans reports whether this aligner's shard scans must route
// through the resilient path: an explicit policy, partial mode, or
// active fault injection (the shard-dispatch hook site lives on the
// resilient path). All three off — the production default — keeps scans
// on the historical zero-overhead path.
func (a *Aligner) resilientScans() bool {
	return a.retryPolicy.enabled() || a.partial || faultinject.Enabled()
}

// newResilience builds the per-call scheduler policy from rp, reporting
// on tm's counters.
func newResilience(rp RetryPolicy, tm *alignerMetrics) *sched.Resilience {
	return sched.NewResilience(rp.backoff(), rp.HedgeAfter, rp.HedgeBudget, tm.retries, tm.hedged)
}

// shardFailure records one shard's terminal failure during a resilient
// scan.
type shardFailure struct {
	shard sched.Shard
	err   error
}

// failureCollector accumulates shard failures across pool workers.
type failureCollector struct {
	mu     sync.Mutex
	failed []shardFailure
}

func (fc *failureCollector) add(s sched.Shard, err error) {
	fc.mu.Lock()
	fc.failed = append(fc.failed, shardFailure{s, err})
	fc.mu.Unlock()
}

// partialError renders the collected failures as a position-ordered
// *PartialError.
func (fc *failureCollector) partialError() *PartialError {
	sort.Slice(fc.failed, func(i, j int) bool { return fc.failed[i].shard.Lo < fc.failed[j].shard.Lo })
	pe := &PartialError{Failed: make([]ShardRange, len(fc.failed))}
	for i, f := range fc.failed {
		pe.Failed[i] = ShardRange{Lo: f.shard.Lo, Hi: f.shard.Hi, Err: f.err}
	}
	return pe
}

// firstRealError returns the first failure that is not a context error —
// the root cause when the scan shed its remaining shards after one shard
// failed unrecoverably.
func (fc *failureCollector) firstRealError() error {
	var fallback error
	for _, f := range fc.failed {
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			if fallback == nil {
				fallback = f.err
			}
			continue
		}
		return fmt.Errorf("fabp: shard [%d,%d): %w", f.shard.Lo, f.shard.Hi, f.err)
	}
	return fallback
}

// gatherShardsResilient is the resilient arm of the gather-style scans
// (scanShardsCtx, Session.scan): every shard runs under the retry/hedge
// policy, failures are collected, and the outcome depends on the mode —
// without partial results the first unrecoverable failure cancels the
// remaining shards and fails the scan; with them the scan completes on
// the surviving shards and returns a *PartialError beside the hits.
func gatherShardsResilient(ctx context.Context, pool *sched.Pool, rp RetryPolicy, partial bool, tm *alignerMetrics, shards []sched.Shard, scan func(lo, hi int) []core.Hit) ([]core.Hit, error) {
	res := newResilience(rp, tm)
	fc := &failureCollector{}
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()
	hits, gerr := sched.GatherCtx(sctx, pool, len(shards), func(i int) []core.Hit {
		out, err := sched.ProduceResilient(sctx, pool, res, uint64(i), func(actx context.Context) ([]core.Hit, error) {
			if err := actx.Err(); err != nil {
				return nil, err
			}
			return scan(shards[i].Lo, shards[i].Hi), nil
		})
		if err != nil {
			fc.add(shards[i], err)
			if !partial {
				// Shed the rest of the plan; the scan is already lost.
				cancelShards()
			}
			return nil
		}
		return out
	})
	if err := ctx.Err(); err != nil {
		return nil, err // the caller's cancel/deadline wins over shard failures
	}
	if len(fc.failed) > 0 {
		if !partial {
			return nil, fc.firstRealError()
		}
		tm.partial.Inc()
		return hits, fc.partialError()
	}
	return hits, gerr
}

// gatherResilient routes the aligner's shard gather through the resilient
// path under its own policy and mode.
func (a *Aligner) gatherResilient(ctx context.Context, shards []sched.Shard, scan func(lo, hi int) []core.Hit) ([]core.Hit, error) {
	return gatherShardsResilient(ctx, a.pool, a.retryPolicy, a.partial, &a.tm, shards, scan)
}

// gatherBatchResilient is the fused batch scan's resilient arm. Batches
// have no partial mode — a shard that still fails after the retry policy
// is exhausted fails the whole batch (every query's results depend on
// every shard).
func gatherBatchResilient(ctx context.Context, rp RetryPolicy, tm *alignerMetrics, shards []sched.Shard, k int, scanShard func(i int) [][]bitpar.Hit) ([][]bitpar.Hit, error) {
	res := newResilience(rp, tm)
	fc := &failureCollector{}
	sctx, cancelBatch := context.WithCancel(ctx)
	defer cancelBatch()
	perQuery, gerr := sched.GatherBatchCtx(sctx, sched.Shared(), len(shards), k, func(i int) [][]bitpar.Hit {
		out, err := sched.ProduceResilient(sctx, sched.Shared(), res, uint64(i), func(actx context.Context) ([][]bitpar.Hit, error) {
			if err := actx.Err(); err != nil {
				return nil, err
			}
			return scanShard(i), nil
		})
		if err != nil {
			fc.add(shards[i], err)
			cancelBatch()
			return nil
		}
		return out
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(fc.failed) > 0 {
		return nil, fc.firstRealError()
	}
	return perQuery, gerr
}

// resilientStreamProduce wraps a streaming scan's per-shard produce with
// the retry/hedge policy and partial-mode failure capture: in partial
// mode an exhausted shard contributes no hits and is recorded on fc (the
// merge continues); otherwise its failure stops the stream.
func resilientStreamProduce[T any](ctx context.Context, pool *sched.Pool, res *sched.Resilience, partial bool, fc *failureCollector, shards []sched.Shard, produce func(i int) ([]T, error)) func(i int) ([]T, error) {
	return func(i int) ([]T, error) {
		out, err := sched.ProduceResilient(ctx, pool, res, uint64(i), func(actx context.Context) ([]T, error) {
			if err := actx.Err(); err != nil {
				return nil, err
			}
			return produce(i)
		})
		if err != nil {
			if partial && ctx.Err() == nil {
				fc.add(shards[i], err)
				return nil, nil
			}
			return nil, fmt.Errorf("fabp: shard [%d,%d): %w", shards[i].Lo, shards[i].Hi, err)
		}
		return out, nil
	}
}
