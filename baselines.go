package fabp

import (
	"fmt"

	"fabp/internal/bio"
	"fabp/internal/swalign"
)

// TBLASTNOptions tunes the heuristic baseline search.
type TBLASTNOptions struct {
	// Threads is the worker count (default 1).
	Threads int
	// ForwardOnly restricts the search to the three forward frames,
	// matching FabP's single-strand scan; default searches all six.
	ForwardOnly bool
	// MinScore is the raw BLOSUM62 HSP cutoff (default 35).
	MinScore int
	// TwoHit enables BLAST's two-hit seeding (default one-hit).
	TwoHit bool
}

// HSP is a high-scoring segment pair from a protein search.
type HSP struct {
	// Frame renders BLAST-style: "+1".."+3", "-1".."-3".
	Frame string
	// QStart/QEnd delimit the query residues (half-open).
	QStart, QEnd int
	// SStart/SEnd delimit the subject positions within the translated
	// frame (half-open).
	SStart, SEnd int
	// NucPos is the forward-strand nucleotide offset of the subject
	// segment.
	NucPos int
	// Score is the raw BLOSUM62 segment score.
	Score int
	// BitScore and EValue are Karlin-Altschul statistics over the
	// translated search space.
	BitScore float64
	EValue   float64
}

// SearchTBLASTN runs the TBLASTN-style search: 6-frame translation,
// BLOSUM62 neighborhood seeding and X-drop extension. HSPs come back
// best-first. It is the legacy spelling of SearchProtein and routes
// through the same Scan spine (cancellation, sharding, result cache).
func SearchTBLASTN(query *Query, ref *Reference, opts TBLASTNOptions) ([]HSP, error) {
	o := ProteinSearchOptions{
		Threads:  opts.Threads,
		MinScore: opts.MinScore,
		TwoHit:   opts.TwoHit,
	}
	if opts.ForwardOnly {
		o.Frames = 3
	}
	return SearchProtein(query, ref, o)
}

// SWResult is a Smith-Waterman local alignment.
type SWResult struct {
	// Score is the optimal local alignment score (BLOSUM62, affine gaps).
	Score int
	// AStart/AEnd and BStart/BEnd delimit the aligned regions (half-open).
	AStart, AEnd, BStart, BEnd int
	// CIGAR is the run-length operation string ("12M1D4M").
	CIGAR string
	// Identity is the fraction of identical columns.
	Identity float64
	// Gaps counts gapped columns.
	Gaps int
	// Pretty is the BLAST-style rendered alignment (query/midline/subject
	// blocks).
	Pretty string
}

// SmithWaterman computes the optimal gapped local alignment of two protein
// sequences (one-letter codes) — the DP gold standard FabP approximates
// with substitution-only scoring.
func SmithWaterman(a, b string) (*SWResult, error) {
	pa, err := bio.ParseProtSeq(a)
	if err != nil {
		return nil, fmt.Errorf("fabp: sequence a: %w", err)
	}
	pb, err := bio.ParseProtSeq(b)
	if err != nil {
		return nil, fmt.Errorf("fabp: sequence b: %w", err)
	}
	s := swalign.DefaultScoring()
	r := swalign.Align(pa, pb, s)
	return &SWResult{
		Score:  r.Score,
		AStart: r.AStart, AEnd: r.AEnd,
		BStart: r.BStart, BEnd: r.BEnd,
		CIGAR:    r.CIGAR(),
		Identity: r.Identity(pa, pb),
		Gaps:     r.Gaps(),
		Pretty:   swalign.FormatAlignment(pa, pb, r, s, 60),
	}, nil
}
