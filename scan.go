package fabp

import (
	"context"
	"crypto/sha256"
	"time"

	"fabp/internal/core"
	"fabp/internal/resultcache"
	"fabp/internal/sched"
	"fabp/internal/tblastn"
)

// This file is the unified scan spine: the one code path every
// non-streaming alignment entrypoint — Scan and the legacy
// Align/AlignContext/AlignDatabase/AlignDatabaseContext wrappers —
// shares, and the single place the content-addressed scan-result cache
// hooks in. A scan's outcome is a pure function of (query instruction
// digest, target content digest, threshold, resolved kernel, shard
// geometry), which is exactly the cache key; invalidation is therefore
// free (new content → new digest → new key) and cached hits are
// bit-identical to rescanning by construction. Streaming and batch
// entrypoints stay uncached: a stream's contract is incremental
// delivery, and a fused batch's unit of work is the batch, not a
// cacheable single scan. See DESIGN.md §13.

// CacheOutcome is a ScanResult's provenance: how the scan spine
// satisfied the request.
type CacheOutcome string

const (
	// CacheBypass: the scan ran uncached (cache disabled, NoCache, or a
	// partial-mode request, which is never cache-eligible).
	CacheBypass CacheOutcome = "bypass"
	// CacheMiss: this request ran the scan and seeded the cache.
	CacheMiss CacheOutcome = "miss"
	// CacheHit: the result was served from the cache; no scan ran.
	CacheHit CacheOutcome = "hit"
	// CacheShared: the request joined a concurrent identical scan
	// already in flight and shared its result; no additional scan ran.
	CacheShared CacheOutcome = "shared"
)

// ScanRequest is the unified request for a single-query scan — the typed
// form of everything the legacy Align* matrix spread across method
// choice and aligner options. Exactly one of Database or Reference must
// be set; zero values elsewhere mean the documented defaults.
type ScanRequest struct {
	// Query is the prepared protein query (required).
	Query *Query
	// Database XOR Reference is the scan target. A Database target
	// yields record-attributed hits (ScanResult.RecordHits); a Reference
	// target yields position hits (ScanResult.Hits).
	Database  *Database
	Reference *Reference
	// Threshold is the absolute hit threshold in [0, Query.MaxScore()].
	// Nil selects ThresholdFrac instead; setting both is an error.
	Threshold *int
	// ThresholdFrac is the threshold as a fraction of the query's
	// maximum score, in (0, 1]. Zero defaults to 0.8 (the paper's
	// operating point) when Threshold is nil.
	ThresholdFrac float64
	// Kernel selects the implementation (default KernelAuto).
	Kernel Kernel
	// ShardLen overrides the scan's shard size in window starts
	// (0 = scheduler default; negative is an error).
	ShardLen int
	// MaxHits truncates the returned hits to the first N in position
	// order (0 = unlimited), setting ScanResult.Truncated. Truncation is
	// per-request: the cache always holds complete results.
	MaxHits int
	// RetryPolicy bounds automatic re-execution of failed or straggling
	// shards (zero value = single attempt).
	RetryPolicy RetryPolicy
	// Partial opts into degraded completion: shard failures that outlive
	// the retry budget return the surviving hits plus a *PartialError
	// instead of failing the scan. Partial results are never cached.
	Partial bool
	// NoCache forces this request to scan even when the cache is
	// enabled (it neither reads nor seeds entries).
	NoCache bool
	// ProteinSearch, when non-nil, runs the request as a TBLASTN-style
	// protein search (six-frame translation + seeded ungapped extension)
	// instead of a nucleotide scan: results land in ScanResult.HSPs and
	// the nucleotide-only fields (Threshold/ThresholdFrac, Kernel,
	// ShardLen, RetryPolicy, Partial) must stay unset. MaxHits and
	// NoCache apply as usual.
	ProteinSearch *ProteinSearchOptions
}

// ScanResult is the unified scan answer: hits plus everything the legacy
// matrix made the caller reconstruct — degradation, provenance, timing.
type ScanResult struct {
	// Hits holds position hits for Reference targets (nil for Database
	// targets); RecordHits holds record-attributed hits for Database
	// targets. Both are position-ordered.
	Hits       []Hit
	RecordHits []RecordHit
	// Threshold is the resolved absolute threshold the scan used.
	Threshold int
	// Truncated reports that MaxHits clipped the hit list.
	Truncated bool
	// Degraded reports a partial completion: FailedRanges lists the
	// window-start ranges that were not scanned. Degraded results come
	// only from Partial requests and are never cached.
	Degraded     bool
	FailedRanges []ShardRange
	// HSPs holds protein-search results (ProteinSearch requests only),
	// sorted best-first; ProteinStats profiles that pipeline run (shared
	// with cached results on a hit — treat as read-only).
	HSPs         []HSP
	ProteinStats *ProteinSearchStats
	// Cache is the result's provenance (hit/miss/shared/bypass).
	Cache CacheOutcome
	// Elapsed is this call's wall time — queue plus scan on a miss, the
	// lookup alone on a hit.
	Elapsed time.Duration
}

// newScanResult assembles the execute-path result (provenance and timing
// are stamped per-request by the spine's callers).
func (a *Aligner) newScanResult(hits []Hit, recordHits []RecordHit, perr error) *ScanResult {
	res := &ScanResult{Hits: hits, RecordHits: recordHits, Threshold: a.Threshold()}
	if pe, ok := asPartial(perr); ok {
		res.Degraded = true
		res.FailedRanges = pe.Failed
	}
	return res
}

// asPartial extracts a *PartialError (errors.As without the reflection
// round-trip for the common nil case).
func asPartial(err error) (*PartialError, bool) {
	if err == nil {
		return nil, false
	}
	pe, ok := err.(*PartialError)
	return pe, ok
}

// sizeBytes estimates the result's resident footprint for the cache's
// byte bound: slice headers, hit payloads, and record-ID strings.
func (r *ScanResult) sizeBytes() int64 {
	n := int64(256)
	n += int64(len(r.Hits)) * 16
	for _, h := range r.RecordHits {
		n += 56 + int64(len(h.RecordID))
	}
	for _, h := range r.HSPs {
		n += 96 + int64(len(h.Frame))
	}
	return n
}

// clipped returns a per-request shallow copy, truncated to maxHits. The
// hit slices stay shared with the cached original (read-only by the
// cache contract), so a hot hit copies a fixed-size struct, not hits.
func (r *ScanResult) clipped(maxHits int) *ScanResult {
	out := *r
	if maxHits > 0 {
		if len(out.Hits) > maxHits {
			out.Hits = out.Hits[:maxHits:maxHits]
			out.Truncated = true
		}
		if len(out.RecordHits) > maxHits {
			out.RecordHits = out.RecordHits[:maxHits:maxHits]
			out.Truncated = true
		}
		if len(out.HSPs) > maxHits {
			out.HSPs = out.HSPs[:maxHits:maxHits]
			out.Truncated = true
		}
	}
	return &out
}

// targetKind tags the cache key with the result shape: a database scan
// (attributed RecordHits) and a reference scan (position Hits) of
// identical content are different results.
type targetKind uint8

const (
	targetDatabase  targetKind = 1
	targetReference targetKind = 2
	// Protein searches get their own kinds: the digests are computed
	// over different byte domains (database format vs raw sequence), so
	// the kind keeps them from ever aliasing a nucleotide scan.
	targetProteinDatabase  targetKind = 3
	targetProteinReference targetKind = 4
)

// scanKey is the content-addressed cache key. Two requests with equal
// keys provably produce bit-identical results: the digests pin the exact
// query program and target content, threshold and kernel pin the
// scoring, and shard geometry is included so any future shard-dependent
// observable (it is result-neutral today) can never alias.
type scanKey struct {
	query     [sha256.Size]byte
	target    [sha256.Size]byte
	kind      targetKind
	threshold int
	kernel    Kernel
	shardLen  int
	// protein holds the resolved protein-search options for protein
	// kinds (zero for nucleotide scans). Threads is excluded: the scan
	// is thread-invariant, so worker counts share results.
	protein proteinKey
}

// scanResults is the process-wide scan-result cache. Disabled (capacity
// 0) by default so library users keep exact historical behavior —
// serving and benchmarking paths opt in via SetScanCacheCapacity.
var scanResults = resultcache.New[scanKey, *ScanResult](0)

// SetScanCacheCapacity bounds the process-wide scan-result cache to
// maxBytes of cached hits (estimated; see ScanCacheStats.ResidentBytes).
// Zero or negative disables caching and drops every resident result —
// the default. Safe for concurrent use with running scans.
func SetScanCacheCapacity(maxBytes int64) { scanResults.SetCapacity(maxBytes) }

// ScanCacheStats is a point-in-time view of the scan-result cache.
type ScanCacheStats struct {
	// Hits, Misses: lookups served from / absent from the cache.
	// Collapsed: requests that joined a concurrent identical scan.
	// Handoffs: in-flight scans whose initiating caller canceled while
	// other waiters remained (the scan completed for them).
	Hits, Misses, Evictions, Collapsed, Handoffs uint64
	// Entries/ResidentBytes are the current footprint; CapacityBytes is
	// the configured bound (0 = disabled).
	Entries       int
	ResidentBytes int64
	CapacityBytes int64
}

// ScanCacheSnapshot returns the scan-result cache's counters and
// footprint (also merged into Metrics.Snapshot under rcache.*).
func ScanCacheSnapshot() ScanCacheStats {
	s := scanResults.Stats()
	return ScanCacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Collapsed: s.Collapsed, Handoffs: s.Handoffs,
		Entries: s.Entries, ResidentBytes: s.ResidentBytes,
		CapacityBytes: s.CapacityBytes,
	}
}

// canonShardLen maps a requested shard length to the value the scheduler
// actually uses (sched.Plan's defaulting and 64-alignment), so "default"
// and an explicit equal value share cache entries.
func canonShardLen(n int) int {
	if n <= 0 {
		n = sched.DefaultShardLen
	}
	return (n + 63) &^ 63
}

// resolveKernel maps a kernel selection to the one that will scan a
// target of refLen — KernelAuto resolves by the crossover rule — so auto
// and an explicit equal selection share cache entries.
func resolveKernel(k Kernel, refLen int) Kernel {
	if k != KernelAuto {
		return k
	}
	if refLen >= bitParThresholdLen {
		return KernelBitParallel
	}
	return KernelScalar
}

// fromOutcome converts the cache package's outcome to the public one.
func fromOutcome(o resultcache.Outcome) CacheOutcome {
	switch o {
	case resultcache.OutcomeHit:
		return CacheHit
	case resultcache.OutcomeShared:
		return CacheShared
	}
	return CacheMiss
}

// scanThroughCache runs cold through the singleflight cache under key.
// The compute runs on the flight's own context — canceled only when
// every joined caller has left, so a canceled initiator hands the scan
// off to the remaining waiters. Results are cached only on clean
// success; an error (degraded completions included) reaches every
// waiting caller and is never retained.
func scanThroughCache(ctx context.Context, key scanKey, cold func(context.Context) (*ScanResult, error)) (*ScanResult, CacheOutcome, error) {
	res, out, err := scanResults.Do(ctx, key, func(fctx context.Context) (*ScanResult, int64, error) {
		r, err := cold(fctx)
		if err != nil {
			return r, 0, err
		}
		return r, r.sizeBytes(), nil
	})
	return res, fromOutcome(out), err
}

// cacheEligible reports whether this aligner's scans may use the result
// cache: partial mode is excluded because a degraded result must never
// answer a later request.
func (a *Aligner) cacheEligible() bool {
	return !a.partial && scanResults.Enabled()
}

// databaseKey builds this aligner's cache key for a database scan.
func (a *Aligner) databaseKey(d *Database) scanKey {
	return scanKey{
		query:     a.query.digest,
		target:    [sha256.Size]byte(d.d.Digest()),
		kind:      targetDatabase,
		threshold: a.Threshold(),
		kernel:    resolveKernel(a.mode, d.Len()),
		shardLen:  canonShardLen(a.shardLen),
	}
}

// referenceKey builds this aligner's cache key for a reference scan.
func (a *Aligner) referenceKey(ref *Reference) scanKey {
	return scanKey{
		query:     a.query.digest,
		target:    ref.contentDigest(),
		kind:      targetReference,
		threshold: a.Threshold(),
		kernel:    resolveKernel(a.mode, ref.Len()),
		shardLen:  canonShardLen(a.shardLen),
	}
}

// cachedDatabaseScan is the database-scan spine shared by Scan and the
// legacy AlignDatabase/AlignDatabaseContext wrappers. The returned
// result may be the shared cached object: callers must not mutate it.
func (a *Aligner) cachedDatabaseScan(ctx context.Context, d *Database) (*ScanResult, CacheOutcome, error) {
	if !a.cacheEligible() {
		res, err := a.executeDatabaseScan(ctx, d)
		return res, CacheBypass, err
	}
	return scanThroughCache(ctx, a.databaseKey(d), func(fctx context.Context) (*ScanResult, error) {
		return a.executeDatabaseScan(fctx, d)
	})
}

// cachedReferenceScan is the reference-scan spine shared by Scan and the
// legacy Align/AlignContext wrappers.
func (a *Aligner) cachedReferenceScan(ctx context.Context, ref *Reference) (*ScanResult, CacheOutcome, error) {
	if !a.cacheEligible() {
		res, err := a.executeReferenceScan(ctx, ref)
		return res, CacheBypass, err
	}
	return scanThroughCache(ctx, a.referenceKey(ref), func(fctx context.Context) (*ScanResult, error) {
		return a.executeReferenceScan(fctx, ref)
	})
}

// scanPlan is a validated, normalized ScanRequest: the resolved
// threshold plus everything needed to build the cache key without
// constructing an aligner (so cached hits never pay aligner setup).
type scanPlan struct {
	req       ScanRequest
	threshold int
	targetLen int
	// protein is the resolved pipeline option set for ProteinSearch
	// requests (nil for nucleotide scans).
	protein *tblastn.Options
}

// plan validates the request field by field (errors name the field and
// match ErrBadQuery/ErrBadOption) and resolves the effective threshold.
func (req ScanRequest) plan() (*scanPlan, error) {
	if req.Query == nil {
		return nil, badQueryf("fabp: ScanRequest.Query is nil")
	}
	if (req.Database == nil) == (req.Reference == nil) {
		return nil, badOptionf("fabp: ScanRequest needs exactly one target: set Database or Reference")
	}
	if req.ProteinSearch != nil {
		return req.planProtein()
	}
	switch req.Kernel {
	case KernelAuto, KernelScalar, KernelBitParallel:
	default:
		return nil, badOptionf("fabp: ScanRequest.Kernel %v unknown", req.Kernel)
	}
	if req.ShardLen < 0 {
		return nil, badOptionf("fabp: ScanRequest.ShardLen %d is negative", req.ShardLen)
	}
	if req.MaxHits < 0 {
		return nil, badOptionf("fabp: ScanRequest.MaxHits %d is negative", req.MaxHits)
	}
	if err := req.RetryPolicy.validate(); err != nil {
		return nil, badOption(err)
	}
	if req.Threshold != nil && req.ThresholdFrac != 0 {
		return nil, badOptionf("fabp: ScanRequest.Threshold and ScanRequest.ThresholdFrac conflict: set exactly one")
	}
	var threshold int
	switch {
	case req.Threshold != nil:
		threshold = *req.Threshold
		if threshold < 0 || threshold > req.Query.MaxScore() {
			return nil, badOptionf("fabp: ScanRequest.Threshold %d outside [0, %d]", threshold, req.Query.MaxScore())
		}
	default:
		frac := req.ThresholdFrac
		if frac == 0 {
			frac = 0.8
		}
		if frac < 0 || frac > 1 || frac != frac {
			return nil, badOptionf("fabp: ScanRequest.ThresholdFrac %v outside (0,1]", req.ThresholdFrac)
		}
		t, err := core.ThresholdFromFraction(frac, req.Query.MaxScore())
		if err != nil {
			return nil, badOption(err)
		}
		threshold = t
	}
	p := &scanPlan{req: req, threshold: threshold}
	if req.Database != nil {
		p.targetLen = req.Database.Len()
	} else {
		p.targetLen = req.Reference.Len()
	}
	return p, nil
}

// planProtein validates and normalizes a protein-search request: the
// nucleotide-only knobs must stay unset (their semantics — window-score
// thresholds, bit-parallel kernels, shard retries — do not transfer),
// and the pipeline options resolve once, here, so the cache key and the
// cold path agree on the exact option set.
func (req ScanRequest) planProtein() (*scanPlan, error) {
	if req.Threshold != nil || req.ThresholdFrac != 0 {
		return nil, badOptionf("fabp: ScanRequest.Threshold/ThresholdFrac do not apply to protein search: use ProteinSearch.MinScore and MaxEValue")
	}
	if req.Kernel != KernelAuto {
		return nil, badOptionf("fabp: ScanRequest.Kernel does not apply to protein search")
	}
	if req.ShardLen != 0 {
		return nil, badOptionf("fabp: ScanRequest.ShardLen does not apply to protein search")
	}
	if req.RetryPolicy != (RetryPolicy{}) {
		return nil, badOptionf("fabp: ScanRequest.RetryPolicy does not apply to protein search")
	}
	if req.Partial {
		return nil, badOptionf("fabp: ScanRequest.Partial does not apply to protein search")
	}
	if req.MaxHits < 0 {
		return nil, badOptionf("fabp: ScanRequest.MaxHits %d is negative", req.MaxHits)
	}
	resolved, err := req.ProteinSearch.tblastnOptions().Resolve()
	if err != nil {
		return nil, badOption(err)
	}
	p := &scanPlan{req: req, protein: &resolved}
	if req.Database != nil {
		p.targetLen = req.Database.Len()
	} else {
		p.targetLen = req.Reference.Len()
	}
	return p, nil
}

// newAligner builds the plan's aligner — only on the cold path; cache
// hits never reach here.
func (p *scanPlan) newAligner() (*Aligner, error) {
	opts := []AlignerOption{WithThreshold(p.threshold), WithKernelType(p.req.Kernel)}
	if p.req.ShardLen > 0 {
		opts = append(opts, WithShardLen(p.req.ShardLen))
	}
	if p.req.RetryPolicy.enabled() {
		opts = append(opts, WithRetryPolicy(p.req.RetryPolicy))
	}
	if p.req.Partial {
		opts = append(opts, WithPartialResults())
	}
	return NewAligner(p.req.Query, opts...)
}

// key builds the plan's cache key without an aligner.
func (p *scanPlan) key() scanKey {
	if p.protein != nil {
		k := scanKey{query: p.req.Query.digest, protein: proteinKeyOf(p.protein)}
		if p.req.Database != nil {
			k.target = [sha256.Size]byte(p.req.Database.d.Digest())
			k.kind = targetProteinDatabase
		} else {
			k.target = p.req.Reference.contentDigest()
			k.kind = targetProteinReference
		}
		return k
	}
	k := scanKey{
		query:     p.req.Query.digest,
		threshold: p.threshold,
		kernel:    resolveKernel(p.req.Kernel, p.targetLen),
		shardLen:  canonShardLen(p.req.ShardLen),
	}
	if p.req.Database != nil {
		k.target = [sha256.Size]byte(p.req.Database.d.Digest())
		k.kind = targetDatabase
	} else {
		k.target = p.req.Reference.contentDigest()
		k.kind = targetReference
	}
	return k
}

// bypass reports whether this plan must scan uncached.
func (p *scanPlan) bypass() bool {
	return p.req.NoCache || p.req.Partial || !scanResults.Enabled()
}

// cold runs the plan's scan uncached under ctx.
func (p *scanPlan) cold(ctx context.Context) (*ScanResult, error) {
	if p.protein != nil {
		return p.executeProteinSearch(ctx)
	}
	a, err := p.newAligner()
	if err != nil {
		return nil, err
	}
	if p.req.Database != nil {
		return a.executeDatabaseScan(ctx, p.req.Database)
	}
	return a.executeReferenceScan(ctx, p.req.Reference)
}

// Scan is the unified alignment entrypoint: one typed request/response
// pair covering what the legacy Align/AlignContext/AlignDatabase/
// AlignDatabaseContext matrix spread across method choice and options —
// hits, degraded ranges, cache provenance and timing in one result.
//
// All scans share one spine: requests are validated field by field
// (errors match ErrBadQuery/ErrBadOption via errors.Is), repeats are
// answered from the content-addressed result cache when it is enabled
// (SetScanCacheCapacity), and N concurrent identical requests collapse
// into exactly one scan — each caller still honoring its own ctx, with a
// canceled initiator handing the in-flight scan off to the remaining
// waiters. Partial-mode requests return surviving hits with Degraded set
// alongside a *PartialError, and are never cached. The returned result
// is the caller's own copy.
func Scan(ctx context.Context, req ScanRequest) (*ScanResult, error) {
	t0 := time.Now()
	p, err := req.plan()
	if err != nil {
		return nil, err
	}
	var res *ScanResult
	outcome := CacheBypass
	if p.bypass() {
		res, err = p.cold(ctx)
	} else {
		res, outcome, err = scanThroughCache(ctx, p.key(), p.cold)
	}
	if res == nil {
		return nil, err
	}
	final := res.clipped(p.req.MaxHits)
	final.Cache = outcome
	final.Elapsed = time.Since(t0)
	return final, err
}

// CachedScan probes the result cache for the request without scanning,
// joining an in-flight scan, or queueing: ok is false on anything but a
// resident hit. It is the server's pre-admission fast path — a hit
// bypasses admission control entirely. An invalid or cache-ineligible
// request reports false (Scan will surface the validation error).
func CachedScan(req ScanRequest) (*ScanResult, bool) {
	t0 := time.Now()
	p, err := req.plan()
	if err != nil || p.bypass() {
		return nil, false
	}
	res, ok := scanResults.Get(p.key())
	if !ok {
		return nil, false
	}
	final := res.clipped(p.req.MaxHits)
	final.Cache = CacheHit
	final.Elapsed = time.Since(t0)
	return final, true
}
