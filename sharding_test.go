package fabp

import (
	"errors"
	"math"
	"strings"
	"testing"

	"fabp/internal/bitpar"
)

// buildShardDB builds a multi-record database of the given total size with
// planted genes (large enough for the bit-parallel auto path when asked).
func buildShardDB(t *testing.T, seed int64, size int) (*Database, []PlantedGene) {
	t.Helper()
	ref, genes := SyntheticReference(seed, size, 6, 50)
	decoy, _ := SyntheticReference(seed+1, 3_000, 0, 0)
	var fasta strings.Builder
	fasta.WriteString(">main primary\n")
	fasta.WriteString(ref.String())
	fasta.WriteString("\n>tail decoy\n")
	fasta.WriteString(decoy.String())
	fasta.WriteString("\n")
	d, err := BuildDatabase(strings.NewReader(fasta.String()))
	if err != nil {
		t.Fatal(err)
	}
	return d, genes
}

func sameRecordHits(t *testing.T, label string, want, got []RecordHit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedAlignDatabaseGolden proves the sharded scan bit-exact against
// the seed serial path (scan the whole concatenated sequence with the
// kernel, then attribute) for both kernels, with shards small enough to
// force many tiles and ragged tails.
func TestShardedAlignDatabaseGolden(t *testing.T) {
	for _, tc := range []struct {
		name   string
		size   int
		kernel Kernel
	}{
		{"bitparallel-large", 90_000, KernelBitParallel},
		{"scalar-small", 20_000, KernelScalar},
		{"auto-large", 70_000, KernelAuto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, genes := buildShardDB(t, 400+int64(tc.size), tc.size)
			q, err := NewQuery(genes[2].Protein)
			if err != nil {
				t.Fatal(err)
			}
			a, err := NewAligner(q, WithThresholdFraction(0.8), WithKernelType(tc.kernel),
				WithShardLen(4096))
			if err != nil {
				t.Fatal(err)
			}
			// Seed serial path: one full-sequence kernel scan + attribution.
			serial := toRecordHits(d.d.Attribute(a.alignSeq(d.d.Seq()), q.Elements()))
			sharded := a.AlignDatabase(d)
			sameRecordHits(t, tc.name, serial, sharded)
			found := false
			for _, h := range sharded {
				if h.RecordID == "main" && h.Offset == genes[2].Pos {
					found = true
				}
			}
			if !found {
				t.Error("planted gene lost by sharded scan")
			}
		})
	}
}

// TestAlignDatabaseStream: the streaming variant must deliver exactly
// AlignDatabase's hits, in order, and honor early-stop errors.
func TestAlignDatabaseStream(t *testing.T) {
	d, genes := buildShardDB(t, 901, 80_000)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithShardLen(2048))
	if err != nil {
		t.Fatal(err)
	}
	want := a.AlignDatabase(d)
	var got []RecordHit
	if err := a.AlignDatabaseStream(d, func(h RecordHit) error {
		got = append(got, h)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sameRecordHits(t, "stream", want, got)
	if len(want) == 0 {
		t.Fatal("workload produced no hits; test is vacuous")
	}

	stop := errors.New("enough")
	n := 0
	err = a.AlignDatabaseStream(d, func(RecordHit) error {
		n++
		if n == 1 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("early-stop error lost: %v", err)
	}
	if n != 1 {
		t.Errorf("emit called %d times after stop", n)
	}
}

// TestAlignStreamHonorsKernel is the regression for the silent-scalar bug:
// a streamed scan must produce exactly Align's hits under every kernel
// mode, including across chunk boundaries.
func TestAlignStreamHonorsKernel(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096 // force many chunk-boundary carries

	ref, genes := SyntheticReference(77, 30_000, 3, 40)
	q, err := NewQuery(genes[1].Protein)
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelScalar, KernelBitParallel, KernelAuto} {
		a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}
		want := a.Align(ref)
		if len(want) == 0 {
			t.Fatal("no hits; test is vacuous")
		}
		var got []Hit
		if err := a.AlignStream(strings.NewReader(ref.String()), func(h Hit) error {
			got = append(got, h)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("kernel %s: streamed %d hits, Align %d", kernel, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernel %s: hit %d = %+v, want %+v", kernel, i, got[i], want[i])
			}
		}
	}
}

// TestAlignBatchShardedGolden: the pooled (query × shard) batch must be
// bit-exact with the retained serial batch path and with per-query
// aligners.
func TestAlignBatchShardedGolden(t *testing.T) {
	ref, genes := SyntheticReference(555, 80_000, 6, 45)
	var queries []*Query
	for _, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	sharded, err := AlignBatch(queries, ref, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := alignBatchBitparSerial(queries, ref, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != len(serial) {
		t.Fatalf("query count %d vs %d", len(sharded), len(serial))
	}
	for qi := range serial {
		if len(sharded[qi]) != len(serial[qi]) {
			t.Fatalf("query %d: %d hits vs serial %d", qi, len(sharded[qi]), len(serial[qi]))
		}
		for j := range serial[qi] {
			if sharded[qi][j] != serial[qi][j] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, j, sharded[qi][j], serial[qi][j])
			}
		}
	}
	// And against a single-query aligner.
	a, err := NewAligner(queries[0], WithThresholdFraction(0.8), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	single := a.Align(ref)
	if len(single) != len(sharded[0]) {
		t.Fatalf("single-query: %d hits vs batch %d", len(single), len(sharded[0]))
	}
}

// TestBatchValidationNamesEveryBadQuery: a batch with several invalid
// queries must fail up front naming all of them, for AlignBatch and
// Session.RunBatch alike.
func TestBatchValidationNamesEveryBadQuery(t *testing.T) {
	ref, genes := SyntheticReference(606, 70_000, 2, 40)
	good, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*Query{good, nil, good, nil}
	_, err = AlignBatch(queries, ref, 0.8)
	if err == nil {
		t.Fatal("batch with nil queries must fail")
	}
	if !strings.Contains(err.Error(), "1") || !strings.Contains(err.Error(), "3") {
		t.Errorf("error must name indices 1 and 3: %v", err)
	}

	d, _ := buildShardDB(t, 707, 20_000)
	s, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunBatch(queries, 0.8); err == nil ||
		!strings.Contains(err.Error(), "1") || !strings.Contains(err.Error(), "3") {
		t.Errorf("session batch must name indices 1 and 3: %v", err)
	}

	// A bad fraction fails the whole batch before any scanning.
	if _, err := AlignBatch([]*Query{good}, ref, 1.5); err == nil {
		t.Error("fraction above 1 must fail")
	}
	if _, err := AlignBatch([]*Query{good}, ref, 0); err == nil {
		t.Error("zero fraction must fail")
	}
}

// TestThresholdFractionBoundaries pins the rounding fix: fractions whose
// float product lands just below an integer must round to it, and invalid
// fractions fail at option time.
func TestThresholdFractionBoundaries(t *testing.T) {
	q, err := NewQuery("MKWVTFISLL") // 10 residues, MaxScore 30
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		frac float64
		want int
	}{
		{0.7, 21},  // 0.7*30 = 20.999999999999996 — truncation gave 20
		{0.9, 27},  // representable product
		{1.0, 30},  // full score stays in range
		{0.01, 0},  // rounds down to zero, still valid
		{0.5, 15},  // exact
		{0.95, 29}, // 28.5 rounds half away from zero
	} {
		a, err := NewAligner(q, WithThresholdFraction(tc.frac))
		if err != nil {
			t.Fatalf("frac %v: %v", tc.frac, err)
		}
		if a.Threshold() != tc.want {
			t.Errorf("frac %v: threshold %d, want %d", tc.frac, a.Threshold(), tc.want)
		}
	}
	for _, bad := range []float64{0, -0.2, 1.0001, 7, math.NaN()} {
		if _, err := NewAligner(q, WithThresholdFraction(bad)); err == nil {
			t.Errorf("fraction %v must fail", bad)
		}
	}
}

// TestSessionReusesCachedPlanes: repeated RunBatch calls against one
// resident database must reuse one packed-plane image.
func TestSessionReusesCachedPlanes(t *testing.T) {
	d, genes := buildShardDB(t, 808, 70_000)
	s, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	var queries []*Query
	for _, g := range genes[:3] {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	s0 := bitpar.SharedPlanes().Stats()
	for round := 0; round < 3; round++ {
		perQuery, _, err := s.RunBatch(queries, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if len(perQuery) != 3 {
			t.Fatal("batch shape")
		}
	}
	s1 := bitpar.SharedPlanes().Stats()
	if s1.Misses-s0.Misses > 1 {
		t.Errorf("database repacked %d times across 3 batches", s1.Misses-s0.Misses)
	}
	// The fused batch path looks the planes up once per batch (not once per
	// query): 3 batches → ≤1 pack plus ≥2 cache hits.
	if s1.Hits-s0.Hits < 2 {
		t.Errorf("expected ≥2 cache hits (3 fused batch scans, ≤1 pack), got %d", s1.Hits-s0.Hits)
	}
}
