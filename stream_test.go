package fabp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fabp/internal/faultinject"
)

// faultReader yields its payload and then errSentinel — on the same Read
// call as the final bytes, exercising the (n > 0, err != nil) contract.
type faultReader struct {
	data string
	err  error
	off  int
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off >= len(r.data) {
		return n, r.err
	}
	return n, nil
}

// TestAlignStreamReaderErrorFlushesCompleteWindows: a mid-stream reader
// failure must not discard the windows already complete in the current
// chunk — the emitted hits are exactly the hits of the prefix read so
// far, and only then does the wrapped error surface.
func TestAlignStreamReaderErrorFlushesCompleteWindows(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096 // several carry boundaries before the fault

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	// Query for the first planted gene (slot [0, 10k)), so cutting the
	// stream at 17k leaves its hit inside the delivered prefix.
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk on fire")

	for _, kernel := range []Kernel{KernelScalar, KernelBitParallel} {
		a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}
		// The stream dies partway through: expected hits are the hits of
		// the delivered prefix.
		cut := 17_000
		prefix, err := NewReference(ref.String()[:cut])
		if err != nil {
			t.Fatal(err)
		}
		want := a.Align(prefix)
		if len(want) == 0 {
			t.Fatal("no hits in prefix; test is vacuous")
		}

		var got []Hit
		streamErr := a.AlignStream(
			&faultReader{data: ref.String()[:cut], err: sentinel},
			func(h Hit) error { got = append(got, h); return nil })
		if !errors.Is(streamErr, sentinel) {
			t.Fatalf("kernel %s: error %v does not wrap the reader's", kernel, streamErr)
		}
		if wantPos := fmt.Sprintf("position %d", cut); !strings.Contains(streamErr.Error(), wantPos) {
			t.Errorf("kernel %s: error %q does not carry %q", kernel, streamErr, wantPos)
		}
		if len(got) != len(want) {
			t.Fatalf("kernel %s: %d hits before the fault, want %d (flush lost windows)",
				kernel, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernel %s: hit %d = %+v, want %+v", kernel, i, got[i], want[i])
			}
		}
	}
}

// TestChaosStreamInjectedErrorFlushesCompleteWindows extends the
// flush-before-error contract to injected faults: a stream.read fault
// fired mid-stream (without retries) must behave exactly like a real
// reader failure — every window complete before the fault is emitted,
// then the error surfaces wrapped with the global stream position.
func TestChaosStreamInjectedErrorFlushesCompleteWindows(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	// The 5th read faults, so exactly 4 full chunks (16384 letters) are
	// delivered — past gene 0's slot [0, 10k), keeping its hit in the
	// prefix. The injection hooks live on the chunked (bitparallel) path.
	const cut = 4 * 4096
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := NewReference(ref.String()[:cut])
	if err != nil {
		t.Fatal(err)
	}
	want := a.Align(prefix)
	if len(want) == 0 {
		t.Fatal("no hits in prefix; test is vacuous")
	}

	faultinject.Enable(1, faultinject.Plan{faultinject.SiteStreamRead: {Nth: 5, Fail: true}})
	defer faultinject.Disable()
	var got []Hit
	streamErr := a.AlignStream(strings.NewReader(ref.String()),
		func(h Hit) error { got = append(got, h); return nil })
	if !errors.Is(streamErr, faultinject.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", streamErr)
	}
	if wantPos := fmt.Sprintf("position %d", cut); !strings.Contains(streamErr.Error(), wantPos) {
		t.Errorf("error %q does not carry %q", streamErr, wantPos)
	}
	if len(got) != len(want) {
		t.Fatalf("%d hits before the fault, want %d (flush lost windows)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestChaosStreamReadRetryRecoversFullScan: the same injected fault under
// a retry budget is absorbed — the re-read delivers the chunk and the
// stream completes byte-identical to a fault-free scan, with the retry
// counted.
func TestChaosStreamReadRetryRecoversFullScan(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel),
		WithRetryPolicy(RetryPolicy{MaxRetries: 2, Base: 10 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	want := a.Align(ref)
	if len(want) == 0 {
		t.Fatal("no hits; test is vacuous")
	}

	before := DefaultMetrics().Snapshot().Counters["scan.retries"]
	faultinject.Enable(1, faultinject.Plan{faultinject.SiteStreamRead: {Nth: 5, Fail: true}})
	defer faultinject.Disable()
	var got []Hit
	if err := a.AlignStream(strings.NewReader(ref.String()),
		func(h Hit) error { got = append(got, h); return nil }); err != nil {
		t.Fatalf("retried stream failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d hits after retry, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if after := DefaultMetrics().Snapshot().Counters["scan.retries"]; after != before+1 {
		t.Fatalf("scan.retries %d -> %d, want exactly one retry", before, after)
	}
}

// TestAlignStreamPooledPlanesNoAliasing: concurrent streams draw builders
// from one shared pool and reuse plane buffers across chunks; every
// stream's emitted hits must still match its own in-memory oracle exactly
// — reuse may never leak one chunk's (or one stream's) plane words into
// another's results. Run under -race this also proves no shard goroutine
// reads a builder being mutated.
func TestAlignStreamPooledPlanesNoAliasing(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 2048 // many carries per stream, heavy pool churn

	const streams = 8
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Distinct reference and query per stream: cross-contamination
			// between pooled buffers would show up as oracle mismatches.
			ref, genes := SyntheticReference(int64(100+s), 20_000, 2, 30)
			q, err := NewQuery(genes[s%2].Protein)
			if err != nil {
				errs[s] = err
				return
			}
			a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
			if err != nil {
				errs[s] = err
				return
			}
			want := a.Align(ref)
			if len(want) == 0 {
				errs[s] = fmt.Errorf("stream %d: no hits; test is vacuous", s)
				return
			}
			for round := 0; round < 4; round++ {
				var got []Hit
				if err := a.AlignStream(strings.NewReader(ref.String()),
					func(h Hit) error { got = append(got, h); return nil }); err != nil {
					errs[s] = err
					return
				}
				if len(got) != len(want) {
					errs[s] = fmt.Errorf("stream %d round %d: %d hits, want %d", s, round, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs[s] = fmt.Errorf("stream %d round %d: hit %d = %+v, want %+v",
							s, round, i, got[i], want[i])
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlignStreamSteadyStateZeroChunkAllocs is the pooled-packing
// contract at the stream level: once the builder pool is warm, scanning
// more chunks must not allocate more — the per-run allocation count of a
// 64-chunk stream equals that of a 4-chunk stream over the same letters
// (both pay the same per-call fixed costs: read buffer, decode buffer,
// reader).
func TestAlignStreamSteadyStateZeroChunkAllocs(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)

	ref, _ := SyntheticReference(31, 64_000, 1, 30)
	refStr := ref.String()
	// A full-score threshold over random sequence: zero hits, so the only
	// allocations are the stream's own.
	q, err := NewQuery("MWKHQTEDLVRSNAGYFCIP")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(1.0), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	scanWith := func(chunk int) float64 {
		streamChunkLetters = chunk
		run := func() {
			if err := a.AlignStream(strings.NewReader(refStr), func(h Hit) error {
				t.Errorf("unexpected hit %+v", h)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the builder pool to this high-water mark
		return testing.AllocsPerRun(20, run)
	}
	few := scanWith(16384) // 4 chunks
	many := scanWith(1024) // 63 chunks
	if many > few+1 {
		t.Fatalf("63-chunk stream allocates %.1f/op vs 4-chunk %.1f/op: chunks are not allocation-free", many, few)
	}
}

// TestAlignBatchStreamMatchesAlignBatch: the fused streaming batch over a
// chunked reader must reproduce the in-memory fused batch hit for hit,
// per query, including mixed query lengths (per-query window clamping at
// the final flush).
func TestAlignBatchStreamMatchesAlignBatch(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096

	ref, genes := SyntheticReference(33, 50_000, 3, 40)
	queries := make([]*Query, 0, 4)
	for _, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	// A shorter query so MaxElems != MinElems exercises the tail flush.
	qs, err := NewQuery(genes[0].Protein[:12])
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, qs)

	want, err := AlignBatch(queries, ref, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, hits := range want {
		if len(hits) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatal("batch oracle too sparse; test is vacuous")
	}

	got := make([][]Hit, len(queries))
	if err := AlignBatchStream(queries, strings.NewReader(ref.String()), 0.7,
		func(qi int, h Hit) error { got[qi] = append(got[qi], h); return nil }); err != nil {
		t.Fatal(err)
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d hits, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i] != want[qi][i] {
				t.Fatalf("query %d hit %d = %+v, want %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}

	// Streaming telemetry must see the batch: chunks processed and plane
	// words packed.
	snap := DefaultMetrics().Snapshot()
	if snap.Counters["stream.chunks.processed"] == 0 {
		t.Error("stream.chunks.processed is 0 after AlignBatchStream")
	}
	if snap.Counters["stream.planes.packed_words"] == 0 {
		t.Error("stream.planes.packed_words is 0 after AlignBatchStream")
	}
}

// TestAlignBatchStreamValidation pins the edge contracts: an empty batch
// fails up front, an emit error stops the scan, and cancellation surfaces
// ctx.Err().
func TestAlignBatchStreamValidation(t *testing.T) {
	if err := AlignBatchStream(nil, strings.NewReader("ACGU"), 0.8,
		func(int, Hit) error { return nil }); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch: err %v", err)
	}

	ref, genes := SyntheticReference(35, 20_000, 2, 30)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	stop := errors.New("stop")
	err = AlignBatchStream([]*Query{q}, strings.NewReader(ref.String()), 0.7,
		func(int, Hit) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("emit error: got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = AlignBatchStreamContext(ctx, []*Query{q}, strings.NewReader(ref.String()), 0.7,
		func(int, Hit) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: got %v", err)
	}
}

// TestAlignStreamReaderErrorEmitErrorWins: if the pre-error flush's emit
// callback itself fails, that error surfaces (the reader error would
// otherwise mask where the consumer stopped).
func TestAlignStreamReaderErrorEmitErrorWins(t *testing.T) {
	ref, genes := SyntheticReference(22, 20_000, 2, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	emitErr := errors.New("consumer full")
	streamErr := a.AlignStream(
		&faultReader{data: ref.String(), err: errors.New("read failed")},
		func(Hit) error { return emitErr })
	if !errors.Is(streamErr, emitErr) {
		t.Fatalf("error %v, want the emit callback's", streamErr)
	}
}
