package fabp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fabp/internal/faultinject"
)

// faultReader yields its payload and then errSentinel — on the same Read
// call as the final bytes, exercising the (n > 0, err != nil) contract.
type faultReader struct {
	data string
	err  error
	off  int
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off >= len(r.data) {
		return n, r.err
	}
	return n, nil
}

// TestAlignStreamReaderErrorFlushesCompleteWindows: a mid-stream reader
// failure must not discard the windows already complete in the current
// chunk — the emitted hits are exactly the hits of the prefix read so
// far, and only then does the wrapped error surface.
func TestAlignStreamReaderErrorFlushesCompleteWindows(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096 // several carry boundaries before the fault

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	// Query for the first planted gene (slot [0, 10k)), so cutting the
	// stream at 17k leaves its hit inside the delivered prefix.
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk on fire")

	for _, kernel := range []Kernel{KernelScalar, KernelBitParallel} {
		a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}
		// The stream dies partway through: expected hits are the hits of
		// the delivered prefix.
		cut := 17_000
		prefix, err := NewReference(ref.String()[:cut])
		if err != nil {
			t.Fatal(err)
		}
		want := a.Align(prefix)
		if len(want) == 0 {
			t.Fatal("no hits in prefix; test is vacuous")
		}

		var got []Hit
		streamErr := a.AlignStream(
			&faultReader{data: ref.String()[:cut], err: sentinel},
			func(h Hit) error { got = append(got, h); return nil })
		if !errors.Is(streamErr, sentinel) {
			t.Fatalf("kernel %s: error %v does not wrap the reader's", kernel, streamErr)
		}
		if wantPos := fmt.Sprintf("position %d", cut); !strings.Contains(streamErr.Error(), wantPos) {
			t.Errorf("kernel %s: error %q does not carry %q", kernel, streamErr, wantPos)
		}
		if len(got) != len(want) {
			t.Fatalf("kernel %s: %d hits before the fault, want %d (flush lost windows)",
				kernel, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernel %s: hit %d = %+v, want %+v", kernel, i, got[i], want[i])
			}
		}
	}
}

// TestChaosStreamInjectedErrorFlushesCompleteWindows extends the
// flush-before-error contract to injected faults: a stream.read fault
// fired mid-stream (without retries) must behave exactly like a real
// reader failure — every window complete before the fault is emitted,
// then the error surfaces wrapped with the global stream position.
func TestChaosStreamInjectedErrorFlushesCompleteWindows(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	// The 5th read faults, so exactly 4 full chunks (16384 letters) are
	// delivered — past gene 0's slot [0, 10k), keeping its hit in the
	// prefix. The injection hooks live on the chunked (bitparallel) path.
	const cut = 4 * 4096
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := NewReference(ref.String()[:cut])
	if err != nil {
		t.Fatal(err)
	}
	want := a.Align(prefix)
	if len(want) == 0 {
		t.Fatal("no hits in prefix; test is vacuous")
	}

	faultinject.Enable(1, faultinject.Plan{faultinject.SiteStreamRead: {Nth: 5, Fail: true}})
	defer faultinject.Disable()
	var got []Hit
	streamErr := a.AlignStream(strings.NewReader(ref.String()),
		func(h Hit) error { got = append(got, h); return nil })
	if !errors.Is(streamErr, faultinject.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", streamErr)
	}
	if wantPos := fmt.Sprintf("position %d", cut); !strings.Contains(streamErr.Error(), wantPos) {
		t.Errorf("error %q does not carry %q", streamErr, wantPos)
	}
	if len(got) != len(want) {
		t.Fatalf("%d hits before the fault, want %d (flush lost windows)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestChaosStreamReadRetryRecoversFullScan: the same injected fault under
// a retry budget is absorbed — the re-read delivers the chunk and the
// stream completes byte-identical to a fault-free scan, with the retry
// counted.
func TestChaosStreamReadRetryRecoversFullScan(t *testing.T) {
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = 4096

	ref, genes := SyntheticReference(21, 30_000, 3, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel),
		WithRetryPolicy(RetryPolicy{MaxRetries: 2, Base: 10 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	want := a.Align(ref)
	if len(want) == 0 {
		t.Fatal("no hits; test is vacuous")
	}

	before := DefaultMetrics().Snapshot().Counters["scan.retries"]
	faultinject.Enable(1, faultinject.Plan{faultinject.SiteStreamRead: {Nth: 5, Fail: true}})
	defer faultinject.Disable()
	var got []Hit
	if err := a.AlignStream(strings.NewReader(ref.String()),
		func(h Hit) error { got = append(got, h); return nil }); err != nil {
		t.Fatalf("retried stream failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d hits after retry, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if after := DefaultMetrics().Snapshot().Counters["scan.retries"]; after != before+1 {
		t.Fatalf("scan.retries %d -> %d, want exactly one retry", before, after)
	}
}

// TestAlignStreamReaderErrorEmitErrorWins: if the pre-error flush's emit
// callback itself fails, that error surfaces (the reader error would
// otherwise mask where the consumer stopped).
func TestAlignStreamReaderErrorEmitErrorWins(t *testing.T) {
	ref, genes := SyntheticReference(22, 20_000, 2, 40)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAligner(q, WithThresholdFraction(0.7), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	emitErr := errors.New("consumer full")
	streamErr := a.AlignStream(
		&faultReader{data: ref.String(), err: errors.New("read failed")},
		func(Hit) error { return emitErr })
	if !errors.Is(streamErr, emitErr) {
		t.Fatalf("error %v, want the emit callback's", streamErr)
	}
}
