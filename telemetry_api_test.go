package fabp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestOptionValidationBoundaries pins the documented validation rules:
// negative parallelism and shard lengths are errors (zero means default),
// and WithTelemetry rejects nil collectors.
func TestOptionValidationBoundaries(t *testing.T) {
	q, err := NewQuery("MKLV")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		opt     AlignerOption
		wantErr bool
	}{
		{"parallelism -1", WithParallelism(-1), true},
		{"parallelism 0 (default)", WithParallelism(0), false},
		{"parallelism 1", WithParallelism(1), false},
		{"shard len -5", WithShardLen(-5), true},
		{"shard len 0 (default)", WithShardLen(0), false},
		{"shard len 64", WithShardLen(64), false},
		{"nil telemetry", WithTelemetry(nil), true},
		{"private telemetry", WithTelemetry(NewMetrics()), false},
	}
	for _, tc := range cases {
		_, err := NewAligner(q, tc.opt)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestWithTelemetryPrivateCollector runs a sharded database scan on an
// aligner with a private collector and checks that the books balance:
// shards run == shards planned == pool tasks completed, hits counted
// exactly, one plane lookup per scan matching the shared cache's delta,
// and nothing leaked into the process-wide collector.
func TestWithTelemetryPrivateCollector(t *testing.T) {
	ref, genes := SyntheticReference(11, 6000, 2, 20)
	dbase, err := DatabaseFromReference("tm", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	a, err := NewAligner(q, WithTelemetry(m), WithKernelType(KernelBitParallel),
		WithShardLen(64), WithParallelism(2), WithThresholdFraction(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics() != m {
		t.Fatal("Aligner.Metrics() must return the WithTelemetry collector")
	}

	d0 := DefaultMetrics().Snapshot()
	hits := a.AlignDatabase(dbase)
	if len(hits) == 0 {
		t.Fatal("planted gene not found")
	}
	d1 := DefaultMetrics().Snapshot()
	s := m.Snapshot()

	if got := s.Counters["align.queries.started"]; got != 1 {
		t.Errorf("queries started %d, want 1", got)
	}
	if got := s.Counters["align.hits.emitted"]; got != uint64(len(hits)) {
		t.Errorf("hits emitted %d, want %d", got, len(hits))
	}
	planned, run := s.Counters["scan.shards.planned"], s.Counters["scan.shards.run"]
	if planned < 2 || run != planned {
		t.Errorf("shards run %d != planned %d (want several)", run, planned)
	}
	if got := s.Counters["pool.tasks.completed"]; got != planned {
		t.Errorf("pool completed %d tasks, want %d (one per shard)", got, planned)
	}
	if got := s.Counters["scan.plane.lookups"]; got != 1 {
		t.Errorf("plane lookups %d, want 1", got)
	}
	cacheDelta := (d1.Counters["cache.hits"] + d1.Counters["cache.misses"]) -
		(d0.Counters["cache.hits"] + d0.Counters["cache.misses"])
	if cacheDelta != 1 {
		t.Errorf("shared cache saw %d lookups, want 1", cacheDelta)
	}
	if got := s.Counters["align.kernel.bitparallel"]; got != 1 {
		t.Errorf("bitparallel dispatches %d, want 1", got)
	}
	if got := s.Latencies["align.latency"].Count; got != 1 {
		t.Errorf("align latency count %d, want 1", got)
	}
	if got := s.Latencies["scan.shard.latency"].Count; got != planned {
		t.Errorf("shard latency count %d, want %d", got, planned)
	}
	for _, g := range []string{"pool.tasks.queued", "pool.tasks.running", "pool.merge.backlog"} {
		if v := s.Gauges[g]; v != 0 {
			t.Errorf("gauge %s = %d after quiesce, want 0", g, v)
		}
	}
	// The private aligner must not have reported into the default registry.
	if d1.Counters["align.queries.started"] != d0.Counters["align.queries.started"] {
		t.Error("private aligner leaked queries into DefaultMetrics")
	}

	// The snapshot must round-trip as JSON (the expvar contract).
	var decoded MetricsSnapshot
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded.Counters["scan.shards.run"] != run {
		t.Error("JSON round-trip lost counters")
	}

	m.Reset()
	s = m.Snapshot()
	if s.Counters["align.queries.started"] != 0 || s.Latencies["align.latency"].Count != 0 {
		t.Errorf("Reset left data: %+v", s.Counters)
	}
}

// TestStreamChunkCarryCounters checks the chunk/carry beat counters of the
// streaming scan: with the chunk clamped to its minimum (m+2 letters) a
// long reference must restart at many carry boundaries, and the scan stays
// bit-exact regardless (conformance is covered by FuzzAlignConformance).
// The counters live on the chunked bit-parallel path; the scalar path
// streams through the engine's own reader.
func TestStreamChunkCarryCounters(t *testing.T) {
	ref, genes := SyntheticReference(13, 3000, 1, 10)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	a, err := NewAligner(q, WithTelemetry(m), WithKernelType(KernelBitParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer func(old int) { streamChunkLetters = old }(streamChunkLetters)
	streamChunkLetters = q.Elements() + 2

	var hits int
	if err := a.AlignStream(strings.NewReader(ref.String()), func(Hit) error {
		hits++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	chunks, carries := s.Counters["stream.chunks.processed"], s.Counters["stream.carry.restarts"]
	if carries < 10 {
		t.Errorf("carry restarts %d, want many at minimum chunk size", carries)
	}
	if chunks < carries {
		t.Errorf("chunks %d < carries %d", chunks, carries)
	}
	if got := s.Counters["align.hits.emitted"]; got != uint64(hits) {
		t.Errorf("hits emitted %d, want %d", got, hits)
	}
	if got := s.Counters["align.queries.started"]; got != 1 {
		t.Errorf("queries started %d, want 1", got)
	}
}
