package fabp

import (
	"context"
	"reflect"
	"testing"

	"fabp/internal/tblastn"
)

// checkProteinConformance is the protein-path differential oracle: the
// serial tblastn pipeline (Threads=1) defines the truth, and the Scan
// spine must reproduce it byte for byte at every thread count, frame
// count, and seeding mode. NoCache keeps every run an actual scan.
func checkProteinConformance(t *testing.T, q *Query, ref *Reference, minScore int, twoHit bool) {
	t.Helper()
	for _, frames := range []int{1, 3, 6} {
		oracle, oStats, err := tblastn.Search(q.protein, ref.seq, tblastn.Options{
			Threads: 1, Frames: frames, MinScore: minScore, TwoHit: twoHit,
		})
		if err != nil {
			t.Skip(err) // fuzzer built an unindexable query; not a conformance bug
		}
		want := hspsFromInternal(oracle)
		for _, threads := range []int{1, 3, 8} {
			res, err := Scan(context.Background(), ScanRequest{
				Query: q, Reference: ref, NoCache: true,
				ProteinSearch: &ProteinSearchOptions{
					Threads: threads, Frames: frames, MinScore: minScore, TwoHit: twoHit,
				},
			})
			if err != nil {
				t.Fatalf("frames=%d threads=%d: %v", frames, threads, err)
			}
			if !reflect.DeepEqual(res.HSPs, want) {
				t.Fatalf("frames=%d threads=%d twoHit=%v: spine diverges from serial oracle (%d vs %d HSPs)",
					frames, threads, twoHit, len(res.HSPs), len(want))
			}
			if res.ProteinStats.Extensions != oStats.Extensions || res.ProteinStats.WordHits != oStats.WordHits {
				t.Fatalf("frames=%d threads=%d twoHit=%v: stats diverge: %+v vs %+v",
					frames, threads, twoHit, *res.ProteinStats, oStats)
			}
		}
	}
}

// proteinConformanceCase derives a deterministic planted-gene workload
// from fuzz inputs.
func proteinConformanceCase(t *testing.T, seed int64, refLen uint16, geneLen, mutPct uint8) (*Query, *Reference) {
	t.Helper()
	length := 2_000 + int(refLen)*8
	gl := 12 + int(geneLen)%60
	ref, genes := SyntheticReference(seed, length, 2, gl)
	mut, _, err := MutateProtein(seed+7, genes[0].Protein, float64(mutPct%30)/100, 0)
	if err != nil {
		t.Skip(err)
	}
	q, err := NewQuery(mut)
	if err != nil {
		t.Skip(err)
	}
	return q, ref
}

// FuzzProteinConformance fuzzes the differential oracle across workload
// shapes and option corners (including the MinScoreAll sentinel).
func FuzzProteinConformance(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(10), uint8(5), uint8(0), false)
	f.Add(int64(2), uint16(4000), uint8(40), uint8(12), uint8(1), true)
	f.Add(int64(3), uint16(900), uint8(25), uint8(0), uint8(2), true)
	f.Add(int64(4), uint16(6000), uint8(55), uint8(20), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, refLen uint16, geneLen, mutPct, scoreSel uint8, twoHit bool) {
		q, ref := proteinConformanceCase(t, seed, refLen, geneLen, mutPct)
		minScore := []int{0, MinScoreAll, 40, 60}[int(scoreSel)%4]
		checkProteinConformance(t, q, ref, minScore, twoHit)
	})
}

// TestProteinConformanceRandomTrials runs the oracle over fixed trials in
// a plain `go test` (the CI -race conformance step runs this).
func TestProteinConformanceRandomTrials(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		q, ref := proteinConformanceCase(t, trial, uint16(1500*trial+700), uint8(15+7*trial), uint8(3*trial))
		checkProteinConformance(t, q, ref, 0, trial%2 == 0)
		checkProteinConformance(t, q, ref, MinScoreAll, trial%2 == 1)
	}
}
