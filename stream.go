package fabp

import (
	"context"
	"fmt"
	"io"
	"time"

	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/faultinject"
	"fabp/internal/retry"
	"fabp/internal/sched"
)

// streamChunkLetters is the chunk size of the bounded-memory stream scan;
// a variable so tests can exercise the chunk-boundary carry cheaply.
var streamChunkLetters = 1 << 20

// scanChunks reads a nucleotide stream (raw letters, whitespace tolerated)
// in fixed-size chunks, packing each chunk ONCE into pooled bit-planes,
// carrying the last Lq−1 elements plus two elements of comparison context
// between chunks — the same cross-beat carry the hardware reference buffer
// implements and core.Engine.AlignReader mirrors — and invokes scan once
// per chunk with the packed planes and the chunk-local window-start range
// [lo, hi) that is new in this chunk. Global position = base + local
// position. The planes alias the pooled builder: scan must finish reading
// them before returning (every shard of a chunk may read them
// concurrently; the next chunk's carry reuses the buffers). scan returning
// an error stops the scan.
//
// m is the longest query's element count — it sets the carry and the
// windows complete mid-stream — and mFinal the shortest's, which bounds
// the tail windows only the final flush can deliver (m == mFinal for a
// single query). Kernels clamp per query, so the extra tail starts are
// safe for longer queries. tm records beats (chunks) processed,
// carry-boundary restarts, packed plane words and per-chunk pack latency.
//
// The context is checked before every read — the chunk boundary is the
// cancellation checkpoint — so a canceled or deadlined scan stops without
// waiting for the rest of the stream (a Read already blocked in the
// reader is not interrupted).
//
// Each read passes the stream.read fault-injection hook (keyed by chunk
// ordinal), and transient read failures — injected faults or reader
// errors exposing Temporary() — retry under rp's backoff schedule, up to
// rp.MaxRetries per chunk, counted on scan.retries. Only reads that
// returned no data retry (a short read with an error delivers its bytes
// first, exactly as io.Reader semantics require); exhausted or
// non-retryable errors surface through the flush-before-error path below.
func scanChunks(ctx context.Context, r io.Reader, m, mFinal int, tm *alignerMetrics, rp RetryPolicy, scan func(pp *bitpar.Planes, lo, hi, base int) error) error {
	chunkLetters := streamChunkLetters
	if chunkLetters < m+2 {
		chunkLetters = m + 2
	}

	bld := bitpar.GetPlaneBuilder()
	defer bld.Release()
	buf := make([]byte, chunkLetters)
	dec := make(bio.NucSeq, 0, chunkLetters)
	base := 0 // global position of the builder's element 0
	skip := 0 // window starts below this are re-carried context, already scanned

	backoff := rp.backoff()
	chunk := uint64(0) // read ordinal: the fault-hook key and jitter decorrelator
	readChunk := func() (int, error) {
		for n := 0; ; n++ {
			nRead := 0
			err := faultinject.Check(ctx, faultinject.SiteStreamRead, chunk)
			if err == nil {
				nRead, err = r.Read(buf)
			}
			if err == nil || err == io.EOF || nRead > 0 {
				return nRead, err
			}
			if n >= rp.MaxRetries || !retry.Retryable(err) || ctx.Err() != nil {
				return 0, err
			}
			tm.retries.Inc()
			if serr := retry.Sleep(ctx, backoff.Delay(n+1, chunk)); serr != nil {
				return 0, serr
			}
		}
	}

	flush := func(final bool) error {
		// Mid-stream, only windows whose full extent is present for the
		// longest query are scanned; the rest carry to the next chunk.
		n := bld.Len() - (m - 1)
		if final {
			// The tail: down to the shortest query's last valid start.
			n = bld.Len() - mFinal + 1
		}
		if n <= skip {
			return nil
		}
		tm.chunks.Inc()
		return scan(bld.Planes(), skip, n, base)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		nRead, readErr := readChunk()
		chunk++
		if nRead == 0 && readErr != nil && readErr != io.EOF {
			if cerr := ctx.Err(); cerr != nil {
				return cerr // cancellation keeps its bare, unwrapped error
			}
		}
		var perr error
		dec, _, perr = bio.AppendNucASCII(dec[:0], buf[:nRead])
		if len(dec) > 0 {
			// Pack the decoded span once; every shard and every query of
			// the chunk reads these plane words.
			w0 := bld.Words()
			tp := time.Now()
			bld.Append(dec)
			observeSince(tm.packLatency, tp)
			tm.packWords.Add(uint64(bld.Words() - w0))
		}
		if perr != nil {
			return fmt.Errorf("fabp: position %d: %w", base+bld.Len(), perr)
		}
		if bld.Len() >= chunkLetters {
			if err := flush(false); err != nil {
				return err
			}
			// Carry the unscanned tail (m-1 elements) plus 2 elements of
			// comparison context for the first carried window. The carry is
			// a word-level slide inside the pooled planes, never a repack.
			tm.carries.Inc()
			keep := m + 1
			if keep > bld.Len() {
				keep = bld.Len()
			}
			base += bld.Len() - keep
			bld.Carry(keep)
			skip = keep - (m - 1) // the context prefix, already scanned
		}
		if readErr == io.EOF {
			return flush(true)
		}
		if readErr != nil {
			// Deliver every window already complete before surfacing the
			// failure — the prefix scanned so far is valid work, exactly
			// as on EOF — and wrap the error with the global stream position
			// the way the parse path does, so the caller can resume.
			if err := flush(true); err != nil {
				return err
			}
			return fmt.Errorf("fabp: position %d: %w", base+bld.Len(), readErr)
		}
	}
}

// streamChunkHits scans one packed chunk's fresh window range with the
// aligner's bit-parallel kernel, sharding large chunks across the pool
// exactly like a database scan — every shard reads the one shared packed
// chunk. A chunk that fits one shard runs inline on the calling goroutine
// (the steady-state streaming path allocates nothing here until hits
// appear).
func (a *Aligner) streamChunkHits(ctx context.Context, pp *bitpar.Planes, lo, hi int) ([]bitpar.Hit, error) {
	if hi <= lo&^63+sched.DefaultShardLen {
		// One shard: run inline without planning — no shard slice, no
		// closure, no goroutine. This is every chunk of a default-sized
		// stream, so the steady state allocates nothing here.
		a.tm.shardsPlanned.Inc()
		ts := time.Now()
		hits := a.kernel.AlignPlanesRange(pp, lo, hi)
		observeSince(a.tm.shardLatency, ts)
		a.tm.shardsRun.Inc()
		return hits, nil
	}
	shards := sched.PlanRange(lo, hi, 0)
	a.tm.shardsPlanned.Add(uint64(len(shards)))
	return sched.GatherCtx(ctx, a.pool, len(shards), func(i int) []bitpar.Hit {
		ts := time.Now()
		hits := a.kernel.AlignPlanesRange(pp, shards[i].Lo, shards[i].Hi)
		observeSince(a.tm.shardLatency, ts)
		a.tm.shardsRun.Inc()
		return hits
	})
}

// batchChunkHits is streamChunkHits for a fused batch: one pass over the
// shared packed chunk scores every query, sharded across the process-wide
// pool with per-query hit streams merged in position order. Fused-pass and
// plane-reuse accounting matches the database batch path, so stream and
// database fusion read identically on the instrument panel.
func batchChunkHits(ctx context.Context, bk *bitpar.BatchKernel, tm *alignerMetrics, pp *bitpar.Planes, lo, hi int) ([][]bitpar.Hit, error) {
	shards := sched.PlanRange(lo, hi, 0)
	tm.shardsPlanned.Add(uint64(len(shards)))
	scanShard := func(i int) [][]bitpar.Hit {
		ts := time.Now()
		dst := bk.AlignPlanesRange(pp, shards[i].Lo, shards[i].Hi, nil)
		observeSince(tm.shardLatency, ts)
		tm.shardsRun.Inc()
		return dst
	}
	tk := time.Now()
	var perQuery [][]bitpar.Hit
	var err error
	if rp := currentBatchRetryPolicy(); rp.enabled() || faultinject.Enabled() {
		perQuery, err = gatherBatchResilient(ctx, rp, tm, shards, bk.NumQueries(), scanShard)
	} else if len(shards) == 1 {
		perQuery = scanShard(0)
	} else {
		perQuery, err = sched.GatherBatchCtx(ctx, sched.Shared(), len(shards), bk.NumQueries(), scanShard)
	}
	if err != nil {
		return nil, err
	}
	observeSince(tm.batchKernelLatency, tk)
	tm.batchFusedPasses.Add(uint64(len(shards)))
	tm.batchPlaneBytesSaved.Add(uint64(bk.NumQueries()-1) * uint64(pp.SizeBytes()))
	return perQuery, nil
}

// AlignBatchStream scans one nucleotide stream with many queries in a
// single fused pass over each chunk: the stream is read and packed into
// bit-planes once per chunk, and the fused batch kernel scores all K
// queries from those shared plane words — K queries cost one read+pack,
// not K, exactly as AlignBatch fuses a database scan. Hits are delivered
// to emit with their query index, in position order per query within each
// chunk. Thresholds are the given fraction of each query's own maximum
// score; every query is validated before any reading starts. Return an
// error from emit to stop early. It is AlignBatchStreamContext under
// context.Background().
func AlignBatchStream(queries []*Query, r io.Reader, thresholdFrac float64, emit func(query int, h Hit) error) error {
	return AlignBatchStreamContext(context.Background(), queries, r, thresholdFrac, emit)
}

// AlignBatchStreamContext is AlignBatchStream with cooperative
// cancellation: the context is checked before every chunk read and at
// shard boundaries within each chunk, so the call returns ctx.Err()
// without reading the rest of the stream. Aborts are recorded on
// align.canceled / align.deadline.exceeded; reads retry under the
// batch retry policy (SetBatchRetryPolicy).
func AlignBatchStreamContext(ctx context.Context, queries []*Query, r io.Reader, thresholdFrac float64, emit func(query int, h Hit) error) error {
	if len(queries) == 0 {
		return fmt.Errorf("fabp: empty batch")
	}
	progs, thresholds, err := batchKernelInputs(queries, thresholdFrac)
	if err != nil {
		return err
	}
	bk, err := bitpar.NewBatchKernel(progs, thresholds)
	if err != nil {
		return err
	}
	tm := &defaultAlignerTM
	k := uint64(bk.NumQueries())
	tm.queries.Add(k)
	tm.batchQueries.Add(k)
	tm.kernelBitpar.Add(k)
	t0 := time.Now()
	defer func() { observeSince(tm.alignLatency, t0) }()
	err = scanChunks(ctx, r, bk.MaxElems(), bk.MinElems(), tm, currentBatchRetryPolicy(),
		func(pp *bitpar.Planes, lo, hi, base int) error {
			perQuery, cerr := batchChunkHits(ctx, bk, tm, pp, lo, hi)
			if cerr != nil {
				return cerr
			}
			for qi, hits := range perQuery {
				tm.hits.Add(uint64(len(hits)))
				for _, h := range hits {
					if err := emit(qi, Hit{Pos: base + h.Pos, Score: h.Score}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		tm.recordCtxErr(err)
	}
	return err
}
