package fabp

import (
	"context"
	"fmt"
	"io"

	"fabp/internal/bio"
	"fabp/internal/faultinject"
	"fabp/internal/retry"
)

// streamChunkLetters is the chunk size of the bounded-memory stream scan;
// a variable so tests can exercise the chunk-boundary carry cheaply.
var streamChunkLetters = 1 << 20

// scanChunks reads a nucleotide stream (raw letters, whitespace tolerated)
// in fixed-size chunks, carrying the last Lq−1 elements plus two elements
// of comparison context between chunks — the same cross-beat carry the
// hardware reference buffer implements and core.Engine.AlignReader mirrors
// — and invokes scan once per chunk with the chunk-local window-start
// range [lo, hi) that is new in this chunk. Global position = base + local
// position. scan returning an error stops the scan. tm records beats
// (chunks) processed and carry-boundary restarts.
//
// The context is checked before every read — the chunk boundary is the
// cancellation checkpoint — so a canceled or deadlined scan stops without
// waiting for the rest of the stream (a Read already blocked in the
// reader is not interrupted).
//
// Each read passes the stream.read fault-injection hook (keyed by chunk
// ordinal), and transient read failures — injected faults or reader
// errors exposing Temporary() — retry under rp's backoff schedule, up to
// rp.MaxRetries per chunk, counted on scan.retries. Only reads that
// returned no data retry (a short read with an error delivers its bytes
// first, exactly as io.Reader semantics require); exhausted or
// non-retryable errors surface through the flush-before-error path below.
func scanChunks(ctx context.Context, r io.Reader, m int, tm *alignerMetrics, rp RetryPolicy, scan func(seq bio.NucSeq, lo, hi, base int) error) error {
	chunkLetters := streamChunkLetters
	if chunkLetters < m+2 {
		chunkLetters = m + 2
	}

	carry := make(bio.NucSeq, 0, m+1)
	buf := make([]byte, chunkLetters)
	seq := make(bio.NucSeq, 0, chunkLetters+m+2)
	base := 0 // global position of seq[0]
	skip := 0 // window starts below this are re-carried context, already scanned

	backoff := rp.backoff()
	chunk := uint64(0) // read ordinal: the fault-hook key and jitter decorrelator
	readChunk := func() (int, error) {
		for n := 0; ; n++ {
			nRead := 0
			err := faultinject.Check(ctx, faultinject.SiteStreamRead, chunk)
			if err == nil {
				nRead, err = r.Read(buf)
			}
			if err == nil || err == io.EOF || nRead > 0 {
				return nRead, err
			}
			if n >= rp.MaxRetries || !retry.Retryable(err) || ctx.Err() != nil {
				return 0, err
			}
			tm.retries.Inc()
			if serr := retry.Sleep(ctx, backoff.Delay(n+1, chunk)); serr != nil {
				return 0, serr
			}
		}
	}

	flush := func(final bool) error {
		n := len(seq) - m + 1
		if !final {
			// Only scan windows whose full extent is present; the last m-1
			// elements carry to the next chunk.
			n = len(seq) - (m - 1)
		}
		if n <= skip {
			return nil
		}
		tm.chunks.Inc()
		return scan(seq, skip, n, base)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		nRead, readErr := readChunk()
		chunk++
		if nRead == 0 && readErr != nil && readErr != io.EOF {
			if cerr := ctx.Err(); cerr != nil {
				return cerr // cancellation keeps its bare, unwrapped error
			}
		}
		for _, b := range buf[:nRead] {
			switch b {
			case ' ', '\t', '\n', '\r':
				continue
			}
			nt, err := bio.ParseNucleotide(b)
			if err != nil {
				return fmt.Errorf("fabp: position %d: %w", base+len(seq), err)
			}
			seq = append(seq, nt)
		}
		if len(seq) >= chunkLetters {
			if err := flush(false); err != nil {
				return err
			}
			// Carry the unscanned tail (m-1 elements) plus 2 elements of
			// comparison context for the first carried window.
			tm.carries.Inc()
			keep := m + 1
			if keep > len(seq) {
				keep = len(seq)
			}
			carry = append(carry[:0], seq[len(seq)-keep:]...)
			base += len(seq) - keep
			seq = append(seq[:0], carry...)
			skip = keep - (m - 1) // the context prefix, already scanned
		}
		if readErr == io.EOF {
			return flush(true)
		}
		if readErr != nil {
			// Deliver every window already complete in seq before surfacing
			// the failure — the prefix scanned so far is valid work, exactly
			// as on EOF — and wrap the error with the global stream position
			// the way the parse path does, so the caller can resume.
			if err := flush(true); err != nil {
				return err
			}
			return fmt.Errorf("fabp: position %d: %w", base+len(seq), readErr)
		}
	}
}
