package fabp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// enableScanCache turns the result cache on for one test and restores the
// disabled default (dropping every entry) afterward.
func enableScanCache(t *testing.T, capBytes int64) {
	t.Helper()
	SetScanCacheCapacity(capBytes)
	t.Cleanup(func() { SetScanCacheCapacity(0) })
}

// TestScanRequestValidation walks the request surface field by field:
// every invalid shape must fail with an error that names the offending
// field and matches the right taxonomy head via errors.Is.
func TestScanRequestValidation(t *testing.T) {
	ref, genes := SyntheticReference(3, 10_000, 1, 20)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	db, err := DatabaseFromReference("synt", ref)
	if err != nil {
		t.Fatal(err)
	}
	valid := ScanRequest{Query: q, Reference: ref}

	cases := []struct {
		name string
		req  ScanRequest
		want error  // taxonomy head for errors.Is
		frag string // substring naming the field
	}{
		{"nil query", ScanRequest{Reference: ref}, ErrBadQuery, "ScanRequest.Query"},
		{"no target", ScanRequest{Query: q}, ErrBadOption, "exactly one target"},
		{"both targets", ScanRequest{Query: q, Reference: ref, Database: db}, ErrBadOption, "exactly one target"},
		{"unknown kernel", ScanRequest{Query: q, Reference: ref, Kernel: Kernel(42)}, ErrBadOption, "ScanRequest.Kernel"},
		{"negative shard len", ScanRequest{Query: q, Reference: ref, ShardLen: -1}, ErrBadOption, "ScanRequest.ShardLen"},
		{"negative max hits", ScanRequest{Query: q, Reference: ref, MaxHits: -5}, ErrBadOption, "ScanRequest.MaxHits"},
		{"threshold conflict", ScanRequest{Query: q, Reference: ref, Threshold: ptrInt(10), ThresholdFrac: 0.5}, ErrBadOption, "conflict"},
		{"threshold too high", ScanRequest{Query: q, Reference: ref, Threshold: ptrInt(q.MaxScore() + 1)}, ErrBadOption, "ScanRequest.Threshold"},
		{"negative threshold", ScanRequest{Query: q, Reference: ref, Threshold: ptrInt(-1)}, ErrBadOption, "ScanRequest.Threshold"},
		{"fraction above one", ScanRequest{Query: q, Reference: ref, ThresholdFrac: 1.5}, ErrBadOption, "ScanRequest.ThresholdFrac"},
		{"negative fraction", ScanRequest{Query: q, Reference: ref, ThresholdFrac: -0.2}, ErrBadOption, "ScanRequest.ThresholdFrac"},
		{"bad retry policy", ScanRequest{Query: q, Reference: ref, RetryPolicy: RetryPolicy{MaxRetries: -1}}, ErrBadOption, "MaxRetries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Scan(context.Background(), tc.req)
			if err == nil {
				t.Fatal("invalid request accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, not errors.Is(%v)", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not name the field (%q)", err, tc.frag)
			}
			// Invalid requests never hit the cache probe either.
			if _, ok := CachedScan(tc.req); ok {
				t.Error("CachedScan returned a result for an invalid request")
			}
		})
	}

	if _, err := Scan(context.Background(), valid); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func ptrInt(v int) *int { return &v }

// TestScanMatchesLegacy pins the wrapper contract: Scan and the legacy
// Align*/AlignDatabase* entrypoints are one spine, so their hits are
// identical for every kernel and both target shapes.
func TestScanMatchesLegacy(t *testing.T) {
	ref, genes := SyntheticReference(11, 30_000, 2, 25)
	db, err := DatabaseFromReference("synt", ref)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelAuto, KernelScalar, KernelBitParallel} {
		a, err := NewAligner(q, WithKernelType(kernel))
		if err != nil {
			t.Fatal(err)
		}

		legacyHits := a.Align(ref)
		res, err := Scan(context.Background(), ScanRequest{Query: q, Reference: ref, Kernel: kernel})
		if err != nil {
			t.Fatalf("%v reference scan: %v", kernel, err)
		}
		if res.Threshold != a.Threshold() {
			t.Errorf("%v: Scan threshold %d, legacy %d", kernel, res.Threshold, a.Threshold())
		}
		if len(res.Hits) != len(legacyHits) {
			t.Fatalf("%v: Scan %d hits, legacy %d", kernel, len(res.Hits), len(legacyHits))
		}
		for i := range legacyHits {
			if res.Hits[i] != legacyHits[i] {
				t.Errorf("%v hit %d: Scan %+v, legacy %+v", kernel, i, res.Hits[i], legacyHits[i])
			}
		}

		legacyRec := a.AlignDatabase(db)
		dres, err := Scan(context.Background(), ScanRequest{Query: q, Database: db, Kernel: kernel})
		if err != nil {
			t.Fatalf("%v database scan: %v", kernel, err)
		}
		if len(dres.RecordHits) != len(legacyRec) {
			t.Fatalf("%v: Scan %d record hits, legacy %d", kernel, len(dres.RecordHits), len(legacyRec))
		}
		for i := range legacyRec {
			if dres.RecordHits[i] != legacyRec[i] {
				t.Errorf("%v record hit %d: Scan %+v, legacy %+v", kernel, i, dres.RecordHits[i], legacyRec[i])
			}
		}
	}
}

// TestScanMaxHitsTruncation: MaxHits clips per request while the cache
// keeps complete results, so a capped request never poisons a later
// uncapped one.
func TestScanMaxHitsTruncation(t *testing.T) {
	enableScanCache(t, 8<<20)
	ref, genes := SyntheticReference(17, 30_000, 3, 20)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	req := ScanRequest{Query: q, Reference: ref, ThresholdFrac: 0.5}

	full, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Hits) < 2 {
		t.Skipf("only %d hits at this threshold; truncation needs 2+", len(full.Hits))
	}

	capped := req
	capped.MaxHits = 1
	res, err := Scan(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || !res.Truncated {
		t.Fatalf("capped scan: %d hits truncated=%v, want 1/true", len(res.Hits), res.Truncated)
	}
	if res.Cache != CacheHit {
		t.Errorf("capped repeat came back %q, want %q", res.Cache, CacheHit)
	}

	// The cache still holds the complete result.
	again, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Hits) != len(full.Hits) || again.Truncated {
		t.Fatalf("uncapped repeat: %d hits truncated=%v, want %d/false", len(again.Hits), again.Truncated, len(full.Hits))
	}
}

// TestScanStormCollapses is the acceptance storm: 100 goroutines issue the
// identical request concurrently, and the process-wide counters must
// prove exactly ONE scan ran — align.queries.started advances by one, the
// cache counts one miss, and every caller gets hits byte-identical to the
// uncached oracle.
func TestScanStormCollapses(t *testing.T) {
	ref, genes := SyntheticReference(23, 1<<20, 2, 30)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	req := ScanRequest{Query: q, Reference: ref}

	// Oracle first, uncached.
	oracle, err := Scan(context.Background(), ScanRequest{Query: q, Reference: ref, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Hits) == 0 {
		t.Fatal("oracle found no hits; the storm would be vacuous")
	}

	enableScanCache(t, 32<<20)
	queriesBefore := DefaultMetrics().Snapshot().Counters["align.queries.started"]
	cacheBefore := ScanCacheSnapshot()

	const n = 100
	results := make([]*ScanResult, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = Scan(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	queriesAfter := DefaultMetrics().Snapshot().Counters["align.queries.started"]
	if got := queriesAfter - queriesBefore; got != 1 {
		t.Fatalf("storm ran %d scans, want exactly 1", got)
	}
	cacheAfter := ScanCacheSnapshot()
	if misses := cacheAfter.Misses - cacheBefore.Misses; misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if joined := (cacheAfter.Collapsed - cacheBefore.Collapsed) + (cacheAfter.Hits - cacheBefore.Hits); joined != n-1 {
		t.Errorf("collapsed+hits = %d, want %d", joined, n-1)
	}

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("storm caller %d: %v", i, errs[i])
		}
		res := results[i]
		switch res.Cache {
		case CacheMiss, CacheShared, CacheHit:
		default:
			t.Fatalf("caller %d outcome %q", i, res.Cache)
		}
		if len(res.Hits) != len(oracle.Hits) {
			t.Fatalf("caller %d: %d hits, oracle %d", i, len(res.Hits), len(oracle.Hits))
		}
		for j := range oracle.Hits {
			if res.Hits[j] != oracle.Hits[j] {
				t.Fatalf("caller %d hit %d: %+v, oracle %+v", i, j, res.Hits[j], oracle.Hits[j])
			}
		}
	}
}

// TestScanEvictionConformance hammers a deliberately tiny cache with a
// rotating query set across every kernel: constant eviction pressure must
// never change a single hit — each answer equals the uncached oracle.
func TestScanEvictionConformance(t *testing.T) {
	ref, genes := SyntheticReference(29, 40_000, 4, 20)
	queries := make([]*Query, len(genes))
	oracles := make(map[string][]Hit)
	for i, g := range genes {
		q, err := NewQuery(g.Protein)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
		res, err := Scan(context.Background(), ScanRequest{Query: q, Reference: ref, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		oracles[g.Protein] = res.Hits
	}

	// ~1.5 entries' worth of capacity: every insertion evicts.
	enableScanCache(t, 600)
	before := ScanCacheSnapshot()
	for round := 0; round < 6; round++ {
		for i, q := range queries {
			for _, kernel := range []Kernel{KernelAuto, KernelScalar, KernelBitParallel} {
				res, err := Scan(context.Background(), ScanRequest{Query: q, Reference: ref, Kernel: kernel})
				if err != nil {
					t.Fatalf("round %d query %d kernel %v: %v", round, i, kernel, err)
				}
				want := oracles[genes[i].Protein]
				if len(res.Hits) != len(want) {
					t.Fatalf("round %d query %d kernel %v: %d hits, oracle %d",
						round, i, kernel, len(res.Hits), len(want))
				}
				for j := range want {
					if res.Hits[j] != want[j] {
						t.Fatalf("round %d query %d kernel %v hit %d: %+v, oracle %+v",
							round, i, kernel, j, res.Hits[j], want[j])
					}
				}
			}
		}
	}
	after := ScanCacheSnapshot()
	if after.Evictions == before.Evictions {
		t.Error("no evictions under pressure; the conformance run is vacuous")
	}
	if after.ResidentBytes > after.CapacityBytes {
		t.Errorf("resident %d bytes exceeds capacity %d", after.ResidentBytes, after.CapacityBytes)
	}
}

// TestScanLeaderCancelHandsOff drives the singleflight handoff through
// the public API: the initiating caller cancels mid-scan while a second
// identical request is attached — the scan must complete for the waiter,
// the waiter's hits must match the oracle, and the leader must see its
// own cancellation.
func TestScanLeaderCancelHandsOff(t *testing.T) {
	// Forced-scalar over 4M nt: slow enough that cancellation reliably
	// lands while the scan is in flight.
	ref, genes := SyntheticReference(31, 4<<20, 2, 30)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	req := ScanRequest{Query: q, Reference: ref, Kernel: KernelScalar}
	oracle, err := Scan(context.Background(), ScanRequest{Query: q, Reference: ref, Kernel: KernelScalar, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}

	enableScanCache(t, 32<<20)
	base := ScanCacheSnapshot()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := Scan(leaderCtx, req)
		leaderDone <- err
	}()

	// Wait for the leader's flight, then attach the waiter.
	waitCounter(t, func() bool { return ScanCacheSnapshot().Misses > base.Misses }, "leader flight")
	waiterDone := make(chan *ScanResult, 1)
	waiterErr := make(chan error, 1)
	go func() {
		res, err := Scan(context.Background(), req)
		waiterDone <- res
		waiterErr <- err
	}()
	waitCounter(t, func() bool { return ScanCacheSnapshot().Collapsed > base.Collapsed }, "waiter join")

	cancelLeader()
	leaderErr := <-leaderDone
	res, werr := <-waiterDone, <-waiterErr
	if werr != nil {
		t.Fatalf("waiter: %v", werr)
	}
	if len(res.Hits) != len(oracle.Hits) {
		t.Fatalf("waiter got %d hits, oracle %d", len(res.Hits), len(oracle.Hits))
	}
	for i := range oracle.Hits {
		if res.Hits[i] != oracle.Hits[i] {
			t.Fatalf("waiter hit %d: %+v, oracle %+v", i, res.Hits[i], oracle.Hits[i])
		}
	}
	if errors.Is(leaderErr, context.Canceled) {
		// The handoff happened: the canceled leader left a live flight to
		// the waiter, and the result landed in the cache afterward.
		if got := ScanCacheSnapshot().Handoffs - base.Handoffs; got != 1 {
			t.Errorf("handoffs = %d, want 1", got)
		}
		if cached, ok := CachedScan(req); !ok {
			t.Error("handed-off result not cached")
		} else if len(cached.Hits) != len(oracle.Hits) {
			t.Errorf("cached result %d hits, oracle %d", len(cached.Hits), len(oracle.Hits))
		}
	} else if leaderErr != nil {
		t.Fatalf("leader: %v", leaderErr)
	} else {
		// The scan beat the cancellation; nothing to assert about handoff,
		// but the run must say so rather than pass silently green.
		t.Log("scan completed before cancellation; handoff path not exercised this run")
	}
}

// TestScanPartialNeverCached: a degraded result is delivered to its
// requester but must not answer a later clean request.
func TestScanPartialNeverCached(t *testing.T) {
	enableScanCache(t, 8<<20)
	ref, genes := SyntheticReference(37, 20_000, 1, 20)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	req := ScanRequest{Query: q, Reference: ref, Partial: true}
	res, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatalf("partial-mode clean scan: %v", err)
	}
	if res.Cache != CacheBypass {
		t.Errorf("partial request outcome %q, want %q", res.Cache, CacheBypass)
	}
	if _, ok := CachedScan(req); ok {
		t.Error("CachedScan answered a partial-mode request")
	}
	clean := ScanRequest{Query: q, Reference: ref}
	if _, ok := CachedScan(clean); ok {
		t.Error("partial-mode scan seeded the cache")
	}
}

// TestCachedScanProbe: the non-blocking probe answers only resident hits
// — never by scanning, joining, or queueing.
func TestCachedScanProbe(t *testing.T) {
	enableScanCache(t, 8<<20)
	ref, genes := SyntheticReference(41, 20_000, 1, 20)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	req := ScanRequest{Query: q, Reference: ref}

	queriesBefore := DefaultMetrics().Snapshot().Counters["align.queries.started"]
	if _, ok := CachedScan(req); ok {
		t.Fatal("probe hit on an empty cache")
	}
	if got := DefaultMetrics().Snapshot().Counters["align.queries.started"] - queriesBefore; got != 0 {
		t.Fatalf("probe ran %d scans", got)
	}

	seeded, err := Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := CachedScan(req)
	if !ok {
		t.Fatal("probe missed a resident result")
	}
	if res.Cache != CacheHit {
		t.Errorf("probe outcome %q, want %q", res.Cache, CacheHit)
	}
	if len(res.Hits) != len(seeded.Hits) {
		t.Fatalf("probe %d hits, seeded %d", len(res.Hits), len(seeded.Hits))
	}
}

// waitCounter polls cond with a deadline; the label names what never
// happened on failure.
func waitCounter(t *testing.T, cond func() bool, label string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", label)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScanCacheInvalidationByContent: the key is the content digest, so
// two references with different content never alias — no explicit
// invalidation exists or is needed.
func TestScanCacheInvalidationByContent(t *testing.T) {
	enableScanCache(t, 8<<20)
	refA, genes := SyntheticReference(43, 20_000, 1, 20)
	refB, _ := SyntheticReference(44, 20_000, 1, 20)
	q, err := NewQuery(genes[0].Protein)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(context.Background(), ScanRequest{Query: q, Reference: refA}); err != nil {
		t.Fatal(err)
	}
	if _, ok := CachedScan(ScanRequest{Query: q, Reference: refA}); !ok {
		t.Fatal("refA result not resident")
	}
	if _, ok := CachedScan(ScanRequest{Query: q, Reference: refB}); ok {
		t.Fatal("refB aliased refA's cache entry")
	}

	resB, err := Scan(context.Background(), ScanRequest{Query: q, Reference: refB})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Cache != CacheMiss {
		t.Errorf("refB first scan outcome %q, want %q", resB.Cache, CacheMiss)
	}
}

