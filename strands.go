package fabp

import (
	"sort"

	"fabp/internal/bio"
)

// Strand labels which reference strand a hit was found on.
type Strand string

// Strand values.
const (
	// StrandForward is the reference as given.
	StrandForward Strand = "+"
	// StrandReverse is its reverse complement; positions are reported in
	// forward coordinates.
	StrandReverse Strand = "-"
)

// StrandHit is a hit annotated with its strand. Pos is always a forward-
// strand coordinate: for reverse-strand hits it is the lowest-address
// nucleotide of the matching window (whose sequence, read right-to-left
// complemented, the query matched).
type StrandHit struct {
	Pos    int
	Score  int
	Strand Strand
}

// AlignBothStrands scans the reference and its reverse complement — the
// full TBLASTN-style search space (a protein-coding gene can sit on either
// strand; the paper's FabP scans one strand per pass, so a deployment runs
// two passes, doubling scan time). Hits come back in forward-coordinate
// order.
func (a *Aligner) AlignBothStrands(ref *Reference) []StrandHit {
	var out []StrandHit
	for _, h := range a.alignSeq(ref.seq) {
		out = append(out, StrandHit{Pos: h.Pos, Score: h.Score, Strand: StrandForward})
	}
	rc := bio.NucSeq(ref.seq).ReverseComplement()
	m := a.query.Elements()
	for _, h := range a.alignSeq(rc) {
		// Window [h.Pos, h.Pos+m) on the reverse complement maps to
		// forward positions [len-h.Pos-m, len-h.Pos).
		out = append(out, StrandHit{
			Pos:    len(ref.seq) - h.Pos - m,
			Score:  h.Score,
			Strand: StrandReverse,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Strand < out[j].Strand
	})
	return out
}
