package fabp

import (
	"strings"
	"testing"
)

func TestAlignVerified(t *testing.T) {
	ref, genes := SyntheticReference(61, 60_000, 3, 50)
	g := genes[0]
	// Diverged query: substitutions only, so the locus survives both
	// stages.
	mut, _, err := MutateProtein(5, g.Protein, 0.06, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewQuery(mut)
	a, err := NewAligner(q, WithThresholdFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := a.AlignVerified(ref, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no verified hits")
	}
	top := hits[0]
	if top.Pos != g.Pos {
		t.Errorf("top verified hit at %d, planted at %d", top.Pos, g.Pos)
	}
	if top.Identity < 0.85 {
		t.Errorf("identity %.2f too low for 6%% divergence", top.Identity)
	}
	if !strings.Contains(top.Pretty, "Query") {
		t.Error("pretty alignment missing")
	}
	if top.SWScore <= 0 {
		t.Error("SW score missing")
	}
	// Ordering: by SW score descending.
	for i := 1; i < len(hits); i++ {
		if hits[i].SWScore > hits[i-1].SWScore {
			t.Fatal("verified hits out of order")
		}
	}
}

func TestAlignVerifiedOptions(t *testing.T) {
	ref, genes := SyntheticReference(62, 40_000, 2, 40)
	q, _ := NewQuery(genes[0].Protein)
	a, _ := NewAligner(q, WithThreshold(q.MaxScore()/2)) // permissive: many hits
	all, err := a.AlignVerified(ref, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := a.AlignVerified(ref, VerifyOptions{MaxHits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 3 {
		t.Errorf("MaxHits ignored: %d", len(capped))
	}
	strict, err := a.AlignVerified(ref, VerifyOptions{MinSWScore: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(all) {
		t.Error("MinSWScore added hits")
	}
	for _, h := range strict {
		if h.SWScore < 100 {
			t.Errorf("hit below cutoff survived: %d", h.SWScore)
		}
	}
}

func TestAlignVerifiedRescuesIndelQuery(t *testing.T) {
	// A query with a small indel scores poorly under FabP past the indel,
	// but SW verification of a permissive-threshold hit recovers the full
	// homology — the two-stage pipeline compensating the paper's accuracy
	// trade.
	ref, genes := SyntheticReference(63, 50_000, 2, 60)
	g := genes[1]
	// Delete two residues from the middle of the source protein: FabP's
	// frame shifts after position 30, halving its score there.
	withIndel := g.Protein[:30] + g.Protein[32:]
	q, _ := NewQuery(withIndel)
	// Permissive FabP threshold (the prefilter role).
	a, _ := NewAligner(q, WithThresholdFraction(0.4))
	hits, err := a.AlignVerified(ref, VerifyOptions{MaxHits: 50, ContextResidues: 20})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Pos > g.Pos-90 && h.Pos < g.Pos+3*60 && h.Identity > 0.8 {
			found = true
		}
	}
	if !found {
		t.Error("verification failed to recover the indel query's locus")
	}
}

func TestTranslateWindow(t *testing.T) {
	ref, genes := SyntheticReference(64, 20_000, 1, 30)
	q, _ := NewQuery(genes[0].Protein)
	a, _ := NewAligner(q)
	prot, err := a.TranslateWindow(ref, genes[0].Pos)
	if err != nil {
		t.Fatal(err)
	}
	if prot != genes[0].Protein {
		t.Errorf("window translation %q != planted %q", prot, genes[0].Protein)
	}
	if _, err := a.TranslateWindow(ref, ref.Len()); err == nil {
		t.Error("out of range must fail")
	}
}
