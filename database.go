package fabp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/core"
	"fabp/internal/db"
	"fabp/internal/experiments"
	"fabp/internal/faultinject"
	"fabp/internal/host"
	"fabp/internal/isa"
	"fabp/internal/sched"
)

// Database is an indexed, 2-bit packed reference database — the DRAM image
// the accelerator scans, with a record index so hits map back to sequences.
type Database struct {
	d *db.Database
}

// warnLogger receives non-fatal load diagnostics (a rejected plane
// section degrading a warm start). Guarded by warnMu; nil silences.
var (
	warnMu     sync.Mutex
	warnLogger func(format string, args ...any) = log.Printf
)

// SetWarnLogger redirects the package's non-fatal warnings (default
// log.Printf). Pass nil to silence them. Safe for concurrent use.
func SetWarnLogger(f func(format string, args ...any)) {
	warnMu.Lock()
	warnLogger = f
	warnMu.Unlock()
}

func warnf(format string, args ...any) {
	warnMu.Lock()
	f := warnLogger
	warnMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// BuildDatabase packs a nucleotide FASTA stream into a database.
func BuildDatabase(r io.Reader) (*Database, error) {
	recs, err := bio.NewFastaReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	d, err := db.Build(recs)
	if err != nil {
		return nil, err
	}
	return &Database{d: d}, nil
}

// DatabaseFromReference wraps a single reference sequence as a one-record
// database.
func DatabaseFromReference(id string, ref *Reference) (*Database, error) {
	d, err := db.FromSeq(id, ref.seq)
	if err != nil {
		return nil, err
	}
	return &Database{d: d}, nil
}

// SaveDatabase serializes the database in the current (v2) file format:
// packed payload, record index, the packed bit-planes, a SHA-256 content
// digest and per-section CRC32 checksums. Writing packs the planes if no
// copy is resident yet — the one-time preprocessing cost every later
// LoadDatabase of the file skips entirely.
func (d *Database) SaveDatabase(w io.Writer) error {
	_, err := d.d.WriteTo(w)
	return err
}

// SaveDatabaseLegacy serializes in the v1 layout — no checksums, no plane
// section — for rollback to readers that predate the v2 format. v1 files
// load fine (LoadDatabase reads both) but pay a full plane packing before
// the first bit-parallel scan.
func (d *Database) SaveDatabaseLegacy(w io.Writer) error {
	_, err := d.d.WriteV1To(w)
	return err
}

// ErrCorruptDatabase matches (via errors.Is) every structural load
// failure LoadDatabase and InspectDatabase return: bad magic, truncation,
// checksum or content-digest mismatch. A damaged plane section alone is
// NOT this error — the load succeeds and degrades to in-process packing.
var ErrCorruptDatabase = db.ErrCorrupt

// LoadDatabase reads a database saved with SaveDatabase (v2) or
// SaveDatabaseLegacy (v1). A v2 file's persisted bit-planes are installed
// into the shared plane cache keyed by content digest, so the first
// bit-parallel scan — and every scan after it, from any Database loaded
// from the same content — runs with zero packing work (counted on
// db.load.planes_reused). A v1 file, or a v2 file whose plane section
// fails its checksum or version check, still loads: scans fall back to
// packing in-process (db.load.planes_packed), and the fallback is logged
// through SetWarnLogger's sink. Structural damage anywhere else returns
// ErrCorruptDatabase; malformed input never panics.
func LoadDatabase(r io.Reader) (*Database, error) {
	inner, err := db.Read(r)
	if err != nil {
		return nil, err
	}
	d := &Database{d: inner}
	d.installPersistedPlanes()
	return d, nil
}

// installPersistedPlanes is LoadDatabase's warm-start step: persisted
// planes become cache-resident under the content digest, and the
// reused/packed telemetry records how this load will scan.
func (d *Database) installPersistedPlanes() {
	cache := bitpar.SharedPlanes()
	key := planeKey{d.d.Digest()}
	if pp := d.d.PersistedPlanes(); pp != nil {
		cache.Install(key, pp)
		dbLoadPlanesReused.Inc()
		return
	}
	if cache.Contains(key) {
		// No planes in this file, but an earlier load of the same content
		// already made them resident — still a warm start.
		dbLoadPlanesReused.Inc()
		return
	}
	if err := d.d.PlaneSectionError(); err != nil {
		warnf("fabp: database %s: plane section rejected, falling back to in-process packing: %v",
			d.d.Digest(), err)
	}
	dbLoadPlanesPacked.Inc()
}

// DatabaseFileInfo describes a database file's on-disk shape, as
// InspectDatabase reports it without retaining the payload.
type DatabaseFileInfo struct {
	// Version is the file format version (1 or 2).
	Version int `json:"version"`
	// Records and TotalNt are the database geometry.
	Records int `json:"records"`
	TotalNt int `json:"total_nt"`
	// Digest is the hex SHA-256 content digest (computed for v1 files,
	// which do not store one).
	Digest string `json:"digest"`
	// HasPlanes reports a valid persisted plane section; PlaneError is
	// the rejection reason when a declared section failed validation.
	HasPlanes  bool   `json:"has_planes"`
	PlaneError string `json:"plane_error,omitempty"`
	// Per-section byte counts, checksums included.
	IndexBytes   int64 `json:"index_bytes"`
	PayloadBytes int64 `json:"payload_bytes"`
	PlaneBytes   int64 `json:"plane_bytes"`
}

// InspectDatabase fully validates a database file — magic, geometry,
// section checksums, content digest, plane section — and reports its
// shape. Structural damage returns ErrCorruptDatabase; a rejected plane
// section is reported in PlaneError (the file still loads).
func InspectDatabase(r io.Reader) (DatabaseFileInfo, error) {
	info, err := db.Inspect(r)
	if err != nil {
		return DatabaseFileInfo{}, err
	}
	out := DatabaseFileInfo{
		Version: info.Version, Records: info.Records, TotalNt: info.TotalNt,
		Digest: info.Digest.String(), HasPlanes: info.HasPlanes,
		IndexBytes: info.IndexBytes, PayloadBytes: info.PayloadBytes,
		PlaneBytes: info.PlaneBytes,
	}
	if info.PlaneErr != nil {
		out.PlaneError = info.PlaneErr.Error()
	}
	return out, nil
}

// Len returns the total nucleotide count.
func (d *Database) Len() int { return d.d.Len() }

// NumRecords returns the sequence count.
func (d *Database) NumRecords() int { return d.d.NumRecords() }

// RecordInfo describes one database sequence.
type RecordInfo struct {
	ID          string
	Description string
	Length      int
}

// Record returns the i-th sequence's metadata.
func (d *Database) Record(i int) RecordInfo {
	r := d.d.Record(i)
	return RecordInfo{ID: r.ID, Description: r.Description, Length: r.Length}
}

// RecordHit is an alignment hit attributed to a database record.
type RecordHit struct {
	// RecordID and RecordIndex identify the sequence.
	RecordID    string
	RecordIndex int
	// Offset is the window start within that sequence.
	Offset int
	// Score is the alignment score.
	Score int
}

// planeKey keys the shared plane cache by content digest: two Database
// objects holding identical concatenated sequences — two loads of one
// file, or a load and a fresh build — share one resident plane set.
// (Pointer identity, the old key, packed once per object and let reloads
// of the same file masquerade as distinct databases.)
type planeKey struct{ d db.Digest }

// planes returns the database's packed bit-planes through the process-wide
// cache: the first scan packs once (or reuses planes a v2 load
// installed), every later query, batch or session call against the same
// content reuses the resident planes — the software analogue of the
// card-DRAM-resident database of the paper's protocol.
func (d *Database) planes() *bitpar.Planes {
	return bitpar.SharedPlanes().Get(planeKey{d.d.Digest()}, d.d.EnsurePlanes)
}

// WarmPlanes makes the database's bit-planes cache-resident now — the
// deliberate warm-up servers run at startup so the first query never pays
// packing latency. After a v2 LoadDatabase this is free (the persisted
// planes are already installed); otherwise it packs once.
func (d *Database) WarmPlanes() { d.planes() }

// PlanesResident reports whether the shared cache currently holds this
// database's planes (installed, packed, or still packing).
func (d *Database) PlanesResident() bool {
	return bitpar.SharedPlanes().Contains(planeKey{d.d.Digest()})
}

// EvictPlanes drops this database's planes from the shared cache AND the
// database's own memoized copy, so the next scan packs from scratch — the
// cold-start control for benchmarks and memory-pressure handling.
func (d *Database) EvictPlanes() {
	bitpar.SharedPlanes().Invalidate(planeKey{d.d.Digest()})
	d.d.DropPlanes()
}

// AsReference exposes the database's concatenated sequence as a Reference
// for the single-reference APIs (AlignContext, AlignBatch) — hits carry
// global positions, without record attribution.
func (d *Database) AsReference() *Reference {
	return &Reference{seq: d.d.Seq()}
}

// planesForReference caches a standalone reference's bit-planes the same
// way (keyed on the Reference, which is immutable once built).
func planesForReference(ref *Reference) *bitpar.Planes {
	return bitpar.SharedPlanes().Get(ref, func() *bitpar.Planes {
		return bitpar.PackReference(ref.seq)
	})
}

// bitparToCore converts kernel hits to the engine's hit type.
func bitparToCore(raw []bitpar.Hit) []core.Hit {
	if len(raw) == 0 {
		return nil
	}
	hits := make([]core.Hit, len(raw))
	for i, h := range raw {
		hits[i] = core.Hit{Pos: h.Pos, Score: h.Score}
	}
	return hits
}

// databaseScan builds the shard-scan function for this aligner over the
// database — the closure scans window starts [lo, hi) under the selected
// kernel, reading a shared packed representation (cached bit-planes for
// the bit-parallel kernel, one context array for the scalar engine) so
// every shard gets its shardLen + Lq−1 overlap for free. starts is 0 when
// the database is shorter than the query.
func (a *Aligner) databaseScan(d *Database) (scan func(lo, hi int) []core.Hit, starts int) {
	starts = d.Len() - a.query.Elements() + 1
	if starts <= 0 {
		return nil, 0
	}
	a.tm.kernelChosen(a.useBitpar(d.Len()))
	if a.useBitpar(d.Len()) {
		a.tm.planeLookups.Inc()
		planes := d.planes()
		return func(lo, hi int) []core.Hit {
			return bitparToCore(a.kernel.AlignPlanesRange(planes, lo, hi))
		}, starts
	}
	ctxs := core.Contexts(d.d.Seq())
	return func(lo, hi int) []core.Hit {
		return a.engine.AlignContexts(ctxs, lo, hi)
	}, starts
}

// referenceScan builds the shard-scan function for this aligner over a
// standalone reference — the same shape as databaseScan, used by
// AlignContext when the scan must be cancelable shard by shard. The
// bit-parallel path reads the reference's cached planes; the scalar path
// shares one context array.
func (a *Aligner) referenceScan(ref *Reference) (scan func(lo, hi int) []core.Hit, starts int) {
	starts = ref.Len() - a.query.Elements() + 1
	if starts <= 0 {
		return nil, 0
	}
	a.tm.kernelChosen(a.useBitpar(ref.Len()))
	if a.useBitpar(ref.Len()) {
		a.tm.planeLookups.Inc()
		planes := planesForReference(ref)
		return func(lo, hi int) []core.Hit {
			return bitparToCore(a.kernel.AlignPlanesRange(planes, lo, hi))
		}, starts
	}
	ctxs := core.Contexts(ref.seq)
	return func(lo, hi int) []core.Hit {
		return a.engine.AlignContexts(ctxs, lo, hi)
	}, starts
}

// instrumentShard wraps a shard-scan function so each execution records
// latency and the shards-run counter on tm.
func instrumentShard(tm *alignerMetrics, scan func(lo, hi int) []core.Hit) func(lo, hi int) []core.Hit {
	return func(lo, hi int) []core.Hit {
		t0 := time.Now()
		hits := scan(lo, hi)
		observeSince(tm.shardLatency, t0)
		tm.shardsRun.Inc()
		return hits
	}
}

// scanShardsCtx executes a scan function over the shard plan on the
// aligner's pool and returns the concatenated, position-ordered hits.
// Cancellation is checked between shards (see sched.GatherCtx): on a
// canceled or deadlined context the call returns ctx.Err() after at most
// the shards already executing finish. With a RetryPolicy, partial mode
// or active fault injection, shards route through the resilient path
// (retries, hedging, the dispatch fault hook, *PartialError); otherwise
// the historical zero-overhead gather runs unchanged.
func (a *Aligner) scanShardsCtx(ctx context.Context, starts int, scan func(lo, hi int) []core.Hit) ([]core.Hit, error) {
	shards := sched.Plan(starts, a.shardLen)
	a.tm.shardsPlanned.Add(uint64(len(shards)))
	scan = instrumentShard(&a.tm, scan)
	if a.resilientScans() {
		return a.gatherResilient(ctx, shards, scan)
	}
	return sched.GatherCtx(ctx, a.pool, len(shards), func(i int) []core.Hit {
		return scan(shards[i].Lo, shards[i].Hi)
	})
}

// AlignDatabase scans the whole database and attributes hits to records,
// dropping windows that span record boundaries (concatenation artifacts).
// The scan is tiled into shards executed on the aligner's worker pool and
// is bit-exact with a serial scan. It is AlignDatabaseContext under
// context.Background() — uncancellable, never errs.
func (a *Aligner) AlignDatabase(d *Database) []RecordHit {
	hits, _ := a.AlignDatabaseContext(context.Background(), d)
	return hits
}

// AlignDatabaseContext is AlignDatabase under a context. Cancellation and
// deadlines are honored at shard boundaries: undispatched shards are shed,
// shards already executing finish, and the call returns ctx.Err() within
// one shard of the cancel — recorded on align.canceled /
// align.deadline.exceeded. The shared plane cache is untouched by an
// abort (packing is atomic within the cache), so a later retry scans the
// same resident planes.
//
// When the scan-result cache is enabled (SetScanCacheCapacity), the call
// shares the cache- and singleflight-aware spine with Scan: repeats are
// answered from memory and concurrent identical scans collapse into one.
func (a *Aligner) AlignDatabaseContext(ctx context.Context, d *Database) ([]RecordHit, error) {
	res, _, err := a.cachedDatabaseScan(ctx, d)
	if res == nil {
		return nil, err
	}
	return res.RecordHits, err
}

// executeDatabaseScan is the uncached database scan — the historical
// AlignDatabaseContext body, producing a *ScanResult. Every telemetry
// update lives here, so cached and collapsed calls observably run zero
// scans.
func (a *Aligner) executeDatabaseScan(ctx context.Context, d *Database) (*ScanResult, error) {
	a.tm.queries.Inc()
	t0 := time.Now()
	defer func() { observeSince(a.tm.alignLatency, t0) }()
	if err := ctx.Err(); err != nil {
		a.tm.recordCtxErr(err)
		return nil, err
	}
	scan, starts := a.databaseScan(d)
	var raw []core.Hit
	var perr error
	if scan != nil {
		var err error
		raw, err = a.scanShardsCtx(ctx, starts, scan)
		if err != nil {
			var pe *PartialError
			if !errors.As(err, &pe) {
				a.tm.recordCtxErr(err)
				return nil, err
			}
			perr = err // degraded completion: surviving hits + *PartialError
		}
	}
	hits := toRecordHits(d.d.Attribute(raw, a.query.Elements()))
	a.tm.hits.Add(uint64(len(hits)))
	return a.newScanResult(nil, hits, perr), perr
}

// AlignDatabaseStream scans the database shard by shard and delivers
// attributed hits to emit in position order while holding only a bounded
// number of shard results in memory — the way to scan a database whose hit
// list would not fit (or should not wait) in one slice. Return an error
// from emit to stop early.
func (a *Aligner) AlignDatabaseStream(d *Database, emit func(RecordHit) error) error {
	return a.AlignDatabaseStreamContext(context.Background(), d, emit)
}

// AlignDatabaseStreamContext is AlignDatabaseStream under a context.
// Cancellation checkpoints sit at every stage of the pipeline — shard
// dispatch, shard execution start, and the ordered merge before each
// emit — so the call returns ctx.Err() within one shard of the cancel,
// drains the in-flight shards it launched (no goroutine outlives the
// call), and records the abort on align.canceled /
// align.deadline.exceeded. Hits already emitted are valid: they are the
// complete, position-ordered prefix of the full scan up to the last
// merged shard.
func (a *Aligner) AlignDatabaseStreamContext(ctx context.Context, d *Database, emit func(RecordHit) error) error {
	a.tm.queries.Inc()
	t0 := time.Now()
	defer func() { observeSince(a.tm.alignLatency, t0) }()
	if err := ctx.Err(); err != nil {
		a.tm.recordCtxErr(err)
		return err
	}
	scan, starts := a.databaseScan(d)
	if scan == nil {
		return nil
	}
	shards := sched.Plan(starts, a.shardLen)
	a.tm.shardsPlanned.Add(uint64(len(shards)))
	scan = instrumentShard(&a.tm, scan)
	m := a.query.Elements()
	produce := func(i int) ([]db.RecordHit, error) {
		return d.d.Attribute(scan(shards[i].Lo, shards[i].Hi), m), nil
	}
	var fc *failureCollector
	if a.resilientScans() {
		fc = &failureCollector{}
		produce = resilientStreamProduce(ctx, a.pool, newResilience(a.retryPolicy, &a.tm), a.partial, fc, shards, produce)
	}
	err := sched.StreamOrderedCtx(ctx, a.pool, len(shards), produce,
		func(h db.RecordHit) error {
			a.tm.hits.Inc()
			return emit(RecordHit{
				RecordID:    h.RecordID,
				RecordIndex: h.RecordIndex,
				Offset:      h.Offset,
				Score:       h.Score,
			})
		})
	if err != nil {
		a.tm.recordCtxErr(err)
		return err
	}
	if fc != nil && len(fc.failed) > 0 {
		// Every surviving shard's hits were emitted in order; report the
		// uncovered ranges the same way the gather path does.
		a.tm.partial.Inc()
		return fc.partialError()
	}
	return nil
}

func toRecordHits(attributed []db.RecordHit) []RecordHit {
	out := make([]RecordHit, len(attributed))
	for i, h := range attributed {
		out[i] = RecordHit{
			RecordID:    h.RecordID,
			RecordIndex: h.RecordIndex,
			Offset:      h.Offset,
			Score:       h.Score,
		}
	}
	return out
}

// Session models the full deployment: an FPGA card holding the database
// resident in its DRAM, with queries streamed against it. Results are real
// (bit-exact engine); the timing decomposition follows the paper's
// end-to-end measurement protocol.
type Session struct {
	s *host.Session
	d *Database
}

// NewSession creates a session on the paper's default platform (Kintex-7
// card, PCIe Gen3 x8, 8 GB card DRAM) with the database loaded. Hit
// computation runs on the sharded scan path with the shared plane cache,
// so the database is packed once and reused across queries and RunBatch
// calls; batches take the fused path (every reference tile scanned once
// for the whole batch); timing follows the paper's protocol unchanged.
func NewSession(d *Database) (*Session, error) {
	s := host.NewSession(host.DefaultPlatform())
	if _, err := s.LoadDatabase(d.d.Seq()); err != nil {
		return nil, err
	}
	sess := &Session{s: s, d: d}
	s.SetAlignFunc(sess.scan)
	s.SetBatchAlignFunc(sess.scanBatch)
	return sess, nil
}

// scan computes one query's hits against the resident database: sharded
// bit-parallel scan over the cached planes for large databases, sharded
// scalar scan below the crossover — the same auto rule as the Aligner, and
// bit-exact with the host's built-in engine. Cancellation is checked
// between shards; an abort returns ctx.Err() and is recorded on the
// process-wide align.canceled / align.deadline.exceeded counters.
func (s *Session) scan(ctx context.Context, prog isa.Program, threshold int) ([]core.Hit, error) {
	starts := s.d.Len() - len(prog) + 1
	if starts <= 0 {
		return nil, nil
	}
	tm := &defaultAlignerTM
	tm.queries.Inc()
	shards := sched.Plan(starts, 0)
	tm.shardsPlanned.Add(uint64(len(shards)))
	var scan func(lo, hi int) []core.Hit
	tm.kernelChosen(s.d.Len() >= bitParThresholdLen)
	if s.d.Len() >= bitParThresholdLen {
		k, err := bitpar.NewKernel(prog, threshold)
		if err != nil {
			return nil, err
		}
		tm.planeLookups.Inc()
		planes := s.d.planes()
		scan = func(lo, hi int) []core.Hit {
			return bitparToCore(k.AlignPlanesRange(planes, lo, hi))
		}
	} else {
		e, err := core.NewEngine(prog, threshold)
		if err != nil {
			return nil, err
		}
		ctxs := core.Contexts(s.d.d.Seq())
		scan = func(lo, hi int) []core.Hit {
			return e.AlignContexts(ctxs, lo, hi)
		}
	}
	scan = instrumentShard(tm, scan)
	var hits []core.Hit
	var err error
	if rp := currentBatchRetryPolicy(); rp.enabled() || faultinject.Enabled() {
		hits, err = gatherShardsResilient(ctx, sched.Shared(), rp, false, tm, shards, scan)
	} else {
		hits, err = sched.GatherCtx(ctx, sched.Shared(), len(shards), func(i int) []core.Hit {
			return scan(shards[i].Lo, shards[i].Hi)
		})
	}
	if err != nil {
		tm.recordCtxErr(err)
		return nil, err
	}
	tm.hits.Add(uint64(len(hits)))
	return hits, nil
}

// scanBatch computes a whole batch's hits against the resident database
// in one fused pass — the host.BatchAlignFunc hook installed by
// NewSession, replacing the per-query rescan loop. Large databases run
// the fused bit-parallel batch kernel over the cached planes; below the
// crossover the scalar batch engine shares one context array. Bit-exact
// with the per-query scan either way.
func (s *Session) scanBatch(ctx context.Context, progs []isa.Program, thresholds []int) ([][]core.Hit, error) {
	return scanBatchDatabase(ctx, s.d, progs, thresholds)
}

// scanBatchDatabase is the database-level fused batch scan shared by
// Session.scanBatch and AlignDatabaseBatchContext.
func scanBatchDatabase(ctx context.Context, d *Database, progs []isa.Program, thresholds []int) ([][]core.Hit, error) {
	tm := &defaultAlignerTM
	if d.Len() >= bitParThresholdLen {
		tm.planeLookups.Inc()
		raw, err := alignBatchFused(ctx, progs, thresholds, d.planes(), 0)
		if err != nil {
			return nil, err
		}
		out := make([][]core.Hit, len(raw))
		for i, hits := range raw {
			out[i] = bitparToCore(hits)
		}
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		tm.recordCtxErr(err)
		return nil, err
	}
	batch, err := core.NewBatch(progs, thresholds)
	if err != nil {
		return nil, err
	}
	tm.queries.Add(uint64(len(progs)))
	tm.batchQueries.Add(uint64(len(progs)))
	tm.kernelScalar.Add(uint64(len(progs)))
	perQuery := batch.Align(d.d.Seq())
	for _, hits := range perQuery {
		tm.hits.Add(uint64(len(hits)))
	}
	return perQuery, nil
}

// QueryTiming decomposes one query's projected end-to-end time in seconds.
type QueryTiming struct {
	Encode, QueryTransfer, Kernel, Readback, Total float64
}

// Run executes one query end-to-end and returns attributed hits plus the
// timing decomposition. It is RunContext under context.Background().
func (s *Session) Run(q *Query, thresholdFrac float64) ([]RecordHit, QueryTiming, error) {
	return s.RunContext(context.Background(), q, thresholdFrac)
}

// RunContext is Run under a context: the resident-database scan honors
// cancellation and deadlines at shard boundaries and returns ctx.Err()
// without waiting for the remaining shards.
func (s *Session) RunContext(ctx context.Context, q *Query, thresholdFrac float64) ([]RecordHit, QueryTiming, error) {
	threshold, err := core.ThresholdFromFraction(thresholdFrac, q.MaxScore())
	if err != nil {
		return nil, QueryTiming{}, err
	}
	res, err := s.s.RunQueryContext(ctx, isaProgram(q), threshold)
	if err != nil {
		return nil, QueryTiming{}, err
	}
	attributed := s.d.d.Attribute(res.Hits, q.Elements())
	out := make([]RecordHit, len(attributed))
	for i, h := range attributed {
		out[i] = RecordHit{RecordID: h.RecordID, RecordIndex: h.RecordIndex, Offset: h.Offset, Score: h.Score}
	}
	t := res.Timing
	return out, QueryTiming{
		Encode: t.EncodeSec, QueryTransfer: t.QueryTransferSec,
		Kernel: t.KernelSec, Readback: t.ReadbackSec, Total: t.TotalSec,
	}, nil
}

// RunBatch executes many queries against the resident database in one
// pass, returning per-query attributed hits and the projected end-to-end
// batch seconds. It is RunBatchContext under context.Background().
func (s *Session) RunBatch(queries []*Query, thresholdFrac float64) ([][]RecordHit, float64, error) {
	return s.RunBatchContext(context.Background(), queries, thresholdFrac)
}

// RunBatchContext is RunBatch under a context: cancellation is checked
// between queries and between shards within each query's scan, so an
// aborted batch returns ctx.Err() without scanning the remaining queries.
func (s *Session) RunBatchContext(ctx context.Context, queries []*Query, thresholdFrac float64) ([][]RecordHit, float64, error) {
	progs, err := batchPrograms(queries)
	if err != nil {
		return nil, 0, err
	}
	elems := make([]int, len(queries))
	for i, q := range queries {
		elems[i] = q.Elements()
	}
	res, err := s.s.RunBatchContext(ctx, progs, thresholdFrac)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]RecordHit, len(queries))
	for i, hits := range res.PerQuery {
		attributed := s.d.d.Attribute(hits, elems[i])
		out[i] = make([]RecordHit, len(attributed))
		for j, h := range attributed {
			out[i][j] = RecordHit{RecordID: h.RecordID, RecordIndex: h.RecordIndex, Offset: h.Offset, Score: h.Score}
		}
	}
	return out, res.TotalSec, nil
}

func isaProgram(q *Query) isa.Program { return q.program }

// batchPrograms validates every query of a batch up front — a batch either
// starts fully or fails with every offending index named, never mid-scan.
func batchPrograms(queries []*Query) ([]isa.Program, error) {
	progs := make([]isa.Program, len(queries))
	var bad []string
	for i, q := range queries {
		if q == nil || q.Elements() == 0 {
			bad = append(bad, strconv.Itoa(i))
			continue
		}
		progs[i] = q.program
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("fabp: invalid batch queries at index %s (nil or empty)",
			strings.Join(bad, ", "))
	}
	return progs, nil
}

// batchKernelInputs validates a batch and resolves every query's absolute
// threshold from the shared fraction — the inputs the fused kernel wants.
// Query errors name every offending index; fraction errors are batch-wide.
func batchKernelInputs(queries []*Query, thresholdFrac float64) ([]isa.Program, []int, error) {
	progs, err := batchPrograms(queries)
	if err != nil {
		return nil, nil, err
	}
	thresholds := make([]int, len(queries))
	for i, q := range queries {
		t, err := core.ThresholdFromFraction(thresholdFrac, q.MaxScore())
		if err != nil {
			return nil, nil, err
		}
		thresholds[i] = t
	}
	return progs, thresholds, nil
}

// alignBatchFused is the fused large-reference batch scan: all K queries
// compile into one bitpar.BatchKernel, the union of valid window starts is
// tiled into shards, and each shard's reference plane words are fetched
// ONCE for the whole batch — one pass per tile instead of K. Shards run
// on the shared pool with per-query hit streams merged in position order
// (sched.GatherBatchCtx); cancellation sheds undispatched shards for every
// query at once. shardLen 0 takes the scheduler's default; tests pass
// small values to force carry-straddling shard boundaries.
func alignBatchFused(ctx context.Context, progs []isa.Program, thresholds []int, planes *bitpar.Planes, shardLen int) ([][]bitpar.Hit, error) {
	bk, err := bitpar.NewBatchKernel(progs, thresholds)
	if err != nil {
		return nil, err
	}
	tm := &defaultAlignerTM
	k := uint64(bk.NumQueries())
	tm.queries.Add(k)
	tm.batchQueries.Add(k)
	tm.kernelBitpar.Add(k)
	starts := bk.Starts(planes.Len())
	if starts <= 0 {
		return make([][]bitpar.Hit, len(progs)), ctx.Err()
	}
	shards := sched.Plan(starts, shardLen)
	tm.shardsPlanned.Add(uint64(len(shards)))
	scanShard := func(i int) [][]bitpar.Hit {
		ts := time.Now()
		dst := bk.AlignPlanesRange(planes, shards[i].Lo, shards[i].Hi, nil)
		observeSince(tm.shardLatency, ts)
		tm.shardsRun.Inc()
		return dst
	}
	t0 := time.Now()
	var perQuery [][]bitpar.Hit
	if rp := currentBatchRetryPolicy(); rp.enabled() || faultinject.Enabled() {
		perQuery, err = gatherBatchResilient(ctx, rp, tm, shards, len(progs), scanShard)
	} else {
		perQuery, err = sched.GatherBatchCtx(ctx, sched.Shared(), len(shards), len(progs),
			func(i int) [][]bitpar.Hit { return scanShard(i) })
	}
	if err != nil {
		tm.recordCtxErr(err)
		return nil, err
	}
	observeSince(tm.batchKernelLatency, t0)
	tm.batchFusedPasses.Add(uint64(len(shards)))
	tm.batchPlaneBytesSaved.Add(uint64(len(progs)-1) * uint64(planes.SizeBytes()))
	for _, hits := range perQuery {
		tm.hits.Add(uint64(len(hits)))
	}
	return perQuery, nil
}

// bitparBatchToHits converts per-query kernel hit lists to the public type.
func bitparBatchToHits(raw [][]bitpar.Hit) [][]Hit {
	out := make([][]Hit, len(raw))
	for i, hits := range raw {
		out[i] = make([]Hit, len(hits))
		for j, h := range hits {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
	}
	return out
}

// AlignBatch scans one reference with many queries in a single fused pass,
// returning per-query hit lists. Thresholds are the given fraction of each
// query's own maximum score (rounded, not truncated). Every query is
// validated before any scanning starts. Large references pack into
// bit-planes once — cached across calls — and the fused batch kernel reads
// each reference tile once for the whole batch; small ones share the
// scalar batch engine's context array. Both paths are bit-exact with a
// serial per-query scan (see AlignBatchPerQuery). It is AlignBatchContext
// under context.Background().
func AlignBatch(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	return AlignBatchContext(context.Background(), queries, ref, thresholdFrac)
}

// AlignBatchContext is AlignBatch under a context: cancellation and
// deadlines are honored at shard boundaries for the whole batch at once —
// undispatched shards are shed for every query, shards already executing
// finish, and the call returns ctx.Err() recorded on align.canceled /
// align.deadline.exceeded. The shared plane cache is untouched by an
// abort, so a retry scans the same resident planes.
func AlignBatchContext(ctx context.Context, queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("fabp: empty batch")
	}
	progs, thresholds, err := batchKernelInputs(queries, thresholdFrac)
	if err != nil {
		return nil, err
	}
	tm := &defaultAlignerTM
	if ref.Len() >= bitParThresholdLen {
		tm.planeLookups.Inc()
		raw, err := alignBatchFused(ctx, progs, thresholds, planesForReference(ref), 0)
		if err != nil {
			return nil, err
		}
		return bitparBatchToHits(raw), nil
	}
	if err := ctx.Err(); err != nil {
		tm.recordCtxErr(err)
		return nil, err
	}
	batch, err := core.NewBatch(progs, thresholds)
	if err != nil {
		return nil, err
	}
	tm.queries.Add(uint64(len(queries)))
	tm.batchQueries.Add(uint64(len(queries)))
	tm.kernelScalar.Add(uint64(len(queries)))
	raw := batch.Align(ref.seq)
	out := make([][]Hit, len(raw))
	for i, hits := range raw {
		out[i] = make([]Hit, len(hits))
		for j, h := range hits {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
		tm.hits.Add(uint64(len(hits)))
	}
	return out, nil
}

// AlignBatchPerQuery is the pre-fusion batch path: every query rescans the
// reference independently — the scalar batch engine below the crossover,
// per-(query, shard) bit-parallel tiles above, so a K-query batch reads
// the reference planes K times. Retained as the baseline the fused path is
// proven bit-exact against in the conformance suite and benchmarked over
// (fabp-bench -batch).
func AlignBatchPerQuery(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("fabp: empty batch")
	}
	progs, err := batchPrograms(queries)
	if err != nil {
		return nil, err
	}
	if ref.Len() >= bitParThresholdLen {
		return alignBatchBitpar(queries, ref, thresholdFrac)
	}
	batch, err := core.NewBatchUniform(progs, thresholdFrac)
	if err != nil {
		return nil, err
	}
	tm := &defaultAlignerTM
	tm.queries.Add(uint64(len(queries)))
	tm.kernelScalar.Add(uint64(len(queries)))
	raw := batch.Align(ref.seq)
	out := make([][]Hit, len(raw))
	for i, hits := range raw {
		out[i] = make([]Hit, len(hits))
		for j, h := range hits {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
		tm.hits.Add(uint64(len(hits)))
	}
	return out, nil
}

// AlignDatabaseBatch scans the whole database once for every query of a
// batch and attributes each query's hits to records, dropping windows that
// span record boundaries. It is AlignDatabaseBatchContext under
// context.Background().
func AlignDatabaseBatch(d *Database, queries []*Query, thresholdFrac float64) ([][]RecordHit, error) {
	return AlignDatabaseBatchContext(context.Background(), d, queries, thresholdFrac)
}

// AlignDatabaseBatchContext is AlignDatabaseBatch under a context: the
// fused scan honors cancellation at shard boundaries (for the whole batch
// at once) and returns ctx.Err() without scanning the remaining shards.
func AlignDatabaseBatchContext(ctx context.Context, d *Database, queries []*Query, thresholdFrac float64) ([][]RecordHit, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("fabp: empty batch")
	}
	progs, thresholds, err := batchKernelInputs(queries, thresholdFrac)
	if err != nil {
		return nil, err
	}
	perQuery, err := scanBatchDatabase(ctx, d, progs, thresholds)
	if err != nil {
		return nil, err
	}
	out := make([][]RecordHit, len(queries))
	for i, hits := range perQuery {
		out[i] = toRecordHits(d.d.Attribute(hits, queries[i].Elements()))
	}
	return out, nil
}

// alignBatchBitpar is the large-reference batch path: compile and validate
// every kernel up front, fetch the reference's cached bit-planes, then run
// every (query, shard) tile on the shared worker pool and stitch per-query
// hits back together in position order.
func alignBatchBitpar(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	kernels := make([]*bitpar.Kernel, len(queries))
	var bad []string
	for i, q := range queries {
		threshold, err := core.ThresholdFromFraction(thresholdFrac, q.MaxScore())
		if err != nil {
			return nil, err // fraction errors are batch-wide, not per query
		}
		k, err := bitpar.NewKernel(q.program, threshold)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%d (%v)", i, err))
			continue
		}
		kernels[i] = k
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("fabp: invalid batch queries at index %s", strings.Join(bad, ", "))
	}

	tm := &defaultAlignerTM
	tm.queries.Add(uint64(len(queries)))
	tm.kernelBitpar.Add(uint64(len(queries)))
	tm.planeLookups.Inc()
	planes := planesForReference(ref)
	type task struct{ qi, lo, hi int }
	var tasks []task
	for qi, k := range kernels {
		for _, s := range sched.Plan(ref.Len()-k.QueryElems()+1, 0) {
			tasks = append(tasks, task{qi, s.Lo, s.Hi})
		}
	}
	tm.shardsPlanned.Add(uint64(len(tasks)))
	parts := make([][]bitpar.Hit, len(tasks))
	sched.Shared().Each(len(tasks), func(i int) {
		t := tasks[i]
		t0 := time.Now()
		parts[i] = kernels[t.qi].AlignPlanesRange(planes, t.lo, t.hi)
		observeSince(tm.shardLatency, t0)
		tm.shardsRun.Inc()
	})

	out := make([][]Hit, len(queries))
	counts := make([]int, len(queries))
	for i, t := range tasks {
		counts[t.qi] += len(parts[i])
	}
	for qi := range out {
		out[qi] = make([]Hit, 0, counts[qi])
		tm.hits.Add(uint64(counts[qi]))
	}
	// Tasks were appended per query in ascending shard order, so appending
	// in task order preserves position order within each query.
	for i, t := range tasks {
		for _, h := range parts[i] {
			out[t.qi] = append(out[t.qi], Hit{Pos: h.Pos, Score: h.Score})
		}
	}
	return out, nil
}

// alignBatchBitparSerial is the pre-scheduler batch path (pack per call,
// queries strictly one after another). It is retained as the golden
// reference the sharded path is proven bit-exact against in tests and as
// the benchmark baseline.
func alignBatchBitparSerial(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	planes := bitpar.PackReference(ref.seq)
	out := make([][]Hit, len(queries))
	for i, q := range queries {
		threshold, err := core.ThresholdFromFraction(thresholdFrac, q.MaxScore())
		if err != nil {
			return nil, err
		}
		k, err := bitpar.NewKernel(q.program, threshold)
		if err != nil {
			return nil, fmt.Errorf("fabp: batch query %d: %w", i, err)
		}
		raw := k.AlignPlanes(planes)
		out[i] = make([]Hit, len(raw))
		for j, h := range raw {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
	}
	return out, nil
}

// RunExperimentAs renders an experiment in the requested format: "text",
// "markdown" or "csv".
func RunExperimentAs(name, format string) (string, error) {
	f, err := experiments.ParseFormat(format)
	if err != nil {
		return "", err
	}
	t, err := experiments.Run(name)
	if err != nil {
		return "", err
	}
	return t.RenderAs(f)
}
