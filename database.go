package fabp

import (
	"fmt"
	"io"

	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/core"
	"fabp/internal/db"
	"fabp/internal/experiments"
	"fabp/internal/host"
	"fabp/internal/isa"
)

// Database is an indexed, 2-bit packed reference database — the DRAM image
// the accelerator scans, with a record index so hits map back to sequences.
type Database struct {
	d *db.Database
}

// BuildDatabase packs a nucleotide FASTA stream into a database.
func BuildDatabase(r io.Reader) (*Database, error) {
	recs, err := bio.NewFastaReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	d, err := db.Build(recs)
	if err != nil {
		return nil, err
	}
	return &Database{d: d}, nil
}

// DatabaseFromReference wraps a single reference sequence as a one-record
// database.
func DatabaseFromReference(id string, ref *Reference) (*Database, error) {
	d, err := db.FromSeq(id, ref.seq)
	if err != nil {
		return nil, err
	}
	return &Database{d: d}, nil
}

// SaveDatabase serializes the database to its binary file format.
func (d *Database) SaveDatabase(w io.Writer) error {
	_, err := d.d.WriteTo(w)
	return err
}

// LoadDatabase reads a database saved with SaveDatabase.
func LoadDatabase(r io.Reader) (*Database, error) {
	inner, err := db.Read(r)
	if err != nil {
		return nil, err
	}
	return &Database{d: inner}, nil
}

// Len returns the total nucleotide count.
func (d *Database) Len() int { return d.d.Len() }

// NumRecords returns the sequence count.
func (d *Database) NumRecords() int { return d.d.NumRecords() }

// RecordInfo describes one database sequence.
type RecordInfo struct {
	ID          string
	Description string
	Length      int
}

// Record returns the i-th sequence's metadata.
func (d *Database) Record(i int) RecordInfo {
	r := d.d.Record(i)
	return RecordInfo{ID: r.ID, Description: r.Description, Length: r.Length}
}

// RecordHit is an alignment hit attributed to a database record.
type RecordHit struct {
	// RecordID and RecordIndex identify the sequence.
	RecordID    string
	RecordIndex int
	// Offset is the window start within that sequence.
	Offset int
	// Score is the alignment score.
	Score int
}

// AlignDatabase scans the whole database and attributes hits to records,
// dropping windows that span record boundaries (concatenation artifacts).
func (a *Aligner) AlignDatabase(d *Database) []RecordHit {
	raw := a.alignSeq(d.d.Seq())
	attributed := d.d.Attribute(raw, a.query.Elements())
	out := make([]RecordHit, len(attributed))
	for i, h := range attributed {
		out[i] = RecordHit{
			RecordID:    h.RecordID,
			RecordIndex: h.RecordIndex,
			Offset:      h.Offset,
			Score:       h.Score,
		}
	}
	return out
}

// Session models the full deployment: an FPGA card holding the database
// resident in its DRAM, with queries streamed against it. Results are real
// (bit-exact engine); the timing decomposition follows the paper's
// end-to-end measurement protocol.
type Session struct {
	s *host.Session
	d *Database
}

// NewSession creates a session on the paper's default platform (Kintex-7
// card, PCIe Gen3 x8, 8 GB card DRAM) with the database loaded.
func NewSession(d *Database) (*Session, error) {
	s := host.NewSession(host.DefaultPlatform())
	if _, err := s.LoadDatabase(d.d.Seq()); err != nil {
		return nil, err
	}
	return &Session{s: s, d: d}, nil
}

// QueryTiming decomposes one query's projected end-to-end time in seconds.
type QueryTiming struct {
	Encode, QueryTransfer, Kernel, Readback, Total float64
}

// Run executes one query end-to-end and returns attributed hits plus the
// timing decomposition.
func (s *Session) Run(q *Query, thresholdFrac float64) ([]RecordHit, QueryTiming, error) {
	if thresholdFrac <= 0 || thresholdFrac > 1 {
		return nil, QueryTiming{}, fmt.Errorf("fabp: threshold fraction must be in (0,1]")
	}
	threshold := int(thresholdFrac * float64(q.MaxScore()))
	res, err := s.s.RunQuery(isaProgram(q), threshold)
	if err != nil {
		return nil, QueryTiming{}, err
	}
	attributed := s.d.d.Attribute(res.Hits, q.Elements())
	out := make([]RecordHit, len(attributed))
	for i, h := range attributed {
		out[i] = RecordHit{RecordID: h.RecordID, RecordIndex: h.RecordIndex, Offset: h.Offset, Score: h.Score}
	}
	t := res.Timing
	return out, QueryTiming{
		Encode: t.EncodeSec, QueryTransfer: t.QueryTransferSec,
		Kernel: t.KernelSec, Readback: t.ReadbackSec, Total: t.TotalSec,
	}, nil
}

// RunBatch executes many queries against the resident database in one
// pass, returning per-query attributed hits and the projected end-to-end
// batch seconds.
func (s *Session) RunBatch(queries []*Query, thresholdFrac float64) ([][]RecordHit, float64, error) {
	progs := make([]isa.Program, len(queries))
	elems := make([]int, len(queries))
	for i, q := range queries {
		progs[i] = isaProgram(q)
		elems[i] = q.Elements()
	}
	res, err := s.s.RunBatch(progs, thresholdFrac)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]RecordHit, len(queries))
	for i, hits := range res.PerQuery {
		attributed := s.d.d.Attribute(hits, elems[i])
		out[i] = make([]RecordHit, len(attributed))
		for j, h := range attributed {
			out[i][j] = RecordHit{RecordID: h.RecordID, RecordIndex: h.RecordIndex, Offset: h.Offset, Score: h.Score}
		}
	}
	return out, res.TotalSec, nil
}

func isaProgram(q *Query) isa.Program { return q.program }

// AlignBatch scans one reference with many queries in a single pass,
// returning per-query hit lists. Thresholds are the given fraction of each
// query's own maximum score. Large references pack into bit-planes once
// and run the bit-parallel kernel per query; small ones share the scalar
// engine's context array — both are bit-exact.
func AlignBatch(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("fabp: empty batch")
	}
	if ref.Len() >= bitParThresholdLen {
		return alignBatchBitpar(queries, ref, thresholdFrac)
	}
	progs := make([]isa.Program, len(queries))
	for i, q := range queries {
		progs[i] = q.program
	}
	batch, err := core.NewBatchUniform(progs, thresholdFrac)
	if err != nil {
		return nil, err
	}
	raw := batch.Align(ref.seq)
	out := make([][]Hit, len(raw))
	for i, hits := range raw {
		out[i] = make([]Hit, len(hits))
		for j, h := range hits {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
	}
	return out, nil
}

// alignBatchBitpar is the large-reference batch path: pack once, scan with
// every query's compiled kernel.
func alignBatchBitpar(queries []*Query, ref *Reference, thresholdFrac float64) ([][]Hit, error) {
	planes := bitpar.PackReference(ref.seq)
	out := make([][]Hit, len(queries))
	for i, q := range queries {
		threshold := int(thresholdFrac * float64(q.MaxScore()))
		k, err := bitpar.NewKernel(q.program, threshold)
		if err != nil {
			return nil, fmt.Errorf("fabp: batch query %d: %w", i, err)
		}
		raw := k.AlignPlanes(planes)
		out[i] = make([]Hit, len(raw))
		for j, h := range raw {
			out[i][j] = Hit{Pos: h.Pos, Score: h.Score}
		}
	}
	return out, nil
}

// RunExperimentAs renders an experiment in the requested format: "text",
// "markdown" or "csv".
func RunExperimentAs(name, format string) (string, error) {
	f, err := experiments.ParseFormat(format)
	if err != nil {
		return "", err
	}
	t, err := experiments.Run(name)
	if err != nil {
		return "", err
	}
	return t.RenderAs(f)
}
