module fabp

go 1.22
