package experiments

import (
	"fmt"
	"math/rand"

	"fabp/internal/axi"
	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/fpga"
	"fabp/internal/subonly"
)

// PopcountAblation reproduces the §III-D claim that the LUT-level Pop36
// pop-counter is smaller than a tree-adder HDL description, across the
// paper's operating widths.
func PopcountAblation() *Table {
	t := &Table{
		Title:  "§III-D — pop-counter area: Pop36 LUT-optimized vs tree-adder",
		Header: []string{"width (elements)", "lut-optimized", "tree-adder", "saving"},
	}
	for _, w := range []int{36, 150, 300, 450, 600, 750} {
		opt := core.PopCountLUTs(w, core.PopLUTOptimized)
		tree := core.PopCountLUTs(w, core.PopTree)
		t.AddRow(itoa(w), itoa(opt), itoa(tree), pct(1-float64(opt)/float64(tree)))
	}
	t.AddNote("paper reports ~20%% saving; our structural tree-adder spends 2 LUTs per " +
		"full-adder bit (no CARRY4 modeling), which widens the measured gap — direction and " +
		"conclusion are unchanged")
	return t
}

// ChannelScaling explores the §III-C remark that more memory channels keep
// accelerating short (bandwidth-bound) queries.
func ChannelScaling() *Table {
	t := &Table{
		Title:  "§III-C — memory-channel scaling (VU9P, time for 1 GB reference)",
		Header: []string{"query len", "channels", "fits", "iterations", "time (ms)", "speedup vs 1ch"},
	}
	dev := fpga.VirtexUS()
	for _, res := range []int{50, 150, 250} {
		var base float64
		for _, ch := range []int{1, 2, 4} {
			est := fpga.Size(dev, fpga.Config{QueryElems: 3 * res, Channels: ch})
			if !est.Fits {
				t.AddRow(itoa(res), itoa(ch), "no", "-", "-", "-")
				continue
			}
			tm := fpga.Time(est, PaperRefNucleotides, axi.NoStall{})
			if ch == 1 {
				base = tm.Seconds
			}
			t.AddRow(itoa(res), itoa(ch), "yes", itoa(est.Iterations),
				f2(tm.Seconds*1000), f2(base/tm.Seconds))
		}
	}
	t.AddNote("bandwidth-bound builds scale near-linearly with channels until LUTs run out")
	return t
}

// SerineAblationResult quantifies the sensitivity cost of the paper's UCD
// serine template (which drops AGU/AGC).
type SerineAblationResult struct {
	Queries        int
	AGYCodons      int     // serine codons encoded as AGU/AGC in the genes
	PaperRecall    float64 // hit recall with the paper-faithful template
	ExactRecall    float64 // recall with the AGY-repaired scorer
	MeanScoreDrop  float64 // mean (exact − paper) score at the true locus
	WorstScoreDrop int
}

// RunSerineAblation plants serine-rich genes (human codon usage) and
// compares detection between the hardware encoding and the AGY-repaired
// scorer.
func RunSerineAblation(seed int64, queries int) SerineAblationResult {
	return RunSerineAblationUsage(seed, queries, bio.UsageHuman())
}

// RunSerineAblationUsage is RunSerineAblation with an explicit organism
// codon-usage table, since the AGY-serine fraction (and thus the cost of
// the paper's encoding) is organism-dependent.
func RunSerineAblationUsage(seed int64, queries int, usage *bio.CodonUsage) SerineAblationResult {
	rng := rand.New(rand.NewSource(seed))
	const qLen = 40
	res := SerineAblationResult{Queries: queries}
	var dropSum float64
	for qi := 0; qi < queries; qi++ {
		// Serine-rich query: ~25% Ser.
		q := bio.RandomProtSeq(rng, qLen)
		for i := range q {
			if rng.Float64() < 0.25 {
				q[i] = bio.Ser
			}
		}
		gene := usage.EncodeGene(rng, q)
		for ci, c := range gene.Codons() {
			if q[ci] == bio.Ser && c[0] == bio.A {
				res.AGYCodons++
			}
		}
		ref := bio.RandomNucSeq(rng, 6000)
		pos := rng.Intn(len(ref) - len(gene))
		copy(ref[pos:], gene)

		max := 3 * qLen
		threshold := int(0.9 * float64(max))
		paperScore := subonly.ScoreProteinAt(q, ref, pos)
		exactScore := subonly.ExactScoreProteinAt(q, ref, pos)
		if paperScore >= threshold {
			res.PaperRecall++
		}
		if exactScore >= threshold {
			res.ExactRecall++
		}
		drop := exactScore - paperScore
		dropSum += float64(drop)
		if drop > res.WorstScoreDrop {
			res.WorstScoreDrop = drop
		}
	}
	res.PaperRecall /= float64(queries)
	res.ExactRecall /= float64(queries)
	res.MeanScoreDrop = dropSum / float64(queries)
	return res
}

// SerineAblation renders the serine study, per organism.
func SerineAblation() *Table {
	t := &Table{
		Title: "Ablation — cost of the paper's UCD serine template (drops AGU/AGC)",
		Header: []string{"organism", "queries", "AGY codons", "recall (paper)",
			"recall (repaired)", "mean shortfall", "worst"},
	}
	for _, usage := range bio.Usages() {
		r := RunSerineAblationUsage(7, 150, usage)
		t.AddRow(usage.Name(), itoa(r.Queries), itoa(r.AGYCodons),
			pct(r.PaperRecall), pct(r.ExactRecall),
			f2(r.MeanScoreDrop), itoa(r.WorstScoreDrop))
	}
	t.AddNote("each AGY serine costs up to 2 matching elements under the UCD template; " +
		"usage-weighted genes encode ~39%% (human) / ~43%% (E. coli) of serines as AGU/AGC, " +
		"so the encoding loss is organism-dependent")
	return t
}

// EncodingTable renders the full degenerate back-translation table — the
// reproduction of the paper's Fig. 2 + §III-A classification.
func EncodingTable() *Table {
	t := &Table{
		Title:  "§III-A/B — degenerate templates and 6-bit encodings",
		Header: []string{"amino acid", "codons", "template", "IUPAC", "instructions"},
	}
	for a := bio.AminoAcid(0); a < bio.NumResidues; a++ {
		tpl := backtrans.TemplateOf(a)
		var insStr string
		for i, e := range tpl {
			if i > 0 {
				insStr += " "
			}
			ins, err := encodeElement(e)
			if err != nil {
				insStr += "?"
				continue
			}
			insStr += ins
		}
		t.AddRow(
			fmt.Sprintf("%s (%s)", a.ThreeLetter(), a),
			itoa(a.Degeneracy()),
			tpl.String(),
			tpl.IUPAC(),
			insStr,
		)
	}
	t.AddNote("Ser lists 6 codons but the template covers the UCN four (paper-faithful)")
	return t
}
