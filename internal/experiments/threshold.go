package experiments

import (
	"math/rand"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// Threshold tabulates the null-score statistics behind FabP's
// "user-defined threshold": for each Fig. 6 query length, the expected
// random-window score, and the smallest thresholds holding the expected
// chance-hit count of a 1 Gnt scan to 1 and to 1e-3.
func Threshold() *Table {
	t := &Table{
		Title: "Threshold selection — null-score statistics per query length (1 Gnt scan)",
		Header: []string{"query len", "elements", "null mean", "thr @ E[FP]=1",
			"thr @ E[FP]=1e-3", "frac of max"},
	}
	rng := rand.New(rand.NewSource(13))
	for _, l := range Fig6Lengths {
		p := bio.RandomProtSeq(rng, l)
		prog := isa.MustEncodeProtein(p)
		e, err := core.NewEngine(prog, 0)
		if err != nil {
			continue
		}
		t1, err1 := e.SuggestThreshold(PaperRefNucleotides, 1)
		t2, err2 := e.SuggestThreshold(PaperRefNucleotides, 1e-3)
		if err1 != nil || err2 != nil {
			t.AddRow(itoa(l), itoa(len(prog)), f1(e.MeanScore()), "-", "-", "-")
			continue
		}
		t.AddRow(itoa(l), itoa(len(prog)), f1(e.MeanScore()),
			itoa(t1), itoa(t2), f2(float64(t2)/float64(len(prog))))
	}
	t.AddNote("random windows match ~44%% of elements; useful thresholds sit several " +
		"sigma above, far below the 80-90%% a true homolog scores")
	return t
}

// Timing tabulates generated-netlist depth and estimated Fmax across build
// shapes — the timing-closure picture behind the paper's 200 MHz operating
// point (the real design pipelines the pop-counter; the unpipelined cone
// shown here is the budget that pipelining divides).
func Timing() *Table {
	t := &Table{
		Title:  "Netlist timing — combinational depth and estimated Fmax (unpipelined cone)",
		Header: []string{"build", "LUTs", "FFs", "depth (levels)", "est. Fmax (MHz)"},
	}
	type build struct {
		name string
		cfg  core.NetlistConfig
	}
	builds := []build{
		{"q4 full-rate", core.NetlistConfig{QueryElems: 12, Beat: 8, Threshold: 8}},
		{"q4 tree-adder", core.NetlistConfig{QueryElems: 12, Beat: 8, Threshold: 8, Pop: core.PopTree}},
		{"q12 full-rate", core.NetlistConfig{QueryElems: 36, Beat: 8, Threshold: 24}},
		{"q12 pipelined pop", core.NetlistConfig{QueryElems: 36, Beat: 8, Threshold: 24, PipelinedPop: true}},
		{"q12 segmented x3", core.NetlistConfig{QueryElems: 36, Beat: 8, Threshold: 24, Iterations: 3}},
		{"q12 + write-back", core.NetlistConfig{QueryElems: 36, Beat: 8, Threshold: 24, WriteBack: true}},
	}
	for _, b := range builds {
		n, _, err := core.BuildNetlist(b.cfg)
		if err != nil {
			t.AddRow(b.name, "-", "-", "-", "-")
			continue
		}
		depth, err := n.Depth()
		if err != nil {
			continue
		}
		s := n.Stats()
		t.AddRow(b.name, itoa(s.LUTs), itoa(s.FFs), itoa(depth),
			f1(rtl.FMaxEstimate(depth)/1e6))
	}
	t.AddNote("the segmented datapath's mux+compare+pop+accumulate cone is the deepest — " +
		"the reason the real design pipelines it and Table I still closes at 200 MHz")
	t.AddNote("at toy sizes the segment muxes outweigh the comparator savings; segmentation " +
		"pays off once segments span hundreds of elements (the FabP-250 regime)")
	return t
}
