package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("n=%d", 5)
	out := tb.Render()
	for _, want := range []string{"T\n=", "a    bb", "333  4", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFig6aShape asserts the paper's qualitative and quantitative speedup
// claims from the model series.
func TestFig6aShape(t *testing.T) {
	gpu, cpu12, err := Fig6aAverages()
	if err != nil {
		t.Fatal(err)
	}
	// FabP beats the GPU slightly and the CPU hugely; who-wins must hold.
	if gpu < 1.0 || gpu > 1.35 {
		t.Errorf("FabP/GPU average %.3f outside [1.0, 1.35] (paper 1.081)", gpu)
	}
	if math.Abs(cpu12-24.8)/24.8 > 0.25 {
		t.Errorf("FabP/CPU-12 average %.1f, paper 24.8 (tol 25%%)", cpu12)
	}
	tb, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(Fig6Lengths) {
		t.Errorf("row per query length expected")
	}
}

func TestFig6bShape(t *testing.T) {
	gpu, cpu12, err := Fig6bAverages()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gpu-23.2)/23.2 > 0.35 {
		t.Errorf("energy vs GPU %.1f, paper 23.2", gpu)
	}
	if math.Abs(cpu12-266.8)/266.8 > 0.35 {
		t.Errorf("energy vs CPU-12 %.1f, paper 266.8", cpu12)
	}
	if _, err := Fig6b(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Rows(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 3 {
		t.Fatalf("want available + 2 builds, got %d rows", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"FabP-50", "FabP-250", "326k", "12.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestCrossoverInRange(t *testing.T) {
	c := CrossoverResidues()
	if c < 50 || c > 110 {
		t.Errorf("crossover %d residues, paper ~70", c)
	}
	tb := Crossover()
	if len(tb.Rows) == 0 {
		t.Error("crossover sweep empty")
	}
}

func TestAccuracyStudy(t *testing.T) {
	// Small but statistically meaningful configuration for CI.
	r := RunAccuracy(AccuracyConfig{
		RefLen: 60_000, Genes: 8, GeneLen: 100, Queries: 60, QueryLen: 50,
	})
	if r.FabPRecallSub < 0.95 {
		t.Errorf("substitution-only recall %.2f should be near 1", r.FabPRecallSub)
	}
	if r.TBLASTNRecall < 0.9 {
		t.Errorf("TBLASTN recall %.2f should be near 1", r.TBLASTNRecall)
	}
	if r.MeanScoreFrac < 0.85 {
		t.Errorf("mean true-locus score fraction %.2f too low", r.MeanScoreFrac)
	}
	// The accuracy drop must be confined to the indel slice.
	drop := r.FabPRecallSub - r.FabPRecall
	if drop > r.IndelFraction+0.02 {
		t.Errorf("overall recall drop %.3f exceeds indel incidence %.3f", drop, r.IndelFraction)
	}
	if r.PoissonPredict <= 0 || r.PoissonPredict > 0.1 {
		t.Errorf("Poisson prediction %.4f implausible", r.PoissonPredict)
	}
}

func TestSerineAblationNumbers(t *testing.T) {
	r := RunSerineAblation(3, 60)
	if r.AGYCodons == 0 {
		t.Fatal("workload must contain AGY serines")
	}
	if r.ExactRecall < r.PaperRecall {
		t.Error("AGY repair can only help")
	}
	if r.ExactRecall != 1.0 {
		t.Errorf("exact scorer must always detect the perfect gene, got %.2f", r.ExactRecall)
	}
	if r.MeanScoreDrop <= 0 {
		t.Error("serine-rich genes must show a score shortfall")
	}
	if r.WorstScoreDrop <= 0 {
		t.Error("worst drop must be positive")
	}
}

func TestPopcountAblationTable(t *testing.T) {
	tb := PopcountAblation()
	if len(tb.Rows) < 4 {
		t.Error("expected several widths")
	}
	for _, row := range tb.Rows {
		if !strings.HasSuffix(row[3], "%") {
			t.Errorf("saving cell %q not a percentage", row[3])
		}
	}
}

func TestChannelScalingTable(t *testing.T) {
	tb := ChannelScaling()
	out := tb.Render()
	if !strings.Contains(out, "channels") {
		t.Error("missing channels column")
	}
	if len(tb.Rows) != 9 {
		t.Errorf("expected 3 lengths × 3 channel counts, got %d rows", len(tb.Rows))
	}
}

func TestEncodingTableComplete(t *testing.T) {
	tb := EncodingTable()
	if len(tb.Rows) != 21 {
		t.Fatalf("expected 21 residues, got %d", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"Met", "AUG", "UU(U/C)", "(A/C)G(F:10)"} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding table missing %q", want)
		}
	}
}

func TestThresholdTable(t *testing.T) {
	tb := Threshold()
	if len(tb.Rows) != len(Fig6Lengths) {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[3] == "-" {
			t.Errorf("threshold suggestion failed for length %s", row[0])
		}
	}
}

func TestTimingTable(t *testing.T) {
	tb := Timing()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	out := tb.Render()
	if strings.Contains(out, "-  -  -") {
		t.Error("a build failed to generate")
	}
}

func TestPrecisionTable(t *testing.T) {
	tb := Precision()
	if len(tb.Rows) != 21 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	out := tb.Render()
	// The three dependent-comparison amino acids are exactly where IUPAC
	// over-accepts.
	for _, want := range []string{"UUC(F)", "AGC(S)", "UGG(W)"} {
		if !strings.Contains(out, want) {
			t.Errorf("precision table missing %q", want)
		}
	}
	if !strings.Contains(out, "5 wrong codons") {
		t.Error("total false-accept count should be 5")
	}
}

func TestMeasuredQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured comparison skipped in -short")
	}
	r := RunMeasured(MeasuredConfig{RefLen: 300_000, QueryLen: 40, Threads: 4})
	if r.EngineSec <= 0 || r.TBLASTN1Sec <= 0 || r.TBLASTNnSec <= 0 {
		t.Errorf("timings must be positive: %+v", r)
	}
	if r.EngineHits == 0 {
		t.Error("engine should find the planted gene")
	}
	tb := Measured(MeasuredConfig{RefLen: 150_000, QueryLen: 40, Threads: 2})
	if !strings.Contains(tb.Render(), "TBLASTN") {
		t.Error("measured table malformed")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short")
	}
	for _, name := range Names() {
		if name == "measured" || name == "accuracy" {
			continue // exercised with smaller configs above
		}
		tb, err := Run(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tb == nil || len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
	names := Names()
	if len(names) < 9 {
		t.Errorf("registry too small: %v", names)
	}
}
