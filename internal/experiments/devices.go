package experiments

import (
	"fabp/internal/fpga"
	"fabp/internal/perf"
)

// Devices projects FabP across the modeled FPGA parts — the §IV-B remark
// that "an FPGA with more LUTs can outperform the GPU-based
// implementation" made quantitative: per device and query length, the
// sized iteration count, scan time and energy, with the GPU model as the
// yardstick.
func Devices() *Table {
	t := &Table{
		Title: "Device scaling — FabP across FPGA parts vs the GTX 1080Ti model (1 Gnt scan)",
		Header: []string{"device", "query len", "fits", "iter", "LUT",
			"time (ms)", "energy (J)", "vs GPU speed"},
	}
	gpu := perf.DefaultGPU()
	for _, dev := range fpga.Catalog() {
		for _, l := range []int{50, 150, 250} {
			est := fpga.Size(dev, fpga.Config{QueryElems: 3 * l})
			if !est.Fits {
				t.AddRow(dev.Name, itoa(l), "no", "-", "-", "-", "-", "-")
				continue
			}
			tm := fpga.Time(est, PaperRefNucleotides, nil)
			g := gpu.Time(l, PaperRefNucleotides)
			t.AddRow(dev.Name, itoa(l), "yes", itoa(est.Iterations),
				pct(est.LUTFrac()), f1(tm.Seconds*1000), f2(tm.EnergyJoules),
				f2(g.Seconds/tm.Seconds))
		}
	}
	t.AddNote("the VU9P's larger LUT budget defers segmentation, keeping long queries " +
		"bandwidth-bound and ahead of the GPU — the paper's §IV-B prediction")
	return t
}
