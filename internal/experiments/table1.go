package experiments

import (
	"fmt"

	"fabp/internal/fpga"
)

// paperTable1 pins the published utilization rows for the comparison
// columns.
var paperTable1 = map[int]struct {
	lut, ff, bram, dsp float64
	bwGBs              float64
}{
	50:  {0.58, 0.16, 0.19, 0.31, 12.2},
	250: {0.98, 0.40, 0.15, 0.68, 3.4},
}

// Table1 reproduces the paper's Table I: resource utilization and achieved
// DRAM bandwidth of FabP-50 and FabP-250 on the Kintex-7.
func Table1() *Table {
	dev := fpga.Kintex7()
	t := &Table{
		Title: "Table I — FabP resource utilization on " + dev.Name,
		Header: []string{"build", "iter", "LUT", "LUT(paper)", "FF", "FF(paper)",
			"BRAM", "BRAM(paper)", "DSP", "DSP(paper)", "BW GB/s", "BW(paper)"},
	}
	t.AddRow("available", "-",
		fmt.Sprintf("%dk", dev.LUTs/1000), "326k",
		fmt.Sprintf("%dk", dev.FFs/1000), "407k",
		fmt.Sprintf("%dMb", dev.BRAMKb/1024), "16Mb",
		itoa(dev.DSPs), "840",
		f1(dev.Port.NominalBandwidth()/1e9), "12.8")
	for _, residues := range []int{50, 250} {
		est := fpga.Size(dev, fpga.Config{QueryElems: 3 * residues})
		tm := fpga.Time(est, PaperRefNucleotides, nil)
		p := paperTable1[residues]
		t.AddRow(
			fmt.Sprintf("FabP-%d", residues),
			itoa(est.Iterations),
			pct(est.LUTFrac()), pct(p.lut),
			pct(est.FFFrac()), pct(p.ff),
			pct(est.BRAMFrac()), pct(p.bram),
			pct(est.DSPFrac()), pct(p.dsp),
			f1(tm.AchievedBandwidth/1e9), f1(p.bwGBs),
		)
	}
	t.AddNote("structural LUT/FF counts come from generated netlists; control/WB overheads calibrated once against the paper (DESIGN.md §7)")
	return t
}

// Crossover reproduces the §IV-B analysis: sweep query length and report
// where the design flips from bandwidth-bound to resource-bound (the paper
// locates it at ~70 residues).
func Crossover() *Table {
	dev := fpga.Kintex7()
	t := &Table{
		Title:  "§IV-B — bandwidth/resource crossover sweep on " + dev.Name,
		Header: []string{"query len", "iterations", "LUT", "bottleneck", "BW GB/s"},
	}
	prev := ""
	cross := -1
	for res := 10; res <= 250; res += 10 {
		est := fpga.Size(dev, fpga.Config{QueryElems: 3 * res})
		tm := fpga.Time(est, PaperRefNucleotides/10, nil)
		b := est.Bottleneck()
		if prev == "bandwidth-bound" && b == "resource-bound" && cross < 0 {
			cross = res
		}
		prev = b
		t.AddRow(itoa(res), itoa(est.Iterations), pct(est.LUTFrac()), b, f1(tm.AchievedBandwidth/1e9))
	}
	t.AddNote("crossover at ~%d residues (paper: ~70); the model omits routing-congestion area inflation, shifting it later", cross)
	return t
}

// CrossoverResidues returns just the crossover point for assertions.
func CrossoverResidues() int {
	dev := fpga.Kintex7()
	prev := ""
	for res := 10; res <= 250; res += 5 {
		est := fpga.Size(dev, fpga.Config{QueryElems: 3 * res})
		b := est.Bottleneck()
		if prev == "bandwidth-bound" && b == "resource-bound" {
			return res
		}
		prev = b
	}
	return -1
}
