package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Format selects a table rendering.
type Format string

// Supported table output formats.
const (
	// FormatText is the aligned monospace default.
	FormatText Format = "text"
	// FormatMarkdown renders a GitHub-flavoured markdown table.
	FormatMarkdown Format = "markdown"
	// FormatCSV renders RFC-4180 CSV (notes become # comment lines).
	FormatCSV Format = "csv"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatMarkdown, FormatCSV, "":
		if s == "" {
			return FormatText, nil
		}
		return Format(s), nil
	}
	return "", fmt.Errorf("experiments: unknown format %q (text, markdown, csv)", s)
}

// RenderAs renders the table in the requested format.
func (t *Table) RenderAs(f Format) (string, error) {
	switch f {
	case FormatText, "":
		return t.Render(), nil
	case FormatMarkdown:
		return t.renderMarkdown(), nil
	case FormatCSV:
		return t.renderCSV()
	}
	return "", fmt.Errorf("experiments: unknown format %q", f)
}

func (t *Table) renderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	escape := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, h := range t.Header {
		b.WriteString(" " + escape(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i := range t.Header {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(" " + escape(cell) + " |")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func (t *Table) renderCSV() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	w := csv.NewWriter(&b)
	if err := w.Write(t.Header); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String(), nil
}
