package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/core"
	"fabp/internal/isa"
	"fabp/internal/tblastn"
)

func encodeElement(e backtrans.Element) (string, error) {
	ins, err := isa.Encode(e)
	if err != nil {
		return "", err
	}
	return ins.String(), nil
}

// MeasuredConfig scales the reduced-size measured comparison of our real Go
// implementations (not models): the software FabP engine versus our TBLASTN
// at 1 and N threads.
type MeasuredConfig struct {
	// RefLen is the reference size in nucleotides (default 4 Mnt — scaled
	// down from the paper's 1 Gnt so it runs in seconds).
	RefLen int
	// QueryLen is the query length in residues.
	QueryLen int
	// Threads is the multi-threaded TBLASTN worker count.
	Threads int
	// Seed fixes the workload.
	Seed int64
}

func (c MeasuredConfig) defaults() MeasuredConfig {
	if c.RefLen == 0 {
		c.RefLen = 4_000_000
	}
	if c.QueryLen == 0 {
		c.QueryLen = 50
	}
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 99
	}
	return c
}

// MeasuredResult holds wall-clock seconds of the real implementations.
type MeasuredResult struct {
	Config       MeasuredConfig
	EngineSec    float64 // software FabP engine (scalar, bit-exact)
	BitParSec    float64 // bit-parallel kernel (the GPU algorithm)
	TBLASTN1Sec  float64
	TBLASTNnSec  float64
	EngineHits   int
	BitParHits   int
	TBLASTNHsps  int
	ThreadsUsed  int
	SpeedupOverT float64 // TBLASTN-n time / engine time
	// BitParCellsPerSec is the kernel's measured element-comparison
	// throughput, the quantity the GPU model's calibration rests on.
	BitParCellsPerSec float64
}

// RunMeasured executes the real Go implementations on a scaled-down
// workload. These numbers validate the *shape* of the model comparison
// (sequential scan vs hash-lookup pipeline) on actual hardware; they are
// not FPGA projections.
func RunMeasured(cfg MeasuredConfig) MeasuredResult {
	cfg = cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ref, genes := bio.SyntheticReference(rng, cfg.RefLen, 10, cfg.QueryLen*2)
	g := genes[0]
	query := g.Protein[:cfg.QueryLen]

	res := MeasuredResult{Config: cfg, ThreadsUsed: cfg.Threads}

	prog := isa.MustEncodeProtein(query)
	threshold := int(0.8 * float64(len(prog)))
	engine, err := core.NewEngine(prog, threshold)
	if err == nil {
		start := time.Now()
		hits := engine.Align(ref)
		res.EngineSec = time.Since(start).Seconds()
		res.EngineHits = len(hits)
	}

	if kernel, err := bitpar.NewKernel(prog, threshold); err == nil {
		start := time.Now()
		hits := kernel.Align(ref)
		res.BitParSec = time.Since(start).Seconds()
		res.BitParHits = len(hits)
		if res.BitParSec > 0 {
			res.BitParCellsPerSec = float64(len(prog)) * float64(len(ref)) / res.BitParSec
		}
	}

	start := time.Now()
	hsps1, _, err1 := tblastn.Search(query, ref, tblastn.Options{Threads: 1})
	res.TBLASTN1Sec = time.Since(start).Seconds()
	if err1 == nil {
		res.TBLASTNHsps = len(hsps1)
	}

	start = time.Now()
	_, _, _ = tblastn.Search(query, ref, tblastn.Options{Threads: cfg.Threads})
	res.TBLASTNnSec = time.Since(start).Seconds()

	if res.EngineSec > 0 {
		res.SpeedupOverT = res.TBLASTNnSec / res.EngineSec
	}
	return res
}

// Measured renders the reduced-scale measured comparison.
func Measured(cfg MeasuredConfig) *Table {
	r := RunMeasured(cfg)
	t := &Table{
		Title:  "Measured (reduced scale) — real Go implementations, wall clock",
		Header: []string{"implementation", "seconds", "notes"},
	}
	t.AddRow("FabP engine (scalar, bit-exact)", f3(r.EngineSec), itoa(r.EngineHits)+" hits")
	t.AddRow("FabP bit-parallel kernel (GPU algorithm)", f3(r.BitParSec),
		fmt.Sprintf("%d hits, %.2g cells/s", r.BitParHits, r.BitParCellsPerSec))
	t.AddRow("TBLASTN (1 thread)", f3(r.TBLASTN1Sec), itoa(r.TBLASTNHsps)+" HSPs")
	t.AddRow("TBLASTN ("+itoa(r.ThreadsUsed)+" threads)", f3(r.TBLASTNnSec), "")
	t.AddNote("reference %d nt, query %d aa; CPU-only sanity check of pipeline shapes — "+
		"FPGA projections come from the fpga/perf models", r.Config.RefLen, r.Config.QueryLen)
	return t
}
