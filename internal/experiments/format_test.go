package experiments

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "Sample", Header: []string{"name", "value"}}
	t.AddRow("alpha", "1")
	t.AddRow("with|pipe", "2,3")
	t.AddNote("a note")
	return t
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"", "text", "markdown", "csv"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format must fail")
	}
	if f, _ := ParseFormat(""); f != FormatText {
		t.Error("empty defaults to text")
	}
}

func TestRenderMarkdown(t *testing.T) {
	out, err := sampleTable().RenderAs(FormatMarkdown)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### Sample", "| name | value |", "|---|---|", "with\\|pipe", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	out, err := sampleTable().RenderAs(FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Sample", "name,value", `"2,3"`, "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAsText(t *testing.T) {
	out, err := sampleTable().RenderAs(FormatText)
	if err != nil || out != sampleTable().Render() {
		t.Error("text format must match Render")
	}
	if _, err := sampleTable().RenderAs(Format("bogus")); err == nil {
		t.Error("bogus format must fail")
	}
}
