package experiments

import (
	"fmt"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
)

// Precision quantifies what the paper's Type III dependent comparison buys
// over the conventional IUPAC consensus back-translation (Fig. 1): for
// each amino acid, how many of the 64 codons each representation accepts,
// and which wrong codons the IUPAC over-approximation lets through. The
// FabP encoding is exact for every amino acid except the documented serine
// case; an IUPAC consensus must over-accept wherever codon families differ
// in their third-position sets (Leu, Arg, Stop).
func Precision() *Table {
	t := &Table{
		Title: "Encoding precision — FabP Type-III templates vs IUPAC consensus",
		Header: []string{"amino acid", "true codons", "FabP accepts", "IUPAC accepts",
			"IUPAC false accepts", "example false accept"},
	}
	totalFalse := 0
	for a := bio.AminoAcid(0); a < bio.NumResidues; a++ {
		tpl := backtrans.TemplateOf(a)
		iupac := tpl.IUPAC()
		fabpAccepts, iupacAccepts := 0, 0
		var falseAccepts []string
		for i := 0; i < bio.NumCodons; i++ {
			c := bio.CodonFromIndex(i)
			seq := bio.NucSeq{c[0], c[1], c[2]}
			if tpl.MatchesCodon(c) {
				fabpAccepts++
			}
			if bio.IUPACMatchesSeq(iupac, seq) {
				iupacAccepts++
				if c.Translate() != a {
					falseAccepts = append(falseAccepts,
						fmt.Sprintf("%s(%s)", c, c.Translate()))
				}
			}
		}
		example := "-"
		if len(falseAccepts) > 0 {
			example = falseAccepts[0]
		}
		totalFalse += len(falseAccepts)
		t.AddRow(
			fmt.Sprintf("%s (%s)", a.ThreeLetter(), a),
			itoa(a.Degeneracy()),
			itoa(fabpAccepts),
			itoa(iupacAccepts),
			itoa(len(falseAccepts)),
			example,
		)
	}
	t.AddNote("IUPAC consensus over-accepts %d wrong codons in total; FabP's dependent "+
		"comparison accepts none (it under-accepts only the two dropped AGY serines)", totalFalse)
	return t
}
