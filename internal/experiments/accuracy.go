package experiments

import (
	"math"
	"math/rand"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/isa"
	"fabp/internal/tblastn"
)

// AccuracyConfig scales the §IV-A accuracy study. Zero values take the
// quick defaults below (CI-sized); cmd/fabp-bench can run it larger.
type AccuracyConfig struct {
	// RefLen is the synthetic reference length in nucleotides.
	RefLen int
	// Genes is the number of planted source genes.
	Genes int
	// GeneLen is the planted gene length in residues.
	GeneLen int
	// Queries is the number of sampled query proteins.
	Queries int
	// QueryLen is the query length in residues.
	QueryLen int
	// Model is the divergence model (defaults to the paper's).
	Model bio.MutationModel
	// ThresholdFrac is the FabP hit threshold as a fraction of the
	// maximum score.
	ThresholdFrac float64
	// Seed fixes the workload.
	Seed int64
}

func (c AccuracyConfig) defaults() AccuracyConfig {
	if c.RefLen == 0 {
		c.RefLen = 120_000
	}
	if c.Genes == 0 {
		c.Genes = 12
	}
	if c.GeneLen == 0 {
		c.GeneLen = 120
	}
	if c.Queries == 0 {
		c.Queries = 200
	}
	if c.QueryLen == 0 {
		c.QueryLen = 50
	}
	if c.Model == (bio.MutationModel{}) {
		c.Model = bio.DefaultMutationModel()
	}
	if c.ThresholdFrac == 0 {
		c.ThresholdFrac = 0.8
	}
	if c.Seed == 0 {
		c.Seed = 2021
	}
	return c
}

// AccuracyResult aggregates the study.
type AccuracyResult struct {
	Config         AccuracyConfig
	Queries        int
	IndelQueries   int     // queries whose divergence included an indel
	IndelFraction  float64 // IndelQueries / Queries
	FabPRecall     float64 // fraction of queries whose true locus FabP hit
	TBLASTNRecall  float64 // same for the heuristic DP baseline
	FabPRecallSub  float64 // recall among substitution-only queries
	FabPRecallInd  float64 // recall among indel-containing queries
	MeanScoreFrac  float64 // mean FabP score at the true locus / max score
	PoissonPredict float64 // analytic P(>=1 indel) under the model
}

// RunAccuracy samples diverged queries from planted genes and measures how
// often FabP's substitution-only scoring still detects the true locus,
// versus the TBLASTN baseline that tolerates indels via seeding. It
// reproduces the paper's argument that indels are rare enough for
// substitution-only alignment to lose almost nothing.
func RunAccuracy(cfg AccuracyConfig) AccuracyResult {
	cfg = cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ref, genes := bio.SyntheticReference(rng, cfg.RefLen, cfg.Genes, cfg.GeneLen)

	res := AccuracyResult{Config: cfg, Queries: cfg.Queries}
	lambda := cfg.Model.IndelRatePerKB * float64(3*cfg.QueryLen) / 1000
	res.PoissonPredict = 1 - math.Exp(-lambda)

	var fabpHits, tblastnHits, fabpSubHits, subQueries, fabpIndHits int
	var scoreFracSum float64

	for qi := 0; qi < cfg.Queries; qi++ {
		g := genes[rng.Intn(len(genes))]
		off := rng.Intn(cfg.GeneLen - cfg.QueryLen + 1)
		orig := g.Protein[off : off+cfg.QueryLen]
		truth := g.Pos + 3*off

		query, stats := cfg.Model.Mutate(rng, orig)
		if stats.HasIndel() {
			res.IndelQueries++
		} else {
			subQueries++
		}

		// FabP: substitution-only scan at the configured threshold.
		prog := isa.MustEncodeProtein(query)
		maxScore := len(prog)
		threshold := int(cfg.ThresholdFrac * float64(maxScore))
		engine, err := core.NewEngine(prog, threshold)
		if err != nil {
			continue
		}
		hits := engine.Align(ref)
		found := false
		for _, h := range hits {
			// Indels shift the locus by up to the indel length in codons.
			if abs(h.Pos-truth) <= 3*(stats.Insertions+stats.Deletions)+2 {
				found = true
				break
			}
		}
		if found {
			fabpHits++
			if stats.HasIndel() {
				fabpIndHits++
			} else {
				fabpSubHits++
			}
		}
		scoreFracSum += float64(engine.Score(ref, clamp(truth, 0, len(ref)-len(prog)))) / float64(maxScore)

		// TBLASTN baseline.
		hsps, _, err := tblastn.Search(query, ref, tblastn.Options{Frames: 3, Threads: 1})
		if err == nil {
			for _, h := range hsps {
				if h.Frame < 3 && abs(h.NucPos-truth) <= 3*cfg.QueryLen {
					tblastnHits++
					break
				}
			}
		}
	}

	res.IndelFraction = float64(res.IndelQueries) / float64(cfg.Queries)
	res.FabPRecall = float64(fabpHits) / float64(cfg.Queries)
	res.TBLASTNRecall = float64(tblastnHits) / float64(cfg.Queries)
	if subQueries > 0 {
		res.FabPRecallSub = float64(fabpSubHits) / float64(subQueries)
	}
	if res.IndelQueries > 0 {
		res.FabPRecallInd = float64(fabpIndHits) / float64(res.IndelQueries)
	}
	res.MeanScoreFrac = scoreFracSum / float64(cfg.Queries)
	return res
}

// Accuracy renders the §IV-A study as a table.
func Accuracy(cfg AccuracyConfig) *Table {
	r := RunAccuracy(cfg)
	t := &Table{
		Title:  "§IV-A — indel incidence and substitution-only accuracy",
		Header: []string{"metric", "value"},
	}
	t.AddRow("queries sampled", itoa(r.Queries))
	t.AddRow("queries with >=1 indel", itoa(r.IndelQueries))
	t.AddRow("indel incidence (measured)", pct(r.IndelFraction))
	t.AddRow("indel incidence (Poisson model)", pct(r.PoissonPredict))
	t.AddRow("FabP recall (all queries)", pct(r.FabPRecall))
	t.AddRow("FabP recall (substitution-only queries)", pct(r.FabPRecallSub))
	t.AddRow("FabP recall (indel queries)", pct(r.FabPRecallInd))
	t.AddRow("TBLASTN recall (all queries)", pct(r.TBLASTNRecall))
	t.AddRow("mean FabP score at true locus / max", f3(r.MeanScoreFrac))
	t.AddNote("paper: 2 of 10,000 NCBI-sampled queries (~0.02%%) involved indels; " +
		"the cited distribution [18] (0.09 indels/kb) predicts the Poisson row — " +
		"accuracy loss is confined to the indel slice either way")
	return t
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
