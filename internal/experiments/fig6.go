package experiments

import (
	"fmt"

	"fabp/internal/fpga"
	"fabp/internal/perf"
)

// Fig6Lengths are the protein query lengths of Fig. 6.
var Fig6Lengths = []int{50, 100, 150, 200, 250}

// PaperRefNucleotides is the evaluation database size: 1 GB of sequence
// data ≈ 1e9 nucleotides (NCBI nt sample).
const PaperRefNucleotides = 1_000_000_000

// paperFig6 holds the paper's reported in-text averages for comparison
// columns.
const (
	paperGPUSpeedupAvg   = 1.081
	paperCPU12SpeedupAvg = 24.8
	paperGPUEnergyAvg    = 23.2
	paperCPU12EnergyAvg  = 266.8
)

// fig6Point is one column of Fig. 6: all platforms at one query length.
type fig6Point struct {
	queryLen               int
	cpu1, cpu12, gpu, fabp perf.Result
}

// fig6Series evaluates every platform model at every Fig. 6 query length.
func fig6Series(refNT int) ([]fig6Point, error) {
	dev := fpga.Kintex7()
	gpu := perf.DefaultGPU()
	cpu1 := perf.DefaultCPU(1)
	cpu12 := perf.DefaultCPU(12)
	var out []fig6Point
	for _, l := range Fig6Lengths {
		f, err := perf.FPGA(dev, l, refNT)
		if err != nil {
			return nil, err
		}
		out = append(out, fig6Point{
			queryLen: l,
			cpu1:     cpu1.Time(l, refNT),
			cpu12:    cpu12.Time(l, refNT),
			gpu:      gpu.Time(l, refNT),
			fabp:     f,
		})
	}
	return out, nil
}

// Fig6a reproduces Fig. 6(a): execution-time speedup of every platform
// normalized to single-thread TBLASTN, per query length.
func Fig6a() (*Table, error) {
	points, err := fig6Series(PaperRefNucleotides)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 6(a) — speedup over 1-thread TBLASTN (higher is better)",
		Header: []string{"query len", "CPU-1", "CPU-12", "GPU", "FabP", "FabP/GPU", "FabP/CPU-12"},
	}
	var sumGPU, sumCPU float64
	for _, p := range points {
		base := p.cpu1
		nCPU12 := perf.Normalize(base, p.cpu12).Speedup
		nGPU := perf.Normalize(base, p.gpu).Speedup
		nFabP := perf.Normalize(base, p.fabp).Speedup
		sumGPU += nFabP / nGPU
		sumCPU += nFabP / nCPU12
		t.AddRow(
			itoa(p.queryLen), f2(1.0), f2(nCPU12), f2(nGPU), f2(nFabP),
			f3(nFabP/nGPU), f1(nFabP/nCPU12),
		)
	}
	n := float64(len(points))
	t.AddNote("average FabP/GPU speedup: %.3fx (paper: %.3fx)", sumGPU/n, paperGPUSpeedupAvg)
	t.AddNote("average FabP/CPU-12 speedup: %.1fx (paper: %.1fx)", sumCPU/n, paperCPU12SpeedupAvg)
	return t, nil
}

// Fig6aAverages returns the two headline speedup averages (FabP vs GPU and
// FabP vs CPU-12) for programmatic assertions.
func Fig6aAverages() (gpu, cpu12 float64, err error) {
	points, err := fig6Series(PaperRefNucleotides)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range points {
		gpu += p.gpu.Seconds / p.fabp.Seconds
		cpu12 += p.cpu12.Seconds / p.fabp.Seconds
	}
	n := float64(len(points))
	return gpu / n, cpu12 / n, nil
}

// Fig6b reproduces Fig. 6(b): energy efficiency normalized to single-thread
// TBLASTN.
func Fig6b() (*Table, error) {
	points, err := fig6Series(PaperRefNucleotides)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 6(b) — energy efficiency over 1-thread TBLASTN (higher is better)",
		Header: []string{"query len", "CPU-1", "CPU-12", "GPU", "FabP", "FabP/GPU", "FabP/CPU-12"},
	}
	var sumGPU, sumCPU float64
	for _, p := range points {
		base := p.cpu1
		nCPU12 := perf.Normalize(base, p.cpu12).EnergyEfficiency
		nGPU := perf.Normalize(base, p.gpu).EnergyEfficiency
		nFabP := perf.Normalize(base, p.fabp).EnergyEfficiency
		sumGPU += nFabP / nGPU
		sumCPU += nFabP / nCPU12
		t.AddRow(
			itoa(p.queryLen), f2(1.0), f2(nCPU12), f1(nGPU), f1(nFabP),
			f1(nFabP/nGPU), f1(nFabP/nCPU12),
		)
	}
	n := float64(len(points))
	t.AddNote("average FabP/GPU energy efficiency: %.1fx (paper: %.1fx)", sumGPU/n, paperGPUEnergyAvg)
	t.AddNote("average FabP/CPU-12 energy efficiency: %.1fx (paper: %.1fx)", sumCPU/n, paperCPU12EnergyAvg)
	return t, nil
}

// Fig6bAverages returns the two headline energy-ratio averages.
func Fig6bAverages() (gpu, cpu12 float64, err error) {
	points, err := fig6Series(PaperRefNucleotides)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range points {
		gpu += p.gpu.EnergyJoules() / p.fabp.EnergyJoules()
		cpu12 += p.cpu12.EnergyJoules() / p.fabp.EnergyJoules()
	}
	n := float64(len(points))
	return gpu / n, cpu12 / n, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
