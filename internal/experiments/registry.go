package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one experiment table.
type Runner func() (*Table, error)

// Registry maps experiment ids (as used by `fabp-bench -exp`) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig6a":    Fig6a,
		"fig6b":    Fig6b,
		"table1":   func() (*Table, error) { return Table1(), nil },
		"accuracy": func() (*Table, error) { return Accuracy(AccuracyConfig{}), nil },
		"crossover": func() (*Table, error) {
			return Crossover(), nil
		},
		"popcount":  func() (*Table, error) { return PopcountAblation(), nil },
		"channels":  func() (*Table, error) { return ChannelScaling(), nil },
		"serine":    func() (*Table, error) { return SerineAblation(), nil },
		"encoding":  func() (*Table, error) { return EncodingTable(), nil },
		"precision": func() (*Table, error) { return Precision(), nil },
		"threshold": func() (*Table, error) { return Threshold(), nil },
		"devices":   func() (*Table, error) { return Devices(), nil },
		"timing":    func() (*Table, error) { return Timing(), nil },
		"measured":  func() (*Table, error) { return Measured(MeasuredConfig{}), nil },
	}
}

// Names lists the registered experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id.
func Run(name string) (*Table, error) {
	r, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r()
}
