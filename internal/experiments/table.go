// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV) plus the ablations DESIGN.md calls out. Each experiment
// returns a renderable Table so cmd/fabp-bench, bench_test.go and
// EXPERIMENTS.md all share one source of numbers.
package experiments

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a rendered experiment result: a titled grid with footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteByte('\n')

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - utf8.RuneCountInString(c)
			}
			b.WriteString(c)
			if pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// f2, f1, f0 format floats at fixed precision; pct formats a fraction as a
// percentage.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
