package bitpar

import (
	"bytes"
	"math/rand"
	"testing"

	"fabp/internal/bio"
)

func TestPlanesSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 1000, 4096} {
		ref := bio.RandomNucSeq(rng, n)
		pp := PackReference(ref)
		var buf bytes.Buffer
		written, err := pp.WriteTo(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("n=%d: reported %d bytes, wrote %d", n, written, buf.Len())
		}
		got, err := ReadPlanes(&buf, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(pp) {
			t.Fatalf("n=%d: round-trip lost bits", n)
		}
	}
}

func TestReadPlanesRejectsBadGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pp := PackReference(bio.RandomNucSeq(rng, 200))
	var buf bytes.Buffer
	if _, err := pp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Caller expectation disagrees with the stream's declared length.
	if _, err := ReadPlanes(bytes.NewReader(good), 201); err == nil {
		t.Error("length mismatch must fail")
	}
	// Negative expectation can never match.
	if _, err := ReadPlanes(bytes.NewReader(good), -1); err == nil {
		t.Error("negative length must fail")
	}
	// Word count inconsistent with the packed layout.
	mangled := append([]byte(nil), good...)
	mangled[8]++ // low byte of the u64 word count
	if _, err := ReadPlanes(bytes.NewReader(mangled), 200); err == nil {
		t.Error("word count mismatch must fail")
	}
	// Truncations anywhere must error, never return partial planes.
	for cut := 0; cut < len(good); cut += 7 {
		if got, err := ReadPlanes(bytes.NewReader(good[:cut]), 200); err == nil {
			t.Fatalf("cut=%d: accepted truncated stream (planes=%v)", cut, got != nil)
		}
	}
}

func TestPlanesEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := bio.RandomNucSeq(rng, 300)
	a, b := PackReference(ref), PackReference(ref)
	if !a.Equal(b) || !a.Equal(a) {
		t.Error("identical content must be Equal")
	}
	other := PackReference(bio.RandomNucSeq(rng, 300))
	if a.Equal(other) {
		t.Error("different content must not be Equal")
	}
	var nilPlanes *Planes
	if a.Equal(nil) || nilPlanes.Equal(a) {
		t.Error("nil equals only nil")
	}
	if !nilPlanes.Equal(nil) {
		t.Error("nil must equal nil")
	}
}

func TestPlaneCacheInstall(t *testing.T) {
	c := NewPlaneCache(4)
	rng := rand.New(rand.NewSource(10))
	ref := bio.RandomNucSeq(rng, 500)
	pp := PackReference(ref)

	if c.Install("k", nil) {
		t.Error("nil planes must not install")
	}
	if c.Contains("k") {
		t.Error("failed install must not create an entry")
	}
	if !c.Install("k", pp) {
		t.Error("first install must succeed")
	}
	if !c.Contains("k") {
		t.Error("installed key must be resident")
	}
	// A later Get must reuse the installed planes without packing.
	got := c.Get("k", func() *Planes {
		t.Fatal("Get after Install must not pack")
		return nil
	})
	if got != pp {
		t.Error("Get returned different planes than installed")
	}
	// Existing entries win: a second install is a no-op.
	other := PackReference(ref)
	if c.Install("k", other) {
		t.Error("install over resident entry must report false")
	}
	if c.Get("k", func() *Planes { return nil }) != pp {
		t.Error("second install replaced resident planes")
	}
	s := c.Stats()
	if s.Installs != 1 {
		t.Errorf("installs stat %d, want 1", s.Installs)
	}
	if s.Hits != 2 || s.Misses != 0 {
		t.Errorf("stats %d/%d, want 2 hits 0 misses", s.Hits, s.Misses)
	}
	c.ResetStats()
	if s := c.Stats(); s.Installs != 0 {
		t.Error("ResetStats must zero installs")
	}
}

func TestPlaneCacheInstallEvicts(t *testing.T) {
	c := NewPlaneCache(1)
	rng := rand.New(rand.NewSource(11))
	a := PackReference(bio.RandomNucSeq(rng, 100))
	b := PackReference(bio.RandomNucSeq(rng, 100))
	c.Install("a", a)
	c.Install("b", b)
	if c.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", c.Len())
	}
	if c.Contains("a") || !c.Contains("b") {
		t.Error("install must evict LRU, keeping the newcomer")
	}
}
