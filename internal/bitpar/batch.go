// batch.go implements the fused multi-query batch kernel: K compiled
// queries scan one reference in a single pass over the bit-planes. The
// paper's architecture is bandwidth-bound — the reference streams past a
// resident query — so the per-query scan's K full plane traversals are the
// hot-path waste. The batch kernel fetches each plane word pair (c0, c1)
// once per 64-lane block, stages them, and runs every query over the
// staged block, turning K passes of memory traffic into one (the
// amortization streaming FPGA aligners get from batching queries against
// a tile-resident reference).
package bitpar

import (
	"fmt"
	"math/bits"
	"sync"

	"fabp/internal/backtrans"
	"fabp/internal/isa"
)

// batchQuery is one query's compiled state inside a BatchKernel.
//
// The batch kernel scores by *mismatch budget* rather than full-width
// score counting: a lane is a hit iff its mismatch count stays within
// budget = len(elems) − threshold, so the vertical counters only need to
// count to the budget (ctrW bits) instead of to the full score. At the
// paper's 0.8–0.9 threshold fractions that narrows the carry chain enough
// to keep every counter plane in a register, and a lane whose counter
// overflows is dead for good (the sticky plane) — once all 64 lanes of a
// block are dead the query's remaining elements are skipped. Surviving
// lanes' scores stay exact: score = len(elems) − mismatches.
type batchQuery struct {
	elems     []fusedElem
	threshold int
	// budget is the mismatch allowance: len(elems) − threshold.
	budget int
	// ctrW is the counter width in bit-planes: the smallest width whose
	// capacity 2^ctrW exceeds the budget (0 for exact-match queries, whose
	// sticky plane alone decides).
	ctrW int
	// satAll marks budget+1 == 2^ctrW: within-width counts can never
	// exceed the budget, so hit extraction reduces to ^sticky.
	satAll bool
	// ctrOff is the query's offset into the flat vertical-counter scratch.
	ctrOff int
}

// fusedElem is one query element in fused mux form: the 4-bit accept
// truth table is pre-expanded into all-ones/zero word masks arranged as a
// two-level mux over the plane words, so the scan evaluates
//
//	lo = a ^ (w0 & ac)        // w0 ? c : a   (ac = a^c)
//	hi = g ^ (w0 & gu)        // w0 ? u : g   (gu = g^u)
//	m  = lo ^ (w1 & (lo^hi))  // w1 ? hi : lo
//
// — seven branchless ops per element over the block's staged words, the
// compute analogue of the shared plane fetch.
type fusedElem struct {
	// the S=0 accept function: minterm masks for nucleotides a=00 and
	// g=10, plus the mux deltas ac = a^c, gu = g^u.
	a0, ac0, g0, gu0 uint64
	// the S=1 set; only consulted when dep != DepNone.
	a1, ac1, g1, gu1 uint64
	dep              backtrans.DepSource
}

// expandMux turns a 4-bit accept truth table into the mux-form word masks.
func expandMux(mask uint8) (a, ac, g, gu uint64) {
	a = -uint64(mask & 1)
	c := -uint64(mask >> 1 & 1)
	g = -uint64(mask >> 2 & 1)
	u := -uint64(mask >> 3 & 1)
	return a, a ^ c, g, g ^ u
}

// BatchKernel is a set of compiled queries that scan a reference together,
// one plane pass per tile for the whole batch.
type BatchKernel struct {
	queries  []batchQuery
	maxElems int
	minElems int
	// ctrWords is the flat counter scratch size: sum of every query's ctrW.
	ctrWords int
	// scratch pools per-worker state (staged block, vertical counters, hit
	// staging buffers) so concurrent shard scans allocate nothing per tile.
	scratch sync.Pool
}

// batchScratch is one worker's reusable scan state. w0s/w1s hold the
// block's staged plane words, offset by two so steps −2 and −1 (the
// dependent-bit context before the block) sit at indexes 0 and 1.
type batchScratch struct {
	w0s, w1s []uint64
	counters []uint64
	// sticky[qi] marks lanes whose mismatch counter overflowed — dead for
	// the rest of the block.
	sticky []uint64
	hits   [][]Hit
}

// NewBatchKernel compiles every program for its threshold. Thresholds are
// absolute per-query scores, validated like NewKernel's.
func NewBatchKernel(progs []isa.Program, thresholds []int) (*BatchKernel, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("bitpar: empty batch")
	}
	if len(progs) != len(thresholds) {
		return nil, fmt.Errorf("bitpar: %d programs but %d thresholds", len(progs), len(thresholds))
	}
	bk := &BatchKernel{queries: make([]batchQuery, 0, len(progs))}
	off := 0
	for i := range progs {
		k, err := NewKernel(progs[i], thresholds[i])
		if err != nil {
			return nil, fmt.Errorf("bitpar: batch query %d: %w", i, err)
		}
		budget := len(k.elems) - k.threshold
		ctrW := bits.Len(uint(budget))
		q := batchQuery{
			elems: make([]fusedElem, len(k.elems)), threshold: k.threshold,
			budget: budget, ctrW: ctrW, satAll: budget+1 == 1<<ctrW,
			ctrOff: off,
		}
		for j, e := range k.elems {
			f := &q.elems[j]
			f.dep = e.dep
			f.a0, f.ac0, f.g0, f.gu0 = expandMux(e.mask0)
			f.a1, f.ac1, f.g1, f.gu1 = expandMux(e.mask1)
			if e.mask0 == e.mask1 {
				f.dep = backtrans.DepNone
			}
		}
		bk.queries = append(bk.queries, q)
		off += ctrW
		if len(k.elems) > bk.maxElems {
			bk.maxElems = len(k.elems)
		}
		if bk.minElems == 0 || len(k.elems) < bk.minElems {
			bk.minElems = len(k.elems)
		}
	}
	bk.ctrWords = off
	bk.scratch.New = func() any {
		return &batchScratch{
			w0s:      make([]uint64, bk.maxElems+2),
			w1s:      make([]uint64, bk.maxElems+2),
			counters: make([]uint64, bk.ctrWords),
			sticky:   make([]uint64, len(bk.queries)),
			hits:     make([][]Hit, len(bk.queries)),
		}
	}
	return bk, nil
}

// NumQueries returns the batch width K.
func (bk *BatchKernel) NumQueries() int { return len(bk.queries) }

// MaxElems returns the longest query's element count — the overlap the
// shard carry must respect (every shard reads MaxElems−1 elements past its
// end so the longest query's windows complete).
func (bk *BatchKernel) MaxElems() int { return bk.maxElems }

// MinElems returns the shortest query's element count.
func (bk *BatchKernel) MinElems() int { return bk.minElems }

// QueryElems returns query qi's compiled length.
func (bk *BatchKernel) QueryElems(qi int) int { return len(bk.queries[qi].elems) }

// Threshold returns query qi's absolute hit threshold.
func (bk *BatchKernel) Threshold(qi int) int { return bk.queries[qi].threshold }

// Starts returns the batch scan range for a reference of refLen elements:
// the union of every query's valid window starts, [0, refLen−MinElems].
// Shorter queries have more valid starts, so the range follows the
// shortest; per-query validity is enforced lane by lane during the scan.
func (bk *BatchKernel) Starts(refLen int) int {
	return refLen - bk.minElems + 1
}

// AlignPlanes scans the whole packed reference once for every query and
// returns per-query hit lists in position order.
func (bk *BatchKernel) AlignPlanes(pp *Planes) [][]Hit {
	return bk.AlignPlanesRange(pp, 0, bk.Starts(pp.Len()), nil)
}

// AlignPlanesRange scans window starts [lo, hi) of a pre-packed reference
// once for the whole batch — the fused shard primitive. Each query's hits
// land in dst[qi] (appended; pass nil to allocate), clamped to that
// query's own valid starts, in position order. Per-shard hit lists
// concatenate into exactly AlignPlanes' output, so a scheduler can tile
// [0, Starts) and merge stream-wise.
func (bk *BatchKernel) AlignPlanesRange(pp *Planes, lo, hi int, dst [][]Hit) [][]Hit {
	if dst == nil {
		dst = make([][]Hit, len(bk.queries))
	}
	p := pp.p
	if n := bk.Starts(p.n); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return dst
	}
	s := bk.scratch.Get().(*batchScratch)
	// Blocks are 64-position aligned: scan from the aligned start and mask
	// the lanes below lo.
	for p0 := lo &^ 63; p0 < hi; p0 += 64 {
		bk.scanBlock(p, p0, hi, s)
		bk.extractBlock(p, p0, lo, hi, s)
	}
	for qi := range bk.queries {
		if len(s.hits[qi]) > 0 {
			dst[qi] = append(dst[qi], s.hits[qi]...)
			s.hits[qi] = s.hits[qi][:0]
		}
	}
	bk.scratch.Put(s)
	return dst
}

// scanBlock scans the 64-lane block at p0 for every query in two stages.
// Stage A fetches each plane word pair once into the staged arrays — the
// single shared pass over the reference, and the dependent-bit selectors
// for free (the word at step i−1/i−2 is just an earlier staged entry).
// Stage B runs each query over the staged block with its mismatch counter
// planes held in registers (specialized by counter width), so the
// carry-save walk never touches memory; a query whose 64 lanes all
// overflow their budget stops early.
func (bk *BatchKernel) scanBlock(p *planes, p0, hi int, s *batchScratch) {
	s.w0s[0], s.w1s[0] = fetch(p.b0, p0-2), fetch(p.b1, p0-2)
	s.w0s[1], s.w1s[1] = fetch(p.b0, p0-1), fetch(p.b1, p0-1)
	for i := 0; i < bk.maxElems; i++ {
		s.w0s[2+i] = fetch(p.b0, p0+i)
		s.w1s[2+i] = fetch(p.b1, p0+i)
	}
	for qi := range bk.queries {
		q := &bk.queries[qi]
		// A block lying wholly past a query's last valid start (or past
		// the scan range) contributes nothing to it: skip it (extractBlock
		// applies the same clamp, so the stale scratch is never read).
		hiq := p.n - len(q.elems) + 1
		if hiq > hi {
			hiq = hi
		}
		if p0 >= hiq {
			continue
		}
		ctr := s.counters[q.ctrOff:]
		switch q.ctrW {
		case 0:
			s.sticky[qi] = scanQ0(q.elems, s)
		case 1:
			ctr[0], s.sticky[qi] = scanQ1(q.elems, s)
		case 2:
			ctr[0], ctr[1], s.sticky[qi] = scanQ2(q.elems, s)
		case 3:
			ctr[0], ctr[1], ctr[2], s.sticky[qi] = scanQ3(q.elems, s)
		case 4:
			ctr[0], ctr[1], ctr[2], ctr[3], s.sticky[qi] = scanQ4(q.elems, s)
		default:
			s.sticky[qi] = scanQGen(q.elems, s, ctr[:q.ctrW])
		}
	}
}

// The scanQ* family runs one query's elements over the staged block with
// its mismatch counter planes in registers; each returns the final
// counter planes and the sticky overflow mask. The bodies are unrolled
// per counter width because Go keeps the named locals in registers only
// when the carry-save chain is written out straight-line — the whole
// point of the narrow budget counters. Staged indexing: step i's words
// sit at w0a[i+2]/w1a[i+2], so the dependent-bit selectors (steps i−1 and
// i−2) are w1a[i+1], w1a[i], and w0a[i].

// scanQ0 is the exact-match (budget 0) scan: any mismatch kills the lane,
// so the sticky plane alone accumulates.
func scanQ0(elems []fusedElem, s *batchScratch) (sticky uint64) {
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1) // lane-wise mux: sel ? m1 : m
		}
		sticky |= ^m
		if sticky == ^uint64(0) {
			break
		}
	}
	return sticky
}

func scanQ1(elems []fusedElem, s *batchScratch) (c0, sticky uint64) {
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1)
		}
		miss := ^m
		x := c0 & miss
		c0 ^= miss
		sticky |= x
		if sticky == ^uint64(0) {
			break
		}
	}
	return c0, sticky
}

func scanQ2(elems []fusedElem, s *batchScratch) (c0, c1, sticky uint64) {
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1)
		}
		miss := ^m
		x := c0 & miss
		c0 ^= miss
		y := c1 & x
		c1 ^= x
		sticky |= y
		if sticky == ^uint64(0) {
			break
		}
	}
	return c0, c1, sticky
}

func scanQ3(elems []fusedElem, s *batchScratch) (c0, c1, c2, sticky uint64) {
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1)
		}
		miss := ^m
		x := c0 & miss
		c0 ^= miss
		y := c1 & x
		c1 ^= x
		x = c2 & y
		c2 ^= y
		sticky |= x
		if sticky == ^uint64(0) {
			break
		}
	}
	return c0, c1, c2, sticky
}

func scanQ4(elems []fusedElem, s *batchScratch) (c0, c1, c2, c3, sticky uint64) {
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1)
		}
		miss := ^m
		x := c0 & miss
		c0 ^= miss
		y := c1 & x
		c1 ^= x
		x = c2 & y
		c2 ^= y
		y = c3 & x
		c3 ^= x
		sticky |= y
		if sticky == ^uint64(0) {
			break
		}
	}
	return c0, c1, c2, c3, sticky
}

// scanQGen is the wide-budget fallback (ctrW ≥ 5, i.e. thresholds far
// below the paper's operating range): the carry-save walk spills to the
// counter scratch, still over the staged block.
func scanQGen(elems []fusedElem, s *batchScratch, ctr []uint64) (sticky uint64) {
	for b := range ctr {
		ctr[b] = 0
	}
	w0a := s.w0s[: len(elems)+2 : len(elems)+2]
	w1a := s.w1s[: len(elems)+2 : len(elems)+2]
	for i := range elems {
		e := &elems[i]
		w0, w1 := w0a[i+2], w1a[i+2]
		lo := e.a0 ^ (w0 & e.ac0)
		hi := e.g0 ^ (w0 & e.gu0)
		m := lo ^ (w1 & (lo ^ hi))
		if e.dep != backtrans.DepNone {
			lo = e.a1 ^ (w0 & e.ac1)
			hi = e.g1 ^ (w0 & e.gu1)
			m1 := lo ^ (w1 & (lo ^ hi))
			var sel uint64
			switch e.dep {
			case backtrans.DepPrev1Hi:
				sel = w1a[i+1]
			case backtrans.DepPrev2Hi:
				sel = w1a[i]
			case backtrans.DepPrev2Lo:
				sel = w0a[i]
			}
			m ^= sel & (m ^ m1)
		}
		carry := ^m
		for b := 0; b < len(ctr) && carry != 0; b++ {
			old := ctr[b]
			ctr[b] = old ^ carry
			carry = old & carry
		}
		sticky |= carry
		if sticky == ^uint64(0) {
			break
		}
	}
	return sticky
}

// extractBlock pulls each query's within-budget lanes out of the block at
// p0, clamped to the scan range [lo, hi) and to the query's own valid
// window starts. A lane is a hit iff it is not sticky-dead and its
// mismatch count stays at or below the budget; its exact score is the
// query length minus its mismatches.
func (bk *BatchKernel) extractBlock(p *planes, p0, lo, hi int, s *batchScratch) {
	for qi := range bk.queries {
		q := &bk.queries[qi]
		hiq := p.n - len(q.elems) + 1
		if hiq > hi {
			hiq = hi
		}
		if p0 >= hiq {
			continue
		}
		limit := hiq - p0
		if limit > 64 {
			limit = 64
		}
		ctr := s.counters[q.ctrOff : q.ctrOff+q.ctrW]
		ge := ^s.sticky[qi]
		if !q.satAll {
			ge &^= geThresh(ctr, q.budget+1)
		}
		ge &= lowMask(limit)
		if lo > p0 {
			ge &^= lowMask(lo - p0)
		}
		for ge != 0 {
			j := bits.TrailingZeros64(ge)
			ge &= ge - 1
			s.hits[qi] = append(s.hits[qi], Hit{Pos: p0 + j, Score: len(q.elems) - laneScore(ctr, j)})
		}
	}
}
