package bitpar

import "sync"

// PlaneCache memoizes packed bit-plane references so a database or
// reference packed once is reused across queries, batches and sessions —
// the software analogue of the accelerator's DRAM-resident database, which
// transfers once and is then scanned by every streamed query. Keys are any
// comparable value that identifies the sequence (callers use the owning
// object's pointer); entries evict least-recently-used beyond the
// capacity. All methods are safe for concurrent use, and concurrent Gets
// for one key pack at most once.
type PlaneCache struct {
	mu      sync.Mutex
	cap     int
	tick    uint64
	entries map[any]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	once    sync.Once
	planes  *Planes
	lastUse uint64
}

// NewPlaneCache builds a cache holding at most capacity packed references
// (minimum 1).
func NewPlaneCache(capacity int) *PlaneCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlaneCache{cap: capacity, entries: make(map[any]*cacheEntry)}
}

var sharedPlanes = NewPlaneCache(4)

// SharedPlanes returns the process-wide cache used by the public database
// and batch scan paths.
func SharedPlanes() *PlaneCache { return sharedPlanes }

// Get returns the packed planes for key, invoking pack on the first use
// (or after eviction). pack runs outside the cache lock; concurrent
// callers of the same key block until the one packing finishes.
func (c *PlaneCache) Get(key any, pack func() *Planes) *Planes {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
		c.evictLocked(e)
	} else {
		c.hits++
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	e.once.Do(func() { e.planes = pack() })
	return e.planes
}

// evictLocked drops least-recently-used entries (never `keep`) until the
// cache fits its capacity.
func (c *PlaneCache) evictLocked(keep *cacheEntry) {
	for len(c.entries) > c.cap {
		var victim any
		var oldest uint64
		found := false
		for k, e := range c.entries {
			if e == keep {
				continue
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(c.entries, victim)
	}
}

// Invalidate drops one key (no-op when absent).
func (c *PlaneCache) Invalidate(key any) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Len returns the resident entry count.
func (c *PlaneCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit/miss counts.
func (c *PlaneCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
