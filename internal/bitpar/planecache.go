package bitpar

import (
	"context"
	"sync"
	"sync/atomic"

	"fabp/internal/faultinject"
)

// PlaneCache memoizes packed bit-plane references so a database or
// reference packed once is reused across queries, batches and sessions —
// the software analogue of the accelerator's DRAM-resident database, which
// transfers once and is then scanned by every streamed query. Keys are any
// comparable value that identifies the sequence (callers use the owning
// object's pointer); entries evict least-recently-used beyond the
// capacity. All methods are safe for concurrent use, and concurrent Gets
// for one key pack at most once.
type PlaneCache struct {
	mu        sync.Mutex
	cap       int
	tick      uint64
	entries   map[any]*cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
	installs  uint64
}

type cacheEntry struct {
	once sync.Once
	// planes is set exactly once, outside the cache lock (atomic so
	// Stats can size resident entries while a packer is running).
	planes  atomic.Pointer[Planes]
	lastUse uint64
}

// NewPlaneCache builds a cache holding at most capacity packed
// references. Non-positive capacities clamp to 1 (the documented rule: a
// cache always holds at least the entry being fetched, so Get can never
// thrash itself out).
func NewPlaneCache(capacity int) *PlaneCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlaneCache{cap: capacity, entries: make(map[any]*cacheEntry)}
}

var sharedPlanes = NewPlaneCache(4)

// SharedPlanes returns the process-wide cache used by the public database
// and batch scan paths.
func SharedPlanes() *PlaneCache { return sharedPlanes }

// Cap returns the cache's entry capacity.
func (c *PlaneCache) Cap() int { return c.cap }

// Get returns the packed planes for key, invoking pack on the first use
// (or after eviction). pack runs outside the cache lock; concurrent
// callers of the same key block until the one packing finishes.
func (c *PlaneCache) Get(key any, pack func() *Planes) *Planes {
	// The eviction-storm fault hook: a firing rule drops the requested
	// entry before the lookup, so this Get must repack — the
	// deterministic model of cache pressure evicting a hot database.
	// Results are unchanged (the repack is bit-exact), only slower.
	if faultinject.Check(context.Background(), faultinject.SiteCacheEvict, 0) != nil {
		c.mu.Lock()
		if _, ok := c.entries[key]; ok {
			delete(c.entries, key)
			c.evictions++
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
		c.evictLocked(e)
	} else {
		c.hits++
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	e.once.Do(func() { e.planes.Store(pack()) })
	return e.planes.Load()
}

// Install stores pre-packed planes under key without running a packer —
// the warm-start path: planes deserialized from a database file become
// resident exactly as if Get had packed them, so the first scan is a
// cache hit. An existing entry for key wins (Install never replaces);
// the return value reports whether these planes were installed. Installs
// count on their own stat, not as hits or misses.
func (c *PlaneCache) Install(key any, pp *Planes) bool {
	if pp == nil {
		return false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.evictLocked(e)
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	installed := false
	e.once.Do(func() {
		e.planes.Store(pp)
		installed = true
	})
	if installed {
		c.mu.Lock()
		c.installs++
		c.mu.Unlock()
	}
	return installed
}

// Contains reports whether key has a resident (or currently packing)
// entry. It does not touch the LRU clock or the hit/miss counters.
func (c *PlaneCache) Contains(key any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// evictLocked drops least-recently-used entries (never `keep`) until the
// cache fits its capacity.
func (c *PlaneCache) evictLocked(keep *cacheEntry) {
	for len(c.entries) > c.cap {
		var victim any
		var oldest uint64
		found := false
		for k, e := range c.entries {
			if e == keep {
				continue
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

// Invalidate drops one key (no-op when absent).
func (c *PlaneCache) Invalidate(key any) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Len returns the resident entry count.
func (c *PlaneCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats is a point-in-time view of the cache: cumulative hit/miss/
// eviction counts (monotone between ResetStats calls) and the resident
// footprint. An entry whose packer is still running counts toward Entries
// but contributes 0 to ResidentBytes until the pack finishes.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// Installs counts entries seeded by Install (persisted planes from a
	// database file) rather than packed by a Get miss.
	Installs      uint64
	Entries       int
	ResidentBytes int64
}

// Lookups returns Hits + Misses — every Get ever made.
func (s CacheStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits / Lookups (0 when the cache is untouched).
func (s CacheStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Stats returns the cache's cumulative counters and resident footprint.
func (c *PlaneCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Installs: c.installs, Entries: len(c.entries),
	}
	for _, e := range c.entries {
		if p := e.planes.Load(); p != nil {
			s.ResidentBytes += p.SizeBytes()
		}
	}
	return s
}

// ResetStats zeroes the cumulative hit/miss/eviction/install counters
// (resident entries are untouched).
func (c *PlaneCache) ResetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions, c.installs = 0, 0, 0, 0
	c.mu.Unlock()
}
