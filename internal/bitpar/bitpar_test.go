package bitpar

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/subonly"
)

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(nil, 0); err == nil {
		t.Error("empty program must fail")
	}
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	if _, err := NewKernel(prog, -1); err == nil {
		t.Error("negative threshold must fail")
	}
	if _, err := NewKernel(prog, 4); err == nil {
		t.Error("oversized threshold must fail")
	}
	k, err := NewKernel(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k.QueryElems() != 3 || k.Threshold() != 2 {
		t.Error("accessors")
	}
}

// TestKernelMatchesGoldenModel is the central equivalence proof: the
// bit-parallel kernel must produce exactly the naive golden model's hits
// across random queries, references, thresholds and block boundaries.
func TestKernelMatchesGoldenModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		p := bio.RandomProtSeq(rng, 1+rng.Intn(20))
		prog := isa.MustEncodeProtein(p)
		threshold := rng.Intn(len(prog) + 1)
		// Lengths straddling the 64-position block boundary matter most.
		refLen := len(prog) + rng.Intn(300)
		ref := bio.RandomNucSeq(rng, refLen)

		k, err := NewKernel(prog, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got := k.Align(ref)
		want := subonly.Align(prog, ref, threshold)
		if len(got) != len(want) {
			t.Fatalf("trial %d (q=%d t=%d ref=%d): %d hits vs golden %d",
				trial, len(prog), threshold, refLen, len(got), len(want))
		}
		for i := range want {
			if got[i].Pos != want[i].Pos || got[i].Score != want[i].Score {
				t.Fatalf("trial %d hit %d: %+v vs golden %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestKernelBlockBoundaryExact(t *testing.T) {
	// Plant perfect matches exactly at positions 63, 64, 127, 128.
	rng := rand.New(rand.NewSource(2))
	p := bio.ProtSeq{bio.Met, bio.Trp, bio.Lys} // no Ser, no degeneracy loss
	gene := bio.EncodeGene(rng, p)
	prog := isa.MustEncodeProtein(p)
	for _, pos := range []int{0, 1, 62, 63, 64, 65, 127, 128, 191} {
		ref := bio.RandomNucSeq(rng, 256)
		copy(ref[pos:], gene)
		k, _ := NewKernel(prog, len(prog))
		found := false
		for _, h := range k.Align(ref) {
			if h.Pos == pos && h.Score == len(prog) {
				found = true
			}
		}
		if !found {
			t.Errorf("perfect match at %d not found", pos)
		}
	}
}

func TestKernelShortReference(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Trp})
	k, _ := NewKernel(prog, 0)
	if hits := k.Align(bio.NucSeq{bio.A, bio.U}); hits != nil {
		t.Error("short reference must yield nil")
	}
}

func TestKernelThresholdZeroCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := bio.RandomProtSeq(rng, 5)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 500)
	k, _ := NewKernel(prog, 0)
	hits := k.Align(ref)
	if len(hits) != len(ref)-len(prog)+1 {
		t.Errorf("threshold 0: %d hits, want %d", len(hits), len(ref)-len(prog)+1)
	}
}

func TestFetchEdges(t *testing.T) {
	ref := make(bio.NucSeq, 70)
	for i := range ref {
		ref[i] = bio.U // all ones in both planes
	}
	p := packPlanes(ref)
	if got := fetch(p.b0, 0); got != ^uint64(0) {
		t.Errorf("fetch(0) = %x", got)
	}
	// Negative offsets read zero-padding at the low end.
	all := ^uint64(0)
	if got := fetch(p.b0, -2); got != all<<2 {
		t.Errorf("fetch(-2) = %x", got)
	}
	// Beyond the end reads zeros.
	if got := fetch(p.b0, 65); got != 0x1F {
		t.Errorf("fetch(65) = %x, want 0x1f", got)
	}
	if got := fetch(p.b0, 10_000); got != 0 {
		t.Errorf("fetch far = %x", got)
	}
}

func TestMaskEval(t *testing.T) {
	// c = G (c1=1, c0=0) in lane 0; A in lane 1 (bits zero).
	c0, c1 := uint64(0), uint64(1)
	if m := maskEval(1<<bio.G, c0, c1); m&1 != 1 || m&2 != 0 {
		t.Errorf("G mask eval = %x", m)
	}
	if m := maskEval(1<<bio.A, c0, c1); m&1 != 0 || m&2 == 0 {
		t.Errorf("A mask eval = %x", m)
	}
	if maskEval(0xF, 0x5A, 0xA5) != ^uint64(0)&lowMask(64) {
		t.Error("full mask must accept everything")
	}
	if maskEval(0, 0x5A, 0xA5) != 0 {
		t.Error("empty mask must accept nothing")
	}
}

func TestAlignPlanesSharedAcrossKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := bio.RandomNucSeq(rng, 50_000)
	planes := PackReference(ref)
	if planes.Len() != len(ref) {
		t.Fatal("planes length")
	}
	for i := 0; i < 5; i++ {
		p := bio.RandomProtSeq(rng, 4+i)
		prog := isa.MustEncodeProtein(p)
		k, _ := NewKernel(prog, len(prog)/2)
		shared := k.AlignPlanes(planes)
		direct := k.Align(ref)
		if len(shared) != len(direct) {
			t.Fatalf("query %d: shared %d hits, direct %d", i, len(shared), len(direct))
		}
		for j := range shared {
			if shared[j] != direct[j] {
				t.Fatalf("query %d hit %d differs", i, j)
			}
		}
	}
}

func TestKernelParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := bio.RandomProtSeq(rng, 12)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 300_000)
	k, _ := NewKernel(prog, len(prog)/2)
	k.SetParallelism(1)
	serial := k.Align(ref)
	k.SetParallelism(8)
	parallel := k.Align(ref)
	if len(serial) != len(parallel) {
		t.Fatalf("parallel %d hits vs serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("hit %d differs", i)
		}
	}
}

func BenchmarkKernelAlign(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	p := bio.RandomProtSeq(rng, 50)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 1_000_000)
	k, _ := NewKernel(prog, int(0.9*float64(len(prog))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Align(ref)
	}
	b.SetBytes(int64(len(ref)) / 4)
}
