// planes_io.go serializes packed bit-planes — the persistence half of the
// warm-start protocol: a database file that carries its planes lets a
// fresh process install them into the cache and scan without ever calling
// PackReference. The wire layout is the in-memory layout (length, word
// count, then both planes' words, little-endian); framing, versioning and
// checksums belong to the caller (see internal/db's plane section).
package bitpar

import (
	"encoding/binary"
	"fmt"
	"io"
)

// PlanesWireVersion is the serialization format version callers should
// frame WriteTo's output with; ReadPlanes only understands this layout.
const PlanesWireVersion = 1

// WriteTo serializes the packed planes (io.WriterTo): u64 reference
// length, u64 words per plane, then the b0 and b1 plane words, all
// little-endian. The padding words packPlanes adds are included, so a
// deserialized plane is byte-identical to a freshly packed one.
func (pp *Planes) WriteTo(w io.Writer) (int64, error) {
	p := pp.p
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint64(p.n)); err != nil {
		return n, err
	}
	if err := write(uint64(len(p.b0))); err != nil {
		return n, err
	}
	if err := write(p.b0); err != nil {
		return n, err
	}
	if err := write(p.b1); err != nil {
		return n, err
	}
	return n, nil
}

// ReadPlanes deserializes planes written by WriteTo. expectLen is the
// reference length the caller knows from its own framing; a stream whose
// declared geometry disagrees with it (or with the packed layout's
// invariants) is rejected, so the returned planes are always structurally
// identical to PackReference output for an expectLen-element reference.
// Short streams return io.ErrUnexpectedEOF-wrapped errors, never partial
// planes.
func ReadPlanes(r io.Reader, expectLen int) (*Planes, error) {
	var n64, words uint64
	if err := binary.Read(r, binary.LittleEndian, &n64); err != nil {
		return nil, fmt.Errorf("bitpar: reading plane length: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &words); err != nil {
		return nil, fmt.Errorf("bitpar: reading plane word count: %w", err)
	}
	if expectLen < 0 || int(n64) != expectLen {
		return nil, fmt.Errorf("bitpar: plane length %d, caller expects %d", n64, expectLen)
	}
	wantWords := uint64((expectLen+63)/64) + 2
	if words != wantWords {
		return nil, fmt.Errorf("bitpar: %d words per plane, want %d for %d elements", words, wantWords, expectLen)
	}
	p := &planes{
		b0: make([]uint64, words),
		b1: make([]uint64, words),
		n:  expectLen,
	}
	if err := binary.Read(r, binary.LittleEndian, p.b0); err != nil {
		return nil, fmt.Errorf("bitpar: reading plane b0: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, p.b1); err != nil {
		return nil, fmt.Errorf("bitpar: reading plane b1: %w", err)
	}
	return &Planes{p: p}, nil
}

// Equal reports whether two packed planes describe the same reference
// bit-for-bit (nil equals only nil).
func (pp *Planes) Equal(other *Planes) bool {
	if pp == nil || other == nil {
		return pp == other
	}
	a, b := pp.p, other.p
	if a.n != b.n || len(a.b0) != len(b.b0) || len(a.b1) != len(b.b1) {
		return false
	}
	for i := range a.b0 {
		if a.b0[i] != b.b0[i] || a.b1[i] != b.b1[i] {
			return false
		}
	}
	return true
}
