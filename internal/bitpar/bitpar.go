// Package bitpar implements the bit-parallel (SIMD-within-register) FabP
// kernel: the algorithm the paper's "highly optimized GPU implementation"
// uses, evaluating the two-LUT comparator for 64 alignment positions per
// machine word. The reference is held as two bit-planes (one per
// nucleotide-encoding bit); each query element compiles to a handful of
// bitwise operations plus a vertical-counter score accumulation.
//
// It is bit-exact with core.Engine / the generated netlist (asserted in
// tests) and roughly an order of magnitude faster than the scalar engine,
// which both makes large experiments tractable and substantiates the GPU
// performance model's cells-per-second calibration.
package bitpar

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/isa"
)

// Hit mirrors core.Hit (bitpar stays independent of core so either can
// cross-check the other).
type Hit struct {
	Pos   int
	Score int
}

// planes is the bit-sliced reference: bit j of b0[w] is the low encoding
// bit of nucleotide 64w+j; b1 the high bit. One zero word of padding at
// each end keeps fetches branch-light.
type planes struct {
	b0, b1 []uint64
	n      int
}

// packPlanes converts a reference into bit-planes (bulk table-driven
// packing; see packSpan in planebuilder.go).
func packPlanes(ref bio.NucSeq) *planes {
	words := (len(ref) + 63) / 64
	p := &planes{
		b0: make([]uint64, words+2),
		b1: make([]uint64, words+2),
		n:  len(ref),
	}
	packSpan(p.b0, p.b1, 0, ref)
	return p
}

// fetch returns the 64 plane bits starting at element offset off (may be
// negative or beyond the end; out-of-range bits read 0 = A, matching the
// hardware's reset state).
func fetch(plane []uint64, off int) uint64 {
	// plane has one padding word at the front.
	off += 64
	w := off >> 6
	s := uint(off & 63)
	if w < 0 || w >= len(plane) {
		return 0
	}
	v := plane[w] >> s
	if s != 0 && w+1 < len(plane) {
		v |= plane[w+1] << (64 - s)
	}
	return v
}

// compiledElem is one query element's bit-parallel form: accept masks over
// the current nucleotide for both values of the dependent bit S, plus
// which plane supplies S.
type compiledElem struct {
	dep backtrans.DepSource
	// mask0/mask1: bit v set ⇔ the element matches nucleotide v when
	// S=0 / S=1. Equal masks mean no dependency.
	mask0, mask1 uint8
}

func compile(ins isa.Instruction) compiledElem {
	var c compiledElem
	elem, err := isa.Decode(ins)
	if err == nil && elem.Type == backtrans.TypeIII {
		c.dep = elem.Func.Dependency()
	}
	for v := bio.Nucleotide(0); v < 4; v++ {
		// Choose prev nucleotides that force S to each value through the
		// element's own dependency; for DepNone both probes coincide.
		if ins.Matches(v, prevFor(c.dep, 0), prevFor2(c.dep, 0)) {
			c.mask0 |= 1 << v
		}
		if ins.Matches(v, prevFor(c.dep, 1), prevFor2(c.dep, 1)) {
			c.mask1 |= 1 << v
		}
	}
	return c
}

// prevFor returns a prev1 nucleotide whose relevant bit equals s (A=00,
// G=10 toggle bit1; C=01 toggles bit0 — covered by prevFor2).
func prevFor(dep backtrans.DepSource, s uint8) bio.Nucleotide {
	if dep == backtrans.DepPrev1Hi && s == 1 {
		return bio.G
	}
	return bio.A
}

func prevFor2(dep backtrans.DepSource, s uint8) bio.Nucleotide {
	switch dep {
	case backtrans.DepPrev2Hi:
		if s == 1 {
			return bio.G
		}
	case backtrans.DepPrev2Lo:
		if s == 1 {
			return bio.C
		}
	}
	return bio.A
}

// maskEval evaluates a 4-entry accept mask over the current-nucleotide
// planes: returns the positions whose nucleotide is in the mask.
func maskEval(mask uint8, c0, c1 uint64) uint64 {
	var m uint64
	if mask&1 != 0 { // A = 00
		m |= ^c1 & ^c0
	}
	if mask&2 != 0 { // C = 01
		m |= ^c1 & c0
	}
	if mask&4 != 0 { // G = 10
		m |= c1 & ^c0
	}
	if mask&8 != 0 { // U = 11
		m |= c1 & c0
	}
	return m
}

// Kernel is a compiled bit-parallel query.
type Kernel struct {
	elems     []compiledElem
	threshold int
	// scoreBits is the vertical-counter depth (fits the max score).
	scoreBits int
	// parallelism bounds Align's workers (0 = GOMAXPROCS).
	parallelism int
	// scratch pools per-call scan state (vertical counters + hit staging)
	// so small-shard scans allocate nothing per shard beyond their result.
	scratch sync.Pool
}

// kernelScratch is one scan call's reusable state. Hits accumulate here
// (growth amortized across reuses) and are copied out exactly sized.
type kernelScratch struct {
	counters []uint64
	hits     []Hit
}

func (k *Kernel) getScratch() *kernelScratch {
	s := k.scratch.Get().(*kernelScratch)
	s.hits = s.hits[:0]
	return s
}

// NewKernel compiles an encoded query for the given hit threshold.
func NewKernel(prog isa.Program, threshold int) (*Kernel, error) {
	if len(prog) == 0 {
		return nil, fmt.Errorf("bitpar: empty program")
	}
	if threshold < 0 || threshold > len(prog) {
		return nil, fmt.Errorf("bitpar: threshold %d outside [0,%d]", threshold, len(prog))
	}
	k := &Kernel{threshold: threshold, scoreBits: 1}
	for 1<<uint(k.scoreBits) <= len(prog) {
		k.scoreBits++
	}
	for _, ins := range prog {
		k.elems = append(k.elems, compile(ins))
	}
	k.scratch.New = func() any {
		return &kernelScratch{counters: make([]uint64, k.scoreBits)}
	}
	return k, nil
}

// QueryElems returns the compiled query length.
func (k *Kernel) QueryElems() int { return len(k.elems) }

// Threshold returns the configured hit threshold.
func (k *Kernel) Threshold() int { return k.threshold }

// Planes is a reference packed into bit-planes, reusable across many
// kernels — the batch workload packs the database once and scans it with
// every query.
type Planes struct {
	p *planes
}

// packsTotal counts PackReference calls process-wide; warm-start tests
// assert it stays flat across a load-and-scan of a plane-carrying file.
var packsTotal atomic.Uint64

// PackReference packs a reference for repeated AlignPlanes calls.
func PackReference(ref bio.NucSeq) *Planes {
	packsTotal.Add(1)
	return &Planes{p: packPlanes(ref)}
}

// PackCount returns the cumulative PackReference calls this process has
// made — the "did we recompute?" probe of the warm-start contract.
func PackCount() uint64 { return packsTotal.Load() }

// Len returns the packed reference length in nucleotides.
func (pp *Planes) Len() int { return pp.p.n }

// SizeBytes returns the packed footprint (both bit-planes, including
// their padding words) — what a resident cache entry costs.
func (pp *Planes) SizeBytes() int64 {
	return int64(len(pp.p.b0)+len(pp.p.b1)) * 8
}

// AlignPlanes scans a pre-packed reference (see PackReference).
func (k *Kernel) AlignPlanes(pp *Planes) []Hit {
	return k.alignPacked(pp.p)
}

// AlignPlanesRange scans only the windows starting in [lo, hi) of a
// pre-packed reference — the shard primitive: a scheduler tiles the window
// starts, every shard reads the shared planes (including the Lq−1 overlap
// past its end and the dependent-bit context before its start), and
// per-shard hit lists concatenate into exactly AlignPlanes' output.
func (k *Kernel) AlignPlanesRange(pp *Planes, lo, hi int) []Hit {
	return k.alignPackedRange(pp.p, lo, hi)
}

// AlignRange packs the reference and scans windows starting in [lo, hi) —
// the chunked-streaming primitive (positions are chunk-local).
func (k *Kernel) AlignRange(ref bio.NucSeq, lo, hi int) []Hit {
	return k.alignPackedRange(packPlanes(ref), lo, hi)
}

func (k *Kernel) alignPackedRange(p *planes, lo, hi int) []Hit {
	n := p.n - len(k.elems) + 1
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	// Blocks are 64-position aligned: scan from the aligned start and drop
	// the lanes below lo.
	s := k.getScratch()
	k.alignBlocks(p, lo&^63, hi, s)
	trim := 0
	for trim < len(s.hits) && s.hits[trim].Pos < lo {
		trim++
	}
	hits := copyHits(s.hits[trim:])
	k.scratch.Put(s)
	return hits
}

// copyHits copies a scratch hit list into an exact-size result (nil when
// empty), so the pooled buffer can be reused.
func copyHits(src []Hit) []Hit {
	if len(src) == 0 {
		return nil
	}
	out := make([]Hit, len(src))
	copy(out, src)
	return out
}

// Align scans the reference and returns every window position whose score
// reaches the threshold, in position order. Large references parallelize
// across blocks (set Parallelism to bound workers).
func (k *Kernel) Align(ref bio.NucSeq) []Hit {
	return k.alignPacked(packPlanes(ref))
}

func (k *Kernel) alignPacked(p *planes) []Hit {
	n := p.n - len(k.elems) + 1
	if n <= 0 {
		return nil
	}

	workers := k.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if w := n/(1<<16) + 1; workers > w {
		workers = w
	}
	if workers <= 1 {
		s := k.getScratch()
		k.alignBlocks(p, 0, n, s)
		hits := copyHits(s.hits)
		k.scratch.Put(s)
		return hits
	}
	// Split into worker ranges aligned to 64-position blocks. Each worker
	// scans into pooled scratch; the merge is one exact-size allocation
	// (no copy-append growth) and the scratch returns to the pool.
	blocks := (n + 63) / 64
	per := (blocks + workers - 1) / workers
	results := make([]*kernelScratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per * 64
		hi := (w + 1) * per * 64
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := k.getScratch()
			k.alignBlocks(p, lo, hi, s)
			results[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, s := range results {
		if s != nil {
			total += len(s.hits)
		}
	}
	var hits []Hit
	if total > 0 {
		hits = make([]Hit, 0, total)
	}
	for _, s := range results {
		if s != nil {
			hits = append(hits, s.hits...)
			k.scratch.Put(s)
		}
	}
	return hits
}

// SetParallelism bounds Align's worker goroutines (0 = GOMAXPROCS).
func (k *Kernel) SetParallelism(p int) { k.parallelism = p }

// blockCounters fills the vertical score counters for the 64-lane block
// starting at p0 — the shared scoring core of the threshold scan and the
// best-hit scan.
func (k *Kernel) blockCounters(p *planes, p0 int, counters []uint64) {
	for i := range counters {
		counters[i] = 0
	}
	for i, e := range k.elems {
		c0 := fetch(p.b0, p0+i)
		c1 := fetch(p.b1, p0+i)
		var m uint64
		if e.mask0 == e.mask1 {
			m = maskEval(e.mask0, c0, c1)
		} else {
			// Dependent comparison: mux the two accept functions on
			// the selected earlier-reference bit-plane, exactly like
			// the hardware's multiplexer LUT.
			s := k.depPlane(p, e.dep, p0, i)
			m = s&maskEval(e.mask1, c0, c1) | ^s&maskEval(e.mask0, c0, c1)
		}
		// Vertical counter += m (carry-save; the carry chain is short
		// in practice).
		carry := m
		for b := 0; b < k.scoreBits && carry != 0; b++ {
			old := counters[b]
			counters[b] = old ^ carry
			carry = old & carry
		}
	}
}

// laneScore extracts lane j's score from the vertical counters.
func laneScore(counters []uint64, j int) int {
	score := 0
	for b := range counters {
		score |= int(counters[b]>>uint(j)&1) << uint(b)
	}
	return score
}

// alignBlocks scans window starts [lo, hi) where lo is 64-aligned,
// appending hits to s.hits (pooled; see getScratch).
func (k *Kernel) alignBlocks(p *planes, lo, n int, s *kernelScratch) {
	counters := s.counters
	for p0 := lo; p0 < n; p0 += 64 {
		k.blockCounters(p, p0, counters)

		// Extract scores above threshold.
		limit := n - p0
		if limit > 64 {
			limit = 64
		}
		ge := geThresh(counters, k.threshold)
		ge &= lowMask(limit)
		for ge != 0 {
			j := bits.TrailingZeros64(ge)
			ge &= ge - 1
			s.hits = append(s.hits, Hit{Pos: p0 + j, Score: laneScore(counters, j)})
		}
	}
}

// BestHit returns the highest-scoring window position (ties broken by
// lower position) regardless of the configured threshold, or ok=false
// when the reference is shorter than the query — the bit-parallel
// counterpart of core.Engine.BestHit, bit-exact by construction (same
// blockCounters as the threshold scan).
func (k *Kernel) BestHit(ref bio.NucSeq) (Hit, bool) {
	return k.bestPacked(packPlanes(ref))
}

// BestHitPlanes is BestHit over a pre-packed reference (see
// PackReference), so session-resident databases find their best
// sub-threshold position without repacking.
func (k *Kernel) BestHitPlanes(pp *Planes) (Hit, bool) {
	return k.bestPacked(pp.p)
}

func (k *Kernel) bestPacked(p *planes) (Hit, bool) {
	n := p.n - len(k.elems) + 1
	if n <= 0 {
		return Hit{}, false
	}
	best := Hit{Pos: 0, Score: -1}
	s := k.getScratch()
	counters := s.counters
	for p0 := 0; p0 < n; p0 += 64 {
		k.blockCounters(p, p0, counters)
		limit := n - p0
		if limit > 64 {
			limit = 64
		}
		for j := 0; j < limit; j++ {
			if sc := laneScore(counters, j); sc > best.Score {
				best = Hit{Pos: p0 + j, Score: sc}
			}
		}
	}
	k.scratch.Put(s)
	return best, true
}

// depPlane fetches the dependent-bit plane for element i of the block at
// p0: the selected bit of the reference nucleotide one or two positions
// before offset p0+i.
func (k *Kernel) depPlane(p *planes, dep backtrans.DepSource, p0, i int) uint64 {
	switch dep {
	case backtrans.DepPrev1Hi:
		return fetch(p.b1, p0+i-1)
	case backtrans.DepPrev2Hi:
		return fetch(p.b1, p0+i-2)
	case backtrans.DepPrev2Lo:
		return fetch(p.b0, p0+i-2)
	}
	return 0
}

// geThresh returns a bitmask of lanes whose vertical counter is >= the
// threshold, using the same LSB-first comparison as the hardware's
// CompareGEConst. Shared by the single-query and fused batch kernels.
func geThresh(counters []uint64, threshold int) uint64 {
	if threshold == 0 {
		return ^uint64(0)
	}
	ge := ^uint64(0)
	for b := range counters {
		if threshold>>uint(b)&1 == 1 {
			ge = counters[b] & ge
		} else {
			ge = counters[b] | ge
		}
	}
	return ge
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
