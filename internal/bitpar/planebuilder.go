package bitpar

import (
	"sync"

	"fabp/internal/bio"
)

// pack4lo / pack4hi drive the table-driven bulk packer: the index byte
// packs four 2-bit nucleotide codes (element k in bits 2k..2k+1) and the
// tables give the four low / high encoding bits in bits 0..3 — four
// elements become one lookup per plane instead of four shift-and-or
// round trips through memory.
var pack4lo, pack4hi [256]uint8

func init() {
	for idx := 0; idx < 256; idx++ {
		var lo, hi uint8
		for k := 0; k < 4; k++ {
			nt := idx >> (2 * k) & 3
			lo |= uint8(nt&1) << k
			hi |= uint8(nt>>1) << k
		}
		pack4lo[idx] = lo
		pack4hi[idx] = hi
	}
}

// packSpan packs seq into b0/b1 starting at element offset n0, using the
// lookup tables for whole 64-element words. b0/b1 carry the usual one-word
// front padding and must already span the packed range; every bit at
// element offsets >= n0 must be zero on entry (the planes invariant), and
// the word holding n0 may hold earlier elements' bits below it.
func packSpan(b0, b1 []uint64, n0 int, seq bio.NucSeq) {
	i := 0
	// Fill the partial word up to the next 64-element boundary.
	for ; i < len(seq) && (n0+i)&63 != 0; i++ {
		nt := seq[i]
		w, s := 1+(n0+i)>>6, uint((n0+i)&63)
		b0[w] |= uint64(nt&1) << s
		b1[w] |= uint64(nt>>1&1) << s
	}
	// Whole words: sixteen 4-element table lookups build each plane word
	// in registers, then one store per plane.
	for ; i+64 <= len(seq); i += 64 {
		blk := seq[i : i+64 : i+64]
		var lo, hi uint64
		for g := 0; g < 64; g += 4 {
			idx := blk[g]&3 | (blk[g+1]&3)<<2 | (blk[g+2]&3)<<4 | blk[g+3]<<6
			lo |= uint64(pack4lo[idx]) << uint(g)
			hi |= uint64(pack4hi[idx]) << uint(g)
		}
		w := 1 + (n0+i)>>6
		b0[w] = lo
		b1[w] = hi
	}
	// Trailing partial word.
	for ; i < len(seq); i++ {
		nt := seq[i]
		w, s := 1+(n0+i)>>6, uint((n0+i)&63)
		b0[w] |= uint64(nt&1) << s
		b1[w] |= uint64(nt>>1&1) << s
	}
}

// PlaneBuilder packs a reference into bit-planes incrementally: Append
// extends the planes in place, Carry slides the cross-chunk overlap (the
// last Lq+1 elements: Lq−1 unscanned window starts plus two elements of
// dependent-bit context) down to the front by whole-word extraction, and
// Planes exposes the current contents as a *Planes view for the kernels.
// The backing buffers grow to the high-water chunk size once and are then
// reused — with GetPlaneBuilder's pool, steady-state streaming packs every
// chunk with zero plane allocations.
//
// Invariant: every bit at element offsets >= n is zero across the full
// capacity of both planes (Append assumes it, Carry and Reset restore it).
type PlaneBuilder struct {
	b0, b1 []uint64 // one front padding word + data words + zero tail
	n      int      // packed elements
	view   planes   // reslice window the last Planes() call handed out
	pub    Planes
}

// NewPlaneBuilder returns an empty builder. Most callers want the pooled
// GetPlaneBuilder instead.
func NewPlaneBuilder() *PlaneBuilder {
	b := &PlaneBuilder{}
	b.grow(2)
	return b
}

// grow extends the backing arrays to at least `words` whole uint64s
// (padding included), preserving contents. Fresh capacity is zeroed by
// allocation, keeping the >=n invariant for free.
func (b *PlaneBuilder) grow(words int) {
	if len(b.b0) >= words {
		return
	}
	c := 2 * len(b.b0)
	if c < words {
		c = words
	}
	nb0 := make([]uint64, c)
	nb1 := make([]uint64, c)
	copy(nb0, b.b0)
	copy(nb1, b.b1)
	b.b0, b.b1 = nb0, nb1
}

// Len returns the packed element count.
func (b *PlaneBuilder) Len() int { return b.n }

// Words returns the plane words the packed elements occupy (padding
// excluded) — the telemetry unit of packing progress.
func (b *PlaneBuilder) Words() int { return (b.n + 63) / 64 }

// Append packs seq onto the end of the planes.
func (b *PlaneBuilder) Append(seq bio.NucSeq) {
	if len(seq) == 0 {
		return
	}
	nNew := b.n + len(seq)
	b.grow(2 + (nNew+63)/64)
	packSpan(b.b0, b.b1, b.n, seq)
	b.n = nNew
}

// Carry keeps only the last keep elements, sliding their bits to the
// front of the planes word by word (fetch does the cross-word shifts, so
// the carry costs ~keep/64 word extractions per plane, never a repack of
// the overlap). A keep >= Len is a no-op; Len becomes keep.
func (b *PlaneBuilder) Carry(keep int) {
	if keep < 0 {
		keep = 0
	}
	if keep >= b.n {
		return
	}
	off := b.n - keep
	words := (keep + 63) / 64
	// off >= 1, so every fetch reads at or above the word it replaces;
	// ascending order never reads a word already overwritten.
	for w := 0; w < words; w++ {
		b.b0[1+w] = fetch(b.b0, off+64*w)
		b.b1[1+w] = fetch(b.b1, off+64*w)
	}
	// Restore the >=keep invariant: mask the tail of the last kept word,
	// zero the words the data vacated.
	if r := uint(keep & 63); r != 0 {
		mask := uint64(1)<<r - 1
		b.b0[words] &= mask
		b.b1[words] &= mask
	}
	oldWords := (b.n + 63) / 64
	for w := words; w < oldWords; w++ {
		b.b0[1+w] = 0
		b.b1[1+w] = 0
	}
	b.n = keep
}

// Reset empties the builder, keeping its capacity.
func (b *PlaneBuilder) Reset() {
	words := (b.n + 63) / 64
	clear(b.b0[1 : 1+words])
	clear(b.b1[1 : 1+words])
	b.n = 0
}

// Planes returns the current contents as a packed-reference view, laid
// out exactly as PackReference builds them (front and tail padding word
// included). The view aliases the builder's buffers: it is valid until
// the next Append, Carry, Reset or Release, and callers must finish
// scanning it before mutating the builder — the pack-once-per-chunk
// contract of the streaming scan.
func (b *PlaneBuilder) Planes() *Planes {
	words := (b.n + 63) / 64
	b.view = planes{b0: b.b0[:words+2], b1: b.b1[:words+2], n: b.n}
	b.pub.p = &b.view
	return &b.pub
}

// planeBuilderPool recycles builders across streams so a steady serving
// workload allocates plane memory only while a new high-water chunk size
// is being established.
var planeBuilderPool = sync.Pool{New: func() any { return NewPlaneBuilder() }}

// GetPlaneBuilder returns an empty pooled builder; pair with Release.
func GetPlaneBuilder() *PlaneBuilder {
	b := planeBuilderPool.Get().(*PlaneBuilder)
	b.Reset()
	return b
}

// Release returns the builder (and its capacity) to the pool. The caller
// must not touch the builder or any Planes view of it afterwards.
func (b *PlaneBuilder) Release() { planeBuilderPool.Put(b) }
