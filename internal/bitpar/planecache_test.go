package bitpar

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

func TestPlaneCachePacksOncePerKey(t *testing.T) {
	c := NewPlaneCache(4)
	rng := rand.New(rand.NewSource(1))
	ref := bio.RandomNucSeq(rng, 1000)
	var packs atomic.Int64
	pack := func() *Planes { packs.Add(1); return PackReference(ref) }

	key := "db-a"
	p1 := c.Get(key, pack)
	p2 := c.Get(key, pack)
	if p1 != p2 || packs.Load() != 1 {
		t.Fatalf("same key repacked: %d packs", packs.Load())
	}
	if p1.Len() != 1000 {
		t.Fatalf("planes len %d", p1.Len())
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats %d/%d, want 1 hit 1 miss", h, m)
	}
	c.Invalidate(key)
	c.Get(key, pack)
	if packs.Load() != 2 {
		t.Error("invalidate must force a repack")
	}
}

func TestPlaneCacheEvictsLRU(t *testing.T) {
	c := NewPlaneCache(2)
	ref := bio.NucSeq{bio.A, bio.C, bio.G, bio.U}
	pack := func() *Planes { return PackReference(ref) }
	c.Get("a", pack)
	c.Get("b", pack)
	c.Get("a", pack) // refresh a
	c.Get("c", pack) // must evict b
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	var packs atomic.Int64
	counting := func() *Planes { packs.Add(1); return PackReference(ref) }
	c.Get("a", counting)
	if packs.Load() != 0 {
		t.Error("a was evicted but b was older")
	}
	c.Get("b", counting)
	if packs.Load() != 1 {
		t.Error("b must have been evicted")
	}
}

// TestPlaneCacheConcurrent hammers one cache from many goroutines; run
// with -race. Concurrent first Gets of a key must pack exactly once.
func TestPlaneCacheConcurrent(t *testing.T) {
	c := NewPlaneCache(3)
	rng := rand.New(rand.NewSource(2))
	refs := make([]bio.NucSeq, 5)
	for i := range refs {
		refs[i] = bio.RandomNucSeq(rng, 500+i)
	}
	var packs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := (g + i) % len(refs)
				p := c.Get(key, func() *Planes {
					packs.Add(1)
					return PackReference(refs[key])
				})
				if p.Len() != 500+key {
					t.Errorf("key %d: planes len %d", key, p.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 3 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
	if packs.Load() < 5 {
		t.Errorf("only %d packs for 5 keys", packs.Load())
	}
}

// TestAlignPlanesRangeMatchesFull: shard-range scans concatenated in order
// must reproduce the full scan exactly, for ragged and aligned boundaries.
func TestAlignPlanesRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := bio.RandomProtSeq(rng, 2+rng.Intn(15))
		prog := isa.MustEncodeProtein(p)
		ref := bio.RandomNucSeq(rng, len(prog)+rng.Intn(3000))
		k, err := NewKernel(prog, rng.Intn(len(prog)+1))
		if err != nil {
			t.Fatal(err)
		}
		planes := PackReference(ref)
		full := k.AlignPlanes(planes)
		n := len(ref) - len(prog) + 1

		// 64-aligned shards.
		var sharded []Hit
		for lo := 0; lo < n; lo += 128 {
			hi := lo + 128
			if hi > n {
				hi = n
			}
			sharded = append(sharded, k.AlignPlanesRange(planes, lo, hi)...)
		}
		assertSameHits(t, trial, full, sharded)

		// Ragged (unaligned) split point: trimming must still be exact.
		cut := rng.Intn(n + 1)
		ragged := append(k.AlignPlanesRange(planes, 0, cut),
			k.AlignPlanesRange(planes, cut, n)...)
		assertSameHits(t, trial, full, ragged)

		// Out-of-range requests are clamped, not panics.
		assertSameHits(t, trial, k.AlignPlanesRange(planes, 0, 3), k.AlignPlanesRange(planes, -5, 3))
		if got := k.AlignPlanesRange(planes, n+100, n+200); got != nil {
			t.Fatalf("trial %d: beyond-end range returned %v", trial, got)
		}
	}
}

func TestAlignRangeMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := bio.RandomProtSeq(rng, 6)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 700)
	k, _ := NewKernel(prog, len(prog)/3)
	n := len(ref) - len(prog) + 1
	full := k.Align(ref)
	got := append(k.AlignRange(ref, 0, 100), k.AlignRange(ref, 100, n)...)
	assertSameHits(t, 0, full, got)
}

func assertSameHits(t *testing.T, trial int, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d: %d hits vs %d", trial, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trial %d hit %d: %+v vs %+v", trial, i, got[i], want[i])
		}
	}
}
