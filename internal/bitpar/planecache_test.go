package bitpar

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

func TestPlaneCachePacksOncePerKey(t *testing.T) {
	c := NewPlaneCache(4)
	rng := rand.New(rand.NewSource(1))
	ref := bio.RandomNucSeq(rng, 1000)
	var packs atomic.Int64
	pack := func() *Planes { packs.Add(1); return PackReference(ref) }

	key := "db-a"
	p1 := c.Get(key, pack)
	p2 := c.Get(key, pack)
	if p1 != p2 || packs.Load() != 1 {
		t.Fatalf("same key repacked: %d packs", packs.Load())
	}
	if p1.Len() != 1000 {
		t.Fatalf("planes len %d", p1.Len())
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %d/%d, want 1 hit 1 miss", s.Hits, s.Misses)
	}
	c.Invalidate(key)
	c.Get(key, pack)
	if packs.Load() != 2 {
		t.Error("invalidate must force a repack")
	}
}

func TestPlaneCacheEvictsLRU(t *testing.T) {
	c := NewPlaneCache(2)
	ref := bio.NucSeq{bio.A, bio.C, bio.G, bio.U}
	pack := func() *Planes { return PackReference(ref) }
	c.Get("a", pack)
	c.Get("b", pack)
	c.Get("a", pack) // refresh a
	c.Get("c", pack) // must evict b
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	var packs atomic.Int64
	counting := func() *Planes { packs.Add(1); return PackReference(ref) }
	c.Get("a", counting)
	if packs.Load() != 0 {
		t.Error("a was evicted but b was older")
	}
	c.Get("b", counting)
	if packs.Load() != 1 {
		t.Error("b must have been evicted")
	}
}

// TestPlaneCacheConcurrent hammers one cache from many goroutines; run
// with -race. Concurrent first Gets of a key must pack exactly once.
func TestPlaneCacheConcurrent(t *testing.T) {
	c := NewPlaneCache(3)
	rng := rand.New(rand.NewSource(2))
	refs := make([]bio.NucSeq, 5)
	for i := range refs {
		refs[i] = bio.RandomNucSeq(rng, 500+i)
	}
	var packs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := (g + i) % len(refs)
				p := c.Get(key, func() *Planes {
					packs.Add(1)
					return PackReference(refs[key])
				})
				if p.Len() != 500+key {
					t.Errorf("key %d: planes len %d", key, p.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 3 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
	if packs.Load() < 5 {
		t.Errorf("only %d packs for 5 keys", packs.Load())
	}
}

// TestAlignPlanesRangeMatchesFull: shard-range scans concatenated in order
// must reproduce the full scan exactly, for ragged and aligned boundaries.
func TestAlignPlanesRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := bio.RandomProtSeq(rng, 2+rng.Intn(15))
		prog := isa.MustEncodeProtein(p)
		ref := bio.RandomNucSeq(rng, len(prog)+rng.Intn(3000))
		k, err := NewKernel(prog, rng.Intn(len(prog)+1))
		if err != nil {
			t.Fatal(err)
		}
		planes := PackReference(ref)
		full := k.AlignPlanes(planes)
		n := len(ref) - len(prog) + 1

		// 64-aligned shards.
		var sharded []Hit
		for lo := 0; lo < n; lo += 128 {
			hi := lo + 128
			if hi > n {
				hi = n
			}
			sharded = append(sharded, k.AlignPlanesRange(planes, lo, hi)...)
		}
		assertSameHits(t, trial, full, sharded)

		// Ragged (unaligned) split point: trimming must still be exact.
		cut := rng.Intn(n + 1)
		ragged := append(k.AlignPlanesRange(planes, 0, cut),
			k.AlignPlanesRange(planes, cut, n)...)
		assertSameHits(t, trial, full, ragged)

		// Out-of-range requests are clamped, not panics.
		assertSameHits(t, trial, k.AlignPlanesRange(planes, 0, 3), k.AlignPlanesRange(planes, -5, 3))
		if got := k.AlignPlanesRange(planes, n+100, n+200); got != nil {
			t.Fatalf("trial %d: beyond-end range returned %v", trial, got)
		}
	}
}

func TestAlignRangeMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := bio.RandomProtSeq(rng, 6)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 700)
	k, _ := NewKernel(prog, len(prog)/3)
	n := len(ref) - len(prog) + 1
	full := k.Align(ref)
	got := append(k.AlignRange(ref, 0, 100), k.AlignRange(ref, 100, n)...)
	assertSameHits(t, 0, full, got)
}

func assertSameHits(t *testing.T, trial int, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d: %d hits vs %d", trial, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trial %d hit %d: %+v vs %+v", trial, i, got[i], want[i])
		}
	}
}

// TestPlaneCacheBoundaryCapacities: non-positive capacities clamp to 1
// (the documented rule), and a capacity-1 cache still serves repeated
// Gets of one key from residence.
func TestPlaneCacheBoundaryCapacities(t *testing.T) {
	for _, capacity := range []int{-3, 0, 1} {
		c := NewPlaneCache(capacity)
		if c.Cap() != 1 {
			t.Fatalf("NewPlaneCache(%d).Cap() = %d, want 1", capacity, c.Cap())
		}
		ref := bio.NucSeq{bio.A, bio.C, bio.G, bio.U}
		var packs atomic.Int64
		pack := func() *Planes { packs.Add(1); return PackReference(ref) }
		c.Get("k", pack)
		c.Get("k", pack)
		if packs.Load() != 1 {
			t.Fatalf("capacity %d: %d packs for one key", capacity, packs.Load())
		}
		if c.Len() != 1 {
			t.Fatalf("capacity %d: len %d", capacity, c.Len())
		}
	}
}

// TestPlaneCacheStatsConsistency: Stats must reconcile with usage —
// lookups = hits + misses = total Gets, resident bytes match the resident
// planes, and Invalidate brings the footprint (but not the cumulative
// counters) down.
func TestPlaneCacheStatsConsistency(t *testing.T) {
	c := NewPlaneCache(4)
	rng := rand.New(rand.NewSource(9))
	refs := map[string]bio.NucSeq{
		"a": bio.RandomNucSeq(rng, 100),
		"b": bio.RandomNucSeq(rng, 1000),
		"c": bio.RandomNucSeq(rng, 64),
	}
	var want int64
	gets := 0
	for key, ref := range refs {
		ref := ref
		p := c.Get(key, func() *Planes { return PackReference(ref) })
		p2 := c.Get(key, func() *Planes { return PackReference(ref) })
		if p != p2 {
			t.Fatalf("key %s repacked", key)
		}
		want += p.SizeBytes()
		gets += 2
	}
	s := c.Stats()
	if s.Lookups() != uint64(gets) || s.Hits != 3 || s.Misses != 3 {
		t.Fatalf("stats %+v, want 3 hits 3 misses over %d gets", s, gets)
	}
	if s.ResidentBytes != want {
		t.Fatalf("resident %d bytes, want %d", s.ResidentBytes, want)
	}
	if s.Entries != 3 || s.Evictions != 0 {
		t.Fatalf("stats %+v", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}

	c.Invalidate("b")
	s = c.Stats()
	if s.Entries != 2 {
		t.Fatalf("entries %d after invalidate", s.Entries)
	}
	if s.ResidentBytes >= want {
		t.Fatalf("resident bytes %d did not shrink from %d", s.ResidentBytes, want)
	}
	if s.Hits != 3 || s.Misses != 3 {
		t.Fatalf("cumulative counters changed by Invalidate: %+v", s)
	}

	c.Invalidate("a")
	c.Invalidate("c")
	c.Invalidate("missing") // no-op
	s = c.Stats()
	if s.Entries != 0 || s.ResidentBytes != 0 {
		t.Fatalf("stats %+v after full invalidation", s)
	}

	c.ResetStats()
	s = c.Stats()
	if s.Lookups() != 0 || s.Evictions != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

// TestPlaneCacheEvictionCounter: pushing past capacity must count one
// eviction per dropped entry.
func TestPlaneCacheEvictionCounter(t *testing.T) {
	c := NewPlaneCache(2)
	ref := bio.NucSeq{bio.A, bio.C}
	pack := func() *Planes { return PackReference(ref) }
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Get(k, pack)
	}
	s := c.Stats()
	if s.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", s.Evictions)
	}
	if s.Entries != 2 {
		t.Fatalf("entries %d", s.Entries)
	}
}

// TestPlaneCacheGetInvalidateRaces hammers Get/Invalidate/Stats from many
// goroutines under eviction pressure (capacity far below the key set);
// run with -race. Afterwards the books must balance: lookups == total
// Gets, entries within capacity, resident bytes matching a fresh count.
func TestPlaneCacheGetInvalidateRaces(t *testing.T) {
	c := NewPlaneCache(2)
	rng := rand.New(rand.NewSource(10))
	refs := make([]bio.NucSeq, 8)
	for i := range refs {
		refs[i] = bio.RandomNucSeq(rng, 200+17*i)
	}
	var gets atomic.Int64
	var wg sync.WaitGroup
	const goroutines, iters = 12, 150
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := (g*7 + i) % len(refs)
				switch {
				case i%13 == 12:
					c.Invalidate(key)
				case i%29 == 28:
					s := c.Stats()
					if s.Entries > 2 || s.ResidentBytes < 0 {
						t.Errorf("mid-run stats out of bounds: %+v", s)
						return
					}
				default:
					p := c.Get(key, func() *Planes { return PackReference(refs[key]) })
					gets.Add(1)
					if p.Len() != 200+17*key {
						t.Errorf("key %d: wrong planes (len %d)", key, p.Len())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Lookups() != uint64(gets.Load()) {
		t.Errorf("lookups %d != %d gets", s.Lookups(), gets.Load())
	}
	if s.Entries > 2 {
		t.Errorf("capacity exceeded: %d entries", s.Entries)
	}
	// Invalidate everything: the footprint must be fully released while
	// the cumulative counters survive.
	for i := range refs {
		c.Invalidate(i)
	}
	s = c.Stats()
	if s.Entries != 0 || s.ResidentBytes != 0 {
		t.Errorf("footprint left after full invalidation: %+v", s)
	}
	if s.Lookups() != uint64(gets.Load()) {
		t.Errorf("counters lost by Invalidate: %+v", s)
	}
}
