package bitpar

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// assertPlanesEqual compares a builder's view against the one-shot packer
// word for word — the packed layout is the kernel ABI, so equality must be
// exact, padding included.
func assertPlanesEqual(t *testing.T, label string, got *Planes, want bio.NucSeq) {
	t.Helper()
	ref := packPlanes(want)
	p := got.p
	if p.n != ref.n {
		t.Fatalf("%s: n = %d, want %d", label, p.n, ref.n)
	}
	if len(p.b0) != len(ref.b0) || len(p.b1) != len(ref.b1) {
		t.Fatalf("%s: plane lengths %d/%d, want %d/%d", label, len(p.b0), len(p.b1), len(ref.b0), len(ref.b1))
	}
	for w := range ref.b0 {
		if p.b0[w] != ref.b0[w] || p.b1[w] != ref.b1[w] {
			t.Fatalf("%s: word %d = %#x/%#x, want %#x/%#x",
				label, w, p.b0[w], p.b1[w], ref.b0[w], ref.b1[w])
		}
	}
}

// TestPackSpanMatchesScalarPack covers the bulk packer's alignment edge
// cases: lengths around word boundaries, packed in one shot.
func TestPackSpanMatchesScalarPack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 63, 64, 65, 127, 128, 129, 1000, 4096} {
		seq := bio.RandomNucSeq(rng, n)
		b := NewPlaneBuilder()
		b.Append(seq)
		assertPlanesEqual(t, "one-shot", b.Planes(), seq)
	}
}

// TestPlaneBuilderIncrementalAppendAndCarry drives the builder the way the
// stream does — random-sized appends interleaved with carries — and checks
// every intermediate state against a from-scratch pack of the same window.
func TestPlaneBuilderIncrementalAppendAndCarry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		b := GetPlaneBuilder()
		var window bio.NucSeq // what the builder should currently hold
		for step := 0; step < 12; step++ {
			piece := bio.RandomNucSeq(rng, rng.Intn(300))
			b.Append(piece)
			window = append(window, piece...)
			if rng.Intn(2) == 0 {
				keep := rng.Intn(len(window) + 64)
				b.Carry(keep)
				if keep < len(window) {
					window = append(window[:0], window[len(window)-keep:]...)
				}
			}
			if b.Len() != len(window) {
				t.Fatalf("trial %d step %d: Len %d, want %d", trial, step, b.Len(), len(window))
			}
		}
		assertPlanesEqual(t, "incremental", b.Planes(), window)
		b.Release()
		window = window[:0]
	}
}

// TestPlaneBuilderCarryExact pins the carry word math on boundary keeps.
func TestPlaneBuilderCarryExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := bio.RandomNucSeq(rng, 1000)
	for _, keep := range []int{0, 1, 2, 63, 64, 65, 127, 128, 500, 999, 1000, 1500} {
		b := NewPlaneBuilder()
		b.Append(seq)
		b.Carry(keep)
		want := seq
		if keep < len(seq) {
			want = seq[len(seq)-keep:]
		}
		assertPlanesEqual(t, "carry", b.Planes(), want)

		// The builder must stay appendable after a carry: the invariant
		// (zero bits past Len) is what Append relies on.
		tail := bio.RandomNucSeq(rng, 130)
		b.Append(tail)
		assertPlanesEqual(t, "carry+append", b.Planes(), append(append(bio.NucSeq{}, want...), tail...))
	}
}

// TestPlaneBuilderKernelConformance scans builder-produced planes with the
// single and fused batch kernels against the same planes packed one-shot.
func TestPlaneBuilderKernelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prot := bio.RandomProtSeq(rng, 8)
	prog := isa.MustEncodeProtein(prot)
	k, err := NewKernel(prog, 12)
	if err != nil {
		t.Fatal(err)
	}
	seq := bio.RandomNucSeq(rng, 3000)
	b := GetPlaneBuilder()
	defer b.Release()
	b.Append(seq[:1200])
	b.Carry(200)
	b.Append(seq[1200:2000])
	window := seq[1000:2000]
	want := k.AlignPlanes(PackReference(window))
	got := k.AlignPlanes(b.Planes())
	if len(want) != len(got) {
		t.Fatalf("kernel over builder planes: %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPlaneBuilderSteadyStateZeroAllocs is the pooled-packing contract:
// once the chunk high-water mark is established, an append/scan/carry
// cycle allocates nothing.
func TestPlaneBuilderSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chunk := bio.RandomNucSeq(rng, 4096)
	b := GetPlaneBuilder()
	defer b.Release()
	// Warm to the high-water mark.
	b.Append(chunk)
	b.Carry(65)
	allocs := testing.AllocsPerRun(100, func() {
		b.Append(chunk)
		_ = b.Planes()
		b.Carry(65)
	})
	if allocs != 0 {
		t.Fatalf("steady-state append/planes/carry allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkPackSpanBulk(b *testing.B) {
	seq := bio.RandomNucSeq(rand.New(rand.NewSource(1)), 1<<16)
	pb := NewPlaneBuilder()
	b.SetBytes(int64(len(seq)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.Reset()
		pb.Append(seq)
	}
}

func BenchmarkPackScalarLoop(b *testing.B) {
	seq := bio.RandomNucSeq(rand.New(rand.NewSource(1)), 1<<16)
	words := (len(seq) + 63) / 64
	b0 := make([]uint64, words+2)
	b1 := make([]uint64, words+2)
	b.SetBytes(int64(len(seq)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(b0)
		clear(b1)
		for j, nt := range seq {
			w, s := 1+j/64, uint(j%64)
			b0[w] |= uint64(nt&1) << s
			b1[w] |= uint64(nt>>1&1) << s
		}
	}
}
