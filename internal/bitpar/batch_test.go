package bitpar

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

func TestNewBatchKernelValidation(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	if _, err := NewBatchKernel(nil, nil); err == nil {
		t.Error("empty batch must fail")
	}
	if _, err := NewBatchKernel([]isa.Program{prog}, []int{1, 2}); err == nil {
		t.Error("mismatched threshold count must fail")
	}
	if _, err := NewBatchKernel([]isa.Program{prog}, []int{-1}); err == nil {
		t.Error("negative threshold must fail")
	}
	if _, err := NewBatchKernel([]isa.Program{prog, nil}, []int{1, 0}); err == nil {
		t.Error("empty program in batch must fail")
	}
	bk, err := NewBatchKernel([]isa.Program{prog}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if bk.NumQueries() != 1 || bk.MaxElems() != 3 || bk.MinElems() != 3 ||
		bk.QueryElems(0) != 3 || bk.Threshold(0) != 2 {
		t.Error("accessors")
	}
}

// TestBatchKernelMatchesPerQuery is the batch equivalence proof: the fused
// scan must be bit-exact with K independent single-kernel scans across
// random mixed-length queries, thresholds, and reference lengths that
// straddle block boundaries.
func TestBatchKernelMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nq := 1 + rng.Intn(6)
		progs := make([]isa.Program, nq)
		thresholds := make([]int, nq)
		kernels := make([]*Kernel, nq)
		for i := 0; i < nq; i++ {
			p := bio.RandomProtSeq(rng, 1+rng.Intn(18))
			progs[i] = isa.MustEncodeProtein(p)
			thresholds[i] = rng.Intn(len(progs[i]) + 1)
			k, err := NewKernel(progs[i], thresholds[i])
			if err != nil {
				t.Fatal(err)
			}
			kernels[i] = k
		}
		refLen := 3 + rng.Intn(400)
		ref := bio.RandomNucSeq(rng, refLen)
		pp := PackReference(ref)

		bk, err := NewBatchKernel(progs, thresholds)
		if err != nil {
			t.Fatal(err)
		}
		got := bk.AlignPlanes(pp)
		for qi, k := range kernels {
			want := k.AlignPlanes(pp)
			if len(got[qi]) != len(want) {
				t.Fatalf("trial %d query %d: %d hits vs per-query %d",
					trial, qi, len(got[qi]), len(want))
			}
			for i := range want {
				if got[qi][i] != want[i] {
					t.Fatalf("trial %d query %d hit %d: %+v vs %+v",
						trial, qi, i, got[qi][i], want[i])
				}
			}
		}
	}
}

// TestBatchKernelRangeSharding proves the fused shard primitive: tiling
// [0, Starts) into ranges (including unaligned ones) and concatenating
// per-shard hit lists reproduces the whole-reference fused scan exactly,
// regardless of where shard boundaries fall relative to block boundaries
// and each query's own valid-start limit.
func TestBatchKernelRangeSharding(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	progs := []isa.Program{
		isa.MustEncodeProtein(bio.RandomProtSeq(rng, 4)),
		isa.MustEncodeProtein(bio.RandomProtSeq(rng, 11)),
		isa.MustEncodeProtein(bio.RandomProtSeq(rng, 2)),
	}
	thresholds := []int{5, 9, 3}
	ref := bio.RandomNucSeq(rng, 700)
	pp := PackReference(ref)
	bk, err := NewBatchKernel(progs, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	want := bk.AlignPlanes(pp)
	starts := bk.Starts(pp.Len())
	for _, shardLen := range []int{37, 64, 65, 128, 300, starts + 10} {
		got := make([][]Hit, bk.NumQueries())
		for lo := 0; lo < starts; lo += shardLen {
			hi := lo + shardLen
			if hi > starts {
				hi = starts
			}
			got = bk.AlignPlanesRange(pp, lo, hi, got)
		}
		for qi := range want {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("shardLen %d query %d: %d hits, want %d",
					shardLen, qi, len(got[qi]), len(want[qi]))
			}
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("shardLen %d query %d hit %d: %+v, want %+v",
						shardLen, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
}

// TestBatchKernelShortReference: queries longer than the reference get no
// hits while shorter batch-mates still scan their valid starts.
func TestBatchKernelShortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	short := isa.MustEncodeProtein(bio.RandomProtSeq(rng, 2)) // 6 elements
	long := isa.MustEncodeProtein(bio.RandomProtSeq(rng, 20)) // 60 elements
	ref := bio.RandomNucSeq(rng, 30)
	pp := PackReference(ref)
	bk, err := NewBatchKernel([]isa.Program{short, long}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	got := bk.AlignPlanes(pp)
	if len(got[1]) != 0 {
		t.Errorf("query longer than reference got %d hits, want 0", len(got[1]))
	}
	k, _ := NewKernel(short, 0)
	want := k.AlignPlanes(pp)
	if len(got[0]) != len(want) {
		t.Errorf("short query got %d hits, want %d", len(got[0]), len(want))
	}
}

// BenchmarkBatchVsPerQuery measures the fused win the batch kernel exists
// for: one plane pass for the whole batch vs K passes.
func BenchmarkBatchVsPerQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const nq = 16
	progs := make([]isa.Program, nq)
	thresholds := make([]int, nq)
	kernels := make([]*Kernel, nq)
	for i := range progs {
		progs[i] = isa.MustEncodeProtein(bio.RandomProtSeq(rng, 12))
		thresholds[i] = len(progs[i]) * 4 / 5
		kernels[i], _ = NewKernel(progs[i], thresholds[i])
		kernels[i].SetParallelism(1)
	}
	pp := PackReference(bio.RandomNucSeq(rng, 1<<18))
	bk, err := NewBatchKernel(progs, thresholds)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bk.AlignPlanes(pp)
		}
	})
	b.Run("per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range kernels {
				k.AlignPlanes(pp)
			}
		}
	})
}
