package host

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/fpga"
	"fabp/internal/isa"
)

func TestPCIeTransfer(t *testing.T) {
	link := Gen3x8()
	if link.TransferSec(0) != 0 {
		t.Error("zero bytes must be free")
	}
	oneGB := link.TransferSec(1 << 30)
	if oneGB < 0.1 || oneGB > 0.3 {
		t.Errorf("1 GiB over Gen3 x8 took %.3fs, expected ~0.165s", oneGB)
	}
	// Latency dominates tiny transfers.
	if tiny := link.TransferSec(64); math.Abs(tiny-link.LatencySec) > 1e-6 {
		t.Errorf("tiny transfer %.2e should be ≈latency", tiny)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := NewSession(DefaultPlatform())
	if s.DatabaseLen() != 0 {
		t.Error("fresh session must be empty")
	}
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Lys})
	if _, err := s.RunQuery(prog, 3); err == nil {
		t.Error("query before load must fail")
	}
	if _, err := s.RunBatch([]isa.Program{prog}, 0.8); err == nil {
		t.Error("batch before load must fail")
	}
	if _, err := s.LoadDatabase(nil); err == nil {
		t.Error("empty database must fail")
	}

	rng := rand.New(rand.NewSource(1))
	ref := bio.RandomNucSeq(rng, 100_000)
	stats, err := s.LoadDatabase(ref)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64((100_000+31)/32*8) {
		t.Errorf("packed bytes %d", stats.Bytes)
	}
	if stats.Seconds <= 0 || s.LoadCost() != stats {
		t.Error("load cost bookkeeping")
	}
	if s.DatabaseLen() != 100_000 {
		t.Error("database length")
	}
}

func TestSessionCapacity(t *testing.T) {
	p := DefaultPlatform()
	p.DRAMBytes = 1024
	s := NewSession(p)
	if _, err := s.LoadDatabase(make(bio.NucSeq, 100_000)); err == nil {
		t.Error("oversized database must fail")
	}
}

func TestRunQueryEndToEnd(t *testing.T) {
	s := NewSession(DefaultPlatform())
	rng := rand.New(rand.NewSource(2))
	ref, genes := bio.SyntheticReference(rng, 80_000, 3, 50)
	if _, err := s.LoadDatabase(ref); err != nil {
		t.Fatal(err)
	}
	g := genes[1]
	prog := isa.MustEncodeProtein(g.Protein)
	threshold := len(prog) * 9 / 10
	res, err := s.RunQuery(prog, threshold)
	if err != nil {
		t.Fatal(err)
	}
	// Real hits: must match a direct engine run.
	e, _ := core.NewEngine(prog, threshold)
	if !reflect.DeepEqual(res.Hits, e.Align(ref)) {
		t.Error("session hits differ from engine")
	}
	found := false
	for _, h := range res.Hits {
		if h.Pos == g.Pos {
			found = true
		}
	}
	if !found {
		t.Error("planted gene not recovered through the session")
	}
	// Timing decomposition must add up.
	tm := res.Timing
	sum := tm.EncodeSec + tm.QueryTransferSec + tm.KernelSec + tm.ReadbackSec +
		s.platform.InvokeOverheadSec
	if math.Abs(sum-tm.TotalSec) > 1e-12 {
		t.Errorf("timing legs %.3e != total %.3e", sum, tm.TotalSec)
	}
	if tm.KernelSec <= 0 || !res.Sizing.Fits {
		t.Error("kernel timing/sizing missing")
	}
}

func TestRunQueryOversized(t *testing.T) {
	p := DefaultPlatform()
	p.Device = fpga.Artix7()
	p.Device.LUTs = 5000
	s := NewSession(p)
	ref := make(bio.NucSeq, 10_000)
	if _, err := s.LoadDatabase(ref); err != nil {
		t.Fatal(err)
	}
	prog := isa.MustEncodeProtein(make(bio.ProtSeq, 500))
	if _, err := s.RunQuery(prog, 10); err == nil {
		t.Error("non-fitting query must fail")
	}
	if _, err := s.RunBatch([]isa.Program{prog}, 0.5); err == nil {
		t.Error("non-fitting batch must fail")
	}
}

// TestRunBatchPrefersBatchAlignFunc: an installed BatchAlignFunc replaces
// the per-query loop (one call, resolved thresholds), its results flow
// into PerQuery unchanged, and clearing it falls back to the AlignFunc
// loop.
func TestRunBatchPrefersBatchAlignFunc(t *testing.T) {
	s := NewSession(DefaultPlatform())
	rng := rand.New(rand.NewSource(4))
	ref, genes := bio.SyntheticReference(rng, 40_000, 3, 30)
	if _, err := s.LoadDatabase(ref); err != nil {
		t.Fatal(err)
	}
	var progs []isa.Program
	for _, g := range genes {
		progs = append(progs, isa.MustEncodeProtein(g.Protein))
	}

	batchCalls, loopCalls := 0, 0
	s.SetAlignFunc(func(ctx context.Context, prog isa.Program, threshold int) ([]core.Hit, error) {
		loopCalls++
		e, err := core.NewEngine(prog, threshold)
		if err != nil {
			return nil, err
		}
		return e.Align(ref), nil
	})
	s.SetBatchAlignFunc(func(ctx context.Context, bprogs []isa.Program, thresholds []int) ([][]core.Hit, error) {
		batchCalls++
		if len(bprogs) != len(progs) || len(thresholds) != len(progs) {
			t.Errorf("batch hook got %d progs / %d thresholds", len(bprogs), len(thresholds))
		}
		for i, p := range bprogs {
			want, err := core.ThresholdFromFraction(0.9, len(p))
			if err != nil || thresholds[i] != want {
				t.Errorf("threshold[%d] = %d, want %d", i, thresholds[i], want)
			}
		}
		out := make([][]core.Hit, len(bprogs))
		for i, p := range bprogs {
			e, err := core.NewEngine(p, thresholds[i])
			if err != nil {
				return nil, err
			}
			out[i] = e.Align(ref)
		}
		return out, nil
	})

	res, err := s.RunBatch(progs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if batchCalls != 1 || loopCalls != 0 {
		t.Errorf("batch hook called %d times, per-query loop %d times", batchCalls, loopCalls)
	}
	for i, g := range genes {
		found := false
		for _, h := range res.PerQuery[i] {
			if h.Pos == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("batch query %d missed its gene", i)
		}
	}

	// Bad threshold fractions fail before the hook runs.
	if _, err := s.RunBatch(progs, 1.5); err == nil || batchCalls != 1 {
		t.Errorf("bad fraction: err=%v batchCalls=%d", err, batchCalls)
	}

	// Clearing the batch hook falls back to the per-query loop.
	s.SetBatchAlignFunc(nil)
	if _, err := s.RunBatch(progs, 0.9); err != nil {
		t.Fatal(err)
	}
	if loopCalls != len(progs) {
		t.Errorf("fallback loop ran %d times, want %d", loopCalls, len(progs))
	}
}

func TestRunBatchAmortization(t *testing.T) {
	s := NewSession(DefaultPlatform())
	rng := rand.New(rand.NewSource(3))
	ref, genes := bio.SyntheticReference(rng, 60_000, 4, 40)
	if _, err := s.LoadDatabase(ref); err != nil {
		t.Fatal(err)
	}
	var progs []isa.Program
	for _, g := range genes {
		progs = append(progs, isa.MustEncodeProtein(g.Protein))
	}
	res, err := s.RunBatch(progs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != len(progs) {
		t.Fatal("per-query results missing")
	}
	for i, g := range genes {
		found := false
		for _, h := range res.PerQuery[i] {
			if h.Pos == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("batch query %d missed its gene", i)
		}
	}
	if res.KernelSec <= 0 || res.TotalSec <= res.KernelSec {
		t.Errorf("batch timing implausible: %+v", res)
	}
	if _, err := s.RunBatch(nil, 0.9); err == nil {
		t.Error("empty batch must fail")
	}
}
