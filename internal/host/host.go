// Package host models the paper's host-side flow (§IV): the OpenCL host
// encodes queries, ships them and the reference database over PCIe into the
// FPGA DRAM, invokes the RTL kernel, and reads hit records back. The paper
// measures *end-to-end* time — "reading both query and reference sequences
// from the FPGA DRAM, aligning the sequences, and writing the results" —
// so this package accounts every leg, while executing the alignment itself
// functionally (bit-exact core.Engine) so results are real.
package host

import (
	"context"
	"fmt"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/fpga"
	"fabp/internal/isa"
)

// PCIe models the host↔FPGA link.
type PCIe struct {
	// BandwidthBytes is effective bytes/second.
	BandwidthBytes float64
	// LatencySec is the fixed per-transfer cost (doorbells, descriptors).
	LatencySec float64
}

// Gen3x8 returns a PCIe 3.0 x8 link (~7.9 GB/s raw, ~6.5 effective).
func Gen3x8() PCIe { return PCIe{BandwidthBytes: 6.5e9, LatencySec: 10e-6} }

// TransferSec returns the time to move n bytes.
func (p PCIe) TransferSec(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return p.LatencySec + float64(n)/p.BandwidthBytes
}

// Platform bundles the accelerator card and host-side constants.
type Platform struct {
	// Device is the FPGA part.
	Device fpga.Device
	// Link is the PCIe connection.
	Link PCIe
	// DRAMBytes is the card's DRAM capacity for the resident database.
	DRAMBytes int64
	// EncodeNsPerElement is the host CPU cost to back-translate and encode
	// one query element.
	EncodeNsPerElement float64
	// InvokeOverheadSec is the per-kernel-launch overhead.
	InvokeOverheadSec float64
	// HitRecordBytes is the size of one write-back record (position +
	// score).
	HitRecordBytes int
}

// DefaultPlatform is the paper's setup: the Kintex-7 card on PCIe Gen3 x8
// with 8 GB of on-card DRAM.
func DefaultPlatform() Platform {
	return Platform{
		Device:             fpga.Kintex7(),
		Link:               Gen3x8(),
		DRAMBytes:          8 << 30,
		EncodeNsPerElement: 20,
		InvokeOverheadSec:  50e-6,
		HitRecordBytes:     8,
	}
}

// TransferStats describes one host→card movement.
type TransferStats struct {
	Bytes   int64
	Seconds float64
}

// EndToEnd decomposes one query's measured protocol legs.
type EndToEnd struct {
	// EncodeSec is host-side back-translation + encoding.
	EncodeSec float64
	// QueryTransferSec ships the encoded query to card DRAM.
	QueryTransferSec float64
	// KernelSec is the accelerator scan (from the fpga timing model).
	KernelSec float64
	// ReadbackSec returns the hit records.
	ReadbackSec float64
	// TotalSec sums every leg plus the kernel-invocation overhead.
	TotalSec float64
}

// QueryResult is the outcome of one end-to-end query.
type QueryResult struct {
	// Hits are the real alignment results (bit-exact engine).
	Hits []core.Hit
	// Sizing is the accelerator build used.
	Sizing fpga.Estimate
	// Timing decomposes the projected end-to-end time.
	Timing EndToEnd
}

// Session owns a card with a resident database, mirroring the paper's
// protocol: the database transfers once, then queries stream against it.
type Session struct {
	platform Platform
	packed   *bio.PackedNucSeq
	ref      bio.NucSeq
	loadCost TransferStats
	alignFn  AlignFunc
	batchFn  BatchAlignFunc
}

// AlignFunc computes one encoded query's hits against the resident
// database at an absolute threshold. Installing one (SetAlignFunc) lets
// the facade substitute its sharded, plane-cached scan for the session's
// built-in scalar engine; results must stay bit-exact, and only the hit
// computation is replaced — the timing protocol is unchanged. The
// function must honor the context's cancellation (return ctx.Err()
// promptly); the built-in engine checks it before scanning.
type AlignFunc func(ctx context.Context, prog isa.Program, threshold int) ([]core.Hit, error)

// SetAlignFunc installs the hit-computation hook (nil restores the
// built-in engine).
func (s *Session) SetAlignFunc(f AlignFunc) { s.alignFn = f }

// BatchAlignFunc computes a whole batch's hits against the resident
// database in one fused pass — every reference tile is scanned once for
// all queries instead of once per query. Thresholds are absolute
// per-query scores, index-aligned with progs; the result has one hit
// list per query, bit-exact with running AlignFunc per query. Like
// AlignFunc, only the hit computation is replaced — the timing protocol
// is unchanged — and the function must honor cancellation.
type BatchAlignFunc func(ctx context.Context, progs []isa.Program, thresholds []int) ([][]core.Hit, error)

// SetBatchAlignFunc installs the fused batch hook (nil falls back to the
// per-query AlignFunc loop, or the built-in scalar batch).
func (s *Session) SetBatchAlignFunc(f BatchAlignFunc) { s.batchFn = f }

// NewSession prepares an empty card.
func NewSession(p Platform) *Session { return &Session{platform: p} }

// Platform returns the session's hardware description.
func (s *Session) Platform() Platform { return s.platform }

// LoadDatabase packs the reference 2-bit and ships it to card DRAM,
// replacing any previous content. It fails if the packed database exceeds
// the card's DRAM.
func (s *Session) LoadDatabase(ref bio.NucSeq) (TransferStats, error) {
	if len(ref) == 0 {
		return TransferStats{}, fmt.Errorf("host: empty database")
	}
	packed := bio.Pack(ref)
	bytes := int64(len(packed.Words()) * 8)
	if bytes > s.platform.DRAMBytes {
		return TransferStats{}, fmt.Errorf("host: database needs %d bytes, card DRAM holds %d",
			bytes, s.platform.DRAMBytes)
	}
	s.packed = packed
	s.ref = ref
	s.loadCost = TransferStats{Bytes: bytes, Seconds: s.platform.Link.TransferSec(bytes)}
	return s.loadCost, nil
}

// DatabaseLen returns the resident database length in nucleotides (0 if
// none).
func (s *Session) DatabaseLen() int { return len(s.ref) }

// LoadCost returns the one-time database transfer stats.
func (s *Session) LoadCost() TransferStats { return s.loadCost }

// RunQuery executes one encoded query end-to-end: size the build, scan the
// resident database (bit-exact), and account every protocol leg.
func (s *Session) RunQuery(prog isa.Program, threshold int) (*QueryResult, error) {
	return s.RunQueryContext(context.Background(), prog, threshold)
}

// RunQueryContext is RunQuery under a context: the scan aborts with
// ctx.Err() on cancellation or deadline (through the installed AlignFunc's
// shard checkpoints, or before the built-in engine's scan starts).
func (s *Session) RunQueryContext(ctx context.Context, prog isa.Program, threshold int) (*QueryResult, error) {
	if s.packed == nil {
		return nil, fmt.Errorf("host: no database loaded")
	}
	est := fpga.Size(s.platform.Device, fpga.Config{QueryElems: len(prog)})
	if !est.Fits {
		return nil, fmt.Errorf("host: query of %d elements does not fit %s",
			len(prog), s.platform.Device.Name)
	}
	var hits []core.Hit
	if s.alignFn != nil {
		var err error
		if hits, err = s.alignFn(ctx, prog, threshold); err != nil {
			return nil, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		engine, err := core.NewEngine(prog, threshold)
		if err != nil {
			return nil, err
		}
		hits = engine.Align(s.ref)
	}

	kernel := fpga.Time(est, len(s.ref), nil)
	encode := float64(len(prog)) * s.platform.EncodeNsPerElement * 1e-9
	queryXfer := s.platform.Link.TransferSec(int64(len(prog))) // 1 byte/instr
	readback := s.platform.Link.TransferSec(int64(len(hits) * s.platform.HitRecordBytes))
	timing := EndToEnd{
		EncodeSec:        encode,
		QueryTransferSec: queryXfer,
		KernelSec:        kernel.Seconds,
		ReadbackSec:      readback,
	}
	timing.TotalSec = encode + queryXfer + kernel.Seconds + readback + s.platform.InvokeOverheadSec
	return &QueryResult{Hits: hits, Sizing: est, Timing: timing}, nil
}

// BatchResult aggregates a multi-query run.
type BatchResult struct {
	// PerQuery holds each query's hits.
	PerQuery [][]core.Hit
	// TotalSec is the end-to-end batch time: one database load amortized
	// across all kernels and readbacks.
	TotalSec float64
	// KernelSec is the accelerator-only component.
	KernelSec float64
}

// RunBatch executes many queries against the resident database,
// reproducing the paper's measurement protocol (database resident, queries
// streamed). All queries must share one length class so a single bitstream
// sizing applies; mixed lengths size per the longest.
func (s *Session) RunBatch(progs []isa.Program, thresholdFrac float64) (*BatchResult, error) {
	return s.RunBatchContext(context.Background(), progs, thresholdFrac)
}

// RunBatchContext is RunBatch under a context: cancellation is checked
// between queries (and within each query's scan when an AlignFunc with
// shard checkpoints is installed), so an aborted batch returns ctx.Err()
// without scanning the remaining queries.
func (s *Session) RunBatchContext(ctx context.Context, progs []isa.Program, thresholdFrac float64) (*BatchResult, error) {
	if s.packed == nil {
		return nil, fmt.Errorf("host: no database loaded")
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("host: empty batch")
	}
	maxElems := 0
	for _, p := range progs {
		if len(p) > maxElems {
			maxElems = len(p)
		}
	}
	est := fpga.Size(s.platform.Device, fpga.Config{QueryElems: maxElems})
	if !est.Fits {
		return nil, fmt.Errorf("host: batch sizing (%d elements) does not fit %s",
			maxElems, s.platform.Device.Name)
	}
	var perQuery [][]core.Hit
	if s.batchFn != nil {
		// The fused path: one reference pass for the whole batch. Resolve
		// every query's absolute threshold first so a bad fraction fails
		// before any scanning starts (matching the per-query loop).
		thresholds := make([]int, len(progs))
		for i, p := range progs {
			threshold, err := core.ThresholdFromFraction(thresholdFrac, len(p))
			if err != nil {
				return nil, err
			}
			thresholds[i] = threshold
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		if perQuery, err = s.batchFn(ctx, progs, thresholds); err != nil {
			return nil, err
		}
	} else if s.alignFn != nil {
		perQuery = make([][]core.Hit, len(progs))
		for i, p := range progs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			threshold, err := core.ThresholdFromFraction(thresholdFrac, len(p))
			if err != nil {
				return nil, err
			}
			hits, err := s.alignFn(ctx, p, threshold)
			if err != nil {
				return nil, err
			}
			perQuery[i] = hits
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch, err := core.NewBatchUniform(progs, thresholdFrac)
		if err != nil {
			return nil, err
		}
		perQuery = batch.Align(s.ref)
	}

	kernelOne := fpga.Time(est, len(s.ref), nil).Seconds
	var total float64
	var hitBytes int64
	for i, hits := range perQuery {
		total += float64(len(progs[i])) * s.platform.EncodeNsPerElement * 1e-9
		total += s.platform.Link.TransferSec(int64(len(progs[i])))
		hitBytes += int64(len(hits) * s.platform.HitRecordBytes)
	}
	kernelTotal := kernelOne * float64(len(progs))
	total += kernelTotal
	total += s.platform.Link.TransferSec(hitBytes)
	total += s.platform.InvokeOverheadSec * float64(len(progs))

	return &BatchResult{
		PerQuery:  perQuery,
		TotalSec:  total,
		KernelSec: kernelTotal,
	}, nil
}
