package subonly

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// TestAlignEqualsTemplateSemantics: the instruction-level naive aligner and
// the template-level protein aligner are two independent renderings of the
// same hardware semantics and must agree exactly.
func TestAlignEqualsTemplateSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		q := bio.RandomProtSeq(rng, 2+rng.Intn(8))
		ref := bio.RandomNucSeq(rng, 3*len(q)+rng.Intn(150))
		prog := isa.MustEncodeProtein(q)
		thr := rng.Intn(len(prog) + 1)
		a := Align(prog, ref, thr)
		b := AlignProtein(q, ref, thr)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: instruction %v vs template %v", trial, a, b)
		}
	}
}

func TestAlignEmptyAndShort(t *testing.T) {
	q := bio.ProtSeq{bio.Met}
	prog := isa.MustEncodeProtein(q)
	if hits := Align(prog, bio.NucSeq{bio.A, bio.U}, 0); hits != nil {
		t.Error("short reference must yield nothing")
	}
}

func TestExactScoreNeverBelowPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		q := bio.RandomProtSeq(rng, 5)
		ref := bio.RandomNucSeq(rng, 15)
		paper := ScoreProteinAt(q, ref, 0)
		exact := ExactScoreProteinAt(q, ref, 0)
		if exact < paper {
			t.Fatalf("exact %d < paper %d for %s vs %s", exact, paper, q, ref)
		}
	}
}

func TestExactRepairsAGYSerine(t *testing.T) {
	q := bio.ProtSeq{bio.Ser}
	for _, codon := range []string{"AGU", "AGC"} {
		c, _ := bio.ParseCodon(codon)
		ref := bio.NucSeq{c[0], c[1], c[2]}
		if got := ScoreProteinAt(q, ref, 0); got != 1 {
			// UCD vs AGU: only the D position matches.
			t.Errorf("paper score for %s = %d, want 1", codon, got)
		}
		if got := ExactScoreProteinAt(q, ref, 0); got != 3 {
			t.Errorf("exact score for %s = %d, want 3", codon, got)
		}
	}
	// UCN serines score 3 either way.
	for _, codon := range []string{"UCU", "UCC", "UCA", "UCG"} {
		c, _ := bio.ParseCodon(codon)
		ref := bio.NucSeq{c[0], c[1], c[2]}
		if ScoreProteinAt(q, ref, 0) != 3 || ExactScoreProteinAt(q, ref, 0) != 3 {
			t.Errorf("UCN serine %s must score 3 in both modes", codon)
		}
	}
}

func TestExactDoesNotOveraccept(t *testing.T) {
	// AGY repair must not make Ser match non-serine codons fully.
	q := bio.ProtSeq{bio.Ser}
	for i := 0; i < bio.NumCodons; i++ {
		c := bio.CodonFromIndex(i)
		ref := bio.NucSeq{c[0], c[1], c[2]}
		if ExactScoreProteinAt(q, ref, 0) == 3 && c.Translate() != bio.Ser {
			t.Errorf("exact Ser fully accepts %v which encodes %v", c, c.Translate())
		}
	}
}

func TestAlignProteinExactSupersets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := bio.RandomProtSeq(rng, 6)
	q[2] = bio.Ser
	ref := bio.RandomNucSeq(rng, 500)
	thr := 3*len(q) - 3
	paper := AlignProtein(q, ref, thr)
	exact := AlignProteinExact(q, ref, thr)
	// Every paper hit must appear among exact hits (with >= score).
	em := map[int]int{}
	for _, h := range exact {
		em[h.Pos] = h.Score
	}
	for _, h := range paper {
		s, ok := em[h.Pos]
		if !ok || s < h.Score {
			t.Fatalf("paper hit %+v missing from exact set", h)
		}
	}
}

func TestPerfectGeneScoresFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := bio.RandomProtSeq(rng, 25)
	gene := bio.EncodeGene(rng, q)
	// Exact mode scores every synonymous encoding perfectly, including AGY
	// serines.
	if got := ExactScoreProteinAt(q, gene, 0); got != 3*len(q) {
		t.Errorf("exact score on own gene = %d, want %d", got, 3*len(q))
	}
}
