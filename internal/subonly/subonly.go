// Package subonly is the reference software implementation of FabP's
// substitution-only sliding alignment: a deliberately naive, obviously
// correct scorer used as the golden model for the optimized Engine and the
// generated netlist, plus an "exact" variant that repairs the paper's
// dropped serine codons for the accuracy ablation.
package subonly

import (
	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/isa"
)

// Hit mirrors core.Hit without importing it (subonly sits below core in the
// validation stack).
type Hit struct {
	Pos   int
	Score int
}

// Align slides the encoded query over the reference one position at a time
// and reports every window scoring at least threshold. O(L_r · L_q); use
// core.Engine for large inputs.
func Align(prog isa.Program, ref bio.NucSeq, threshold int) []Hit {
	var hits []Hit
	for p := 0; p+len(prog) <= len(ref); p++ {
		score := prog.Score(ref[p : p+len(prog)])
		if score >= threshold {
			hits = append(hits, Hit{Pos: p, Score: score})
		}
	}
	return hits
}

// ScoreProteinAt scores protein q against the reference window starting at
// pos using the paper-faithful hardware semantics, returning the number of
// matching elements (max 3·len(q)).
func ScoreProteinAt(q bio.ProtSeq, ref bio.NucSeq, pos int) int {
	score := 0
	for i, a := range q {
		c := bio.Codon{ref[pos+3*i], ref[pos+3*i+1], ref[pos+3*i+2]}
		score += backtrans.TemplateOf(a).MatchCount(c)
	}
	return score
}

// ExactScoreProteinAt scores with the serine repair: a serine residue may
// match either the UCN family (the paper's UCD template) or the AGY family
// the hardware encoding drops; each residue contributes the better of the
// two template match counts. Every other residue scores identically to the
// hardware. This is the upper bound a 2-template design could reach.
func ExactScoreProteinAt(q bio.ProtSeq, ref bio.NucSeq, pos int) int {
	score := 0
	for i, a := range q {
		c := bio.Codon{ref[pos+3*i], ref[pos+3*i+1], ref[pos+3*i+2]}
		m := backtrans.TemplateOf(a).MatchCount(c)
		if a == bio.Ser {
			if agy := serAGYTemplate.MatchCount(c); agy > m {
				m = agy
			}
		}
		score += m
	}
	return score
}

// serAGYTemplate matches the AGU/AGC serine family: A, G, then U/C.
var serAGYTemplate = backtrans.Template{
	backtrans.Exact(bio.A),
	backtrans.Exact(bio.G),
	backtrans.Conditional(backtrans.CondUC),
}

// AlignProtein slides a protein query over every nucleotide offset of the
// reference (like the hardware — codon phase is discovered, not assumed)
// using paper-faithful template semantics.
func AlignProtein(q bio.ProtSeq, ref bio.NucSeq, threshold int) []Hit {
	var hits []Hit
	m := 3 * len(q)
	for p := 0; p+m <= len(ref); p++ {
		if s := ScoreProteinAt(q, ref, p); s >= threshold {
			hits = append(hits, Hit{Pos: p, Score: s})
		}
	}
	return hits
}

// AlignProteinExact is AlignProtein with the serine repair.
func AlignProteinExact(q bio.ProtSeq, ref bio.NucSeq, threshold int) []Hit {
	var hits []Hit
	m := 3 * len(q)
	for p := 0; p+m <= len(ref); p++ {
		if s := ExactScoreProteinAt(q, ref, p); s >= threshold {
			hits = append(hits, Hit{Pos: p, Score: s})
		}
	}
	return hits
}
