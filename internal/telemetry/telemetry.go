// Package telemetry is the measurement substrate of the FabP pipeline: a
// lock-cheap registry of named counters, gauges and fixed-bucket latency
// histograms that the aligner, the shard scheduler, the plane cache and
// the chunked stream scanner write into while they run — the software
// rendering of the per-stage throughput/utilization counters FPGA designs
// expose beside each pipeline stage.
//
// Design contract (load-bearing; see DESIGN.md):
//
//   - Every hot-path write is a single atomic RMW (histograms: three).
//     There is no lock on the write path; registration (name → metric
//     lookup) takes a read lock and is meant to be done once, at
//     construction time, with the returned pointer cached by the caller.
//   - All metric methods are nil-receiver safe no-ops, so instrumented
//     code never branches on "is telemetry on" — a disabled metric is a
//     nil pointer and costs one predicted branch.
//   - Snapshot is eventually consistent, not a linearizable cut: counters
//     read while writers run may be mutually off by in-flight updates
//     (a histogram's Count can momentarily disagree with its bucket sum).
//     Every individual value is monotone between Resets.
package telemetry

import (
	"context"
	"encoding/json"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, resident bytes); it moves
// both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute level. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease). Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current level (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the histogram bucket upper bounds in
// nanoseconds: powers of four from 1 µs to ~1 s, plus an implicit
// overflow bucket. Fixed buckets keep Observe allocation-free and
// snapshots mergeable across processes.
var DefaultLatencyBounds = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000, // 1 µs … 256 µs
	1_024_000, 4_096_000, 16_384_000, 65_536_000, // 1 ms … 65 ms
	262_144_000, 1_048_576_000, // 262 ms, ~1 s
}

// Histogram is a fixed-bucket latency histogram. Observations land in the
// first bucket whose upper bound (ns) is >= the value; larger ones land
// in the overflow bucket. Count and Sum track totals exactly.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= ns })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the observation count (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed observations in nanoseconds (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a name-keyed set of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid "telemetry off" registry:
// every lookup returns a nil metric whose methods no-op.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry — where the shared scheduler
// pool and every aligner without a private WithTelemetry registry report.
func Default() *Registry { return defaultRegistry }

// Counter returns (registering on first use) the named counter. Nil
// registry → nil counter (methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named latency
// histogram with DefaultLatencyBounds.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(DefaultLatencyBounds)
		r.histograms[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot. UpperNs < 0 marks the
// overflow bucket.
type Bucket struct {
	UpperNs int64  `json:"le_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (h HistogramSnapshot) MeanNs() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNs) / float64(h.Count)
}

// Snapshot is a registry's state at one moment (see the package contract:
// eventually consistent under concurrent writers). It marshals to the
// same JSON String renders, so it can be published via expvar.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Nil registry → empty (but
// non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
		for i := range h.counts {
			upper := int64(-1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			if n := h.counts[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{UpperNs: upper, Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Reset zeroes every registered metric (registrations survive, so cached
// metric pointers stay valid). No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// String renders the snapshot as JSON — the expvar.Var contract, so a
// registry can be published on /debug/vars with expvar.Publish("fabp", r).
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Labeled runs fn on the current goroutine with the pprof label key=value
// attached, so CPU and goroutine profiles attribute worker time to the
// pipeline stage that scheduled it (`go tool pprof -tagfocus`).
func Labeled(key, value string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(key, value), func(context.Context) { fn() })
}
