package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("align.queries")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	if r.Counter("align.queries") != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("pool.depth")
	g.Add(3)
	g.Add(-1)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Load())
	}
	g.Set(7)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	r.Reset()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketsAndTotals(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	obs := []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond,
		500 * time.Microsecond, 100 * time.Millisecond, 10 * time.Second}
	var sum int64
	for _, d := range obs {
		h.Observe(d)
		sum += d.Nanoseconds()
	}
	if h.Count() != uint64(len(obs)) || h.Sum() != sum {
		t.Fatalf("count/sum %d/%d, want %d/%d", h.Count(), h.Sum(), len(obs), sum)
	}
	hs := r.Snapshot().Histograms["lat"]
	var bucketTotal uint64
	overflow := false
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
		if b.UpperNs < 0 {
			overflow = true
			if b.Count != 1 {
				t.Errorf("overflow bucket = %d, want 1 (the 10 s observation)", b.Count)
			}
		}
	}
	if bucketTotal != hs.Count {
		t.Fatalf("bucket sum %d != count %d", bucketTotal, hs.Count)
	}
	if !overflow {
		t.Fatal("10 s observation must land in the overflow bucket")
	}
	if m := hs.MeanNs(); m <= 0 {
		t.Fatalf("mean %v", m)
	}
}

func TestSnapshotResetAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(-3)
	r.Histogram("c").Observe(time.Millisecond)

	var decoded Snapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded.Counters["a"] != 2 || decoded.Gauges["b"] != -3 {
		t.Fatalf("decoded %+v", decoded)
	}
	if decoded.Histograms["c"].Count != 1 {
		t.Fatalf("decoded histogram %+v", decoded.Histograms["c"])
	}

	r.Reset()
	s := r.Snapshot()
	if s.Counters["a"] != 0 || s.Gauges["b"] != 0 || s.Histograms["c"].Count != 0 {
		t.Fatalf("reset left values: %+v", s)
	}
	// Metric pointers registered before Reset stay live.
	r.Counter("a").Inc()
	if r.Snapshot().Counters["a"] != 1 {
		t.Fatal("post-reset writes lost")
	}
}

// TestRegistryConcurrent hammers registration and writes from many
// goroutines; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	names := []string{"m0", "m1", "m2", "m3"}
	var wg sync.WaitGroup
	const goroutines, iters = 16, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(g+i)%len(names)]
				r.Counter(name).Inc()
				r.Gauge(name).Add(1)
				r.Histogram(name).Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total uint64
	for _, name := range names {
		total += s.Counters[name]
		if s.Histograms[name].Count == 0 {
			t.Errorf("%s histogram empty", name)
		}
	}
	if total != goroutines*iters {
		t.Fatalf("counter total %d, want %d", total, goroutines*iters)
	}
}

func TestLabeledRunsOnCallingGoroutine(t *testing.T) {
	ran := false
	Labeled("fabp_stage", "test", func() { ran = true })
	if !ran {
		t.Fatal("Labeled did not run fn")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}
