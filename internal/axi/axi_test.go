package axi

import (
	"math"
	"testing"
)

func TestDefaultPort(t *testing.T) {
	p := DefaultPort()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BytesPerBeat() != 64 || p.ElementsPerBeat() != 256 {
		t.Errorf("beat geometry wrong: %d bytes, %d elements", p.BytesPerBeat(), p.ElementsPerBeat())
	}
	if bw := p.NominalBandwidth(); math.Abs(bw-12.8e9) > 1 {
		t.Errorf("nominal bandwidth %.3e", bw)
	}
}

func TestPortValidate(t *testing.T) {
	bad := []Port{
		{WidthBits: 0, FreqHz: 1e8},
		{WidthBits: 100, FreqHz: 1e8},
		{WidthBits: 512, FreqHz: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestNoStallStream(t *testing.T) {
	s := SimulateStream(1000, NoStall{}, 1)
	if s.TotalCycles != 1000 || s.StallCycles != 0 || s.ComputeBoundCycles != 0 {
		t.Errorf("ideal stream stats: %+v", s)
	}
	if u := s.Utilization(); u != 1 {
		t.Errorf("utilization %f", u)
	}
}

func TestComputeBoundStream(t *testing.T) {
	s := SimulateStream(100, NoStall{}, 4)
	if s.TotalCycles != 400 {
		t.Errorf("cycles %d, want 400", s.TotalCycles)
	}
	if s.ComputeBoundCycles != 300 {
		t.Errorf("compute-bound cycles %d", s.ComputeBoundCycles)
	}
	if u := s.Utilization(); math.Abs(u-0.25) > 1e-9 {
		t.Errorf("utilization %f", u)
	}
}

func TestRandomStallStream(t *testing.T) {
	stall := NewRandomStall(0.05, 1, 42)
	s := SimulateStream(100000, stall, 1)
	util := s.Utilization()
	// Expected utilization ≈ 1/(1+0.05).
	if util < 0.93 || util > 0.97 {
		t.Errorf("utilization %.3f, expected ≈0.952", util)
	}
	if s.StallCycles != s.TotalCycles-s.Beats {
		t.Errorf("stall accounting inconsistent: %+v", s)
	}
}

func TestRandomStallDeterminism(t *testing.T) {
	a := SimulateStream(5000, NewRandomStall(0.2, 2, 7), 1)
	b := SimulateStream(5000, NewRandomStall(0.2, 2, 7), 1)
	if a != b {
		t.Error("same seed must give same schedule")
	}
	c := SimulateStream(5000, NewRandomStall(0.2, 2, 8), 1)
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestRandomStallLazyInit(t *testing.T) {
	// A zero-value-style literal (no constructor) must still work.
	m := &RandomStall{Prob: 1, Mean: 1, Seed: 3}
	if m.StallsBefore(0) < 1 {
		t.Error("prob=1 must always stall")
	}
}

func TestStallsAbsorbedByComputeBound(t *testing.T) {
	// With 4 compute cycles per beat, occasional 1-cycle stalls are hidden.
	ideal := SimulateStream(10000, NoStall{}, 4)
	noisy := SimulateStream(10000, NewRandomStall(0.3, 1, 1), 4)
	slowdown := float64(noisy.TotalCycles) / float64(ideal.TotalCycles)
	if slowdown > 1.02 {
		t.Errorf("stalls should hide under compute: slowdown %.3f", slowdown)
	}
}

func TestPeriodicStall(t *testing.T) {
	m := PeriodicStall{Period: 10, Len: 3}
	if m.StallsBefore(0) != 0 || m.StallsBefore(5) != 0 {
		t.Error("no stall off-period")
	}
	if m.StallsBefore(10) != 3 || m.StallsBefore(20) != 3 {
		t.Error("stall on period")
	}
	s := SimulateStream(100, m, 1)
	if s.TotalCycles != 100+9*3 {
		t.Errorf("cycles %d", s.TotalCycles)
	}
	if (PeriodicStall{}).StallsBefore(5) != 0 {
		t.Error("zero-period must never stall")
	}
}

func TestAchievedBandwidth(t *testing.T) {
	p := DefaultPort()
	s := SimulateStream(1000, NoStall{}, 1)
	if bw := s.AchievedBandwidth(p); math.Abs(bw-p.NominalBandwidth()) > 1 {
		t.Errorf("ideal achieved %.3e", bw)
	}
	var empty StreamStats
	if empty.AchievedBandwidth(p) != 0 || empty.Utilization() != 0 {
		t.Error("empty stats must be zero")
	}
}

func TestSimulateStreamDefaults(t *testing.T) {
	s := SimulateStream(10, nil, 0)
	if s.TotalCycles != 10 {
		t.Errorf("defaults: %+v", s)
	}
}

func TestMultiChannel(t *testing.T) {
	m := MultiChannel{Port: DefaultPort(), Channels: 4}
	if math.Abs(m.NominalBandwidth()-4*12.8e9) > 1 {
		t.Error("aggregate bandwidth wrong")
	}
	if m.ElementsPerCycle() != 1024 {
		t.Error("aggregate elements wrong")
	}
}
