// Package axi models the FPGA's DRAM-facing AXI read stream (§III-C of the
// paper): a 512-bit port delivering one beat per clock when DRAM has data,
// with stall cycles when it does not, and optional multi-channel operation.
// The model is beat-level and deterministic, so experiments can attribute
// cycle counts exactly.
package axi

import (
	"fmt"
	"math/rand"
)

// Port describes one AXI memory channel.
type Port struct {
	// WidthBits is the data width of the AXI interface (the paper: 512).
	WidthBits int
	// FreqHz is the kernel clock frequency.
	FreqHz float64
}

// DefaultPort is the paper's configuration: a 512-bit interface at 200 MHz,
// giving the 12.8 GB/s nominal bandwidth of Table I.
func DefaultPort() Port { return Port{WidthBits: 512, FreqHz: 200e6} }

// BytesPerBeat returns the bytes transferred per valid cycle.
func (p Port) BytesPerBeat() int { return p.WidthBits / 8 }

// ElementsPerBeat returns the 2-bit reference elements per beat (256 for
// the default port).
func (p Port) ElementsPerBeat() int { return p.WidthBits / 2 }

// NominalBandwidth returns bytes/second at one beat per cycle.
func (p Port) NominalBandwidth() float64 {
	return float64(p.BytesPerBeat()) * p.FreqHz
}

// Validate checks the port parameters.
func (p Port) Validate() error {
	if p.WidthBits <= 0 || p.WidthBits%8 != 0 {
		return fmt.Errorf("axi: width %d must be a positive multiple of 8", p.WidthBits)
	}
	if p.FreqHz <= 0 {
		return fmt.Errorf("axi: frequency must be positive")
	}
	return nil
}

// StallModel produces the number of idle cycles the channel inserts before
// each beat (cycles in which "the AXI port does not have valid data").
type StallModel interface {
	// StallsBefore returns idle cycles preceding beat b.
	StallsBefore(b int) int
}

// NoStall is the ideal DRAM that always has data ready.
type NoStall struct{}

// StallsBefore implements StallModel.
func (NoStall) StallsBefore(int) int { return 0 }

// RandomStall inserts a geometric number of idle cycles with the given
// per-beat probability, deterministic in the seed. It approximates DRAM
// refresh/bank-conflict noise on an otherwise sequential stream.
type RandomStall struct {
	// Prob is the probability a beat is preceded by at least one stall.
	Prob float64
	// Mean is the mean stall length when one occurs (>= 1).
	Mean float64
	// Seed makes the pattern reproducible.
	Seed int64

	rng *rand.Rand
}

// NewRandomStall constructs a RandomStall model.
func NewRandomStall(prob, mean float64, seed int64) *RandomStall {
	return &RandomStall{Prob: prob, Mean: mean, Seed: seed,
		rng: rand.New(rand.NewSource(seed))}
}

// StallsBefore implements StallModel.
func (r *RandomStall) StallsBefore(int) int {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	if r.rng.Float64() >= r.Prob {
		return 0
	}
	// Geometric with the requested mean.
	n := 1
	for r.Mean > 1 && r.rng.Float64() < 1-1/r.Mean {
		n++
	}
	return n
}

// PeriodicStall inserts Len idle cycles every Period beats — a refresh-like
// pattern.
type PeriodicStall struct {
	Period int
	Len    int
}

// StallsBefore implements StallModel.
func (p PeriodicStall) StallsBefore(b int) int {
	if p.Period <= 0 || b == 0 {
		return 0
	}
	if b%p.Period == 0 {
		return p.Len
	}
	return 0
}

// StreamStats reports the outcome of streaming beats through a channel into
// a consumer.
type StreamStats struct {
	// Beats is the number of data beats transferred.
	Beats int
	// TotalCycles spans first request to last beat consumed.
	TotalCycles int
	// StallCycles is the subset of cycles the consumer waited on DRAM.
	StallCycles int
	// ComputeBoundCycles is the subset where DRAM waited on the consumer
	// (iterations > 1).
	ComputeBoundCycles int
}

// AchievedBandwidth returns the realized bytes/second for the port.
func (s StreamStats) AchievedBandwidth(p Port) float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return float64(s.Beats*p.BytesPerBeat()) * p.FreqHz / float64(s.TotalCycles)
}

// Utilization returns the fraction of cycles a beat was transferred.
func (s StreamStats) Utilization() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return float64(s.Beats) / float64(s.TotalCycles)
}

// SimulateStream models a consumer that needs consumerCyclesPerBeat cycles
// of processing per beat (FabP's iteration count for segmented long
// queries) fed by a channel under the given stall model. The recurrence is
// exact: beat b is consumed at
//
//	c[b] = max(c[b-1] + 1 + stalls(b), c[b-1] + I)
//
// since the channel can deliver at most one beat per cycle and the
// pipeline accepts a new beat every I cycles.
func SimulateStream(beats int, stall StallModel, consumerCyclesPerBeat int) StreamStats {
	if consumerCyclesPerBeat < 1 {
		consumerCyclesPerBeat = 1
	}
	if stall == nil {
		stall = NoStall{}
	}
	stats := StreamStats{Beats: beats}
	c := 0
	for b := 0; b < beats; b++ {
		arrival := 1 + stall.StallsBefore(b)
		step := arrival
		if consumerCyclesPerBeat > step {
			step = consumerCyclesPerBeat
			stats.ComputeBoundCycles += step - arrival
		} else {
			stats.StallCycles += arrival - consumerCyclesPerBeat
		}
		c += step
	}
	stats.TotalCycles = c
	return stats
}

// MultiChannel aggregates several identical ports; FabP stripes the
// reference across channels when resources allow (§III-C).
type MultiChannel struct {
	Port     Port
	Channels int
}

// NominalBandwidth is the aggregate bytes/second.
func (m MultiChannel) NominalBandwidth() float64 {
	return m.Port.NominalBandwidth() * float64(m.Channels)
}

// ElementsPerCycle is the aggregate reference elements per clock.
func (m MultiChannel) ElementsPerCycle() int {
	return m.Port.ElementsPerBeat() * m.Channels
}
