package rtl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildAndSim is a test helper: validate + simulate, failing the test on
// error.
func buildAndSim(t *testing.T, n *Netlist) *Simulator {
	t.Helper()
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestConstants(t *testing.T) {
	n := New("consts")
	n.Output("zero", Zero)
	n.Output("one", One)
	sim := buildAndSim(t, n)
	sim.Eval()
	if sim.Get(Zero) != 0 || sim.Get(One) != 1 {
		t.Error("constants wrong")
	}
}

func TestBasicGates(t *testing.T) {
	n := New("gates")
	a := n.Input("a")
	b := n.Input("b")
	c := n.Input("c")
	and := n.And(a, b, c)
	or := n.Or(a, b, c)
	xor := n.Xor(a, b, c)
	not := n.Not(a)
	maj := n.Maj3(a, b, c)
	mux := n.Mux2(c, a, b)
	sim := buildAndSim(t, n)
	for v := uint64(0); v < 8; v++ {
		av, bv, cv := uint8(v&1), uint8(v>>1&1), uint8(v>>2&1)
		sim.Set(a, av)
		sim.Set(b, bv)
		sim.Set(c, cv)
		sim.Eval()
		if got := sim.Get(and); got != av&bv&cv {
			t.Errorf("and(%d%d%d) = %d", av, bv, cv, got)
		}
		if got := sim.Get(or); got != av|bv|cv {
			t.Errorf("or(%d%d%d) = %d", av, bv, cv, got)
		}
		if got := sim.Get(xor); got != av^bv^cv {
			t.Errorf("xor(%d%d%d) = %d", av, bv, cv, got)
		}
		if got := sim.Get(not); got != 1-av {
			t.Errorf("not(%d) = %d", av, got)
		}
		wantMaj := uint8(0)
		if av+bv+cv >= 2 {
			wantMaj = 1
		}
		if got := sim.Get(maj); got != wantMaj {
			t.Errorf("maj(%d%d%d) = %d", av, bv, cv, got)
		}
		wantMux := av
		if cv == 1 {
			wantMux = bv
		}
		if got := sim.Get(mux); got != wantMux {
			t.Errorf("mux(%d%d%d) = %d", av, bv, cv, got)
		}
	}
}

func TestSingleInputGatePassthrough(t *testing.T) {
	n := New("g1")
	a := n.Input("a")
	if n.And(a) != a || n.Or(a) != a || n.Xor(a) != a {
		t.Error("1-input gates must be wires")
	}
}

func TestGatePanics(t *testing.T) {
	n := New("p")
	a := n.Input("a")
	mustPanic(t, func() { n.And() })
	mustPanic(t, func() { n.And(a, a, a, a, a, a, a) })
	mustPanic(t, func() { n.AndWide(nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestLUT6Direct(t *testing.T) {
	n := New("lut")
	in := n.InputBus("i", 6)
	var init uint64 = 0x8000000000000001 // 1 at index 0 and 63
	out := n.LUT6(init, in[0], in[1], in[2], in[3], in[4], in[5])
	sim := buildAndSim(t, n)
	sim.SetBus(in, 0)
	sim.Eval()
	if sim.Get(out) != 1 {
		t.Error("index 0 should be 1")
	}
	sim.SetBus(in, 63)
	sim.Eval()
	if sim.Get(out) != 1 {
		t.Error("index 63 should be 1")
	}
	sim.SetBus(in, 5)
	sim.Eval()
	if sim.Get(out) != 0 {
		t.Error("index 5 should be 0")
	}
}

func TestDFFBasics(t *testing.T) {
	n := New("dff")
	d := n.Input("d")
	q := n.DFF(d)
	n.Output("q", q)
	sim := buildAndSim(t, n)
	if sim.Get(q) != 0 {
		t.Error("power-on state must be 0")
	}
	sim.Set(d, 1)
	sim.Step()
	if sim.Get(q) != 1 {
		t.Error("q must capture d at the edge")
	}
	sim.Set(d, 0)
	sim.Eval()
	if sim.Get(q) != 1 {
		t.Error("q must hold between edges")
	}
	sim.Step()
	if sim.Get(q) != 0 {
		t.Error("q must capture new d")
	}
}

func TestDFFEnable(t *testing.T) {
	n := New("dffe")
	d := n.Input("d")
	en := n.Input("en")
	q := n.DFFE(d, en)
	sim := buildAndSim(t, n)
	sim.Set(d, 1)
	sim.Set(en, 0)
	sim.Step()
	if sim.Get(q) != 0 {
		t.Error("disabled FF must hold")
	}
	sim.Set(en, 1)
	sim.Step()
	if sim.Get(q) != 1 {
		t.Error("enabled FF must capture")
	}
}

func TestShiftRegisterSimultaneity(t *testing.T) {
	// q2 <- q1 <- d: after one edge with d=1, only q1 is set.
	n := New("shift")
	d := n.Input("d")
	q1 := n.DFF(d)
	q2 := n.DFF(q1)
	sim := buildAndSim(t, n)
	sim.Set(d, 1)
	sim.Step()
	if sim.Get(q1) != 1 || sim.Get(q2) != 0 {
		t.Errorf("after 1 edge: q1=%d q2=%d", sim.Get(q1), sim.Get(q2))
	}
	sim.Set(d, 0)
	sim.Step()
	if sim.Get(q1) != 0 || sim.Get(q2) != 1 {
		t.Errorf("after 2 edges: q1=%d q2=%d", sim.Get(q1), sim.Get(q2))
	}
}

func TestSimulatorReset(t *testing.T) {
	n := New("rst")
	d := n.Input("d")
	q := n.DFF(d)
	sim := buildAndSim(t, n)
	sim.Set(d, 1)
	sim.Run(3)
	if sim.Cycle() != 3 || sim.Get(q) != 1 {
		t.Fatal("setup failed")
	}
	sim.Reset()
	if sim.Cycle() != 0 || sim.Get(q) != 0 || sim.Get(One) != 1 {
		t.Error("reset must clear state but keep One")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	n := New("loop")
	a := n.Input("a")
	// Build a LUT whose input is its own output via a second LUT.
	fwd := n.LUT6(andInit(2), a, Zero, Zero, Zero, Zero, Zero)
	// Rewire: create loop manually by constructing b = and(a, c), c = and(b,b).
	b := n.LUT6(andInit(2), a, fwd, Zero, Zero, Zero, Zero)
	// Manually patch the first LUT to read the second's output — loop.
	n.luts[0].in[1] = b
	if _, err := NewSimulator(n); err == nil {
		t.Error("combinational loop must be detected")
	}
	if !strings.Contains(n.Validate().Error(), "loop") {
		t.Error("error should mention loop")
	}
}

func TestValidateUndriven(t *testing.T) {
	n := New("undriven")
	ghost := n.newSignal()
	n.LUT6(0, ghost, Zero, Zero, Zero, Zero, Zero)
	if err := n.Validate(); err == nil {
		t.Error("undriven LUT input must be rejected")
	}
	n2 := New("undriven2")
	ghost2 := n2.newSignal()
	n2.Output("o", ghost2)
	if err := n2.Validate(); err == nil {
		t.Error("undriven output must be rejected")
	}
	n3 := New("undriven3")
	ghost3 := n3.newSignal()
	n3.DFF(ghost3)
	if err := n3.Validate(); err == nil {
		t.Error("undriven DFF input must be rejected")
	}
}

func TestAddBus(t *testing.T) {
	n := New("add")
	a := n.InputBus("a", 5)
	b := n.InputBus("b", 5)
	sum := n.AddBus(a, b)
	if len(sum) != 6 {
		t.Fatalf("sum width %d", len(sum))
	}
	sim := buildAndSim(t, n)
	for av := uint64(0); av < 32; av += 3 {
		for bv := uint64(0); bv < 32; bv += 5 {
			sim.SetBus(a, av)
			sim.SetBus(b, bv)
			sim.Eval()
			if got := sim.GetBus(sum); got != av+bv {
				t.Errorf("%d+%d = %d", av, bv, got)
			}
		}
	}
}

func TestAddBusUnequalWidths(t *testing.T) {
	n := New("addw")
	a := n.InputBus("a", 3)
	b := n.InputBus("b", 6)
	sum := n.AddBus(a, b)
	sim := buildAndSim(t, n)
	sim.SetBus(a, 7)
	sim.SetBus(b, 63)
	sim.Eval()
	if got := sim.GetBus(sum); got != 70 {
		t.Errorf("7+63 = %d", got)
	}
}

func TestAddBusMany(t *testing.T) {
	n := New("addmany")
	buses := make([][]Signal, 5)
	for i := range buses {
		buses[i] = n.InputBus("b", 3)
	}
	sum := n.AddBusMany(buses...)
	sim := buildAndSim(t, n)
	vals := []uint64{7, 3, 5, 6, 1}
	var want uint64
	for i, v := range vals {
		sim.SetBus(buses[i], v)
		want += v
	}
	sim.Eval()
	if got := sim.GetBus(sum); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	// Degenerate cases.
	if got := n.AddBusMany(); len(got) != 1 || got[0] != Zero {
		t.Error("empty sum must be zero")
	}
	single := [][]Signal{{One}}
	if got := n.AddBusMany(single...); len(got) != 1 || got[0] != One {
		t.Error("single sum must pass through")
	}
}

func TestCompareGEConst(t *testing.T) {
	for _, k := range []uint{0, 1, 5, 9, 15, 16, 31, 32, 100} {
		n := New("ge")
		bus := n.InputBus("v", 5)
		ge := n.CompareGEConst(bus, k)
		sim := buildAndSim(t, n)
		for v := uint64(0); v < 32; v++ {
			sim.SetBus(bus, v)
			sim.Eval()
			want := uint8(0)
			if uint(v) >= k {
				want = 1
			}
			if got := sim.Get(ge); got != want {
				t.Errorf("k=%d v=%d: ge=%d want %d", k, v, got, want)
			}
		}
	}
}

func TestEqualConst(t *testing.T) {
	n := New("eq")
	bus := n.InputBus("v", 8)
	eq := n.EqualConst(bus, 0xA5)
	sim := buildAndSim(t, n)
	for _, v := range []uint64{0, 1, 0xA5, 0xA4, 0xFF} {
		sim.SetBus(bus, v)
		sim.Eval()
		want := uint8(0)
		if v == 0xA5 {
			want = 1
		}
		if got := sim.Get(eq); got != want {
			t.Errorf("v=%#x eq=%d", v, got)
		}
	}
}

func TestWideGates(t *testing.T) {
	n := New("wide")
	bus := n.InputBus("v", 20)
	and := n.AndWide(bus)
	or := n.OrWide(bus)
	sim := buildAndSim(t, n)
	sim.SetBus(bus, 1<<20-1)
	sim.Eval()
	if sim.Get(and) != 1 || sim.Get(or) != 1 {
		t.Error("all ones")
	}
	sim.SetBus(bus, 1<<20-2)
	sim.Eval()
	if sim.Get(and) != 0 || sim.Get(or) != 1 {
		t.Error("one zero")
	}
	sim.SetBus(bus, 0)
	sim.Eval()
	if sim.Get(and) != 0 || sim.Get(or) != 0 {
		t.Error("all zero")
	}
}

func TestRegisterBus(t *testing.T) {
	n := New("regbus")
	bus := n.InputBus("v", 4)
	en := n.Input("en")
	reg := n.RegisterBus(bus, en)
	sim := buildAndSim(t, n)
	sim.SetBus(bus, 0xC)
	sim.Set(en, 1)
	sim.Step()
	if got := sim.GetBus(reg); got != 0xC {
		t.Errorf("reg = %#x", got)
	}
	sim.SetBus(bus, 0x3)
	sim.Set(en, 0)
	sim.Step()
	if got := sim.GetBus(reg); got != 0xC {
		t.Errorf("disabled reg = %#x", got)
	}
}

func TestAddBusRandom(t *testing.T) {
	f := func(av, bv uint16) bool {
		n := New("addq")
		a := n.InputBus("a", 16)
		b := n.InputBus("b", 16)
		sum := n.AddBus(a, b)
		sim, err := NewSimulator(n)
		if err != nil {
			return false
		}
		sim.SetBus(a, uint64(av))
		sim.SetBus(b, uint64(bv))
		sim.Eval()
		return sim.GetBus(sum) == uint64(av)+uint64(bv)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	n := New("stats")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	q := n.DFF(x)
	n.Output("q", q)
	s := n.Stats()
	if s.LUTs != 1 || s.FFs != 1 || s.Inputs != 2 || s.Outputs != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNames(t *testing.T) {
	n := New("names")
	a := n.Input("alpha")
	if n.NameOf(a) != "alpha" {
		t.Error("input name lost")
	}
	s := n.And(a, a, a) // 3-input uses LUT
	if !strings.HasPrefix(n.NameOf(s), "n") {
		t.Errorf("unnamed signal = %q", n.NameOf(s))
	}
	n.SetName(s, "result")
	if n.NameOf(s) != "result" {
		t.Error("SetName failed")
	}
	if n.Name() != "names" {
		t.Error("module name")
	}
}
