package rtl

import "testing"

func TestDepthSimpleChain(t *testing.T) {
	n := New("chain")
	a := n.Input("a")
	x := a
	for i := 0; i < 5; i++ {
		x = n.Not(x)
	}
	d, err := n.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("depth %d, want 5", d)
	}
	path, err := n.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Errorf("critical path length %d, want 5", len(path))
	}
}

func TestDepthResetsAtRegisters(t *testing.T) {
	n := New("pipe")
	a := n.Input("a")
	x := n.Not(n.Not(a)) // depth 2
	q := n.DFF(x)
	y := n.Not(q) // depth restarts: 1
	n.Output("y", y)
	d, err := n.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("depth %d, want 2 (register must cut the path)", d)
	}
}

func TestDepthEmptyNetlist(t *testing.T) {
	n := New("empty")
	d, err := n.Depth()
	if err != nil || d != 0 {
		t.Errorf("empty depth = %d, %v", d, err)
	}
	path, err := n.CriticalPath()
	if err != nil || path != nil {
		t.Errorf("empty critical path = %v, %v", path, err)
	}
}

func TestFMaxEstimate(t *testing.T) {
	f1 := FMaxEstimate(1)
	f10 := FMaxEstimate(10)
	if f1 <= f10 {
		t.Error("deeper logic must be slower")
	}
	// A ~4-level pipeline should land in the 200-400 MHz range on the
	// modeled part — consistent with the paper's 200 MHz operating point.
	f4 := FMaxEstimate(4)
	if f4 < 200e6 || f4 > 400e6 {
		t.Errorf("FMax(4) = %.0f MHz outside plausible range", f4/1e6)
	}
	if FMaxEstimate(0) != FMaxEstimate(1) {
		t.Error("depth floors at 1")
	}
}

// TestFabPComparatorDepth pins the comparator cell's depth at 2 (mux LUT +
// compare LUT) — the structure Fig. 5(a) shows.
func TestDepthOfWideGate(t *testing.T) {
	n := New("wide")
	in := n.InputBus("x", 36)
	n.AndWide(in)
	d, err := n.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 { // 36 -> 6 -> 1
		t.Errorf("36-wide AND depth %d, want 2", d)
	}
}
