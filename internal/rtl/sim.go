package rtl

import "fmt"

// Simulator evaluates a netlist cycle by cycle with two-phase semantics:
// combinational settle, then a synchronous clock edge. All flip-flops start
// at 0 (the FDRE reset state).
type Simulator struct {
	n       *Netlist
	order   []int32 // levelized LUT evaluation order
	values  []uint8 // current value of every signal
	nextDFF []uint8 // scratch buffer for simultaneous register update
	cycle   int
	vcd     *VCDWriter
}

// NewSimulator levelizes the netlist and returns a simulator positioned at
// cycle 0 with all state reset. It fails if the netlist has combinational
// loops or structural errors.
func NewSimulator(n *Netlist) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.levelize()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		n:       n,
		order:   order,
		values:  make([]uint8, n.numSigs),
		nextDFF: make([]uint8, len(n.dffs)),
	}
	s.values[One] = 1
	return s, nil
}

// AttachVCD streams waveform changes to w from this point on.
func (s *Simulator) AttachVCD(w *VCDWriter) { s.vcd = w }

// Set drives an input signal with a bit value for the current cycle.
func (s *Simulator) Set(sig Signal, v uint8) {
	s.values[sig] = v & 1
}

// SetBus drives an input bus (bit 0 first) with the low bits of v.
func (s *Simulator) SetBus(bus []Signal, v uint64) {
	for i, sig := range bus {
		s.Set(sig, uint8(v>>uint(i)))
	}
}

// Get returns the current settled value of a signal. Call Eval (or Step)
// after changing inputs before reading combinational outputs.
func (s *Simulator) Get(sig Signal) uint8 { return s.values[sig] }

// GetBus assembles a bus value (bit 0 first).
func (s *Simulator) GetBus(bus []Signal) uint64 {
	var v uint64
	for i, sig := range bus {
		v |= uint64(s.values[sig]) << uint(i)
	}
	return v
}

// Eval propagates the combinational logic until settled (one levelized
// pass, since the graph is acyclic).
func (s *Simulator) Eval() {
	for _, li := range s.order {
		l := &s.n.luts[li]
		idx := uint(s.values[l.in[0]]) |
			uint(s.values[l.in[1]])<<1 |
			uint(s.values[l.in[2]])<<2 |
			uint(s.values[l.in[3]])<<3 |
			uint(s.values[l.in[4]])<<4 |
			uint(s.values[l.in[5]])<<5
		s.values[l.out] = uint8(l.init >> idx & 1)
	}
}

// Step performs one full clock cycle: combinational settle, VCD sample,
// then the synchronous edge updating every enabled flip-flop.
func (s *Simulator) Step() {
	s.Eval()
	if s.vcd != nil {
		s.vcd.Sample(s)
	}
	// Capture D inputs before updating any Q, for correct simultaneous
	// register semantics (shift registers etc.).
	for i, d := range s.n.dffs {
		if s.values[d.en] == 1 {
			s.nextDFF[i] = s.values[d.d]
		} else {
			s.nextDFF[i] = s.values[d.q]
		}
	}
	for i, d := range s.n.dffs {
		s.values[d.q] = s.nextDFF[i]
	}
	s.cycle++
}

// Run steps the simulator n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Cycle returns the number of clock edges applied so far.
func (s *Simulator) Cycle() int { return s.cycle }

// Reset clears all flip-flops and signal values back to power-on state.
func (s *Simulator) Reset() {
	for i := range s.values {
		s.values[i] = 0
	}
	s.values[One] = 1
	s.cycle = 0
}

// String summarizes the simulator state.
func (s *Simulator) String() string {
	return fmt.Sprintf("sim(%s cycle=%d luts=%d ffs=%d)",
		s.n.name, s.cycle, len(s.n.luts), len(s.n.dffs))
}
