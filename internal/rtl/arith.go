package rtl

// Arithmetic building blocks assembled from LUT6 primitives. FabP's
// pop-counter adder stages and threshold comparison are built from these.

// HalfAdder returns (sum, carry) of two bits: 2 LUTs.
func (n *Netlist) HalfAdder(a, b Signal) (sum, carry Signal) {
	return n.Xor(a, b), n.And(a, b)
}

// FullAdder returns (sum, carry) of three bits: 2 LUTs (XOR3 + majority).
func (n *Netlist) FullAdder(a, b, cin Signal) (sum, carry Signal) {
	return n.Xor(a, b, cin), n.Maj3(a, b, cin)
}

// Maj3 returns the majority of three bits ((a&b)|(a&c)|(b&c)): 1 LUT.
func (n *Netlist) Maj3(a, b, c Signal) Signal {
	var init uint64
	for i := uint(0); i < 64; i++ {
		x, y, z := i&1, i>>1&1, i>>2&1
		if x+y+z >= 2 {
			init |= 1 << i
		}
	}
	return n.LUT6(init, a, b, c, Zero, Zero, Zero)
}

// AddBus returns the ripple-carry sum of two unsigned buses (bit 0 first).
// The result is one bit wider than the wider operand. Shorter operands are
// zero-extended.
func (n *Netlist) AddBus(a, b []Signal) []Signal {
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	get := func(bus []Signal, i int) Signal {
		if i < len(bus) {
			return bus[i]
		}
		return Zero
	}
	out := make([]Signal, width+1)
	carry := Zero
	for i := 0; i < width; i++ {
		ai, bi := get(a, i), get(b, i)
		switch {
		case carry == Zero:
			out[i], carry = n.HalfAdder(ai, bi)
		case bi == Zero:
			out[i], carry = n.HalfAdder(ai, carry)
		case ai == Zero:
			out[i], carry = n.HalfAdder(bi, carry)
		default:
			out[i], carry = n.FullAdder(ai, bi, carry)
		}
	}
	out[width] = carry
	return out
}

// AddBusMany sums several unsigned buses with a balanced tree of AddBus
// stages.
func (n *Netlist) AddBusMany(buses ...[]Signal) []Signal {
	switch len(buses) {
	case 0:
		return []Signal{Zero}
	case 1:
		return buses[0]
	}
	mid := len(buses) / 2
	return n.AddBus(n.AddBusMany(buses[:mid]...), n.AddBusMany(buses[mid:]...))
}

// CompareGEConst returns a signal that is 1 when the unsigned bus value is
// >= k, built as a logarithmic-depth (greater, equal) reduction tree over
// 3-bit chunks — the LUT analogue of a carry-tree comparator, keeping the
// threshold off the critical path (the paper moves it to DSPs; here it
// costs ~2 LUTs per 3 bits at log depth).
func (n *Netlist) CompareGEConst(bus []Signal, k uint) Signal {
	if k == 0 {
		return One
	}
	if len(bus) < 64 && k >= 1<<uint(len(bus)) {
		return Zero
	}
	type cmp struct{ gt, eq Signal }
	// Leaves: 3-bit chunks compared against the constant's chunk.
	var leaves []cmp
	for lo := 0; lo < len(bus); lo += 3 {
		hi := lo + 3
		if hi > len(bus) {
			hi = len(bus)
		}
		width := hi - lo
		kc := k >> uint(lo) & (1<<uint(width) - 1)
		var gtInit, eqInit uint64
		for v := uint(0); v < 1<<uint(width); v++ {
			if v > kc {
				gtInit |= 1 << v
			}
			if v == kc {
				eqInit |= 1 << v
			}
		}
		var in [6]Signal
		for i := range in {
			if lo+i < hi {
				in[i] = bus[lo+i]
			} else {
				in[i] = Zero
			}
		}
		leaves = append(leaves, cmp{
			gt: n.LUT6(gtInit, in[0], in[1], in[2], in[3], in[4], in[5]),
			eq: n.LUT6(eqInit, in[0], in[1], in[2], in[3], in[4], in[5]),
		})
	}
	// Reduce pairwise, least-significant chunks first in the slice; the
	// combiner treats the later element as more significant.
	for len(leaves) > 1 {
		var next []cmp
		for i := 0; i+1 < len(leaves); i += 2 {
			low, high := leaves[i], leaves[i+1]
			next = append(next, cmp{
				gt: n.Or(high.gt, n.And(high.eq, low.gt)),
				eq: n.And(high.eq, low.eq),
			})
		}
		if len(leaves)%2 == 1 {
			next = append(next, leaves[len(leaves)-1])
		}
		leaves = next
	}
	return n.Or(leaves[0].gt, leaves[0].eq)
}

// EqualConst returns a signal that is 1 when the bus equals constant k:
// inverts the 0-bits and ANDs in 6-input chunks.
func (n *Netlist) EqualConst(bus []Signal, k uint) Signal {
	terms := make([]Signal, len(bus))
	for i := range bus {
		if k>>uint(i)&1 == 1 {
			terms[i] = bus[i]
		} else {
			terms[i] = n.Not(bus[i])
		}
	}
	return n.AndWide(terms)
}

// AndWide ANDs arbitrarily many signals using a tree of 6-input LUTs.
func (n *Netlist) AndWide(sigs []Signal) Signal {
	return n.wideGate(sigs, n.And)
}

// OrWide ORs arbitrarily many signals using a tree of 6-input LUTs.
func (n *Netlist) OrWide(sigs []Signal) Signal {
	return n.wideGate(sigs, n.Or)
}

func (n *Netlist) wideGate(sigs []Signal, gate func(...Signal) Signal) Signal {
	switch len(sigs) {
	case 0:
		panic("rtl: wide gate needs at least one input")
	case 1:
		return sigs[0]
	}
	var next []Signal
	for i := 0; i < len(sigs); i += 6 {
		end := i + 6
		if end > len(sigs) {
			end = len(sigs)
		}
		next = append(next, gate(sigs[i:end]...))
	}
	return n.wideGate(next, gate)
}

// RegisterBus passes every bus bit through a DFF with a shared enable.
func (n *Netlist) RegisterBus(bus []Signal, en Signal) []Signal {
	out := make([]Signal, len(bus))
	for i, s := range bus {
		out[i] = n.DFFE(s, en)
	}
	return out
}
