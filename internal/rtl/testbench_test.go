package rtl

import (
	"strings"
	"testing"
)

func TestTraceRecorderAndTestbench(t *testing.T) {
	n := New("dutmod")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	q := n.DFF(x)
	n.Output("q", q)
	n.Output("comb", x)

	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(n)
	stim := [][2]uint8{{1, 1}, {1, 0}, {0, 1}, {1, 1}, {1, 1}}
	for _, s := range stim {
		sim.Set(a, s[0])
		sim.Set(b, s[1])
		rec.Capture(sim)
		sim.Step()
	}
	if rec.Cycles() != len(stim) {
		t.Fatalf("captured %d cycles", rec.Cycles())
	}

	var sb strings.Builder
	if err := rec.EmitTestbench(&sb); err != nil {
		t.Fatal(err)
	}
	tb := sb.String()
	for _, want := range []string{
		"module dutmod_tb;",
		"dutmod dut (.clk(clk), .a(a), .b(b), .q(q), .comb(comb));",
		"stim[0] = 2'b11;",
		"expect_o[0] = 2'b10;", // vector {comb,q}: comb=1, q=0 at cycle 0
		"TESTBENCH PASS",
		"$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q\n%s", want, tb)
		}
	}
	// Cycle 1: inputs a=1,b=0; q captured 1 at the edge after cycle 0,
	// comb=0 → {comb,q} = 01.
	if !strings.Contains(tb, "expect_o[1] = 2'b01;") {
		t.Errorf("cycle 1 expectation wrong\n%s", tb)
	}
}

func TestEmitTestbenchEmpty(t *testing.T) {
	n := New("e")
	rec := NewTraceRecorder(n)
	var sb strings.Builder
	if err := rec.EmitTestbench(&sb); err == nil {
		t.Error("empty trace must fail")
	}
}

func TestBitString(t *testing.T) {
	if bitString(nil) != "0" {
		t.Error("empty")
	}
	if got := bitString([]uint8{1, 0, 1}); got != "101" {
		t.Errorf("bitString = %s", got)
	}
}
