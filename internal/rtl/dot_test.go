package rtl

import (
	"strings"
	"testing"
)

func TestEmitDOT(t *testing.T) {
	n := New("viz")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	q := n.DFFE(x, a)
	n.Output("q", q)
	var sb strings.Builder
	if err := EmitDOT(&sb, n); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph viz {",
		"shape=diamond", // inputs
		"shape=box",     // LUT
		"LUT0",
		"shape=doublecircle", // FF
		"style=dashed label=en",
		"shape=house", // output
		"out_q",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
}
