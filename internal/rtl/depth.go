package rtl

// Depth returns the longest combinational path of the netlist, measured in
// LUT levels between sequential boundaries (inputs/FF outputs → FF inputs/
// outputs). Together with a per-level delay model this estimates the
// design's Fmax — the timing-analysis step of an FPGA flow.
func (n *Netlist) Depth() (int, error) {
	order, err := n.levelize()
	if err != nil {
		return 0, err
	}
	level := make(map[Signal]int) // LUT output -> its level
	maxDepth := 0
	for _, li := range order {
		l := n.luts[li]
		lv := 0
		for _, in := range l.in {
			if d, ok := level[in]; ok && d > lv {
				lv = d
			}
		}
		lv++
		level[l.out] = lv
		if lv > maxDepth {
			maxDepth = lv
		}
	}
	return maxDepth, nil
}

// CriticalPath returns the signals along one longest combinational path,
// ending at its deepest LUT output — useful when retiming a generated
// design.
func (n *Netlist) CriticalPath() ([]Signal, error) {
	order, err := n.levelize()
	if err != nil {
		return nil, err
	}
	level := make(map[Signal]int)
	pred := make(map[Signal]Signal)
	var deepest Signal
	maxDepth := -1
	for _, li := range order {
		l := n.luts[li]
		lv := 0
		var via Signal = -1
		for _, in := range l.in {
			if d, ok := level[in]; ok && d > lv {
				lv = d
				via = in
			}
		}
		lv++
		level[l.out] = lv
		if via >= 0 {
			pred[l.out] = via
		}
		if lv > maxDepth {
			maxDepth = lv
			deepest = l.out
		}
	}
	if maxDepth < 0 {
		return nil, nil
	}
	var path []Signal
	for s := deepest; ; {
		path = append([]Signal{s}, path...)
		p, ok := pred[s]
		if !ok {
			break
		}
		s = p
	}
	return path, nil
}

// FMaxEstimate converts a logic depth into a clock-frequency estimate
// using a simple per-level delay model: LUT6 delay + average net delay per
// level, plus clock-to-out and setup. Constants approximate a 28 nm
// Kintex-7 speed grade -2 (≈0.25 ns logic + 0.45 ns routing per level,
// 0.6 ns sequential overhead).
func FMaxEstimate(depth int) float64 {
	if depth < 1 {
		depth = 1
	}
	const (
		perLevelSec   = 0.70e-9
		sequentialSec = 0.60e-9
	)
	return 1 / (float64(depth)*perLevelSec + sequentialSec)
}
