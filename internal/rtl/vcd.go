package rtl

import (
	"fmt"
	"io"
	"strings"
)

// VCDWriter dumps value-change data for all named signals of a netlist, one
// sample per clock cycle, viewable in GTKWave and friends.
type VCDWriter struct {
	w       io.Writer
	n       *Netlist
	signals []Signal
	ids     map[Signal]string
	last    map[Signal]uint8
	started bool
	err     error
}

// NewVCDWriter prepares a VCD dump of every signal that has a debug name
// (ports always do; call Netlist.SetName to include internal nets).
func NewVCDWriter(w io.Writer, n *Netlist) *VCDWriter {
	v := &VCDWriter{
		w:    w,
		n:    n,
		ids:  map[Signal]string{},
		last: map[Signal]uint8{},
	}
	for _, s := range n.sortedSignals() {
		if s == Zero || s == One {
			continue
		}
		v.signals = append(v.signals, s)
		v.ids[s] = vcdID(len(v.ids))
	}
	return v
}

// vcdID converts an index into the printable-ASCII short identifiers VCD
// uses ("!", "\"", ..., "!!", ...).
func vcdID(i int) string {
	const lo, hi = 33, 127
	var b []byte
	for {
		b = append([]byte{byte(lo + i%(hi-lo))}, b...)
		i = i/(hi-lo) - 1
		if i < 0 {
			return string(b)
		}
	}
}

// header emits the declaration section on first use.
func (v *VCDWriter) header() {
	if v.started || v.err != nil {
		return
	}
	v.started = true
	var b strings.Builder
	fmt.Fprintf(&b, "$timescale 1ns $end\n$scope module %s $end\n", sanitizeIdent(v.n.name))
	for _, s := range v.signals {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", v.ids[s], sanitizeIdent(v.n.NameOf(s)))
	}
	fmt.Fprintf(&b, "$upscope $end\n$enddefinitions $end\n")
	_, v.err = io.WriteString(v.w, b.String())
}

// Sample records the current settled values at the simulator's cycle.
// Simulator.Step calls this automatically when a writer is attached.
func (v *VCDWriter) Sample(sim *Simulator) {
	v.header()
	if v.err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#%d\n", sim.Cycle())
	for _, s := range v.signals {
		val := sim.Get(s)
		if old, seen := v.last[s]; !seen || old != val {
			fmt.Fprintf(&b, "%d%s\n", val, v.ids[s])
			v.last[s] = val
		}
	}
	_, v.err = io.WriteString(v.w, b.String())
}

// Err returns the first write error encountered, if any.
func (v *VCDWriter) Err() error { return v.err }
