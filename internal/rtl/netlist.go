// Package rtl provides a structural netlist library for modeling FPGA
// designs at the primitive level: LUT6 cells with 64-bit INIT masks and
// D flip-flops with clock enables, the two resources FabP's datapath is
// built from. It includes a cycle-accurate two-phase simulator, a
// combinational-loop checker, a Verilog-2001 emitter targeting Xilinx
// primitives, a VCD waveform dumper and resource statistics.
//
// The paper implements FabP by directly instantiating LUT6 and FF
// primitives (§III-D); this package is the software equivalent of that
// design entry style, so generated netlists have exact LUT/FF counts.
package rtl

import (
	"fmt"
	"sort"
)

// Signal identifies a single-bit net in a netlist. The zero Signal is the
// constant-zero net; Signal 1 is constant one.
type Signal int32

// Constant nets present in every netlist.
const (
	Zero Signal = 0
	One  Signal = 1
)

// lut is one LUT6 instance: out = INIT[I5..I0].
type lut struct {
	in   [6]Signal
	init uint64
	out  Signal
}

// dff is one D flip-flop with optional clock enable (One = always enabled).
// Flip-flops reset to 0 (FDRE-style) when the netlist-level reset asserts.
type dff struct {
	d  Signal
	en Signal
	q  Signal
}

// Netlist is a synchronous single-clock design under construction. Create
// one with New, add cells with Input/LUT6/DFF and friends, then hand it to
// NewSimulator or EmitVerilog. Netlists are not safe for concurrent
// mutation.
type Netlist struct {
	name    string
	numSigs int32
	names   map[Signal]string
	inputs  []Signal
	outputs []Signal
	outName map[Signal]string
	luts    []lut
	dffs    []dff

	driver map[Signal]int32 // signal -> driving LUT index (or -1 for DFF/input)
}

// New creates an empty netlist named name (used as the Verilog module name).
func New(name string) *Netlist {
	n := &Netlist{
		name:    name,
		numSigs: 2, // Zero and One
		names:   map[Signal]string{Zero: "const0", One: "const1"},
		outName: map[Signal]string{},
		driver:  map[Signal]int32{},
	}
	return n
}

// Name returns the module name.
func (n *Netlist) Name() string { return n.name }

// newSignal allocates a fresh net.
func (n *Netlist) newSignal() Signal {
	s := Signal(n.numSigs)
	n.numSigs++
	return s
}

// Input declares a top-level input port and returns its net.
func (n *Netlist) Input(name string) Signal {
	s := n.newSignal()
	n.names[s] = name
	n.inputs = append(n.inputs, s)
	return s
}

// InputBus declares width input ports named name[0..width-1], bit 0 first.
func (n *Netlist) InputBus(name string, width int) []Signal {
	bus := make([]Signal, width)
	for i := range bus {
		bus[i] = n.Input(fmt.Sprintf("%s_%d", name, i))
	}
	return bus
}

// Output marks sig as a top-level output port with the given name.
func (n *Netlist) Output(name string, sig Signal) {
	n.outputs = append(n.outputs, sig)
	n.outName[sig] = name
	if _, named := n.names[sig]; !named {
		n.names[sig] = name
	}
}

// OutputBus marks bus as output ports named name[0..], bit 0 first.
func (n *Netlist) OutputBus(name string, bus []Signal) {
	for i, s := range bus {
		n.Output(fmt.Sprintf("%s_%d", name, i), s)
	}
}

// LUT6 instantiates a 6-input lookup table with the given INIT mask.
// Unused inputs should be tied to Zero. The INIT bit addressed by
// in5<<5|...|in0 becomes the output.
func (n *Netlist) LUT6(init uint64, in0, in1, in2, in3, in4, in5 Signal) Signal {
	out := n.newSignal()
	n.driver[out] = int32(len(n.luts))
	n.luts = append(n.luts, lut{
		in:   [6]Signal{in0, in1, in2, in3, in4, in5},
		init: init,
		out:  out,
	})
	return out
}

// DFF instantiates a D flip-flop (always enabled) and returns its Q output.
func (n *Netlist) DFF(d Signal) Signal { return n.DFFE(d, One) }

// DFFE instantiates a D flip-flop with clock enable en.
func (n *Netlist) DFFE(d, en Signal) Signal {
	q := n.newSignal()
	n.dffs = append(n.dffs, dff{d: d, en: en, q: q})
	return q
}

// FeedbackDFF instantiates a flip-flop whose D input is wired later —
// needed for state machines whose next-state logic reads their own Q.
// The returned setter must be called exactly once before simulation or
// emission (Validate rejects undriven Ds).
func (n *Netlist) FeedbackDFF(en Signal) (q Signal, setD func(Signal)) {
	idx := len(n.dffs)
	q = n.DFFE(Zero, en)
	n.dffs[idx].d = -1 // poison until wired
	return q, func(d Signal) { n.dffs[idx].d = d }
}

// SetName attaches a debug/waveform name to a signal.
func (n *Netlist) SetName(s Signal, name string) { n.names[s] = name }

// NameOf returns the debug name of a signal, or a generated one.
func (n *Netlist) NameOf(s Signal) string {
	if name, ok := n.names[s]; ok {
		return name
	}
	return fmt.Sprintf("n%d", s)
}

// Derived logic helpers. Each occupies one LUT6; the netlist-level resource
// count therefore upper-bounds a real technology mapper, matching the
// paper's hand-instantiated style where every function is one LUT.

// Not returns !a.
func (n *Netlist) Not(a Signal) Signal {
	return n.LUT6(notInitMask, a, Zero, Zero, Zero, Zero, Zero)
}

// And returns the conjunction of up to 6 signals.
func (n *Netlist) And(sigs ...Signal) Signal { return n.nary(sigs, andInit) }

// Or returns the disjunction of up to 6 signals.
func (n *Netlist) Or(sigs ...Signal) Signal { return n.nary(sigs, orInit) }

// Xor returns the parity of up to 6 signals.
func (n *Netlist) Xor(sigs ...Signal) Signal { return n.nary(sigs, xorInit) }

// Mux2 returns sel ? b : a.
func (n *Netlist) Mux2(sel, a, b Signal) Signal {
	return n.LUT6(mux2InitMask, a, b, sel, Zero, Zero, Zero)
}

// Gate truth tables, computed once at init so they stay consistent with the
// simulator's INIT-indexing convention.
var (
	notInitMask  uint64
	mux2InitMask uint64
)

func init() {
	// NOT: output = !I0 regardless of other inputs.
	for i := uint(0); i < 64; i++ {
		if i&1 == 0 {
			notInitMask |= 1 << i
		}
	}
	// MUX2: I2 ? I1 : I0.
	for i := uint(0); i < 64; i++ {
		i0, i1, i2 := i&1, i>>1&1, i>>2&1
		v := i0
		if i2 == 1 {
			v = i1
		}
		if v == 1 {
			mux2InitMask |= 1 << i
		}
	}
}

// gate truth-table builders for n-ary gates over the low k inputs with the
// rest tied to Zero (so only indices with high bits 0 matter, but we fill
// the whole table consistently).
func andInit(k int) uint64 {
	var m uint64
	for i := uint(0); i < 64; i++ {
		if i&(1<<uint(k)-1) == 1<<uint(k)-1 {
			m |= 1 << i
		}
	}
	return m
}

func orInit(k int) uint64 {
	var m uint64
	for i := uint(0); i < 64; i++ {
		if i&(1<<uint(k)-1) != 0 {
			m |= 1 << i
		}
	}
	return m
}

func xorInit(k int) uint64 {
	var m uint64
	for i := uint(0); i < 64; i++ {
		v := uint(0)
		for b := 0; b < k; b++ {
			v ^= i >> uint(b) & 1
		}
		if v == 1 {
			m |= 1 << i
		}
	}
	return m
}

func (n *Netlist) nary(sigs []Signal, initFor func(int) uint64) Signal {
	switch len(sigs) {
	case 0:
		panic("rtl: gate needs at least one input")
	case 1:
		return sigs[0]
	}
	if len(sigs) > 6 {
		panic(fmt.Sprintf("rtl: gate with %d inputs exceeds LUT6", len(sigs)))
	}
	var in [6]Signal
	for i := range in {
		if i < len(sigs) {
			in[i] = sigs[i]
		} else {
			in[i] = Zero
		}
	}
	return n.LUT6(initFor(len(sigs)), in[0], in[1], in[2], in[3], in[4], in[5])
}

// Stats summarizes netlist resource usage.
type Stats struct {
	LUTs    int
	FFs     int
	Inputs  int
	Outputs int
	Signals int
}

// Stats returns the resource usage of the netlist.
func (n *Netlist) Stats() Stats {
	return Stats{
		LUTs:    len(n.luts),
		FFs:     len(n.dffs),
		Inputs:  len(n.inputs),
		Outputs: len(n.outputs),
		Signals: int(n.numSigs),
	}
}

// Validate checks structural invariants: every LUT input is a known signal,
// outputs are driven, and the combinational graph is acyclic. It returns
// the LUT evaluation order as a side effect of the cycle check.
func (n *Netlist) Validate() error {
	_, err := n.levelize()
	if err != nil {
		return err
	}
	driven := map[Signal]bool{Zero: true, One: true}
	for _, s := range n.inputs {
		driven[s] = true
	}
	for _, l := range n.luts {
		driven[l.out] = true
	}
	for _, d := range n.dffs {
		driven[d.q] = true
	}
	for _, l := range n.luts {
		for _, in := range l.in {
			if !driven[in] {
				return fmt.Errorf("rtl: LUT input %s is undriven", n.NameOf(in))
			}
		}
	}
	for _, d := range n.dffs {
		if !driven[d.d] || !driven[d.en] {
			return fmt.Errorf("rtl: DFF %s has undriven input", n.NameOf(d.q))
		}
	}
	for _, s := range n.outputs {
		if !driven[s] {
			return fmt.Errorf("rtl: output %s is undriven", n.outName[s])
		}
	}
	return nil
}

// levelize orders the LUTs so each evaluates after its combinational
// predecessors, detecting combinational loops.
func (n *Netlist) levelize() ([]int32, error) {
	order := make([]int32, 0, len(n.luts))
	state := make([]uint8, len(n.luts)) // 0 unvisited, 1 visiting, 2 done

	var visit func(i int32) error
	visit = func(i int32) error {
		switch state[i] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("rtl: combinational loop through LUT driving %s", n.NameOf(n.luts[i].out))
		}
		state[i] = 1
		for _, in := range n.luts[i].in {
			if j, ok := n.driver[in]; ok {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	// Visit in a deterministic order.
	for i := int32(0); i < int32(len(n.luts)); i++ {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sortedSignals returns all signals with debug names in id order (used by
// the VCD dumper).
func (n *Netlist) sortedSignals() []Signal {
	out := make([]Signal, 0, len(n.names))
	for s := range n.names {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
