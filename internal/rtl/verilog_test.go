package rtl

import (
	"strings"
	"testing"
)

func buildExample() (*Netlist, Signal, Signal) {
	n := New("example-mod")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	q := n.DFF(x)
	n.Output("q", q)
	return n, a, b
}

func TestEmitVerilogStructure(t *testing.T) {
	n, _, _ := buildExample()
	var sb strings.Builder
	if err := EmitVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module example_mod (",
		"input wire clk",
		"input wire a",
		"input wire b",
		"output wire q",
		"LUT6 #(.INIT(64'h",
		"FDRE #(.INIT(1'b0))",
		".C(clk)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q\n%s", want, v)
		}
	}
}

func TestEmitVerilogRejectsInvalid(t *testing.T) {
	n := New("bad")
	ghost := n.newSignal()
	n.Output("o", ghost)
	var sb strings.Builder
	if err := EmitVerilog(&sb, n); err == nil {
		t.Error("invalid netlist must not emit")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"ok_name":  "ok_name",
		"has-dash": "has_dash",
		"9lead":    "_9lead",
		"":         "_",
		"a b[0]":   "a_b_0_",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVCDOutput(t *testing.T) {
	n, a, b := buildExample()
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	vcd := NewVCDWriter(&sb, n)
	sim.AttachVCD(vcd)
	sim.Set(a, 1)
	sim.Set(b, 1)
	sim.Run(2)
	sim.Set(b, 0)
	sim.Run(2)
	if vcd.Err() != nil {
		t.Fatal(vcd.Err())
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$var wire 1", "$enddefinitions", "#0", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vcd missing %q\n%s", want, out)
		}
	}
	// Value changes must only be recorded when the value changes: the
	// literal for input a (constant 1 after cycle 0) appears once.
	if strings.Count(out, "$var") < 3 {
		t.Error("expected at least 3 declared signals")
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID(%d) = %q duplicate or empty", i, id)
		}
		seen[id] = true
		for _, c := range []byte(id) {
			if c < 33 || c >= 127 {
				t.Fatalf("vcdID(%d) contains non-printable %d", i, c)
			}
		}
	}
}
