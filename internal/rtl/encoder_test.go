package rtl

import (
	"math/rand"
	"testing"
)

func TestPriorityEncoderExhaustive(t *testing.T) {
	for _, width := range []int{1, 2, 5, 8} {
		n := New("pe")
		in := n.InputBus("x", width)
		idx, valid := n.PriorityEncoder(in)
		sim, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 1<<uint(width); v++ {
			sim.SetBus(in, v)
			sim.Eval()
			if v == 0 {
				if sim.Get(valid) != 0 {
					t.Errorf("width %d: valid asserted for zero", width)
				}
				continue
			}
			if sim.Get(valid) != 1 {
				t.Errorf("width %d v=%b: valid not asserted", width, v)
			}
			want := uint64(0)
			for v>>want&1 == 0 {
				want++
			}
			if got := sim.GetBus(idx); got != want {
				t.Errorf("width %d v=%b: index %d, want %d", width, v, got, want)
			}
		}
	}
}

func TestPriorityEncoderPanics(t *testing.T) {
	n := New("pe")
	mustPanic(t, func() { n.PriorityEncoder(nil) })
}

func TestOneHotMux(t *testing.T) {
	n := New("ohm")
	sel := n.InputBus("sel", 3)
	data := [][]Signal{
		ConstBus(0xA, 4),
		ConstBus(0x5, 4),
		ConstBus(0xF, 4),
	}
	out := n.OneHotMux(sel, data)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{0xA, 0x5, 0xF} {
		sim.SetBus(sel, 1<<uint(i))
		sim.Eval()
		if got := sim.GetBus(out); got != want {
			t.Errorf("sel %d: got %#x want %#x", i, got, want)
		}
	}
	sim.SetBus(sel, 0)
	sim.Eval()
	if got := sim.GetBus(out); got != 0 {
		t.Errorf("no select must give 0, got %#x", got)
	}
	mustPanic(t, func() { n.OneHotMux(nil, nil) })
	mustPanic(t, func() { n.OneHotMux(sel, data[:2]) })
}

func TestOneHotMuxUnequalWidths(t *testing.T) {
	n := New("ohm2")
	sel := n.InputBus("sel", 2)
	data := [][]Signal{ConstBus(0x3, 4), ConstBus(0x1, 2)} // second narrower
	out := n.OneHotMux(sel, data)
	sim, _ := NewSimulator(n)
	sim.SetBus(sel, 2)
	sim.Eval()
	if got := sim.GetBus(out); got != 1 {
		t.Errorf("narrow bus zero-extends: got %#x", got)
	}
}

func TestConstBus(t *testing.T) {
	bus := ConstBus(0b101, 3)
	if bus[0] != One || bus[1] != Zero || bus[2] != One {
		t.Errorf("ConstBus wrong: %v", bus)
	}
}

func TestCounter(t *testing.T) {
	n := New("ctr")
	en := n.Input("en")
	cnt := n.Counter(4, en)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.Set(en, 1)
	for i := 1; i <= 20; i++ {
		sim.Step()
		sim.Eval()
		if got := sim.GetBus(cnt); got != uint64(i%16) {
			t.Fatalf("after %d steps: %d", i, got)
		}
	}
	sim.Set(en, 0)
	sim.Step()
	sim.Eval()
	if got := sim.GetBus(cnt); got != 20%16 {
		t.Errorf("disabled counter moved: %d", got)
	}
	mustPanic(t, func() { n.Counter(0, en) })
}

// TestFIFOBehaviour drives a 4-deep FIFO through pushes, pops and
// simultaneous push+pop, comparing against a software queue.
func TestFIFOBehaviour(t *testing.T) {
	n := New("fifo")
	pushData := n.InputBus("pd", 8)
	push := n.Input("push")
	pop := n.Input("pop")
	f := n.BuildFIFO(8, 4, pushData, push, pop)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}

	var model []uint64
	rng := rand.New(rand.NewSource(1))
	next := uint64(1)
	for step := 0; step < 400; step++ {
		doPush := rng.Intn(2) == 1
		doPop := rng.Intn(3) == 0

		sim.Eval()
		// Check outputs against the model BEFORE the edge.
		if len(model) > 0 {
			if sim.Get(f.PopValid) != 1 {
				t.Fatalf("step %d: PopValid low with %d entries", step, len(model))
			}
			if got := sim.GetBus(f.PopData); got != model[0] {
				t.Fatalf("step %d: head %d, want %d", step, got, model[0])
			}
		} else if sim.Get(f.PopValid) != 0 {
			t.Fatalf("step %d: PopValid high when empty", step)
		}
		wantFull := len(model) == 4
		if got := sim.Get(f.Full) == 1; got != wantFull {
			t.Fatalf("step %d: full=%v want %v", step, got, wantFull)
		}

		// Drive this cycle's operations.
		val := next
		sim.SetBus(pushData, val)
		sim.Set(push, b2u(doPush))
		sim.Set(pop, b2u(doPop && len(model) > 0))
		sim.Step()

		// Update the model with the same acceptance rules.
		popped := doPop && len(model) > 0
		if popped {
			model = model[1:]
		}
		accepted := doPush && (len(model) < 4)
		if accepted {
			model = append(model, val)
			next++
			if next == 256 {
				next = 1
			}
		}
	}
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func TestFIFOPanics(t *testing.T) {
	n := New("fp")
	mustPanic(t, func() { n.BuildFIFO(0, 4, nil, Zero, Zero) })
	mustPanic(t, func() { n.BuildFIFO(4, 4, make([]Signal, 3), Zero, Zero) })
}
