package rtl

import (
	"fmt"
	"io"
)

// EmitPrimitiveLibrary writes behavioral Verilog models of the two
// primitives generated netlists instantiate (LUT6 and FDRE), so the module
// + testbench simulate under any plain Verilog simulator without Xilinx
// unisim libraries. Synthesis flows targeting real parts should omit this
// file and let the vendor primitives bind instead.
func EmitPrimitiveLibrary(w io.Writer) error {
	const lib = `// Behavioral models of the Xilinx primitives used by generated FabP
// netlists. For simulation only — omit when synthesizing for a real part.

module LUT6 #(parameter [63:0] INIT = 64'h0) (
  output O,
  input I0, I1, I2, I3, I4, I5
);
  assign O = INIT[{I5, I4, I3, I2, I1, I0}];
endmodule

module FDRE #(parameter [0:0] INIT = 1'b0) (
  output reg Q,
  input C,
  input CE,
  input R,
  input D
);
  initial Q = INIT;
  always @(posedge C) begin
    if (R)
      Q <= 1'b0;
    else if (CE)
      Q <= D;
  end
endmodule
`
	_, err := fmt.Fprint(w, lib)
	return err
}
