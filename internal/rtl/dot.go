package rtl

import (
	"fmt"
	"io"
	"strings"
)

// EmitDOT writes the netlist as a Graphviz digraph: inputs as diamonds,
// LUTs as boxes (labelled with their INIT), flip-flops as double circles,
// outputs as house shapes. Intended for inspecting small generated blocks
// (a full accelerator renders, but is unreadable).
func EmitDOT(w io.Writer, n *Netlist) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n  node [fontsize=10];\n", sanitizeIdent(n.name))

	node := func(s Signal) string { return fmt.Sprintf("n%d", s) }

	fmt.Fprintf(&b, "  n%d [label=\"0\" shape=plaintext];\n", Zero)
	fmt.Fprintf(&b, "  n%d [label=\"1\" shape=plaintext];\n", One)
	for _, s := range n.inputs {
		fmt.Fprintf(&b, "  %s [label=\"%s\" shape=diamond];\n", node(s), sanitizeIdent(n.NameOf(s)))
	}
	for i, l := range n.luts {
		fmt.Fprintf(&b, "  %s [label=\"LUT%d\\n%016X\" shape=box];\n", node(l.out), i, l.init)
		seen := map[Signal]bool{}
		for _, in := range l.in {
			if in == Zero || seen[in] {
				continue // skip tied-off and duplicate edges for readability
			}
			seen[in] = true
			fmt.Fprintf(&b, "  %s -> %s;\n", node(in), node(l.out))
		}
	}
	for i, d := range n.dffs {
		fmt.Fprintf(&b, "  %s [label=\"FF%d\" shape=doublecircle];\n", node(d.q), i)
		fmt.Fprintf(&b, "  %s -> %s;\n", node(d.d), node(d.q))
		if d.en != One {
			fmt.Fprintf(&b, "  %s -> %s [style=dashed label=en];\n", node(d.en), node(d.q))
		}
	}
	for _, s := range n.outputs {
		name := sanitizeIdent(n.outName[s])
		fmt.Fprintf(&b, "  out_%s [label=\"%s\" shape=house];\n", name, name)
		fmt.Fprintf(&b, "  %s -> out_%s;\n", node(s), name)
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
