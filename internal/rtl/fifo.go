package rtl

import "fmt"

// FIFO is a register-file FIFO built from flip-flops (FabP's write-back
// buffer stages hit records this way before the AXI write burst; §III-C).
// It exposes the classic ready/valid interface as netlist signals.
type FIFO struct {
	// PushData is the input bus the caller must drive; Push enables a
	// write this cycle.
	PushData []Signal
	Push     Signal
	// PopData carries the oldest entry; PopValid is 1 when the FIFO is
	// non-empty; Pop consumes the oldest entry at the next edge.
	PopData  []Signal
	PopValid Signal
	// Full is 1 when a push this cycle would overflow.
	Full Signal
}

// BuildFIFO creates a depth-entry FIFO of width-bit words inside the
// netlist. Depth must be a power of two. The caller receives the port
// signals; PushData/Push/Pop are inputs created by the caller and passed
// in, the rest are produced.
//
// Implementation: a shift-register FIFO — entries shift toward slot 0 on
// pop; pushes land in the first free slot. This costs depth×width FFs plus
// occupancy flags, appropriate for the shallow staging buffers FabP uses.
func (n *Netlist) BuildFIFO(width, depth int, pushData []Signal, push, pop Signal) *FIFO {
	if width <= 0 || depth <= 0 {
		panic(fmt.Sprintf("rtl: fifo %dx%d invalid", width, depth))
	}
	if len(pushData) != width {
		panic("rtl: fifo push bus width mismatch")
	}

	// valid[i]: slot i holds data. Slots compact toward 0. Next-state
	// logic reads the current state, so use feedback registers.
	validQ := make([]Signal, depth)
	validSet := make([]func(Signal), depth)
	dataQ := make([][]Signal, depth)
	dataSet := make([][]func(Signal), depth)
	for i := 0; i < depth; i++ {
		validQ[i], validSet[i] = n.FeedbackDFF(One)
		dataQ[i] = make([]Signal, width)
		dataSet[i] = make([]func(Signal), width)
		for b := 0; b < width; b++ {
			dataQ[i][b], dataSet[i][b] = n.FeedbackDFF(One)
		}
	}

	full := n.AndWide(validQ)
	// pushNow: accepted push (not full, or popping frees a slot this cycle).
	pushOK := n.Or(n.Not(full), pop)
	pushNow := n.And(push, pushOK)

	// After a pop, everything shifts down one slot. The push lands at the
	// first slot that will be free after the (optional) shift.
	// nextValidCount logic per slot:
	//   shifted[i] = pop ? valid[i+1] : valid[i]
	//   shiftedData[i] = pop ? data[i+1] : data[i]
	//   pushHere[i] = pushNow & !shifted[i] & shifted[i-1..0] all valid
	//   (first free slot; slots below are all occupied after shift)
	shifted := make([]Signal, depth)
	shiftedData := make([][]Signal, depth)
	for i := 0; i < depth; i++ {
		if i+1 < depth {
			shifted[i] = n.Mux2(pop, validQ[i], validQ[i+1])
		} else {
			shifted[i] = n.Mux2(pop, validQ[i], Zero)
		}
		shiftedData[i] = make([]Signal, width)
		for b := 0; b < width; b++ {
			if i+1 < depth {
				shiftedData[i][b] = n.Mux2(pop, dataQ[i][b], dataQ[i+1][b])
			} else {
				shiftedData[i][b] = n.Mux2(pop, dataQ[i][b], Zero)
			}
		}
	}
	allBelowFull := One
	for i := 0; i < depth; i++ {
		pushHere := n.And(pushNow, n.Not(shifted[i]), allBelowFull)
		allBelowFull = n.And(allBelowFull, shifted[i])
		validSet[i](n.Or(shifted[i], pushHere))
		for b := 0; b < width; b++ {
			dataSet[i][b](n.Mux2(pushHere, shiftedData[i][b], pushData[b]))
		}
	}

	return &FIFO{
		PushData: pushData,
		Push:     push,
		PopData:  dataQ[0],
		PopValid: validQ[0],
		Full:     full,
	}
}
