package rtl

import "fmt"

// Combinational encoder blocks used by FabP's write-back stage: the hit
// vector of a beat (one bit per alignment instance) is scanned by a
// priority encoder to emit hit positions one per cycle into the WB FIFO.

// PriorityEncoder returns (index bus, valid) for the lowest set bit of in.
// The index bus has ceil(log2(len(in))) bits; valid is the OR of all
// inputs. Cost: O(n) LUTs via a prefix "no lower bit set" chain.
func (n *Netlist) PriorityEncoder(in []Signal) (index []Signal, valid Signal) {
	index, valid, _ = n.PriorityEncoderGrants(in)
	return index, valid
}

// PriorityEncoderGrants is PriorityEncoder that also exposes the one-hot
// grant vector (grants[i] = 1 iff i is the selected index), which
// arbitration-style consumers use to clear the serviced bit.
func (n *Netlist) PriorityEncoderGrants(in []Signal) (index []Signal, valid Signal, grants []Signal) {
	if len(in) == 0 {
		panic("rtl: priority encoder needs at least one input")
	}
	width := 1
	for 1<<uint(width) < len(in) {
		width++
	}
	// grant[i] = in[i] & none of in[0..i-1]; computed with a running
	// "none below" chain.
	grants = make([]Signal, len(in))
	noneBelow := One
	for i, s := range in {
		if i == 0 {
			grants[i] = s
		} else {
			grants[i] = n.And(s, noneBelow)
		}
		noneBelow = n.And(noneBelow, n.Not(s))
	}
	// index bit b = OR of grants whose position has bit b set.
	index = make([]Signal, width)
	for b := 0; b < width; b++ {
		var terms []Signal
		for i, g := range grants {
			if i>>uint(b)&1 == 1 {
				terms = append(terms, g)
			}
		}
		if len(terms) == 0 {
			index[b] = Zero
		} else {
			index[b] = n.OrWide(terms)
		}
	}
	return index, n.OrWide(in), grants
}

// OneHotMux selects data[i] where sel[i] is the (assumed one-hot) select
// vector; each data element is a bus of equal width.
func (n *Netlist) OneHotMux(sel []Signal, data [][]Signal) []Signal {
	if len(sel) != len(data) || len(sel) == 0 {
		panic(fmt.Sprintf("rtl: one-hot mux mismatch: %d selects, %d data", len(sel), len(data)))
	}
	width := len(data[0])
	out := make([]Signal, width)
	for b := 0; b < width; b++ {
		terms := make([]Signal, len(sel))
		for i := range sel {
			if b >= len(data[i]) {
				terms[i] = Zero
				continue
			}
			terms[i] = n.And(sel[i], data[i][b])
		}
		out[b] = n.OrWide(terms)
	}
	return out
}

// ConstBus returns a bus of constant signals carrying value v in width
// bits.
func ConstBus(v uint64, width int) []Signal {
	bus := make([]Signal, width)
	for i := range bus {
		if v>>uint(i)&1 == 1 {
			bus[i] = One
		} else {
			bus[i] = Zero
		}
	}
	return bus
}

// Counter builds a free-running width-bit counter with enable; returns the
// count bus. Cost: width LUTs (increment) + width FFs.
func (n *Netlist) Counter(width int, en Signal) []Signal {
	if width <= 0 {
		panic("rtl: counter width must be positive")
	}
	// The increment reads the counter's own Q, so allocate feedback FFs
	// first and wire their D inputs afterwards.
	qs := make([]Signal, width)
	setD := make([]func(Signal), width)
	for i := 0; i < width; i++ {
		qs[i], setD[i] = n.FeedbackDFF(en)
	}
	carry := One
	for i := 0; i < width; i++ {
		setD[i](n.Xor(qs[i], carry))
		if i+1 < width {
			carry = n.And(qs[i], carry)
		}
	}
	return qs
}
