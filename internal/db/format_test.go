package db

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"fabp/internal/bitpar"
)

// writeGood serializes the test database in v2 form and returns the bytes.
func writeGood(t *testing.T, d *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameContent checks geometry, records and payload match.
func sameContent(t *testing.T, got, want *Database) {
	t.Helper()
	if got.NumRecords() != want.NumRecords() || got.Len() != want.Len() {
		t.Fatalf("geometry: got %d/%d, want %d/%d",
			got.NumRecords(), got.Len(), want.NumRecords(), want.Len())
	}
	for i := 0; i < want.NumRecords(); i++ {
		if got.Record(i) != want.Record(i) {
			t.Fatalf("record %d: %+v != %+v", i, got.Record(i), want.Record(i))
		}
	}
	if got.Seq().String() != want.Seq().String() {
		t.Fatal("payload differs")
	}
	if got.Digest() != want.Digest() {
		t.Fatal("digest differs for identical content")
	}
}

func TestV2RoundTripCarriesPlanes(t *testing.T) {
	d := buildTestDB(t)
	data := writeGood(t, d)

	before := bitpar.PackCount()
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n := bitpar.PackCount() - before; n != 0 {
		t.Fatalf("v2 load ran %d packs, want 0", n)
	}
	sameContent(t, got, d)
	if got.PlaneSectionError() != nil {
		t.Fatalf("plane section error on clean file: %v", got.PlaneSectionError())
	}
	pp := got.PersistedPlanes()
	if pp == nil {
		t.Fatal("v2 load carried no persisted planes")
	}
	if !pp.Equal(d.EnsurePlanes()) {
		t.Fatal("persisted planes differ from freshly packed planes")
	}
	// EnsurePlanes on the loaded DB must reuse them, not pack.
	before = bitpar.PackCount()
	if got.EnsurePlanes() != pp {
		t.Fatal("EnsurePlanes ignored persisted planes")
	}
	if n := bitpar.PackCount() - before; n != 0 {
		t.Fatalf("EnsurePlanes after warm load ran %d packs, want 0", n)
	}
}

func TestV1CompatRoundTrip(t *testing.T) {
	d := buildTestDB(t)
	var buf bytes.Buffer
	n, err := d.WriteV1To(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteV1To reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameContent(t, got, d)
	if got.PersistedPlanes() != nil {
		t.Fatal("v1 file cannot carry planes")
	}
	if got.PlaneSectionError() != nil {
		t.Fatal("v1 load must not report a plane section error")
	}
}

// TestReadTruncatedAtEveryOffset cuts a valid v2 file at every byte
// boundary: no truncation may panic, and each must yield either a typed
// corruption error or (when only plane-section bytes are missing) a
// degraded-but-correct load.
func TestReadTruncatedAtEveryOffset(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	for cut := 0; cut < len(good); cut++ {
		got, err := Read(bytes.NewReader(good[:cut]))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: error not typed as ErrCorrupt: %v", cut, err)
			}
			continue
		}
		// A successful load of a truncated file is only legitimate as the
		// plane-section fallback: content intact, planes degraded.
		sameContent(t, got, d)
		if got.PlaneSectionError() == nil {
			t.Fatalf("cut=%d: truncated file loaded with no plane section error", cut)
		}
		if got.PersistedPlanes() != nil {
			t.Fatalf("cut=%d: truncated plane section must not yield planes", cut)
		}
	}
}

// TestCorruptPlaneSectionFallsBack flips one byte in the plane section:
// the load succeeds, reports the rejection, and EnsurePlanes packs.
func TestCorruptPlaneSectionFallsBack(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	// The plane section's last byte is part of its CRC.
	mangled := append([]byte(nil), good...)
	mangled[len(mangled)-1] ^= 0xFF

	got, err := Read(bytes.NewReader(mangled))
	if err != nil {
		t.Fatalf("corrupt plane section must not fail the load: %v", err)
	}
	sameContent(t, got, d)
	perr := got.PlaneSectionError()
	if perr == nil {
		t.Fatal("no plane section error reported")
	}
	if !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("plane section error not typed: %v", perr)
	}
	var ce *CorruptError
	if !errors.As(perr, &ce) || ce.Section != "planes" {
		t.Fatalf("plane section error misattributed: %v", perr)
	}
	if got.PersistedPlanes() != nil {
		t.Fatal("rejected plane section must not expose planes")
	}
	// The fallback packs in-process and still matches.
	before := bitpar.PackCount()
	if !got.EnsurePlanes().Equal(d.EnsurePlanes()) {
		t.Fatal("fallback-packed planes differ")
	}
	if n := bitpar.PackCount() - before; n == 0 {
		t.Fatal("fallback path must pack")
	}
}

// TestUnsupportedPlaneVersionFallsBack bumps the plane wire version: same
// graceful degradation as corruption.
func TestUnsupportedPlaneVersionFallsBack(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	// Plane section starts right after the payload section; locate it via
	// Inspect's byte accounting.
	info, err := Inspect(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := int64(8 + 4 + 8 + 32 + 1)
	off := headerBytes + info.IndexBytes + info.PayloadBytes
	mangled := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(mangled[off:], bitpar.PlanesWireVersion+1)

	got, err := Read(bytes.NewReader(mangled))
	if err != nil {
		t.Fatalf("unsupported plane version must not fail the load: %v", err)
	}
	if got.PlaneSectionError() == nil || !strings.Contains(got.PlaneSectionError().Error(), "version") {
		t.Fatalf("want version error, got %v", got.PlaneSectionError())
	}
}

func TestCorruptPayloadAndDigestRejected(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	info, err := Inspect(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := int64(8 + 4 + 8 + 32 + 1)

	// Flip a payload byte: its CRC catches it before the digest is even
	// consulted.
	mangled := append([]byte(nil), good...)
	mangled[headerBytes+info.IndexBytes] ^= 0xFF
	_, err = Read(bytes.NewReader(mangled))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "payload" {
		t.Fatalf("payload corruption: got %v", err)
	}

	// Flip a digest byte in the header: sections are self-consistent but
	// the header lies about the content.
	mangled = append([]byte(nil), good...)
	mangled[8+4+8] ^= 0xFF
	_, err = Read(bytes.NewReader(mangled))
	if !errors.As(err, &ce) || ce.Section != "digest" {
		t.Fatalf("digest corruption: got %v", err)
	}

	// Unknown header flags are a hard error (unknowable trailing layout).
	mangled = append([]byte(nil), good...)
	mangled[headerBytes-1] |= 0x80
	_, err = Read(bytes.NewReader(mangled))
	if !errors.As(err, &ce) || ce.Section != "header" {
		t.Fatalf("unknown flags: got %v", err)
	}
}

func TestInspect(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	info, err := Inspect(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Records != d.NumRecords() || info.TotalNt != d.Len() {
		t.Fatalf("v2 info: %+v", info)
	}
	if info.Digest != d.Digest() {
		t.Fatal("inspect digest mismatch")
	}
	if !info.HasPlanes || info.PlaneErr != nil {
		t.Fatalf("v2 plane info: %+v", info)
	}
	headerBytes := int64(8 + 4 + 8 + 32 + 1)
	if total := headerBytes + info.IndexBytes + info.PayloadBytes + info.PlaneBytes; total != int64(len(good)) {
		t.Fatalf("section bytes sum to %d, file is %d", total, len(good))
	}

	var legacy bytes.Buffer
	if _, err := d.WriteV1To(&legacy); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.HasPlanes || info.Digest != d.Digest() {
		t.Fatalf("v1 info: %+v", info)
	}
}

// TestSaveAfterLoadPreservesPlanes: load a v2 file, re-save it, and the
// new file's planes come from the persisted copy (no repack).
func TestSaveAfterLoadPreservesPlanes(t *testing.T) {
	d := buildTestDB(t)
	good := writeGood(t, d)
	got, err := Read(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	before := bitpar.PackCount()
	resaved := writeGood(t, got)
	if n := bitpar.PackCount() - before; n != 0 {
		t.Fatalf("re-save after warm load ran %d packs, want 0", n)
	}
	if !bytes.Equal(resaved, good) {
		t.Fatal("re-saved file differs from original")
	}
}
