// Package db implements the on-disk reference database FabP's host keeps:
// multiple FASTA records concatenated into one 2-bit packed stream (the
// exact DRAM image the accelerator scans) plus a record index, so hits can
// be attributed back to sequences and hits spanning record boundaries can
// be rejected. The format is a single self-contained binary file.
package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"fabp/internal/bio"
	"fabp/internal/core"
)

// magic identifies the file format; the trailing digit is the version.
var magic = [8]byte{'F', 'A', 'B', 'P', 'D', 'B', '0', '1'}

// Record is one database sequence's index entry.
type Record struct {
	// ID and Description come from the FASTA header.
	ID          string
	Description string
	// Start is the record's offset in the concatenated element stream;
	// Length its element count.
	Start, Length int
}

// Database is an indexed, packed reference ready for scanning.
type Database struct {
	records []Record
	packed  *bio.PackedNucSeq
}

// Build concatenates nucleotide FASTA records into a database.
func Build(records []*bio.FastaRecord) (*Database, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("db: no records")
	}
	var seq bio.NucSeq
	idx := make([]Record, 0, len(records))
	for i, rec := range records {
		s, err := rec.Nuc()
		if err != nil {
			return nil, fmt.Errorf("db: record %d (%s): %w", i, rec.ID, err)
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("db: record %d (%s) is empty", i, rec.ID)
		}
		idx = append(idx, Record{
			ID: rec.ID, Description: rec.Description,
			Start: len(seq), Length: len(s),
		})
		seq = append(seq, s...)
	}
	return &Database{records: idx, packed: bio.Pack(seq)}, nil
}

// FromSeq builds a single-record database from a raw sequence.
func FromSeq(id string, seq bio.NucSeq) (*Database, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("db: empty sequence")
	}
	return &Database{
		records: []Record{{ID: id, Start: 0, Length: len(seq)}},
		packed:  bio.Pack(seq),
	}, nil
}

// Len returns the total element count.
func (d *Database) Len() int { return d.packed.Len() }

// NumRecords returns the record count.
func (d *Database) NumRecords() int { return len(d.records) }

// Record returns index entry i.
func (d *Database) Record(i int) Record { return d.records[i] }

// Seq unpacks the full concatenated sequence (the accelerator's scan
// input).
func (d *Database) Seq() bio.NucSeq { return d.packed.Unpack() }

// Packed exposes the DRAM image.
func (d *Database) Packed() *bio.PackedNucSeq { return d.packed }

// Locate maps a global element position to (record index, in-record
// offset); ok is false for out-of-range positions.
func (d *Database) Locate(pos int) (recIdx, offset int, ok bool) {
	if pos < 0 || pos >= d.Len() {
		return 0, 0, false
	}
	i := sort.Search(len(d.records), func(i int) bool {
		return d.records[i].Start+d.records[i].Length > pos
	})
	return i, pos - d.records[i].Start, true
}

// RecordHit is a hit attributed to a database record.
type RecordHit struct {
	// RecordIndex/RecordID identify the sequence.
	RecordIndex int
	RecordID    string
	// Offset is the window start within the record.
	Offset int
	// Score is the alignment score.
	Score int
}

// Attribute maps engine hits (global positions) onto records, dropping any
// window that spans a record boundary — those alignments are artifacts of
// concatenation, exactly what a host-side post-filter removes.
func (d *Database) Attribute(hits []core.Hit, queryElems int) []RecordHit {
	var out []RecordHit
	for _, h := range hits {
		idx, off, ok := d.Locate(h.Pos)
		if !ok {
			continue
		}
		if off+queryElems > d.records[idx].Length {
			continue // spans into the next record
		}
		out = append(out, RecordHit{
			RecordIndex: idx,
			RecordID:    d.records[idx].ID,
			Offset:      off,
			Score:       h.Score,
		})
	}
	return out
}

// WriteTo serializes the database (io.WriterTo).
func (d *Database) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(len(d.records))); err != nil {
		return n, err
	}
	if err := write(uint64(d.packed.Len())); err != nil {
		return n, err
	}
	for _, r := range d.records {
		if err := writeString(bw, &n, r.ID); err != nil {
			return n, err
		}
		if err := writeString(bw, &n, r.Description); err != nil {
			return n, err
		}
		if err := write(uint64(r.Start)); err != nil {
			return n, err
		}
		if err := write(uint64(r.Length)); err != nil {
			return n, err
		}
	}
	for _, word := range d.packed.Words() {
		if err := write(word); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

func writeString(w io.Writer, n *int64, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("db: string exceeds 64 KiB")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	*n += 2
	m, err := io.WriteString(w, s)
	*n += int64(m)
	return err
}

// Read deserializes a database written by WriteTo.
func Read(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("db: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("db: bad magic %q", m[:])
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	var total uint64
	if err := binary.Read(br, binary.LittleEndian, &total); err != nil {
		return nil, err
	}
	if count == 0 || total == 0 {
		return nil, fmt.Errorf("db: empty database file")
	}
	const maxReasonable = 1 << 40
	if total > maxReasonable || count > 1<<28 {
		return nil, fmt.Errorf("db: implausible header (count=%d total=%d)", count, total)
	}
	records := make([]Record, count)
	for i := range records {
		id, err := readString(br)
		if err != nil {
			return nil, err
		}
		desc, err := readString(br)
		if err != nil {
			return nil, err
		}
		var start, length uint64
		if err := binary.Read(br, binary.LittleEndian, &start); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		records[i] = Record{ID: id, Description: desc, Start: int(start), Length: int(length)}
	}
	// Structural validation: records must tile [0, total).
	pos := 0
	for i, r := range records {
		if r.Start != pos || r.Length <= 0 {
			return nil, fmt.Errorf("db: record %d index corrupt", i)
		}
		pos += r.Length
	}
	if uint64(pos) != total {
		return nil, fmt.Errorf("db: index covers %d elements, header says %d", pos, total)
	}

	words := make([]uint64, (total+31)/32)
	packed := bio.NewPackedNucSeq(int(total))
	if err := binary.Read(br, binary.LittleEndian, words); err != nil {
		return nil, fmt.Errorf("db: reading payload: %w", err)
	}
	copy(packed.Words(), words)
	return &Database{records: records, packed: packed}, nil
}

func readString(r io.Reader) (string, error) {
	var l uint16
	if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
		return "", err
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
