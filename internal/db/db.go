// Package db implements the on-disk reference database FabP's host keeps:
// multiple FASTA records concatenated into one 2-bit packed stream (the
// exact DRAM image the accelerator scans) plus a record index, so hits can
// be attributed back to sequences and hits spanning record boundaries can
// be rejected. The format is a single self-contained binary file; the
// current version (v2, see format.go) additionally carries the packed
// bit-planes, a content digest and per-section checksums so a reload is a
// warm start that never re-packs.
package db

import (
	"fmt"
	"sort"
	"sync"

	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/core"
)

// Record is one database sequence's index entry.
type Record struct {
	// ID and Description come from the FASTA header.
	ID          string
	Description string
	// Start is the record's offset in the concatenated element stream;
	// Length its element count.
	Start, Length int
}

// Database is an indexed, packed reference ready for scanning.
type Database struct {
	records []Record
	packed  *bio.PackedNucSeq
	// digest identifies the packed content (see Digest); computed at
	// construction so it can key caches without re-hashing.
	digest Digest

	// planesMu guards the memoized bit-planes: either deserialized from a
	// v2 file's plane section (planesPersisted) or packed once by
	// EnsurePlanes. planeErr records why a declared plane section was
	// rejected — the load still succeeds, packing happens in-process.
	planesMu        sync.Mutex
	planes          *bitpar.Planes
	planesPersisted bool
	planeErr        error
}

// newDatabase wires up a database over validated records and payload.
func newDatabase(records []Record, packed *bio.PackedNucSeq) *Database {
	return &Database{
		records: records,
		packed:  packed,
		digest:  computeDigest(packed.Len(), packed.Words()),
	}
}

// Build concatenates nucleotide FASTA records into a database.
func Build(records []*bio.FastaRecord) (*Database, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("db: no records")
	}
	var seq bio.NucSeq
	idx := make([]Record, 0, len(records))
	for i, rec := range records {
		s, err := rec.Nuc()
		if err != nil {
			return nil, fmt.Errorf("db: record %d (%s): %w", i, rec.ID, err)
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("db: record %d (%s) is empty", i, rec.ID)
		}
		idx = append(idx, Record{
			ID: rec.ID, Description: rec.Description,
			Start: len(seq), Length: len(s),
		})
		seq = append(seq, s...)
	}
	return newDatabase(idx, bio.Pack(seq)), nil
}

// FromSeq builds a single-record database from a raw sequence.
func FromSeq(id string, seq bio.NucSeq) (*Database, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("db: empty sequence")
	}
	return newDatabase(
		[]Record{{ID: id, Start: 0, Length: len(seq)}},
		bio.Pack(seq),
	), nil
}

// Len returns the total element count.
func (d *Database) Len() int { return d.packed.Len() }

// NumRecords returns the record count.
func (d *Database) NumRecords() int { return len(d.records) }

// Record returns index entry i.
func (d *Database) Record(i int) Record { return d.records[i] }

// Seq unpacks the full concatenated sequence (the accelerator's scan
// input).
func (d *Database) Seq() bio.NucSeq { return d.packed.Unpack() }

// Packed exposes the DRAM image.
func (d *Database) Packed() *bio.PackedNucSeq { return d.packed }

// Digest returns the SHA-256 content digest of the packed payload (length
// plus words). Two databases with identical concatenated sequences share
// a digest regardless of how they were built or loaded — it is the
// identity the shared plane cache keys on.
func (d *Database) Digest() Digest { return d.digest }

// EnsurePlanes returns the database's packed bit-planes: the planes
// deserialized from a v2 file when present, otherwise packed on first use
// and memoized, so save-after-load and repeated scans share one packing.
func (d *Database) EnsurePlanes() *bitpar.Planes {
	d.planesMu.Lock()
	defer d.planesMu.Unlock()
	if d.planes == nil {
		d.planes = bitpar.PackReference(d.packed.Unpack())
	}
	return d.planes
}

// PersistedPlanes returns the bit-planes carried by the file this
// database was loaded from, or nil when the file had none (v1 files, or
// a plane section rejected by its checksum — see PlaneSectionError).
func (d *Database) PersistedPlanes() *bitpar.Planes {
	d.planesMu.Lock()
	defer d.planesMu.Unlock()
	if !d.planesPersisted {
		return nil
	}
	return d.planes
}

// DropPlanes discards the memoized bit-planes (persisted or packed), so
// the next EnsurePlanes packs from scratch — the cold-start control for
// benchmarks and cache-pressure tests. The plane section error, which
// describes the file rather than the memoization, survives.
func (d *Database) DropPlanes() {
	d.planesMu.Lock()
	d.planes = nil
	d.planesPersisted = false
	d.planesMu.Unlock()
}

// PlaneSectionError reports why a declared plane section was rejected at
// load time (checksum mismatch, truncation, unsupported version), or nil
// when the planes loaded cleanly or the file never carried any. A
// non-nil value means scans will fall back to in-process packing.
func (d *Database) PlaneSectionError() error { return d.planeErr }

// Locate maps a global element position to (record index, in-record
// offset); ok is false for out-of-range positions.
func (d *Database) Locate(pos int) (recIdx, offset int, ok bool) {
	if pos < 0 || pos >= d.Len() {
		return 0, 0, false
	}
	i := sort.Search(len(d.records), func(i int) bool {
		return d.records[i].Start+d.records[i].Length > pos
	})
	return i, pos - d.records[i].Start, true
}

// RecordHit is a hit attributed to a database record.
type RecordHit struct {
	// RecordIndex/RecordID identify the sequence.
	RecordIndex int
	RecordID    string
	// Offset is the window start within the record.
	Offset int
	// Score is the alignment score.
	Score int
}

// Attribute maps engine hits (global positions) onto records, dropping any
// window that spans a record boundary — those alignments are artifacts of
// concatenation, exactly what a host-side post-filter removes.
func (d *Database) Attribute(hits []core.Hit, queryElems int) []RecordHit {
	var out []RecordHit
	for _, h := range hits {
		idx, off, ok := d.Locate(h.Pos)
		if !ok {
			continue
		}
		if off+queryElems > d.records[idx].Length {
			continue // spans into the next record
		}
		out = append(out, RecordHit{
			RecordIndex: idx,
			RecordID:    d.records[idx].ID,
			Offset:      off,
			Score:       h.Score,
		})
	}
	return out
}
