package db

import (
	"bytes"
	"strings"
	"testing"

	"fabp/internal/bio"
)

// FuzzRead: arbitrary bytes must never panic or allocate absurdly; valid
// files must round-trip.
func FuzzRead(f *testing.F) {
	// Seed with a valid database and a few corruptions.
	fr := bio.NewFastaReader(strings.NewReader(">a\nACGT\n>b\nGGCC\n"))
	recs, _ := fr.ReadAll()
	d, _ := Build(recs)
	var buf bytes.Buffer
	d.WriteTo(&buf)
	good := buf.Bytes()
	var legacy bytes.Buffer
	d.WriteV1To(&legacy)
	f.Add(good)
	f.Add(good[:10])
	f.Add(legacy.Bytes())
	f.Add([]byte("FABPDB01garbage"))
	f.Add([]byte("FABPDB02garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be internally consistent.
		if got.Len() <= 0 || got.NumRecords() <= 0 {
			t.Fatal("parsed database with empty geometry")
		}
		pos := 0
		for i := 0; i < got.NumRecords(); i++ {
			r := got.Record(i)
			if r.Start != pos || r.Length <= 0 {
				t.Fatal("inconsistent index escaped validation")
			}
			pos += r.Length
		}
		if pos != got.Len() {
			t.Fatal("index does not tile the payload")
		}
		// And must re-serialize cleanly.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
	})
}
