package db

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/isa"
)

func buildTestDB(t *testing.T) *Database {
	t.Helper()
	fr := bio.NewFastaReader(strings.NewReader(
		">chr1 first\nACGUACGUACGU\n>chr2\nGGGGCCCC\n>chr3 third\nAUAUAUAUAUAUAUAU\n"))
	recs, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildBasics(t *testing.T) {
	d := buildTestDB(t)
	if d.NumRecords() != 3 || d.Len() != 12+8+16 {
		t.Fatalf("geometry: %d records, %d elements", d.NumRecords(), d.Len())
	}
	if r := d.Record(1); r.ID != "chr2" || r.Start != 12 || r.Length != 8 {
		t.Errorf("record 1: %+v", r)
	}
	if got := d.Seq()[:4].String(); got != "ACGU" {
		t.Errorf("seq start %q", got)
	}
	if d.Packed().Len() != d.Len() {
		t.Error("packed view")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("no records must fail")
	}
	if _, err := Build([]*bio.FastaRecord{{ID: "x", Data: "MKW"}}); err == nil {
		t.Error("protein record must fail")
	}
	if _, err := Build([]*bio.FastaRecord{{ID: "x", Data: ""}}); err == nil {
		t.Error("empty record must fail")
	}
	if _, err := FromSeq("x", nil); err == nil {
		t.Error("empty FromSeq must fail")
	}
}

func TestLocate(t *testing.T) {
	d := buildTestDB(t)
	cases := []struct {
		pos, recIdx, offset int
		ok                  bool
	}{
		{0, 0, 0, true},
		{11, 0, 11, true},
		{12, 1, 0, true},
		{19, 1, 7, true},
		{20, 2, 0, true},
		{35, 2, 15, true},
		{36, 0, 0, false},
		{-1, 0, 0, false},
	}
	for _, tc := range cases {
		idx, off, ok := d.Locate(tc.pos)
		if ok != tc.ok || (ok && (idx != tc.recIdx || off != tc.offset)) {
			t.Errorf("Locate(%d) = (%d,%d,%v), want (%d,%d,%v)",
				tc.pos, idx, off, ok, tc.recIdx, tc.offset, tc.ok)
		}
	}
}

func TestAttributeDropsBoundarySpans(t *testing.T) {
	d := buildTestDB(t)
	hits := []core.Hit{
		{Pos: 0, Score: 5},  // fully inside chr1
		{Pos: 10, Score: 6}, // starts in chr1, spans into chr2 (queryElems 6)
		{Pos: 14, Score: 7}, // inside chr2
		{Pos: 30, Score: 8}, // inside chr3
		{Pos: 99, Score: 9}, // out of range
	}
	out := d.Attribute(hits, 6)
	if len(out) != 3 {
		t.Fatalf("attributed %d hits, want 3: %+v", len(out), out)
	}
	if out[0].RecordID != "chr1" || out[0].Offset != 0 {
		t.Errorf("hit 0: %+v", out[0])
	}
	if out[1].RecordID != "chr2" || out[1].Offset != 2 || out[1].Score != 7 {
		t.Errorf("hit 1: %+v", out[1])
	}
	if out[2].RecordID != "chr3" || out[2].Offset != 10 {
		t.Errorf("hit 2: %+v", out[2])
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	d := buildTestDB(t)
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != d.NumRecords() || got.Len() != d.Len() {
		t.Fatal("geometry lost")
	}
	for i := 0; i < d.NumRecords(); i++ {
		if got.Record(i) != d.Record(i) {
			t.Errorf("record %d: %+v != %+v", i, got.Record(i), d.Record(i))
		}
	}
	if got.Seq().String() != d.Seq().String() {
		t.Error("sequence payload lost")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	d := buildTestDB(t)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTFABPDB"), good[9:]...),
		// Truncation inside the payload (well before the plane trailer,
		// whose loss degrades gracefully instead of failing).
		"truncated payload": good[:len(good)/2],
		"short index":       good[:20],
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s must fail", name)
		}
	}
	// Flip a byte inside the record index: the section CRC catches it.
	mangled := append([]byte(nil), good...)
	// First index byte is right after magic(8)+count(4)+total(8)+digest(32)+flags(1)=53.
	mangled[53] ^= 0xFF
	if _, err := Read(bytes.NewReader(mangled)); err == nil {
		t.Error("corrupt index must fail")
	}
}

// TestEndToEndSearchThroughDatabase: build, serialize, reload, scan with
// the engine, attribute hits.
func TestEndToEndSearchThroughDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prot := bio.RandomProtSeq(rng, 30)
	for i := range prot {
		if prot[i] == bio.Ser {
			prot[i] = bio.Ala
		}
	}
	gene := bio.EncodeGene(rng, prot)
	rec2 := bio.RandomNucSeq(rng, 5000)
	copy(rec2[1234:], gene)

	recs := []*bio.FastaRecord{
		{ID: "decoy", Data: bio.RandomNucSeq(rng, 3000).String()},
		{ID: "target", Data: rec2.String()},
	}
	d, err := Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	prog := isa.MustEncodeProtein(prot)
	e, err := core.NewEngine(prog, len(prog))
	if err != nil {
		t.Fatal(err)
	}
	hits := e.Align(d2.Seq())
	attributed := d2.Attribute(hits, len(prog))
	found := false
	for _, h := range attributed {
		if h.RecordID == "target" && h.Offset == 1234 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted gene not attributed: %+v", attributed)
	}
}
