package db

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/core"
	"fabp/internal/isa"
)

// nucLetters renders a sequence for a synthetic FASTA record body.
func nucLetters(s bio.NucSeq) string { return s.String() }

// buildRandomDB assembles a database from explicit record lengths.
func buildRandomDB(t *testing.T, rng *rand.Rand, lengths []int) (*Database, []bio.NucSeq) {
	t.Helper()
	recs := make([]*bio.FastaRecord, len(lengths))
	seqs := make([]bio.NucSeq, len(lengths))
	for i, n := range lengths {
		seqs[i] = bio.RandomNucSeq(rng, n)
		recs[i] = &bio.FastaRecord{ID: "r" + string(rune('a'+i%26)) + "x", Data: nucLetters(seqs[i])}
	}
	d, err := Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	return d, seqs
}

// attributeGolden computes what Attribute must return: align each record's
// own sequence independently, which by construction can never produce a
// window spanning a record boundary.
func attributeGolden(d *Database, seqs []bio.NucSeq, e *core.Engine, m int) []RecordHit {
	var want []RecordHit
	for i, seq := range seqs {
		for _, h := range e.Align(seq) {
			want = append(want, RecordHit{
				RecordIndex: i,
				RecordID:    d.Record(i).ID,
				Offset:      h.Pos,
				Score:       h.Score,
			})
		}
	}
	return want
}

// TestAttributePropertyPerRecord is the property test of the boundary
// filter: attributing a full concatenated scan must equal aligning every
// record independently — Attribute drops exactly the windows that span
// record boundaries, no more, no fewer. Covers single-nucleotide records
// and queries longer than whole records.
func TestAttributePropertyPerRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		p := bio.RandomProtSeq(rng, 1+rng.Intn(6))
		prog := isa.MustEncodeProtein(p)
		m := len(prog)

		numRecs := 1 + rng.Intn(6)
		lengths := make([]int, numRecs)
		for i := range lengths {
			switch rng.Intn(4) {
			case 0:
				lengths[i] = 1 // single-nucleotide record
			case 1:
				lengths[i] = 1 + rng.Intn(m) // shorter than the query
			default:
				lengths[i] = m + rng.Intn(200)
			}
		}
		d, seqs := buildRandomDB(t, rng, lengths)

		threshold := rng.Intn(m + 1)
		e, err := core.NewEngine(prog, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got := d.Attribute(e.Align(d.Seq()), m)
		want := attributeGolden(d, seqs, e, m)

		if len(got) != len(want) {
			t.Fatalf("trial %d (m=%d thr=%d lens=%v): %d attributed hits, want %d",
				trial, m, threshold, lengths, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d hit %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestAttributeQueryLongerThanEveryRecord: a query longer than any record
// must attribute zero hits even at threshold 0 (every window spans a
// boundary or falls off the end).
func TestAttributeQueryLongerThanEveryRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := bio.RandomProtSeq(rng, 4) // 12 elements
	prog := isa.MustEncodeProtein(p)
	d, _ := buildRandomDB(t, rng, []int{1, 5, 11, 3})
	e, err := core.NewEngine(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := e.Align(d.Seq())
	if len(raw) == 0 {
		t.Fatal("concatenated scan should produce windows (total length 20 >= 12)")
	}
	if got := d.Attribute(raw, len(prog)); len(got) != 0 {
		t.Fatalf("attributed %d hits across boundaries: %+v", len(got), got)
	}
}

// FuzzAttributeBoundaries drives the same property from fuzzed record
// geometry: bytes become record lengths, the fuzzer hunts for a split
// where the boundary filter and the per-record golden model disagree.
func FuzzAttributeBoundaries(f *testing.F) {
	f.Add([]byte{1, 7, 30}, uint8(2))
	f.Add([]byte{1, 1, 1, 1}, uint8(1))
	f.Add([]byte{60, 1, 60}, uint8(5))
	f.Fuzz(func(t *testing.T, lens []byte, residues uint8) {
		if len(lens) == 0 || len(lens) > 8 {
			return
		}
		r := 1 + int(residues)%6
		rng := rand.New(rand.NewSource(7))
		prog := isa.MustEncodeProtein(bio.RandomProtSeq(rng, r))
		lengths := make([]int, len(lens))
		for i, b := range lens {
			lengths[i] = 1 + int(b)%120
		}
		d, seqs := buildRandomDB(t, rng, lengths)
		e, err := core.NewEngine(prog, len(prog)/2)
		if err != nil {
			t.Fatal(err)
		}
		got := d.Attribute(e.Align(d.Seq()), len(prog))
		want := attributeGolden(d, seqs, e, len(prog))
		if len(got) != len(want) {
			t.Fatalf("lens=%v m=%d: %d hits vs golden %d", lengths, len(prog), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("hit %d: %+v vs golden %+v", i, got[i], want[i])
			}
		}
	})
}
