// format.go is the database file format. Two versions exist:
//
//	v1 ("FABPDB01"): header, record index, packed payload. No checksums;
//	    every load pays a full bit-plane packing before the first
//	    bit-parallel scan.
//	v2 ("FABPDB02"): the same records and payload plus a SHA-256 content
//	    digest in the header, a CRC32 per section, and a serialized
//	    bit-plane section — the preprocessing-once discipline of the
//	    paper's card-resident database: a v2 load installs the persisted
//	    planes and performs zero PackReference work.
//
// Corruption semantics: the header, index and payload sections are
// load-bearing — any mismatch is a *CorruptError (errors.Is ErrCorrupt)
// and the load fails. The plane section is an optimization — a checksum
// mismatch, truncation or unsupported version there degrades the load to
// in-process packing (PlaneSectionError reports why) instead of failing.
package db

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"fabp/internal/bio"
	"fabp/internal/bitpar"
	"fabp/internal/faultinject"
)

// File magics; the trailing digits are the format version.
var (
	magicV1 = [8]byte{'F', 'A', 'B', 'P', 'D', 'B', '0', '1'}
	magicV2 = [8]byte{'F', 'A', 'B', 'P', 'D', 'B', '0', '2'}
)

// flagPlanes marks a v2 file that carries a bit-plane section.
const flagPlanes uint8 = 1 << 0

// Plausibility bounds on header-declared sizes, so a corrupt header
// cannot demand absurd allocations (reads are additionally chunked, so
// memory grows only with bytes actually present).
const (
	maxReasonableTotal   = 1 << 40
	maxReasonableRecords = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// Digest is the SHA-256 content digest of a database's packed payload —
// the cache identity of the sequence content.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// computeDigest hashes the packed payload: the element count followed by
// the packed words, all little-endian.
func computeDigest(total int, words []uint64) Digest {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(total))
	h.Write(b[:])
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], w)
		h.Write(b[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// ErrCorrupt is the sentinel every structural load failure matches via
// errors.Is; CorruptError carries the section detail.
var ErrCorrupt = errors.New("corrupt database file")

// CorruptError describes a structurally invalid database file: which
// section failed and why. It matches ErrCorrupt under errors.Is.
type CorruptError struct {
	// Section is "header", "index", "payload", "digest" or "planes".
	Section string
	Err     error
}

func (e *CorruptError) Error() string { return fmt.Sprintf("db: %s section: %v", e.Section, e.Err) }
func (e *CorruptError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// corruptf builds a CorruptError for section from a format string.
func corruptf(section, format string, args ...any) error {
	return &CorruptError{Section: section, Err: fmt.Errorf(format, args...)}
}

// FileInfo is a database file's on-disk shape, as Inspect reports it.
type FileInfo struct {
	// Version is the format version (1 or 2).
	Version int
	// Records / TotalNt are the header-declared geometry.
	Records int
	TotalNt int
	// Digest is the payload content digest (computed for v1 files, which
	// do not store one).
	Digest Digest
	// HasPlanes is true when a plane section was present AND valid.
	// PlaneErr is non-nil when a declared plane section was rejected.
	HasPlanes bool
	PlaneErr  error
	// Section sizes in bytes, each including its trailing CRC32 where the
	// format has one. PlaneBytes counts the bytes actually consumed.
	IndexBytes, PayloadBytes, PlaneBytes int64
}

// sectionWriter counts bytes and maintains a running CRC32 over them.
type sectionWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (sw *sectionWriter) Write(p []byte) (int, error) {
	m, err := sw.w.Write(p)
	sw.crc = crc32.Update(sw.crc, crcTable, p[:m])
	sw.n += int64(m)
	return m, err
}

// sectionReader counts bytes and maintains a running CRC32 over them.
type sectionReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (sr *sectionReader) Read(p []byte) (int, error) {
	m, err := sr.r.Read(p)
	sr.crc = crc32.Update(sr.crc, crcTable, p[:m])
	sr.n += int64(m)
	return m, err
}

// WriteTo serializes the database in the current (v2) format, bit-planes
// included (io.WriterTo). Packing happens here if the planes are not
// already resident on the Database — the preprocessing-once cost every
// later load skips.
func (d *Database) WriteTo(w io.Writer) (int64, error) {
	return d.writeV2(w, d.EnsurePlanes())
}

// WriteV1To serializes in the legacy v1 layout — no checksums, no plane
// section — for rollback to readers that predate v2.
func (d *Database) WriteV1To(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magicV1); err != nil {
		return n, err
	}
	if err := write(uint32(len(d.records))); err != nil {
		return n, err
	}
	if err := write(uint64(d.packed.Len())); err != nil {
		return n, err
	}
	sw := &sectionWriter{w: bw}
	if err := writeRecords(sw, d.records); err != nil {
		return n + sw.n, err
	}
	if err := writeWords(sw, d.packed.Words()); err != nil {
		return n + sw.n, err
	}
	return n + sw.n, bw.Flush()
}

// writeV2 lays out the v2 file: header (magic, geometry, digest, flags),
// then index, payload and plane sections, each followed by its CRC32.
func (d *Database) writeV2(w io.Writer, planes *bitpar.Planes) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magicV2); err != nil {
		return n, err
	}
	if err := write(uint32(len(d.records))); err != nil {
		return n, err
	}
	if err := write(uint64(d.packed.Len())); err != nil {
		return n, err
	}
	if err := write(d.digest); err != nil {
		return n, err
	}
	flags := uint8(0)
	if planes != nil {
		flags |= flagPlanes
	}
	if err := write(flags); err != nil {
		return n, err
	}

	// Index section.
	sw := &sectionWriter{w: bw}
	if err := writeRecords(sw, d.records); err != nil {
		return n + sw.n, err
	}
	n += sw.n
	if err := write(sw.crc); err != nil {
		return n, err
	}

	// Payload section.
	sw = &sectionWriter{w: bw}
	if err := writeWords(sw, d.packed.Words()); err != nil {
		return n + sw.n, err
	}
	n += sw.n
	if err := write(sw.crc); err != nil {
		return n, err
	}

	// Plane section.
	if planes != nil {
		sw = &sectionWriter{w: bw}
		if err := binary.Write(sw, binary.LittleEndian, uint32(bitpar.PlanesWireVersion)); err != nil {
			return n + sw.n, err
		}
		if _, err := planes.WriteTo(sw); err != nil {
			return n + sw.n, err
		}
		n += sw.n
		if err := write(sw.crc); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// writeRecords serializes the record index.
func writeRecords(w io.Writer, records []Record) error {
	for _, r := range records {
		if err := writeString(w, r.ID); err != nil {
			return err
		}
		if err := writeString(w, r.Description); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(r.Start)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(r.Length)); err != nil {
			return err
		}
	}
	return nil
}

// writeWords streams packed payload words in bounded chunks (binary.Write
// buffers its whole argument, so chunking caps the temporary).
func writeWords(w io.Writer, words []uint64) error {
	const chunk = 1 << 16
	for len(words) > 0 {
		n := len(words)
		if n > chunk {
			n = chunk
		}
		if err := binary.Write(w, binary.LittleEndian, words[:n]); err != nil {
			return err
		}
		words = words[n:]
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("db: string exceeds 64 KiB")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// Read deserializes a database written by WriteTo (v2) or WriteV1To (v1).
// Structural failures return a *CorruptError (never a panic); a v2 file
// whose plane section alone is damaged still loads, with the damage
// reported by PlaneSectionError and scans falling back to packing.
func Read(r io.Reader) (*Database, error) {
	d, _, err := readFile(r)
	return d, err
}

// Inspect fully validates a database file — magic, geometry, section
// checksums, content digest, plane section — and reports its shape. The
// returned FileInfo is valid only when err is nil; a rejected plane
// section surfaces as FileInfo.PlaneErr, not as err (the file still
// loads).
func Inspect(r io.Reader) (FileInfo, error) {
	_, info, err := readFile(r)
	return info, err
}

func readFile(r io.Reader) (*Database, FileInfo, error) {
	// The database-load fault hook: an injected failure surfaces as a
	// *CorruptError wrapping the transient cause, the same shape a real
	// torn read produces, so callers exercise their degrade/retry paths
	// (retry.Retryable sees through the wrap to the transient error).
	if err := faultinject.Check(context.Background(), faultinject.SiteDBSection, 0); err != nil {
		return nil, FileInfo{}, &CorruptError{Section: "injected", Err: err}
	}
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, FileInfo{}, corruptf("header", "reading magic: %v", err)
	}
	switch m {
	case magicV1:
		return readV1(br)
	case magicV2:
		return readV2(br)
	}
	return nil, FileInfo{}, corruptf("header", "bad magic %q", m[:])
}

// readHeaderGeometry reads and bounds-checks the record count and element
// total shared by both format versions.
func readHeaderGeometry(r io.Reader) (count uint32, total uint64, err error) {
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return 0, 0, corruptf("header", "reading record count: %v", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &total); err != nil {
		return 0, 0, corruptf("header", "reading element total: %v", err)
	}
	if count == 0 || total == 0 {
		return 0, 0, corruptf("header", "empty database file")
	}
	if total > maxReasonableTotal || count > maxReasonableRecords {
		return 0, 0, corruptf("header", "implausible header (count=%d total=%d)", count, total)
	}
	return count, total, nil
}

// readRecords deserializes count index entries.
func readRecords(r io.Reader, count uint32) ([]Record, error) {
	records := make([]Record, count)
	for i := range records {
		id, err := readString(r)
		if err != nil {
			return nil, err
		}
		desc, err := readString(r)
		if err != nil {
			return nil, err
		}
		var start, length uint64
		if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		records[i] = Record{ID: id, Description: desc, Start: int(start), Length: int(length)}
	}
	return records, nil
}

// validateTiling checks that records tile [0, total) exactly.
func validateTiling(records []Record, total uint64) error {
	pos := 0
	for i, r := range records {
		if r.Start != pos || r.Length <= 0 {
			return corruptf("index", "record %d index corrupt", i)
		}
		pos += r.Length
	}
	if uint64(pos) != total {
		return corruptf("index", "index covers %d elements, header says %d", pos, total)
	}
	return nil
}

// readWords reads count packed words in bounded chunks, so a header that
// lies about the payload size fails on the missing bytes instead of
// forcing one giant up-front allocation.
func readWords(r io.Reader, count uint64) ([]uint64, error) {
	const chunk = 1 << 16
	first := count
	if first > chunk {
		first = chunk
	}
	words := make([]uint64, 0, first)
	var buf []uint64
	for count > 0 {
		n := count
		if n > chunk {
			n = chunk
		}
		if uint64(cap(buf)) < n {
			buf = make([]uint64, n)
		}
		buf = buf[:n]
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		words = append(words, buf...)
		count -= n
	}
	return words, nil
}

func readString(r io.Reader) (string, error) {
	var l uint16
	if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
		return "", err
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readV1 parses the legacy layout (no checksums, no planes).
func readV1(br *bufio.Reader) (*Database, FileInfo, error) {
	count, total, err := readHeaderGeometry(br)
	if err != nil {
		return nil, FileInfo{}, err
	}
	sr := &sectionReader{r: br}
	records, err := readRecords(sr, count)
	if err != nil {
		return nil, FileInfo{}, corruptf("index", "%v", err)
	}
	indexBytes := sr.n
	if err := validateTiling(records, total); err != nil {
		return nil, FileInfo{}, err
	}
	sr = &sectionReader{r: br}
	words, err := readWords(sr, (total+31)/32)
	if err != nil {
		return nil, FileInfo{}, corruptf("payload", "%v", err)
	}
	packed := bio.NewPackedNucSeq(int(total))
	copy(packed.Words(), words)
	d := newDatabase(records, packed)
	info := FileInfo{
		Version: 1, Records: int(count), TotalNt: int(total),
		Digest: d.digest, IndexBytes: indexBytes, PayloadBytes: sr.n,
	}
	return d, info, nil
}

// readV2 parses the checksummed layout. Header/index/payload/digest
// failures abort the load; plane-section failures degrade it (the planes
// are an optimization, the payload is the data).
func readV2(br *bufio.Reader) (*Database, FileInfo, error) {
	count, total, err := readHeaderGeometry(br)
	if err != nil {
		return nil, FileInfo{}, err
	}
	var declared Digest
	if _, err := io.ReadFull(br, declared[:]); err != nil {
		return nil, FileInfo{}, corruptf("header", "reading digest: %v", err)
	}
	var flags uint8
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, FileInfo{}, corruptf("header", "reading flags: %v", err)
	}
	if flags&^flagPlanes != 0 {
		return nil, FileInfo{}, corruptf("header", "unknown flags %#02x", flags)
	}

	// Index section.
	sr := &sectionReader{r: br}
	records, err := readRecords(sr, count)
	if err != nil {
		return nil, FileInfo{}, corruptf("index", "%v", err)
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, FileInfo{}, corruptf("index", "reading checksum: %v", err)
	}
	if stored != sr.crc {
		return nil, FileInfo{}, corruptf("index", "checksum mismatch (stored %08x, computed %08x)", stored, sr.crc)
	}
	indexBytes := sr.n + 4
	if err := validateTiling(records, total); err != nil {
		return nil, FileInfo{}, err
	}

	// Payload section.
	sr = &sectionReader{r: br}
	words, err := readWords(sr, (total+31)/32)
	if err != nil {
		return nil, FileInfo{}, corruptf("payload", "%v", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, FileInfo{}, corruptf("payload", "reading checksum: %v", err)
	}
	if stored != sr.crc {
		return nil, FileInfo{}, corruptf("payload", "checksum mismatch (stored %08x, computed %08x)", stored, sr.crc)
	}
	payloadBytes := sr.n + 4

	// Content digest binds header to payload (and keys the plane cache);
	// a mismatch means the file lies about what it holds.
	computed := computeDigest(int(total), words)
	if computed != declared {
		return nil, FileInfo{}, corruptf("digest", "content digest mismatch (header %s, payload %s)", declared, computed)
	}

	packed := bio.NewPackedNucSeq(int(total))
	copy(packed.Words(), words)
	d := newDatabase(records, packed)
	info := FileInfo{
		Version: 2, Records: int(count), TotalNt: int(total),
		Digest: d.digest, IndexBytes: indexBytes, PayloadBytes: payloadBytes,
	}

	// Plane section: best-effort. Any failure leaves the database loaded
	// and scannable, with PlaneSectionError telling the caller why the
	// warm start degraded to in-process packing.
	if flags&flagPlanes != 0 {
		planes, consumed, perr := readPlaneSection(br, int(total))
		info.PlaneBytes = consumed
		if perr != nil {
			d.planeErr = &CorruptError{Section: "planes", Err: perr}
			info.PlaneErr = d.planeErr
		} else {
			d.planes = planes
			d.planesPersisted = true
			info.HasPlanes = true
		}
	}
	return d, info, nil
}

// readPlaneSection parses the bit-plane trailer: wire version, serialized
// planes, CRC32. It returns the bytes consumed alongside the planes or
// the rejection reason.
func readPlaneSection(br *bufio.Reader, total int) (*bitpar.Planes, int64, error) {
	sr := &sectionReader{r: br}
	var version uint32
	if err := binary.Read(sr, binary.LittleEndian, &version); err != nil {
		return nil, sr.n, fmt.Errorf("reading version: %w", err)
	}
	if version != bitpar.PlanesWireVersion {
		return nil, sr.n, fmt.Errorf("unsupported plane format version %d (want %d)", version, bitpar.PlanesWireVersion)
	}
	planes, err := bitpar.ReadPlanes(sr, total)
	if err != nil {
		return nil, sr.n, err
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, sr.n, fmt.Errorf("reading checksum: %w", err)
	}
	if stored != sr.crc {
		return nil, sr.n + 4, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", stored, sr.crc)
	}
	return planes, sr.n + 4, nil
}
