package swalign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fabp/internal/bio"
)

func prot(t *testing.T, s string) bio.ProtSeq {
	t.Helper()
	p, err := bio.ParseProtSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nuc(t *testing.T, s string) bio.NucSeq {
	t.Helper()
	n, err := bio.ParseNucSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestIdenticalSequences(t *testing.T) {
	p := prot(t, "MKWVTFISLLFLFSSAYS")
	r := Align(p, p, DefaultScoring())
	want := 0
	for _, a := range p {
		want += bio.Blosum62(a, a)
	}
	if r.Score != want {
		t.Errorf("self score %d, want %d", r.Score, want)
	}
	if r.AStart != 0 || r.AEnd != len(p) || r.BStart != 0 || r.BEnd != len(p) {
		t.Errorf("self alignment range %+v", r)
	}
	if r.Identity(p, p) != 1 {
		t.Errorf("self identity %f", r.Identity(p, p))
	}
	if r.Gaps() != 0 {
		t.Error("self alignment must be gapless")
	}
}

func TestLocalAlignmentFindsEmbeddedMotif(t *testing.T) {
	motif := prot(t, "WWKHW")
	a := prot(t, "AAAAAWWKHWAAAAA")
	r := Align(a, motif, DefaultScoring())
	if r.AStart != 5 || r.AEnd != 10 {
		t.Errorf("motif located at [%d,%d)", r.AStart, r.AEnd)
	}
	if r.BStart != 0 || r.BEnd != 5 {
		t.Errorf("motif range in b: [%d,%d)", r.BStart, r.BEnd)
	}
}

func TestGapHandling(t *testing.T) {
	// b equals a with a deletion in the middle; an affine gap should bridge.
	a := prot(t, "MKWVTFISLLFLFSSAYS")
	b := prot(t, "MKWVTFISLFLFSSAYS") // one L deleted
	r := Align(a, b, DefaultScoring())
	if r.Gaps() != 1 {
		t.Errorf("expected 1 gap column, got %d (%s)", r.Gaps(), r.CIGAR())
	}
	// All 17 residues of b pair with identical residues of a; the deleted L
	// costs one gap open + extend.
	wantSelf := 0
	for _, x := range b {
		wantSelf += bio.Blosum62(x, x)
	}
	wantScore := wantSelf - DefaultScoring().GapOpen - DefaultScoring().GapExtend
	if r.Score != wantScore {
		t.Errorf("score %d, want %d", r.Score, wantScore)
	}
}

func TestAffineGapPreference(t *testing.T) {
	// One 2-residue gap must beat two 1-residue gaps under affine scoring:
	// construct b missing two consecutive residues.
	a := prot(t, "MKWVTFISKKLLFLFSSAYS")
	b := prot(t, "MKWVTFISLLFLFSSAYS") // KK deleted
	r := Align(a, b, DefaultScoring())
	if r.Gaps() != 2 {
		t.Fatalf("gap columns %d, want 2", r.Gaps())
	}
	// CIGAR must contain a single 2I run, not two separate runs.
	if got := r.CIGAR(); got != "8M2I10M" {
		t.Errorf("CIGAR %s, want 8M2I10M", got)
	}
}

func TestScoreMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := bio.RandomProtSeq(rng, 5+rng.Intn(40))
		b := bio.RandomProtSeq(rng, 5+rng.Intn(40))
		full := Align(a, b, s)
		fast := Score(a, b, s)
		if full.Score != fast {
			t.Fatalf("trial %d: traceback %d, score-only %d", trial, full.Score, fast)
		}
	}
}

func TestEmptySequences(t *testing.T) {
	p := prot(t, "MKW")
	if r := Align(nil, p, DefaultScoring()); r.Score != 0 {
		t.Error("empty a must score 0")
	}
	if r := Align(p, nil, DefaultScoring()); r.Score != 0 {
		t.Error("empty b must score 0")
	}
	var empty Result
	if empty.CIGAR() != "" || empty.Identity(nil, nil) != 0 {
		t.Error("empty result rendering")
	}
}

func TestScoreNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := bio.RandomProtSeq(rng, rng.Intn(30))
		b := bio.RandomProtSeq(rng, rng.Intn(30))
		return Score(a, b, DefaultScoring()) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScoreSymmetry(t *testing.T) {
	// BLOSUM62 is symmetric, so local alignment score must be too.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		a := bio.RandomProtSeq(rng, 5+rng.Intn(30))
		b := bio.RandomProtSeq(rng, 5+rng.Intn(30))
		if Score(a, b, DefaultScoring()) != Score(b, a, DefaultScoring()) {
			t.Fatalf("asymmetric at trial %d", trial)
		}
	}
}

func TestScoreMonotoneInContext(t *testing.T) {
	// Embedding a shared motif in longer sequences can only help or tie.
	rng := rand.New(rand.NewSource(3))
	motif := bio.RandomProtSeq(rng, 10)
	base := Score(motif, motif, DefaultScoring())
	a := append(append(bio.RandomProtSeq(rng, 5), motif...), bio.RandomProtSeq(rng, 5)...)
	b := append(append(bio.RandomProtSeq(rng, 7), motif...), bio.RandomProtSeq(rng, 3)...)
	if got := Score(a, b, DefaultScoring()); got < base {
		t.Errorf("embedded score %d below motif self-score %d", got, base)
	}
}

func TestNucAlign(t *testing.T) {
	a := nuc(t, "ACGUACGUACGU")
	r := AlignNuc(a, a, DefaultNucScoring())
	if r.Score != 2*len(a) {
		t.Errorf("self score %d", r.Score)
	}
	b := nuc(t, "ACGUACCUACGU") // one substitution
	r2 := AlignNuc(a, b, DefaultNucScoring())
	if r2.Score >= r.Score {
		t.Error("substitution must lower score")
	}
	if got := ScoreNuc(a, b, DefaultNucScoring()); got != r2.Score {
		t.Errorf("ScoreNuc %d != AlignNuc %d", got, r2.Score)
	}
}

func TestNucAlignGap(t *testing.T) {
	a := nuc(t, "ACGUACGUACGUACGU")
	b := nuc(t, "ACGUACUACGUACGU") // G deleted
	r := AlignNuc(a, b, DefaultNucScoring())
	if r.Gaps() != 1 {
		t.Errorf("gaps %d (%s)", r.Gaps(), r.CIGAR())
	}
}

func TestCIGARRendering(t *testing.T) {
	r := Result{Ops: []Op{OpMatch, OpMatch, OpDelete, OpMatch, OpInsert, OpInsert}}
	if got := r.CIGAR(); got != "2M1D1M2I" {
		t.Errorf("CIGAR %s", got)
	}
}

// TestTracebackConsistency: walking the ops must consume exactly the
// aligned ranges.
func TestTracebackConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a := bio.RandomProtSeq(rng, 10+rng.Intn(40))
		b := bio.RandomProtSeq(rng, 10+rng.Intn(40))
		r := Align(a, b, DefaultScoring())
		ai, bi := r.AStart, r.BStart
		for _, op := range r.Ops {
			switch op {
			case OpMatch:
				ai++
				bi++
			case OpInsert:
				ai++
			case OpDelete:
				bi++
			}
		}
		if ai != r.AEnd || bi != r.BEnd {
			t.Fatalf("trial %d: ops consume (%d,%d), ranges end (%d,%d)",
				trial, ai, bi, r.AEnd, r.BEnd)
		}
	}
}

// TestTracebackScoreReconstruction: re-scoring the traceback must give the
// reported score.
func TestTracebackScoreReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := bio.RandomProtSeq(rng, 10+rng.Intn(30))
		b := bio.RandomProtSeq(rng, 10+rng.Intn(30))
		r := Align(a, b, s)
		score := 0
		ai, bi := r.AStart, r.BStart
		var prev Op
		for _, op := range r.Ops {
			switch op {
			case OpMatch:
				score += s.Substitution(a[ai], b[bi])
				ai++
				bi++
			case OpInsert:
				if prev == OpInsert {
					score -= s.GapExtend
				} else {
					score -= s.GapOpen + s.GapExtend
				}
				ai++
			case OpDelete:
				if prev == OpDelete {
					score -= s.GapExtend
				} else {
					score -= s.GapOpen + s.GapExtend
				}
				bi++
			}
			prev = op
		}
		if score != r.Score {
			t.Fatalf("trial %d: reconstructed %d, reported %d (%s)", trial, score, r.Score, r.CIGAR())
		}
	}
}
