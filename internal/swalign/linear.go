package swalign

import "fabp/internal/bio"

// Linear-space local alignment with full traceback (Hirschberg / Myers-
// Miller): O(len(a)+len(b)) memory instead of Align's O(len(a)·len(b)),
// making tracebacks of chromosome-scale windows practical.
//
// Strategy: two score-only passes locate the optimal local alignment's end
// and start; the spanned substrings are then aligned globally by divide
// and conquer, splitting at the middle row and joining either in the
// match state or inside a vertical gap run (re-crediting the double-
// charged gap open, as in Myers & Miller 1988).

// AlignLinear computes the same optimal local alignment score as Align
// with a traceback, in linear memory. Tie-breaking may pick a different
// co-optimal path than Align; the score and the re-scored traceback always
// agree.
func AlignLinear(a, b bio.ProtSeq, s Scoring) Result {
	if len(a) == 0 || len(b) == 0 {
		return Result{}
	}
	// Pass 1: locate the end of the optimal local alignment.
	score, ae, be := localArgmax(a, b, s)
	if score <= 0 {
		return Result{}
	}
	// Pass 2: locate the start by scanning the reversed prefixes.
	ar := reverseSeq(a[:ae])
	br := reverseSeq(b[:be])
	score2, ai, bi := localArgmax(ar, br, s)
	if score2 != score {
		// Cannot happen for a correct DP; fall back to the quadratic path.
		return Align(a, b, s)
	}
	as, bs := ae-ai, be-bi

	ops := globalLinear(a[as:ae], b[bs:be], s, false, false)
	return Result{
		Score:  score,
		AStart: as, AEnd: ae,
		BStart: bs, BEnd: be,
		Ops: ops,
	}
}

// localArgmax is the score-only local DP returning the best score and the
// first cell attaining it (row-major order).
func localArgmax(a, b bio.ProtSeq, s Scoring) (best, ai, bi int) {
	const negInf = -1 << 30
	h := make([]int, len(b)+1)
	e := make([]int, len(b)+1)
	for j := range e {
		e[j] = negInf
	}
	for i := 1; i <= len(a); i++ {
		f := negInf
		diag := 0
		for j := 1; j <= len(b); j++ {
			e[j] = max2(e[j]-s.GapExtend, h[j]-s.GapOpen-s.GapExtend)
			f = max2(f-s.GapExtend, h[j-1]-s.GapOpen-s.GapExtend)
			v := max2(0, max2(diag+s.Substitution(a[i-1], b[j-1]), max2(e[j], f)))
			diag = h[j]
			h[j] = v
			if v > best {
				best, ai, bi = v, i, j
			}
		}
	}
	return best, ai, bi
}

func reverseSeq(p bio.ProtSeq) bio.ProtSeq {
	out := make(bio.ProtSeq, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// globalLinear aligns a against b globally in linear space. startV forces
// the first operation to be vertical (OpInsert, consuming a) with its gap
// open already paid; endV forces the last operation to be vertical with
// the open for the continuing run paid by the caller's join credit.
func globalLinear(a, b bio.ProtSeq, s Scoring, startV, endV bool) []Op {
	m, n := len(a), len(b)
	switch {
	case m == 0:
		// Only horizontal ops possible; the flags can never be set here
		// (the V-join always spans at least one row on each side).
		return repeatOp(OpDelete, n)
	case n == 0:
		return repeatOp(OpInsert, m)
	case m <= 2:
		return globalSmall(a, b, s, startV, endV)
	}

	mid := m / 2
	hF, vF := nwForward(a[:mid], b, s, startV)
	hR, vR := nwForward(reverseSeq(a[mid:]), reverseSeq(b), s, endV)

	const negInf = -1 << 29
	bestVal, bestJ, bestVJoin := negInf, 0, false
	for j := 0; j <= n; j++ {
		if v := addSat(hF[j], hR[n-j]); v > bestVal {
			bestVal, bestJ, bestVJoin = v, j, false
		}
		if v := addSat(addSat(vF[j], vR[n-j]), s.GapOpen); v > bestVal {
			bestVal, bestJ, bestVJoin = v, j, true
		}
	}

	left := globalLinear(a[:mid], b[:bestJ], s, startV, bestVJoin)
	right := globalLinear(a[mid:], b[bestJ:], s, bestVJoin, endV)
	return append(left, right...)
}

func addSat(x, y int) int {
	const negInf = -1 << 29
	if x <= negInf || y <= negInf {
		return negInf * 2
	}
	return x + y
}

func repeatOp(op Op, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = op
	}
	return ops
}

// nwForward computes, for every prefix b[:j], the optimal global score of
// aligning all of a against it: h[j] for alignments ending in any state,
// v[j] for alignments ending inside a vertical gap run. startV constrains
// the first operation as in globalLinear.
func nwForward(a, b bio.ProtSeq, s Scoring, startV bool) (h, v []int) {
	const negInf = -1 << 29
	m, n := len(a), len(b)
	h = make([]int, n+1) // best ending in any state
	v = make([]int, n+1) // best ending in vertical state
	// Row 0.
	if startV {
		for j := 0; j <= n; j++ {
			h[j] = negInf
			v[j] = negInf
		}
		v[0] = 0 // the crossing run is open; extensions charge per row
	} else {
		v[0] = negInf
		h[0] = 0
		for j := 1; j <= n; j++ {
			h[j] = -(s.GapOpen + j*s.GapExtend)
			v[j] = negInf
		}
	}
	prevH := make([]int, n+1)
	for i := 1; i <= m; i++ {
		copy(prevH, h)
		// Vertical into column 0.
		v[0] = max2(addSat(v[0], -s.GapExtend), addSat(prevH[0], -(s.GapOpen+s.GapExtend)))
		if startV {
			// Only the crossing run reaches column 0 in row i.
			v[0] = addSat(-s.GapExtend*i, 0)
		}
		h[0] = v[0]
		z := negInf // horizontal state within the row
		for j := 1; j <= n; j++ {
			v[j] = max2(addSat(v[j], -s.GapExtend), addSat(prevH[j], -(s.GapOpen+s.GapExtend)))
			z = max2(addSat(z, -s.GapExtend), addSat(h[j-1], -(s.GapOpen+s.GapExtend)))
			d := addSat(prevH[j-1], s.Substitution(a[i-1], b[j-1]))
			h[j] = max2(d, max2(v[j], z))
		}
	}
	return h, v
}

// globalSmall solves the base case (len(a) <= 2) with a full traceback DP
// in O(len(b)) memory.
func globalSmall(a, b bio.ProtSeq, s Scoring, startV, endV bool) []Op {
	const negInf = -1 << 29
	m, n := len(a), len(b)
	// Full matrices are fine: (m+1)x(n+1) with m <= 2.
	idx := func(i, j int) int { return i*(n+1) + j }
	H := make([]int, (m+1)*(n+1)) // best any-state
	V := make([]int, (m+1)*(n+1))
	Z := make([]int, (m+1)*(n+1))
	for i := range H {
		H[i], V[i], Z[i] = negInf, negInf, negInf
	}
	if startV {
		V[idx(0, 0)] = 0
		H[idx(0, 0)] = negInf
	} else {
		H[idx(0, 0)] = 0
		for j := 1; j <= n; j++ {
			Z[idx(0, j)] = -(s.GapOpen + j*s.GapExtend)
			H[idx(0, j)] = Z[idx(0, j)]
		}
	}
	for i := 1; i <= m; i++ {
		for j := 0; j <= n; j++ {
			V[idx(i, j)] = max2(addSat(V[idx(i-1, j)], -s.GapExtend),
				addSat(H[idx(i-1, j)], -(s.GapOpen+s.GapExtend)))
			if j > 0 {
				Z[idx(i, j)] = max2(addSat(Z[idx(i, j-1)], -s.GapExtend),
					addSat(H[idx(i, j-1)], -(s.GapOpen+s.GapExtend)))
				d := addSat(H[idx(i-1, j-1)], s.Substitution(a[i-1], b[j-1]))
				H[idx(i, j)] = max2(d, max2(V[idx(i, j)], Z[idx(i, j)]))
			} else {
				H[idx(i, j)] = V[idx(i, j)]
			}
		}
	}

	// Traceback from the required end state.
	var ops []Op
	i, j := m, n
	state := 'H'
	if endV {
		state = 'V'
	}
	for i > 0 || j > 0 {
		switch state {
		case 'H':
			cur := H[idx(i, j)]
			switch {
			case i > 0 && j > 0 && cur == addSat(H[idx(i-1, j-1)], s.Substitution(a[i-1], b[j-1])):
				ops = append(ops, OpMatch)
				i--
				j--
			case cur == V[idx(i, j)]:
				state = 'V'
			case cur == Z[idx(i, j)]:
				state = 'Z'
			default:
				// Row-0 boundary: remaining horizontal run.
				state = 'Z'
			}
		case 'V':
			if i == 0 {
				// Crossing-run origin (startV).
				if j != 0 {
					// Should not happen; defensively drain horizontally.
					state = 'Z'
					continue
				}
				return reverseOps(ops)
			}
			ops = append(ops, OpInsert)
			if V[idx(i, j)] == addSat(H[idx(i-1, j)], -(s.GapOpen+s.GapExtend)) {
				state = 'H'
			}
			i--
		case 'Z':
			if j == 0 {
				state = 'H'
				continue
			}
			ops = append(ops, OpDelete)
			if Z[idx(i, j)] == addSat(H[idx(i, j-1)], -(s.GapOpen+s.GapExtend)) {
				state = 'H'
			}
			j--
		}
	}
	return reverseOps(ops)
}

func reverseOps(ops []Op) []Op {
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	return ops
}
