package swalign

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
)

// oracleLocal computes the optimal local affine-gap score by exhaustive
// recursion with memoization over (i, j, state) — an implementation
// independent of the production DP (different decomposition, different
// order), used as a correctness oracle on small inputs.
//
// States: 0 = last column was a match/substitution (or fresh start),
// 1 = inside a gap in b (consuming a), 2 = inside a gap in a (consuming b).
func oracleLocal(a, b bio.ProtSeq, s Scoring) int {
	const negInf = -1 << 28
	type key struct{ i, j, st int }
	memo := map[key]int{}

	// bestEnding(i, j, st) = best score of a local alignment ENDING exactly
	// at (i, j) with the given last-operation state.
	var bestEnding func(i, j, st int) int
	bestEnding = func(i, j, st int) int {
		k := key{i, j, st}
		if v, ok := memo[k]; ok {
			return v
		}
		v := negInf
		switch st {
		case 0: // a[i-1] aligned to b[j-1]
			if i >= 1 && j >= 1 {
				sub := s.Substitution(a[i-1], b[j-1])
				prev := 0 // fresh start
				for _, pst := range []int{0, 1, 2} {
					if p := bestEnding(i-1, j-1, pst); p > prev {
						prev = p
					}
				}
				v = prev + sub
			}
		case 1: // gap in b, consuming a[i-1]
			if i >= 1 {
				open := negInf
				for _, pst := range []int{0, 2} {
					if p := bestEnding(i-1, j, pst); p > open {
						open = p
					}
				}
				v = open - s.GapOpen - s.GapExtend
				if p := bestEnding(i-1, j, 1); p-s.GapExtend > v {
					v = p - s.GapExtend
				}
			}
		case 2: // gap in a, consuming b[j-1]
			if j >= 1 {
				open := negInf
				for _, pst := range []int{0, 1} {
					if p := bestEnding(i, j-1, pst); p > open {
						open = p
					}
				}
				v = open - s.GapOpen - s.GapExtend
				if p := bestEnding(i, j-1, 2); p-s.GapExtend > v {
					v = p - s.GapExtend
				}
			}
		}
		memo[k] = v
		return v
	}

	best := 0
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			for st := 0; st < 3; st++ {
				if v := bestEnding(i, j, st); v > best {
					best = v
				}
			}
		}
	}
	return best
}

// TestScoreAgainstOracle cross-checks the production aligner against the
// independent recursion on many small random pairs.
func TestScoreAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := DefaultScoring()
	for trial := 0; trial < 300; trial++ {
		a := bio.RandomProtSeq(rng, 1+rng.Intn(8))
		b := bio.RandomProtSeq(rng, 1+rng.Intn(8))
		want := oracleLocal(a, b, s)
		if got := Score(a, b, s); got != want {
			t.Fatalf("trial %d (%s vs %s): production %d, oracle %d",
				trial, a, b, got, want)
		}
		if got := Align(a, b, s).Score; got != want {
			t.Fatalf("trial %d: traceback path %d, oracle %d", trial, got, want)
		}
	}
}

// TestOracleAgreesWithBanded: full-band banded alignment equals the oracle
// too (three independent implementations agreeing).
func TestOracleAgreesWithBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := DefaultScoring()
	for trial := 0; trial < 100; trial++ {
		a := bio.RandomProtSeq(rng, 1+rng.Intn(7))
		b := bio.RandomProtSeq(rng, 1+rng.Intn(7))
		want := oracleLocal(a, b, s)
		if got := ScoreBanded(a, b, s, 0, len(a)+len(b)); got != want {
			t.Fatalf("trial %d: banded %d, oracle %d", trial, got, want)
		}
	}
}
