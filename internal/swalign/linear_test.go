package swalign

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
)

// rescore computes the affine cost of a traceback (shared helper).
func rescore(a, b bio.ProtSeq, r Result, s Scoring, t *testing.T) int {
	t.Helper()
	score := 0
	ai, bi := r.AStart, r.BStart
	var prev Op
	for _, op := range r.Ops {
		switch op {
		case OpMatch:
			score += s.Substitution(a[ai], b[bi])
			ai++
			bi++
		case OpInsert:
			if prev == OpInsert {
				score -= s.GapExtend
			} else {
				score -= s.GapOpen + s.GapExtend
			}
			ai++
		case OpDelete:
			if prev == OpDelete {
				score -= s.GapExtend
			} else {
				score -= s.GapOpen + s.GapExtend
			}
			bi++
		}
		prev = op
	}
	if ai != r.AEnd || bi != r.BEnd {
		t.Fatalf("ops consume (%d,%d), ranges end (%d,%d)", ai, bi, r.AEnd, r.BEnd)
	}
	return score
}

// TestAlignLinearMatchesQuadratic: same optimal score, and the linear-space
// traceback re-scores to it exactly.
func TestAlignLinearMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := DefaultScoring()
	for trial := 0; trial < 250; trial++ {
		a := bio.RandomProtSeq(rng, 1+rng.Intn(40))
		b := bio.RandomProtSeq(rng, 1+rng.Intn(40))
		want := Align(a, b, s)
		got := AlignLinear(a, b, s)
		if got.Score != want.Score {
			t.Fatalf("trial %d: linear %d, quadratic %d", trial, got.Score, want.Score)
		}
		if got.Score == 0 {
			continue
		}
		if re := rescore(a, b, got, s, t); re != got.Score {
			t.Fatalf("trial %d: traceback re-scores to %d, reported %d (%s)",
				trial, re, got.Score, got.CIGAR())
		}
	}
}

// TestAlignLinearGapMerging stresses the vertical-join credit: homologs
// differing by one long deletion must produce a single affine gap.
func TestAlignLinearGapMerging(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(40)
		a := bio.RandomProtSeq(rng, n)
		cut := 3 + rng.Intn(8)
		at := rng.Intn(n - cut)
		b := append(append(bio.ProtSeq{}, a[:at]...), a[at+cut:]...)
		want := Score(a, b, s)
		got := AlignLinear(a, b, s)
		if got.Score != want {
			t.Fatalf("trial %d: linear %d, want %d", trial, got.Score, want)
		}
		if re := rescore(a, b, got, s, t); re != got.Score {
			t.Fatalf("trial %d: rescore mismatch", trial)
		}
	}
}

func TestAlignLinearDegenerate(t *testing.T) {
	s := DefaultScoring()
	p, _ := bio.ParseProtSeq("MKW")
	if r := AlignLinear(nil, p, s); r.Score != 0 {
		t.Error("empty a")
	}
	if r := AlignLinear(p, nil, s); r.Score != 0 {
		t.Error("empty b")
	}
	// Self alignment.
	r := AlignLinear(p, p, s)
	if r.CIGAR() != "3M" {
		t.Errorf("self CIGAR %s", r.CIGAR())
	}
}

// TestAlignLinearLarge is the point of linear space: a traceback over a
// pair whose full DP matrix would hold 4M cells.
func TestAlignLinearLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := bio.RandomProtSeq(rng, 2000)
	b := append(append(bio.ProtSeq{}, a[:900]...), a[950:]...) // 50-residue deletion
	for i := 0; i < len(b); i += 37 {
		b[i] = bio.Ala // sprinkle substitutions
	}
	s := DefaultScoring()
	r := AlignLinear(a, b, s)
	if r.Score != Score(a, b, s) {
		t.Fatalf("large: linear %d, score-only %d", r.Score, Score(a, b, s))
	}
	if re := rescore(a, b, r, s, t); re != r.Score {
		t.Fatal("large rescore mismatch")
	}
	if r.Gaps() < 50 {
		t.Errorf("expected the 50-residue deletion in the traceback, gaps=%d", r.Gaps())
	}
}

func TestAlignLinearAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := DefaultScoring()
	for trial := 0; trial < 150; trial++ {
		a := bio.RandomProtSeq(rng, 1+rng.Intn(7))
		b := bio.RandomProtSeq(rng, 1+rng.Intn(7))
		want := oracleLocal(a, b, s)
		if got := AlignLinear(a, b, s).Score; got != want {
			t.Fatalf("trial %d: linear %d, oracle %d", trial, got, want)
		}
	}
}
