package swalign

import (
	"fmt"
	"strings"

	"fabp/internal/bio"
)

// FormatAlignment renders a traceback BLAST-style in blocks of width
// columns: query line, midline ('|' identical, '+' positive substitution
// score, ' ' otherwise), subject line, with 1-based coordinates.
func FormatAlignment(a, b bio.ProtSeq, r Result, s Scoring, width int) string {
	if len(r.Ops) == 0 {
		return ""
	}
	if width <= 0 {
		width = 60
	}
	var qLine, mLine, sLine []byte
	ai, bi := r.AStart, r.BStart
	for _, op := range r.Ops {
		switch op {
		case OpMatch:
			qc, sc := a[ai], b[bi]
			qLine = append(qLine, qc.Letter())
			sLine = append(sLine, sc.Letter())
			switch {
			case qc == sc:
				mLine = append(mLine, '|')
			case s.Substitution(qc, sc) > 0:
				mLine = append(mLine, '+')
			default:
				mLine = append(mLine, ' ')
			}
			ai++
			bi++
		case OpInsert:
			qLine = append(qLine, a[ai].Letter())
			mLine = append(mLine, ' ')
			sLine = append(sLine, '-')
			ai++
		case OpDelete:
			qLine = append(qLine, '-')
			mLine = append(mLine, ' ')
			sLine = append(sLine, b[bi].Letter())
			bi++
		}
	}

	var out strings.Builder
	qPos, sPos := r.AStart, r.BStart
	for off := 0; off < len(qLine); off += width {
		end := off + width
		if end > len(qLine) {
			end = len(qLine)
		}
		qSeg, mSeg, sSeg := qLine[off:end], mLine[off:end], sLine[off:end]
		qConsumed := len(qSeg) - strings.Count(string(qSeg), "-")
		sConsumed := len(sSeg) - strings.Count(string(sSeg), "-")
		fmt.Fprintf(&out, "Query  %4d  %s  %d\n", qPos+1, qSeg, qPos+qConsumed)
		fmt.Fprintf(&out, "             %s\n", mSeg)
		fmt.Fprintf(&out, "Sbjct  %4d  %s  %d\n", sPos+1, sSeg, sPos+sConsumed)
		if end < len(qLine) {
			out.WriteByte('\n')
		}
		qPos += qConsumed
		sPos += sConsumed
	}
	return out.String()
}
