// Package swalign implements Smith-Waterman local alignment (Gotoh affine
// gaps) for protein and nucleotide sequences — the dynamic-programming gold
// standard FabP trades for substitution-only scoring (§II of the paper) and
// the extension scorer of the TBLASTN baseline.
package swalign

import (
	"fmt"
	"strings"

	"fabp/internal/bio"
)

// Scoring parameterizes the protein aligner.
type Scoring struct {
	// Substitution scores a residue pair (default BLOSUM62).
	Substitution func(a, b bio.AminoAcid) int
	// GapOpen is the (positive) penalty to open a gap; GapExtend the
	// penalty to lengthen one. BLAST protein defaults: 11, 1.
	GapOpen   int
	GapExtend int
}

// DefaultScoring returns BLOSUM62 with BLAST's 11/1 affine gaps.
func DefaultScoring() Scoring {
	return Scoring{Substitution: bio.Blosum62, GapOpen: 11, GapExtend: 1}
}

// Op is one alignment operation.
type Op byte

// Alignment operations in CIGAR-like notation.
const (
	OpMatch  Op = 'M' // residue aligned to residue (match or substitution)
	OpInsert Op = 'I' // residue in a only (gap in b)
	OpDelete Op = 'D' // residue in b only (gap in a)
)

// Result is a local alignment: the best-scoring pair of subsequences.
type Result struct {
	// Score is the optimal local alignment score.
	Score int
	// AStart/AEnd delimit the aligned region of a (half-open).
	AStart, AEnd int
	// BStart/BEnd delimit the aligned region of b (half-open).
	BStart, BEnd int
	// Ops is the operation sequence of the traceback (empty when the
	// aligner ran score-only).
	Ops []Op
}

// Identity returns the fraction of OpMatch columns whose residues were
// identical; it requires a traceback and the original sequences.
func (r Result) Identity(a, b []bio.AminoAcid) float64 {
	if len(r.Ops) == 0 {
		return 0
	}
	ai, bi := r.AStart, r.BStart
	ident, cols := 0, 0
	for _, op := range r.Ops {
		switch op {
		case OpMatch:
			if a[ai] == b[bi] {
				ident++
			}
			ai++
			bi++
		case OpInsert:
			ai++
		case OpDelete:
			bi++
		}
		cols++
	}
	if cols == 0 {
		return 0
	}
	return float64(ident) / float64(cols)
}

// CIGAR renders the op sequence in run-length CIGAR form ("12M1D4M").
func (r Result) CIGAR() string {
	if len(r.Ops) == 0 {
		return ""
	}
	var b strings.Builder
	run := 1
	for i := 1; i <= len(r.Ops); i++ {
		if i < len(r.Ops) && r.Ops[i] == r.Ops[i-1] {
			run++
			continue
		}
		fmt.Fprintf(&b, "%d%c", run, r.Ops[i-1])
		run = 1
	}
	return b.String()
}

// Gaps counts the gapped columns (I+D operations) in the traceback.
func (r Result) Gaps() int {
	n := 0
	for _, op := range r.Ops {
		if op != OpMatch {
			n++
		}
	}
	return n
}

// Align computes the optimal local alignment of proteins a and b with full
// traceback. Memory is O(len(a)·len(b)); use Score for long pairs.
func Align(a, b bio.ProtSeq, s Scoring) Result {
	return alignGeneric(len(a), len(b), func(i, j int) int {
		return s.Substitution(a[i], b[j])
	}, s.GapOpen, s.GapExtend, true)
}

// Score computes only the optimal local score in O(min) memory.
func Score(a, b bio.ProtSeq, s Scoring) int {
	return alignGeneric(len(a), len(b), func(i, j int) int {
		return s.Substitution(a[i], b[j])
	}, s.GapOpen, s.GapExtend, false).Score
}

// NucScoring parameterizes the nucleotide aligner.
type NucScoring struct {
	Match     int // score for identical bases (positive)
	Mismatch  int // score for different bases (negative)
	GapOpen   int // positive penalty
	GapExtend int // positive penalty
}

// DefaultNucScoring matches megablast-style defaults.
func DefaultNucScoring() NucScoring {
	return NucScoring{Match: 2, Mismatch: -3, GapOpen: 5, GapExtend: 2}
}

// AlignNuc computes the optimal local alignment of nucleotide sequences.
func AlignNuc(a, b bio.NucSeq, s NucScoring) Result {
	sub := func(i, j int) int {
		if a[i] == b[j] {
			return s.Match
		}
		return s.Mismatch
	}
	return alignGeneric(len(a), len(b), sub, s.GapOpen, s.GapExtend, true)
}

// ScoreNuc computes only the optimal nucleotide local score.
func ScoreNuc(a, b bio.NucSeq, s NucScoring) int {
	sub := func(i, j int) int {
		if a[i] == b[j] {
			return s.Match
		}
		return s.Mismatch
	}
	return alignGeneric(len(a), len(b), sub, s.GapOpen, s.GapExtend, false).Score
}

// alignGeneric is the Gotoh affine-gap local aligner over an abstract
// substitution function. With traceback it stores direction matrices; the
// score-only path keeps two rows.
func alignGeneric(la, lb int, sub func(i, j int) int, gapOpen, gapExtend int, traceback bool) Result {
	if la == 0 || lb == 0 {
		return Result{}
	}
	const negInf = -1 << 30

	if !traceback {
		// Rolling arrays: H (main), E (gap in a ... vertical), F handled on the fly.
		h := make([]int, lb+1)
		e := make([]int, lb+1)
		for j := range e {
			e[j] = negInf
		}
		best := 0
		for i := 1; i <= la; i++ {
			f := negInf
			diag := 0 // h[j-1] from the previous row
			for j := 1; j <= lb; j++ {
				e[j] = max2(e[j]-gapExtend, h[j]-gapOpen-gapExtend)
				f = max2(f-gapExtend, h[j-1]-gapOpen-gapExtend)
				score := max2(0, max2(diag+sub(i-1, j-1), max2(e[j], f)))
				diag = h[j]
				h[j] = score
				if score > best {
					best = score
				}
			}
		}
		return Result{Score: best}
	}

	// Full matrices with traceback.
	idx := func(i, j int) int { return i*(lb+1) + j }
	h := make([]int, (la+1)*(lb+1))
	e := make([]int, (la+1)*(lb+1))
	f := make([]int, (la+1)*(lb+1))
	for j := 0; j <= lb; j++ {
		e[idx(0, j)] = negInf
		f[idx(0, j)] = negInf
	}
	bestScore, bi, bj := 0, 0, 0
	for i := 1; i <= la; i++ {
		e[idx(i, 0)] = negInf
		f[idx(i, 0)] = negInf
		for j := 1; j <= lb; j++ {
			e[idx(i, j)] = max2(e[idx(i-1, j)]-gapExtend, h[idx(i-1, j)]-gapOpen-gapExtend)
			f[idx(i, j)] = max2(f[idx(i, j-1)]-gapExtend, h[idx(i, j-1)]-gapOpen-gapExtend)
			s := max2(0, max2(h[idx(i-1, j-1)]+sub(i-1, j-1), max2(e[idx(i, j)], f[idx(i, j)])))
			h[idx(i, j)] = s
			if s > bestScore {
				bestScore, bi, bj = s, i, j
			}
		}
	}
	res := Result{Score: bestScore, AEnd: bi, BEnd: bj}
	// Traceback from the maximum until a zero cell.
	var ops []Op
	i, j := bi, bj
	for i > 0 && j > 0 && h[idx(i, j)] > 0 {
		cur := h[idx(i, j)]
		switch {
		case cur == h[idx(i-1, j-1)]+sub(i-1, j-1):
			ops = append(ops, OpMatch)
			i--
			j--
		case cur == e[idx(i, j)]:
			// Gap in b: consume residues of a until the gap opens.
			for {
				ops = append(ops, OpInsert)
				if e[idx(i, j)] == h[idx(i-1, j)]-gapOpen-gapExtend {
					i--
					break
				}
				i--
			}
		case cur == f[idx(i, j)]:
			for {
				ops = append(ops, OpDelete)
				if f[idx(i, j)] == h[idx(i, j-1)]-gapOpen-gapExtend {
					j--
					break
				}
				j--
			}
		default:
			// Unreachable for a consistent DP; stop defensively.
			i, j = 0, 0
		}
	}
	res.AStart, res.BStart = i, j
	// Reverse ops.
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	res.Ops = ops
	return res
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
