package swalign

import "fabp/internal/bio"

// Banded local alignment: the Gotoh DP restricted to a diagonal corridor,
// the standard way BLAST-style tools afford gapped refinement of a seeded
// HSP (the seed fixes the diagonal; indels only shift it slightly).

// ScoreBanded computes the optimal local alignment score of proteins a and
// b restricted to diagonals j−i ∈ [diag−band, diag+band] (i indexes a, j
// indexes b, both 0-based). A band covering every diagonal reproduces
// Score exactly; narrow bands cost O(len(a)·band).
//
// Cells outside the corridor are unreachable; since local alignments may
// restart anywhere with score 0, the band only ever removes paths, so
// ScoreBanded never exceeds Score (a property the tests check).
func ScoreBanded(a, b bio.ProtSeq, s Scoring, diag, band int) int {
	if len(a) == 0 || len(b) == 0 || band < 0 {
		return 0
	}
	const negInf = -1 << 30

	hPrev := make([]int, len(b)+1)
	ePrev := make([]int, len(b)+1)
	hRow := make([]int, len(b)+1)
	eRow := make([]int, len(b)+1)
	// Row 0: any in-band cell can start a local alignment with score 0;
	// everything else is unreachable.
	for j := range hPrev {
		hPrev[j] = negInf
		ePrev[j] = negInf
	}
	for j := maxInt(0, 0+diag-band); j <= minInt(len(b), 0+diag+band); j++ {
		hPrev[j] = 0
	}

	best := 0
	for i := 1; i <= len(a); i++ {
		jLo := maxInt(1, i+diag-band)
		jHi := minInt(len(b), i+diag+band)
		for j := range hRow {
			hRow[j] = negInf
			eRow[j] = negInf
		}
		f := negInf
		for j := jLo; j <= jHi; j++ {
			eRow[j] = max2(ePrev[j]-s.GapExtend, hPrev[j]-s.GapOpen-s.GapExtend)
			f = max2(f-s.GapExtend, hRow[j-1]-s.GapOpen-s.GapExtend)
			// In local alignment every cell may restart at 0, so an
			// unreachable (out-of-band) diagonal predecessor is exactly a
			// restart — clamp to 0, which is also the floor every in-band
			// unbanded cell satisfies.
			dh := max2(hPrev[j-1], 0)
			v := max2(0, max2(dh+s.Substitution(a[i-1], b[j-1]), max2(eRow[j], f)))
			hRow[j] = v
			if v > best {
				best = v
			}
		}
		hPrev, hRow = hRow, hPrev
		ePrev, eRow = eRow, ePrev
	}
	return best
}

func maxInt(x, y int) int {
	if x > y {
		return x
	}
	return y
}

func minInt(x, y int) int {
	if x < y {
		return x
	}
	return y
}
