package swalign

import (
	"math/rand"
	"strings"
	"testing"

	"fabp/internal/bio"
)

// TestBandedEqualsFullWithWideBand: a band covering every diagonal must
// reproduce the unbanded score.
func TestBandedEqualsFullWithWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := DefaultScoring()
	for trial := 0; trial < 40; trial++ {
		a := bio.RandomProtSeq(rng, 5+rng.Intn(30))
		b := bio.RandomProtSeq(rng, 5+rng.Intn(30))
		full := Score(a, b, s)
		banded := ScoreBanded(a, b, s, 0, len(a)+len(b))
		if banded != full {
			t.Fatalf("trial %d: banded %d != full %d", trial, banded, full)
		}
	}
}

// TestBandedNeverExceedsFull: narrowing the band can only remove paths.
func TestBandedNeverExceedsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := DefaultScoring()
	for trial := 0; trial < 40; trial++ {
		a := bio.RandomProtSeq(rng, 10+rng.Intn(30))
		b := bio.RandomProtSeq(rng, 10+rng.Intn(30))
		full := Score(a, b, s)
		for _, band := range []int{0, 1, 3, 8} {
			diag := rng.Intn(11) - 5
			if got := ScoreBanded(a, b, s, diag, band); got > full {
				t.Fatalf("trial %d band %d: banded %d exceeds full %d", trial, band, got, full)
			}
		}
	}
}

// TestBandedFindsOnDiagonalMatch: an identical pair sits on diagonal 0 and
// must reach the full self-score even with band 0.
func TestBandedFindsOnDiagonalMatch(t *testing.T) {
	p, _ := bio.ParseProtSeq("MKWVTFISLLFLFSSAYS")
	s := DefaultScoring()
	want := Score(p, p, s)
	if got := ScoreBanded(p, p, s, 0, 0); got != want {
		t.Errorf("band 0 on diagonal: %d, want %d", got, want)
	}
	// Shifted subject: match lives on diagonal 5.
	b := append(bio.RandomProtSeq(rand.New(rand.NewSource(3)), 5), p...)
	if got := ScoreBanded(p, b, s, 5, 0); got != want {
		t.Errorf("diag 5 band 0: %d, want %d", got, want)
	}
	// Wrong diagonal with tiny band: cannot reach the full score.
	if got := ScoreBanded(p, b, s, 0, 1); got >= want {
		t.Errorf("wrong diagonal should score lower: %d", got)
	}
}

// TestBandedBridgesSmallIndel: a 2-residue deletion needs band >= 2.
func TestBandedBridgesSmallIndel(t *testing.T) {
	a, _ := bio.ParseProtSeq("MKWVTFISKKLLFLFSSAYS")
	b, _ := bio.ParseProtSeq("MKWVTFISLLFLFSSAYS")
	s := DefaultScoring()
	full := Score(a, b, s)
	if got := ScoreBanded(a, b, s, 0, 2); got != full {
		t.Errorf("band 2: %d, want %d", got, full)
	}
	if got := ScoreBanded(a, b, s, 0, 0); got >= full {
		t.Errorf("band 0 cannot bridge the indel: %d", got)
	}
}

func TestBandedDegenerate(t *testing.T) {
	p, _ := bio.ParseProtSeq("MKW")
	if ScoreBanded(nil, p, DefaultScoring(), 0, 3) != 0 {
		t.Error("empty a")
	}
	if ScoreBanded(p, nil, DefaultScoring(), 0, 3) != 0 {
		t.Error("empty b")
	}
	if ScoreBanded(p, p, DefaultScoring(), 0, -1) != 0 {
		t.Error("negative band")
	}
}

func TestFormatAlignment(t *testing.T) {
	a, _ := bio.ParseProtSeq("MKWVTFISKKLLFLFSSAYS")
	b, _ := bio.ParseProtSeq("MKWVTFISLLFLFSSAYS")
	s := DefaultScoring()
	r := Align(a, b, s)
	out := FormatAlignment(a, b, r, s, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Query     1  ") {
		t.Errorf("query line: %q", lines[0])
	}
	if !strings.Contains(lines[0], "KK") || !strings.Contains(lines[2], "--") {
		t.Errorf("gap rendering wrong:\n%s", out)
	}
	if !strings.Contains(lines[1], "||||||||") {
		t.Errorf("midline wrong:\n%s", out)
	}
	// Wrapping.
	wrapped := FormatAlignment(a, b, r, s, 10)
	if strings.Count(wrapped, "Query") != 2 {
		t.Errorf("wrapping produced %d blocks", strings.Count(wrapped, "Query"))
	}
	// Empty result.
	if FormatAlignment(a, b, Result{}, s, 60) != "" {
		t.Error("empty result must render empty")
	}
}

func TestFormatAlignmentMidlineSymbols(t *testing.T) {
	// K vs R scores +2 (positive) → '+'; K vs W scores -3 → ' '.
	a := bio.ProtSeq{bio.Lys, bio.Lys, bio.Lys}
	b := bio.ProtSeq{bio.Lys, bio.Arg, bio.Trp}
	s := DefaultScoring()
	r := Result{AStart: 0, AEnd: 3, BStart: 0, BEnd: 3, Ops: []Op{OpMatch, OpMatch, OpMatch}}
	out := FormatAlignment(a, b, r, s, 60)
	mid := strings.Split(out, "\n")[1]
	if !strings.HasSuffix(mid, "|+ ") {
		t.Errorf("midline %q, want suffix \"|+ \"", mid)
	}
}
