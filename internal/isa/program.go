package isa

import (
	"fmt"
	"strings"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
)

// Program is an encoded query: one instruction per back-translated element,
// three per amino acid. This is what the host writes into the FPGA's
// distributed memory (flip-flops) before streaming the reference.
type Program []Instruction

// EncodeElements encodes a back-translated element sequence.
func EncodeElements(elems []backtrans.Element) (Program, error) {
	prog := make(Program, len(elems))
	for i, e := range elems {
		ins, err := Encode(e)
		if err != nil {
			return nil, fmt.Errorf("isa: element %d: %w", i, err)
		}
		prog[i] = ins
	}
	return prog, nil
}

// EncodeProtein back-translates and encodes a protein query in one step.
func EncodeProtein(p bio.ProtSeq) (Program, error) {
	return EncodeElements(backtrans.BackTranslate(p))
}

// MustEncodeProtein is EncodeProtein for queries known valid.
func MustEncodeProtein(p bio.ProtSeq) Program {
	prog, err := EncodeProtein(p)
	if err != nil {
		panic(err)
	}
	return prog
}

// Elements decodes the program back into its element sequence.
func (p Program) Elements() ([]backtrans.Element, error) {
	elems := make([]backtrans.Element, len(p))
	for i, ins := range p {
		e, err := Decode(ins)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		elems[i] = e
	}
	return elems, nil
}

// Matches evaluates instruction i of the program against the reference
// window starting at the instruction's position: ref is the current
// nucleotide, prev1/prev2 the one/two before it in the reference stream.
func (p Program) Matches(i int, ref, prev1, prev2 bio.Nucleotide) bool {
	return p[i].Matches(ref, prev1, prev2)
}

// Score computes the FabP alignment score of the program against the
// reference window w (len(w) must be >= len(p)); element i is compared with
// w[i] using w[i-1], w[i-2] as context. This is the per-instance golden
// model the hardware pop-counter result must equal.
func (p Program) Score(w bio.NucSeq) int {
	score := 0
	for i, ins := range p {
		var p1, p2 bio.Nucleotide
		if i >= 1 {
			p1 = w[i-1]
		}
		if i >= 2 {
			p2 = w[i-2]
		}
		if ins.Matches(w[i], p1, p2) {
			score++
		}
	}
	return score
}

// Pack serializes the program one instruction per byte (low 6 bits), the
// host-to-FPGA transfer format.
func (p Program) Pack() []byte {
	b := make([]byte, len(p))
	for i, ins := range p {
		b[i] = byte(ins)
	}
	return b
}

// UnpackProgram parses the byte serialization produced by Pack, validating
// every instruction.
func UnpackProgram(b []byte) (Program, error) {
	prog := make(Program, len(b))
	for i, v := range b {
		ins := Instruction(v)
		if _, err := Decode(ins); err != nil {
			return nil, fmt.Errorf("isa: byte %d: %w", i, err)
		}
		prog[i] = ins
	}
	return prog, nil
}

// Pad extends the program to targetElems elements by appending
// always-match D instructions, returning the padded program and the score
// bias the padding adds to every window. This is how a fixed FabP-N build
// serves shorter queries (§IV-A: "the length refers to the maximum
// sequence length, and FabP can work with any sequence smaller than
// that"): every padded element matches unconditionally, so scores shift by
// a constant and the host raises its threshold by the same amount.
func (p Program) Pad(targetElems int) (Program, int, error) {
	if targetElems < len(p) {
		return nil, 0, fmt.Errorf("isa: cannot pad %d elements down to %d", len(p), targetElems)
	}
	if targetElems == len(p) {
		return p, 0, nil
	}
	d := MustEncode(backtrans.AnyElement)
	out := make(Program, targetElems)
	copy(out, p)
	for i := len(p); i < targetElems; i++ {
		out[i] = d
	}
	return out, targetElems - len(p), nil
}

// Disassemble renders a human-readable instruction listing with one line
// per element: index, bit pattern, type and semantics. Used by the
// fabp-translate CLI.
func (p Program) Disassemble() string {
	var b strings.Builder
	for i, ins := range p {
		e, err := Decode(ins)
		desc := "<invalid>"
		if err == nil {
			switch e.Type {
			case backtrans.TypeI:
				desc = fmt.Sprintf("%-8s match %s exactly", e.Type, e.Nuc)
			case backtrans.TypeII:
				desc = fmt.Sprintf("%-8s match %s", e.Type, e.Cond)
			case backtrans.TypeIII:
				if e.Func == backtrans.FuncD {
					desc = fmt.Sprintf("%-8s match any (D)", e.Type)
				} else {
					desc = fmt.Sprintf("%-8s dependent %s (reads %s)", e.Type, e.Func, depName(e.Func.Dependency()))
				}
			}
		}
		fmt.Fprintf(&b, "%4d  %-11s %s\n", i, ins, desc)
	}
	return b.String()
}

func depName(d backtrans.DepSource) string {
	switch d {
	case backtrans.DepPrev1Hi:
		return "ref[i-1] bit1"
	case backtrans.DepPrev2Hi:
		return "ref[i-2] bit1"
	case backtrans.DepPrev2Lo:
		return "ref[i-2] bit0"
	}
	return "constant 0"
}
