package isa

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
)

// FuzzUnpackProgram: arbitrary bytes either fail cleanly or produce a
// program whose every instruction decodes and matches consistently.
func FuzzUnpackProgram(f *testing.F) {
	f.Add([]byte{0x00, 0x0C, 0x01})
	f.Add(MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Leu, bio.Arg, bio.Ser}).Pack())
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := UnpackProgram(data)
		if err != nil {
			return
		}
		// Every accepted instruction must decode, re-encode identically,
		// and agree with its element semantics on a probe input.
		for i, ins := range prog {
			e, err := Decode(ins)
			if err != nil {
				t.Fatalf("instruction %d accepted but does not decode", i)
			}
			re, err := Encode(e)
			if err != nil || re != ins {
				t.Fatalf("instruction %d not canonical: %v -> %v", i, ins, re)
			}
			for ref := bio.Nucleotide(0); ref < 4; ref++ {
				if ins.Matches(ref, bio.G, bio.C) != e.Matches(ref, bio.G, bio.C) {
					t.Fatalf("instruction %d semantics drift", i)
				}
			}
		}
		if len(prog) > 0 {
			var seed int64 = 1
			for _, b := range data {
				seed = seed*131 + int64(b)
			}
			w := bio.RandomNucSeq(rand.New(rand.NewSource(seed)), len(prog))
			s := prog.Score(w)
			if s < 0 || s > len(prog) {
				t.Fatalf("score %d out of range", s)
			}
		}
	})
}
