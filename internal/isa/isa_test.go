package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
)

// allElements enumerates every valid back-translated element.
func allElements() []backtrans.Element {
	var out []backtrans.Element
	for n := bio.Nucleotide(0); n < 4; n++ {
		out = append(out, backtrans.Exact(n))
	}
	for c := backtrans.Condition(0); c <= backtrans.CondAC; c++ {
		out = append(out, backtrans.Conditional(c))
	}
	for f := backtrans.Function(0); f <= backtrans.FuncD; f++ {
		out = append(out, backtrans.Dependent(f))
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, e := range allElements() {
		ins, err := Encode(e)
		if err != nil {
			t.Fatalf("Encode(%v): %v", e, err)
		}
		if ins >= 64 {
			t.Errorf("Encode(%v) = %#x exceeds 6 bits", e, uint8(ins))
		}
		got, err := Decode(ins)
		if err != nil {
			t.Fatalf("Decode(%v): %v", ins, err)
		}
		if got != e {
			t.Errorf("round trip %v -> %v -> %v", e, ins, got)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(backtrans.Element{Type: backtrans.ElementType(9)}); err == nil {
		t.Error("invalid element must fail")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode must panic on invalid element")
		}
	}()
	MustEncode(backtrans.Element{Type: backtrans.ElementType(9)})
}

func TestEncodingIsInjective(t *testing.T) {
	seen := map[Instruction]backtrans.Element{}
	for _, e := range allElements() {
		ins := MustEncode(e)
		if prev, dup := seen[ins]; dup {
			t.Errorf("instruction %v encodes both %v and %v", ins, prev, e)
		}
		seen[ins] = e
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []Instruction{
		1 << 6,          // out of range
		1 | 1<<3,        // Type III with Q[3]=1
		1 | 1<<4,        // Type III Stop with wrong dependency (10 not 01)
		1<<2 | 1<<4,     // Type I with nonzero cfg
		1<<1 | 1<<5,     // Type II with nonzero cfg
		1 | 1<<1 | 1<<2, // F:11 (D) with cfg 00 is VALID — asserted below
	}
	for _, ins := range cases[:5] {
		if _, err := Decode(ins); err == nil {
			t.Errorf("Decode(%#x) should fail", uint8(ins))
		}
	}
	if _, err := Decode(cases[5]); err != nil {
		t.Errorf("D instruction should decode: %v", err)
	}
}

func TestOpcodeLayout(t *testing.T) {
	// Type I: Q[0:1]=00; Type II: 01; Type III: Q[0]=1.
	if ins := MustEncode(backtrans.Exact(bio.A)); ins.Q(0) != 0 || ins.Q(1) != 0 {
		t.Errorf("Type I opcode wrong: %v", ins)
	}
	if ins := MustEncode(backtrans.Conditional(backtrans.CondUC)); ins.Q(0) != 0 || ins.Q(1) != 1 {
		t.Errorf("Type II opcode wrong: %v", ins)
	}
	if ins := MustEncode(backtrans.Dependent(backtrans.FuncLeu)); ins.Q(0) != 1 {
		t.Errorf("Type III opcode wrong: %v", ins)
	}
	// Field bit order: F:10 (Arg) must put 1 in Q[1], 0 in Q[2].
	arg := MustEncode(backtrans.Dependent(backtrans.FuncArg))
	if arg.Q(1) != 1 || arg.Q(2) != 0 || arg.Q(3) != 0 {
		t.Errorf("Arg function field wrong: %v", arg)
	}
	// Nucleotide G (10): Q[2]=1, Q[3]=0.
	g := MustEncode(backtrans.Exact(bio.G))
	if g.Q(2) != 1 || g.Q(3) != 0 {
		t.Errorf("Type I G field wrong: %v", g)
	}
}

func TestInstructionString(t *testing.T) {
	if s := MustEncode(backtrans.Exact(bio.U)).String(); s != "00-11-00" {
		t.Errorf("Type I string = %s", s)
	}
	if s := MustEncode(backtrans.Dependent(backtrans.FuncArg)).String(); s != "1-10-0-11" {
		t.Errorf("Arg string = %s", s)
	}
}

// TestMatchesAgainstElementSemantics is the central equivalence proof: the
// LUT-based instruction matcher must agree with the element-level golden
// semantics on every (element, ref, prev1, prev2) combination.
func TestMatchesAgainstElementSemantics(t *testing.T) {
	for _, e := range allElements() {
		ins := MustEncode(e)
		for ref := bio.Nucleotide(0); ref < 4; ref++ {
			for p1 := bio.Nucleotide(0); p1 < 4; p1++ {
				for p2 := bio.Nucleotide(0); p2 < 4; p2++ {
					want := e.Matches(ref, p1, p2)
					got := ins.Matches(ref, p1, p2)
					if got != want {
						t.Fatalf("element %v ref=%v p1=%v p2=%v: LUT=%v semantics=%v",
							e, ref, p1, p2, got, want)
					}
				}
			}
		}
	}
}

// TestFig5bColumns transcribes spot rows of the paper's comparator truth
// table (Fig. 5(b)) and checks them against the generated LUT.
func TestFig5bColumns(t *testing.T) {
	uc := MustEncode(backtrans.Conditional(backtrans.CondUC))
	// "01-U/C-A → 0, 01-U/C-C → 1, 01-U/C-G → 0, 01-U/C-U → 1"
	for ref, want := range map[bio.Nucleotide]bool{bio.A: false, bio.C: true, bio.G: false, bio.U: true} {
		if got := uc.Matches(ref, bio.A, bio.A); got != want {
			t.Errorf("U/C column ref=%v: got %v", ref, got)
		}
	}
	notG := MustEncode(backtrans.Conditional(backtrans.CondNotG))
	// "01-Ḡ-A → 1, 01-Ḡ-C → 1, 01-Ḡ-G → 0, 01-Ḡ-U → 1"
	for ref, want := range map[bio.Nucleotide]bool{bio.A: true, bio.C: true, bio.G: false, bio.U: true} {
		if got := notG.Matches(ref, bio.A, bio.A); got != want {
			t.Errorf("Ḡ column ref=%v: got %v", ref, got)
		}
	}
	stop := MustEncode(backtrans.Dependent(backtrans.FuncStop))
	// "1-00-0-*": S=0 rows (prev1 hi bit 0): 1,0,1,0.
	for ref, want := range map[bio.Nucleotide]bool{bio.A: true, bio.C: false, bio.G: true, bio.U: false} {
		if got := stop.Matches(ref, bio.A, bio.A); got != want {
			t.Errorf("Stop S=0 ref=%v: got %v", ref, got)
		}
	}
	// "1-00-1-*": S=1 rows: 1,0,0,0.
	for ref, want := range map[bio.Nucleotide]bool{bio.A: true, bio.C: false, bio.G: false, bio.U: false} {
		if got := stop.Matches(ref, bio.G, bio.A); got != want {
			t.Errorf("Stop S=1 ref=%v: got %v", ref, got)
		}
	}
	d := MustEncode(backtrans.Dependent(backtrans.FuncD))
	// "1-11-*-*": all ones.
	for ref := bio.Nucleotide(0); ref < 4; ref++ {
		if !d.Matches(ref, bio.U, bio.U) {
			t.Errorf("D column ref=%v must match", ref)
		}
	}
}

func TestLUTInitsAreStable(t *testing.T) {
	// The INIT masks are part of the hardware contract; pin them so an
	// accidental semantics change is caught loudly. Values are derived, not
	// magic: see buildCompareLUT/buildMuxLUT.
	if CompareLUTInit != buildCompareLUT() || MuxLUTInit != buildMuxLUT() {
		t.Fatal("INIT masks must be deterministic")
	}
	if CompareLUTInit == 0 || CompareLUTInit == ^uint64(0) {
		t.Error("comparator LUT must be non-trivial")
	}
	// The mux must output Q[3] when sel=00 regardless of reference bits.
	for _, q3 := range []uint8{0, 1} {
		idx := muxLUTIndex(q3, 1, 1, 1, 0, 0)
		if got := uint8(MuxLUTInit >> idx & 1); got != q3 {
			t.Errorf("mux sel=00 must pass Q[3]=%d, got %d", q3, got)
		}
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	p, _ := bio.ParseProtSeq("MFSR*LW")
	prog, err := EncodeProtein(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3*len(p) {
		t.Fatalf("program length %d", len(prog))
	}
	elems, err := prog.Elements()
	if err != nil {
		t.Fatal(err)
	}
	want := backtrans.BackTranslate(p)
	for i := range want {
		if elems[i] != want[i] {
			t.Errorf("element %d: %v != %v", i, elems[i], want[i])
		}
	}
}

func TestProgramPackUnpack(t *testing.T) {
	prog := MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Leu, bio.Arg})
	b := prog.Pack()
	got, err := UnpackProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("instruction %d mismatch", i)
		}
	}
	b[0] = 0xFF
	if _, err := UnpackProgram(b); err == nil {
		t.Error("corrupt byte must fail")
	}
}

// TestProgramScoreMatchesTemplateCount: the program score over a gene window
// equals the sum of per-codon template match counts.
func TestProgramScoreMatchesTemplateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p := bio.RandomProtSeq(rng, 20)
		w := bio.RandomNucSeq(rng, 3*len(p))
		prog := MustEncodeProtein(p)
		want := 0
		for i, a := range p {
			c := bio.Codon{w[3*i], w[3*i+1], w[3*i+2]}
			want += backtrans.TemplateOf(a).MatchCount(c)
		}
		if got := prog.Score(w); got != want {
			t.Fatalf("trial %d: score %d, template sum %d", trial, got, want)
		}
	}
}

func TestProgramScorePerfectOnOwnGene(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Avoid Ser (its dropped codons would not score 3) by filtering.
	for trial := 0; trial < 50; trial++ {
		p := bio.RandomProtSeq(rng, 40)
		for i := range p {
			if p[i] == bio.Ser {
				p[i] = bio.Thr
			}
		}
		gene := bio.EncodeGene(rng, p)
		prog := MustEncodeProtein(p)
		if got := prog.Score(gene); got != len(prog) {
			t.Fatalf("trial %d: perfect gene scores %d/%d", trial, got, len(prog))
		}
	}
}

// TestProgramPad: padding with D shifts every window score by exactly the
// pad count — the fixed-build variable-length-query mechanism.
func TestProgramPad(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := bio.RandomProtSeq(rng, 5)
	prog := MustEncodeProtein(p)
	padded, bias, err := prog.Pad(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(padded) != 24 || bias != 9 {
		t.Fatalf("padded len %d bias %d", len(padded), bias)
	}
	for trial := 0; trial < 50; trial++ {
		w := bio.RandomNucSeq(rng, 24)
		if padded.Score(w) != prog.Score(w[:15])+bias {
			t.Fatalf("padded score %d != base %d + bias %d",
				padded.Score(w), prog.Score(w[:15]), bias)
		}
	}
	// Identity and error cases.
	same, bias, err := prog.Pad(len(prog))
	if err != nil || bias != 0 || len(same) != len(prog) {
		t.Error("identity pad wrong")
	}
	if _, _, err := prog.Pad(3); err == nil {
		t.Error("shrinking must fail")
	}
}

func TestDisassemble(t *testing.T) {
	prog := MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Phe, bio.Arg})
	dis := prog.Disassemble()
	lines := strings.Split(strings.TrimSpace(dis), "\n")
	if len(lines) != 9 {
		t.Fatalf("expected 9 lines, got %d", len(lines))
	}
	if !strings.Contains(dis, "Type I") || !strings.Contains(dis, "Type II") ||
		!strings.Contains(dis, "Type III") {
		t.Error("disassembly must mention all element types")
	}
	if !strings.Contains(dis, "ref[i-2] bit0") {
		t.Error("Arg dependency must be described")
	}
}

func TestQuickScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := bio.RandomProtSeq(rng, 1+rng.Intn(30))
		w := bio.RandomNucSeq(rng, 3*len(p))
		s := MustEncodeProtein(p).Score(w)
		return s >= 0 && s <= 3*len(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
