// Package isa defines FabP's 6-bit query-element instruction set (§III-B of
// the paper) and the comparator truth tables derived from it (Fig. 5).
//
// Each back-translated query element is stored as a 6-bit instruction with
// three fields:
//
//	Q[0:1]  variable-length opcode: 00 = Type I, 01 = Type II, 1x = Type III
//	        (for Type III only Q[0] is opcode; Q[1] already belongs to the
//	        function field)
//	Q[2:3]  matching condition: the exact nucleotide (Type I) or the
//	        condition code (Type II); for Type III, Q[1:2] hold the function
//	        and Q[3] is forced to zero
//	Q[4:5]  configuration bits: select which earlier reference bit feeds the
//	        dependent comparison through the comparator's multiplexer LUT
//
// Two-bit fields are written most-significant bit first (F:10 means
// Q[1]=1, Q[2]=0), matching the paper's notation. The configuration-bit
// select values are an internal layout choice (the paper's worked example is
// internally inconsistent); we use the DepSource numbering of package
// backtrans: 00 = constant Q[3], 01 = Ref⁽ⁱ⁻¹⁾[1], 10 = Ref⁽ⁱ⁻²⁾[1],
// 11 = Ref⁽ⁱ⁻²⁾[0].
package isa

import (
	"fmt"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
)

// Instruction is one encoded query element. Bit i of the byte is the
// paper's Q[i]; only the low 6 bits are used.
type Instruction uint8

// InstructionBits is the width of an encoded query element.
const InstructionBits = 6

// Q returns instruction bit i (the paper's Q[i]).
func (ins Instruction) Q(i uint) uint8 { return uint8(ins>>i) & 1 }

// Opcode field values for Q[0:1] (Type III uses only Q[0]).
const (
	opTypeI  = 0 // Q[0]=0, Q[1]=0
	opTypeII = 1 // Q[0]=0, Q[1]=1
)

// Encode converts a back-translated element into its 6-bit instruction.
func Encode(e backtrans.Element) (Instruction, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	var ins Instruction
	switch e.Type {
	case backtrans.TypeI:
		// Q[0:1]=00, Q[2]=nuc high bit, Q[3]=nuc low bit, Q[4:5]=00.
		ins = Instruction(e.Nuc.Bit(1))<<2 | Instruction(e.Nuc.Bit(0))<<3
	case backtrans.TypeII:
		// Q[0:1]=01, Q[2]=cond high bit, Q[3]=cond low bit, Q[4:5]=00.
		ins = 1<<1 |
			Instruction(e.Cond>>1&1)<<2 | Instruction(e.Cond&1)<<3
	case backtrans.TypeIII:
		// Q[0]=1, Q[1]=func high bit, Q[2]=func low bit, Q[3]=0,
		// Q[4]=dep high bit, Q[5]=dep low bit.
		dep := e.Func.Dependency()
		ins = 1 |
			Instruction(e.Func>>1&1)<<1 | Instruction(e.Func&1)<<2 |
			Instruction(dep>>1&1)<<4 | Instruction(dep&1)<<5
	}
	return ins, nil
}

// MustEncode is Encode for elements known valid; it panics on error.
func MustEncode(e backtrans.Element) Instruction {
	ins, err := Encode(e)
	if err != nil {
		panic(err)
	}
	return ins
}

// Decode reconstructs the back-translated element an instruction encodes.
func Decode(ins Instruction) (backtrans.Element, error) {
	if ins >= 1<<InstructionBits {
		return backtrans.Element{}, fmt.Errorf("isa: instruction %#x exceeds 6 bits", uint8(ins))
	}
	if ins.Q(0) == 1 { // Type III
		f := backtrans.Function(ins.Q(1)<<1 | ins.Q(2))
		if ins.Q(3) != 0 {
			return backtrans.Element{}, fmt.Errorf("isa: Type III instruction %#x has Q[3]=1", uint8(ins))
		}
		wantDep := f.Dependency()
		gotDep := backtrans.DepSource(ins.Q(4)<<1 | ins.Q(5))
		if gotDep != wantDep {
			return backtrans.Element{}, fmt.Errorf(
				"isa: Type III instruction %#x selects dependency %d, function %v needs %d",
				uint8(ins), gotDep, f, wantDep)
		}
		return backtrans.Dependent(f), nil
	}
	if ins.Q(4) != 0 || ins.Q(5) != 0 {
		return backtrans.Element{}, fmt.Errorf("isa: Type I/II instruction %#x has nonzero configuration bits", uint8(ins))
	}
	field := ins.Q(2)<<1 | ins.Q(3)
	if ins.Q(1) == opTypeII {
		return backtrans.Conditional(backtrans.Condition(field)), nil
	}
	return backtrans.Exact(bio.Nucleotide(field)), nil
}

// String renders the instruction as the paper writes them: opcode, matching
// field and configuration bits separated by dashes, e.g. "01-00-00".
func (ins Instruction) String() string {
	b := func(i uint) byte { return '0' + ins.Q(i) }
	if ins.Q(0) == 1 {
		return fmt.Sprintf("1-%c%c-%c-%c%c", b(1), b(2), b(3), b(4), b(5))
	}
	return fmt.Sprintf("%c%c-%c%c-%c%c", b(0), b(1), b(2), b(3), b(4), b(5))
}

// DepSelect returns the dependency source the configuration bits select.
func (ins Instruction) DepSelect() backtrans.DepSource {
	return backtrans.DepSource(ins.Q(4)<<1 | ins.Q(5))
}

// Matches evaluates the instruction against reference nucleotide ref with
// the two preceding reference nucleotides, by table lookup in the very same
// LUT masks the hardware is programmed with. This is the software model of
// the two-LUT comparator cell.
func (ins Instruction) Matches(ref, prev1, prev2 bio.Nucleotide) bool {
	x := muxOutput(ins, prev1, prev2)
	idx := compareLUTIndex(ins.Q(0), ins.Q(1), ins.Q(2), x, ref)
	return CompareLUTInit>>idx&1 == 1
}

// muxOutput computes the comparator's first LUT: a 4:1 multiplexer selecting
// the dependent bit X from {Q[3], Ref⁽ⁱ⁻¹⁾[1], Ref⁽ⁱ⁻²⁾[1], Ref⁽ⁱ⁻²⁾[0]}.
func muxOutput(ins Instruction, prev1, prev2 bio.Nucleotide) uint8 {
	idx := muxLUTIndex(ins.Q(3), prev1.Bit(1), prev2.Bit(1), prev2.Bit(0), ins.Q(4), ins.Q(5))
	return uint8(MuxLUTInit >> idx & 1)
}
