package isa

import "fabp/internal/bio"

// This file derives the two 64-bit LUT INIT masks of the FabP comparator
// cell (Fig. 5). The masks are computed once at init from the instruction
// semantics, so the software matcher, the generated netlist and the emitted
// Verilog all share one source of truth.
//
// LUT INIT convention (matching Xilinx LUT6 primitives): for inputs
// I0..I5, output = INIT[I5<<5 | I4<<4 | I3<<3 | I2<<2 | I1<<1 | I0].

// Comparator LUT input assignment (LUT #2 in Fig. 5(a)):
//
//	I0 = Ref[0] (current reference nucleotide, low bit)
//	I1 = Ref[1] (current reference nucleotide, high bit)
//	I2 = X      (multiplexer output: Q[3] or a previous reference bit)
//	I3 = Q[2]
//	I4 = Q[1]
//	I5 = Q[0]
func compareLUTIndex(q0, q1, q2, x uint8, ref bio.Nucleotide) uint {
	return uint(ref.Bit(0)) |
		uint(ref.Bit(1))<<1 |
		uint(x)<<2 |
		uint(q2)<<3 |
		uint(q1)<<4 |
		uint(q0)<<5
}

// Multiplexer LUT input assignment (LUT #1 in Fig. 5(a)):
//
//	I0 = Q[3] (constant path; zero for Type III encodings)
//	I1 = Ref⁽ⁱ⁻¹⁾[1]
//	I2 = Ref⁽ⁱ⁻²⁾[1]
//	I3 = Ref⁽ⁱ⁻²⁾[0]
//	I4 = Q[4] (select, high bit)
//	I5 = Q[5] (select, low bit)
func muxLUTIndex(q3, r1hi, r2hi, r2lo, q4, q5 uint8) uint {
	return uint(q3) |
		uint(r1hi)<<1 |
		uint(r2hi)<<2 |
		uint(r2lo)<<3 |
		uint(q4)<<4 |
		uint(q5)<<5
}

// compareSemantics is the combinational function the comparator LUT must
// realize: given the instruction bits Q[0..2], the muxed bit X (which stands
// in for Q[3] on Types I/II and for the selected earlier reference bit on
// Type III), and the current reference nucleotide, decide the match bit.
// This is a literal transcription of the Fig. 5(b) columns.
func compareSemantics(q0, q1, q2, x uint8, ref bio.Nucleotide) bool {
	if q0 == 1 {
		// Type III: function in Q[1:2], dependent bit in X.
		switch q1<<1 | q2 {
		case 0: // F:00 Stop — prev hi bit 0 (A) → {A,G}; 1 (G) → {A}.
			if x == 0 {
				return ref == bio.A || ref == bio.G
			}
			return ref == bio.A
		case 1: // F:01 Leu — first base C → any; U → {A,G}.
			if x == 0 {
				return true
			}
			return ref == bio.A || ref == bio.G
		case 2: // F:10 Arg — first base A → {A,G}; C → any.
			if x == 0 {
				return ref == bio.A || ref == bio.G
			}
			return true
		default: // F:11 D — unconditional match.
			return true
		}
	}
	field := q2<<1 | x // Q[2] high, Q[3]≡X low
	if q1 == 1 {
		// Type II conditions: U/C=00, A/G=01, Ḡ=10, A/C=11.
		switch field {
		case 0:
			return ref == bio.U || ref == bio.C
		case 1:
			return ref == bio.A || ref == bio.G
		case 2:
			return ref != bio.G
		default:
			return ref == bio.A || ref == bio.C
		}
	}
	// Type I: exact nucleotide match.
	return ref == bio.Nucleotide(field)
}

// buildCompareLUT enumerates all 64 comparator-LUT input combinations.
func buildCompareLUT() uint64 {
	var init uint64
	for q0 := uint8(0); q0 < 2; q0++ {
		for q1 := uint8(0); q1 < 2; q1++ {
			for q2 := uint8(0); q2 < 2; q2++ {
				for x := uint8(0); x < 2; x++ {
					for ref := bio.Nucleotide(0); ref < 4; ref++ {
						if compareSemantics(q0, q1, q2, x, ref) {
							init |= 1 << compareLUTIndex(q0, q1, q2, x, ref)
						}
					}
				}
			}
		}
	}
	return init
}

// buildMuxLUT enumerates all 64 multiplexer-LUT input combinations.
func buildMuxLUT() uint64 {
	var init uint64
	for i := uint(0); i < 64; i++ {
		q3 := uint8(i) & 1
		r1hi := uint8(i>>1) & 1
		r2hi := uint8(i>>2) & 1
		r2lo := uint8(i>>3) & 1
		sel := (uint8(i>>4)&1)<<1 | uint8(i>>5)&1 // Q[4] high, Q[5] low
		var out uint8
		switch sel {
		case 0:
			out = q3
		case 1:
			out = r1hi
		case 2:
			out = r2hi
		default:
			out = r2lo
		}
		if out == 1 {
			init |= 1 << i
		}
	}
	return init
}

// CompareLUTInit and MuxLUTInit are the 64-bit INIT masks programmed into
// the two LUT6 primitives of every comparator cell.
var (
	CompareLUTInit = buildCompareLUT()
	MuxLUTInit     = buildMuxLUT()
)
