package stats

import (
	"math"
	"testing"

	"fabp/internal/bio"
)

func TestRobinsonFrequenciesNormalized(t *testing.T) {
	var sum float64
	for a := bio.AminoAcid(0); a < bio.NumAminoAcids; a++ {
		f := RobinsonFrequency(a)
		if f <= 0 {
			t.Errorf("frequency of %v must be positive", a)
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.001 {
		t.Errorf("frequencies sum to %.5f", sum)
	}
	if RobinsonFrequency(bio.Stop) != 0 || RobinsonFrequency(99) != 0 {
		t.Error("non-coding frequencies must be zero")
	}
}

// TestLambdaMatchesNCBI: the computed ungapped BLOSUM62 lambda must land on
// the published NCBI value 0.3176 (±0.002).
func TestLambdaMatchesNCBI(t *testing.T) {
	p := UngappedBLOSUM62()
	if math.Abs(p.Lambda-0.3176) > 0.002 {
		t.Errorf("lambda = %.4f, NCBI publishes 0.3176", p.Lambda)
	}
	if math.Abs(p.H-0.40) > 0.03 {
		t.Errorf("H = %.3f, NCBI publishes ≈0.40", p.H)
	}
	t.Logf("computed lambda=%.4f H=%.3f", p.Lambda, p.H)
}

func TestSolveLambdaRejectsBadSystems(t *testing.T) {
	// All-positive matrix: expected score positive.
	if _, err := SolveLambda(func(a, b bio.AminoAcid) int { return 1 }, RobinsonFrequency); err == nil {
		t.Error("positive-expectation system must fail")
	}
	// All-negative: no positive score.
	if _, err := SolveLambda(func(a, b bio.AminoAcid) int { return -1 }, RobinsonFrequency); err == nil {
		t.Error("no-positive-score system must fail")
	}
}

func TestBitScoreMonotone(t *testing.T) {
	p := UngappedBLOSUM62()
	if p.BitScore(50) <= p.BitScore(40) {
		t.Error("bit score must grow with raw score")
	}
	// Known anchor: raw 40 under ungapped BLOSUM62 ≈ 21.2 bits.
	if bs := p.BitScore(40); math.Abs(bs-21.2) > 0.5 {
		t.Errorf("BitScore(40) = %.1f, expected ≈21.2", bs)
	}
}

func TestEValueBehaviour(t *testing.T) {
	p := UngappedBLOSUM62()
	// Bigger database → bigger E-value.
	small := p.EValue(60, 100, 1_000_000)
	large := p.EValue(60, 100, 100_000_000)
	if large <= small {
		t.Error("E-value must scale with database size")
	}
	// Higher score → smaller E-value.
	if p.EValue(80, 100, 1_000_000) >= small {
		t.Error("E-value must fall with score")
	}
	// A strong hit in a modest database is significant.
	if e := p.EValue(100, 100, 1_000_000); e > 1e-6 {
		t.Errorf("E(100) = %g should be tiny", e)
	}
}

func TestEffectiveLengths(t *testing.T) {
	p := UngappedBLOSUM62()
	m, n := p.EffectiveLengths(100, 1_000_000)
	if m >= 100 || n >= 1_000_000 {
		t.Error("length adjustment must shrink both")
	}
	if m < 1 || n < 1 {
		t.Error("effective lengths floored at 1")
	}
	// Degenerate inputs.
	if m, n := p.EffectiveLengths(0, 0); m != 1 || n != 1 {
		t.Error("zero lengths floor to 1")
	}
	// Tiny query: adjustment must not eat everything.
	m, _ = p.EffectiveLengths(10, 1_000_000)
	if m < 1 {
		t.Error("tiny query floored")
	}
}

func TestGappedParams(t *testing.T) {
	g := Gapped11x1()
	u := UngappedBLOSUM62()
	if g.Lambda >= u.Lambda {
		t.Error("gapped lambda must be below ungapped")
	}
	if g.K >= u.K {
		t.Error("gapped K must be below ungapped")
	}
}
