// Package stats implements Karlin-Altschul statistics for local alignment
// scores: the scale parameter lambda (computed from the scoring matrix and
// background residue frequencies by solving the characteristic equation),
// bit scores, E-values and BLAST's effective-length adjustment. The TBLASTN
// baseline reports its HSPs with these, as NCBI's tool does.
package stats

import (
	"fmt"
	"math"

	"fabp/internal/bio"
)

// KarlinParams are the statistical parameters of a scoring system.
type KarlinParams struct {
	// Lambda is the scale of the score distribution (nats per score unit).
	Lambda float64
	// K is the search-space size correction constant.
	K float64
	// H is the relative entropy (nats per aligned pair).
	H float64
}

// robinsonFrequencies are the standard background amino-acid frequencies
// (Robinson & Robinson 1991), the set NCBI BLAST uses for protein Karlin
// statistics, indexed by our dense AminoAcid values (Stop = 0).
var robinsonFrequencies = [bio.NumResidues]float64{
	bio.Ala: 0.07805, bio.Cys: 0.01925, bio.Asp: 0.05364, bio.Glu: 0.06295,
	bio.Phe: 0.03856, bio.Gly: 0.07377, bio.His: 0.02199, bio.Ile: 0.05142,
	bio.Lys: 0.05744, bio.Leu: 0.09019, bio.Met: 0.02243, bio.Asn: 0.04487,
	bio.Pro: 0.05203, bio.Gln: 0.04264, bio.Arg: 0.05129, bio.Ser: 0.07120,
	bio.Thr: 0.05841, bio.Val: 0.06441, bio.Trp: 0.01330, bio.Tyr: 0.03216,
}

// RobinsonFrequency returns the standard background frequency of residue a.
func RobinsonFrequency(a bio.AminoAcid) float64 {
	if a >= bio.NumResidues {
		return 0
	}
	return robinsonFrequencies[a]
}

// SolveLambda finds the unique positive root of
//
//	sum_ij p_i p_j exp(lambda * s_ij) = 1
//
// for a substitution function with negative expected score and at least one
// positive score — the Karlin-Altschul characteristic equation — by
// bisection (the left side is monotonically increasing in lambda past its
// minimum, and <1 at 0+).
func SolveLambda(score func(a, b bio.AminoAcid) int, freq func(bio.AminoAcid) float64) (float64, error) {
	phi := func(lambda float64) float64 {
		sum := 0.0
		for a := bio.AminoAcid(0); a < bio.NumAminoAcids; a++ {
			fa := freq(a)
			if fa == 0 {
				continue
			}
			for b := bio.AminoAcid(0); b < bio.NumAminoAcids; b++ {
				fb := freq(b)
				if fb == 0 {
					continue
				}
				sum += fa * fb * math.Exp(lambda*float64(score(a, b)))
			}
		}
		return sum
	}
	// Sanity: expected score must be negative, else no positive root.
	exp := 0.0
	hasPositive := false
	for a := bio.AminoAcid(0); a < bio.NumAminoAcids; a++ {
		for b := bio.AminoAcid(0); b < bio.NumAminoAcids; b++ {
			s := score(a, b)
			exp += freq(a) * freq(b) * float64(s)
			if s > 0 {
				hasPositive = true
			}
		}
	}
	if exp >= 0 || !hasPositive {
		return 0, fmt.Errorf("stats: scoring system needs negative expectation and a positive score (E=%.4f)", exp)
	}
	// Bracket the root: phi(0)=1 exactly; move right until phi>1.
	lo, hi := 1e-6, 0.05
	for phi(hi) < 1 {
		hi *= 2
		if hi > 100 {
			return 0, fmt.Errorf("stats: lambda root not bracketed")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if phi(mid) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// relativeEntropy computes H = lambda * sum q_ij s_ij where q_ij are the
// target frequencies implied by lambda.
func relativeEntropy(lambda float64, score func(a, b bio.AminoAcid) int, freq func(bio.AminoAcid) float64) float64 {
	h := 0.0
	for a := bio.AminoAcid(0); a < bio.NumAminoAcids; a++ {
		for b := bio.AminoAcid(0); b < bio.NumAminoAcids; b++ {
			s := float64(score(a, b))
			q := freq(a) * freq(b) * math.Exp(lambda*s)
			h += q * lambda * s
		}
	}
	return h
}

// UngappedBLOSUM62 returns the ungapped Karlin parameters for BLOSUM62 with
// Robinson background frequencies. Lambda and H are computed from first
// principles (the published NCBI values are λ≈0.3176, H≈0.40); K uses the
// published constant 0.134 (its series expansion is out of scope and it
// only shifts E-values by a constant factor).
func UngappedBLOSUM62() KarlinParams {
	lambda, err := SolveLambda(bio.Blosum62, RobinsonFrequency)
	if err != nil {
		// BLOSUM62 is a valid scoring system; this cannot happen.
		panic(err)
	}
	return KarlinParams{
		Lambda: lambda,
		K:      0.134,
		H:      relativeEntropy(lambda, bio.Blosum62, RobinsonFrequency),
	}
}

// Gapped11x1 returns NCBI's published parameters for BLOSUM62 with
// open=11/extend=1 affine gaps (gapped lambda cannot be derived
// analytically; BLAST uses simulation-fitted values).
func Gapped11x1() KarlinParams {
	return KarlinParams{Lambda: 0.267, K: 0.041, H: 0.14}
}

// BitScore converts a raw score to bits: (lambda·S − ln K) / ln 2.
func (p KarlinParams) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance HSPs with score >= raw in a
// search of the given effective space: K·m·n·exp(−lambda·S).
func (p KarlinParams) EValue(raw, queryLen, dbLen int) float64 {
	m, n := p.EffectiveLengths(queryLen, dbLen)
	return p.K * float64(m) * float64(n) * math.Exp(-p.Lambda*float64(raw))
}

// EffectiveLengths applies BLAST's length adjustment: alignments cannot
// start within ~l = ln(K·m·n)/H of a sequence end, so both lengths shrink
// by l (iterated to a fixed point, floored at 1).
func (p KarlinParams) EffectiveLengths(queryLen, dbLen int) (m, n int) {
	if queryLen <= 0 || dbLen <= 0 || p.H <= 0 {
		return max1(queryLen), max1(dbLen)
	}
	l := 0
	for i := 0; i < 20; i++ {
		em := float64(max1(queryLen - l))
		en := float64(max1(dbLen - l))
		next := int(math.Log(p.K*em*en) / p.H)
		if next < 0 {
			next = 0
		}
		if next == l {
			break
		}
		l = next
	}
	return max1(queryLen - l), max1(dbLen - l)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
