// Package faultinject is a deterministic, seed-driven fault-injection
// registry for the scan pipeline: named hook sites inside the shard
// scheduler, the chunked stream reader, the database loader and the plane
// cache consult an installed plan and — when a rule fires — inject a
// latency stall, an error, or both. With no plan installed every hook is
// a single atomic load, so production scans pay nothing.
//
// Determinism is the point: a rule's firing decision is a pure function
// of (seed, site, key, call/attempt ordinal), never of wall-clock time or
// goroutine interleaving, so a chaos run is reproducible from its seed
// alone and a test can compute exactly which shards were hit
// (FiredKeys). The key is the site's unit of work — the shard index for
// scheduler sites, the chunk ordinal for stream reads — which is what
// lets sticky rules pin failures to specific shards across retries.
//
// Environment knobs (see EnableFromEnv, used by fabp-serve and the CI
// chaos steps):
//
//	FABP_FAULTS     plan spec, e.g. "sched.shard.dispatch:p=0.02,delay=5ms"
//	FABP_FAULT_SEED decimal seed (default 1)
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabp/internal/telemetry"
)

// The named hook sites wired into the pipeline. A plan may name any
// string, but these are the sites that exist today.
const (
	// SiteShardDispatch fires at the start of every resilient shard
	// attempt (internal/sched.ProduceResilient): the per-shard latency
	// stall and shard-failure injection point.
	SiteShardDispatch = "sched.shard.dispatch"
	// SiteShardMerge fires as each shard's results enter the ordered
	// merge (sched.GatherCtx / sched.StreamOrderedCtx).
	SiteShardMerge = "sched.shard.merge"
	// SiteStreamRead fires before every chunk read of the bounded-memory
	// stream scan (scanChunks): the reference-reader I/O error point.
	SiteStreamRead = "stream.read"
	// SiteDBSection fires at the start of every database file load
	// (internal/db.Read / Inspect): the transient DB read error point.
	SiteDBSection = "db.section.load"
	// SiteCacheEvict fires on plane-cache lookups (bitpar.PlaneCache.Get)
	// and evicts the requested entry first — a deterministic eviction
	// storm forcing the scan to repack.
	SiteCacheEvict = "bitpar.cache.evict"
)

// ErrInjected is the sentinel every injected error matches via errors.Is
// (unless the rule supplies its own Err).
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedError is the default injected error: it names the site, the
// key and the call ordinal that fired, matches ErrInjected, and is
// transient (Temporary() == true) so the retry layer classifies it as
// retryable.
type InjectedError struct {
	Site string
	Key  uint64
	Call uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s fired (key %d, call %d)", e.Site, e.Key, e.Call)
}

// Is makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Temporary marks the fault retryable (see internal/retry.Retryable).
func (e *InjectedError) Temporary() bool { return true }

// Rule configures one site's injection behavior. Triggers compose with
// OR: a call fires when any of Prob / Nth / Every selects it. What a fire
// does: stall for Delay (context-aware), then fail with Err (or a
// transient *InjectedError when Fail is set and Err is nil). A rule with
// only Delay set stalls without failing — the straggler model.
type Rule struct {
	// Prob fires each call with this probability, decided by hashing
	// (seed, site, key, call) — deterministic for a given seed.
	Prob float64
	// Sticky changes Prob's decision input to (seed, site, key) alone:
	// a selected key fires on EVERY call (every retry attempt), so
	// retries against it always exhaust — the permanent-failure model.
	Sticky bool
	// Nth fires exactly the Nth call to the site (1-based, per site).
	Nth uint64
	// Every fires every Every-th call to the site.
	Every uint64
	// Limit caps total fires at the site (0 = unlimited).
	Limit uint64
	// KeyLimit caps fires per key (0 = unlimited): KeyLimit <= the retry
	// budget guarantees every faulted shard eventually succeeds — the
	// transient-failure model.
	KeyLimit uint64
	// Delay stalls the caller before the verdict; the sleep honors the
	// hook's context, so canceled scans are not pinned by injected lag.
	Delay time.Duration
	// Fail injects an error after the stall: Err when non-nil, else a
	// transient *InjectedError. A non-nil Err implies Fail.
	Fail bool
	Err  error
}

// Plan maps site names to rules.
type Plan map[string]Rule

// siteState is one site's runtime state: the immutable rule plus firing
// bookkeeping.
type siteState struct {
	rule  Rule
	calls atomic.Uint64

	mu        sync.Mutex
	fired     uint64
	firedKeys map[uint64]uint64
}

type registry struct {
	seed  uint64
	sites map[string]*siteState
}

var (
	// enabled is the hook fast path: one atomic load when no plan is
	// installed.
	enabled atomic.Bool
	regMu   sync.RWMutex
	reg     *registry

	// firedTotal is the process-wide faultinject.fired telemetry counter.
	firedTotal = telemetry.Default().Counter("faultinject.fired")
)

// Enable installs a plan under a seed, replacing any active plan.
func Enable(seed uint64, plan Plan) {
	r := &registry{seed: seed, sites: make(map[string]*siteState, len(plan))}
	for name, rule := range plan {
		r.sites[name] = &siteState{rule: rule, firedKeys: make(map[uint64]uint64)}
	}
	regMu.Lock()
	reg = r
	regMu.Unlock()
	enabled.Store(len(plan) > 0)
}

// Disable removes the active plan; every hook returns to its one-load
// fast path.
func Disable() {
	enabled.Store(false)
	regMu.Lock()
	reg = nil
	regMu.Unlock()
}

// Enabled reports whether a plan is active.
func Enabled() bool { return enabled.Load() }

// Check is the hook every instrumented site calls. key identifies the
// site's unit of work (shard index, chunk ordinal; 0 when there is no
// natural key). It returns nil when injection is off, the site has no
// rule, or the rule does not fire; a firing rule stalls for its Delay
// (aborted early by ctx, returning ctx.Err()) and then returns the
// injected error, or nil for stall-only rules.
func Check(ctx context.Context, site string, key uint64) error {
	if !enabled.Load() {
		return nil
	}
	regMu.RLock()
	r := reg
	regMu.RUnlock()
	if r == nil {
		return nil
	}
	s := r.sites[site]
	if s == nil {
		return nil
	}
	n := s.calls.Add(1)
	rule := s.rule
	fire := false
	switch {
	case rule.Prob > 0 && rule.Sticky:
		fire = hashFloat(r.seed, site, key, 0) < rule.Prob
	case rule.Prob > 0:
		fire = hashFloat(r.seed, site, key, n) < rule.Prob
	}
	if rule.Nth > 0 && n == rule.Nth {
		fire = true
	}
	if rule.Every > 0 && n%rule.Every == 0 {
		fire = true
	}
	if !fire {
		return nil
	}
	// Budget the fire under the site lock (fires are rare; calls that do
	// not fire never take it).
	s.mu.Lock()
	if rule.Limit > 0 && s.fired >= rule.Limit {
		s.mu.Unlock()
		return nil
	}
	if rule.KeyLimit > 0 && s.firedKeys[key] >= rule.KeyLimit {
		s.mu.Unlock()
		return nil
	}
	s.fired++
	s.firedKeys[key]++
	s.mu.Unlock()
	firedTotal.Inc()

	if rule.Delay > 0 {
		t := time.NewTimer(rule.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if rule.Err != nil {
		return rule.Err
	}
	if rule.Fail {
		return &InjectedError{Site: site, Key: key, Call: n}
	}
	return nil
}

// Fired returns how many times the named site has fired under the
// current plan.
func Fired(site string) uint64 {
	regMu.RLock()
	r := reg
	regMu.RUnlock()
	if r == nil || r.sites[site] == nil {
		return 0
	}
	s := r.sites[site]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// FiredKeys returns the sorted distinct keys at which the named site has
// fired — for sticky rules, exactly the units of work pinned to fail.
func FiredKeys(site string) []uint64 {
	regMu.RLock()
	r := reg
	regMu.RUnlock()
	if r == nil || r.sites[site] == nil {
		return nil
	}
	s := r.sites[site]
	s.mu.Lock()
	keys := make([]uint64, 0, len(s.firedKeys))
	for k := range s.firedKeys {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Calls returns how many times the named site's hook has been consulted
// under the current plan.
func Calls(site string) uint64 {
	regMu.RLock()
	r := reg
	regMu.RUnlock()
	if r == nil || r.sites[site] == nil {
		return 0
	}
	return r.sites[site].calls.Load()
}

// hashFloat maps (seed, site, key, n) to [0, 1) via splitmix64 over an
// FNV-1a site hash — cheap, stateless, and identical across runs.
func hashFloat(seed uint64, site string, key, n uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	x := mix(seed ^ h)
	x = mix(x ^ key)
	x = mix(x ^ n)
	return float64(x>>11) / float64(uint64(1)<<53)
}

func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// EnableFromEnv installs a plan from FABP_FAULTS / FABP_FAULT_SEED. The
// spec is semicolon-separated sites, each "site:field=value,...":
//
//	FABP_FAULTS="sched.shard.dispatch:p=0.02,delay=5ms;stream.read:nth=3,fail"
//	FABP_FAULT_SEED=42
//
// Fields: p (probability), sticky, nth, every, limit, keylimit, delay
// (Go duration), fail. A rule naming neither delay nor fail defaults to
// fail. Returns (false, nil) when FABP_FAULTS is unset or empty.
func EnableFromEnv() (bool, error) {
	spec := strings.TrimSpace(os.Getenv("FABP_FAULTS"))
	if spec == "" {
		return false, nil
	}
	seed := uint64(1)
	if s := strings.TrimSpace(os.Getenv("FABP_FAULT_SEED")); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return false, fmt.Errorf("faultinject: bad FABP_FAULT_SEED %q: %v", s, err)
		}
		seed = v
	}
	plan, err := ParsePlan(spec)
	if err != nil {
		return false, err
	}
	Enable(seed, plan)
	return true, nil
}

// ParsePlan parses the FABP_FAULTS spec format (see EnableFromEnv).
func ParsePlan(spec string) (Plan, error) {
	plan := Plan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, fields, ok := strings.Cut(entry, ":")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: bad entry %q (want site:field=value,...)", entry)
		}
		var rule Rule
		sawAction := false
		for _, f := range strings.Split(fields, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			name, val, _ := strings.Cut(f, "=")
			var err error
			switch name {
			case "p":
				rule.Prob, err = strconv.ParseFloat(val, 64)
			case "sticky":
				rule.Sticky = true
			case "nth":
				rule.Nth, err = strconv.ParseUint(val, 10, 64)
			case "every":
				rule.Every, err = strconv.ParseUint(val, 10, 64)
			case "limit":
				rule.Limit, err = strconv.ParseUint(val, 10, 64)
			case "keylimit":
				rule.KeyLimit, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				rule.Delay, err = time.ParseDuration(val)
				sawAction = true
			case "fail":
				rule.Fail = true
				sawAction = true
			default:
				err = fmt.Errorf("unknown field %q", name)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: field %q: %v", site, f, err)
			}
		}
		if !sawAction {
			rule.Fail = true
		}
		plan[site] = rule
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("faultinject: empty plan spec")
	}
	return plan, nil
}
