package faultinject

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// withPlan installs a plan for the test and guarantees the registry is
// clean afterwards (fault injection is process state).
func withPlan(t *testing.T, seed uint64, plan Plan) {
	t.Helper()
	Enable(seed, plan)
	t.Cleanup(Disable)
}

// TestChaosCheckDisabledIsFree: with no plan the hook returns nil and
// records nothing — the production fast path.
func TestChaosCheckDisabledIsFree(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true with no plan")
	}
	for i := uint64(0); i < 100; i++ {
		if err := Check(context.Background(), SiteShardDispatch, i); err != nil {
			t.Fatalf("disabled Check returned %v", err)
		}
	}
	if Fired(SiteShardDispatch) != 0 || Calls(SiteShardDispatch) != 0 {
		t.Fatal("disabled hooks recorded state")
	}
}

// TestChaosDeterministicReplay: the same seed and plan fire on exactly
// the same (key, call) schedule across two full replays — the property
// every chaos test in the repo leans on.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() (fired uint64, keys []uint64) {
		withPlan(t, 99, Plan{SiteShardDispatch: {Prob: 0.2, Fail: true}})
		for call := 0; call < 50; call++ {
			for key := uint64(0); key < 20; key++ {
				_ = Check(context.Background(), SiteShardDispatch, key)
			}
		}
		return Fired(SiteShardDispatch), FiredKeys(SiteShardDispatch)
	}
	f1, k1 := run()
	f2, k2 := run()
	if f1 == 0 {
		t.Fatal("p=0.2 over 1000 calls fired zero times; hash is broken")
	}
	if f1 != f2 || !reflect.DeepEqual(k1, k2) {
		t.Fatalf("replay diverged: %d fires %v vs %d fires %v", f1, k1, f2, k2)
	}
}

// TestChaosStickyKeysFailEveryCall: a sticky rule's selected keys fire on
// every call (the permanent-failure model), and unselected keys never do.
func TestChaosStickyKeysFailEveryCall(t *testing.T) {
	withPlan(t, 7, Plan{SiteShardDispatch: {Prob: 0.3, Sticky: true, Fail: true}})
	const keys, calls = 30, 5
	outcome := make(map[uint64]int)
	for c := 0; c < calls; c++ {
		for k := uint64(0); k < keys; k++ {
			if Check(context.Background(), SiteShardDispatch, k) != nil {
				outcome[k]++
			}
		}
	}
	if len(outcome) == 0 || len(outcome) == keys {
		t.Fatalf("sticky p=0.3 selected %d/%d keys; want a proper subset", len(outcome), keys)
	}
	for k, n := range outcome {
		if n != calls {
			t.Fatalf("sticky key %d fired %d/%d calls; sticky must fire every call", k, n, calls)
		}
	}
	if got := FiredKeys(SiteShardDispatch); len(got) != len(outcome) {
		t.Fatalf("FiredKeys reports %d keys, observed %d", len(got), len(outcome))
	}
}

// TestChaosNthAndEvery: ordinal triggers fire exactly where they say.
func TestChaosNthAndEvery(t *testing.T) {
	withPlan(t, 1, Plan{SiteStreamRead: {Nth: 3, Fail: true}, SiteDBSection: {Every: 4, Fail: true}})
	for call := 1; call <= 12; call++ {
		gotNth := Check(context.Background(), SiteStreamRead, 0) != nil
		if wantNth := call == 3; gotNth != wantNth {
			t.Fatalf("nth=3: call %d fired=%v", call, gotNth)
		}
		gotEvery := Check(context.Background(), SiteDBSection, 0) != nil
		if wantEvery := call%4 == 0; gotEvery != wantEvery {
			t.Fatalf("every=4: call %d fired=%v", call, gotEvery)
		}
	}
}

// TestChaosKeyLimitBudgetsPerKey: keylimit caps fires per key — the
// transient-failure model where KeyLimit <= the retry budget guarantees
// the shard eventually succeeds.
func TestChaosKeyLimitBudgetsPerKey(t *testing.T) {
	withPlan(t, 1, Plan{SiteShardDispatch: {Every: 1, KeyLimit: 2, Fail: true}})
	for k := uint64(0); k < 3; k++ {
		for call := 1; call <= 5; call++ {
			fired := Check(context.Background(), SiteShardDispatch, k) != nil
			if want := call <= 2; fired != want {
				t.Fatalf("key %d call %d fired=%v, want %v", k, call, fired, want)
			}
		}
	}
	withPlan(t, 1, Plan{SiteShardDispatch: {Every: 1, Limit: 3, Fail: true}})
	total := 0
	for call := 0; call < 10; call++ {
		if Check(context.Background(), SiteShardDispatch, uint64(call)) != nil {
			total++
		}
	}
	if total != 3 {
		t.Fatalf("limit=3 fired %d times", total)
	}
}

// TestChaosInjectedErrorShape: injected errors match ErrInjected, carry
// the site/key, and are transient for the retry layer.
func TestChaosInjectedErrorShape(t *testing.T) {
	withPlan(t, 1, Plan{SiteStreamRead: {Every: 1, Fail: true}})
	err := Check(context.Background(), SiteStreamRead, 42)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not match ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteStreamRead || ie.Key != 42 {
		t.Fatalf("injected error %#v lacks site/key", err)
	}
	if !ie.Temporary() {
		t.Fatal("injected error is not Temporary")
	}

	custom := errors.New("my own fault")
	withPlan(t, 1, Plan{SiteStreamRead: {Every: 1, Err: custom}})
	if err := Check(context.Background(), SiteStreamRead, 0); !errors.Is(err, custom) {
		t.Fatalf("rule.Err not honored: %v", err)
	}
}

// TestChaosDelayHonorsContext: an injected stall aborts when the hook's
// context is canceled — injected lag cannot pin a canceled scan.
func TestChaosDelayHonorsContext(t *testing.T) {
	withPlan(t, 1, Plan{SiteShardDispatch: {Every: 1, Delay: 10 * time.Second}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	err := Check(ctx, SiteShardDispatch, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled Check under canceled ctx = %v", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("canceled stall took %v", el)
	}

	// A stall-only rule (no Fail, no Err) delays but does not error.
	withPlan(t, 1, Plan{SiteShardDispatch: {Every: 1, Delay: time.Millisecond}})
	if err := Check(context.Background(), SiteShardDispatch, 0); err != nil {
		t.Fatalf("stall-only rule returned %v", err)
	}
}

// TestChaosParsePlan: the FABP_FAULTS spec round-trips every field, and
// malformed specs are rejected with the offending entry named.
func TestChaosParsePlan(t *testing.T) {
	plan, err := ParsePlan("sched.shard.dispatch:p=0.02,delay=5ms; stream.read:nth=3,fail ;db.section.load:sticky,p=0.5,limit=7,keylimit=2,every=10")
	if err != nil {
		t.Fatal(err)
	}
	if r := plan[SiteShardDispatch]; r.Prob != 0.02 || r.Delay != 5*time.Millisecond || r.Fail {
		t.Fatalf("dispatch rule %+v", r)
	}
	if r := plan[SiteStreamRead]; r.Nth != 3 || !r.Fail {
		t.Fatalf("stream rule %+v", r)
	}
	if r := plan[SiteDBSection]; !r.Sticky || r.Prob != 0.5 || r.Limit != 7 || r.KeyLimit != 2 || r.Every != 10 || !r.Fail {
		t.Fatalf("db rule %+v (no explicit action must default to fail)", r)
	}
	for _, bad := range []string{"", "no-colon-here", "site:p=notafloat", "site:frobnicate=1", "site:delay=5parsecs"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", bad)
		}
	}
}

// TestChaosEnableFromEnv: the env knobs arm the registry; an unset env is
// a silent no-op; a bad seed is an error.
func TestChaosEnableFromEnv(t *testing.T) {
	t.Setenv("FABP_FAULTS", "")
	if on, err := EnableFromEnv(); on || err != nil {
		t.Fatalf("empty FABP_FAULTS: on=%v err=%v", on, err)
	}

	t.Setenv("FABP_FAULTS", "stream.read:nth=1,fail")
	t.Setenv("FABP_FAULT_SEED", "42")
	on, err := EnableFromEnv()
	if !on || err != nil {
		t.Fatalf("EnableFromEnv: on=%v err=%v", on, err)
	}
	t.Cleanup(Disable)
	if err := Check(context.Background(), SiteStreamRead, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed-from-env hook returned %v", err)
	}

	t.Setenv("FABP_FAULT_SEED", "not-a-number")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad FABP_FAULT_SEED accepted")
	}
}
