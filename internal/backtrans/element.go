// Package backtrans implements FabP's degenerate protein back-translation:
// each amino acid expands to a 3-element codon template whose elements are
// classified by how they must be compared against a reference nucleotide
// (§III-A of the paper):
//
//   - Type I   — exact match against one nucleotide,
//   - Type II  — match against a context-free set (U/C, A/G, not-G, A/C),
//   - Type III — the matching set depends on an earlier reference nucleotide
//     of the same codon (functions Stop, Leu, Arg) or is the
//     unconditional any-match D.
//
// The element semantics here are the *hardware* semantics: a Type III
// element inspects only the single reference bit its configuration selects,
// exactly as the FPGA comparator mux does, so a software score computed from
// these elements is bit-identical to the accelerator's.
package backtrans

import (
	"fmt"

	"fabp/internal/bio"
)

// ElementType classifies a back-translated element (paper §III-A).
type ElementType uint8

const (
	// TypeI elements are uniquely back-translated and need an exact match.
	TypeI ElementType = iota
	// TypeII elements match a fixed set of nucleotides, independent of
	// context.
	TypeII
	// TypeIII elements match a set selected by an earlier reference
	// nucleotide of the same codon (or match anything, for D).
	TypeIII
)

// String names the element type as in the paper.
func (t ElementType) String() string {
	switch t {
	case TypeI:
		return "Type I"
	case TypeII:
		return "Type II"
	case TypeIII:
		return "Type III"
	}
	return "Type ?"
}

// Condition is a Type II matching condition. The numeric values are the
// 2-bit matching-condition field of the FabP instruction (Fig. 5(b) legend:
// U/C=00, A/G=01, Ḡ=10, A/C=11).
type Condition uint8

const (
	// CondUC matches U or C (pyrimidines).
	CondUC Condition = 0
	// CondAG matches A or G (purines).
	CondAG Condition = 1
	// CondNotG matches anything except G (paper notation Ḡ; IUPAC H).
	CondNotG Condition = 2
	// CondAC matches A or C.
	CondAC Condition = 3
)

// Matches reports whether the condition accepts reference nucleotide n.
func (c Condition) Matches(n bio.Nucleotide) bool {
	switch c {
	case CondUC:
		return n == bio.U || n == bio.C
	case CondAG:
		return n == bio.A || n == bio.G
	case CondNotG:
		return n != bio.G
	case CondAC:
		return n == bio.A || n == bio.C
	}
	return false
}

// String renders the condition in the paper's notation.
func (c Condition) String() string {
	switch c {
	case CondUC:
		return "U/C"
	case CondAG:
		return "A/G"
	case CondNotG:
		return "Ḡ"
	case CondAC:
		return "A/C"
	}
	return "?"
}

// IUPAC returns the IUPAC degenerate-base letter for the condition.
func (c Condition) IUPAC() byte {
	switch c {
	case CondUC:
		return 'Y'
	case CondAG:
		return 'R'
	case CondNotG:
		return 'H'
	case CondAC:
		return 'M'
	}
	return '?'
}

// Function is a Type III dependent-comparison function. The numeric values
// are the 2-bit function field of the instruction (F:00 Stop, F:01 Leu,
// F:10 Arg, F:11 D).
type Function uint8

const (
	// FuncStop handles the third element of the Stop templates
	// (UAA/UAG/UGA): if the previous reference nucleotide's high bit is 0
	// (A) the element matches A or G, otherwise (G) only A.
	FuncStop Function = 0
	// FuncLeu handles the third element of Leu (CUN/UUR): if the
	// first-position reference nucleotide's high bit is 0 (C) anything
	// matches, otherwise (U) only A or G.
	FuncLeu Function = 1
	// FuncArg handles the third element of Arg (CGN/AGR): if the
	// first-position reference nucleotide's low bit is 1 (C) anything
	// matches, otherwise (A) only A or G.
	FuncArg Function = 2
	// FuncD matches any nucleotide (the paper folds the context-free D set
	// into the Type III opcode to save instruction bits).
	FuncD Function = 3
)

// String renders the function in the paper's notation.
func (f Function) String() string {
	switch f {
	case FuncStop:
		return "F:00"
	case FuncLeu:
		return "F:01"
	case FuncArg:
		return "F:10"
	case FuncD:
		return "D"
	}
	return "F:??"
}

// DepSource identifies which earlier reference bit a Type III element feeds
// into its comparison — the signal the instruction's configuration bits
// select through the comparator's multiplexer LUT (Fig. 5(a)).
type DepSource uint8

const (
	// DepNone selects the constant Q[3]=0 instruction bit (used by D).
	DepNone DepSource = 0
	// DepPrev1Hi selects bit 1 of the reference nucleotide one position
	// back (codon position 2; distinguishes A from G). Used by FuncStop.
	DepPrev1Hi DepSource = 1
	// DepPrev2Hi selects bit 1 of the reference nucleotide two positions
	// back (codon position 1; distinguishes C from U). Used by FuncLeu.
	DepPrev2Hi DepSource = 2
	// DepPrev2Lo selects bit 0 of the reference nucleotide two positions
	// back (codon position 1; distinguishes A from C). Used by FuncArg.
	DepPrev2Lo DepSource = 3
)

// Dependency returns the reference bit the function inspects.
func (f Function) Dependency() DepSource {
	switch f {
	case FuncStop:
		return DepPrev1Hi
	case FuncLeu:
		return DepPrev2Hi
	case FuncArg:
		return DepPrev2Lo
	}
	return DepNone
}

// SelectBit extracts the dependent bit S from the two preceding reference
// nucleotides, mirroring the hardware multiplexer.
func (d DepSource) SelectBit(prev1, prev2 bio.Nucleotide) uint8 {
	switch d {
	case DepPrev1Hi:
		return prev1.Bit(1)
	case DepPrev2Hi:
		return prev2.Bit(1)
	case DepPrev2Lo:
		return prev2.Bit(0)
	}
	return 0
}

// matchesWithS evaluates a Type III function given the selected bit S and
// the current reference nucleotide — the comparator LUT's dependent columns
// in Fig. 5(b).
func (f Function) matchesWithS(s uint8, n bio.Nucleotide) bool {
	switch f {
	case FuncStop:
		if s == 0 { // previous was A (or C; pos-2 comparator rejects those)
			return n == bio.A || n == bio.G
		}
		return n == bio.A // previous was G (or U)
	case FuncLeu:
		if s == 0 { // first position C → CUN, any third base
			return true
		}
		return n == bio.A || n == bio.G // first position U → UUR
	case FuncArg:
		if s == 0 { // first position A → AGR
			return n == bio.A || n == bio.G
		}
		return true // first position C → CGN
	case FuncD:
		return true
	}
	return false
}

// Element is one back-translated query element: a degenerate nucleotide
// position with the comparison semantics FabP implements in two LUTs.
type Element struct {
	// Type selects which of the following fields is meaningful.
	Type ElementType
	// Nuc is the exact-match nucleotide (Type I only).
	Nuc bio.Nucleotide
	// Cond is the context-free matching condition (Type II only).
	Cond Condition
	// Func is the dependent-comparison function (Type III only).
	Func Function
}

// Exact builds a Type I element.
func Exact(n bio.Nucleotide) Element { return Element{Type: TypeI, Nuc: n} }

// Conditional builds a Type II element.
func Conditional(c Condition) Element { return Element{Type: TypeII, Cond: c} }

// Dependent builds a Type III element.
func Dependent(f Function) Element { return Element{Type: TypeIII, Func: f} }

// AnyElement is the unconditional-match element D.
var AnyElement = Dependent(FuncD)

// Matches evaluates the element against reference nucleotide ref with the
// two preceding reference nucleotides prev1 (one back) and prev2 (two back).
// This is the software golden model of the comparator cell: for Type III it
// inspects only the single selected bit, exactly like the hardware.
func (e Element) Matches(ref, prev1, prev2 bio.Nucleotide) bool {
	switch e.Type {
	case TypeI:
		return ref == e.Nuc
	case TypeII:
		return e.Cond.Matches(ref)
	case TypeIII:
		s := e.Func.Dependency().SelectBit(prev1, prev2)
		return e.Func.matchesWithS(s, ref)
	}
	return false
}

// String renders the element in the paper's notation (a bare letter for
// Type I, the condition for Type II, the function tag for Type III).
func (e Element) String() string {
	switch e.Type {
	case TypeI:
		return e.Nuc.String()
	case TypeII:
		return "(" + e.Cond.String() + ")"
	case TypeIII:
		if e.Func == FuncD {
			return "D"
		}
		return "(" + e.Func.String() + ")"
	}
	return "?"
}

// IUPAC returns the IUPAC degenerate-base letter that over-approximates the
// element's matching set (for Type III the union over both contexts).
func (e Element) IUPAC() byte {
	switch e.Type {
	case TypeI:
		return e.Nuc.Letter()
	case TypeII:
		return e.Cond.IUPAC()
	case TypeIII:
		if e.Func == FuncStop {
			return 'R' // {A,G} ∪ {A}
		}
		return 'N' // Leu/Arg/D unions cover all four bases
	}
	return '?'
}

// Validate reports an error if the element's fields are inconsistent.
func (e Element) Validate() error {
	switch e.Type {
	case TypeI:
		if e.Nuc > bio.U {
			return fmt.Errorf("backtrans: Type I element with invalid nucleotide %d", e.Nuc)
		}
	case TypeII:
		if e.Cond > CondAC {
			return fmt.Errorf("backtrans: Type II element with invalid condition %d", e.Cond)
		}
	case TypeIII:
		if e.Func > FuncD {
			return fmt.Errorf("backtrans: Type III element with invalid function %d", e.Func)
		}
	default:
		return fmt.Errorf("backtrans: invalid element type %d", e.Type)
	}
	return nil
}
