package backtrans

import (
	"testing"

	"fabp/internal/bio"
)

func TestConditionMatches(t *testing.T) {
	cases := []struct {
		c    Condition
		want map[bio.Nucleotide]bool
	}{
		{CondUC, map[bio.Nucleotide]bool{bio.A: false, bio.C: true, bio.G: false, bio.U: true}},
		{CondAG, map[bio.Nucleotide]bool{bio.A: true, bio.C: false, bio.G: true, bio.U: false}},
		{CondNotG, map[bio.Nucleotide]bool{bio.A: true, bio.C: true, bio.G: false, bio.U: true}},
		{CondAC, map[bio.Nucleotide]bool{bio.A: true, bio.C: true, bio.G: false, bio.U: false}},
	}
	for _, tc := range cases {
		for n, want := range tc.want {
			if got := tc.c.Matches(n); got != want {
				t.Errorf("%v.Matches(%v) = %v, want %v", tc.c, n, got, want)
			}
		}
	}
	if Condition(9).Matches(bio.A) {
		t.Error("invalid condition must not match")
	}
}

func TestConditionStrings(t *testing.T) {
	if CondUC.String() != "U/C" || CondNotG.String() != "Ḡ" {
		t.Errorf("condition strings wrong: %q %q", CondUC, CondNotG)
	}
	iupac := map[Condition]byte{CondUC: 'Y', CondAG: 'R', CondNotG: 'H', CondAC: 'M'}
	for c, want := range iupac {
		if c.IUPAC() != want {
			t.Errorf("%v.IUPAC() = %c, want %c", c, c.IUPAC(), want)
		}
	}
	if Condition(9).String() != "?" || Condition(9).IUPAC() != '?' {
		t.Error("invalid condition rendering")
	}
}

func TestFunctionDependencies(t *testing.T) {
	deps := map[Function]DepSource{
		FuncStop: DepPrev1Hi,
		FuncLeu:  DepPrev2Hi,
		FuncArg:  DepPrev2Lo,
		FuncD:    DepNone,
	}
	for f, want := range deps {
		if got := f.Dependency(); got != want {
			t.Errorf("%v.Dependency() = %v, want %v", f, got, want)
		}
	}
}

func TestDepSourceSelectBit(t *testing.T) {
	// prev1=G (bits 10), prev2=C (bits 01).
	prev1, prev2 := bio.G, bio.C
	if DepPrev1Hi.SelectBit(prev1, prev2) != 1 {
		t.Error("DepPrev1Hi should read prev1 bit1 = 1 for G")
	}
	if DepPrev2Hi.SelectBit(prev1, prev2) != 0 {
		t.Error("DepPrev2Hi should read prev2 bit1 = 0 for C")
	}
	if DepPrev2Lo.SelectBit(prev1, prev2) != 1 {
		t.Error("DepPrev2Lo should read prev2 bit0 = 1 for C")
	}
	if DepNone.SelectBit(prev1, prev2) != 0 {
		t.Error("DepNone must select constant 0")
	}
}

// TestStopFunctionSemantics checks the Fig. 5(b) "Stop" column:
// S=0 → {A,G}, S=1 → {A}.
func TestStopFunctionSemantics(t *testing.T) {
	e := Dependent(FuncStop)
	// prev1 = A (S=0): third base of UAA/UAG.
	for n, want := range map[bio.Nucleotide]bool{bio.A: true, bio.G: true, bio.C: false, bio.U: false} {
		if got := e.Matches(n, bio.A, bio.U); got != want {
			t.Errorf("Stop with prev1=A, ref=%v: got %v want %v", n, got, want)
		}
	}
	// prev1 = G (S=1): third base of UGA only.
	for n, want := range map[bio.Nucleotide]bool{bio.A: true, bio.G: false, bio.C: false, bio.U: false} {
		if got := e.Matches(n, bio.G, bio.U); got != want {
			t.Errorf("Stop with prev1=G, ref=%v: got %v want %v", n, got, want)
		}
	}
}

// TestLeuFunctionSemantics checks Fig. 5(b) "Leu": first base C → any,
// first base U → {A,G}.
func TestLeuFunctionSemantics(t *testing.T) {
	e := Dependent(FuncLeu)
	for n := bio.Nucleotide(0); n < 4; n++ {
		if !e.Matches(n, bio.U, bio.C) {
			t.Errorf("Leu with prev2=C must match %v", n)
		}
	}
	for n, want := range map[bio.Nucleotide]bool{bio.A: true, bio.G: true, bio.C: false, bio.U: false} {
		if got := e.Matches(n, bio.U, bio.U); got != want {
			t.Errorf("Leu with prev2=U, ref=%v: got %v want %v", n, got, want)
		}
	}
}

// TestArgFunctionSemantics checks Fig. 5(b) "Arg": first base C → any,
// first base A → {A,G}.
func TestArgFunctionSemantics(t *testing.T) {
	e := Dependent(FuncArg)
	for n := bio.Nucleotide(0); n < 4; n++ {
		if !e.Matches(n, bio.G, bio.C) {
			t.Errorf("Arg with prev2=C must match %v", n)
		}
	}
	for n, want := range map[bio.Nucleotide]bool{bio.A: true, bio.G: true, bio.C: false, bio.U: false} {
		if got := e.Matches(n, bio.G, bio.A); got != want {
			t.Errorf("Arg with prev2=A, ref=%v: got %v want %v", n, got, want)
		}
	}
}

func TestDMatchesEverything(t *testing.T) {
	for ref := bio.Nucleotide(0); ref < 4; ref++ {
		for p1 := bio.Nucleotide(0); p1 < 4; p1++ {
			for p2 := bio.Nucleotide(0); p2 < 4; p2++ {
				if !AnyElement.Matches(ref, p1, p2) {
					t.Fatalf("D must match ref=%v p1=%v p2=%v", ref, p1, p2)
				}
			}
		}
	}
}

func TestTypeIMatches(t *testing.T) {
	e := Exact(bio.G)
	for n := bio.Nucleotide(0); n < 4; n++ {
		if got := e.Matches(n, bio.A, bio.A); got != (n == bio.G) {
			t.Errorf("Exact(G).Matches(%v) = %v", n, got)
		}
	}
}

func TestElementStrings(t *testing.T) {
	if Exact(bio.A).String() != "A" {
		t.Error("Type I string")
	}
	if Conditional(CondUC).String() != "(U/C)" {
		t.Error("Type II string")
	}
	if Dependent(FuncStop).String() != "(F:00)" {
		t.Error("Type III string")
	}
	if AnyElement.String() != "D" {
		t.Error("D string")
	}
	if got := Dependent(FuncStop).IUPAC(); got != 'R' {
		t.Errorf("Stop IUPAC = %c", got)
	}
	if got := Dependent(FuncLeu).IUPAC(); got != 'N' {
		t.Errorf("Leu IUPAC = %c", got)
	}
	if got := Exact(bio.C).IUPAC(); got != 'C' {
		t.Errorf("Type I IUPAC = %c", got)
	}
	if got := Conditional(CondAG).IUPAC(); got != 'R' {
		t.Errorf("Type II IUPAC = %c", got)
	}
}

func TestElementTypeString(t *testing.T) {
	if TypeI.String() != "Type I" || TypeII.String() != "Type II" ||
		TypeIII.String() != "Type III" || ElementType(9).String() != "Type ?" {
		t.Error("ElementType strings wrong")
	}
}

func TestElementValidate(t *testing.T) {
	good := []Element{Exact(bio.U), Conditional(CondAC), Dependent(FuncArg), AnyElement}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", e, err)
		}
	}
	bad := []Element{
		{Type: TypeI, Nuc: 7},
		{Type: TypeII, Cond: 9},
		{Type: TypeIII, Func: 9},
		{Type: ElementType(9)},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", e)
		}
	}
}
