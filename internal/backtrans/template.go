package backtrans

import (
	"strings"

	"fabp/internal/bio"
)

// Template is the 3-element degenerate codon representation of one amino
// acid — the unit the paper calls "the back-translated codon".
type Template [3]Element

// String renders the template in the paper's notation, e.g. "UU(U/C)".
func (t Template) String() string {
	var b strings.Builder
	for _, e := range t {
		b.WriteString(e.String())
	}
	return b.String()
}

// IUPAC renders the template as three IUPAC degenerate-base letters.
func (t Template) IUPAC() string {
	return string([]byte{t[0].IUPAC(), t[1].IUPAC(), t[2].IUPAC()})
}

// MatchesCodon reports whether the template accepts codon c, evaluating each
// element with the hardware comparison semantics. Positions 0 and 1 have no
// in-codon predecessors that matter (no template puts Type III there), so
// the codon's own earlier bases serve as context for position 2.
func (t Template) MatchesCodon(c bio.Codon) bool {
	return t.MatchCount(c) == 3
}

// MatchCount returns how many of the three elements match codon c — the
// contribution such a codon window adds to a FabP alignment score.
func (t Template) MatchCount(c bio.Codon) int {
	n := 0
	// Element i sees prev1 = c[i-1] and prev2 = c[i-2]; out-of-codon context
	// defaults to A (irrelevant: templates only use Type III at position 2).
	var prev1, prev2 bio.Nucleotide
	for i := 0; i < 3; i++ {
		prev2 = bio.A
		prev1 = bio.A
		if i >= 1 {
			prev1 = c[i-1]
		}
		if i >= 2 {
			prev2 = c[i-2]
		}
		if t[i].Matches(c[i], prev1, prev2) {
			n++
		}
	}
	return n
}

// templates maps each amino acid (and Stop) to its degenerate codon template
// exactly as derived in the paper (§III-A/B):
//
//	Met AUG | Trp UGG                              — fully Type I
//	Phe UU(U/C), Tyr UA(U/C), His CA(U/C), ...     — third element Type II
//	Ile AU(Ḡ)                                      — not-G condition
//	Ala GCD, Gly GGD, Pro CCD, Thr ACD, Val GUD    — four-fold degenerate
//	Ser UCD                                        — paper drops AGU/AGC
//	Leu (U/C)U(F:01), Arg (A/C)G(F:10)             — six-fold, dependent
//	Stop U(A/G)(F:00)                              — three codons, dependent
var templates = [bio.NumResidues]Template{
	bio.Ala:  {Exact(bio.G), Exact(bio.C), AnyElement},
	bio.Cys:  {Exact(bio.U), Exact(bio.G), Conditional(CondUC)},
	bio.Asp:  {Exact(bio.G), Exact(bio.A), Conditional(CondUC)},
	bio.Glu:  {Exact(bio.G), Exact(bio.A), Conditional(CondAG)},
	bio.Phe:  {Exact(bio.U), Exact(bio.U), Conditional(CondUC)},
	bio.Gly:  {Exact(bio.G), Exact(bio.G), AnyElement},
	bio.His:  {Exact(bio.C), Exact(bio.A), Conditional(CondUC)},
	bio.Ile:  {Exact(bio.A), Exact(bio.U), Conditional(CondNotG)},
	bio.Lys:  {Exact(bio.A), Exact(bio.A), Conditional(CondAG)},
	bio.Leu:  {Conditional(CondUC), Exact(bio.U), Dependent(FuncLeu)},
	bio.Met:  {Exact(bio.A), Exact(bio.U), Exact(bio.G)},
	bio.Asn:  {Exact(bio.A), Exact(bio.A), Conditional(CondUC)},
	bio.Pro:  {Exact(bio.C), Exact(bio.C), AnyElement},
	bio.Gln:  {Exact(bio.C), Exact(bio.A), Conditional(CondAG)},
	bio.Arg:  {Conditional(CondAC), Exact(bio.G), Dependent(FuncArg)},
	bio.Ser:  {Exact(bio.U), Exact(bio.C), AnyElement},
	bio.Thr:  {Exact(bio.A), Exact(bio.C), AnyElement},
	bio.Val:  {Exact(bio.G), Exact(bio.U), AnyElement},
	bio.Trp:  {Exact(bio.U), Exact(bio.G), Exact(bio.G)},
	bio.Tyr:  {Exact(bio.U), Exact(bio.A), Conditional(CondUC)},
	bio.Stop: {Exact(bio.U), Conditional(CondAG), Dependent(FuncStop)},
}

// TemplateOf returns the degenerate codon template for amino acid a.
func TemplateOf(a bio.AminoAcid) Template {
	if a >= bio.NumResidues {
		return Template{}
	}
	return templates[a]
}

// serineDropped lists the serine codons the paper's UCD template cannot
// represent. Experiments use this to quantify the sensitivity cost.
var serineDropped = []bio.Codon{
	{bio.A, bio.G, bio.U}, // AGU
	{bio.A, bio.G, bio.C}, // AGC
}

// SerineDroppedCodons returns the AGU/AGC serine codons the paper-faithful
// template misses. The returned slice is a copy.
func SerineDroppedCodons() []bio.Codon {
	out := make([]bio.Codon, len(serineDropped))
	copy(out, serineDropped)
	return out
}

// BackTranslate expands protein p into its degenerate element sequence,
// three elements per residue — the query representation FabP encodes and
// loads into the FPGA.
func BackTranslate(p bio.ProtSeq) []Element {
	out := make([]Element, 0, 3*len(p))
	for _, a := range p {
		t := TemplateOf(a)
		out = append(out, t[0], t[1], t[2])
	}
	return out
}

// Render formats a back-translated element sequence codon-by-codon in the
// paper's notation, e.g. "AUG-UU(U/C)-UCD".
func Render(elems []Element) string {
	var b strings.Builder
	for i, e := range elems {
		if i > 0 && i%3 == 0 {
			b.WriteByte('-')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// CodonAcceptance describes how a template relates to the actual genetic
// code: which codons it accepts and whether each truly encodes the amino
// acid. Sound templates never accept a wrong codon; complete ones accept
// every right codon.
type CodonAcceptance struct {
	Accepted      []bio.Codon // codons the template matches
	Missed        []bio.Codon // codons of the amino acid the template rejects
	FalseAccepted []bio.Codon // accepted codons that encode something else
}

// Acceptance enumerates all 64 codons against the template of a.
func Acceptance(a bio.AminoAcid) CodonAcceptance {
	t := TemplateOf(a)
	var acc CodonAcceptance
	for i := 0; i < bio.NumCodons; i++ {
		c := bio.CodonFromIndex(i)
		matches := t.MatchesCodon(c)
		encodes := c.Translate() == a
		switch {
		case matches && encodes:
			acc.Accepted = append(acc.Accepted, c)
		case matches && !encodes:
			acc.Accepted = append(acc.Accepted, c)
			acc.FalseAccepted = append(acc.FalseAccepted, c)
		case !matches && encodes:
			acc.Missed = append(acc.Missed, c)
		}
	}
	return acc
}
