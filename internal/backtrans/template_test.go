package backtrans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fabp/internal/bio"
)

// TestTemplateCompleteness: every codon of amino acid a must be accepted by
// a's template — except the two serine codons the paper's encoding drops.
func TestTemplateCompleteness(t *testing.T) {
	dropped := map[int]bool{}
	for _, c := range SerineDroppedCodons() {
		dropped[c.Index()] = true
	}
	for a := bio.AminoAcid(0); a < bio.NumResidues; a++ {
		tpl := TemplateOf(a)
		for _, c := range a.Codons() {
			if dropped[c.Index()] {
				if tpl.MatchesCodon(c) {
					t.Errorf("paper template for Ser unexpectedly accepts %v", c)
				}
				continue
			}
			if !tpl.MatchesCodon(c) {
				t.Errorf("template %v for %v rejects its own codon %v", tpl, a, c)
			}
		}
	}
}

// TestTemplateSoundness: a template must never accept a codon that encodes a
// different amino acid — the degenerate representation is exact, not lossy.
func TestTemplateSoundness(t *testing.T) {
	for a := bio.AminoAcid(0); a < bio.NumResidues; a++ {
		acc := Acceptance(a)
		if len(acc.FalseAccepted) != 0 {
			t.Errorf("template for %v falsely accepts %v", a, acc.FalseAccepted)
		}
	}
}

// TestAcceptanceCounts: the only incompleteness in the entire code is Ser.
func TestAcceptanceCounts(t *testing.T) {
	for a := bio.AminoAcid(0); a < bio.NumResidues; a++ {
		acc := Acceptance(a)
		wantMissed := 0
		if a == bio.Ser {
			wantMissed = 2
		}
		if len(acc.Missed) != wantMissed {
			t.Errorf("%v: missed %v, want %d codons missed", a, acc.Missed, wantMissed)
		}
		if len(acc.Accepted) != a.Degeneracy()-wantMissed {
			t.Errorf("%v: accepted %d codons, want %d", a, len(acc.Accepted), a.Degeneracy()-wantMissed)
		}
	}
}

func TestSerineDroppedCodonsAreSerine(t *testing.T) {
	cs := SerineDroppedCodons()
	if len(cs) != 2 {
		t.Fatalf("expected 2 dropped codons, got %d", len(cs))
	}
	for _, c := range cs {
		if c.Translate() != bio.Ser {
			t.Errorf("%v is not a serine codon", c)
		}
	}
	// Mutating the returned slice must not affect the package copy.
	cs[0] = bio.StartCodon
	if SerineDroppedCodons()[0] == bio.StartCodon {
		t.Error("SerineDroppedCodons returns shared storage")
	}
}

// TestPaperWorkedExample reproduces the §III-B example:
// Met-Phe-Ser-Arg-Stop → AUG-UU(U/C)-UCD-(A/C)G(F:10)-U(A/G)(F:00)
// (the paper prints "UUD" for Ser, an evident typo for UCD).
func TestPaperWorkedExample(t *testing.T) {
	p, err := bio.ParseProtSeq("MFSR*")
	if err != nil {
		t.Fatal(err)
	}
	got := Render(BackTranslate(p))
	want := "AUG-UU(U/C)-UCD-(A/C)G(F:10)-U(A/G)(F:00)"
	if got != want {
		t.Errorf("worked example:\n got %s\nwant %s", got, want)
	}
}

func TestTemplateNotation(t *testing.T) {
	cases := map[bio.AminoAcid]string{
		bio.Met:  "AUG",
		bio.Trp:  "UGG",
		bio.Phe:  "UU(U/C)",
		bio.Ile:  "AU(Ḡ)",
		bio.Ser:  "UCD",
		bio.Leu:  "(U/C)U(F:01)",
		bio.Arg:  "(A/C)G(F:10)",
		bio.Stop: "U(A/G)(F:00)",
		bio.Val:  "GUD",
	}
	for a, want := range cases {
		if got := TemplateOf(a).String(); got != want {
			t.Errorf("TemplateOf(%v) = %s, want %s", a, got, want)
		}
	}
}

func TestTemplateIUPAC(t *testing.T) {
	cases := map[bio.AminoAcid]string{
		bio.Met:  "AUG",
		bio.Phe:  "UUY",
		bio.Ile:  "AUH",
		bio.Ser:  "UCN",
		bio.Leu:  "YUN",
		bio.Arg:  "MGN",
		bio.Stop: "URR",
	}
	for a, want := range cases {
		if got := TemplateOf(a).IUPAC(); got != want {
			t.Errorf("IUPAC(%v) = %s, want %s", a, got, want)
		}
	}
}

func TestTemplateOfOutOfRange(t *testing.T) {
	if TemplateOf(bio.AminoAcid(99)) != (Template{}) {
		t.Error("out-of-range template must be zero")
	}
}

func TestBackTranslateLength(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := bio.RandomProtSeq(rng, int(n%100))
		return len(BackTranslate(p)) == 3*len(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBackTranslateAcceptsOwnGene: a gene encoded with any synonymous codon
// choice must be fully matched by its protein's back-translation (modulo the
// dropped Ser codons), element-by-element.
func TestBackTranslateAcceptsOwnGene(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := bio.RandomProtSeq(rng, 30)
		gene := bio.EncodeGene(rng, p)
		elems := BackTranslate(p)
		mismatches := 0
		for i, e := range elems {
			var p1, p2 bio.Nucleotide
			if i >= 1 {
				p1 = gene[i-1]
			}
			if i >= 2 {
				p2 = gene[i-2]
			}
			if !e.Matches(gene[i], p1, p2) {
				mismatches++
			}
		}
		// Only dropped Ser codons may mismatch, and they differ from UCD in
		// positions 1 and 2 (AGU vs UCU): at most 2 mismatching elements per
		// serine.
		maxAllowed := 0
		for ci, c := range gene.Codons() {
			if p[ci] == bio.Ser && (c[0] == bio.A) {
				maxAllowed += 2
			}
		}
		if mismatches > maxAllowed {
			t.Fatalf("trial %d: %d mismatches, allowed %d (protein %s)",
				trial, mismatches, maxAllowed, p)
		}
	}
}

func TestMatchCountRange(t *testing.T) {
	f := func(aa, codon uint8) bool {
		a := bio.AminoAcid(aa % bio.NumResidues)
		c := bio.CodonFromIndex(int(codon) % bio.NumCodons)
		n := TemplateOf(a).MatchCount(c)
		return n >= 0 && n <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderEmpty(t *testing.T) {
	if Render(nil) != "" {
		t.Error("empty render must be empty string")
	}
}
