package fpga

import (
	"math"
	"strings"
	"testing"

	"fabp/internal/axi"
	"fabp/internal/core"
)

func TestCatalog(t *testing.T) {
	devs := Catalog()
	if len(devs) < 3 {
		t.Fatal("catalog too small")
	}
	for _, d := range devs {
		if d.LUTs <= 0 || d.FFs <= 0 || d.DSPs <= 0 || d.BRAMKb <= 0 {
			t.Errorf("%s has empty budgets", d.Name)
		}
		if err := d.Port.Validate(); err != nil {
			t.Errorf("%s port: %v", d.Name, err)
		}
	}
}

func TestKintex7MatchesTableIAvailableRow(t *testing.T) {
	d := Kintex7()
	if d.LUTs != 326_000 || d.FFs != 407_000 || d.DSPs != 840 || d.BRAMKb != 16_384 {
		t.Errorf("Kintex-7 budgets drifted from Table I: %+v", d)
	}
	if bw := d.Port.NominalBandwidth(); math.Abs(bw-12.8e9) > 1e6 {
		t.Errorf("nominal bandwidth %.2f GB/s, Table I says 12.8", bw/1e9)
	}
	if d.Port.ElementsPerBeat() != 256 {
		t.Errorf("beat elements %d, paper says 256", d.Port.ElementsPerBeat())
	}
}

// TestTableIFabP50 checks the sized FabP-50 build against the paper's
// utilization row within modeling tolerance.
func TestTableIFabP50(t *testing.T) {
	e := Size(Kintex7(), Config{QueryElems: 150})
	if !e.Fits {
		t.Fatal("FabP-50 must fit the Kintex-7")
	}
	if e.Iterations != 1 {
		t.Fatalf("FabP-50 must run at full rate, got %d iterations", e.Iterations)
	}
	if e.Bottleneck() != "bandwidth-bound" {
		t.Errorf("FabP-50 should be bandwidth-bound, got %s", e.Bottleneck())
	}
	checkFrac(t, "LUT", e.LUTFrac(), 0.58, 0.06)
	checkFrac(t, "FF", e.FFFrac(), 0.16, 0.05)
	checkFrac(t, "DSP", e.DSPFrac(), 0.31, 0.06)
	checkFrac(t, "BRAM", e.BRAMFrac(), 0.19, 0.04)
}

// TestTableIFabP250 checks the FabP-250 row: near-full LUTs and multiple
// iterations.
func TestTableIFabP250(t *testing.T) {
	e := Size(Kintex7(), Config{QueryElems: 750})
	if !e.Fits {
		t.Fatal("FabP-250 must fit (with segmentation)")
	}
	if e.Iterations < 2 {
		t.Fatalf("FabP-250 must segment, got %d iterations", e.Iterations)
	}
	if e.Bottleneck() != "resource-bound" {
		t.Errorf("FabP-250 should be resource-bound, got %s", e.Bottleneck())
	}
	checkFrac(t, "LUT", e.LUTFrac(), 0.98, 0.08)
	checkFrac(t, "FF", e.FFFrac(), 0.40, 0.08)
	checkFrac(t, "DSP", e.DSPFrac(), 0.68, 0.10)
	checkFrac(t, "BRAM", e.BRAMFrac(), 0.15, 0.04)
	t.Log(e.String())
}

func checkFrac(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s utilization %.1f%%, paper %.1f%% (tol ±%.0fpp)",
			what, 100*got, 100*want, 100*tol)
	} else {
		t.Logf("%s utilization %.1f%% (paper %.0f%%)", what, 100*got, 100*want)
	}
}

// TestTableIAchievedBandwidth checks the achieved-bandwidth row: ~12.2 GB/s
// for FabP-50 and ~3.4 GB/s for FabP-250.
func TestTableIAchievedBandwidth(t *testing.T) {
	const refElems = 1 << 30 // 1 G elements ≈ 256 MB
	e50 := Size(Kintex7(), Config{QueryElems: 150})
	t50 := Time(e50, refElems, nil)
	if bw := t50.AchievedBandwidth / 1e9; math.Abs(bw-12.2) > 0.5 {
		t.Errorf("FabP-50 achieved %.2f GB/s, paper 12.2", bw)
	} else {
		t.Logf("FabP-50 achieved %.2f GB/s (paper 12.2)", bw)
	}
	e250 := Size(Kintex7(), Config{QueryElems: 750})
	t250 := Time(e250, refElems, nil)
	if bw := t250.AchievedBandwidth / 1e9; math.Abs(bw-3.4) > 0.7 {
		t.Errorf("FabP-250 achieved %.2f GB/s, paper 3.4", bw)
	} else {
		t.Logf("FabP-250 achieved %.2f GB/s (paper 3.4)", bw)
	}
	if t250.Seconds <= t50.Seconds {
		t.Error("longer queries must take longer")
	}
}

// TestCrossover reproduces §IV-B: below ~70 residues the design is
// bandwidth-bound; above, resource-bound.
func TestCrossover(t *testing.T) {
	dev := Kintex7()
	last := ""
	crossover := -1
	for res := 10; res <= 250; res += 5 {
		e := Size(dev, Config{QueryElems: 3 * res})
		b := e.Bottleneck()
		if last == "bandwidth-bound" && b == "resource-bound" {
			crossover = res
		}
		last = b
	}
	if crossover < 0 {
		t.Fatal("no crossover found")
	}
	t.Logf("crossover at ~%d residues (paper: ~70)", crossover)
	if crossover < 50 || crossover > 100 {
		t.Errorf("crossover %d outside the paper's ~70 neighbourhood", crossover)
	}
}

// TestEstimatorStructuralFloor cross-validates the analytic sizing against
// a real generated netlist: the estimator's structural component
// (comparators + pop-counter per instance) must match the generated
// design's comparator/pop cost, and the full netlist must land between the
// structural floor and the floor plus the estimator's overhead allowance.
func TestEstimatorStructuralFloor(t *testing.T) {
	const lq, beat = 30, 8
	n, _, err := core.BuildNetlist(core.NetlistConfig{
		QueryElems: lq, Beat: beat, Threshold: lq / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := n.Stats().LUTs
	floor := beat * (core.CompareLUTsPerElement*lq + core.PopCountLUTs(lq, core.PopLUTOptimized))
	ceil := beat*(core.CompareLUTsPerElement*lq+core.PopCountLUTs(lq, core.PopLUTOptimized)+instOverheadLUTs) + sharedLUTs
	if got < floor {
		t.Errorf("netlist %d LUTs below structural floor %d", got, floor)
	}
	if got > ceil {
		t.Errorf("netlist %d LUTs above estimator ceiling %d", got, ceil)
	}
	t.Logf("netlist %d LUTs, structural floor %d, estimator ceiling %d", got, floor, ceil)
}

func TestMuxCost(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 7: 2, 8: 3}
	for s, want := range cases {
		if got := muxLUTsPerBit(s); got != want {
			t.Errorf("muxLUTsPerBit(%d) = %d, want %d", s, got, want)
		}
	}
}

func TestSizeDegenerate(t *testing.T) {
	if e := Size(Kintex7(), Config{QueryElems: 0}); e.Fits {
		t.Error("zero-length query must not fit")
	}
	// A query too large for any segmentation on a small device.
	small := Artix7()
	small.LUTs = 1000
	if e := Size(small, Config{QueryElems: 100000}); e.Fits {
		t.Error("absurd query must not fit")
	}
	// Channels default to 1.
	e := Size(Kintex7(), Config{QueryElems: 150, Channels: 0})
	if e.Config.Channels != 1 {
		t.Error("channels must default to 1")
	}
}

func TestMultiChannelScaling(t *testing.T) {
	dev := VirtexUS()
	one := Size(dev, Config{QueryElems: 150, Channels: 1})
	two := Size(dev, Config{QueryElems: 150, Channels: 2})
	if !one.Fits || !two.Fits {
		t.Fatal("both builds should fit the VU9P")
	}
	if two.Instances != 2*one.Instances {
		t.Error("channels must scale instances")
	}
	t1 := Time(one, 1<<28, axi.NoStall{})
	t2 := Time(two, 1<<28, axi.NoStall{})
	ratio := t1.Seconds / t2.Seconds
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2 channels should ~halve time, ratio %.2f", ratio)
	}
}

func TestPowerModel(t *testing.T) {
	e := Size(Kintex7(), Config{QueryElems: 150})
	p := e.Power()
	if p < e.Device.StaticWatts || p > e.Device.StaticWatts+e.Device.DynamicWattsFull {
		t.Errorf("power %.1f W outside plausible range", p)
	}
	big := Size(Kintex7(), Config{QueryElems: 750})
	if big.Power() <= p {
		t.Error("higher utilization must draw more power")
	}
}

func TestTimingEnergy(t *testing.T) {
	e := Size(Kintex7(), Config{QueryElems: 150})
	tm := Time(e, 1<<24, axi.NoStall{})
	if tm.EnergyJoules <= 0 || math.Abs(tm.EnergyJoules-tm.Seconds*e.Power()) > 1e-12 {
		t.Error("energy must be time × power")
	}
	if tm.Beats != (1<<24)/256 {
		t.Errorf("beats %d", tm.Beats)
	}
}

func TestEstimateStringAndVariants(t *testing.T) {
	e := Size(Kintex7(), Config{QueryElems: 150})
	s := e.String()
	if !strings.Contains(s, "FabP-50") || !strings.Contains(s, "Kintex") {
		t.Errorf("estimate string %q", s)
	}
	// The tree-adder variant must cost more LUTs at the same size.
	tree := Size(Kintex7(), Config{QueryElems: 150, Pop: core.PopTree})
	if tree.Fits && tree.LUTs <= e.LUTs {
		t.Error("tree-adder build should use more LUTs")
	}
}
