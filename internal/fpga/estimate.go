package fpga

import (
	"fmt"

	"fabp/internal/axi"
	"fabp/internal/core"
)

// Calibration constants of the resource model. The structural parts
// (comparators, pop-counters) are exact netlist counts from internal/core;
// the control/write-back overheads below were fitted once against the
// paper's Table I (FabP-50: 58 % LUT / 16 % FF / 31 % DSP / 19 % BRAM;
// FabP-250: 98 % / 40 % / 68 % / 15 %) and are never re-tuned per
// experiment.
const (
	// instOverheadLUTs covers per-instance control: position tracking,
	// write-back arbitration and hit encoding.
	instOverheadLUTs = 150
	// sharedLUTs covers the AXI datapath, host interface and global
	// control.
	sharedLUTs = 13_000
	// sharedFFs covers global control/pipeline registers beyond the query
	// and reference-stream storage.
	sharedFFs = 2_000
	// stagingFFFactor models per-instance score double-buffering and
	// write-back staging, proportional to the full query width.
	stagingFFFactor = 0.5
	// sharedDSPs covers address generation.
	sharedDSPs = 16
	// wbBRAMBaseKb + wbBRAMStreamKb/iterations models the write-back and
	// host FIFOs, which shrink as effective throughput drops.
	wbBRAMBaseKb   = 2_240
	wbBRAMStreamKb = 853
	// maxIterations bounds the segmentation search.
	maxIterations = 64
)

// Config selects the accelerator build the estimator sizes.
type Config struct {
	// QueryElems is the back-translated query length (3 × residues).
	QueryElems int
	// Channels is the number of memory channels used (each adds one beat's
	// worth of alignment instances). Default 1, the paper's setting.
	Channels int
	// Pop selects the pop-counter implementation.
	Pop core.PopVariant
}

// Estimate is the sized design: the chosen iteration count and the
// projected resource utilization — the Table I quantities.
type Estimate struct {
	Device Device
	Config Config

	// Fits reports whether any iteration count makes the design fit.
	Fits bool
	// Iterations is the cycles needed per beat (query segmentation); 1
	// means full rate.
	Iterations int
	// SegmentElems is the per-iteration query segment width.
	SegmentElems int
	// Instances is the number of parallel alignment instances.
	Instances int

	LUTs, FFs, DSPs int
	BRAMKb          int
}

// LUTFrac returns LUT utilization in [0,1] (may exceed 1 for non-fitting
// single-iteration probes).
func (e Estimate) LUTFrac() float64 { return float64(e.LUTs) / float64(e.Device.LUTs) }

// FFFrac returns flip-flop utilization.
func (e Estimate) FFFrac() float64 { return float64(e.FFs) / float64(e.Device.FFs) }

// DSPFrac returns DSP utilization.
func (e Estimate) DSPFrac() float64 { return float64(e.DSPs) / float64(e.Device.DSPs) }

// BRAMFrac returns block-RAM utilization.
func (e Estimate) BRAMFrac() float64 { return float64(e.BRAMKb) / float64(e.Device.BRAMKb) }

// String renders the estimate like a Table I row.
func (e Estimate) String() string {
	return fmt.Sprintf("FabP-%d on %s: iter=%d LUT=%.0f%% FF=%.0f%% BRAM=%.0f%% DSP=%.0f%%",
		e.Config.QueryElems/3, e.Device.Name, e.Iterations,
		100*e.LUTFrac(), 100*e.FFFrac(), 100*e.BRAMFrac(), 100*e.DSPFrac())
}

// muxLUTsPerBit is the LUT cost of an S:1 multiplexer per data bit (a LUT6
// implements a 4:1 mux; wider selects cascade).
func muxLUTsPerBit(s int) int {
	if s <= 1 {
		return 0
	}
	return (s + 1) / 3 // ceil((s-1)/3): a LUT6 merges 3 more ways per level

}

// sizeAt computes the resource totals for a fixed iteration count.
func sizeAt(dev Device, cfg Config, iterations int) Estimate {
	lq := cfg.QueryElems
	seg := (lq + iterations - 1) / iterations
	instances := dev.Port.ElementsPerBeat() * cfg.Channels

	perInstLUT := core.CompareLUTsPerElement*seg +
		core.PopCountLUTs(seg, cfg.Pop) +
		2*seg*muxLUTsPerBit(iterations) + // reference segment steering
		instOverheadLUTs
	luts := instances*perInstLUT + sharedLUTs +
		6*seg*muxLUTsPerBit(iterations) // shared query segment mux

	popPipeFF := 6*((seg+35)/36) + 12
	perInstFF := seg + popPipeFF + core.ScoreWidth(lq) + int(stagingFFFactor*float64(lq))
	ffs := instances*perInstFF +
		6*lq + // query storage
		2*(lq+instances) + // reference stream buffer
		sharedFFs

	perInstDSP := 1 // threshold comparator (§IV-B)
	if iterations > 1 {
		perInstDSP++ // score accumulator across segments
	}
	dsps := instances*perInstDSP + sharedDSPs

	bram := wbBRAMBaseKb + wbBRAMStreamKb/iterations

	return Estimate{
		Device: dev, Config: cfg,
		Iterations: iterations, SegmentElems: seg, Instances: instances,
		LUTs: luts, FFs: ffs, DSPs: dsps, BRAMKb: bram,
	}
}

// fitsDevice checks every budget.
func (e Estimate) fitsDevice() bool {
	return e.LUTs <= e.Device.LUTs && e.FFs <= e.Device.FFs &&
		e.DSPs <= e.Device.DSPs && e.BRAMKb <= e.Device.BRAMKb
}

// Size picks the smallest iteration count whose build fits the device and
// returns its estimate. If nothing fits within maxIterations the returned
// estimate has Fits=false and carries the single-iteration sizing for
// diagnosis.
func Size(dev Device, cfg Config) Estimate {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	if cfg.QueryElems <= 0 {
		e := sizeAt(dev, cfg, 1)
		e.Fits = false
		return e
	}
	for s := 1; s <= maxIterations; s++ {
		e := sizeAt(dev, cfg, s)
		if e.fitsDevice() {
			e.Fits = true
			return e
		}
	}
	e := sizeAt(dev, cfg, 1)
	e.Fits = false
	return e
}

// Power returns the modeled board power draw in watts for the estimate:
// static plus dynamic proportional to LUT utilization.
func (e Estimate) Power() float64 {
	util := e.LUTFrac()
	if util > 1 {
		util = 1
	}
	return e.Device.StaticWatts + e.Device.DynamicWattsFull*util
}

// Timing is the projected execution profile for one query against a
// reference.
type Timing struct {
	Estimate Estimate
	// Beats is the number of AXI transfers.
	Beats int
	// Cycles is the total kernel cycles including DRAM stalls.
	Cycles int
	// Seconds is wall-clock kernel time.
	Seconds float64
	// AchievedBandwidth is realized DRAM read bandwidth (bytes/s) summed
	// over channels.
	AchievedBandwidth float64
	// EnergyJoules is Seconds × Power.
	EnergyJoules float64
}

// DefaultStall models the ~5 % DRAM inefficiency observed in Table I
// (12.2 of 12.8 GB/s achieved on sequential streams).
func DefaultStall() axi.StallModel { return axi.NewRandomStall(0.05, 1, 1) }

// Time projects the execution of one alignment of refElements reference
// elements under the estimate's iteration count. A nil stall model uses
// DefaultStall.
func Time(e Estimate, refElements int, stall axi.StallModel) Timing {
	if stall == nil {
		stall = DefaultStall()
	}
	perCycle := e.Device.Port.ElementsPerBeat() * e.Config.Channels
	beats := (refElements + perCycle - 1) / perCycle
	stats := axi.SimulateStream(beats, stall, e.Iterations)
	cycles := stats.TotalCycles + core.PipelineDepth + e.Config.QueryElems/4 // drain + query load
	secs := float64(cycles) / e.Device.Port.FreqHz
	bw := float64(beats*e.Device.Port.BytesPerBeat()*e.Config.Channels) / secs
	return Timing{
		Estimate: e, Beats: beats, Cycles: cycles, Seconds: secs,
		AchievedBandwidth: bw,
		EnergyJoules:      secs * e.Power(),
	}
}

// Bottleneck classifies a sized design as bandwidth-bound (iterations == 1:
// the memory channel limits throughput) or resource-bound (iterations > 1:
// LUT capacity forces segmentation) — the §IV-B crossover analysis.
func (e Estimate) Bottleneck() string {
	if !e.Fits {
		return "does-not-fit"
	}
	if e.Iterations == 1 {
		return "bandwidth-bound"
	}
	return "resource-bound"
}
