package sched

import (
	"errors"
	"testing"
	"time"

	"fabp/internal/telemetry"
)

// TestPoolMetricsReconcile: after a quiet pool finishes, completed-task
// counts match submissions and every level gauge is back to zero.
func TestPoolMetricsReconcile(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(3)
	p.SetMetrics(reg)

	const n = 25
	p.Each(n, func(i int) { time.Sleep(time.Microsecond) })
	if err := StreamOrdered(p, n,
		func(i int) ([]int, error) { return []int{i}, nil },
		func(int) error { return nil },
	); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["pool.tasks.completed"]; got != 2*n {
		t.Errorf("completed = %d, want %d", got, 2*n)
	}
	for _, gauge := range []string{"pool.tasks.queued", "pool.tasks.running", "pool.merge.backlog"} {
		if lvl := s.Gauges[gauge]; lvl != 0 {
			t.Errorf("%s = %d after idle, want 0", gauge, lvl)
		}
	}
	if s.Histograms["pool.task.run"].Count != 2*n {
		t.Errorf("run histogram count = %d, want %d", s.Histograms["pool.task.run"].Count, 2*n)
	}
	if s.Histograms["pool.task.wait"].Count == 0 {
		t.Error("wait histogram recorded nothing")
	}
}

// TestStreamOrderedBacklogDrainsOnEarlyStop: an emit error abandons
// in-flight results; the merge-backlog gauge must still return to zero.
func TestStreamOrderedBacklogDrainsOnEarlyStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(4)
	p.SetMetrics(reg)

	boom := errors.New("boom")
	err := StreamOrdered(p, 64,
		func(i int) ([]int, error) {
			time.Sleep(time.Duration(i%5) * time.Millisecond)
			return []int{i}, nil
		},
		func(v int) error {
			if v >= 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The dispatcher drains abandoned results asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Snapshot().Gauges["pool.merge.backlog"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog stuck at %d", reg.Snapshot().Gauges["pool.merge.backlog"])
		}
		time.Sleep(time.Millisecond)
	}
	if lvl := reg.Snapshot().Gauges["pool.tasks.queued"]; lvl != 0 {
		t.Errorf("queued = %d after stop", lvl)
	}
}

// TestSerialPoolStillCounts: the Workers()==1 inline fast path must
// record the same counters as the goroutine path.
func TestSerialPoolStillCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(1)
	p.SetMetrics(reg)
	p.Each(7, func(i int) {})
	s := reg.Snapshot()
	if s.Counters["pool.tasks.completed"] != 7 {
		t.Errorf("completed = %d, want 7", s.Counters["pool.tasks.completed"])
	}
	if s.Gauges["pool.tasks.running"] != 0 {
		t.Errorf("running = %d", s.Gauges["pool.tasks.running"])
	}
}
