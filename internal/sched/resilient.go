// resilient.go is the scheduler's resilience layer: per-shard retry with
// bounded exponential backoff, hedged re-execution of straggler shards
// (budgeted duplicates, first result wins, the loser canceled through the
// context plumbing), and the sched.shard.dispatch fault-injection hook.
// The plain Gather/Stream paths are untouched — callers opt shards into
// this path per scan, so the production fast path pays nothing.
package sched

import (
	"context"
	"sync/atomic"
	"time"

	"fabp/internal/faultinject"
	"fabp/internal/retry"
	"fabp/internal/telemetry"
)

// Resilience is one scan call's retry/hedge policy plus its shared hedge
// budget and telemetry handles. Build one per call with NewResilience; a
// nil *Resilience runs shards exactly once with no hedging.
type Resilience struct {
	// Backoff schedules retries of retryable shard failures (see
	// retry.Retryable); Backoff.Max bounds retries per shard.
	Backoff retry.Backoff
	// HedgeAfter is how long a shard attempt may run before a duplicate
	// is launched (0 disables hedging).
	HedgeAfter time.Duration
	// Retries / Hedged count on the caller's scan.retries / scan.hedged
	// metrics (nil-safe).
	Retries, Hedged *telemetry.Counter

	// budget is the remaining hedged duplicates for the whole call —
	// shared across shards so a uniformly slow scan cannot double its own
	// load.
	budget atomic.Int64
}

// NewResilience builds a per-call policy. hedgeBudget bounds the total
// duplicates the call may launch (ignored when hedgeAfter is 0).
func NewResilience(b retry.Backoff, hedgeAfter time.Duration, hedgeBudget int, retries, hedged *telemetry.Counter) *Resilience {
	r := &Resilience{Backoff: b, HedgeAfter: hedgeAfter, Retries: retries, Hedged: hedged}
	r.budget.Store(int64(hedgeBudget))
	return r
}

// takeHedge consumes one unit of hedge budget; false when exhausted.
func (r *Resilience) takeHedge() bool {
	return r.budget.Add(-1) >= 0
}

// ProduceResilient runs one shard's produce under the call's resilience
// policy, from inside a pool task (Gather/Stream produce functions call
// it directly). The shard's lifecycle:
//
//  1. The sched.shard.dispatch fault hook fires first on every attempt —
//     injected stalls model stragglers, injected errors model shard
//     failures — keyed by the shard index, so seeded plans hit
//     deterministic shards.
//  2. If the attempt outlives r.HedgeAfter and budget remains, a hedged
//     duplicate is launched on the pool; the first success wins and the
//     loser's context is canceled. A duplicate waiting for a pool slot
//     aborts the moment the race is decided, and every launched attempt
//     is drained before the call returns — no goroutine outlives it.
//  3. A retryable failure (retry.Retryable) backs off on the policy's
//     deterministic jittered schedule and re-runs, at most Backoff.Max
//     times; context errors and non-retryable failures surface
//     immediately.
func ProduceResilient[T any](ctx context.Context, p *Pool, r *Resilience, key uint64, produce func(ctx context.Context) ([]T, error)) ([]T, error) {
	attempt := func(actx context.Context) ([]T, error) {
		if err := faultinject.Check(actx, faultinject.SiteShardDispatch, key); err != nil {
			return nil, err
		}
		return produce(actx)
	}
	if r == nil {
		return attempt(ctx)
	}
	var lastErr error
	for n := 0; ; n++ {
		items, err := runHedged(ctx, p, r, attempt)
		if err == nil {
			return items, nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if n >= r.Backoff.Max || !retry.Retryable(err) {
			return nil, lastErr
		}
		r.Retries.Inc()
		if serr := retry.Sleep(ctx, r.Backoff.Delay(n+1, key)); serr != nil {
			return nil, serr
		}
	}
}

// runHedged executes one attempt with straggler hedging: the primary runs
// in its own goroutine (the caller's pool slot stays notionally held —
// the calling task just waits), and once HedgeAfter elapses a duplicate
// acquires its own slot and races it. First success wins; the other
// attempt's context is canceled and its result drained before returning.
// When both fail, the first failure is returned (one attempt's error is
// as good as the other's for the retry loop above).
func runHedged[T any](ctx context.Context, p *Pool, r *Resilience, attempt func(context.Context) ([]T, error)) ([]T, error) {
	if r.HedgeAfter <= 0 || r.budget.Load() <= 0 {
		return attempt(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		items []T
		err   error
	}
	ch := make(chan result, 2)
	go func() {
		items, err := attempt(hctx)
		ch <- result{items, err}
	}()
	outstanding := 1
	hedged := false
	timer := time.NewTimer(r.HedgeAfter)
	defer timer.Stop()
	drain := func() {
		cancel()
		for ; outstanding > 0; outstanding-- {
			<-ch
		}
	}
	var firstErr error
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				drain()
				return res.items, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged && r.takeHedge() {
				hedged = true
				r.Hedged.Inc()
				outstanding++
				go func() {
					if err := p.acquireCtx(hctx); err != nil {
						ch <- result{nil, err}
						return
					}
					defer func() { <-p.sem }()
					var items []T
					var err error
					p.runTask("hedge", func() { items, err = attempt(hctx) })
					ch <- result{items, err}
				}()
			}
		case <-ctx.Done():
			drain()
			return nil, ctx.Err()
		}
	}
}
