package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPlanCoversEveryStartOnce(t *testing.T) {
	for _, tc := range []struct{ starts, shardLen int }{
		{0, 0}, {-5, 0}, {1, 0}, {63, 64}, {64, 64}, {65, 64},
		{1000, 128}, {1 << 20, 0}, {12345, 100}, // 100 rounds up to 128
	} {
		shards := Plan(tc.starts, tc.shardLen)
		if tc.starts <= 0 {
			if shards != nil {
				t.Errorf("Plan(%d,%d) = %v, want nil", tc.starts, tc.shardLen, shards)
			}
			continue
		}
		pos := 0
		for i, s := range shards {
			if s.Index != i {
				t.Fatalf("shard %d has Index %d", i, s.Index)
			}
			if s.Lo != pos || s.Hi <= s.Lo {
				t.Fatalf("Plan(%d,%d): shard %d = [%d,%d), want Lo=%d",
					tc.starts, tc.shardLen, i, s.Lo, s.Hi, pos)
			}
			if s.Lo%64 != 0 {
				t.Fatalf("shard %d Lo %d not 64-aligned", i, s.Lo)
			}
			pos = s.Hi
		}
		if pos != tc.starts {
			t.Errorf("Plan(%d,%d) covers %d starts", tc.starts, tc.shardLen, pos)
		}
	}
}

func TestPlanRangeCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct{ lo, hi, shardLen int }{
		{0, 0, 0}, {5, 5, 64}, {10, 3, 64}, {-7, 100, 64},
		{0, 1000, 128}, {1, 1000, 128}, {63, 64, 64}, {63, 1000, 64},
		{64, 1000, 64}, {65, 1000, 64}, {200, 201, 0}, {100, 12345, 100},
	} {
		shards := PlanRange(tc.lo, tc.hi, tc.shardLen)
		lo := tc.lo
		if lo < 0 {
			lo = 0
		}
		if tc.hi <= lo {
			if shards != nil {
				t.Errorf("PlanRange(%d,%d,%d) = %v, want nil", tc.lo, tc.hi, tc.shardLen, shards)
			}
			continue
		}
		pos := lo
		for i, s := range shards {
			if s.Index != i {
				t.Fatalf("shard %d has Index %d", i, s.Index)
			}
			if s.Lo != pos || s.Hi <= s.Lo {
				t.Fatalf("PlanRange(%d,%d,%d): shard %d = [%d,%d), want Lo=%d",
					tc.lo, tc.hi, tc.shardLen, i, s.Lo, s.Hi, pos)
			}
			// Every boundary after the plan's own lo must be 64-aligned.
			if i > 0 && s.Lo%64 != 0 {
				t.Fatalf("shard %d Lo %d not 64-aligned", i, s.Lo)
			}
			pos = s.Hi
		}
		if pos != tc.hi {
			t.Errorf("PlanRange(%d,%d,%d) covers to %d, want %d", tc.lo, tc.hi, tc.shardLen, pos, tc.hi)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("workers %d", p.Workers())
	}
	var cur, max atomic.Int64
	p.Each(50, func(int) {
		if c := cur.Add(1); c > max.Load() {
			max.Store(c)
		}
		defer cur.Add(-1)
		for i := 0; i < 1000; i++ {
			_ = i
		}
	})
	if m := max.Load(); m > 3 {
		t.Errorf("observed %d concurrent tasks, bound is 3", m)
	}
}

func TestGatherPreservesIndexOrder(t *testing.T) {
	p := NewPool(8)
	got := Gather(p, 40, func(i int) []int {
		return []int{i * 2, i*2 + 1}
	})
	if len(got) != 80 {
		t.Fatalf("len %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if out := Gather(p, 5, func(int) []int { return nil }); out != nil {
		t.Errorf("all-empty gather = %v, want nil", out)
	}
}

func TestGatherBatchPreservesOrderPerStream(t *testing.T) {
	p := NewPool(8)
	const shards, streams = 40, 3
	got := GatherBatch(p, shards, streams, func(i int) [][]int {
		// Stream s gets s+1 items from each shard, tagged by shard order.
		out := make([][]int, streams)
		for s := range out {
			for k := 0; k <= s; k++ {
				out[s] = append(out[s], i*(s+1)+k)
			}
		}
		return out
	})
	if len(got) != streams {
		t.Fatalf("streams %d, want %d", len(got), streams)
	}
	for s, stream := range got {
		if len(stream) != shards*(s+1) {
			t.Fatalf("stream %d len %d, want %d", s, len(stream), shards*(s+1))
		}
		for i, v := range stream {
			if v != i {
				t.Fatalf("stream %d item %d = %d (shard order broken)", s, i, v)
			}
		}
	}
}

func TestGatherBatchRaggedAndEmpty(t *testing.T) {
	p := NewPool(4)
	// Producers may return fewer slices than streams; missing streams get
	// nothing, untouched streams stay nil.
	got := GatherBatch(p, 10, 3, func(i int) [][]int {
		if i%2 == 0 {
			return [][]int{{i}}
		}
		return nil
	})
	if len(got) != 3 {
		t.Fatalf("streams %d", len(got))
	}
	if len(got[0]) != 5 || got[1] != nil || got[2] != nil {
		t.Fatalf("ragged gather: %v", got)
	}
	// Zero shards still yields one (nil) entry per stream.
	if got := GatherBatch[int](p, 0, 2, nil); len(got) != 2 || got[0] != nil {
		t.Fatalf("empty plan gather: %v", got)
	}
	// The single-shard fast path pads short returns to len == streams.
	if got := GatherBatch(p, 1, 3, func(int) [][]int { return [][]int{{7}} }); len(got) != 3 || got[0][0] != 7 {
		t.Fatalf("single-shard gather: %v", got)
	}
}

func TestStreamOrderedDeliversInOrder(t *testing.T) {
	p := NewPool(4)
	var got []int
	err := StreamOrdered(p, 30, func(i int) ([]int, error) {
		return []int{i * 10, i*10 + 1}, nil
	}, func(v int) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("len %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %v", i, got[i-3:i+1])
		}
	}
}

func TestStreamOrderedStopsOnError(t *testing.T) {
	p := NewPool(4)
	produceErr := errors.New("shard exploded")
	err := StreamOrdered(p, 100, func(i int) ([]int, error) {
		if i == 7 {
			return nil, produceErr
		}
		return []int{i}, nil
	}, func(int) error { return nil })
	if !errors.Is(err, produceErr) {
		t.Errorf("produce error lost: %v", err)
	}

	emitErr := errors.New("consumer full")
	var seen int
	err = StreamOrdered(p, 100, func(i int) ([]int, error) {
		return []int{i}, nil
	}, func(v int) error {
		seen++
		if v == 5 {
			return emitErr
		}
		return nil
	})
	if !errors.Is(err, emitErr) {
		t.Errorf("emit error lost: %v", err)
	}
	if seen != 6 {
		t.Errorf("emitted %d items after early stop, want 6", seen)
	}
}

// TestPoolSharedAcrossGoroutines exercises the shared pool from many
// concurrent batch-like callers; run with -race.
func TestPoolSharedAcrossGoroutines(t *testing.T) {
	p := Shared()
	if p != Shared() {
		t.Fatal("Shared must return one pool")
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := Gather(p, 20, func(i int) []int { return []int{i} })
			total.Add(int64(len(hits)))
		}()
	}
	wg.Wait()
	if total.Load() != 120 {
		t.Errorf("total %d", total.Load())
	}
}

func ExamplePlan() {
	for _, s := range Plan(300, 128) {
		fmt.Printf("[%d,%d) ", s.Lo, s.Hi)
	}
	// Output: [0,128) [128,256) [256,300)
}
