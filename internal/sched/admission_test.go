package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionImmediateGrantAndRelease(t *testing.T) {
	q := NewAdmission(2, 0)
	ctx := context.Background()
	if err := q.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := q.Held(); got != 2 {
		t.Fatalf("held = %d, want 2", got)
	}
	// Queue limit 0: a full semaphore sheds immediately with a sane hint.
	err := q.Admit(ctx, 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "capacity" {
		t.Fatalf("err = %v, want capacity ShedError", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	q.Release(1, 10*time.Millisecond)
	if err := q.Admit(ctx, 1); err != nil {
		t.Fatalf("post-release admit: %v", err)
	}
	q.Release(2, 0)
	if got := q.Held(); got != 0 {
		t.Fatalf("held = %d, want 0", got)
	}
}

func TestAdmissionWeightClamped(t *testing.T) {
	q := NewAdmission(4, 0)
	// A weight wider than capacity means "everything", not deadlock.
	if err := q.Admit(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := q.Held(); got != 4 {
		t.Fatalf("held = %d, want 4", got)
	}
	q.Release(100, 0)
}

func TestAdmissionQueueGrantFIFO(t *testing.T) {
	q := NewAdmission(1, 4)
	ctx := context.Background()
	if err := q.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}

	order := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		ready := make(chan struct{})
		go func() {
			close(ready)
			if err := q.Admit(ctx, 1); err != nil {
				t.Errorf("queued admit %d: %v", i, err)
				return
			}
			order <- i
			q.Release(1, 0)
		}()
		<-ready
		// Wait for this waiter to be enqueued before starting the next,
		// so FIFO order is deterministic.
		for q.QueueDepth() < i {
			time.Sleep(time.Millisecond)
		}
	}

	q.Release(1, 0)
	if first := <-order; first != 1 {
		t.Fatalf("first grant went to waiter %d, want 1", first)
	}
	if second := <-order; second != 2 {
		t.Fatalf("second grant went to waiter %d, want 2", second)
	}
}

func TestAdmissionDeadlineShedOnArrival(t *testing.T) {
	q := NewAdmission(4, 4)
	// Teach the estimator that work takes ~100ms.
	if err := q.Admit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	q.Release(1, 400*time.Millisecond) // EWMA from 0: 400/4 = 100ms
	if est := q.Estimate(); est != 100*time.Millisecond {
		t.Fatalf("estimate = %v, want 100ms", est)
	}

	// 10ms of budget cannot cover a 100ms scan: shed despite free slots.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := q.Admit(ctx, 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline ShedError", err)
	}
	if q.Held() != 0 {
		t.Fatalf("held = %d after deadline shed, want 0", q.Held())
	}

	// An ample deadline admits normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := q.Admit(ctx2, 1); err != nil {
		t.Fatalf("ample-deadline admit: %v", err)
	}
	q.Release(1, 0)
}

func TestAdmissionQueuedDeadlineShed(t *testing.T) {
	q := NewAdmission(1, 4)
	if err := q.Admit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Estimate stays 0, so the queued request sheds at its deadline
	// rather than earlier — still as a ShedError, not a bare ctx error.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := q.Admit(ctx, 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline ShedError", err)
	}
	if waited := time.Since(t0); waited > 2*time.Second {
		t.Fatalf("queued shed took %v", waited)
	}
	if q.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after shed, want 0", q.QueueDepth())
	}
	q.Release(1, 0)
}

func TestAdmissionQueuedCancelLeavesQueue(t *testing.T) {
	q := NewAdmission(1, 4)
	if err := q.Admit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Admit(ctx, 1) }()
	for q.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if q.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d, want 0", q.QueueDepth())
	}
	// The canceled waiter must not have consumed the unit.
	q.Release(1, 0)
	if err := q.Admit(context.Background(), 1); err != nil {
		t.Fatalf("post-cancel admit: %v", err)
	}
	q.Release(1, 0)
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	q := NewAdmission(1, 1)
	ctx := context.Background()
	if err := q.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	go q.Admit(context.Background(), 1) // fills the single queue slot
	for q.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	err := q.Admit(ctx, 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "capacity" {
		t.Fatalf("err = %v, want capacity ShedError", err)
	}
	q.Release(1, 0) // grants the queued waiter
}

// TestAdmissionWideWaiterLeaveUnblocksNarrow: a wide waiter at the head
// abandoning the queue must let narrower waiters behind it through.
func TestAdmissionWideWaiterLeaveUnblocksNarrow(t *testing.T) {
	q := NewAdmission(2, 4)
	if err := q.Admit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	wideCtx, cancelWide := context.WithCancel(context.Background())
	wideErr := make(chan error, 1)
	go func() { wideErr <- q.Admit(wideCtx, 2) }() // needs both units
	for q.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	narrowErr := make(chan error, 1)
	go func() { narrowErr <- q.Admit(context.Background(), 1) }()
	for q.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancelWide()
	if err := <-wideErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("wide err = %v", err)
	}
	select {
	case err := <-narrowErr:
		if err != nil {
			t.Fatalf("narrow err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("narrow waiter stuck behind a departed wide waiter")
	}
	q.Release(2, 0)
}
