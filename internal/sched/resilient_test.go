package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fabp/internal/faultinject"
	"fabp/internal/retry"
	"fabp/internal/telemetry"
)

// testResilience builds a policy with its own counters so assertions are
// isolated from the process registry.
func testResilience(maxRetries int, hedgeAfter time.Duration, hedgeBudget int) (*Resilience, *telemetry.Counter, *telemetry.Counter) {
	reg := telemetry.NewRegistry()
	retries, hedged := reg.Counter("r"), reg.Counter("h")
	return NewResilience(
		retry.Backoff{Base: time.Microsecond, Cap: 50 * time.Microsecond, Max: maxRetries},
		hedgeAfter, hedgeBudget, retries, hedged), retries, hedged
}

// TestHedgeStragglerFirstResultWins: the primary attempt stalls well past
// HedgeAfter, the hedged duplicate finishes instantly — the call must
// return the duplicate's result promptly, count one hedge, and drain the
// straggler (no goroutine outlives the call).
func TestHedgeStragglerFirstResultWins(t *testing.T) {
	p := NewPool(4)
	res, _, hedged := testResilience(0, 2*time.Millisecond, 1)
	var attempts atomic.Int64
	t0 := time.Now()
	out, err := ProduceResilient(context.Background(), p, res, 0,
		func(ctx context.Context) ([]int, error) {
			if attempts.Add(1) == 1 {
				// The straggler: blocks until the race is decided and its
				// context is canceled.
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return []int{7}, nil
		})
	if err != nil || len(out) != 1 || out[0] != 7 {
		t.Fatalf("hedged result = %v, %v", out, err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("hedge took %v; the duplicate did not win", el)
	}
	if hedged.Load() != 1 {
		t.Fatalf("hedged counter = %d, want 1", hedged.Load())
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("%d attempts launched, want 2", got)
	}
}

// TestHedgeBudgetSharedAcrossShards: the budget bounds duplicates for the
// whole call — with budget 1, a second slow shard cannot hedge again; and
// with budget 0 (or HedgeAfter 0) no duplicate ever launches.
func TestHedgeBudgetSharedAcrossShards(t *testing.T) {
	p := NewPool(4)
	res, _, hedged := testResilience(0, time.Millisecond, 1)
	slowShard := func(ctx context.Context) ([]int, error) {
		select { // slow but not stuck: finishes on its own
		case <-time.After(15 * time.Millisecond):
		case <-ctx.Done():
		}
		return []int{1}, nil
	}
	for shard := uint64(0); shard < 3; shard++ {
		if _, err := ProduceResilient(context.Background(), p, res, shard, slowShard); err != nil {
			t.Fatal(err)
		}
	}
	if got := hedged.Load(); got != 1 {
		t.Fatalf("budget 1: %d hedges launched", got)
	}

	res0, _, hedged0 := testResilience(0, 0, 8)
	if _, err := ProduceResilient(context.Background(), p, res0, 0, slowShard); err != nil {
		t.Fatal(err)
	}
	if hedged0.Load() != 0 {
		t.Fatal("HedgeAfter=0 still hedged")
	}
}

// TestHedgeRetriesTransientFailures: a shard failing transiently twice
// under a 3-retry budget succeeds on the third attempt; retries are
// counted; a permanent failure consumes no retries.
func TestHedgeRetriesTransientFailures(t *testing.T) {
	p := NewPool(2)
	res, retries, _ := testResilience(3, 0, 0)
	var n atomic.Int64
	out, err := ProduceResilient(context.Background(), p, res, 0,
		func(context.Context) ([]int, error) {
			if n.Add(1) <= 2 {
				return nil, retry.Transient(errors.New("blip"))
			}
			return []int{3}, nil
		})
	if err != nil || len(out) != 1 {
		t.Fatalf("retried shard: %v, %v", out, err)
	}
	if retries.Load() != 2 {
		t.Fatalf("retries counter = %d, want 2", retries.Load())
	}

	perm := errors.New("permanent")
	res2, retries2, _ := testResilience(3, 0, 0)
	var calls atomic.Int64
	_, err = ProduceResilient(context.Background(), p, res2, 0,
		func(context.Context) ([]int, error) {
			calls.Add(1)
			return nil, perm
		})
	if !errors.Is(err, perm) || calls.Load() != 1 || retries2.Load() != 0 {
		t.Fatalf("permanent failure: err=%v calls=%d retries=%d", err, calls.Load(), retries2.Load())
	}
}

// TestHedgeRetryBudgetExhausted: a shard that never recovers surfaces its
// last error after exactly Max retries.
func TestHedgeRetryBudgetExhausted(t *testing.T) {
	p := NewPool(2)
	res, retries, _ := testResilience(2, 0, 0)
	var calls atomic.Int64
	_, err := ProduceResilient(context.Background(), p, res, 5,
		func(context.Context) ([]int, error) {
			calls.Add(1)
			return nil, retry.Transient(errors.New("still down"))
		})
	if err == nil || !retry.Retryable(err) {
		t.Fatalf("exhausted retries: err=%v", err)
	}
	if calls.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls.Load(), retries.Load())
	}
}

// TestHedgeDispatchHookInjectsAndRetries: the sched.shard.dispatch fault
// site fires inside the resilient attempt, keyed by shard — a keylimit
// within the retry budget means every shard still succeeds.
func TestHedgeDispatchHookInjectsAndRetries(t *testing.T) {
	faultinject.Enable(11, faultinject.Plan{
		faultinject.SiteShardDispatch: {Every: 1, KeyLimit: 1, Fail: true},
	})
	defer faultinject.Disable()
	p := NewPool(2)
	res, retries, _ := testResilience(2, 0, 0)
	for shard := uint64(0); shard < 4; shard++ {
		out, err := ProduceResilient(context.Background(), p, res, shard,
			func(context.Context) ([]int, error) { return []int{int(shard)}, nil })
		if err != nil || len(out) != 1 {
			t.Fatalf("shard %d: %v, %v", shard, out, err)
		}
	}
	if retries.Load() != 4 {
		t.Fatalf("retries = %d, want 4 (one injected failure per shard)", retries.Load())
	}
	if fired := faultinject.Fired(faultinject.SiteShardDispatch); fired != 4 {
		t.Fatalf("dispatch site fired %d times, want 4", fired)
	}
}

// TestHedgeCanceledContextWinsAndDrains: cancellation mid-attempt returns
// ctx.Err(), is never retried, and every launched goroutine is drained —
// the goroutine count returns to baseline.
func TestHedgeCanceledContextWinsAndDrains(t *testing.T) {
	p := NewPool(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		res, _, _ := testResilience(5, time.Millisecond, 2)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, err := ProduceResilient(ctx, p, res, 0,
			func(actx context.Context) ([]int, error) {
				<-actx.Done()
				return nil, actx.Err()
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: err = %v, want context.Canceled", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d -> %d; hedged attempts leaked", before, runtime.NumGoroutine())
}
