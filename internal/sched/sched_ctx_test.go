package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fabp/internal/telemetry"
)

// TestEachCtxBackgroundMatchesEach pins the fast path: an uncancellable
// context runs every task, returns nil, and behaves exactly like Each.
func TestEachCtxBackgroundMatchesEach(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	if err := p.EachCtx(context.Background(), 100, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("EachCtx(Background) = %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

// TestEachCtxCancelStopsDispatch cancels mid-run and checks the contract:
// the call returns context.Canceled, stops dispatching new tasks, and
// waits for the in-flight ones (no goroutine leaks).
func TestEachCtxCancelStopsDispatch(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	gate := make(chan struct{})
	err := p.EachCtx(ctx, 1000, func(i int) {
		if started.Add(1) == 2 {
			cancel()
			close(gate)
		}
		<-gate // the first tasks park until the cancel fires
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EachCtx = %v, want context.Canceled", err)
	}
	ran := started.Load()
	// Dispatch must have stopped near the cancellation point: 2 workers
	// plus at most a couple already past the checkpoint.
	if ran > 10 {
		t.Errorf("%d tasks ran after a cancel at task 2", ran)
	}
}

// TestGatherCtxCancelSheds runs a cancel mid-gather and verifies shed
// shards are counted and partial results discarded.
func TestGatherCtxCancelSheds(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(2)
	p.SetMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	out, err := GatherCtx(ctx, p, 500, func(i int) []int {
		if started.Add(1) == 1 {
			cancel()
		}
		return []int{i}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GatherCtx = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("canceled gather returned %d results, want nil", len(out))
	}
	if shed := reg.Snapshot().Counters["pool.tasks.canceled"]; shed == 0 {
		t.Error("pool.tasks.canceled not recorded")
	}
}

// TestGatherBatchCtxCancelSheds: a cancel mid-batch-gather sheds the
// remaining shards for every stream at once, discards partials, and
// counts the shed shards.
func TestGatherBatchCtxCancelSheds(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(2)
	p.SetMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	out, err := GatherBatchCtx(ctx, p, 500, 4, func(i int) [][]int {
		if started.Add(1) == 1 {
			cancel()
		}
		return [][]int{{i}, {i}, {i}, {i}}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GatherBatchCtx = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("canceled batch gather returned %v, want nil", out)
	}
	if shed := reg.Snapshot().Counters["pool.tasks.canceled"]; shed == 0 {
		t.Error("pool.tasks.canceled not recorded")
	}
}

// TestStreamOrderedCtxCancel checks the streaming merge: a cancel stops
// emission with context.Canceled, already-launched producers are drained
// (backlog gauge returns to zero), and no goroutine outlives the call.
func TestStreamOrderedCtxCancel(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(2)
	p.SetMetrics(reg)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var emitted int
	err := StreamOrderedCtx(ctx, p, 500,
		func(i int) ([]int, error) { return []int{i}, nil },
		func(v int) error {
			emitted++
			if emitted == 3 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamOrderedCtx = %v, want context.Canceled", err)
	}
	// Producers drain asynchronously after the consumer returns; poll the
	// backlog gauge and goroutine count back to quiescence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Snapshot().Gauges["pool.merge.backlog"] == 0 &&
			runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not quiesce: backlog=%d goroutines=%d (was %d)",
				reg.Snapshot().Gauges["pool.merge.backlog"], runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamOrderedCtxDeadline checks that an expired deadline surfaces
// as context.DeadlineExceeded even when producers would happily continue.
func TestStreamOrderedCtxDeadline(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := StreamOrderedCtx(ctx, p, 10_000,
		func(i int) ([]int, error) {
			time.Sleep(time.Millisecond)
			return []int{i}, nil
		},
		func(int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StreamOrderedCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestStreamOrderedCtxPreCancelled: a context already done yields its
// error without launching any producer.
func TestStreamOrderedCtxPreCancelled(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var produced atomic.Int64
	err := StreamOrderedCtx(ctx, p, 50,
		func(i int) ([]int, error) { produced.Add(1); return nil, nil },
		func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if produced.Load() != 0 {
		t.Errorf("%d producers ran under a pre-canceled context", produced.Load())
	}
}
