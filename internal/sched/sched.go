// Package sched is the shard scheduler behind FabP's database scans: it
// tiles a scan range into independent shards and executes them on a
// bounded worker pool shared by every query of a batch — the software
// rendering of the paper's decomposition into parallel alignment lanes
// (256 instances per 512-bit beat), and the same tiling GeneTEK-style
// designs use across compute lanes.
//
// Shards are expressed in *window starts*: a shard [Lo, Hi) scores the
// alignment windows starting in that range, which means the underlying
// kernel reads reference elements [Lo, Hi+Lq−1) — the shardLen + Lq−1
// overlap carry mirrors the cross-beat carry of the hardware reference
// buffer. Because every shard reads from one shared packed reference
// (context array or bit-planes), the carry costs no copying.
package sched

import (
	"runtime"
	"sync"
)

// DefaultShardLen is the default shard size in window starts. It is large
// enough to amortize goroutine dispatch and small enough to load-balance a
// multi-query batch across cores.
const DefaultShardLen = 1 << 18

// Shard is one tile of a scan: window starts [Lo, Hi).
type Shard struct {
	// Index is the shard's position in the plan (shards are emitted in
	// ascending position order).
	Index int
	// Lo and Hi bound the window starts, Lo inclusive, Hi exclusive. Lo is
	// 64-aligned so bit-parallel kernels scan whole blocks.
	Lo, Hi int
}

// Plan tiles `starts` window starts into shards of at most shardLen starts
// each (0 or negative = DefaultShardLen). Shard boundaries are 64-aligned
// for the bit-parallel kernel's block layout; the scalar engine is
// indifferent to alignment.
func Plan(starts, shardLen int) []Shard {
	if starts <= 0 {
		return nil
	}
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	// Round up to the 64-position block granularity.
	shardLen = (shardLen + 63) &^ 63
	shards := make([]Shard, 0, (starts+shardLen-1)/shardLen)
	for lo := 0; lo < starts; lo += shardLen {
		hi := lo + shardLen
		if hi > starts {
			hi = starts
		}
		shards = append(shards, Shard{Index: len(shards), Lo: lo, Hi: hi})
	}
	return shards
}

// Pool is a bounded worker pool. All shards of all queries in a batch run
// on one pool, so total concurrency stays bounded no matter how many
// queries or shards are in flight.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool allowing `workers` concurrent tasks (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool (sized to GOMAXPROCS at first use),
// the default executor for database scans.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Each runs run(0..n-1) on the pool and waits for all of them. Submission
// blocks while the pool is saturated, bounding in-flight work.
func (p *Pool) Each(n int, run func(i int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			run(i)
		}(i)
	}
	wg.Wait()
}

// Gather runs produce(0..n-1) on the pool and concatenates the results in
// index order — shards planned in position order come back as one
// position-ordered hit list.
func Gather[T any](p *Pool, n int, produce func(i int) []T) []T {
	if n == 1 {
		return produce(0)
	}
	parts := make([][]T, n)
	p.Each(n, func(i int) { parts[i] = produce(i) })
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// StreamOrdered runs produce(0..n-1) on the pool and delivers every
// produced item to emit in index order, holding at most Workers()+1
// produced-but-unemitted batches in memory — the bounded-memory engine
// under streaming database scans. The first error from produce or emit
// stops the run (already-launched producers finish, their output is
// dropped) and is returned.
func StreamOrdered[T any](p *Pool, n int, produce func(i int) ([]T, error), emit func(T) error) error {
	if n <= 0 {
		return nil
	}
	type result struct {
		items []T
		err   error
	}
	results := make([]chan result, n)
	for i := range results {
		results[i] = make(chan result, 1)
	}
	// tickets bounds dispatch: one per produced-but-unconsumed shard.
	tickets := make(chan struct{}, p.Workers()+1)
	stop := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			select {
			case tickets <- struct{}{}:
			case <-stop:
				return
			}
			go func(i int) {
				p.sem <- struct{}{}
				items, err := produce(i)
				<-p.sem
				results[i] <- result{items, err}
			}(i)
		}
	}()
	defer close(stop)
	for i := 0; i < n; i++ {
		r := <-results[i]
		<-tickets
		if r.err != nil {
			return r.err
		}
		for _, item := range r.items {
			if err := emit(item); err != nil {
				return err
			}
		}
	}
	return nil
}
