// Package sched is the shard scheduler behind FabP's database scans: it
// tiles a scan range into independent shards and executes them on a
// bounded worker pool shared by every query of a batch — the software
// rendering of the paper's decomposition into parallel alignment lanes
// (256 instances per 512-bit beat), and the same tiling GeneTEK-style
// designs use across compute lanes.
//
// Shards are expressed in *window starts*: a shard [Lo, Hi) scores the
// alignment windows starting in that range, which means the underlying
// kernel reads reference elements [Lo, Hi+Lq−1) — the shardLen + Lq−1
// overlap carry mirrors the cross-beat carry of the hardware reference
// buffer. Because every shard reads from one shared packed reference
// (context array or bit-planes), the carry costs no copying.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fabp/internal/faultinject"
	"fabp/internal/telemetry"
)

// DefaultShardLen is the default shard size in window starts. It is large
// enough to amortize goroutine dispatch and small enough to load-balance a
// multi-query batch across cores.
const DefaultShardLen = 1 << 18

// Shard is one tile of a scan: window starts [Lo, Hi).
type Shard struct {
	// Index is the shard's position in the plan (shards are emitted in
	// ascending position order).
	Index int
	// Lo and Hi bound the window starts, Lo inclusive, Hi exclusive. Every
	// boundary after the first is 64-aligned so bit-parallel kernels scan
	// whole blocks; the plan's own Lo may be unaligned (AlignPlanesRange
	// rounds down and trims), as in a streamed chunk whose fresh windows
	// begin mid-block.
	Lo, Hi int
}

// Plan tiles `starts` window starts into shards of at most shardLen starts
// each. It is PlanRange over [0, starts).
func Plan(starts, shardLen int) []Shard {
	return PlanRange(0, starts, shardLen)
}

// PlanRange tiles the window starts [lo, hi) into shards of at most
// shardLen starts each (0 or negative = DefaultShardLen). Interior shard
// boundaries land on 64-aligned positions for the bit-parallel kernel's
// block layout: the first shard runs from lo to the aligned grid, later
// shards are whole tiles. The scalar engine is indifferent to alignment.
func PlanRange(lo, hi, shardLen int) []Shard {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return nil
	}
	if shardLen <= 0 {
		shardLen = DefaultShardLen
	}
	// Round up to the 64-position block granularity.
	shardLen = (shardLen + 63) &^ 63
	shards := make([]Shard, 0, (hi-lo+shardLen-1)/shardLen+1)
	for lo < hi {
		// Snap the shard end to the aligned tile grid so every boundary
		// after lo itself is 64-aligned (shardLen is a multiple of 64).
		end := lo&^63 + shardLen
		if end > hi {
			end = hi
		}
		shards = append(shards, Shard{Index: len(shards), Lo: lo, Hi: end})
		lo = end
	}
	return shards
}

// Pool is a bounded worker pool. All shards of all queries in a batch run
// on one pool, so total concurrency stays bounded no matter how many
// queries or shards are in flight.
type Pool struct {
	sem chan struct{}
	m   poolMetrics
}

// poolMetrics holds the pool's telemetry handles, resolved once at
// construction so the task path pays only atomic updates. Every field is
// nil-safe: a pool built over a nil registry records nothing.
type poolMetrics struct {
	// queued counts tasks submitted but not yet running (queue pressure);
	// running counts tasks currently executing.
	queued, running *telemetry.Gauge
	// completed counts finished tasks.
	completed *telemetry.Counter
	// wait is submit-to-start latency (time blocked on the semaphore);
	// run is task execution time.
	wait, run *telemetry.Histogram
	// backlog is the ordered-merge depth: StreamOrdered results produced
	// but not yet emitted.
	backlog *telemetry.Gauge
	// canceled counts tasks never dispatched because their run's context
	// was canceled first — shards shed by cooperative cancellation.
	canceled *telemetry.Counter
}

func newPoolMetrics(reg *telemetry.Registry) poolMetrics {
	return poolMetrics{
		queued:    reg.Gauge("pool.tasks.queued"),
		running:   reg.Gauge("pool.tasks.running"),
		completed: reg.Counter("pool.tasks.completed"),
		wait:      reg.Histogram("pool.task.wait"),
		run:       reg.Histogram("pool.task.run"),
		backlog:   reg.Gauge("pool.merge.backlog"),
		canceled:  reg.Counter("pool.tasks.canceled"),
	}
}

// NewPool builds a pool allowing `workers` concurrent tasks (minimum 1),
// reporting telemetry to the process-default registry (see SetMetrics).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		sem: make(chan struct{}, workers),
		m:   newPoolMetrics(telemetry.Default()),
	}
}

// SetMetrics redirects the pool's telemetry to reg (nil disables it).
// Call before submitting work; it is not synchronized with running tasks.
func (p *Pool) SetMetrics(reg *telemetry.Registry) { p.m = newPoolMetrics(reg) }

// acquire blocks until a worker slot is free, recording queue pressure
// and wait latency.
func (p *Pool) acquire() {
	p.m.queued.Add(1)
	t0 := time.Now()
	p.sem <- struct{}{}
	p.m.wait.Observe(time.Since(t0))
	p.m.queued.Add(-1)
}

// acquireCtx is acquire with a cancellation escape: it returns ctx.Err()
// instead of a slot once the context is done, so a canceled scan stops
// queueing behind a saturated pool.
func (p *Pool) acquireCtx(ctx context.Context) error {
	p.m.queued.Add(1)
	t0 := time.Now()
	defer func() {
		p.m.wait.Observe(time.Since(t0))
		p.m.queued.Add(-1)
	}()
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runTask executes one task under the running gauge, run-latency
// histogram and a pprof label attributing profile samples to pool work.
func (p *Pool) runTask(stage string, task func()) {
	p.m.running.Add(1)
	t0 := time.Now()
	telemetry.Labeled("fabp_pool", stage, task)
	p.m.run.Observe(time.Since(t0))
	p.m.running.Add(-1)
	p.m.completed.Inc()
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool (sized to GOMAXPROCS at first use),
// the default executor for database scans.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Each runs run(0..n-1) on the pool and waits for all of them. Submission
// blocks while the pool is saturated, bounding in-flight work.
func (p *Pool) Each(n int, run func(i int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			p.runTask("each", func() { run(i) })
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p.acquire()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			p.runTask("each", func() { run(i) })
		}(i)
	}
	wg.Wait()
}

// EachCtx is Each with cooperative cancellation: the context is checked
// before each task is dispatched (the inter-shard checkpoint), and a slot
// wait aborts when the context fires. Tasks already dispatched run to
// completion — a shard is the cancellation granularity — and EachCtx
// always waits for them before returning, so no goroutine outlives the
// call. The first context error observed is returned; undispatched tasks
// count on pool.tasks.canceled.
//
// A context that can never be canceled (Done() == nil, e.g.
// context.Background) takes the exact Each path.
func (p *Pool) EachCtx(ctx context.Context, n int, run func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx.Done() == nil {
		p.Each(n, run)
		return nil
	}
	if p.Workers() == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				p.m.canceled.Add(uint64(n - i))
				return err
			}
			p.runTask("each", func() { run(i) })
		}
		return nil
	}
	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		if err = p.acquireCtx(ctx); err != nil {
			p.m.canceled.Add(uint64(n - i))
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			p.runTask("each", func() { run(i) })
		}(i)
	}
	wg.Wait()
	return err
}

// Gather runs produce(0..n-1) on the pool and concatenates the results in
// index order — shards planned in position order come back as one
// position-ordered hit list.
func Gather[T any](p *Pool, n int, produce func(i int) []T) []T {
	out, _ := GatherCtx(context.Background(), p, n, produce)
	return out
}

// GatherCtx is Gather under a context: cancellation is checked between
// shard dispatches (see EachCtx) and inside each dispatched task before
// its scan starts, so a cancel mid-plan returns ctx.Err() after at most
// the shards already executing finish. On error the partial results are
// discarded and nil is returned.
func GatherCtx[T any](ctx context.Context, p *Pool, n int, produce func(i int) []T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if n == 1 {
		if err := ctx.Err(); err != nil {
			p.m.canceled.Inc()
			return nil, err
		}
		return produce(0), nil
	}
	parts := make([][]T, n)
	err := p.EachCtx(ctx, n, func(i int) {
		// A task dispatched just before the cancel skips its scan; the
		// call returns the context error either way.
		if ctx.Err() != nil {
			return
		}
		parts[i] = produce(i)
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]T, 0, total)
	for i, part := range parts {
		// The shard-merge fault hook: one atomic load when injection is
		// off, an injected failure aborts the concatenation.
		if err := faultinject.Check(ctx, faultinject.SiteShardMerge, uint64(i)); err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// GatherBatch runs produce(0..n-1) on the pool — each call scanning one
// shard for a whole batch and returning `streams` per-query hit lists —
// and concatenates the results stream-wise in shard order: the fused
// counterpart of Gather, one task per tile instead of one per
// (query, tile) pair. See GatherBatchCtx for the contract.
func GatherBatch[T any](p *Pool, n, streams int, produce func(i int) [][]T) [][]T {
	out, _ := GatherBatchCtx(context.Background(), p, n, streams, produce)
	return out
}

// GatherBatchCtx is GatherBatch under a context: cancellation is checked
// between shard dispatches and inside each dispatched task before its
// scan starts (see EachCtx), so a cancel mid-plan sheds the remaining
// shards of every query at once and returns ctx.Err() after at most the
// shards already executing finish. On error the partial results are
// discarded and nil is returned. produce must return exactly `streams`
// slices (shorter returns simply contribute nothing to the missing
// streams); the result always has len == streams, with nil entries for
// streams that produced no items.
func GatherBatchCtx[T any](ctx context.Context, p *Pool, n, streams int, produce func(i int) [][]T) ([][]T, error) {
	if n <= 0 || streams <= 0 {
		return make([][]T, max(streams, 0)), ctx.Err()
	}
	if n == 1 {
		if err := ctx.Err(); err != nil {
			p.m.canceled.Inc()
			return nil, err
		}
		out := produce(0)
		for len(out) < streams {
			out = append(out, nil)
		}
		return out, nil
	}
	parts := make([][][]T, n)
	err := p.EachCtx(ctx, n, func(i int) {
		// A task dispatched just before the cancel skips its scan; the
		// call returns the context error either way.
		if ctx.Err() != nil {
			return
		}
		parts[i] = produce(i)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, streams)
	for s := 0; s < streams; s++ {
		total := 0
		for _, part := range parts {
			if s < len(part) {
				total += len(part[s])
			}
		}
		if total == 0 {
			continue
		}
		stream := make([]T, 0, total)
		for _, part := range parts {
			if s < len(part) {
				stream = append(stream, part[s]...)
			}
		}
		out[s] = stream
	}
	return out, nil
}

// StreamOrdered runs produce(0..n-1) on the pool and delivers every
// produced item to emit in index order, holding at most Workers()+1
// produced-but-unemitted batches in memory — the bounded-memory engine
// under streaming database scans. The first error from produce or emit
// stops the run (already-launched producers finish, their output is
// dropped) and is returned.
func StreamOrdered[T any](p *Pool, n int, produce func(i int) ([]T, error), emit func(T) error) error {
	return StreamOrderedCtx(context.Background(), p, n, produce, emit)
}

// StreamOrderedCtx is StreamOrdered under a context. Cancellation
// checkpoints sit at every stage boundary: the dispatcher stops launching
// producers, a producer waiting for a pool slot aborts, a dispatched
// producer skips its scan, and the ordered merge stops emitting — so the
// call returns ctx.Err() after at most the shards already executing
// finish. Producers launched before the cancel are always drained before
// any later use of the pool can observe their backlog, and no goroutine
// outlives the shards it was scanning.
func StreamOrderedCtx[T any](ctx context.Context, p *Pool, n int, produce func(i int) ([]T, error), emit func(T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	type result struct {
		items []T
		err   error
	}
	results := make([]chan result, n)
	for i := range results {
		results[i] = make(chan result, 1)
	}
	// tickets bounds dispatch: one per produced-but-unconsumed shard.
	tickets := make(chan struct{}, p.Workers()+1)
	stop := make(chan struct{})
	done := ctx.Done()
	// consumed tracks how many results the ordered merge has taken; on an
	// early stop the dispatcher drains the rest so the backlog gauge
	// returns to its pre-call level.
	var consumed atomic.Int64
	go func() {
		launched := 0
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case tickets <- struct{}{}:
			case <-stop:
				break dispatch
			case <-done:
				p.m.canceled.Add(uint64(n - i))
				break dispatch
			}
			go func(i int) {
				var items []T
				err := p.acquireCtx(ctx)
				if err == nil {
					p.runTask("stream", func() {
						if err = ctx.Err(); err == nil {
							items, err = produce(i)
						}
					})
					<-p.sem
				}
				p.m.backlog.Add(1)
				results[i] <- result{items, err}
			}(i)
			launched++
		}
		<-stop // the consumer is done; consumed is final
		for j := int(consumed.Load()); j < launched; j++ {
			<-results[j]
			p.m.backlog.Add(-1)
		}
	}()
	defer close(stop)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := <-results[i]
		consumed.Store(int64(i + 1))
		p.m.backlog.Add(-1)
		<-tickets
		if r.err != nil {
			return r.err
		}
		// The shard-merge fault hook, mirroring GatherCtx's: an injected
		// failure stops the ordered merge exactly like an emit error.
		if err := faultinject.Check(ctx, faultinject.SiteShardMerge, uint64(i)); err != nil {
			return err
		}
		for _, item := range r.items {
			if err := emit(item); err != nil {
				return err
			}
		}
	}
	return nil
}
