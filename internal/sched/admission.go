package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fabp/internal/telemetry"
)

// ShedError reports a request turned away by an Admission queue without
// running. Reason distinguishes capacity shedding (queue full) from
// deadline shedding (the request could not have finished in time even if
// admitted). RetryAfter is the server's estimate of when retrying is
// worthwhile.
type ShedError struct {
	Reason     string // "capacity" or "deadline"
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: admission shed (%s); retry in ~%s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// admWaiter is one queued request; grant is closed when its weight has
// been debited from the capacity.
type admWaiter struct {
	weight int
	grant  chan struct{}
}

// admissionMetrics holds the queue's telemetry handles, resolved once at
// construction (nil-safe, like poolMetrics).
type admissionMetrics struct {
	// admitted counts grants (immediate or after queueing); shedCapacity
	// and shedDeadline count turn-aways by reason.
	admitted, shedCapacity, shedDeadline *telemetry.Counter
	// wait is queue-entry-to-grant latency for requests that queued.
	wait *telemetry.Histogram
	// held is the debited weight; depth is the queued request count;
	// estimate is the EWMA cost estimate in nanoseconds.
	held, depth, estimate *telemetry.Gauge
}

func newAdmissionMetrics(reg *telemetry.Registry) admissionMetrics {
	return admissionMetrics{
		admitted:     reg.Counter("admission.admitted"),
		shedCapacity: reg.Counter("admission.shed.capacity"),
		shedDeadline: reg.Counter("admission.shed.deadline"),
		wait:         reg.Histogram("admission.wait"),
		held:         reg.Gauge("admission.held"),
		depth:        reg.Gauge("admission.queue.depth"),
		estimate:     reg.Gauge("admission.estimate.ns"),
	}
}

// Admission is a weighted, deadline-aware admission queue: a semaphore of
// `capacity` units fronted by a bounded FIFO wait queue. A request asks
// for `weight` units (a batch of K queries weighs K) and either gets all
// of them atomically, waits its turn, or is shed with a ShedError.
//
// What makes it deadline-aware: Release feeds observed work durations
// into an EWMA cost estimate, and Admit sheds any request whose context
// deadline leaves less time than that estimate — immediately on arrival,
// or mid-queue the moment its remaining time dips below the estimate.
// Shedding a doomed request costs a rejection the client can retry
// against another replica; admitting it burns a slot to produce a 504.
//
// queueLimit bounds how many requests may wait; 0 keeps the historical
// immediate-shed behavior (no queue: capacity full → ShedError).
type Admission struct {
	mu       sync.Mutex
	capacity int
	held     int
	queue    []*admWaiter
	limit    int
	// estNs is the EWMA (α=1/4) of observed work durations, the unit
	// cost used for deadline feasibility and Retry-After.
	estNs int64
	m     admissionMetrics
}

// NewAdmission builds a queue of `capacity` weight units (min 1) with at
// most `queueLimit` waiting requests (min 0), reporting to the default
// telemetry registry.
func NewAdmission(capacity, queueLimit int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &Admission{
		capacity: capacity,
		limit:    queueLimit,
		m:        newAdmissionMetrics(telemetry.Default()),
	}
}

// SetMetrics redirects the queue's telemetry to reg (nil disables it).
// Call before admitting work; it is not synchronized with in-flight
// requests.
func (q *Admission) SetMetrics(reg *telemetry.Registry) { q.m = newAdmissionMetrics(reg) }

// Capacity returns the total weight units.
func (q *Admission) Capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity
}

// Held returns the weight units currently debited.
func (q *Admission) Held() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.held
}

// QueueDepth returns the number of requests currently waiting.
func (q *Admission) QueueDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// Estimate returns the current EWMA cost estimate for one admitted unit
// of work (zero until the first Release observation).
func (q *Admission) Estimate() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return time.Duration(q.estNs)
}

// clampWeight normalizes a request's weight into [1, capacity]; callers
// cap batch sizes themselves, so an over-capacity ask means "everything".
func (q *Admission) clampWeightLocked(weight int) int {
	if weight < 1 {
		weight = 1
	}
	if weight > q.capacity {
		weight = q.capacity
	}
	return weight
}

// retryAfterLocked estimates when a shed request is worth retrying: the
// backlog ahead of it times the unit cost, clamped to [1s, 60s] so
// clients always get a sane, non-zero hint even before any observations.
func (q *Admission) retryAfterLocked() time.Duration {
	est := time.Duration(q.estNs)
	ra := est * time.Duration(len(q.queue)+1)
	if ra < time.Second {
		ra = time.Second
	}
	if ra > time.Minute {
		ra = time.Minute
	}
	return ra
}

// Admit blocks until `weight` units are granted atomically (all or
// nothing — a partially admitted batch would deadlock against another),
// or sheds the request with a *ShedError (queue full, or the ctx
// deadline cannot be met), or returns ctx.Err() if the context fires for
// a reason other than deadline infeasibility while queued. On nil error
// the caller owns the units and must Release them.
func (q *Admission) Admit(ctx context.Context, weight int) error {
	q.mu.Lock()
	weight = q.clampWeightLocked(weight)
	est := time.Duration(q.estNs)

	// Deadline feasibility first: a request that cannot finish before
	// its deadline is shed even when slots are free — running it would
	// spend a slot manufacturing a timeout.
	remaining := time.Duration(-1)
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
		if remaining <= est {
			q.m.shedDeadline.Inc()
			ra := q.retryAfterLocked()
			q.mu.Unlock()
			return &ShedError{Reason: "deadline", RetryAfter: ra}
		}
	}

	// Immediate grant only from an empty queue: arrivals never jump
	// ahead of queued waiters (FIFO fairness).
	if len(q.queue) == 0 && q.held+weight <= q.capacity {
		q.held += weight
		q.m.admitted.Inc()
		q.m.held.Set(int64(q.held))
		q.mu.Unlock()
		return nil
	}

	if len(q.queue) >= q.limit {
		q.m.shedCapacity.Inc()
		ra := q.retryAfterLocked()
		q.mu.Unlock()
		return &ShedError{Reason: "capacity", RetryAfter: ra}
	}

	w := &admWaiter{weight: weight, grant: make(chan struct{})}
	q.queue = append(q.queue, w)
	q.m.depth.Set(int64(len(q.queue)))
	q.mu.Unlock()

	// A queued request with a deadline is shed the moment its remaining
	// time dips to the cost estimate — before the deadline itself, while
	// a 429 + Retry-After is still actionable.
	var infeasible <-chan time.Time
	if remaining >= 0 {
		t := time.NewTimer(remaining - est)
		defer t.Stop()
		infeasible = t.C
	}

	t0 := time.Now()
	select {
	case <-w.grant:
		q.m.wait.Observe(time.Since(t0))
		return nil
	case <-infeasible:
		if q.leave(w) {
			q.mu.Lock()
			q.m.shedDeadline.Inc()
			ra := q.retryAfterLocked()
			q.mu.Unlock()
			return &ShedError{Reason: "deadline", RetryAfter: ra}
		}
		// The grant raced the timer and won; the units are ours.
		q.m.wait.Observe(time.Since(t0))
		return nil
	case <-ctx.Done():
		if q.leave(w) {
			return ctx.Err()
		}
		return nil
	}
}

// leave removes a waiter from the queue, reporting false when the waiter
// had already been granted (in which case the caller keeps the units).
func (q *Admission) leave(w *admWaiter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, cand := range q.queue {
		if cand == w {
			q.queue = append(q.queue[:i], q.queue[i+1:]...)
			q.m.depth.Set(int64(len(q.queue)))
			// Removing a wide waiter from the head can unblock narrower
			// ones behind it.
			q.grantLocked()
			return true
		}
	}
	select {
	case <-w.grant:
		return false
	default:
		// Not queued and not granted cannot happen: grantLocked closes
		// grant before releasing the lock.
		return false
	}
}

// Release returns `weight` units and folds the observed work duration
// into the cost estimate (observed <= 0 skips the estimate update, for
// work that failed before doing anything representative).
func (q *Admission) Release(weight int, observed time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	weight = q.clampWeightLocked(weight)
	q.held -= weight
	if q.held < 0 {
		q.held = 0
	}
	if observed > 0 {
		q.estNs += (observed.Nanoseconds() - q.estNs) / 4
		q.m.estimate.Set(q.estNs)
	}
	q.grantLocked()
	q.m.held.Set(int64(q.held))
}

// grantLocked admits queued waiters in FIFO order while they fit.
func (q *Admission) grantLocked() {
	for len(q.queue) > 0 {
		w := q.queue[0]
		if q.held+w.weight > q.capacity {
			break
		}
		q.queue = q.queue[1:]
		q.held += w.weight
		close(w.grant)
		q.m.admitted.Inc()
	}
	q.m.depth.Set(int64(len(q.queue)))
	q.m.held.Set(int64(q.held))
}
