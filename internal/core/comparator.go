// Package core implements the FabP accelerator itself: the two-LUT custom
// comparator cell, the hand-crafted Pop36 pop-counter (and the naive
// tree-adder variant it is compared against), per-position alignment
// instances, the streaming alignment engine, and a generator that emits the
// whole datapath as an rtl.Netlist with exact LUT/FF counts.
//
// Two implementations of the same semantics live here:
//
//   - Engine: a fast, bit-exact software model used for full-scale
//     alignments and experiments;
//   - BuildNetlist/BuildInstance/...: structural netlist generators whose
//     cycle-accurate simulation is proven equivalent to Engine in tests.
package core

import (
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// CompareLUTsPerElement is the paper's headline figure: each query element
// costs exactly two LUT6s (one multiplexer, one comparison table).
const CompareLUTsPerElement = 2

// RefBit is a 2-signal bus carrying one reference nucleotide (bit 0 first).
type RefBit [2]rtl.Signal

// ComparatorCell instantiates the paper's custom comparator (§III-D,
// Fig. 5(a)): two LUT6s that decide whether query element q (6 instruction
// bits, Q[0] first) can originate from reference nucleotide ref, given the
// two preceding reference nucleotides prev1/prev2.
//
// LUT #1 multiplexes the dependent bit X from {Q[3], prev1[1], prev2[1],
// prev2[0]} under the configuration bits Q[4:5]; LUT #2 holds the Fig. 5(b)
// truth table.
func ComparatorCell(n *rtl.Netlist, q [6]rtl.Signal, ref, prev1, prev2 RefBit) rtl.Signal {
	// Input order must match isa.muxLUTIndex: I0=Q[3], I1=prev1[1],
	// I2=prev2[1], I3=prev2[0], I4=Q[4], I5=Q[5].
	x := n.LUT6(isa.MuxLUTInit, q[3], prev1[1], prev2[1], prev2[0], q[4], q[5])
	// Input order must match isa.compareLUTIndex: I0=ref[0], I1=ref[1],
	// I2=X, I3=Q[2], I4=Q[1], I5=Q[0].
	return n.LUT6(isa.CompareLUTInit, ref[0], ref[1], x, q[2], q[1], q[0])
}

// ConstInstructionSignals expands an instruction into six constant netlist
// signals, for builds where the query is baked into the bitstream.
func ConstInstructionSignals(ins isa.Instruction) [6]rtl.Signal {
	var q [6]rtl.Signal
	for i := range q {
		if ins.Q(uint(i)) == 1 {
			q[i] = rtl.One
		} else {
			q[i] = rtl.Zero
		}
	}
	return q
}
