package core

import (
	"fabp/internal/axi"
	"fabp/internal/bio"
)

// StreamConfig describes the microarchitectural conditions of a streaming
// run: beat width, the iteration count the sized design needs per beat
// (query segmentation, §III-C), and the DRAM stall behaviour.
type StreamConfig struct {
	// Beat is the reference elements per AXI transfer.
	Beat int
	// Iterations is the cycles the datapath needs per beat (from
	// fpga.Size; 1 = full rate).
	Iterations int
	// Stall models DRAM unavailability (nil = ideal).
	Stall axi.StallModel
}

// StreamStats profiles a streaming run at beat granularity.
type StreamStats struct {
	Beats  int
	Cycles int
	// StallCycles waited on DRAM; ComputeCycles waited on segmentation.
	StallCycles   int
	ComputeCycles int
}

// AlignStream processes the reference beat by beat the way the hardware
// does — each beat contributes the Beat window positions that end inside
// it, scored against the carried history — and accounts cycles under the
// stream configuration. The hit list is identical to Align (asserted in
// tests); only the cycle accounting depends on the configuration.
func (e *Engine) AlignStream(ref bio.NucSeq, cfg StreamConfig) ([]Hit, StreamStats) {
	if cfg.Beat <= 0 {
		cfg.Beat = 256
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	m := len(e.prog)
	numBeats := (len(ref) + cfg.Beat - 1) / cfg.Beat

	var hits []Hit
	if len(ref) >= m {
		ctxs := contexts(ref)
		for b := 0; b < numBeats; b++ {
			// Window starts handled by beat b (they end inside it).
			lo := b*cfg.Beat - m + 1
			hi := lo + cfg.Beat
			if lo < 0 {
				lo = 0
			}
			if max := len(ref) - m + 1; hi > max {
				hi = max
			}
			if lo < hi {
				hits = append(hits, e.alignRange(ctxs, lo, hi)...)
			}
		}
	}

	s := axi.SimulateStream(numBeats, cfg.Stall, cfg.Iterations)
	return hits, StreamStats{
		Beats:         numBeats,
		Cycles:        s.TotalCycles + PipelineDepth,
		StallCycles:   s.StallCycles,
		ComputeCycles: s.ComputeBoundCycles,
	}
}
