package core

import (
	"sync"

	"fabp/internal/rtl"
)

// PopCountLUTs returns the exact LUT6 count of a pop-counter of the given
// width and variant, by generating the netlist and counting. Results are
// memoized; the fpga resource estimator uses these exact figures rather
// than an approximation.
func PopCountLUTs(width int, v PopVariant) int {
	if width <= 0 {
		return 0
	}
	popCostMu.Lock()
	defer popCostMu.Unlock()
	key := popKey{width, v}
	if c, ok := popCostCache[key]; ok {
		return c
	}
	n := rtl.New("cost")
	BuildPopCount(n, n.InputBus("x", width), v)
	c := n.Stats().LUTs
	popCostCache[key] = c
	return c
}

type popKey struct {
	width int
	v     PopVariant
}

var (
	popCostMu    sync.Mutex
	popCostCache = map[popKey]int{}
)
