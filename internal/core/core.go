package core
