package core

import (
	"fmt"
	"io"

	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// NetlistRunner drives a generated FabP netlist cycle by cycle: it loads
// the encoded query into the query flip-flops, streams reference beats
// through the AXI-side inputs and collects hits from the write-back
// outputs. It exists to prove the netlist equivalent to Engine and to
// demonstrate stall insensitivity; Engine is the tool for large runs.
type NetlistRunner struct {
	cfg   NetlistConfig
	prog  isa.Program
	n     *rtl.Netlist
	ports *AccelPorts
	sim   *rtl.Simulator

	// cycles counts clock edges spent in the last Align call.
	cycles int
	// rec, when attached, captures every cycle for testbench emission.
	rec *rtl.TraceRecorder
}

// AttachRecorder captures every subsequent cycle's stimulus and outputs
// into rec (pass nil to detach). Use with rtl.TraceRecorder.EmitTestbench
// to produce a self-checking Verilog testbench of a real alignment.
func (r *NetlistRunner) AttachRecorder(rec *rtl.TraceRecorder) { r.rec = rec }

// AttachVCD streams every subsequent cycle of the runner's simulation as a
// VCD waveform to w.
func (r *NetlistRunner) AttachVCD(w io.Writer) (*rtl.VCDWriter, error) {
	vcd := rtl.NewVCDWriter(w, r.n)
	r.sim.AttachVCD(vcd)
	return vcd, nil
}

// NewNetlistRunner builds the netlist for cfg and elaborates a simulator.
// The program length must equal cfg.QueryElems.
func NewNetlistRunner(cfg NetlistConfig, prog isa.Program) (*NetlistRunner, error) {
	if len(prog) != cfg.QueryElems {
		return nil, fmt.Errorf("core: program has %d elements, config wants %d", len(prog), cfg.QueryElems)
	}
	n, ports, err := BuildNetlist(cfg)
	if err != nil {
		return nil, err
	}
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		return nil, err
	}
	return &NetlistRunner{cfg: cfg, prog: prog, n: n, ports: ports, sim: sim}, nil
}

// Netlist exposes the generated design (for stats or Verilog emission).
func (r *NetlistRunner) Netlist() *rtl.Netlist { return r.n }

// Cycles reports the clock edges consumed by the last Align call.
func (r *NetlistRunner) Cycles() int { return r.cycles }

// loadQuery drives the query inputs and pulses the load enable for one
// cycle.
func (r *NetlistRunner) loadQuery() {
	for i, ins := range r.prog {
		for b := 0; b < 6; b++ {
			r.sim.Set(r.ports.Query[i][b], ins.Q(uint(b)))
		}
	}
	r.sim.Set(r.ports.QueryLoad, 1)
	r.step()
	r.sim.Set(r.ports.QueryLoad, 0)
}

// Align streams the reference through the netlist at full rate (one valid
// beat per cycle) and returns all hits in position order.
func (r *NetlistRunner) Align(ref bio.NucSeq) []Hit {
	return r.AlignWithStalls(ref, nil)
}

// AlignWithStalls streams the reference with stallsBefore[b] idle (invalid)
// cycles inserted before beat b, modeling cycles where the AXI port has no
// valid DRAM data. Hits must be identical to Align — stalls change timing
// only; the test suite asserts this.
func (r *NetlistRunner) AlignWithStalls(ref bio.NucSeq, stallsBefore []int) []Hit {
	r.sim.Reset()
	r.loadQuery()

	numBeats := (len(ref) + r.cfg.Beat - 1) / r.cfg.Beat
	var hits []Hit
	// Shadow pipeline tracking which beat's results are visible: the last
	// slot is the beat whose hits are readable this cycle (-1 = bubble).
	latency := r.ports.Latency
	shadow := make([]int, latency)
	for i := range shadow {
		shadow[i] = -1
	}
	startCycle := r.sim.Cycle()

	step := func(beat int, valid bool) {
		r.driveBeat(ref, beat, valid)
		copy(shadow[1:], shadow[:latency-1])
		shadow[0] = -1
		if valid {
			shadow[0] = beat
		}
		if last := shadow[latency-1]; last >= 0 {
			r.collect(last, len(ref), &hits)
		}
	}

	for b := 0; b < numBeats; b++ {
		if b < len(stallsBefore) {
			for s := 0; s < stallsBefore[b]; s++ {
				step(0, false)
			}
		}
		step(b, true)
		// Segmented builds need the datapath to itself for the remaining
		// iterations (the AXI port stalls).
		for i := 1; i < r.ports.BeatInterval; i++ {
			step(0, false)
		}
	}
	for i := 0; i < latency; i++ {
		step(0, false)
	}
	r.cycles = r.sim.Cycle() - startCycle
	return hits
}

// driveBeat presents one beat of reference elements (padded with A beyond
// the reference end) plus the valid flag, then clocks one cycle.
func (r *NetlistRunner) driveBeat(ref bio.NucSeq, beat int, valid bool) {
	for i := 0; i < r.cfg.Beat; i++ {
		var nt bio.Nucleotide
		if j := beat*r.cfg.Beat + i; valid && j < len(ref) {
			nt = ref[j]
		}
		r.sim.Set(r.ports.Beat[i][0], nt.Bit(0))
		r.sim.Set(r.ports.Beat[i][1], nt.Bit(1))
	}
	v := uint8(0)
	if valid {
		v = 1
	}
	r.sim.Set(r.ports.BeatValid, v)
	r.step()
}

// step captures the cycle (when a recorder is attached) and clocks once.
func (r *NetlistRunner) step() {
	if r.rec != nil {
		r.rec.Capture(r.sim)
	}
	r.sim.Step()
}

// collect reads the hits of the given beat (whose results are currently on
// the outputs) into hits, mapping instance k to its global window start.
func (r *NetlistRunner) collect(beat, refLen int, hits *[]Hit) {
	r.sim.Eval()
	if r.sim.Get(r.ports.HitsValid) != 1 {
		return
	}
	base := beat*r.cfg.Beat - r.cfg.QueryElems + 1
	for k := 0; k < r.cfg.Beat; k++ {
		p := base + k
		if p < 0 || p > refLen-r.cfg.QueryElems {
			continue
		}
		if r.sim.Get(r.ports.Hits[k]) == 1 {
			score := int(r.sim.GetBus(r.ports.Scores[k]))
			*hits = append(*hits, Hit{Pos: p, Score: score})
		}
	}
}
