package core

import (
	"fmt"

	"fabp/internal/rtl"
)

// NetlistConfig parameterizes the generated FabP datapath.
type NetlistConfig struct {
	// QueryElems is the number of back-translated query elements (3 × the
	// protein length). The paper's builds support up to 150 (FabP-50) and
	// 750 (FabP-250).
	QueryElems int
	// Beat is the number of reference elements delivered per AXI data
	// transfer; the paper's 512-bit port carries 256. Small values keep
	// test netlists tractable.
	Beat int
	// Threshold is the minimum alignment score that produces a hit.
	Threshold int
	// Pop selects the pop-counter implementation.
	Pop PopVariant
	// PipelinedPop inserts register stages through the pop-counter (the
	// paper's Fig. 4 "pipelined Pop-Counter"), trading latency for clock
	// rate. Full-rate builds only.
	PipelinedPop bool
	// Iterations segments the query: each beat is processed over this many
	// cycles with comparators sized for one segment and an accumulator
	// summing partial scores (§III-C long-query operation). 0 or 1 builds
	// the full-rate datapath.
	Iterations int
	// WriteBack adds the §III-C write-back unit: hits drain through a
	// priority encoder into a staging FIFO and leave as (position, score)
	// records on a pop interface. Requires a power-of-two Beat and a
	// full-rate build (Iterations <= 1).
	WriteBack bool
	// BeatBits sizes the write-back beat counter (default 16).
	BeatBits int
	// WBDepth sizes the write-back staging FIFO (default 8).
	WBDepth int
}

// Validate checks the configuration.
func (c NetlistConfig) Validate() error {
	if c.QueryElems <= 0 {
		return fmt.Errorf("core: QueryElems must be positive, got %d", c.QueryElems)
	}
	if c.Beat <= 0 {
		return fmt.Errorf("core: Beat must be positive, got %d", c.Beat)
	}
	if c.Threshold < 0 || c.Threshold > c.QueryElems {
		return fmt.Errorf("core: Threshold %d outside [0,%d]", c.Threshold, c.QueryElems)
	}
	if c.WriteBack && c.Beat&(c.Beat-1) != 0 {
		return fmt.Errorf("core: write-back requires a power-of-two Beat, got %d", c.Beat)
	}
	if c.Iterations > 1 {
		if c.WriteBack {
			return fmt.Errorf("core: write-back is only wired for full-rate builds")
		}
		if c.PipelinedPop {
			return fmt.Errorf("core: pipelined pop-counter is only wired for full-rate builds")
		}
		if c.Iterations > c.QueryElems {
			return fmt.Errorf("core: %d iterations exceed %d query elements", c.Iterations, c.QueryElems)
		}
	}
	return nil
}

// AccelPorts exposes the generated accelerator's port signals for a
// testbench or simulator harness.
type AccelPorts struct {
	// QueryLoad enables capturing Query into the query flip-flops.
	QueryLoad rtl.Signal
	// Query carries the encoded query: 6 signals per element, element 0
	// first.
	Query [][6]rtl.Signal
	// BeatValid qualifies Beat for one cycle (the AXI read handshake).
	BeatValid rtl.Signal
	// Beat carries one reference transfer: Beat[i] is element i (2 bits).
	Beat []RefBit
	// Hits are the per-instance hit outputs, one per beat position; hit k
	// of a beat corresponds to the window starting Lq-1 elements before
	// beat element k... (see Engine for the global position mapping).
	Hits []rtl.Signal
	// Scores are the per-instance registered score buses.
	Scores [][]rtl.Signal
	// HitsValid is 1 when Hits/Scores correspond to a processed beat
	// (BeatValid delayed by the pipeline depth).
	HitsValid rtl.Signal
	// WB holds the write-back unit's ports when the configuration enables
	// it (nil otherwise).
	WB *WriteBackPorts
	// Latency is the number of clock edges between a beat's acceptance and
	// its hits appearing on the outputs (PipelineDepth for the full-rate
	// build; Iterations+1 for segmented builds).
	Latency int
	// BeatInterval is the minimum number of cycles between accepted beats
	// (1 for full rate; Iterations for segmented builds — the §III-C
	// effective-bandwidth division).
	BeatInterval int
}

// PipelineDepth is the number of cycles between a valid beat entering the
// reference buffer and its hits appearing on the outputs: one cycle for the
// buffer itself, one for the match register, one for the score register.
const PipelineDepth = 3

// BuildNetlist generates the complete FabP streaming datapath (§III-C,
// Fig. 3): query storage in flip-flops, the (Lq+Beat)-element reference
// stream buffer with the Lq-element carry between consecutive beats, Beat
// alignment instances, pop-counters and threshold comparators.
//
// The generated module is fully synchronous with one clock; the returned
// ports let a harness drive AXI beats and observe hits. Resource counts of
// the result are exact and feed the Table I model validation.
func BuildNetlist(cfg NetlistConfig) (*rtl.Netlist, *AccelPorts, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Iterations > 1 {
		return buildSegmentedNetlist(cfg)
	}
	n := rtl.New(fmt.Sprintf("fabp_q%d_b%d", cfg.QueryElems, cfg.Beat))
	ports := &AccelPorts{}

	// Query storage: 6 FFs per element, loaded while QueryLoad is high.
	ports.QueryLoad = n.Input("qload")
	ports.Query = make([][6]rtl.Signal, cfg.QueryElems)
	query := make([][6]rtl.Signal, cfg.QueryElems)
	for i := 0; i < cfg.QueryElems; i++ {
		for b := 0; b < 6; b++ {
			in := n.Input(fmt.Sprintf("q%d_%d", i, b))
			ports.Query[i][b] = in
			query[i][b] = n.DFFE(in, ports.QueryLoad)
		}
	}

	// AXI beat input.
	ports.BeatValid = n.Input("beat_valid")
	ports.Beat = make([]RefBit, cfg.Beat)
	for i := 0; i < cfg.Beat; i++ {
		ports.Beat[i] = RefBit{
			n.Input(fmt.Sprintf("beat%d_0", i)),
			n.Input(fmt.Sprintf("beat%d_1", i)),
		}
	}

	// Reference stream buffer: Lq + Beat nucleotides. On each valid beat
	// the last Lq elements shift down and the new beat fills the top
	// ("FabP keeps the last Lq elements of the current Reference Stream
	// buffer and concatenates it with the next incoming reference").
	bufLen := cfg.QueryElems + cfg.Beat
	refBuf := make([]RefBit, bufLen)
	// Allocate Q outputs first so D connections can reference them.
	for i := range refBuf {
		// Placeholder; filled below with real DFFs.
		refBuf[i] = RefBit{}
	}
	// The D of carry position i is the Q of position i+Beat, which is
	// itself a DFF. Build from the top (new data) down so sources exist.
	// DFF Q signals are created on instantiation; we need forward
	// references, so instantiate in two passes using intermediate wires is
	// unnecessary: position i+Beat may itself be a carry position when
	// Beat < Lq. Build top region first, then carries in descending index
	// order (i from Lq-1 down to 0 reads i+Beat which is already built).
	for j := 0; j < cfg.Beat; j++ {
		i := cfg.QueryElems + j
		refBuf[i] = RefBit{
			n.DFFE(ports.Beat[j][0], ports.BeatValid),
			n.DFFE(ports.Beat[j][1], ports.BeatValid),
		}
		n.SetName(refBuf[i][0], fmt.Sprintf("refbuf%d_0", i))
		n.SetName(refBuf[i][1], fmt.Sprintf("refbuf%d_1", i))
	}
	for i := cfg.QueryElems - 1; i >= 0; i-- {
		src := refBuf[i+cfg.Beat]
		refBuf[i] = RefBit{
			n.DFFE(src[0], ports.BeatValid),
			n.DFFE(src[1], ports.BeatValid),
		}
		n.SetName(refBuf[i][0], fmt.Sprintf("refbuf%d_0", i))
		n.SetName(refBuf[i][1], fmt.Sprintf("refbuf%d_1", i))
	}

	// Valid pipeline: beats take one cycle to enter the buffer, then the
	// instance pipeline adds two more stages (or 1 + the pop-counter's
	// register stages in the pipelined-pop build).
	v1 := n.DFF(ports.BeatValid)
	v2 := n.DFF(v1)

	zeroRef := RefBit{rtl.Zero, rtl.Zero}
	at := func(i int) RefBit {
		if i < 0 {
			return zeroRef
		}
		return refBuf[i]
	}

	// Alignment instances: instance k windows refBuf[k+1 .. k+Lq], the k-th
	// new alignment position of this beat.
	ports.Hits = make([]rtl.Signal, cfg.Beat)
	ports.Scores = make([][]rtl.Signal, cfg.Beat)
	window := make([]RefBit, cfg.QueryElems)
	prev1 := make([]RefBit, cfg.QueryElems)
	prev2 := make([]RefBit, cfg.QueryElems)
	popStages := 0
	for k := 0; k < cfg.Beat; k++ {
		for i := 0; i < cfg.QueryElems; i++ {
			window[i] = at(k + 1 + i)
			prev1[i] = at(k + i)
			prev2[i] = at(k + i - 1)
		}
		if cfg.PipelinedPop {
			// Free-running pipeline: comparator -> match register ->
			// registered pop-counter stages; validity rides the delay
			// chain instead of per-stage enables.
			matches := make([]rtl.Signal, cfg.QueryElems)
			for i := range matches {
				m := ComparatorCell(n, query[i], window[i], prev1[i], prev2[i])
				matches[i] = n.DFF(m)
			}
			sum, stages := BuildPopCountPipelined(n, matches, rtl.One)
			popStages = stages
			score := trimWidth(sum, ScoreWidth(cfg.QueryElems))
			ports.Hits[k] = n.CompareGEConst(score, uint(cfg.Threshold))
			ports.Scores[k] = score
		} else {
			res := BuildInstance(n, query, window, prev1, prev2, cfg.Threshold, cfg.Pop, v1, v2)
			ports.Hits[k] = res.Hit
			ports.Scores[k] = res.Score
		}
		n.Output(fmt.Sprintf("hit_%d", k), ports.Hits[k])
		n.OutputBus(fmt.Sprintf("score_%d", k), ports.Scores[k])
	}

	// Hits-valid: beat_valid delayed by the instance pipeline depth.
	depth := PipelineDepth
	if cfg.PipelinedPop {
		depth = 2 + popStages // refbuf + match register + pop stages
	}
	hv := v2 // two delays so far (v1, v2)
	for i := 2; i < depth; i++ {
		hv = n.DFF(hv)
	}
	ports.HitsValid = hv
	n.SetName(ports.HitsValid, "hits_valid")
	n.Output("hits_valid", ports.HitsValid)

	if cfg.WriteBack {
		beatBits := cfg.BeatBits
		if beatBits == 0 {
			beatBits = 16
		}
		depth := cfg.WBDepth
		if depth == 0 {
			depth = 8
		}
		recPop := n.Input("wb_pop")
		wb, err := BuildWriteBack(n, ports.Hits, ports.Scores, ports.HitsValid, recPop, beatBits, depth)
		if err != nil {
			return nil, nil, err
		}
		n.Output("wb_valid", wb.RecValid)
		n.OutputBus("wb_pos", wb.RecPos)
		n.OutputBus("wb_score", wb.RecScore)
		n.Output("wb_busy", wb.Busy)
		n.Output("wb_overflow", wb.Overflow)
		ports.WB = wb
	}

	ports.Latency = depth
	ports.BeatInterval = 1

	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	return n, ports, nil
}
