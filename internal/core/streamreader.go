package core

import (
	"context"
	"fmt"
	"io"

	"fabp/internal/bio"
)

// AlignReader scans a nucleotide stream of arbitrary size in fixed-size
// chunks, carrying the last QueryElems-1 elements between chunks so no
// window is lost at a boundary — the software mirror of the hardware's
// reference-stream carry (§III-C), and the way to scan references too
// large to hold unpacked in memory.
//
// The reader must yield raw sequence letters (A/C/G/T/U, either case);
// whitespace is skipped, anything else is an error. Hits stream to the
// callback in position order; returning a non-nil error stops the scan.
func (e *Engine) AlignReader(r io.Reader, emit func(Hit) error) error {
	return e.AlignReaderContext(context.Background(), r, emit)
}

// AlignReaderContext is AlignReader with cooperative cancellation: the
// context is checked before every read — the chunk boundary is the
// cancellation granularity — and the scan returns ctx.Err() without
// waiting for the rest of the stream. It cannot interrupt a Read already
// blocked in the reader; wrap the reader if its source needs unblocking.
func (e *Engine) AlignReaderContext(ctx context.Context, r io.Reader, emit func(Hit) error) error {
	const chunkLetters = 1 << 20
	m := len(e.prog)

	carry := make(bio.NucSeq, 0, m+1)
	buf := make([]byte, chunkLetters)
	seq := make(bio.NucSeq, 0, chunkLetters+m+2)
	base := 0 // global position of seq[0]
	skip := 0 // window starts below this are re-carried context, already emitted

	flush := func(final bool) error {
		n := len(seq) - m + 1
		if !final {
			// Only emit windows whose full extent is present; keep the
			// last m-1 elements (plus context) for the next chunk.
			n = len(seq) - (m - 1)
		}
		if n <= skip {
			return nil
		}
		ctxs := contexts(seq)
		for _, h := range e.alignRange(ctxs, skip, n) {
			if err := emit(Hit{Pos: base + h.Pos, Score: h.Score}); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		nRead, readErr := r.Read(buf)
		for _, b := range buf[:nRead] {
			switch b {
			case ' ', '\t', '\n', '\r':
				continue
			}
			nt, err := bio.ParseNucleotide(b)
			if err != nil {
				return fmt.Errorf("core: position %d: %w", base+len(seq), err)
			}
			seq = append(seq, nt)
		}
		if len(seq) >= chunkLetters {
			if err := flush(false); err != nil {
				return err
			}
			// Carry the unemitted tail (m-1 elements) plus 2 elements of
			// comparison context for the first carried window.
			keep := m + 1
			if keep > len(seq) {
				keep = len(seq)
			}
			carry = append(carry[:0], seq[len(seq)-keep:]...)
			base += len(seq) - keep
			seq = append(seq[:0], carry...)
			skip = keep - (m - 1) // the context prefix, already emitted
		}
		if readErr == io.EOF {
			return flush(true)
		}
		if readErr != nil {
			// Emit every window already complete in seq before surfacing
			// the failure — the prefix scanned so far is valid work, exactly
			// as on EOF — and wrap the error with the global stream position
			// the way the parse path does, so the caller can resume.
			if err := flush(true); err != nil {
				return err
			}
			return fmt.Errorf("core: position %d: %w", base+len(seq), readErr)
		}
	}
}

// AlignReaderAll is AlignReader collecting every hit.
func (e *Engine) AlignReaderAll(r io.Reader) ([]Hit, error) {
	var hits []Hit
	err := e.AlignReader(r, func(h Hit) error {
		hits = append(hits, h)
		return nil
	})
	return hits, err
}
