package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 0); err == nil {
		t.Error("empty program must fail")
	}
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	if _, err := NewEngine(prog, -1); err == nil {
		t.Error("negative threshold must fail")
	}
	if _, err := NewEngine(prog, 4); err == nil {
		t.Error("threshold beyond program length must fail")
	}
	e, err := NewEngine(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.QueryElems() != 3 || e.Threshold() != 3 {
		t.Error("accessors wrong")
	}
}

// TestEngineMatchesNaiveScore: the table-driven engine must equal the
// instruction-level naive scorer everywhere.
func TestEngineMatchesNaiveScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		p := bio.RandomProtSeq(rng, 3+rng.Intn(10))
		prog := isa.MustEncodeProtein(p)
		ref := bio.RandomNucSeq(rng, len(prog)+rng.Intn(200))
		e, err := NewEngine(prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		hits := e.Align(ref)
		n := len(ref) - len(prog) + 1
		if len(hits) != n {
			t.Fatalf("threshold 0 must hit every position: %d != %d", len(hits), n)
		}
		for _, h := range hits {
			want := prog.Score(ref[h.Pos : h.Pos+len(prog)])
			if h.Score != want {
				t.Fatalf("pos %d: engine %d, naive %d", h.Pos, h.Score, want)
			}
			if got := e.Score(ref, h.Pos); got != want {
				t.Fatalf("pos %d: Score() %d, naive %d", h.Pos, got, want)
			}
		}
	}
}

func TestEngineThresholdFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := bio.RandomProtSeq(rng, 10)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 2000)
	all, _ := NewEngine(prog, 0)
	half, _ := NewEngine(prog, len(prog)/2)
	allHits := all.Align(ref)
	halfHits := half.Align(ref)
	if len(halfHits) >= len(allHits) {
		t.Error("threshold must filter")
	}
	want := 0
	for _, h := range allHits {
		if h.Score >= len(prog)/2 {
			want++
		}
	}
	if len(halfHits) != want {
		t.Errorf("filtered %d, want %d", len(halfHits), want)
	}
}

func TestEngineShortReference(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Trp})
	e, _ := NewEngine(prog, 0)
	if hits := e.Align(bio.NucSeq{bio.A, bio.U}); hits != nil {
		t.Error("reference shorter than query must yield no hits")
	}
	if _, ok := e.BestHit(bio.NucSeq{bio.A}); ok {
		t.Error("BestHit on short reference must report not-ok")
	}
}

func TestEnginePlantedGeneRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref, genes := bio.SyntheticReference(rng, 30000, 4, 40)
	for _, g := range genes {
		// Avoid the dropped-Ser effect by requiring only a near-perfect
		// score; a perfect score is guaranteed without Ser residues.
		prog := isa.MustEncodeProtein(g.Protein)
		e, _ := NewEngine(prog, len(prog)-2*countSer(g.Protein))
		hits := e.Align(ref)
		found := false
		for _, h := range hits {
			if h.Pos == g.Pos {
				found = true
			}
		}
		if !found {
			t.Errorf("planted gene at %d not recovered", g.Pos)
		}
	}
}

func countSer(p bio.ProtSeq) int {
	n := 0
	for _, a := range p {
		if a == bio.Ser {
			n++
		}
	}
	return n
}

func TestEngineParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := bio.RandomProtSeq(rng, 20)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 50000)
	e, _ := NewEngine(prog, 30)
	e.SetParallelism(1)
	serial := e.Align(ref)
	e.SetParallelism(8)
	parallel := e.Align(ref)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel results differ: %d vs %d hits", len(serial), len(parallel))
	}
	e.SetParallelism(0) // clamps to 1
	clamped := e.Align(ref)
	if !reflect.DeepEqual(serial, clamped) {
		t.Error("clamped parallelism changed results")
	}
}

func TestEngineHitsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := bio.RandomProtSeq(rng, 5)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 100000)
	e, _ := NewEngine(prog, 8)
	e.SetParallelism(4)
	hits := e.Align(ref)
	for i := 1; i < len(hits); i++ {
		if hits[i].Pos <= hits[i-1].Pos {
			t.Fatal("hits must be strictly position-ordered")
		}
	}
}

func TestEngineBestHit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := bio.RandomProtSeq(rng, 15)
	for i := range p {
		if p[i] == bio.Ser {
			p[i] = bio.Ala
		}
	}
	gene := bio.EncodeGene(rng, p)
	ref := bio.RandomNucSeq(rng, 5000)
	pos := 1234
	copy(ref[pos:], gene)
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, 0)
	best, ok := e.BestHit(ref)
	if !ok {
		t.Fatal("BestHit failed")
	}
	if best.Pos != pos || best.Score != len(prog) {
		t.Errorf("best = %+v, want pos %d score %d", best, pos, len(prog))
	}
}

func TestEngineAlignPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := bio.RandomProtSeq(rng, 8)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 3000)
	e, _ := NewEngine(prog, 10)
	if !reflect.DeepEqual(e.Align(ref), e.AlignPacked(bio.Pack(ref))) {
		t.Error("packed alignment differs")
	}
}
