package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// TestRandomConfigSweep fuzzes the hardware/software equivalence across
// randomly drawn build shapes: query length, beat width, threshold,
// pop-counter variant, pipelining and segmentation.
func TestRandomConfigSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		residues := 1 + rng.Intn(4)
		prog := isa.MustEncodeProtein(bio.RandomProtSeq(rng, residues))
		cfg := NetlistConfig{
			QueryElems: len(prog),
			Beat:       []int{2, 4, 8, 16}[rng.Intn(4)],
			Threshold:  rng.Intn(len(prog) + 1),
			Pop:        PopVariant(rng.Intn(2)),
		}
		switch rng.Intn(3) {
		case 1:
			cfg.PipelinedPop = true
		case 2:
			cfg.Iterations = 2 + rng.Intn(2)
			if cfg.Iterations > cfg.QueryElems {
				cfg.Iterations = cfg.QueryElems
			}
		}
		runner, err := NewNetlistRunner(cfg, prog)
		if err != nil {
			t.Fatalf("trial %d cfg %+v: %v", trial, cfg, err)
		}
		engine, _ := NewEngine(prog, cfg.Threshold)
		ref := bio.RandomNucSeq(rng, 30+rng.Intn(120))
		hw := runner.Align(ref)
		sw := engine.Align(ref)
		if !reflect.DeepEqual(hw, sw) {
			t.Fatalf("trial %d cfg %+v: hw %v != sw %v", trial, cfg, hw, sw)
		}
	}
}

// TestScoreDistributionExactEnumeration bounds the independence
// approximation of ScoreDistribution by exhaustively enumerating every
// window for short queries (the approximation is exact without Type III
// elements; with them the error stays small).
func TestScoreDistributionExactEnumeration(t *testing.T) {
	cases := []bio.ProtSeq{
		{bio.Met, bio.Trp},          // pure Type I — exact
		{bio.Phe, bio.Lys},          // Type II — exact (self-contained elements)
		{bio.Leu, bio.Arg},          // Type III heavy — approximate
		{bio.Ser, bio.Leu},          // D + dependent
		{bio.Met, bio.Leu, bio.Arg}, // mixed, 9 elements
	}
	for _, q := range cases {
		prog := isa.MustEncodeProtein(q)
		e, _ := NewEngine(prog, 0)
		pmf := e.ScoreDistribution()
		m := len(prog)

		exact := make([]float64, m+1)
		total := 1 << uint(2*m)
		w := make(bio.NucSeq, m)
		for v := 0; v < total; v++ {
			for i := 0; i < m; i++ {
				w[i] = bio.Nucleotide(v >> uint(2*i) & 3)
			}
			exact[prog.Score(w)]++
		}
		for s := range exact {
			exact[s] /= float64(total)
		}

		maxErr := 0.0
		for s := 0; s <= m; s++ {
			if d := abs64(pmf[s] - exact[s]); d > maxErr {
				maxErr = d
			}
		}
		hasTypeIII := false
		for _, ins := range prog {
			if ins.Q(0) == 1 && ins.DepSelect() != 0 {
				hasTypeIII = true
			}
		}
		if !hasTypeIII && maxErr > 1e-12 {
			t.Errorf("%s: distribution must be exact without dependent elements (err %g)", q, maxErr)
		}
		if maxErr > 0.06 {
			t.Errorf("%s: independence approximation error %g too large", q, maxErr)
		}
		t.Logf("%s: max pmf error %.4f (TypeIII=%v)", q, maxErr, hasTypeIII)
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
