package core

import (
	"fmt"

	"fabp/internal/bio"
)

// AlignViaWriteBack streams the reference through a write-back-enabled
// netlist, collecting hits from the (position, score) record stream the WB
// unit emits — the full §III-C path: comparators → pop-counters →
// threshold → priority encoder → staging FIFO → host.
//
// Beats are issued conservatively (each beat's hits drain fully before the
// next beat enters) so the staging FIFO can never overflow; the test suite
// asserts the record stream reproduces Align exactly.
func (r *NetlistRunner) AlignViaWriteBack(ref bio.NucSeq) ([]Hit, error) {
	if r.ports.WB == nil {
		return nil, fmt.Errorf("core: netlist was built without the write-back unit")
	}
	r.sim.Reset()
	r.loadQuery()
	wb := r.ports.WB
	startCycle := r.sim.Cycle()

	var hits []Hit
	numBeats := (len(ref) + r.cfg.Beat - 1) / r.cfg.Beat
	kBits := 0
	for 1<<uint(kBits) < r.cfg.Beat {
		kBits++
	}

	drain := func() error {
		for guard := 0; ; guard++ {
			if guard > 10000 {
				return fmt.Errorf("core: write-back drain did not converge")
			}
			r.sim.Eval()
			valid := r.sim.Get(wb.RecValid) == 1
			busy := r.sim.Get(wb.Busy) == 1
			if valid {
				raw := r.sim.GetBus(wb.RecPos)
				k := int(raw & (1<<uint(kBits) - 1))
				beat := int(raw >> uint(kBits))
				pos := beat*r.cfg.Beat + k - (r.cfg.QueryElems - 1)
				if pos >= 0 && pos <= len(ref)-r.cfg.QueryElems {
					hits = append(hits, Hit{
						Pos:   pos,
						Score: int(r.sim.GetBus(wb.RecScore)),
					})
				}
				r.sim.Set(wb.RecPop, 1)
			} else {
				r.sim.Set(wb.RecPop, 0)
				if !busy {
					return nil // pop already deasserted for the next beat
				}
			}
			r.driveBeat(ref, 0, false) // idle cycle (also steps)
		}
	}

	for b := 0; b < numBeats; b++ {
		r.driveBeat(ref, b, true)
		// Let the pipeline deliver this beat's hits into the WB unit.
		for i := 0; i < PipelineDepth; i++ {
			r.driveBeat(ref, 0, false)
		}
		if err := drain(); err != nil {
			return nil, err
		}
	}
	if r.sim.Get(wb.Overflow) == 1 {
		return nil, fmt.Errorf("core: write-back overflow despite conservative pacing")
	}
	r.cycles = r.sim.Cycle() - startCycle
	return hits, nil
}
