package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// TestPipelinedPopCountCorrect: the registered pop-counter computes the
// same sums, shifted by its latency.
func TestPipelinedPopCountCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, width := range []int{1, 6, 13, 36, 50} {
		n := rtl.New("pp")
		in := n.InputBus("x", width)
		sum, latency := BuildPopCountPipelined(n, in, rtl.One)
		if latency < 1 {
			t.Fatalf("width %d: latency %d", width, latency)
		}
		sim, err := rtl.NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		// Feed a stream of random vectors; expect each popcount latency
		// cycles later.
		var fed []uint64
		for cycle := 0; cycle < 40; cycle++ {
			v := rng.Uint64() & (1<<uint(width) - 1)
			sim.SetBus(in, v)
			sim.Eval()
			if cycle >= latency {
				want := popcountBits(fed[cycle-latency])
				if got := sim.GetBus(sum); got != want {
					t.Fatalf("width %d cycle %d: sum %d, want %d", width, cycle, got, want)
				}
			}
			fed = append(fed, v)
			sim.Step()
		}
	}
}

func popcountBits(v uint64) uint64 {
	var n uint64
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestPipelinedNetlistMatchesEngine: the pipelined-pop datapath is one
// more bit-exact rendering of the same semantics.
func TestPipelinedNetlistMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	p := bio.RandomProtSeq(rng, 4)
	prog := isa.MustEncodeProtein(p)
	threshold := len(prog) / 2
	cfg := NetlistConfig{
		QueryElems: len(prog), Beat: 8, Threshold: threshold, PipelinedPop: true,
	}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if runner.ports.Latency <= PipelineDepth {
		t.Errorf("pipelined latency %d should exceed %d", runner.ports.Latency, PipelineDepth)
	}
	engine, _ := NewEngine(prog, threshold)
	for trial := 0; trial < 3; trial++ {
		ref := bio.RandomNucSeq(rng, 60+rng.Intn(100))
		hw := runner.Align(ref)
		sw := engine.Align(ref)
		if !reflect.DeepEqual(hw, sw) {
			t.Fatalf("trial %d: hw %v != sw %v", trial, hw, sw)
		}
	}
}

// TestPipelinedReducesDepth: the point of the exercise — shallower logic
// between registers.
func TestPipelinedReducesDepth(t *testing.T) {
	base := NetlistConfig{QueryElems: 36, Beat: 4, Threshold: 20}
	flat, _, err := BuildNetlist(base)
	if err != nil {
		t.Fatal(err)
	}
	piped := base
	piped.PipelinedPop = true
	deep, _, err := BuildNetlist(piped)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, _ := flat.Depth()
	dPiped, _ := deep.Depth()
	if dPiped >= dFlat {
		t.Errorf("pipelined depth %d should undercut flat %d", dPiped, dFlat)
	}
	if deep.Stats().FFs <= flat.Stats().FFs {
		t.Error("pipelining must add registers")
	}
	t.Logf("flat depth %d (Fmax %.0f MHz) -> pipelined depth %d (Fmax %.0f MHz)",
		dFlat, rtl.FMaxEstimate(dFlat)/1e6, dPiped, rtl.FMaxEstimate(dPiped)/1e6)
}

func TestPipelinedValidation(t *testing.T) {
	cfg := NetlistConfig{QueryElems: 6, Beat: 4, Threshold: 3, Iterations: 2, PipelinedPop: true}
	if err := cfg.Validate(); err == nil {
		t.Error("pipelined pop with segmentation must fail")
	}
}

// TestPipelinedStallInsensitivity: bubbles flow through the free-running
// pipeline without corrupting results.
func TestPipelinedStallInsensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	p := bio.RandomProtSeq(rng, 3)
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{QueryElems: len(prog), Beat: 4, Threshold: 5, PipelinedPop: true}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ref := bio.RandomNucSeq(rng, 100)
	clean := runner.Align(ref)
	stalls := make([]int, (len(ref)+3)/4)
	for i := range stalls {
		stalls[i] = rng.Intn(4)
	}
	stalled := runner.AlignWithStalls(ref, stalls)
	if !reflect.DeepEqual(clean, stalled) {
		t.Error("stalls corrupted the pipelined datapath")
	}
}
