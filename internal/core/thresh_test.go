package core

import (
	"math"
	"math/rand"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

func TestScoreDistributionIsPMF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := bio.RandomProtSeq(rng, 10)
	e, _ := NewEngine(isa.MustEncodeProtein(p), 0)
	pmf := e.ScoreDistribution()
	if len(pmf) != e.QueryElems()+1 {
		t.Fatalf("pmf length %d", len(pmf))
	}
	sum := 0.0
	for _, q := range pmf {
		if q < 0 {
			t.Fatal("negative probability")
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %g", sum)
	}
}

// TestScoreDistributionExactForTypeI: a query of only Met/Trp (all Type I
// elements) makes the independence assumption exact: score ~ Binomial(m, 1/4).
func TestScoreDistributionExactForTypeI(t *testing.T) {
	q := bio.ProtSeq{bio.Met, bio.Trp, bio.Met}
	e, _ := NewEngine(isa.MustEncodeProtein(q), 0)
	pmf := e.ScoreDistribution()
	m := 9
	for s := 0; s <= m; s++ {
		want := binom(m, s) * math.Pow(0.25, float64(s)) * math.Pow(0.75, float64(m-s))
		if math.Abs(pmf[s]-want) > 1e-12 {
			t.Errorf("pmf[%d] = %g, want %g", s, pmf[s], want)
		}
	}
	if math.Abs(e.MeanScore()-float64(m)*0.25) > 1e-12 {
		t.Errorf("mean %g", e.MeanScore())
	}
}

func binom(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

// TestScoreDistributionVsMonteCarlo: for general queries (with Type III),
// the analytic tail must track the empirical tail closely.
func TestScoreDistributionVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := bio.RandomProtSeq(rng, 15) // includes Leu/Arg/Ser with high probability
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, 0)

	const trials = 40000
	counts := make([]int, len(prog)+1)
	for i := 0; i < trials; i++ {
		w := bio.RandomNucSeq(rng, len(prog))
		counts[prog.Score(w)]++
	}
	// Compare mean and the 90th-percentile tail.
	empMean := 0.0
	for s, c := range counts {
		empMean += float64(s*c) / trials
	}
	if math.Abs(empMean-e.MeanScore()) > 0.15 {
		t.Errorf("mean: empirical %.3f vs analytic %.3f", empMean, e.MeanScore())
	}
	thr := int(e.MeanScore() + 4)
	empTail := 0.0
	for s := thr; s < len(counts); s++ {
		empTail += float64(counts[s]) / trials
	}
	anaTail := e.TailProbability(thr)
	if math.Abs(empTail-anaTail) > 0.25*math.Max(empTail, anaTail)+0.002 {
		t.Errorf("tail(%d): empirical %.4f vs analytic %.4f", thr, empTail, anaTail)
	}
}

func TestSuggestThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := bio.RandomProtSeq(rng, 50)
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, 0)

	thr, err := e.SuggestThreshold(1_000_000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= int(e.MeanScore()) || thr > len(prog) {
		t.Errorf("suggested threshold %d implausible (mean %.0f, max %d)",
			thr, e.MeanScore(), len(prog))
	}
	// Stricter target → higher threshold; bigger database → higher.
	strict, _ := e.SuggestThreshold(1_000_000, 1e-6)
	if strict < thr {
		t.Error("stricter FP target must not lower the threshold")
	}
	big, _ := e.SuggestThreshold(100_000_000, 1.0)
	if big < thr {
		t.Error("bigger database must not lower the threshold")
	}
	// Errors.
	if _, err := e.SuggestThreshold(10, 1.0); err == nil {
		t.Error("short reference must fail")
	}
	if _, err := e.SuggestThreshold(1_000_000, 0); err == nil {
		t.Error("zero FP target must fail")
	}
}

// TestSuggestedThresholdEmpirically: scanning random data with the
// suggested threshold must produce roughly the promised few chance hits.
func TestSuggestedThresholdEmpirically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := bio.RandomProtSeq(rng, 30)
	prog := isa.MustEncodeProtein(p)
	probe, _ := NewEngine(prog, 0)
	const refLen = 500_000
	thr, err := probe.SuggestThreshold(refLen, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(prog, thr)
	hits := e.Align(bio.RandomNucSeq(rng, refLen))
	// Expected <= 2; allow generous Poisson slack.
	if len(hits) > 12 {
		t.Errorf("threshold %d produced %d chance hits, expected ≈<=2", thr, len(hits))
	}
}

func TestExpectedRandomHits(t *testing.T) {
	p := bio.ProtSeq{bio.Met, bio.Trp}
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, len(prog)) // perfect-score threshold
	// P(6 Type I matches) = 0.25^6.
	want := float64(1000-6+1) * math.Pow(0.25, 6)
	if got := e.ExpectedRandomHits(1000); math.Abs(got-want) > 1e-9 {
		t.Errorf("expected hits %g, want %g", got, want)
	}
	if e.ExpectedRandomHits(3) != 0 {
		t.Error("short reference must expect 0")
	}
}

// TestThresholdFromFractionExact pins the rounding behaviour at exact
// boundary values, including fractions whose float product lands a hair
// below the intended integer (the truncation bug this helper fixes).
func TestThresholdFromFractionExact(t *testing.T) {
	for _, tc := range []struct {
		frac     float64
		maxScore int
		want     int
	}{
		{0.9, 10, 9},   // 0.9*10 = 8.999999999999998 — int() gave 8
		{0.8, 10, 8},   // 8.000000000000002 — stays 8
		{0.7, 30, 21},  // 20.999999999999996 — int() gave 20
		{1.0, 7, 7},    // full score must stay in range
		{0.5, 30, 15},  // exact product
		{0.95, 30, 29}, // 28.5 rounds half away from zero
		{0.001, 300, 0},
		{1.0, 0, 0},
	} {
		got, err := ThresholdFromFraction(tc.frac, tc.maxScore)
		if err != nil {
			t.Fatalf("ThresholdFromFraction(%v, %d): %v", tc.frac, tc.maxScore, err)
		}
		if got != tc.want {
			t.Errorf("ThresholdFromFraction(%v, %d) = %d, want %d", tc.frac, tc.maxScore, got, tc.want)
		}
	}
}

// TestThresholdFromFractionRejects: anything outside (0,1] is an error,
// never a silently clamped threshold.
func TestThresholdFromFractionRejects(t *testing.T) {
	for _, bad := range []float64{0, -0.1, -1, 1.0000001, 2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := ThresholdFromFraction(bad, 30); err == nil {
			t.Errorf("ThresholdFromFraction(%v, 30): want error, got nil", bad)
		}
	}
}

// TestThresholdFromFractionNeverExceedsMax: rounding can push the value to
// maxScore but never beyond it.
func TestThresholdFromFractionNeverExceedsMax(t *testing.T) {
	for maxScore := 0; maxScore <= 64; maxScore++ {
		for _, frac := range []float64{0.1, 0.3, 1.0 / 3.0, 0.5, 0.7, 0.9, 0.99, 0.999999999999, 1.0} {
			got, err := ThresholdFromFraction(frac, maxScore)
			if err != nil {
				t.Fatal(err)
			}
			if got < 0 || got > maxScore {
				t.Fatalf("ThresholdFromFraction(%v, %d) = %d out of [0,%d]", frac, maxScore, got, maxScore)
			}
		}
	}
}
