package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// Hit is one alignment position whose score reached the threshold — what
// FabP's write-back buffer returns to the host.
type Hit struct {
	// Pos is the reference element offset where the query window starts.
	Pos int
	// Score is the number of matching elements (0..3·Lq).
	Score int
}

// Engine is the bit-exact software model of the FabP datapath. Its results
// are proven equal to the generated netlist's cycle-accurate simulation in
// tests, and it scales to full-size references.
type Engine struct {
	prog      isa.Program
	threshold int
	// matchTab[i] is a 64-entry truth table: bit ctx tells whether query
	// element i matches a reference element whose 6-bit context is
	// ctx = prev2<<4 | prev1<<2 | cur. This is the software rendering of
	// the per-element comparator LUT pair.
	matchTab []([64]uint8)
	// parallelism bounds worker goroutines for large alignments.
	parallelism int
}

// NewEngine prepares an engine for the given encoded query and score
// threshold.
func NewEngine(prog isa.Program, threshold int) (*Engine, error) {
	if len(prog) == 0 {
		return nil, fmt.Errorf("core: empty query program")
	}
	if threshold < 0 || threshold > len(prog) {
		return nil, fmt.Errorf("core: threshold %d outside [0,%d]", threshold, len(prog))
	}
	e := &Engine{
		prog:        prog,
		threshold:   threshold,
		matchTab:    make([][64]uint8, len(prog)),
		parallelism: runtime.GOMAXPROCS(0),
	}
	for i, ins := range prog {
		for ctx := 0; ctx < 64; ctx++ {
			cur := bio.Nucleotide(ctx & 3)
			prev1 := bio.Nucleotide(ctx >> 2 & 3)
			prev2 := bio.Nucleotide(ctx >> 4 & 3)
			if ins.Matches(cur, prev1, prev2) {
				e.matchTab[i][ctx] = 1
			}
		}
	}
	return e, nil
}

// QueryElems returns the query length in elements (3·Lq).
func (e *Engine) QueryElems() int { return len(e.prog) }

// Threshold returns the configured hit threshold.
func (e *Engine) Threshold() int { return e.threshold }

// SetParallelism bounds the worker goroutines used by Align (minimum 1).
func (e *Engine) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	e.parallelism = p
}

// contexts computes the per-position 6-bit comparison context of the
// reference: ctx[j] = ref[j-2]<<4 | ref[j-1]<<2 | ref[j], with out-of-range
// history reading as A — exactly the reset state of the hardware reference
// buffer.
func contexts(ref bio.NucSeq) []uint8 {
	ctxs := make([]uint8, len(ref))
	var ctx uint8
	for j, nt := range ref {
		ctx = ctx<<2&0x3F | uint8(nt&3)
		ctxs[j] = ctx
	}
	return ctxs
}

// Score computes the alignment score for the window starting at position
// pos. It panics if the window exceeds the reference.
func (e *Engine) Score(ref bio.NucSeq, pos int) int {
	score := 0
	for i := range e.prog {
		j := pos + i
		ctx := uint8(ref[j] & 3)
		if j >= 1 {
			ctx |= uint8(ref[j-1]&3) << 2
		}
		if j >= 2 {
			ctx |= uint8(ref[j-2]&3) << 4
		}
		score += int(e.matchTab[i][ctx])
	}
	return score
}

// Align scans the whole reference and returns every position whose score
// reaches the threshold, in position order.
func (e *Engine) Align(ref bio.NucSeq) []Hit {
	n := len(ref) - len(e.prog) + 1
	if n <= 0 {
		return nil
	}
	ctxs := contexts(ref)

	workers := e.parallelism
	if workers > n/1024+1 {
		workers = n/1024 + 1
	}
	if workers <= 1 {
		return e.alignRange(ctxs, 0, n)
	}

	chunk := (n + workers - 1) / workers
	results := make([][]Hit, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = e.alignRange(ctxs, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var hits []Hit
	for _, r := range results {
		hits = append(hits, r...)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Pos < hits[j].Pos })
	return hits
}

// Contexts precomputes the per-position comparison contexts of a
// reference for repeated AlignContexts calls — the shared read-only input
// a shard scheduler fans scan ranges over.
func Contexts(ref bio.NucSeq) []uint8 { return contexts(ref) }

// AlignContexts scores the windows starting in [lo, hi) over a shared
// context array (see Contexts), in position order. Out-of-range bounds are
// clamped. Concatenating adjacent ranges reproduces Align exactly.
func (e *Engine) AlignContexts(ctxs []uint8, lo, hi int) []Hit {
	n := len(ctxs) - len(e.prog) + 1
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	return e.alignRange(ctxs, lo, hi)
}

// alignRange scores window starts in [lo, hi).
func (e *Engine) alignRange(ctxs []uint8, lo, hi int) []Hit {
	var hits []Hit
	m := len(e.prog)
	for p := lo; p < hi; p++ {
		score := 0
		window := ctxs[p : p+m]
		for i, tab := range e.matchTab {
			score += int(tab[window[i]])
		}
		if score >= e.threshold {
			hits = append(hits, Hit{Pos: p, Score: score})
		}
	}
	return hits
}

// AlignPacked unpacks a DRAM-layout reference and aligns it.
func (e *Engine) AlignPacked(ref *bio.PackedNucSeq) []Hit {
	return e.Align(ref.Unpack())
}

// BestHit returns the highest-scoring position (ties broken by lower
// position) regardless of threshold, or ok=false for an empty scan range.
func (e *Engine) BestHit(ref bio.NucSeq) (Hit, bool) {
	n := len(ref) - len(e.prog) + 1
	if n <= 0 {
		return Hit{}, false
	}
	ctxs := contexts(ref)
	best := Hit{Pos: 0, Score: -1}
	m := len(e.prog)
	for p := 0; p < n; p++ {
		score := 0
		window := ctxs[p : p+m]
		for i, tab := range e.matchTab {
			score += int(tab[window[i]])
		}
		if score > best.Score {
			best = Hit{Pos: p, Score: score}
		}
	}
	return best, true
}
