package core

import (
	"math/bits"
	"math/rand"
	"testing"

	"fabp/internal/rtl"
)

// simPopcount builds a popcount of the given width/variant, drives value v
// and returns the computed count.
func simPopcount(t *testing.T, width int, variant PopVariant, vals []uint64) []uint64 {
	t.Helper()
	n := rtl.New("pop")
	in := n.InputBus("x", width)
	out := BuildPopCount(n, in, variant)
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]uint64, len(vals))
	for i, v := range vals {
		sim.SetBus(in, v)
		sim.Eval()
		res[i] = sim.GetBus(out)
	}
	return res
}

func TestCountOf6AllValues(t *testing.T) {
	for width := 1; width <= 6; width++ {
		n := rtl.New("c6")
		in := n.InputBus("x", width)
		out := countOf6(n, in)
		sim, err := rtl.NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 1<<uint(width); v++ {
			sim.SetBus(in, v)
			sim.Eval()
			if got := sim.GetBus(out); got != uint64(bits.OnesCount64(v)) {
				t.Errorf("width %d: count(%b) = %d", width, v, got)
			}
		}
	}
}

func TestCountOf6Degenerate(t *testing.T) {
	n := rtl.New("c6d")
	if got := countOf6(n, nil); len(got) != 1 || got[0] != rtl.Zero {
		t.Error("empty count must be zero")
	}
	a := n.Input("a")
	if got := countOf6(n, []rtl.Signal{a}); len(got) != 1 || got[0] != a {
		t.Error("single-bit count is the bit itself")
	}
	defer func() {
		if recover() == nil {
			t.Error("countOf6 must reject >6 bits")
		}
	}()
	countOf6(n, make([]rtl.Signal, 7))
}

func TestPop36Exhaustive(t *testing.T) {
	n := rtl.New("pop36")
	in := n.InputBus("x", 36)
	out := Pop36(n, in)
	if len(out) != 6 {
		t.Fatalf("Pop36 output width %d", len(out))
	}
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// All-zeros, all-ones, single bits and random patterns.
	vals := []uint64{0, 1<<36 - 1}
	for i := 0; i < 36; i++ {
		vals = append(vals, 1<<uint(i))
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, rng.Uint64()&(1<<36-1))
	}
	for _, v := range vals {
		sim.SetBus(in, v)
		sim.Eval()
		if got := sim.GetBus(out); got != uint64(bits.OnesCount64(v)) {
			t.Errorf("pop36(%036b) = %d, want %d", v, got, bits.OnesCount64(v))
		}
	}
}

func TestPop36RejectsWrongWidth(t *testing.T) {
	n := rtl.New("bad")
	defer func() {
		if recover() == nil {
			t.Error("Pop36 must reject non-36 widths")
		}
	}()
	Pop36(n, make([]rtl.Signal, 35))
}

func TestPopCountBothVariantsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{1, 3, 6, 7, 12, 36, 37, 48, 60} {
		var vals []uint64
		mask := uint64(1)<<uint(width) - 1
		if width >= 64 {
			mask = ^uint64(0)
		}
		vals = append(vals, 0, mask)
		for i := 0; i < 50; i++ {
			vals = append(vals, rng.Uint64()&mask)
		}
		opt := simPopcount(t, width, PopLUTOptimized, vals)
		tree := simPopcount(t, width, PopTree, vals)
		for i, v := range vals {
			want := uint64(bits.OnesCount64(v))
			if opt[i] != want {
				t.Errorf("optimized width %d: pop(%x) = %d, want %d", width, v, opt[i], want)
			}
			if tree[i] != want {
				t.Errorf("tree width %d: pop(%x) = %d, want %d", width, v, tree[i], want)
			}
		}
	}
}

func TestPopCountEmptyInput(t *testing.T) {
	n := rtl.New("empty")
	if got := PopCountOptimized(n, nil); len(got) != 1 || got[0] != rtl.Zero {
		t.Error("empty optimized popcount must be zero")
	}
	if got := PopCountTreeAdder(n, nil); len(got) != 1 || got[0] != rtl.Zero {
		t.Error("empty tree popcount must be zero")
	}
}

// TestPopCountAreaAdvantage reproduces the §III-D claim: the LUT-level
// Pop-Counter is meaningfully smaller than the tree-adder description (the
// paper reports ~20 % at its operating widths).
func TestPopCountAreaAdvantage(t *testing.T) {
	for _, width := range []int{150, 300, 750} {
		nOpt := rtl.New("opt")
		BuildPopCount(nOpt, nOpt.InputBus("x", width), PopLUTOptimized)
		nTree := rtl.New("tree")
		BuildPopCount(nTree, nTree.InputBus("x", width), PopTree)
		opt := nOpt.Stats().LUTs
		tree := nTree.Stats().LUTs
		if opt >= tree {
			t.Errorf("width %d: optimized %d LUTs not smaller than tree %d", width, opt, tree)
		}
		saving := 1 - float64(opt)/float64(tree)
		t.Logf("width %d: optimized %d vs tree %d LUTs (%.0f%% saving)", width, opt, tree, 100*saving)
		if saving < 0.10 {
			t.Errorf("width %d: saving %.2f below 10%%, paper reports ~20%%", width, saving)
		}
	}
}

// TestPop36Structure pins the Fig. 4 decomposition: first stage 6 groups ×
// 3 LUTs = 18, column stage 3 × 3 LUTs = 9, plus the positional adder.
func TestPop36Structure(t *testing.T) {
	n := rtl.New("p36")
	Pop36(n, n.InputBus("x", 36))
	luts := n.Stats().LUTs
	const stage1 = 18
	const columns = 9
	adder := luts - stage1 - columns
	if adder < 8 || adder > 24 {
		t.Errorf("Pop36 = %d LUTs: stage1 %d + columns %d + adder %d (adder outside 8..24)",
			luts, stage1, columns, adder)
	}
	// The whole block must stay well under a naive 36-bit tree adder.
	tree := PopCountLUTs(36, PopTree)
	if luts >= tree {
		t.Errorf("Pop36 %d LUTs should undercut tree %d", luts, tree)
	}
}

func TestPopVariantString(t *testing.T) {
	if PopLUTOptimized.String() != "lut-optimized" || PopTree.String() != "tree-adder" {
		t.Error("variant names wrong")
	}
}

func TestScoreWidth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 150: 8, 750: 10, 1023: 10, 1024: 11}
	for elems, want := range cases {
		if got := ScoreWidth(elems); got != want {
			t.Errorf("ScoreWidth(%d) = %d, want %d", elems, got, want)
		}
	}
}
